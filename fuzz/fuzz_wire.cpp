// Fuzz harness for the SHARQFEC wire codec (src/sharqfec/wire.cpp).
//
// Contract under test: decode() never aborts, never reads out of bounds,
// and never returns a message that re-encodes into something undecodable.
// Hostile bytes must yield std::nullopt — nothing else.
//
// The harness is dual-mode so it works with the whole toolchain matrix:
//
//   * Clang with -fsanitize=fuzzer (SHARQFEC_FUZZ=ON + Clang): a real
//     libFuzzer target; run `fuzz_wire fuzz/corpus -max_total_time=60`.
//   * Any other compiler (GCC): a replay driver. With file arguments it
//     replays each file through the same TestOneInput (triage mode); with
//     no arguments it replays the built-in seed corpus plus a deterministic
//     mutation sweep (CI smoke mode, also registered as a ctest).
//
// Write the built-in seeds out as corpus files with `fuzz_wire --write-corpus
// <dir>` to bootstrap a libFuzzer run.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "sharqfec/wire.hpp"

using namespace sharq;

namespace {

/// The property checked on every input, fuzz-generated or replayed.
void check_one(const std::uint8_t* data, std::size_t size) {
  const auto decoded = sfq::wire::decode(data, size);
  // peek_type must agree with decode about whether the tag is plausible:
  // decoding can only succeed on buffers whose type byte peeks cleanly.
  const auto peeked = sfq::wire::peek_type(data, size);
  if (decoded && !peeked) std::abort();
  if (!decoded) return;

  // Round-trip: whatever decode accepted must re-encode into a buffer that
  // decodes again to the same wire type. A decoder that "repairs" hostile
  // input into an unencodable message corrupts downstream state silently.
  const std::vector<std::uint8_t> out = std::visit(
      [](const auto& m) { return sfq::wire::encode(m); }, *decoded);
  const auto again = sfq::wire::decode(out.data(), out.size());
  if (!again) std::abort();
  if (again->index() != decoded->index()) std::abort();
}

std::vector<std::vector<std::uint8_t>> builtin_seeds() {
  std::vector<std::vector<std::uint8_t>> seeds;

  sfq::DataMsg d;
  d.group = 3;
  d.index = 7;
  d.k = 16;
  d.initial_shards = 18;
  d.groups_total = 20;
  d.bytes = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{1, 2, 3, 4});
  seeds.push_back(sfq::wire::encode(d));

  sfq::RepairMsg r;
  r.group = 3;
  r.index = 21;
  r.k = 16;
  r.new_max_id = 24;
  r.repairer = 5;
  r.zone = 2;
  r.preemptive = true;
  r.hints.push_back({1, 4, 0.02});
  r.bytes = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>(64, 0xAB));
  seeds.push_back(sfq::wire::encode(r));

  sfq::NackMsg n;
  n.group = 9;
  n.zone = 1;
  n.llc = 4;
  n.needed = 4;
  n.max_id_seen = 17;
  n.sender = 12;
  n.hints.push_back({1, 4, 0.015});
  n.hints.push_back({0, 2, 0.044});
  seeds.push_back(sfq::wire::encode(n));

  sfq::SessionMsg s;
  s.sender = 4;
  s.zone = 1;
  s.ts = 12.5;
  s.zcr = 2;
  s.zcr_parent_dist = 0.03;
  s.max_group_seen = 19;
  s.seen_any_data = true;
  s.entries.push_back({7, 11.9, 0.4, 0.06});
  s.entries.push_back({8, 12.1, 0.2, -1.0});
  seeds.push_back(sfq::wire::encode(s));

  sfq::ZcrChallengeMsg c;
  c.challenger = 6;
  c.zone = 2;
  c.challenge_id = 0x0600000001ull;
  seeds.push_back(sfq::wire::encode(c));

  sfq::ZcrResponseMsg resp;
  resp.responder = 2;
  resp.zone = 2;
  resp.challenge_id = 0x0600000001ull;
  resp.processing_delay = 0.001;
  seeds.push_back(sfq::wire::encode(resp));

  sfq::ZcrTakeoverMsg t;
  t.new_zcr = 9;
  t.zone = 2;
  t.dist_to_parent = 0.02;
  seeds.push_back(sfq::wire::encode(t));

  return seeds;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  check_one(data, size);
  return 0;
}

#ifndef SHARQFEC_FUZZ_LIBFUZZER
// Replay driver (GCC / no libFuzzer): files as args, or the built-in sweep.
namespace {

int replay_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) {
    std::fprintf(stderr, "fuzz_wire: cannot open %s\n", path);
    return 1;
  }
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[4096];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + got);
  }
  std::fclose(f);
  check_one(buf.data(), buf.size());
  std::printf("fuzz_wire: %s ok (%zu bytes)\n", path, buf.size());
  return 0;
}

int write_corpus(const char* dir) {
  const auto seeds = builtin_seeds();
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    char path[512];
    std::snprintf(path, sizeof path, "%s/seed-%02zu.bin", dir, i);
    std::FILE* f = std::fopen(path, "wb");
    if (!f) {
      std::fprintf(stderr, "fuzz_wire: cannot write %s\n", path);
      return 1;
    }
    std::fwrite(seeds[i].data(), 1, seeds[i].size(), f);
    std::fclose(f);
    std::printf("fuzz_wire: wrote %s (%zu bytes)\n", path, seeds[i].size());
  }
  return 0;
}

/// Deterministic mutation sweep over the seeds: truncations at every
/// length, single-byte flips at every offset, and length-field stress via
/// 0x00/0xFF overwrites. A few thousand inputs; runs in milliseconds.
void smoke_sweep() {
  std::uint64_t inputs = 0;
  for (const auto& seed : builtin_seeds()) {
    for (std::size_t len = 0; len <= seed.size(); ++len) {
      check_one(seed.data(), len);
      ++inputs;
    }
    std::vector<std::uint8_t> mut = seed;
    for (std::size_t i = 0; i < mut.size(); ++i) {
      const std::uint8_t orig = mut[i];
      for (std::uint8_t delta : {0x01, 0x80, 0xFF}) {
        mut[i] = static_cast<std::uint8_t>(orig ^ delta);
        check_one(mut.data(), mut.size());
        ++inputs;
      }
      mut[i] = 0x00;
      check_one(mut.data(), mut.size());
      mut[i] = 0xFF;
      check_one(mut.data(), mut.size());
      mut[i] = orig;
      inputs += 2;
    }
  }
  std::printf("fuzz_wire: smoke sweep ok (%llu inputs)\n",
              static_cast<unsigned long long>(inputs));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--write-corpus") == 0) {
    return write_corpus(argv[2]);
  }
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      if (replay_file(argv[i]) != 0) return 1;
    }
    return 0;
  }
  smoke_sweep();
  return 0;
}
#endif  // SHARQFEC_FUZZ_LIBFUZZER
