// Figure 18 reproduction: SHARQFEC(ni) vs SHARQFEC -- scoping on for both,
// preemptive ZCR injection toggled. Paper finding (confirming Rubenstein
// et al.): proactive FEC injection does not increase total bandwidth, and
// within the hierarchy it trades NACK round-trips for immediate parity.
//
// Extension (DESIGN.md ablation #1): sweep the ZLC EWMA gain to show the
// predictor's sensitivity.
#include <cstdio>

#include "fig_common.hpp"

using namespace sharq::bench;

int main() {
  Workload w;
  RunResult ni = run_sharqfec(sharqfec_ni(), w, "SHARQFEC(ni)");
  RunResult full = run_sharqfec(sharqfec_full(), w, "SHARQFEC");

  std::printf("Figure 18: mean data+repair packets per receiver per 0.1 s\n");
  print_two_series("ni", ni.data_repair_series(), "full",
                   full.data_repair_series());
  std::printf("\nSummary\n");
  print_summary({&ni, &full});

  std::printf("\nAblation: ZLC predictor EWMA gain (paper uses 0.25)\n");
  std::vector<RunResult> sweeps;
  for (double gain : {0.1, 0.25, 0.5, 0.9}) {
    sharq::sfq::Config cfg = sharqfec_full();
    cfg.ewma_new = gain;
    cfg.ewma_old = 1.0 - gain;
    char label[48];
    std::snprintf(label, sizeof(label), "SHARQFEC(ewma=%.2f)", gain);
    sweeps.push_back(run_sharqfec(cfg, w, label));
  }
  std::vector<const RunResult*> ptrs;
  for (const auto& r : sweeps) ptrs.push_back(&r);
  print_summary(ptrs);
  return 0;
}
