// Figure 16 reproduction: SHARQFEC(ns,ni) vs SHARQFEC(ns) -- both without
// scoping; the first also without preemptive injection. Paper finding:
// letting every receiver send repairs (vs sender-only, Fig 14) hurts
// suppression; turning on source injection wins some of it back.
#include <cstdio>

#include "fig_common.hpp"

using namespace sharq::bench;

int main() {
  Workload w;
  RunResult ns_ni = run_sharqfec(sharqfec_ns_ni(), w, "SHARQFEC(ns,ni)");
  RunResult ns = run_sharqfec(sharqfec_ns(), w, "SHARQFEC(ns)");

  std::printf(
      "Figure 16: mean data+repair packets per receiver per 0.1 s\n"
      "SHARQFEC(ns,ni) = no scoping, no injection, peer repairs\n"
      "SHARQFEC(ns)    = no scoping, source injection on\n");
  print_two_series("ns,ni", ns_ni.data_repair_series(), "ns",
                   ns.data_repair_series());
  std::printf("\nSummary\n");
  print_summary({&ns_ni, &ns});
  return 0;
}
