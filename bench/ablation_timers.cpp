// Ablation (paper §7 future work, implemented here): fixed suppression
// timers (C1=C2=2) vs per-receiver adaptive windows on the Figure 10
// workload. The paper conjectures adaptation "can lead to enhanced
// performance" but leaves it unexplored; this harness quantifies it.
#include <cstdio>

#include "fig_common.hpp"

using namespace sharq::bench;

int main() {
  Workload w;
  RunResult fixed = run_sharqfec(sharqfec_full(), w, "SHARQFEC(fixed timers)");
  sharq::sfq::Config adaptive_cfg = sharqfec_full();
  adaptive_cfg.adaptive_timers = true;
  RunResult adaptive = run_sharqfec(adaptive_cfg, w, "SHARQFEC(adaptive)");

  std::printf("Ablation: fixed vs adaptive suppression timers (paper SS7)\n\n");
  print_summary({&fixed, &adaptive});

  auto nacks_rx = [](const RunResult& r) {
    double s = 0;
    for (double v : r.nack_series()) s += v;
    return s;
  };
  std::printf("\nNACK deliveries per receiver: fixed=%.1f adaptive=%.1f\n",
              nacks_rx(fixed), nacks_rx(adaptive));
  return 0;
}
