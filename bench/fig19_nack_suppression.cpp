// Figure 19 reproduction: average NACK traffic, SHARQFEC(ns,ni,so)/ECSRM
// vs full SHARQFEC. Paper finding: hierarchy + injection suppress NACKs so
// well that the average per-receiver NACK count drops below the best the
// flat protocol achieves.
#include <cstdio>

#include "fig_common.hpp"

using namespace sharq::bench;

int main() {
  Workload w;
  RunResult ecsrm = run_sharqfec(sharqfec_ns_ni_so(), w,
                                 "SHARQFEC(ns,ni,so)/ECSRM");
  RunResult full = run_sharqfec(sharqfec_full(), w, "SHARQFEC");

  std::printf("Figure 19: mean NACK packets per receiver per 0.1 s\n");
  print_two_series("ECSRM", ecsrm.nack_series(), "SHARQFEC",
                   full.nack_series());
  auto delivered = [](const RunResult& r) {
    double s = 0.0;
    for (double v : r.nack_series()) s += v;
    return s;
  };
  std::printf("\nNACKs sent:                 ECSRM=%llu SHARQFEC=%llu\n",
              static_cast<unsigned long long>(ecsrm.nacks_sent),
              static_cast<unsigned long long>(full.nacks_sent));
  std::printf("NACK deliveries / receiver: ECSRM=%.1f SHARQFEC=%.1f\n",
              delivered(ecsrm), delivered(full));
  std::printf("(scoping confines most NACKs to a handful of nodes, so the\n"
              " per-receiver burden falls even when more NACKs are sent)\n");
  std::printf("\nSummary\n");
  print_summary({&ecsrm, &full});
  return 0;
}
