// Session-traffic scaling (extension of Figure 8): measure — not just
// analyze — the session bytes each receiver handles per second under
// (a) SHARQFEC's scoped session management and (b) a flat single-zone
// session (the O(n^2) regime SRM-style protocols live in), for growing
// session sizes on the national-hierarchy topology.
#include <cstdio>

#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "stats/report.hpp"
#include "stats/traffic_recorder.hpp"
#include "topo/national.hpp"

using namespace sharq;

namespace {

struct Sample {
  int receivers = 0;
  double scoped_bytes_per_rx_s = 0;
  double flat_bytes_per_rx_s = 0;
};

double run_case(int regions, int cities, int suburbs, int subs, bool scoped,
                int* receivers_out) {
  sim::Simulator simu(5);
  net::Network net(simu);
  topo::NationalParams p;
  p.regions = regions;
  p.cities_per_region = cities;
  p.suburbs_per_city = suburbs;
  p.subscribers_per_suburb = subs;
  p.access_loss = 0.0;
  topo::National nat = topo::make_national(net, p);
  std::vector<net::NodeId> receivers;
  for (auto v : {&nat.region_caches, &nat.city_caches, &nat.suburb_hubs,
                 &nat.subscribers}) {
    receivers.insert(receivers.end(), v->begin(), v->end());
  }
  *receivers_out = static_cast<int>(receivers.size());
  stats::TrafficRecorder rec(net.node_count(), 1.0);
  net.set_sink(&rec);
  sfq::Config cfg;
  cfg.scoping = scoped;
  sfq::Session s(net, nat.source, receivers, cfg);
  s.start();
  const double kWindow = 20.0;
  simu.run_until(5.0 + kWindow);
  // Session bytes delivered per receiver per second, steady state.
  double pkts = 0;
  for (net::NodeId r : receivers) {
    pkts += rec.node_total(r, net::TrafficClass::kSession);
  }
  (void)pkts;
  return static_cast<double>(rec.bytes_delivered()) /
         static_cast<double>(receivers.size()) / (kWindow + 5.0);
}

}  // namespace

int main() {
  std::printf("Session traffic scaling: scoped vs flat (measured)\n");
  std::printf("National hierarchy shapes; session-only runs (no data)\n\n");
  stats::Table t({"receivers", "scoped B/rx/s", "flat B/rx/s", "ratio"});
  struct Shape {
    int r, c, s, u;
  };
  for (const Shape sh : {Shape{2, 2, 2, 2}, Shape{2, 3, 3, 3},
                         Shape{3, 4, 3, 4}, Shape{3, 4, 4, 6}}) {
    int n = 0;
    const double scoped = run_case(sh.r, sh.c, sh.s, sh.u, true, &n);
    const double flat = run_case(sh.r, sh.c, sh.s, sh.u, false, &n);
    t.add_row({std::to_string(n), stats::Table::num(scoped, 1),
               stats::Table::num(flat, 1),
               stats::Table::num(flat / scoped, 2)});
  }
  t.print();
  std::printf(
      "\nFlat sessions grow as O(n^2) total (every member echoes every\n"
      "other); scoped sessions grow with the sum of squared zone sizes.\n"
      "The ratio widens with scale — at the paper's 10M receivers it is\n"
      "~10^6 (Figure 8).\n");
  return 0;
}
