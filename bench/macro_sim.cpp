// Macro simulation benchmark: full SHARQFEC protocol runs on deep
// nested-zone hierarchies (topo::make_deep_tree), swept over zone depth
// and fan-out up to >= 10^5 receivers. Measures end-to-end simulator
// throughput and memory footprint and writes BENCH_sim.json — the
// committed baseline docs/PERFORMANCE.md explains how to read and
// reproduce.
//
// Usage:
//   macro_sim [--smoke] [--max-receivers N] [--out PATH] [--threads LIST]
//             [--dump-metrics DIR] [--case NAME] [--profile FILE]
//
//   --smoke           run only the smallest sweep point (CI smoke job)
//   --max-receivers N skip sweep points with more receivers than N
//   --case NAME       run only the named sweep point (CI profile job runs
//                     `--case d3_f8_8k`)
//   --profile FILE    write a sharqfec.profile.v1 self-profile (wall-time
//                     + memory attribution; see docs/OBSERVABILITY.md).
//                     Each executed case overwrites FILE — combine with
//                     --case (and a single --threads count) to profile
//                     one configuration.
//   --out PATH        write JSON here (default BENCH_sim.json, or the
//                     SHARQFEC_BENCH_SIM_JSON env var)
//   --threads LIST    after the serial sweep, rerun the largest executed
//                     point on the zone-sharded runtime once per
//                     comma-separated worker count (e.g. "1,4"); those
//                     rows get a _tN name suffix and a nonzero threads
//                     column. The shard count comes from the topology, so
//                     every N produces byte-identical simulation state.
//   --dump-metrics DIR  write DIR/<case>.metrics.json per case (the
//                     stable-ordered registry export; `cmp` two _tN dumps
//                     to check the determinism contract)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "sharqfec/protocol.hpp"
#include "sim/shard_runtime.hpp"
#include "sim/simulator.hpp"
#include "stats/lane.hpp"
#include "stats/metrics.hpp"
#include "stats/profiler.hpp"
#include "topo/shapes.hpp"
#include "topo/shard_plan.hpp"

using namespace sharq;

namespace {

struct SweepPoint {
  const char* name;
  int zone_depth;      // hub levels below the source
  int fanout;          // hubs per hub
  int leaves_per_hub;  // subscribers per deepest hub
  double leaf_loss;
  std::uint32_t groups;    // groups streamed
  double horizon;          // virtual seconds simulated
};

struct CaseResult {
  SweepPoint point;
  std::string name;  // point name, plus _tN when sharded
  int threads = 0;   // worker count (0 = legacy serial engine)
  int shards = 0;    // topology shard count (0 = legacy serial engine)
  int receivers = 0;
  int nodes = 0;
  int zone_levels = 0;  // zone hierarchy depth including root
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  double queue_high_water = 0.0;
  long long rss_delta_bytes = 0;  // resident growth across build+run
  double bytes_per_receiver = 0.0;
  std::uint32_t complete_receivers = 0;
  stats::MemCensus census;  // post-run memory attribution by category
};

/// Current resident set in bytes (Linux /proc; 0 where unavailable).
long long current_rss_bytes() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long long pages = 0, resident = 0;
    const int got = std::fscanf(f, "%lld %lld", &pages, &resident);
    std::fclose(f);
    if (got == 2) return resident * static_cast<long long>(sysconf(_SC_PAGESIZE));
  }
#endif
  return 0;
}

/// Process peak resident set in bytes (0 where unavailable).
long long peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return ru.ru_maxrss;  // bytes on macOS
#else
    return ru.ru_maxrss * 1024LL;  // kilobytes on Linux
#endif
  }
#endif
  return 0;
}

/// Run one sweep point. `threads` == 0 uses the legacy serial engine;
/// >= 1 partitions by zone subtree and runs the conservative-lookahead
/// shard runtime with that many workers. `dump_dir`, when non-null, gets
/// a <case>.metrics.json registry export for byte-identity checks.
CaseResult run_case(const SweepPoint& pt, int threads, const char* dump_dir,
                    const char* profile_path) {
  CaseResult res;
  res.point = pt;
  res.name = pt.name;
  if (threads > 0) res.name += "_t" + std::to_string(threads);
  res.threads = threads;
#if defined(__GLIBC__)
  // Return freed arenas to the OS so each point's RSS delta reflects its
  // own footprint, not the high-water of the previous (larger) point.
  malloc_trim(0);
#endif
  const long long rss0 = current_rss_bytes();
  const auto wall0 = std::chrono::steady_clock::now();
  // Install the profiler before any protocol object exists so the build
  // phase is attributed too. Probes cost one branch when this is absent,
  // so unprofiled cases measure the same code the committed baseline did.
  std::unique_ptr<stats::Profiler> prof;
  if (profile_path != nullptr) {
    prof = std::make_unique<stats::Profiler>();
    stats::Profiler::set_active(prof.get());
  }

  sim::Simulator simu(7);
  stats::Metrics metrics;
  simu.set_metrics(&metrics);
  net::Network net(simu);
  topo::DeepTreeParams p;
  p.zone_depth = pt.zone_depth;
  p.fanout = pt.fanout;
  p.leaves_per_hub = pt.leaves_per_hub;
  p.leaf_loss = pt.leaf_loss;
  // Finite but generous: real routers have finite buffers, and an
  // unexpected queue blow-up should surface as counted drops rather than
  // unbounded memory. Never reached in the committed BENCH cases.
  p.queue_limit_pkts = 1024;
  topo::DeepTree tree = topo::make_deep_tree(net, p);
  res.receivers = static_cast<int>(tree.receivers.size());
  res.nodes = static_cast<int>(net.node_count());
  res.zone_levels = pt.zone_depth + 1;

  // Sharding must be enabled before any agent is constructed: agents bind
  // their node's per-shard Simulator (clock, timers, RNG stream) at
  // construction time.
  std::unique_ptr<sim::ShardRuntime> rt;
  if (threads > 0) {
    net::ShardMap map = topo::make_zone_shard_map(net, stats::kMaxLanes);
    if (map.nshards > 1) {
      rt = std::make_unique<sim::ShardRuntime>(simu, map.nshards,
                                               map.lookahead,
                                               /*seed=*/7, threads);
      res.shards = rt->nshards();
      net.enable_sharding(*rt, std::move(map));
      rt->set_metrics(&metrics);
    } else {
      // The threads column reports the engine that actually ran (0 =
      // serial); the _tN name suffix still records what was asked for.
      res.threads = 0;
      std::fprintf(stderr,
                   "  %s: topology yields no shardable partition; "
                   "running serial\n",
                   pt.name);
    }
  }

  sfq::Config cfg;
  cfg.scoping = true;
  // Dedicated caches at every bifurcation point (paper §5.2): static ZCRs
  // skip the bootstrap election storm, which is not what this benchmark
  // measures.
  for (const auto& [zone, hub] : tree.zone_hubs) cfg.static_zcrs[zone] = hub;
  sfq::Session session(net, tree.source, tree.receivers, cfg);
  session.start();
  session.send_stream(pt.groups, /*start_at=*/2.0);
  if (rt) {
    rt->run_until(pt.horizon);
  } else {
    simu.run_until(pt.horizon);
  }

  const auto wall1 = std::chrono::steady_clock::now();
  res.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  res.events = rt ? rt->events_executed() : simu.events_executed();
  res.events_per_sec =
      res.wall_s > 0 ? static_cast<double>(res.events) / res.wall_s : 0.0;
  res.queue_high_water = metrics.gauge("sim.queue_high_water").value();
#if defined(__GLIBC__)
  // Drop freed-but-retained allocator chunks so the delta measures live
  // protocol/simulator state, not transient churn high-water.
  malloc_trim(0);
#endif
  const long long rss1 = current_rss_bytes();
  res.rss_delta_bytes = rss1 > rss0 ? rss1 - rss0 : 0;
  res.bytes_per_receiver =
      res.receivers > 0
          ? static_cast<double>(res.rss_delta_bytes) / res.receivers
          : 0.0;
  const std::uint32_t total = pt.groups;
  for (const auto& agent : session.agents()) {
    if (agent->node() == tree.source) continue;
    bool all = true;
    for (std::uint32_t g = 0; g < total && all; ++g) {
      all = agent->transfer().group_complete(g);
    }
    res.complete_receivers += all ? 1 : 0;
  }
  // Memory attribution census: every named owner of retained bytes
  // reports live/peak per category (pull-based — zero hot-path cost).
  session.memory_census(res.census);
  net.memory_census(res.census);
  std::uint64_t evq = 0;
  if (rt) {
    for (int s = 0; s < rt->nshards(); ++s) {
      evq += rt->sim(s).queue_memory_bytes();
    }
  } else {
    evq = simu.queue_memory_bytes();
  }
  res.census.add("event_queue", evq, evq);
  if (prof) {
    prof->set_memory(res.census);
    prof->set_rss_delta(static_cast<std::uint64_t>(res.rss_delta_bytes));
    prof->set_shards(rt ? rt->nshards() : 1);
    prof->set_env("tool", "macro_sim");
    prof->set_env("case", res.name);
    prof->set_env("threads", std::to_string(threads));
    stats::Profiler::set_active(nullptr);
    prof->write_file(profile_path);
  }
  if (dump_dir != nullptr) {
    const std::string path =
        std::string(dump_dir) + "/" + res.name + ".metrics.json";
    std::ofstream os(path);
    if (os) {
      metrics.write_json(os);
    } else {
      std::fprintf(stderr, "could not write %s\n", path.c_str());
    }
  }
  return res;
}

void write_json(std::FILE* f, const std::vector<CaseResult>& results) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"sharqfec-macro-sim-v1\",\n");
  std::fprintf(f, "  \"backend\": \"%s\",\n",
               sim::EventQueue::default_backend() ==
                       sim::EventQueue::Backend::kHeap
                   ? "heap"
                   : "calendar");
  std::fprintf(f, "  \"peak_rss_bytes\": %lld,\n", peak_rss_bytes());
  std::fprintf(f, "  \"cases\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"threads\": %d,\n", r.threads);
    std::fprintf(f, "      \"shards\": %d,\n", r.shards);
    std::fprintf(f, "      \"zone_depth\": %d,\n", r.point.zone_depth);
    std::fprintf(f, "      \"zone_levels\": %d,\n", r.zone_levels);
    std::fprintf(f, "      \"fanout\": %d,\n", r.point.fanout);
    std::fprintf(f, "      \"leaves_per_hub\": %d,\n", r.point.leaves_per_hub);
    std::fprintf(f, "      \"receivers\": %d,\n", r.receivers);
    std::fprintf(f, "      \"nodes\": %d,\n", r.nodes);
    std::fprintf(f, "      \"groups\": %u,\n", r.point.groups);
    std::fprintf(f, "      \"horizon_s\": %.1f,\n", r.point.horizon);
    std::fprintf(f, "      \"events\": %llu,\n",
                 static_cast<unsigned long long>(r.events));
    std::fprintf(f, "      \"wall_s\": %.2f,\n", r.wall_s);
    std::fprintf(f, "      \"events_per_sec\": %.0f,\n", r.events_per_sec);
    std::fprintf(f, "      \"queue_high_water\": %.0f,\n", r.queue_high_water);
    std::fprintf(f, "      \"rss_delta_bytes\": %lld,\n", r.rss_delta_bytes);
    std::fprintf(f, "      \"bytes_per_receiver\": %.0f,\n",
                 r.bytes_per_receiver);
    // Per-subsystem retained bytes at end of run (the census's peak
    // column). Optional in the schema: older baselines predate it.
    std::fprintf(f, "      \"mem_peak_bytes\": {");
    bool first_cat = true;
    for (const auto& [cat, e] : r.census.categories) {
      std::fprintf(f, "%s\"%s\": %llu", first_cat ? "" : ", ", cat.c_str(),
                   static_cast<unsigned long long>(e.peak_bytes));
      first_cat = false;
    }
    std::fprintf(f, "},\n");
    std::fprintf(f, "      \"complete_receivers\": %u\n",
                 r.complete_receivers);
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  long max_receivers = -1;
  std::vector<int> thread_counts;
  const char* dump_dir = nullptr;
  const char* only_case = nullptr;
  const char* profile_path = nullptr;
  const char* out = std::getenv("SHARQFEC_BENCH_SIM_JSON");
  if (out == nullptr) out = "BENCH_sim.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--max-receivers") == 0 && i + 1 < argc) {
      max_receivers = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      for (const char* s = argv[++i]; *s != '\0';) {
        char* end = nullptr;
        const long n = std::strtol(s, &end, 10);
        if (end == s || n < 1) {
          std::fprintf(stderr, "--threads wants counts >= 1 (got %s)\n", s);
          return 2;
        }
        thread_counts.push_back(static_cast<int>(n));
        s = *end == ',' ? end + 1 : end;
      }
    } else if (std::strcmp(argv[i], "--dump-metrics") == 0 && i + 1 < argc) {
      dump_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--case") == 0 && i + 1 < argc) {
      only_case = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      profile_path = argv[i] + 10;
    } else {
      std::fprintf(stderr,
                   "usage: macro_sim [--smoke] [--max-receivers N] "
                   "[--out PATH] [--threads LIST] [--dump-metrics DIR] "
                   "[--case NAME] [--profile FILE]\n");
      return 2;
    }
  }

  // Depth x fan-out sweep, ascending size. Hub counts grow geometrically,
  // so the deep points carry most of the receivers in their leaf tier.
  const std::vector<SweepPoint> sweep{
      // name            depth fan leaves loss   groups horizon
      {"d2_f4_smoke",        2,  4,    8, 0.01,      2, 20.0},
      {"d3_f8_8k",           3,  8,   16, 0.01,      2, 20.0},
      {"d4_f8_70k",          4,  8,   16, 0.005,     1, 12.0},
      {"d5_f6_100k",         5,  6,   12, 0.0,       1, 10.0},
  };

  auto report = [](const CaseResult& r) {
    std::printf(
        "  %d receivers, %llu events in %.1f s wall  (%.2fM ev/s, "
        "%.0f B/receiver, queue hw %.0f, %u/%d complete)\n",
        r.receivers, static_cast<unsigned long long>(r.events), r.wall_s,
        r.events_per_sec / 1e6, r.bytes_per_receiver, r.queue_high_water,
        r.complete_receivers, r.receivers);
    std::fflush(stdout);
  };

  std::vector<CaseResult> results;
  for (const SweepPoint& pt : sweep) {
    if (only_case != nullptr && std::strcmp(pt.name, only_case) != 0) {
      continue;
    }
    // Receivers = hubs (geometric series) + deepest hubs * leaves.
    long hubs = 0, tier = 1;
    for (int l = 1; l <= pt.zone_depth; ++l) {
      tier *= pt.fanout;
      hubs += tier;
    }
    const long receivers = hubs + tier * pt.leaves_per_hub;
    if (max_receivers >= 0 && receivers > max_receivers) continue;
    std::printf("running %-14s depth=%d fanout=%d (~%ld receivers)...\n",
                pt.name, pt.zone_depth, pt.fanout, receivers);
    std::fflush(stdout);
    results.push_back(run_case(pt, /*threads=*/0, dump_dir, profile_path));
    report(results.back());
    if (smoke) break;
  }
  if (results.empty()) {
    std::fprintf(stderr, "no sweep point matched%s%s\n",
                 only_case != nullptr ? " --case " : "",
                 only_case != nullptr ? only_case : "");
    return 2;
  }

  // Sharded reruns of the largest executed point, one per requested
  // worker count. The shard count is the topology's, not N's, so every
  // rerun simulates the same history; the rows differ only in wall-clock
  // columns.
  if (!thread_counts.empty() && !results.empty()) {
    const SweepPoint pt = results.back().point;
    for (int n : thread_counts) {
      std::printf("running %s on the shard runtime, %d worker%s...\n",
                  pt.name, n, n == 1 ? "" : "s");
      std::fflush(stdout);
      results.push_back(run_case(pt, n, dump_dir, profile_path));
      report(results.back());
    }
  }

  if (std::FILE* f = std::fopen(out, "w")) {
    write_json(f, results);
    std::fclose(f);
    std::printf("wrote %s\n", out);
  } else {
    std::fprintf(stderr, "could not write %s\n", out);
    return 1;
  }
  return 0;
}
