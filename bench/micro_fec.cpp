// Micro-benchmarks for the FEC substrate (google-benchmark): GF(256)
// multiply-accumulate, Reed-Solomon parity generation, and worst-case
// decode (all data shards erased). Also sweeps group size k, the knob
// DESIGN.md flags as ablation #2.
#include <benchmark/benchmark.h>

#include <random>

#include "fec/group_codec.hpp"
#include "fec/reed_solomon.hpp"

namespace {

std::vector<std::vector<std::uint8_t>> make_shards(int k, int size) {
  std::mt19937 rng(1234);
  std::vector<std::vector<std::uint8_t>> out(k);
  for (auto& s : out) {
    s.resize(size);
    for (auto& b : s) b = rng() & 0xff;
  }
  return out;
}

void BM_Gf256MulAdd(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<std::uint8_t> dst(n, 0x55), src(n, 0xAA);
  for (auto _ : state) {
    sharq::fec::GF256::mul_add(dst.data(), src.data(), 0xC3, n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_Gf256MulAdd)->Arg(1000)->Arg(16000);

void BM_RsEncodeParity(benchmark::State& state) {
  const int k = state.range(0);
  sharq::fec::ReedSolomon rs(k, k);
  auto data = make_shards(k, 1000);
  int idx = k;
  for (auto _ : state) {
    auto parity = rs.encode_parity(idx, data);
    benchmark::DoNotOptimize(parity.data());
    idx = k + (idx + 1 - k) % k;
  }
  state.SetBytesProcessed(state.iterations() * 1000 * k);
}
BENCHMARK(BM_RsEncodeParity)->Arg(4)->Arg(16)->Arg(32)->Arg(64);

void BM_RsDecodeAllParity(benchmark::State& state) {
  const int k = state.range(0);
  sharq::fec::ReedSolomon rs(k, k);
  auto data = make_shards(k, 1000);
  std::vector<sharq::fec::ReedSolomon::Shard> shards;
  for (int i = k; i < 2 * k; ++i) {
    shards.push_back({i, rs.encode_parity(i, data)});
  }
  for (auto _ : state) {
    auto out = rs.decode(shards);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * 1000 * k);
}
BENCHMARK(BM_RsDecodeAllParity)->Arg(4)->Arg(16)->Arg(32)->Arg(64);

void BM_GroupRoundTrip(benchmark::State& state) {
  const int k = state.range(0);
  auto codec = std::make_shared<sharq::fec::ReedSolomon>(k, k);
  auto data = make_shards(k, 1000);
  sharq::fec::GroupEncoder enc(codec, data);
  for (auto _ : state) {
    sharq::fec::GroupDecoder dec(codec);
    // Lose a quarter of the data; fill from parity.
    for (int i = k / 4; i < k; ++i) dec.add(i, enc.shard(i));
    for (int i = k; i < k + k / 4; ++i) dec.add(i, enc.shard(i));
    auto out = dec.reconstruct();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GroupRoundTrip)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
