// Micro-benchmarks for the FEC substrate.
//
// Two layers:
//   1. A self-timed per-kernel sweep (scalar vs every SIMD kernel the host
//      supports) over GF(256) mul_add / scale / mul_add_rows and
//      Reed-Solomon encode, written to BENCH_fec.json (path overridable via
//      SHARQFEC_BENCH_JSON) and summarized on stdout. This is the FEC
//      performance baseline tracked in CHANGES.md.
//   2. The google-benchmark suite for RS parity generation, worst-case
//      decode (all data shards erased), and the group round trip, sweeping
//      group size k (DESIGN.md ablation #2).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "fec/cpu_features.hpp"
#include "fec/gf256_simd.hpp"
#include "fec/group_codec.hpp"
#include "fec/reed_solomon.hpp"

namespace {

using sharq::fec::cpu::Kernel;

std::vector<std::vector<std::uint8_t>> make_shards(int k, int size) {
  std::mt19937 rng(1234);
  std::vector<std::vector<std::uint8_t>> out(k);
  for (auto& s : out) {
    s.resize(size);
    for (auto& b : s) b = rng() & 0xff;
  }
  return out;
}

// --- self-timed kernel sweep ----------------------------------------------------

/// Wall-clock MB/s of `fn`, where one call processes `bytes` bytes. Runs
/// until at least 50 ms have elapsed so the figure is stable on a busy host.
template <typename Fn>
double throughput_mbps(std::size_t bytes, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  // Warm up (touches tables, resolves dispatch).
  fn();
  std::size_t iters = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    for (int i = 0; i < 16; ++i) fn();
    iters += 16;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < 0.05);
  const double total = static_cast<double>(bytes) * iters;
  return total / elapsed / 1e6;
}

struct SweepResult {
  // op -> kernel name -> size -> MB/s
  std::map<std::string, std::map<std::string, std::map<int, double>>> mbps;
};

SweepResult run_sweep(const std::vector<int>& sizes) {
  namespace simd = sharq::fec::simd;
  namespace cpu = sharq::fec::cpu;
  SweepResult res;
  const int kRows = 16;  // paper-default group size for the row kernel
  for (Kernel k : cpu::supported_kernels()) {
    const std::string name = cpu::kernel_name(k);
    for (int size : sizes) {
      std::vector<std::uint8_t> dst(size, 0x55), src(size, 0xAA);
      res.mbps["mul_add"][name][size] = throughput_mbps(size, [&] {
        simd::mul_add(k, dst.data(), src.data(), 0xC3, size);
      });
      res.mbps["scale"][name][size] = throughput_mbps(
          size, [&] { simd::scale(k, dst.data(), 0xC3, size); });
      auto rows = make_shards(kRows, size);
      std::vector<const std::uint8_t*> ptrs;
      std::vector<std::uint8_t> coeffs;
      for (int r = 0; r < kRows; ++r) {
        ptrs.push_back(rows[r].data());
        coeffs.push_back(static_cast<std::uint8_t>(r + 3));
      }
      // Row kernel throughput counts all source bytes streamed per pass.
      res.mbps["mul_add_rows_k16"][name][size] =
          throughput_mbps(static_cast<std::size_t>(size) * kRows, [&] {
            simd::mul_add_rows(k, dst.data(), ptrs.data(), coeffs.data(),
                               kRows, size);
          });
    }
  }
  return res;
}

/// RS encode throughput (k data bytes consumed per parity shard) under the
/// process-wide dispatched kernel.
double rs_encode_mbps(int k, int size) {
  sharq::fec::ReedSolomon rs(k, k);
  auto data = make_shards(k, size);
  std::vector<const std::uint8_t*> ptrs;
  for (const auto& d : data) ptrs.push_back(d.data());
  std::vector<std::uint8_t> out(size);
  return throughput_mbps(static_cast<std::size_t>(size) * k, [&] {
    rs.encode_parity_into(k, ptrs.data(), size, out.data());
  });
}

void json_escape_free_write(std::FILE* f, const SweepResult& res,
                            double rs_mbps, double speedup_1k) {
  namespace cpu = sharq::fec::cpu;
  const auto& feat = cpu::features();
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"host\": {\"ssse3\": %s, \"avx2\": %s, \"neon\": %s, "
               "\"active_kernel\": \"%s\"},\n",
               feat.ssse3 ? "true" : "false", feat.avx2 ? "true" : "false",
               feat.neon ? "true" : "false",
               cpu::kernel_name(cpu::active_kernel()));
  std::fprintf(f, "  \"units\": \"MB/s\",\n");
  for (const auto& [op, by_kernel] : res.mbps) {
    std::fprintf(f, "  \"%s\": {\n", op.c_str());
    std::size_t ki = 0;
    for (const auto& [kname, by_size] : by_kernel) {
      std::fprintf(f, "    \"%s\": {", kname.c_str());
      std::size_t si = 0;
      for (const auto& [size, mbps] : by_size) {
        std::fprintf(f, "\"%d\": %.1f%s", size, mbps,
                     ++si < by_size.size() ? ", " : "");
      }
      std::fprintf(f, "}%s\n", ++ki < by_kernel.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
  }
  std::fprintf(f, "  \"rs_encode_parity_k16_1024B\": %.1f,\n", rs_mbps);
  std::fprintf(f, "  \"speedup_mul_add_1KiB_best_vs_scalar\": %.2f\n",
               speedup_1k);
  std::fprintf(f, "}\n");
}

void kernel_sweep_and_report() {
  namespace cpu = sharq::fec::cpu;
  const std::vector<int> sizes{1024, 16384};
  const SweepResult res = run_sweep(sizes);

  const auto& mul_add = res.mbps.at("mul_add");
  const double scalar_1k = mul_add.at("scalar").at(1024);
  double best_1k = scalar_1k;
  std::string best_name = "scalar";
  for (const auto& [kname, by_size] : mul_add) {
    if (by_size.at(1024) > best_1k) {
      best_1k = by_size.at(1024);
      best_name = kname;
    }
  }
  const double speedup = best_1k / scalar_1k;
  const double rs_mbps = rs_encode_mbps(16, 1024);

  std::printf("GF(256) kernel sweep (MB/s):\n");
  for (const auto& [op, by_kernel] : res.mbps) {
    for (const auto& [kname, by_size] : by_kernel) {
      std::printf("  %-18s %-7s", op.c_str(), kname.c_str());
      for (const auto& [size, mbps] : by_size) {
        std::printf("  %6d B: %9.1f", size, mbps);
      }
      std::printf("\n");
    }
  }
  std::printf("rs_encode_parity (k=16, 1024 B shards): %.1f MB/s\n", rs_mbps);
  std::printf("mul_add 1 KiB: best kernel %s = %.2fx scalar\n",
              best_name.c_str(), speedup);
  std::printf("active kernel: %s\n", cpu::kernel_name(cpu::active_kernel()));

  const char* path = std::getenv("SHARQFEC_BENCH_JSON");
  if (path == nullptr) path = "BENCH_fec.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    json_escape_free_write(f, res, rs_mbps, speedup);
    std::fclose(f);
    std::printf("wrote %s\n\n", path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
  }
}

// --- google-benchmark suite -----------------------------------------------------

void BM_Gf256MulAdd(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<std::uint8_t> dst(n, 0x55), src(n, 0xAA);
  for (auto _ : state) {
    sharq::fec::GF256::mul_add(dst.data(), src.data(), 0xC3, n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_Gf256MulAdd)->Arg(1000)->Arg(16000);

void BM_Gf256MulAddScalar(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<std::uint8_t> dst(n, 0x55), src(n, 0xAA);
  for (auto _ : state) {
    sharq::fec::GF256::mul_add_scalar(dst.data(), src.data(), 0xC3, n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_Gf256MulAddScalar)->Arg(1000)->Arg(16000);

void BM_RsEncodeParity(benchmark::State& state) {
  const int k = state.range(0);
  sharq::fec::ReedSolomon rs(k, k);
  auto data = make_shards(k, 1000);
  int idx = k;
  for (auto _ : state) {
    auto parity = rs.encode_parity(idx, data);
    benchmark::DoNotOptimize(parity.data());
    idx = k + (idx + 1 - k) % k;
  }
  state.SetBytesProcessed(state.iterations() * 1000 * k);
}
BENCHMARK(BM_RsEncodeParity)->Arg(4)->Arg(16)->Arg(32)->Arg(64);

void BM_RsDecodeAllParity(benchmark::State& state) {
  const int k = state.range(0);
  sharq::fec::ReedSolomon rs(k, k);
  auto data = make_shards(k, 1000);
  std::vector<sharq::fec::ReedSolomon::Shard> shards;
  for (int i = k; i < 2 * k; ++i) {
    shards.push_back({i, rs.encode_parity(i, data)});
  }
  for (auto _ : state) {
    auto out = rs.decode(shards);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * 1000 * k);
}
BENCHMARK(BM_RsDecodeAllParity)->Arg(4)->Arg(16)->Arg(32)->Arg(64);

void BM_GroupRoundTrip(benchmark::State& state) {
  const int k = state.range(0);
  auto codec = std::make_shared<sharq::fec::ReedSolomon>(k, k);
  auto data = make_shards(k, 1000);
  sharq::fec::GroupEncoder enc(codec, data);
  for (auto _ : state) {
    sharq::fec::GroupDecoder dec(codec);
    // Lose a quarter of the data; fill from parity.
    for (int i = k / 4; i < k; ++i) dec.add(i, enc.shard(i));
    for (int i = k; i < k + k / 4; ++i) dec.add(i, enc.shard(i));
    auto out = dec.reconstruct();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GroupRoundTrip)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  kernel_sweep_and_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
