// Figure 17 reproduction: SHARQFEC(ns,ni,so)/ECSRM vs full SHARQFEC.
// Paper finding: adding the administrative-scope hierarchy smooths the
// repair traffic peaks considerably -- repairs stay inside the zones that
// need them.
#include <cstdio>

#include "fig_common.hpp"

using namespace sharq::bench;

int main() {
  Workload w;
  RunResult ecsrm = run_sharqfec(sharqfec_ns_ni_so(), w,
                                 "SHARQFEC(ns,ni,so)/ECSRM");
  RunResult full = run_sharqfec(sharqfec_full(), w, "SHARQFEC");

  std::printf("Figure 17: mean data+repair packets per receiver per 0.1 s\n");
  print_two_series("ECSRM", ecsrm.data_repair_series(), "SHARQFEC",
                   full.data_repair_series());
  std::printf("\nSummary\n");
  print_summary({&ecsrm, &full});
  return 0;
}
