// Figures 14 & 15 reproduction: SRM (adaptive timers) vs
// SHARQFEC(ns,ni,so) -- the ECSRM-like hybrid with counts-based NACKs and
// sender-only FEC repairs -- on the Figure 10 topology with every link
// lossy. Figure 14 plots mean per-receiver data+repair packets per 0.1 s;
// Figure 15 plots the NACK traffic. Expected shape: the hybrid suppresses
// far better (fewer NACKs, much less repair traffic, no long repair tail).
#include <cstdio>

#include "fig_common.hpp"

using namespace sharq;
using namespace sharq::bench;

int main() {
  Workload w;
  srm::Config srm_cfg;
  srm_cfg.adaptive_timers = true;  // paper: "adaptive timers turned on"
  RunResult srm_run = run_srm(srm_cfg, w, "SRM(adaptive)");
  RunResult ecsrm = run_sharqfec(sharqfec_ns_ni_so(), w,
                                 "SHARQFEC(ns,ni,so)/ECSRM");

  std::printf("Figure 14: mean data+repair packets per receiver per 0.1 s\n");
  print_two_series("SRM", srm_run.data_repair_series(), "ECSRM",
                   ecsrm.data_repair_series());
  std::printf("\nFigure 15: mean NACK packets per receiver per 0.1 s\n");
  print_two_series("SRM", srm_run.nack_series(), "ECSRM",
                   ecsrm.nack_series());
  std::printf("\nSummary\n");
  print_summary({&srm_run, &ecsrm});
  return 0;
}
