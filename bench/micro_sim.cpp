// Micro-benchmarks for the simulation substrate (google-benchmark): event
// queue throughput, timer churn, and end-to-end packet forwarding cost on
// the Figure 10 topology.
#include <benchmark/benchmark.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/figure10.hpp"

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = state.range(0);
  const auto backend = state.range(1) == 0
                           ? sharq::sim::EventQueue::Backend::kCalendar
                           : sharq::sim::EventQueue::Backend::kHeap;
  for (auto _ : state) {
    sharq::sim::Simulator simu(1, backend);
    for (int i = 0; i < n; ++i) {
      simu.after(static_cast<double>((i * 7919) % 1000),
                 [] { benchmark::DoNotOptimize(0); }, "bench.tick");
    }
    simu.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
// Second arg: 0 = calendar queue, 1 = binary heap (the two backends keep
// byte-identical event order; this measures the throughput difference).
BENCHMARK(BM_EventQueueScheduleRun)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({1000000, 0})
    ->Args({1000000, 1});

// Steady-state "hold" pattern (the protocol's shape: a bounded pending
// set with every pop scheduling a successor) — the case calendar queues
// are O(1) at and heaps pay log(n) for.
void BM_EventQueueSteadyState(benchmark::State& state) {
  const int pending = state.range(0);
  const auto backend = state.range(1) == 0
                           ? sharq::sim::EventQueue::Backend::kCalendar
                           : sharq::sim::EventQueue::Backend::kHeap;
  sharq::sim::Simulator simu(1, backend);
  int i = 0;
  for (int j = 0; j < pending; ++j) {
    simu.after(static_cast<double>((j * 7919) % 1000), [] {}, "bench.hold");
  }
  for (auto _ : state) {
    simu.after(static_cast<double>((i++ * 7919) % 1000),
               [] { benchmark::DoNotOptimize(0); }, "bench.tick");
    simu.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueSteadyState)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

void BM_TimerRearm(benchmark::State& state) {
  sharq::sim::Simulator simu;
  sharq::sim::Timer t(simu);
  for (auto _ : state) {
    t.arm(1.0, [] {});
  }
  t.cancel();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimerRearm);

struct Probe final : sharq::net::MessageBase {};

void BM_Figure10Multicast(benchmark::State& state) {
  sharq::sim::Simulator simu(1);
  sharq::net::Network net(simu);
  sharq::topo::Figure10 topo = sharq::topo::make_figure10(net);
  const auto ch = net.create_channel();
  for (auto r : topo.receivers) net.subscribe(ch, r);
  auto msg = std::make_shared<Probe>();
  for (auto _ : state) {
    net.send(topo.source, ch, sharq::net::TrafficClass::kData, 1000, msg);
    simu.run();
  }
  // 112 receivers reached per send.
  state.SetItemsProcessed(state.iterations() * 112);
}
BENCHMARK(BM_Figure10Multicast);

}  // namespace

BENCHMARK_MAIN();
