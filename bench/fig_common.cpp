#include "fig_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <unordered_set>

#include "sharqfec/protocol.hpp"
#include "srm/session.hpp"
#include "stats/metrics.hpp"
#include "stats/report.hpp"

namespace sharq::bench {

std::vector<double> RunResult::data_repair_series() const {
  return recorder->mean_over_nodes(
      receivers, {net::TrafficClass::kData, net::TrafficClass::kRepair});
}

std::vector<double> RunResult::nack_series() const {
  return recorder->mean_over_nodes(receivers, {net::TrafficClass::kNack});
}

std::vector<double> RunResult::source_data_repair_series() const {
  return recorder->mean_over_nodes(
      {source}, {net::TrafficClass::kData, net::TrafficClass::kRepair});
}

std::vector<double> RunResult::source_nack_series() const {
  return recorder->mean_over_nodes({source}, {net::TrafficClass::kNack});
}

namespace {
std::vector<double> combine(const stats::BinnedSeries& a,
                            const stats::BinnedSeries& b) {
  std::vector<double> out(std::max(a.bin_count(), b.bin_count()), 0.0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = a.bin(static_cast<int>(i)) + b.bin(static_cast<int>(i));
  }
  return out;
}
}  // namespace

std::vector<double> RunResult::backbone_data_repair_series() const {
  return combine(recorder->link_series(net::TrafficClass::kData),
                 recorder->link_series(net::TrafficClass::kRepair));
}

std::vector<double> RunResult::backbone_nack_series() const {
  std::vector<double> out;
  const auto& s = recorder->link_series(net::TrafficClass::kNack);
  for (int i = 0; i < s.bin_count(); ++i) out.push_back(s.bin(i));
  return out;
}

namespace {

/// When SHARQFEC_METRICS_JSON names a file, every bench run appends one
/// {"label":...,"metrics":{...}} line to it (off by default; the figure
/// benches stay pure stdout tools).
bool metrics_dump_enabled() {
  const char* path = std::getenv("SHARQFEC_METRICS_JSON");
  return path != nullptr && *path != '\0';
}

void maybe_dump_metrics(const stats::Metrics& m, const std::string& label) {
  if (!metrics_dump_enabled()) return;
  std::ofstream os(std::getenv("SHARQFEC_METRICS_JSON"), std::ios::app);
  if (!os) return;
  os << "{\"label\":\"" << label << "\",\"metrics\":";
  m.write_json(os);
  os << "}\n";
}

void fill_latency(RunResult& r, const rm::DeliveryLog& log,
                  const std::vector<net::NodeId>& receivers,
                  std::uint64_t units, sim::Time data_start, double unit_time) {
  double sum = 0.0;
  std::size_t n = 0;
  r.incomplete_receivers = 0;
  for (net::NodeId rx : receivers) {
    if (!log.complete(rx, units)) ++r.incomplete_receivers;
    for (std::uint64_t u = 0; u < units; ++u) {
      const sim::Time t = log.completion_time(rx, u);
      if (t == sim::kTimeNever) continue;
      // Latency relative to the moment the unit finished transmitting.
      sum += t - (data_start + unit_time * static_cast<double>(u + 1));
      ++n;
    }
  }
  r.mean_recovery_latency = n ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

RunResult run_sharqfec(const sfq::Config& cfg, const Workload& w,
                       const std::string& label) {
  RunResult r;
  r.label = label;
  // Declared before the simulator/network/agents that cache pointers into
  // it, so it is destroyed last.
  stats::Metrics metrics;
  sim::Simulator simu(w.seed);
  net::Network net(simu);
  if (metrics_dump_enabled()) {
    simu.set_metrics(&metrics);
    net.set_metrics(&metrics);
  }
  topo::Figure10 topo = topo::make_figure10(net);
  r.receivers = topo.receivers;
  r.source = topo.source;
  r.recorder = std::make_unique<stats::TrafficRecorder>(net.node_count(), 0.1);
  {
    std::unordered_set<net::LinkId> backbone;
    for (net::NodeId m : topo.mesh) {
      backbone.insert(net.find_link(topo.source, m));
      backbone.insert(net.find_link(m, topo.source));
    }
    r.recorder->watch_links(std::move(backbone));
  }
  net.set_sink(r.recorder.get());

  sfq::Config cfg2 = cfg;
  cfg2.shard_size_bytes = w.packet_size;
  cfg2.data_rate_bps = w.rate_bps;
  if (metrics_dump_enabled()) cfg2.metrics = &metrics;
  rm::DeliveryLog log;
  sfq::Session session(net, topo.source, topo.receivers, cfg2, &log);
  session.start();
  const std::uint32_t groups = w.packets / cfg2.group_size;
  session.send_stream(groups, w.data_start);
  simu.run_until(w.run_until);

  for (auto& a : session.agents()) {
    r.nacks_sent += a->transfer().nacks_sent();
    r.repairs_sent += a->transfer().repairs_sent();
    r.session_msgs += a->session().session_messages_sent();
  }
  const double group_time = cfg2.group_size * w.packet_size * 8.0 / w.rate_bps;
  fill_latency(r, log, topo.receivers, groups, w.data_start, group_time);
  maybe_dump_metrics(metrics, label);
  return r;
}

RunResult run_srm(const srm::Config& cfg, const Workload& w,
                  const std::string& label) {
  RunResult r;
  r.label = label;
  sim::Simulator simu(w.seed);
  net::Network net(simu);
  topo::Figure10 topo = topo::make_figure10(net);
  r.receivers = topo.receivers;
  r.source = topo.source;
  r.recorder = std::make_unique<stats::TrafficRecorder>(net.node_count(), 0.1);
  {
    std::unordered_set<net::LinkId> backbone;
    for (net::NodeId m : topo.mesh) {
      backbone.insert(net.find_link(topo.source, m));
      backbone.insert(net.find_link(m, topo.source));
    }
    r.recorder->watch_links(std::move(backbone));
  }
  net.set_sink(r.recorder.get());

  srm::Config cfg2 = cfg;
  cfg2.packet_size_bytes = w.packet_size;
  cfg2.data_rate_bps = w.rate_bps;
  rm::DeliveryLog log;
  srm::Session session(net, topo.source, topo.receivers, cfg2, &log);
  session.start();
  session.send_stream(w.packets, w.data_start);
  simu.run_until(w.run_until);

  for (auto& a : session.agents()) {
    r.nacks_sent += a->requests_sent();
    r.repairs_sent += a->repairs_sent();
  }
  const double pkt_time = w.packet_size * 8.0 / w.rate_bps;
  fill_latency(r, log, topo.receivers, w.packets, w.data_start, pkt_time);
  return r;
}

sfq::Config sharqfec_full() {
  sfq::Config cfg;
  return cfg;
}
sfq::Config sharqfec_ns() {
  sfq::Config cfg;
  cfg.scoping = false;
  return cfg;
}
sfq::Config sharqfec_ns_ni() {
  sfq::Config cfg;
  cfg.scoping = false;
  cfg.injection = false;
  return cfg;
}
sfq::Config sharqfec_ni() {
  sfq::Config cfg;
  cfg.injection = false;
  return cfg;
}
sfq::Config sharqfec_ns_ni_so() {
  sfq::Config cfg;
  cfg.scoping = false;
  cfg.injection = false;
  cfg.sender_only = true;
  return cfg;
}

void print_two_series(const std::string& ta, const std::vector<double>& a,
                      const std::string& tb, const std::vector<double>& b) {
  std::printf("# t  %s  %s\n", ta.c_str(), tb.c_str());
  const std::size_t n = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double va = i < a.size() ? a[i] : 0.0;
    const double vb = i < b.size() ? b[i] : 0.0;
    if (va == 0.0 && vb == 0.0) continue;
    std::printf("%.1f  %.3f  %.3f\n", 0.1 * static_cast<double>(i), va, vb);
  }
}

void print_summary(const std::vector<const RunResult*>& runs) {
  stats::Table t({"variant", "nacks", "repairs", "incomplete-rx",
                  "mean-latency(s)", "peak-rx-pkts/0.1s", "total-rx-pkts"});
  for (const RunResult* r : runs) {
    const auto series = r->data_repair_series();
    double peak = 0.0, total = 0.0;
    for (double v : series) {
      peak = std::max(peak, v);
      total += v;
    }
    t.add_row({r->label, std::to_string(r->nacks_sent),
               std::to_string(r->repairs_sent),
               std::to_string(r->incomplete_receivers),
               stats::Table::num(r->mean_recovery_latency, 3),
               stats::Table::num(peak, 1), stats::Table::num(total, 0)});
  }
  t.print();
}

}  // namespace sharq::bench
