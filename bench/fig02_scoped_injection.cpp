// Figure 2 reproduction: redundancy injection using FEC within a hierarchy
// of administratively scoped zones on the Figure 1 example tree. Each
// zone's ZCR adds only the incremental redundancy its own subtree needs,
// so lightly-lossy subtrees stop paying for the congested ones.
#include <cmath>
#include <cstdio>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/report.hpp"
#include "topo/shapes.hpp"

using namespace sharq;

namespace {
int parity_for(double loss, int k) {
  for (int h = 0; h <= 64; ++h) {
    const int n = k + h;
    if (n * (1.0 - loss) - std::sqrt(n * loss * (1.0 - loss)) >= k) return h;
  }
  return 64;
}
}  // namespace

int main() {
  sim::Simulator simu(1);
  net::Network net(simu);
  topo::ExampleTree tree = topo::make_figure1_tree(net);
  const int k = 16;

  // Zones: one per relay subtree (the paper's Figure 2 overlays three
  // nested scope levels on the same example tree).
  std::printf("Figure 2: scoped FEC injection on the example tree\n\n");

  // Global (non-scoped) sizing for the worst receiver:
  double worst = 0.0;
  for (net::NodeId r : tree.receivers) {
    worst = std::max(worst, net.path_loss(tree.source, r));
  }
  const int h_global = parity_for(worst, k);

  stats::Table t({"zone(relay)", "zone-worst-loss%", "zone-parity h",
                  "volume(scoped)", "volume(non-scoped)"});
  double total_scoped = 0.0, total_nonscoped = 0.0;
  int receivers_total = 0;
  for (net::NodeId relay : tree.relays) {
    // Receivers under this relay, their worst compounded loss.
    double zone_worst = 0.0;
    int zone_rx = 0;
    for (net::NodeId r : tree.receivers) {
      const auto path = net.path(tree.source, r);
      if (path.size() >= 2 && path[1] == relay) {
        zone_worst = std::max(zone_worst, net.path_loss(tree.source, r));
        ++zone_rx;
      }
    }
    // The source covers the loss to the zone head; the zone ZCR tops up
    // for its own subtree: incremental parity beyond the source-level
    // baseline (sized for the *least* lossy zone).
    const int h_zone = parity_for(zone_worst, k);
    const double vol_scoped = 1.0 + static_cast<double>(h_zone) / k;
    const double vol_nonscoped = 1.0 + static_cast<double>(h_global) / k;
    total_scoped += vol_scoped * zone_rx;
    total_nonscoped += vol_nonscoped * zone_rx;
    receivers_total += zone_rx;
    t.add_row({std::to_string(relay), stats::Table::num(100 * zone_worst, 2),
               std::to_string(h_zone), stats::Table::num(vol_scoped, 3),
               stats::Table::num(vol_nonscoped, 3)});
  }
  t.print();
  std::printf("\naggregate normalized volume: scoped %.3f vs non-scoped %.3f"
              "  (saving %.1f%% across %d receivers)\n",
              total_scoped / receivers_total,
              total_nonscoped / receivers_total,
              100.0 * (1.0 - total_scoped / total_nonscoped), receivers_total);
  return 0;
}
