#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "rm/delivery_log.hpp"
#include "sharqfec/config.hpp"
#include "sim/simulator.hpp"
#include "srm/agent.hpp"
#include "stats/traffic_recorder.hpp"
#include "topo/figure10.hpp"

namespace sharq::bench {

/// The paper's §6.2 workload: 1024 x 1000-byte packets at 800 kbit/s,
/// groups of 16, session traffic from t=1 s, data from t=6 s.
struct Workload {
  std::uint32_t packets = 1024;
  int packet_size = 1000;
  double rate_bps = 800e3;
  sim::Time session_start = 1.0;  // implicit: agents start at t=0-ish
  sim::Time data_start = 6.0;
  sim::Time run_until = 45.0;
  std::uint64_t seed = 20260705;
};

/// Everything the figure benches need from one protocol run.
struct RunResult {
  std::string label;
  std::unique_ptr<stats::TrafficRecorder> recorder;
  std::vector<net::NodeId> receivers;
  net::NodeId source = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t repairs_sent = 0;
  std::uint64_t session_msgs = 0;
  int incomplete_receivers = 0;
  double mean_recovery_latency = 0.0;

  /// Mean per-receiver deliveries of data+repair per 0.1 s bin.
  std::vector<double> data_repair_series() const;
  /// Mean per-receiver NACK deliveries per 0.1 s bin.
  std::vector<double> nack_series() const;
  /// Data+repair deliveries at the source per 0.1 s bin.
  std::vector<double> source_data_repair_series() const;
  /// NACK deliveries at the source per 0.1 s bin.
  std::vector<double> source_nack_series() const;
  /// Data+repair transmissions on the backbone links adjacent to the
  /// source per 0.1 s bin (the core traffic Figure 20 plots).
  std::vector<double> backbone_data_repair_series() const;
  /// NACK transmissions on those links (Figure 21).
  std::vector<double> backbone_nack_series() const;
};

/// Run SHARQFEC (or an ablated variant) on the Figure 10 topology.
RunResult run_sharqfec(const sfq::Config& cfg, const Workload& w,
                       const std::string& label);

/// Run the SRM baseline on the Figure 10 topology.
RunResult run_srm(const srm::Config& cfg, const Workload& w,
                  const std::string& label);

/// The paper's variant labels.
sfq::Config sharqfec_full();
sfq::Config sharqfec_ns();        // no scoping
sfq::Config sharqfec_ns_ni();     // no scoping, no injection
sfq::Config sharqfec_ni();        // no injection
sfq::Config sharqfec_ns_ni_so();  // ECSRM-like

/// Print two series side by side: t, a, b (0.1 s bins).
void print_two_series(const std::string& ta, const std::vector<double>& a,
                      const std::string& tb, const std::vector<double>& b);

/// Print run-level summary counters for a set of runs.
void print_summary(const std::vector<const RunResult*>& runs);

}  // namespace sharq::bench
