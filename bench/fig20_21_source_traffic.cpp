// Figures 20 & 21 reproduction: traffic observed AT THE SOURCE (core of
// the network) for SHARQFEC(ns,ni,so)/ECSRM vs full SHARQFEC. Paper
// finding: the hierarchy localizes repairs inside the scoped regions, so
// the backbone near the source carries almost nothing beyond the original
// transmission, and NACKs reaching the source drop dramatically.
#include <cstdio>

#include "fig_common.hpp"

using namespace sharq::bench;

int main() {
  Workload w;
  RunResult ecsrm = run_sharqfec(sharqfec_ns_ni_so(), w,
                                 "SHARQFEC(ns,ni,so)/ECSRM");
  RunResult full = run_sharqfec(sharqfec_full(), w, "SHARQFEC");

  std::printf(
      "Figure 20: data+repair packets on the source's backbone links per "
      "0.1 s\n");
  print_two_series("ECSRM", ecsrm.backbone_data_repair_series(), "SHARQFEC",
                   full.backbone_data_repair_series());
  std::printf("\nFigure 21: NACK packets on the source's backbone links per "
              "0.1 s\n");
  print_two_series("ECSRM", ecsrm.backbone_nack_series(), "SHARQFEC",
                   full.backbone_nack_series());

  auto total = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s;
  };
  std::printf("\nTotals at source: repairs+data ECSRM=%.0f SHARQFEC=%.0f | "
              "NACKs ECSRM=%.0f SHARQFEC=%.0f\n",
              total(ecsrm.backbone_data_repair_series()),
              total(full.backbone_data_repair_series()),
              total(ecsrm.backbone_nack_series()),
              total(full.backbone_nack_series()));
  return 0;
}
