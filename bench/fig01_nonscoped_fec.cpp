// Figure 1 reproduction: the example delivery tree and the normalized
// traffic volume a non-scoped hybrid ARQ/FEC protocol imposes when the
// source adds enough redundancy for the worst receiver (X, 9.73% loss).
//
// Paper quantities reproduced:
//   - P(all nodes receive a given packet) = 27.0%
//   - X's compounded loss = 9.73%
//   - every node, however lossless its own path, carries the redundancy
//     sized for X (normalized volume = 1 + h/k for all).
#include <cmath>
#include <cstdio>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/report.hpp"
#include "topo/shapes.hpp"

using namespace sharq;

int main() {
  sim::Simulator simu(1);
  net::Network net(simu);
  topo::ExampleTree tree = topo::make_figure1_tree(net);

  double p_all = 1.0;
  for (net::LinkId l = 0; l < net.link_count(); ++l) {
    if (net.link_from(l) < net.link_to(l)) {
      p_all *= 1.0 - net.link_loss_rate(l);
    }
  }
  std::printf("Figure 1: non-scoped FEC on the example delivery tree\n\n");
  std::printf("P(all receivers get a given packet) = %.1f%%  (paper: 27.0%%)\n",
              100.0 * p_all);
  const double worst = net.path_loss(tree.source, tree.worst_receiver);
  std::printf("worst receiver X compounded loss    = %.2f%%  (paper: 9.73%%)\n\n",
              100.0 * worst);

  // Non-scoped FEC: the source adds h parity per k=16 data packets such
  // that X can complete a group w.h.p. (Bernoulli loss; choose h so that
  // E[received] >= k with one std-dev margin.)
  const int k = 16;
  const double p = worst;
  int h = 0;
  for (; h <= 64; ++h) {
    const int n = k + h;
    const double mean = n * (1.0 - p);
    const double sd = std::sqrt(n * p * (1.0 - p));
    if (mean - sd >= k) break;
  }
  std::printf("redundancy sized for X: h = %d parity per k = %d (overhead %.1f%%)\n\n",
              h, k, 100.0 * h / k);

  stats::Table t({"receiver", "own-loss%", "traffic(non-scoped FEC)",
                  "traffic(ideal per-path)"});
  for (net::NodeId r : tree.receivers) {
    const double loss = net.path_loss(tree.source, r);
    // Ideal: redundancy sized for this receiver's own loss only.
    int hr = 0;
    for (; hr <= 64; ++hr) {
      const int n = k + hr;
      if (n * (1.0 - loss) - std::sqrt(n * loss * (1.0 - loss)) >= k) break;
    }
    t.add_row({std::to_string(r), stats::Table::num(100.0 * loss, 2),
               stats::Table::num(1.0 + static_cast<double>(h) / k, 3),
               stats::Table::num(1.0 + static_cast<double>(hr) / k, 3)});
  }
  t.print();
  std::printf(
      "\nEvery receiver pays X's redundancy (column 3 constant); the ideal\n"
      "per-path sizing (column 4) is what scoped injection approaches.\n");
  return 0;
}
