// Figures 11-13 reproduction: ratio of estimated to actual RTT for NACK
// senders at each level of the Figure 10 hierarchy (receiver 3 = mesh,
// 25 = middle, 36 = leaf). The paper sends fake NACKs at regular times and
// plots the per-receiver estimate/actual ratio; >50% of receivers land
// within a few percent, and estimates improve over successive
// measurements (EWMA).
#include <algorithm>
#include <cstdio>

#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "stats/report.hpp"
#include "stats/time_series.hpp"
#include "topo/figure10.hpp"

using namespace sharq;

int main() {
  sim::Simulator simu(20260705);
  net::Network net(simu);
  topo::Figure10 topo = topo::make_figure10(net);
  sfq::Config cfg;
  sfq::Session s(net, topo.source, topo.receivers, cfg);
  s.start();

  std::printf("Figures 11-13: estimated/actual RTT ratio for NACK senders\n");
  std::printf("(sender 3 = mesh level, 25 = middle level, 36 = leaf level)\n\n");

  const std::vector<net::NodeId> senders{3, 25, 36};
  // Measurement epochs: like the paper, repeated probes at regular times;
  // early epochs may see an unconverged hierarchy.
  const std::vector<double> epochs{8.0, 12.0, 16.0, 24.0, 40.0};
  for (net::NodeId sender : senders) {
    std::printf("# sender %d (figure %s)\n", sender,
                sender == 3 ? "11" : sender == 25 ? "12" : "13");
    std::printf("# t  median-ratio  p10  p90  frac-within-5%%  no-estimate\n");
    for (double t : epochs) {
      simu.run_until(t);
      auto hints = s.agent_for(sender).session().make_hints();
      std::vector<double> ratios;
      int missing = 0;
      for (net::NodeId r : topo.receivers) {
        if (r == sender) continue;
        const double actual = 2.0 * net.path_delay(r, sender);
        const double est =
            2.0 * s.agent_for(r).session().estimate_dist(sender, hints);
        if (est <= 0.0) {
          ++missing;
          continue;
        }
        ratios.push_back(est / actual);
      }
      std::sort(ratios.begin(), ratios.end());
      auto q = [&](double p) {
        return ratios[static_cast<std::size_t>(p * (ratios.size() - 1))];
      };
      const double within = static_cast<double>(std::count_if(
                                ratios.begin(), ratios.end(), [](double x) {
                                  return x >= 0.95 && x <= 1.05;
                                })) /
                            static_cast<double>(ratios.size());
      std::printf("%5.1f  %.3f  %.3f  %.3f  %.2f  %d\n", t, q(0.5), q(0.1),
                  q(0.9), within, missing);
    }
    std::printf("\n");
  }
  std::printf(
      "Paper's claim: >50%% of receivers estimate within a few percent, and\n"
      "early inaccuracies (suboptimal initial ZCRs) decay over successive\n"
      "measurements. Compare the frac-within-5%% column across epochs.\n");
  return 0;
}
