// Ablation: sensitivity to loss burstiness. The paper's FEC sizing rests
// on the MBone observation that losses are independent across receivers
// and roughly so in time; this harness keeps each link's MEAN loss rate
// fixed while stretching burst length (Gilbert-Elliott), and reports how
// SHARQFEC's recovery degrades. Group-spanning bursts defeat per-group
// parity, so NACK traffic should rise with burstiness.
#include <cstdio>

#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "stats/report.hpp"
#include "topo/figure10.hpp"

using namespace sharq;

namespace {

struct Row {
  double mean_burst;
  std::uint64_t nacks;
  std::uint64_t repairs;
  int incomplete;
};

Row run_with_burst(double p_bad_to_good) {
  sim::Simulator simu(606);
  net::Network net(simu);
  topo::Figure10 t = topo::make_figure10(net);
  // Replace each link's Bernoulli(p) with a Gilbert-Elliott process of the
  // same mean: bad-state loss 0.9, good-state 0; stationary bad fraction
  // pi = p / 0.9 gives p_gb = pi * p_bg / (1 - pi).
  for (net::LinkId l = 0; l < net.link_count(); ++l) {
    const double p = net.link_loss_rate(l);
    if (p <= 0.0) continue;
    const double pi = p / 0.9;
    const double p_gb = pi * p_bad_to_good / (1.0 - pi);
    net.set_loss_model(l, std::make_unique<net::GilbertElliottLoss>(
                              p_gb, p_bad_to_good, 0.0, 0.9));
  }
  rm::DeliveryLog log;
  sfq::Config cfg;
  sfq::Session s(net, t.source, t.receivers, cfg, &log);
  s.start();
  s.send_stream(64, 6.0);
  simu.run_until(60.0);
  Row r{};
  r.mean_burst = 1.0 / p_bad_to_good;
  for (auto& a : s.agents()) {
    r.nacks += a->transfer().nacks_sent();
    r.repairs += a->transfer().repairs_sent();
  }
  for (net::NodeId rx : t.receivers) {
    if (!log.complete(rx, 64)) ++r.incomplete;
  }
  return r;
}

}  // namespace

int main() {
  std::printf("Ablation: burst-loss sensitivity (fixed per-link mean loss)\n");
  std::printf("Gilbert-Elliott links, bad-state loss 0.9; burst length "
              "= 1/p(bad->good) packets\n\n");
  stats::Table t({"mean-burst-pkts", "nacks", "repairs", "incomplete-rx"});
  for (double p_bg : {1.0, 0.5, 0.25, 0.125, 0.0625}) {
    const Row r = run_with_burst(p_bg);
    t.add_row({stats::Table::num(r.mean_burst, 1), std::to_string(r.nacks),
               std::to_string(r.repairs), std::to_string(r.incomplete)});
  }
  t.print();
  std::printf(
      "\nShort bursts look Bernoulli and injection absorbs them; bursts\n"
      "approaching the group length (16 packets) overwhelm per-group\n"
      "parity and push recovery back onto ARQ rounds — quantifying how\n"
      "much the paper's independence assumption is doing.\n");
  return 0;
}
