// Figure 8 reproduction: receiver state/traffic reduction through indirect
// RTT estimation in the hypothetical 10M-receiver national distribution
// hierarchy (10 regions x 20 cities x 100 suburbs x 500 subscribers), plus
// a small-scale simulated cross-check that the session state a receiver
// actually holds matches the analytic count.
#include <cstdio>

#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "stats/report.hpp"
#include "topo/national.hpp"

using namespace sharq;

int main() {
  std::printf("Figure 8: session state reduction, national hierarchy\n\n");
  topo::NationalParams paper;  // 10 x 20 x 100 x 500
  topo::NationalAnalytics a = topo::analyze_national(paper);
  std::printf("total receivers: %lld (paper: 10,000,210)\n\n",
              static_cast<long long>(a.total_receivers));
  stats::Table t({"level", "receivers/zone", "zones", "receivers",
                  "RTTs/receiver", "scoped-traffic(n^2 sum)",
                  "state ratio (scoped : non-scoped)"});
  for (const auto& l : a.levels) {
    char ratio[64];
    std::snprintf(ratio, sizeof(ratio), "%lld : %lld",
                  static_cast<long long>(l.rtts_per_receiver),
                  static_cast<long long>(a.total_receivers));
    t.add_row({l.name, std::to_string(l.receivers_per_zone),
               std::to_string(l.zone_count), std::to_string(l.receivers_total),
               std::to_string(l.rtts_per_receiver),
               stats::Table::num(l.scoped_traffic, 0), ratio});
  }
  t.print();
  std::printf("\npaper's RTTs/receiver row: 10 / 30 / 130 / 630 -- matched.\n");
  std::printf("non-scoped alternative: every receiver tracks all %lld peers\n\n",
              static_cast<long long>(a.total_receivers));

  // Small-scale simulated cross-check (2 x 3 x 2 x 4): run the real scoped
  // session protocol and confirm a subscriber's observable-participant
  // count matches the analytic prediction.
  topo::NationalParams small;
  small.regions = 2;
  small.cities_per_region = 3;
  small.suburbs_per_city = 2;
  small.subscribers_per_suburb = 4;
  sim::Simulator simu(7);
  net::Network net(simu);
  topo::National n = topo::make_national(net, small);
  std::vector<net::NodeId> receivers;
  for (auto v : {&n.region_caches, &n.city_caches, &n.suburb_hubs,
                 &n.subscribers}) {
    receivers.insert(receivers.end(), v->begin(), v->end());
  }
  sfq::Config cfg;
  sfq::Session s(net, n.source, receivers, cfg);
  s.start();
  simu.run_until(30.0);

  topo::NationalAnalytics sa = topo::analyze_national(small);
  std::printf("small-scale check (2x3x2x4): analytic RTTs/subscriber = %lld\n",
              static_cast<long long>(sa.levels[3].rtts_per_receiver));
  // Observable participants for a subscriber: suburb peers + city suburbs
  // + region cities + national regions.
  const net::NodeId sub = n.subscribers.front();
  auto& sess = s.agent_for(sub).session();
  auto hints = sess.make_hints();
  std::printf("subscriber %d: chain levels=%zu, hints resolvable=%zu\n",
              sub, sess.chain().size(), hints.size());
  std::printf("estimate_dist(source) = %.4f s (actual one-way %.4f s)\n",
              sess.estimate_dist(n.source, {}), net.path_delay(sub, n.source));
  return 0;
}
