#include "srm/agent.hpp"

#include <algorithm>
#include <cassert>

namespace sharq::srm {

Agent::Agent(net::Network& net, net::ChannelId channel, net::NodeId node,
             Config config, rm::DeliveryLog* log)
    : net_(net),
      simu_(net.simulator()),
      channel_(channel),
      cfg_(config),
      log_(log),
      rng_(net.simulator().rng().fork()),
      session_timer_(net.simulator()),
      c1_(config.timers.c1),
      c2_(config.timers.c2),
      d1_(config.timers.d1),
      d2_(config.timers.d2) {
  net_.attach(node, this);
  net_.subscribe(channel_, node);
}

void Agent::start() { schedule_session(); }

void Agent::schedule_session() {
  const sim::Time delay = cfg_.stagger.next_delay(rng_, session_msgs_sent_);
  session_timer_.arm(delay, [this] {
    send_session_message();
    schedule_session();
  });
}

void Agent::send_session_message() {
  auto msg = std::make_shared<SessionMsg>();
  msg->sender = node();
  msg->ts = simu_.now();
  msg->max_seq_seen = max_seq_;
  msg->seen_any_data = seen_data_;
  msg->echoes.reserve(peer_clocks_.size());
  for (const auto& [peer, clock] : peer_clocks_) {
    if (!clock.valid) continue;
    msg->echoes.push_back(SessionMsg::Echo{
        peer, clock.last_ts, simu_.now() - clock.heard_at});
  }
  ++session_msgs_sent_;
  net_.send(node(), channel_, net::TrafficClass::kSession,
            session_msg_size(msg->echoes.size()), msg, /*lossless=*/true);
}

void Agent::send_stream(std::uint32_t count, sim::Time start_at) {
  is_source_ = true;
  source_ = node();
  const sim::Time interval =
      static_cast<double>(cfg_.packet_size_bytes) * 8.0 / cfg_.data_rate_bps;
  for (std::uint32_t s = 0; s < count; ++s) {
    simu_.at(
        start_at + interval * s,
        [this, s, count] {
      // Session messages advertise progress only once packets are truly
      // on the wire, otherwise receivers would chase phantom losses.
      seen_data_ = true;
      max_seq_ = std::max(max_seq_, s);
      mark_received(s, nullptr);
          auto msg = std::make_shared<DataMsg>();
          msg->seq = s;
          msg->last = (s + 1 == count);
          net_.send(node(), channel_, net::TrafficClass::kData,
                    cfg_.packet_size_bytes, msg);
        },
        "srm.source.send");
  }
}

sim::Time Agent::distance_to(net::NodeId peer) const {
  auto it = dist_.find(peer);
  return it == dist_.end() ? cfg_.default_dist : it->second;
}

sim::Time Agent::dist_to_source() const {
  return source_ == net::kNoNode ? cfg_.default_dist : distance_to(source_);
}

bool Agent::has(std::uint32_t seq) const {
  return seq < have_.size() && have_[seq];
}

void Agent::mark_received(
    std::uint32_t seq,
    const std::shared_ptr<const std::vector<std::uint8_t>>& bytes) {
  if (seq >= have_.size()) {
    have_.resize(seq + 1, false);
    payloads_.resize(seq + 1);
  }
  if (have_[seq]) return;
  have_[seq] = true;
  payloads_[seq] = bytes;
  ++held_;
  if (log_) log_->record(node(), seq, simu_.now());
}

void Agent::on_receive(const net::Packet& packet) {
  if (packet.channel != channel_) return;
  if (const auto* data = packet.as<DataMsg>()) {
    if (source_ == net::kNoNode) source_ = packet.origin;
    on_data(data->seq, data->bytes, net::TrafficClass::kData);
  } else if (const auto* repair = packet.as<RepairMsg>()) {
    handle_repair_heard(repair->seq);
    on_data(repair->seq, repair->bytes, net::TrafficClass::kRepair);
  } else if (const auto* req = packet.as<RequestMsg>()) {
    handle_request(*req);
  } else if (const auto* sess = packet.as<SessionMsg>()) {
    // Record the peer's clock for our next session message.
    PeerClock& clock = peer_clocks_[sess->sender];
    clock.last_ts = sess->ts;
    clock.heard_at = simu_.now();
    clock.valid = true;
    // If the peer echoed us, derive the RTT: now - our_ts - peer_hold.
    for (const SessionMsg::Echo& e : sess->echoes) {
      if (e.peer != node()) continue;
      const sim::Time rtt = simu_.now() - e.peer_ts - e.delay;
      if (rtt <= 0.0) break;
      const sim::Time d = rtt / 2.0;
      auto it = dist_.find(sess->sender);
      if (it == dist_.end()) {
        dist_[sess->sender] = d;
      } else {
        it->second = (1.0 - cfg_.dist_gain) * it->second + cfg_.dist_gain * d;
      }
      break;
    }
    // Tail-loss detection: the session message advertises the sender's
    // highest sequence; if it exceeds ours we have missed packets we could
    // not detect from gaps alone.
    if (sess->seen_any_data && !is_source_) {
      if (!seen_data_) {
        seen_data_ = true;
        max_seq_ = 0;
        if (!has(0)) start_request(0);
      }
      if (sess->max_seq_seen > max_seq_) {
        note_gap_up_to(sess->max_seq_seen);
        if (!has(sess->max_seq_seen)) start_request(sess->max_seq_seen);
        max_seq_ = sess->max_seq_seen;
      }
    }
  }
}

void Agent::on_data(
    std::uint32_t seq,
    const std::shared_ptr<const std::vector<std::uint8_t>>& bytes,
    net::TrafficClass) {
  if (!seen_data_) {
    seen_data_ = true;
    // Everything before the first packet we ever saw is also missing.
    for (std::uint32_t q = 0; q < seq; ++q) {
      if (!has(q)) start_request(q);
    }
    max_seq_ = seq;
  } else if (seq > max_seq_) {
    note_gap_up_to(seq);
    max_seq_ = seq;
  }
  const bool was_new = !has(seq);
  mark_received(seq, bytes);
  if (was_new) {
    auto it = requests_.find(seq);
    if (it != requests_.end()) {
      adapt_request_timers(it->second, simu_.now());
      requests_.erase(it);
    }
  }
}

void Agent::note_gap_up_to(std::uint32_t new_max) {
  // Packets (max_seq_, new_max) exclusive are now known missing.
  const std::uint32_t from = seen_data_ ? max_seq_ + 1 : 0;
  for (std::uint32_t q = from; q < new_max; ++q) {
    if (!has(q)) start_request(q);
  }
}

void Agent::start_request(std::uint32_t seq) {
  if (is_source_ || has(seq)) return;
  if (requests_.contains(seq)) return;
  PendingRequest pr;
  pr.timer = std::make_unique<sim::Timer>(simu_);
  pr.detected_at = simu_.now();
  pr.backoff = 0;
  auto [it, inserted] = requests_.emplace(seq, std::move(pr));
  (void)inserted;
  rm::TimerPolicy policy = cfg_.timers;
  policy.c1 = c1_;
  policy.c2 = c2_;
  const sim::Time delay =
      policy.request_delay(rng_, dist_to_source(), it->second.backoff);
  it->second.timer->arm(delay, [this, seq] { fire_request(seq); });
}

void Agent::fire_request(std::uint32_t seq) {
  auto it = requests_.find(seq);
  if (it == requests_.end() || has(seq)) return;
  auto msg = std::make_shared<RequestMsg>();
  msg->seq = seq;
  msg->requester = node();
  ++requests_sent_;
  it->second.requested_once = true;
  net_.send(node(), channel_, net::TrafficClass::kNack, 32, msg,
            /*lossless=*/true);
  // Back off and wait for the repair; if none arrives the timer refires.
  it->second.backoff = std::min(it->second.backoff + 1, cfg_.max_backoff_stage);
  rm::TimerPolicy policy = cfg_.timers;
  policy.c1 = c1_;
  policy.c2 = c2_;
  const sim::Time delay =
      policy.request_delay(rng_, dist_to_source(), it->second.backoff);
  it->second.timer->arm(delay, [this, seq] { fire_request(seq); });
}

void Agent::handle_request(const RequestMsg& req) {
  const std::uint32_t seq = req.seq;
  if (has(seq)) {
    // We can repair. Suppress if a reply is already pending or we are in
    // the post-repair holddown for this sequence.
    auto hd = holddown_until_.find(seq);
    if (hd != holddown_until_.end() && simu_.now() < hd->second) return;
    if (replies_.contains(seq)) return;
    PendingReply rep;
    rep.timer = std::make_unique<sim::Timer>(simu_);
    rep.requester = req.requester;
    auto [it, inserted] = replies_.emplace(seq, std::move(rep));
    (void)inserted;
    rm::TimerPolicy policy = cfg_.timers;
    policy.d1 = d1_;
    policy.d2 = d2_;
    const sim::Time delay =
        policy.reply_delay(rng_, distance_to(req.requester));
    it->second.timer->arm(delay, [this, seq] {
      auto jt = replies_.find(seq);
      if (jt == replies_.end()) return;
      auto msg = std::make_shared<RepairMsg>();
      msg->seq = seq;
      msg->repairer = node();
      msg->bytes = seq < payloads_.size() ? payloads_[seq] : nullptr;
      ++repairs_sent_;
      net_.send(node(), channel_, net::TrafficClass::kRepair,
                cfg_.packet_size_bytes, msg);
      holddown_until_[seq] = simu_.now() + cfg_.holddown_factor * dist_to_source();
      replies_.erase(jt);
      adapt_reply_timers(/*was_duplicate=*/false);
    });
    return;
  }
  // We are missing it too: suppression. Hearing another host's request
  // makes us back off our own pending request (SRM exponential backoff).
  if (seen_data_ && seq > max_seq_) {
    note_gap_up_to(seq);
    max_seq_ = std::max(max_seq_, seq);
  }
  auto it = requests_.find(seq);
  if (it == requests_.end()) {
    // We had not detected this loss yet.
    start_request(seq);
    return;
  }
  PendingRequest& pr = it->second;
  if (pr.requested_once) ++pr.dup_requests;
  pr.backoff = std::min(pr.backoff + 1, cfg_.max_backoff_stage);
  rm::TimerPolicy policy = cfg_.timers;
  policy.c1 = c1_;
  policy.c2 = c2_;
  const sim::Time delay =
      policy.request_delay(rng_, dist_to_source(), pr.backoff);
  pr.timer->arm(delay, [this, seq] { fire_request(seq); });
}

void Agent::handle_repair_heard(std::uint32_t seq) {
  // A repair suppresses our own pending reply for the same data.
  auto it = replies_.find(seq);
  if (it != replies_.end()) {
    ++dup_repairs_;
    replies_.erase(it);
    adapt_reply_timers(/*was_duplicate=*/true);
  }
  if (has(seq)) {
    holddown_until_[seq] =
        simu_.now() + cfg_.holddown_factor * dist_to_source();
  }
}

void Agent::adapt_reply_timers(bool was_duplicate) {
  if (!cfg_.adaptive_timers) return;
  // Mirror of the request adaptation (Floyd et al. '95): widen the reply
  // window when our replies keep colliding with other repairers'; shrink
  // it slowly while we answer without duplication.
  ave_dup_rep_ = 0.75 * ave_dup_rep_ + 0.25 * (was_duplicate ? 1.0 : 0.0);
  if (ave_dup_rep_ >= 0.5) {
    d1_ += 0.05;
    d2_ += 0.25;
  } else if (ave_dup_rep_ < 0.2) {
    d1_ -= 0.025;
    d2_ -= 0.05;
  }
  d1_ = std::clamp(d1_, cfg_.d1_min, cfg_.d1_max);
  d2_ = std::clamp(d2_, cfg_.d2_min, cfg_.d2_max);
}

void Agent::adapt_request_timers(const PendingRequest& done, sim::Time now) {
  if (!cfg_.adaptive_timers) return;
  if (!done.requested_once && done.dup_requests == 0) {
    // Recovered purely by someone else's request/repair: counts as zero
    // duplicates and does not update the delay average.
    ave_dup_req_ = 0.75 * ave_dup_req_;
    return;
  }
  const double d = std::max(dist_to_source(), 1e-6);
  const double delay_units = (now - done.detected_at) / d;
  ave_dup_req_ = 0.75 * ave_dup_req_ + 0.25 * done.dup_requests;
  ave_req_delay_ = 0.75 * ave_req_delay_ + 0.25 * delay_units;
  // Floyd et al. '95: grow the window when duplicates are common; shrink
  // it (bounded) when duplicates are rare but recovery is slow.
  if (ave_dup_req_ >= 1.0) {
    c1_ += 0.1;
    c2_ += 0.5;
  } else if (ave_dup_req_ < 0.9) {
    if (ave_req_delay_ > 2.0 * (c1_ + c2_)) c2_ -= 0.1;
    c1_ -= 0.05;
  }
  c1_ = std::clamp(c1_, cfg_.c1_min, cfg_.c1_max);
  c2_ = std::clamp(c2_, cfg_.c2_min, cfg_.c2_max);
}

}  // namespace sharq::srm
