#include "srm/session.hpp"

#include <stdexcept>

namespace sharq::srm {

Session::Session(net::Network& net, net::NodeId source,
                 const std::vector<net::NodeId>& receivers, Config config,
                 rm::DeliveryLog* log) {
  channel_ = net.create_channel(net::kNoZone);
  agents_.push_back(std::make_unique<Agent>(net, channel_, source, config, log));
  for (net::NodeId r : receivers) {
    agents_.push_back(std::make_unique<Agent>(net, channel_, r, config, log));
  }
}

void Session::start() {
  for (auto& a : agents_) a->start();
}

Agent& Session::agent_for(net::NodeId node) {
  for (auto& a : agents_) {
    if (a->node() == node) return *a;
  }
  throw std::out_of_range("no SRM agent for node");
}

}  // namespace sharq::srm
