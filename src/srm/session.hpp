#pragma once

#include <memory>
#include <vector>

#include "srm/agent.hpp"

namespace sharq::srm {

/// Convenience owner of a full SRM session: one source, many receivers,
/// one global multicast channel.
class Session {
 public:
  /// Create agents for `source` and each node in `receivers`.
  Session(net::Network& net, net::NodeId source,
          const std::vector<net::NodeId>& receivers, Config config,
          rm::DeliveryLog* log = nullptr);

  /// Start session messaging on every member.
  void start();

  /// Emit the data stream from the source.
  void send_stream(std::uint32_t count, sim::Time start_at) {
    source_agent().send_stream(count, start_at);
  }

  net::ChannelId channel() const { return channel_; }
  Agent& source_agent() { return *agents_.front(); }
  Agent& agent_for(net::NodeId node);
  const std::vector<std::unique_ptr<Agent>>& agents() const { return agents_; }

 private:
  net::ChannelId channel_;
  std::vector<std::unique_ptr<Agent>> agents_;  // [0] = source
};

}  // namespace sharq::srm
