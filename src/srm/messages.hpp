#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace sharq::srm {

/// One original data packet of the SRM stream.
struct DataMsg final : net::MessageBase {
  std::uint32_t seq = 0;
  bool last = false;  ///< final packet of the stream
  std::shared_ptr<const std::vector<std::uint8_t>> bytes;  ///< optional payload
};

/// A repair request ("NACK") for one sequence number.
struct RequestMsg final : net::MessageBase {
  std::uint32_t seq = 0;
  net::NodeId requester = net::kNoNode;
};

/// A retransmission of one sequence number.
struct RepairMsg final : net::MessageBase {
  std::uint32_t seq = 0;
  net::NodeId repairer = net::kNoNode;
  std::shared_ptr<const std::vector<std::uint8_t>> bytes;
};

/// Periodic session message. SRM session messages let every member
/// estimate its RTT to every other member: each message carries the
/// sender's clock plus, per peer, the last timestamp heard from that peer
/// and how long ago it arrived. This is the O(n^2) traffic SHARQFEC's
/// scoped session management replaces.
struct SessionMsg final : net::MessageBase {
  net::NodeId sender = net::kNoNode;
  sim::Time ts = 0.0;  ///< sender clock at transmission
  std::uint32_t max_seq_seen = 0;
  bool seen_any_data = false;
  struct Echo {
    net::NodeId peer = net::kNoNode;
    sim::Time peer_ts = 0.0;  ///< last timestamp heard from peer
    sim::Time delay = 0.0;    ///< time elapsed since hearing it
  };
  std::vector<Echo> echoes;
};

/// Wire size of a session message with n echoes (sender+ts+maxseq plus
/// 16 bytes per echo) — what makes non-scoped session traffic O(n^2).
inline int session_msg_size(std::size_t echoes) {
  return 16 + static_cast<int>(echoes) * 16;
}

}  // namespace sharq::srm
