#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "rm/delivery_log.hpp"
#include "rm/timers.hpp"
#include "sim/simulator.hpp"
#include "srm/messages.hpp"

namespace sharq::srm {

/// Tunables for the SRM baseline.
struct Config {
  rm::TimerPolicy timers;       ///< C1,C2 request / D1,D2 reply windows
  bool adaptive_timers = true;  ///< Floyd et al. '95 adaptive adjustment
  rm::SessionStagger stagger;   ///< session message pacing
  int packet_size_bytes = 1000;
  double data_rate_bps = 800e3;
  sim::Time default_dist = 0.050;  ///< distance before session converges
  /// After sending a repair, ignore further requests for that seq for
  /// `holddown_factor * d_source` seconds.
  double holddown_factor = 3.0;
  /// EWMA gain for distance estimates from session messages.
  double dist_gain = 0.5;
  /// Bounds for adaptive timer parameters.
  double c1_min = 0.5, c1_max = 8.0, c2_min = 1.0, c2_max = 16.0;
  double d1_min = 0.5, d1_max = 8.0, d2_min = 1.0, d2_max = 16.0;
  /// Request backoff cap: 2^6 * [C1 d, (C1+C2) d] is already tens of
  /// seconds; growing further turns a suppressed receiver into a stalled
  /// one when its repairs keep getting lost.
  int max_backoff_stage = 6;
};

/// One SRM endpoint (source or receiver). All SRM traffic — data,
/// requests, repairs, session messages — travels on a single global
/// multicast channel, exactly as in Floyd et al. '95.
class Agent final : public net::Agent {
 public:
  /// Attach an agent to `node`. The channel must be subscribed by every
  /// session member. `log` may be null.
  Agent(net::Network& net, net::ChannelId channel, net::NodeId node,
        Config config, rm::DeliveryLog* log);

  /// Begin session messaging (call for every member before data starts).
  void start();

  /// Source API: emit `count` packets at the configured CBR rate starting
  /// at absolute time `start_at`.
  void send_stream(std::uint32_t count, sim::Time start_at);

  void on_receive(const net::Packet& packet) override;

  // --- inspection -----------------------------------------------------------
  bool has(std::uint32_t seq) const;
  std::uint32_t packets_held() const { return held_; }
  std::uint32_t max_seq_seen() const { return max_seq_; }
  bool seen_any_data() const { return seen_data_; }
  sim::Time distance_to(net::NodeId peer) const;
  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t repairs_sent() const { return repairs_sent_; }
  std::uint64_t duplicate_repairs_heard() const { return dup_repairs_; }
  const Config& config() const { return cfg_; }
  double adapted_c1() const { return c1_; }
  double adapted_c2() const { return c2_; }

 private:
  struct PendingRequest {
    std::unique_ptr<sim::Timer> timer;
    int backoff = 0;          // i in 2^i
    int dup_requests = 0;     // duplicates heard this recovery
    sim::Time detected_at = 0.0;
    bool requested_once = false;
  };
  struct PendingReply {
    std::unique_ptr<sim::Timer> timer;
    net::NodeId requester = net::kNoNode;
  };

  void send_session_message();
  void schedule_session();
  void on_data(std::uint32_t seq,
               const std::shared_ptr<const std::vector<std::uint8_t>>& bytes,
               net::TrafficClass cls);
  void note_gap_up_to(std::uint32_t new_max);
  void start_request(std::uint32_t seq);
  void fire_request(std::uint32_t seq);
  void handle_request(const RequestMsg& req);
  void handle_repair_heard(std::uint32_t seq);
  void adapt_request_timers(const PendingRequest& done, sim::Time now);
  void adapt_reply_timers(bool was_duplicate);
  void mark_received(std::uint32_t seq,
                     const std::shared_ptr<const std::vector<std::uint8_t>>&
                         bytes);
  sim::Time dist_to_source() const;

  net::Network& net_;
  sim::Simulator& simu_;
  net::ChannelId channel_;
  Config cfg_;
  rm::DeliveryLog* log_;
  sim::Rng rng_;

  // data state
  std::vector<bool> have_;
  std::vector<std::shared_ptr<const std::vector<std::uint8_t>>> payloads_;
  std::uint32_t held_ = 0;
  std::uint32_t max_seq_ = 0;
  bool seen_data_ = false;
  net::NodeId source_ = net::kNoNode;
  bool is_source_ = false;

  // recovery state
  std::unordered_map<std::uint32_t, PendingRequest> requests_;
  std::unordered_map<std::uint32_t, PendingReply> replies_;
  std::unordered_map<std::uint32_t, sim::Time> holddown_until_;

  // session state
  sim::Timer session_timer_;
  int session_msgs_sent_ = 0;
  struct PeerClock {
    sim::Time last_ts = 0.0;
    sim::Time heard_at = 0.0;
    bool valid = false;
  };
  // Ordered: iterated into session-message echo entries, i.e. wire order.
  std::map<net::NodeId, PeerClock> peer_clocks_;
  std::unordered_map<net::NodeId, sim::Time> dist_;  // lookups only

  // adaptive timer state (Floyd et al. '95 appendix, simplified: see
  // adapt_request_timers)
  double c1_, c2_, d1_, d2_;
  double ave_dup_req_ = 0.0;
  double ave_req_delay_ = 0.0;
  double ave_dup_rep_ = 0.0;

  // counters
  std::uint64_t requests_sent_ = 0;
  std::uint64_t repairs_sent_ = 0;
  std::uint64_t dup_repairs_ = 0;
};

}  // namespace sharq::srm
