#include "topo/national.hpp"

#include <cassert>

namespace sharq::topo {

National make_national(net::Network& net, const NationalParams& p) {
  assert(net.node_count() == 0 && "national builder needs a fresh network");
  National n;
  n.params = p;
  net::ZoneHierarchy& zones = net.zones();

  n.source = net.add_node();
  n.z_national = zones.add_root();
  zones.assign(n.source, n.z_national);

  for (int r = 0; r < p.regions; ++r) {
    const net::NodeId region = net.add_node();
    n.region_caches.push_back(region);
    net::LinkConfig cfg;
    cfg.bandwidth_bps = p.backbone_bps;
    cfg.delay = p.region_delay;
    net.add_duplex_link(n.source, region, cfg);
    const net::ZoneId zr = zones.add_zone(n.z_national);
    n.z_regions.push_back(zr);
    zones.assign(region, zr);

    for (int c = 0; c < p.cities_per_region; ++c) {
      const net::NodeId city = net.add_node();
      n.city_caches.push_back(city);
      net::LinkConfig ccfg;
      ccfg.bandwidth_bps = p.metro_bps;
      ccfg.delay = p.city_delay;
      net.add_duplex_link(region, city, ccfg);
      const net::ZoneId zc = zones.add_zone(zr);
      n.z_cities.push_back(zc);
      zones.assign(city, zc);

      for (int s = 0; s < p.suburbs_per_city; ++s) {
        const net::NodeId hub = net.add_node();
        n.suburb_hubs.push_back(hub);
        net::LinkConfig scfg;
        scfg.bandwidth_bps = p.access_bps;
        scfg.delay = p.suburb_delay;
        net.add_duplex_link(city, hub, scfg);
        const net::ZoneId zs = zones.add_zone(zc);
        n.z_suburbs.push_back(zs);
        zones.assign(hub, zs);

        for (int u = 0; u < p.subscribers_per_suburb; ++u) {
          const net::NodeId sub = net.add_node();
          n.subscribers.push_back(sub);
          net::LinkConfig ucfg;
          ucfg.bandwidth_bps = p.access_bps;
          ucfg.delay = p.subscriber_delay;
          ucfg.loss_rate = p.access_loss;
          net.add_duplex_link(hub, sub, ucfg);
          zones.assign(sub, zs);
        }
      }
    }
  }
  return n;
}

NationalAnalytics analyze_national(const NationalParams& p) {
  NationalAnalytics a;
  const std::int64_t regions = p.regions;
  const std::int64_t cities = regions * p.cities_per_region;
  const std::int64_t suburbs = cities * p.suburbs_per_city;
  const std::int64_t subs = suburbs * p.subscribers_per_suburb;
  // Receivers: one cache per region and per city, plus the subscribers
  // (one of the 500 per suburb doubles as the suburb ZCR) -- the paper's
  // 10 + 200 + 10,000,000 = 10,000,210 receivers.
  a.total_receivers = regions + cities + subs;
  const double n_all = static_cast<double>(a.total_receivers) + 1.0;  // +src

  // Participants per zone at each level: the zone's own direct receivers
  // plus the ZCRs of its child zones (plus the sender at national level).
  const std::int64_t part_national = regions;        // 10 region ZCRs
  const std::int64_t part_region = p.cities_per_region;   // 20 city ZCRs
  const std::int64_t part_city = p.suburbs_per_city;      // 100 suburb ZCRs
  const std::int64_t part_suburb = p.subscribers_per_suburb;

  auto level = [&](const char* name, std::int64_t recv_per_zone,
                   std::int64_t zone_count, std::int64_t recv_total,
                   std::initializer_list<std::int64_t> observable) {
    NationalAnalytics::Level l;
    l.name = name;
    l.receivers_per_zone = recv_per_zone;
    l.zone_count = zone_count;
    l.receivers_total = recv_total;
    std::int64_t rtts = 0;
    double traffic = 0.0;
    for (std::int64_t nz : observable) {
      rtts += nz;
      // sharq-lint: float-accum-ok (iteration order fixed: zone-indexed vector of a static topology)
      traffic += static_cast<double>(nz) * static_cast<double>(nz);
    }
    l.rtts_per_receiver = rtts;
    l.scoped_traffic = traffic;
    l.nonscoped_traffic = n_all * n_all;
    l.scoped_state_ratio = static_cast<double>(rtts) / n_all;
    a.levels.push_back(l);
  };

  // A receiver at a given level observes its own zone plus every ancestor
  // zone's participant set (the paper's "RTTs maintained/receiver" row:
  // 10 / 30 / 130 / 630 for the default parameters).
  level("National", 0, 1, regions, {part_national});
  level("Regional", 1, regions, regions, {part_national, part_region});
  level("City", 1, cities, cities, {part_national, part_region, part_city});
  level("Suburb", p.subscribers_per_suburb, suburbs, subs,
        {part_national, part_region, part_city, part_suburb});
  return a;
}

}  // namespace sharq::topo
