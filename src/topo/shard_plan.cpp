#include "topo/shard_plan.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "stats/lane.hpp"

namespace sharq::topo {

net::ShardMap make_zone_shard_map(const net::Network& net, int max_shards) {
  net::ShardMap map;
  map.shard_of.assign(static_cast<std::size_t>(net.node_count()), 0);

  const net::ZoneHierarchy& zones = net.zones();
  const int budget = std::min(max_shards, stats::kMaxLanes);
  if (budget < 2 || zones.root() == net::kNoZone) return map;
  const std::vector<net::ZoneId>& tops = zones.children(zones.root());
  if (tops.empty()) return map;

  // One shard per top-level zone subtree, plus shard 0 for the root
  // zone's own members; round-robin subtrees when the budget is smaller.
  // children() is a vector in creation order, so the assignment is a
  // pure function of the topology.
  const int nshards =
      std::min(static_cast<int>(tops.size()) + 1, budget);
  for (std::size_t i = 0; i < tops.size(); ++i) {
    const int shard = 1 + static_cast<int>(i) % (nshards - 1);
    // sharq-lint: unordered-iter-ok (every member gets the same shard id)
    for (net::NodeId n : zones.members(tops[i])) {
      map.shard_of[static_cast<std::size_t>(n)] = shard;
    }
  }

  // Conservative lookahead: a packet crossing shards rides a link whose
  // propagation delay is at least this, so nothing sent inside a window
  // [h, h + lookahead) can land before the window ends. A zero-delay
  // cross-shard link would make the window empty — fall back to serial.
  sim::Time lookahead = sim::kTimeInfinity;
  for (net::LinkId l = 0; l < net.link_count(); ++l) {
    if (map.shard_of[static_cast<std::size_t>(net.link_from(l))] !=
        map.shard_of[static_cast<std::size_t>(net.link_to(l))]) {
      lookahead = std::min(lookahead, net.link_delay(l));
    }
  }
  if (lookahead <= 0.0) {
    map.shard_of.assign(static_cast<std::size_t>(net.node_count()), 0);
    return map;  // nshards stays 1
  }
  map.nshards = nshards;
  map.lookahead = lookahead;
  return map;
}

}  // namespace sharq::topo
