#pragma once

#include "net/shard_map.hpp"

namespace sharq::net {
class Network;
}  // namespace sharq::net

namespace sharq::topo {

/// Partition a topology into shards along its top-level zone boundaries.
///
/// Shard 0 takes the root zone's direct members (the source side) and any
/// node outside the hierarchy; each direct child of the root zone — a ZCR
/// subtree — becomes its own shard, round-robined when there are more
/// top-level zones than `max_shards - 1` slots. The paper's scoping
/// argument is what makes this a good cut: zones interact only through
/// their ZCR/parent links, whose propagation delays bound how soon one
/// shard can affect another and therefore set the merge lookahead.
///
/// Returns a map with nshards == 1 (serial fallback) when the hierarchy
/// has no top-level zones, when there is only one shard's worth of nodes,
/// or when some cross-shard link has zero delay (no usable lookahead).
/// `max_shards` is clamped to stats::kMaxLanes.
net::ShardMap make_zone_shard_map(const net::Network& net, int max_shards);

}  // namespace sharq::topo
