#include "topo/figure10.hpp"

#include <cassert>

namespace sharq::topo {

std::vector<net::NodeId> Figure10::middles_of(int m) const {
  assert(m >= 0 && m < static_cast<int>(mesh.size()));
  return {middles[3 * m], middles[3 * m + 1], middles[3 * m + 2]};
}

std::vector<net::NodeId> Figure10::leaves_of(int c) const {
  assert(c >= 0 && c < static_cast<int>(middles.size()));
  return {leaves[4 * c], leaves[4 * c + 1], leaves[4 * c + 2],
          leaves[4 * c + 3]};
}

Figure10 make_figure10(net::Network& net, const Figure10Options& opt) {
  assert(net.node_count() == 0 && "figure 10 numbering needs a fresh network");
  assert(opt.backbone_loss.size() == 7 && opt.backbone_delay.size() == 7);

  Figure10 t;
  t.source = net.add_node();  // node 0

  for (int m = 0; m < 7; ++m) t.mesh.push_back(net.add_node());       // 1-7
  for (int c = 0; c < 21; ++c) t.middles.push_back(net.add_node());   // 8-28
  for (int l = 0; l < 84; ++l) t.leaves.push_back(net.add_node());    // 29-112

  t.receivers = t.mesh;
  t.receivers.insert(t.receivers.end(), t.middles.begin(), t.middles.end());
  t.receivers.insert(t.receivers.end(), t.leaves.begin(), t.leaves.end());

  // Source -> mesh backbone links (45 Mbit/s, per-tree loss and latency).
  for (int m = 0; m < 7; ++m) {
    net::LinkConfig cfg;
    cfg.bandwidth_bps = opt.backbone_bandwidth_bps;
    cfg.delay = opt.backbone_delay[m];
    cfg.loss_rate = opt.backbone_loss[m];
    cfg.queue_limit_pkts = opt.queue_limit_pkts;
    net.add_duplex_link(t.source, t.mesh[m], cfg);
  }
  // Mesh interconnect: a ring among the 7 backbone receivers. Shortest
  // paths from the source never use these, but they exist so backbone
  // failure/rerouting scenarios and mesh-shaped sessions can be exercised.
  for (int m = 0; m < 7; ++m) {
    net::LinkConfig cfg;
    cfg.bandwidth_bps = opt.backbone_bandwidth_bps;
    cfg.delay = 0.030;
    cfg.loss_rate = 0.01;
    cfg.queue_limit_pkts = opt.queue_limit_pkts;
    net.add_duplex_link(t.mesh[m], t.mesh[(m + 1) % 7], cfg);
  }
  // Mesh -> middle links (8% loss) and middle -> leaf links (4% loss).
  for (int m = 0; m < 7; ++m) {
    for (int j = 0; j < 3; ++j) {
      const int c = 3 * m + j;
      net::LinkConfig cfg;
      cfg.bandwidth_bps = opt.tree_bandwidth_bps;
      cfg.delay = opt.tree_link_delay;
      cfg.loss_rate = opt.mesh_child_loss;
      cfg.queue_limit_pkts = opt.queue_limit_pkts;
      net.add_duplex_link(t.mesh[m], t.middles[c], cfg);
      for (int i = 0; i < 4; ++i) {
        net::LinkConfig leaf_cfg;
        leaf_cfg.bandwidth_bps = opt.tree_bandwidth_bps;
        leaf_cfg.delay = opt.tree_link_delay;
        leaf_cfg.loss_rate = opt.child_leaf_loss;
        leaf_cfg.queue_limit_pkts = opt.queue_limit_pkts;
        net.add_duplex_link(t.middles[c], t.leaves[4 * c + i], leaf_cfg);
      }
    }
  }

  if (opt.build_zones) {
    net::ZoneHierarchy& zones = net.zones();
    t.z_root = zones.add_root();
    zones.assign(t.source, t.z_root);
    for (int m = 0; m < 7; ++m) {
      const net::ZoneId tz = zones.add_zone(t.z_root);
      t.tree_zones.push_back(tz);
      zones.assign(t.mesh[m], tz);
      for (int j = 0; j < 3; ++j) {
        const int c = 3 * m + j;
        const net::ZoneId lz = zones.add_zone(tz);
        t.leaf_zones.push_back(lz);
        zones.assign(t.middles[c], lz);
        for (int i = 0; i < 4; ++i) zones.assign(t.leaves[4 * c + i], lz);
      }
    }
  }
  return t;
}

}  // namespace sharq::topo
