#pragma once

#include <vector>

#include "net/network.hpp"

namespace sharq::topo {

/// The evaluation topology of the paper's §6 (Figure 10): a source (node 0)
/// feeding a mesh of 7 backbone receivers, each of which roots a balanced
/// tree (3 children, 4 leaves per child), for 112 receivers in total, plus
/// a 3-level administrative-scope hierarchy overlaid on the trees.
///
/// Node numbering matches the paper's: 0 = source, 1-7 = mesh nodes,
/// 8-28 = middle nodes (3 per mesh node), 29-112 = leaves (4 per middle
/// node). The paper states leaves 53.. (under mesh node 3) see the worst
/// compounded loss (~28.3%) and leaves 89-100 (under mesh node 6) the
/// least (~13.4%); the backbone loss rates below are chosen to reproduce
/// those endpoints, since the figure carrying the exact values is an image.
///
/// Link parameters from the paper: source->mesh links 45 Mbit/s, all other
/// links 10 Mbit/s; intra-tree link latency 20 ms; mesh->child links lose
/// 8%, child->leaf links lose 4%.
struct Figure10 {
  net::NodeId source = net::kNoNode;       ///< node 0
  std::vector<net::NodeId> mesh;           ///< nodes 1-7
  std::vector<net::NodeId> middles;        ///< nodes 8-28
  std::vector<net::NodeId> leaves;         ///< nodes 29-112
  std::vector<net::NodeId> receivers;      ///< nodes 1-112

  net::ZoneId z_root = net::kNoZone;       ///< global scope (source + all)
  std::vector<net::ZoneId> tree_zones;     ///< one per mesh node (7)
  std::vector<net::ZoneId> leaf_zones;     ///< one per middle node (21)

  /// Middle-node children of mesh node m (0-based index into mesh).
  std::vector<net::NodeId> middles_of(int m) const;
  /// Leaf children of middle node index c (0-based index into middles).
  std::vector<net::NodeId> leaves_of(int c) const;
};

/// Options for the builder (defaults reproduce the paper's setup).
struct Figure10Options {
  /// Per-tree cumulative backbone loss (source -> mesh node m). Tuned so
  /// trees differ, tree 3 is worst and tree 6 best, matching the quoted
  /// 28.3% / 13.4% compounded leaf losses.
  std::vector<double> backbone_loss = {0.08,   0.12, 0.188, 0.10,
                                       0.06,   0.0196, 0.04};
  /// Source -> mesh propagation delays (the paper's backbone latencies are
  /// in the unreadable figure; these span the same 10-50 ms regime).
  std::vector<sim::Time> backbone_delay = {0.030, 0.045, 0.020, 0.040,
                                           0.010, 0.025, 0.035};
  double mesh_child_loss = 0.08;  ///< mesh -> middle (paper)
  double child_leaf_loss = 0.04;  ///< middle -> leaf (paper)
  sim::Time tree_link_delay = 0.020;  ///< paper: 20 ms per intra-tree link
  double backbone_bandwidth_bps = 45e6;  ///< paper: 45 Mbit/s
  double tree_bandwidth_bps = 10e6;      ///< paper: 10 Mbit/s
  int queue_limit_pkts = -1;  ///< per-link queue bound (-1 = unbounded)
  bool build_zones = true;  ///< overlay the 3-level scope hierarchy
};

/// Build the Figure 10 topology (and optionally its zone overlay) into
/// `net`. Must be called on an empty network so the node numbering holds.
Figure10 make_figure10(net::Network& net,
                       const Figure10Options& opt = Figure10Options{});

}  // namespace sharq::topo
