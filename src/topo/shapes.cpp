#include "topo/shapes.hpp"

#include <cassert>
#include <cmath>
#include <utility>

namespace sharq::topo {

Chain make_chain(net::Network& net, int n, const net::LinkConfig& link) {
  assert(n >= 1);
  Chain c;
  c.nodes.reserve(n);
  for (int i = 0; i < n; ++i) c.nodes.push_back(net.add_node());
  for (int i = 0; i + 1 < n; ++i) {
    net.add_duplex_link(c.nodes[i], c.nodes[i + 1], link);
  }
  return c;
}

Chain make_chain(net::Network& net, const std::vector<sim::Time>& delays,
                 double bandwidth_bps) {
  Chain c;
  const int n = static_cast<int>(delays.size()) + 1;
  for (int i = 0; i < n; ++i) c.nodes.push_back(net.add_node());
  for (int i = 0; i + 1 < n; ++i) {
    net::LinkConfig cfg;
    cfg.bandwidth_bps = bandwidth_bps;
    cfg.delay = delays[i];
    net.add_duplex_link(c.nodes[i], c.nodes[i + 1], cfg);
  }
  return c;
}

Star make_star(net::Network& net, const std::vector<sim::Time>& leaf_delays,
               double bandwidth_bps) {
  Star s;
  s.hub = net.add_node();
  for (sim::Time d : leaf_delays) {
    const net::NodeId leaf = net.add_node();
    net::LinkConfig cfg;
    cfg.bandwidth_bps = bandwidth_bps;
    cfg.delay = d;
    net.add_duplex_link(s.hub, leaf, cfg);
    s.leaves.push_back(leaf);
  }
  return s;
}

BalancedTree make_balanced_tree(net::Network& net, int depth, int fanout,
                                const net::LinkConfig& link) {
  assert(depth >= 0 && fanout >= 1);
  BalancedTree t;
  t.root = net.add_node();
  t.levels.push_back({t.root});
  t.all.push_back(t.root);
  for (int d = 1; d <= depth; ++d) {
    std::vector<net::NodeId> level;
    for (net::NodeId parent : t.levels[d - 1]) {
      for (int f = 0; f < fanout; ++f) {
        const net::NodeId child = net.add_node();
        net.add_duplex_link(parent, child, link);
        level.push_back(child);
        t.all.push_back(child);
      }
    }
    t.levels.push_back(std::move(level));
  }
  t.leaves = t.levels.back();
  return t;
}

ExampleTree make_figure1_tree(net::Network& net) {
  // Reconstruction of the Figure 1 example (the figure itself is an image;
  // the paper quotes two derived numbers which this tree reproduces):
  //
  //   source S
  //   +-- R1 (0.5%) -- 3 leaves at 1%, 2%, 1%          (nearly lossless)
  //   +-- R2 (1.0%) -- 3 leaves at 5%, 6%, 7%
  //   +-- R3 (3.0%) -- 1 leaf  at 6.94%                 <- receiver X
  //   +-- R4 (2.0%) -- 14 leaves at y%                  (congested fan-out)
  //
  // X's compounded loss: 1 - 0.97 * 0.9306 = 9.732%            (paper: 9.73%)
  // y is solved so the product of (1 - loss) over every link is 0.270
  // (paper: P(all nodes receive a given packet) = 27.0%).
  ExampleTree t;
  t.source = net.add_node();

  auto relay = [&](double loss) {
    const net::NodeId r = net.add_node();
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 10e6;
    cfg.delay = 0.010;
    cfg.loss_rate = loss;
    net.add_duplex_link(t.source, r, cfg);
    t.relays.push_back(r);
    return r;
  };
  auto leaf = [&](net::NodeId parent, double loss) {
    const net::NodeId l = net.add_node();
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 10e6;
    cfg.delay = 0.010;
    cfg.loss_rate = loss;
    net.add_duplex_link(parent, l, cfg);
    t.receivers.push_back(l);
    return l;
  };

  const net::NodeId r1 = relay(0.005);
  const net::NodeId r2 = relay(0.010);
  const net::NodeId r3 = relay(0.030);
  const net::NodeId r4 = relay(0.020);

  double survive = 0.995 * 0.990 * 0.970 * 0.980;  // the four relay links

  for (double l : {0.01, 0.02, 0.01}) {
    leaf(r1, l);
    survive *= 1.0 - l;
  }
  for (double l : {0.05, 0.06, 0.07}) {
    leaf(r2, l);
    survive *= 1.0 - l;
  }
  t.worst_receiver = leaf(r3, 0.0694);
  survive *= 1.0 - 0.0694;

  // Solve the uniform loss y on R4's 14 leaf links so that
  // survive * (1-y)^14 == 0.270 exactly.
  constexpr int kR4Leaves = 14;
  const double y = 1.0 - std::pow(0.270 / survive, 1.0 / kR4Leaves);
  for (int i = 0; i < kR4Leaves; ++i) leaf(r4, y);

  return t;
}

DeepTree make_deep_tree(net::Network& net, const DeepTreeParams& p) {
  DeepTree t;
  net::ZoneHierarchy& zones = net.zones();

  t.source = net.add_node();
  t.root_zone = zones.add_root();
  zones.assign(t.source, t.root_zone);

  // Frontier of the previous hub level: (node, zone) pairs. One pass per
  // level keeps the build O(total nodes) — no path queries.
  std::vector<std::pair<net::NodeId, net::ZoneId>> frontier{
      {t.source, t.root_zone}};
  net::LinkConfig hub_link;
  hub_link.bandwidth_bps = p.hub_bps;
  hub_link.delay = p.hub_delay;
  hub_link.queue_limit_pkts = p.queue_limit_pkts;
  net::LinkConfig leaf_link;
  leaf_link.bandwidth_bps = p.leaf_bps;
  leaf_link.delay = p.leaf_delay;
  leaf_link.loss_rate = p.leaf_loss;
  leaf_link.queue_limit_pkts = p.queue_limit_pkts;

  for (int level = 1; level <= p.zone_depth; ++level) {
    std::vector<std::pair<net::NodeId, net::ZoneId>> next;
    next.reserve(frontier.size() * static_cast<std::size_t>(p.fanout));
    for (const auto& [parent, pzone] : frontier) {
      for (int c = 0; c < p.fanout; ++c) {
        const net::NodeId hub = net.add_node();
        net.add_duplex_link(parent, hub, hub_link);
        const net::ZoneId z = zones.add_zone(pzone);
        zones.assign(hub, z);
        t.hubs.push_back(hub);
        t.zone_hubs.emplace_back(z, hub);
        next.emplace_back(hub, z);
      }
    }
    frontier = std::move(next);
  }
  for (const auto& [hub, z] : frontier) {
    for (int u = 0; u < p.leaves_per_hub; ++u) {
      const net::NodeId leaf = net.add_node();
      net.add_duplex_link(hub, leaf, leaf_link);
      zones.assign(leaf, z);
      t.leaves.push_back(leaf);
    }
  }
  t.receivers = t.hubs;
  t.receivers.insert(t.receivers.end(), t.leaves.begin(), t.leaves.end());
  return t;
}

}  // namespace sharq::topo
