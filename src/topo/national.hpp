#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace sharq::topo {

/// Parameters of the hypothetical national distribution hierarchy of
/// Figures 7/8: a 4-level tree of zones with dedicated caching receivers
/// (static ZCRs) at every bifurcation point except the suburb level.
struct NationalParams {
  int regions = 10;
  int cities_per_region = 20;
  int suburbs_per_city = 100;
  int subscribers_per_suburb = 500;

  // Link parameters per level (top to bottom).
  double backbone_bps = 155e6;
  double metro_bps = 45e6;
  double access_bps = 10e6;
  sim::Time region_delay = 0.025;
  sim::Time city_delay = 0.010;
  sim::Time suburb_delay = 0.005;
  sim::Time subscriber_delay = 0.002;
  double access_loss = 0.02;
};

/// A built national hierarchy (only feasible at reduced scale; the
/// analytic helpers below cover the paper's full 10M-receiver numbers).
struct National {
  net::NodeId source = net::kNoNode;
  std::vector<net::NodeId> region_caches;             ///< regional ZCRs
  std::vector<net::NodeId> city_caches;               ///< city ZCRs
  std::vector<net::NodeId> suburb_hubs;               ///< suburb routers
  std::vector<net::NodeId> subscribers;               ///< leaf receivers
  net::ZoneId z_national = net::kNoZone;
  std::vector<net::ZoneId> z_regions;
  std::vector<net::ZoneId> z_cities;
  std::vector<net::ZoneId> z_suburbs;
  NationalParams params;
};

/// Build the hierarchy into `net`. Keep the parameters small when actually
/// simulating (e.g. 2 regions x 3 cities x 4 suburbs x 5 subscribers).
National make_national(net::Network& net, const NationalParams& p);

/// Analytic per-level session figures for Figure 8's table, computed from
/// the scoped session rules (each participant exchanges RTT state with the
/// other participants of every zone it observes).
struct NationalAnalytics {
  struct Level {
    const char* name;
    std::int64_t receivers_per_zone;
    std::int64_t zone_count;
    std::int64_t receivers_total;
    std::int64_t rtts_per_receiver;    ///< scoped state per receiver
    double scoped_traffic;             ///< sum over observable zones of n^2
    double nonscoped_traffic;          ///< (total members)^2
    double scoped_state_ratio;         ///< rtts / nonscoped state
  };
  std::vector<Level> levels;
  std::int64_t total_receivers = 0;
};

NationalAnalytics analyze_national(const NationalParams& p);

}  // namespace sharq::topo
