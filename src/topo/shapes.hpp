#pragma once

#include <utility>
#include <vector>

#include "net/network.hpp"

namespace sharq::topo {

/// Result of building a chain topology: node ids in chain order.
struct Chain {
  std::vector<net::NodeId> nodes;  // nodes[0] .. nodes[n-1] in a line
};

/// Build a chain of n nodes: nodes[i] <-> nodes[i+1].
/// Used for the ZCR challenge "chain" case (Figure 9, left).
Chain make_chain(net::Network& net, int n, const net::LinkConfig& link);

/// A chain with per-hop delays (seconds); nodes[i] <-> nodes[i+1] has
/// delay `delays[i]`.
Chain make_chain(net::Network& net, const std::vector<sim::Time>& delays,
                 double bandwidth_bps = 10e6);

/// Result of building a star: hub plus leaves.
struct Star {
  net::NodeId hub = net::kNoNode;
  std::vector<net::NodeId> leaves;
};

/// Build a star/fork: hub connected to n leaves with the given per-leaf
/// delays. Used for the ZCR challenge "fork" case (Figure 9, right).
Star make_star(net::Network& net, const std::vector<sim::Time>& leaf_delays,
               double bandwidth_bps = 10e6);

/// Result of building a balanced tree.
struct BalancedTree {
  net::NodeId root = net::kNoNode;
  std::vector<std::vector<net::NodeId>> levels;  // [0] = {root}
  std::vector<net::NodeId> leaves;               // last level
  std::vector<net::NodeId> all;                  // breadth-first order
};

/// Build a balanced tree of the given depth and fanout (depth 0 = just the
/// root). All links share `link`.
BalancedTree make_balanced_tree(net::Network& net, int depth, int fanout,
                                const net::LinkConfig& link);

/// The heterogeneous example delivery tree of Figure 1, reconstructed so
/// that the two quantities the paper quotes hold exactly:
///  - P(every receiver gets a given packet) = 27.0%
///  - the worst receiver, X, sees 9.73% compounded loss.
/// Link losses are heterogeneous ("some branches virtually lossless,
/// others congested"), matching the figure's description.
struct ExampleTree {
  net::NodeId source = net::kNoNode;
  std::vector<net::NodeId> relays;        // interior nodes R1..R4
  std::vector<net::NodeId> receivers;     // all leaf receivers
  net::NodeId worst_receiver = net::kNoNode;  // "X" in the paper
};

ExampleTree make_figure1_tree(net::Network& net);

/// Parameters for a deep nested-zone hierarchy (macro-scale benchmarks).
///
/// A uniform tree of hub/cache receivers `zone_depth` levels below the
/// source, `fanout` hubs per hub, and `leaves_per_hub` subscribers under
/// each deepest hub. Every hub owns a zone nested in its parent's, so the
/// zone hierarchy is `zone_depth + 1` levels deep including the root —
/// the generalization of the 4-level national topology to arbitrary
/// depth, built in O(nodes).
struct DeepTreeParams {
  int zone_depth = 3;      ///< hub levels below the source (>= 1)
  int fanout = 4;          ///< child hubs per hub
  int leaves_per_hub = 8;  ///< subscribers under each deepest hub
  double hub_bps = 100e6;
  double leaf_bps = 10e6;
  sim::Time hub_delay = 0.005;
  sim::Time leaf_delay = 0.002;
  double leaf_loss = 0.0;  ///< loss on subscriber access links
  int queue_limit_pkts = -1;  ///< per-link queue bound (-1 = unbounded)
};

/// A built deep hierarchy. `receivers` is hubs + leaves (everything but
/// the source); `zone_hubs` maps each zone to the hub that owns it, for
/// static-ZCR placement (the paper's dedicated caches).
struct DeepTree {
  net::NodeId source = net::kNoNode;
  std::vector<net::NodeId> hubs;       ///< all hub receivers, BFS order
  std::vector<net::NodeId> leaves;     ///< subscribers
  std::vector<net::NodeId> receivers;  ///< hubs then leaves
  net::ZoneId root_zone = net::kNoZone;
  std::vector<std::pair<net::ZoneId, net::NodeId>> zone_hubs;
};

DeepTree make_deep_tree(net::Network& net, const DeepTreeParams& p);

}  // namespace sharq::topo
