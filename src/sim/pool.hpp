#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <utility>
#include <vector>

namespace sharq::sim {

/// Allocation statistics shared by the pool types below. `live` is
/// acquired - released; `high_water` tracks the peak of `live`;
/// `capacity` counts nodes ever carved (live + free). The `bytes_*`
/// mirrors count heap bytes including per-node headers, feeding the
/// profiler's memory census (stats/profiler.hpp) — `bytes_capacity` is
/// what the resident set actually paid, since nothing is returned to the
/// system before destruction.
struct PoolStats {
  std::uint64_t acquired = 0;
  std::uint64_t released = 0;
  std::size_t live = 0;
  std::size_t capacity = 0;
  std::size_t high_water = 0;
  std::uint64_t bytes_live = 0;
  std::uint64_t bytes_capacity = 0;
  std::uint64_t bytes_high_water = 0;
};

/// Grow-only size-class freelist allocator — the memory substrate of the
/// simulator's pools (docs/PERFORMANCE.md, docs/ARCHITECTURE.md).
///
/// allocate(bytes) hands out a node from the matching size class,
/// carving a new geometrically-growing chunk when the freelist is empty;
/// deallocate returns the node to its class. Nothing is returned to the
/// system before destruction, so steady-state acquire/release cycles
/// never touch malloc. Every node carries a one-word header used to
/// abort (in every build type) on double release or release of foreign
/// pointers — the failure mode that silently corrupts freelists.
///
/// Determinism: freelists are LIFO and size classes live in a std::map,
/// so a deterministic acquire/release sequence sees deterministic reuse;
/// no behavior depends on node addresses.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes) {
    SizeClass& sc = class_for(round_up(bytes));
    if (sc.free.empty()) grow(sc);
    Header* h = sc.free.back();
    sc.free.pop_back();
    if (h->magic != kFreeMagic) misuse("allocating a node not marked free");
    h->magic = kLiveMagic;
    ++stats_.acquired;
    ++stats_.live;
    if (stats_.live > stats_.high_water) stats_.high_water = stats_.live;
    stats_.bytes_live += sizeof(Header) + sc.node_bytes;
    if (stats_.bytes_live > stats_.bytes_high_water) {
      stats_.bytes_high_water = stats_.bytes_live;
    }
    return h + 1;
  }

  void deallocate(void* p, std::size_t bytes) {
    if (p == nullptr) return;
    Header* h = static_cast<Header*>(p) - 1;
    if (h->magic == kFreeMagic) misuse("double release of a pooled node");
    if (h->magic != kLiveMagic) misuse("release of a pointer this arena never handed out");
    SizeClass& sc = class_for(round_up(bytes));
    if (h->node_bytes != sc.node_bytes) misuse("release with mismatched size");
    h->magic = kFreeMagic;
    sc.free.push_back(h);
    ++stats_.released;
    --stats_.live;
    stats_.bytes_live -= sizeof(Header) + sc.node_bytes;
  }

  const PoolStats& stats() const { return stats_; }

  /// Nodes currently on freelists (capacity - live).
  std::size_t free_count() const { return stats_.capacity - stats_.live; }

 private:
  static constexpr std::uint64_t kLiveMagic = 0x5641'4C49'4C49'5645ull;
  static constexpr std::uint64_t kFreeMagic = 0x4652'4545'4652'4545ull;

  struct Header {
    std::uint64_t magic = 0;
    std::uint64_t node_bytes = 0;
  };
  struct SizeClass {
    std::size_t node_bytes = 0;       ///< payload bytes per node
    std::size_t next_chunk_nodes = 4; ///< geometric growth, from small
    std::vector<std::unique_ptr<unsigned char[]>> chunks;
    std::vector<Header*> free;
  };

  static std::size_t round_up(std::size_t bytes) {
    constexpr std::size_t kAlign = alignof(std::max_align_t);
    if (bytes == 0) bytes = 1;
    return (bytes + kAlign - 1) / kAlign * kAlign;
  }

  SizeClass& class_for(std::size_t node_bytes) {
    SizeClass& sc = classes_[node_bytes];
    sc.node_bytes = node_bytes;
    return sc;
  }

  void grow(SizeClass& sc) {
    const std::size_t stride = sizeof(Header) + sc.node_bytes;
    const std::size_t nodes = sc.next_chunk_nodes;
    sc.next_chunk_nodes *= 2;
    sc.chunks.push_back(std::make_unique<unsigned char[]>(stride * nodes));
    unsigned char* base = sc.chunks.back().get();
    for (std::size_t i = 0; i < nodes; ++i) {
      Header* h = ::new (base + i * stride) Header;
      h->magic = kFreeMagic;
      h->node_bytes = sc.node_bytes;
      sc.free.push_back(h);
    }
    stats_.capacity += nodes;
    stats_.bytes_capacity += stride * nodes;
  }

  [[noreturn]] static void misuse(const char* what) {
    std::fprintf(stderr, "sharq::sim::Arena: %s\n", what);
    std::abort();
  }

  // std::map: deterministic, and size classes are few (one per node type).
  std::map<std::size_t, SizeClass> classes_;
  PoolStats stats_;
};

/// Shared-ownership object pool: make() behaves like std::make_shared<T>
/// but draws the combined control-block + object node from a freelist
/// Arena, so per-message allocation on the packet path is a vector
/// pop/push instead of a malloc/free pair.
///
/// The arena is internally reference-counted (the allocator stored in
/// each control block keeps it alive), so outstanding objects — packets
/// still in flight after their sender was destroyed — remain valid even
/// when the pool itself is gone.
template <typename T>
class ObjectPool {
 public:
  ObjectPool() : core_(std::make_shared<Core>()) {}

  template <typename... Args>
  std::shared_ptr<T> make(Args&&... args) {
    return std::allocate_shared<T>(Alloc<T>{core_},
                                   std::forward<Args>(args)...);
  }

  const PoolStats& stats() const { return core_->arena.stats(); }

 private:
  struct Core {
    Arena arena;
  };

  template <typename U>
  struct Alloc {
    using value_type = U;
    std::shared_ptr<Core> core;

    explicit Alloc(std::shared_ptr<Core> c) : core(std::move(c)) {}
    template <typename V>
    Alloc(const Alloc<V>& o) : core(o.core) {}  // NOLINT

    U* allocate(std::size_t n) {
      return static_cast<U*>(core->arena.allocate(sizeof(U) * n));
    }
    void deallocate(U* p, std::size_t n) {
      core->arena.deallocate(p, sizeof(U) * n);
    }
    friend bool operator==(const Alloc& a, const Alloc& b) {
      return a.core == b.core;
    }
  };

  std::shared_ptr<Core> core_;
};

/// Pool of byte buffers that keeps each vector's heap capacity across
/// reuses: acquire(n) returns a shared, zero-filled n-byte buffer whose
/// backing store is recycled when the last reference drops. Repair and
/// payload shards are the main customers — in steady state a shard send
/// costs no allocation at all (buffer object, its capacity, and the
/// shared_ptr control block all come from freelists).
///
/// Reuse is deterministic: a fresh acquire always sees exactly n zero
/// bytes regardless of what the previous user wrote (assign() overwrites
/// the reused capacity), so pooled buffers cannot leak state between
/// packets — the byte-identical same-seed contract holds.
class BufferPool {
 public:
  using Buffer = std::vector<std::uint8_t>;

  BufferPool() : core_(std::make_shared<Core>()) {}

  std::shared_ptr<Buffer> acquire(std::size_t size) {
    Core& c = *core_;
    Node* node;
    if (c.free.empty()) {
      c.owned.push_back(std::make_unique<Node>());
      node = c.owned.back().get();
      ++c.stats.capacity;
    } else {
      node = c.free.back();
      c.free.pop_back();
    }
    if (!node->in_free && node != c.owned.back().get()) {
      std::fprintf(stderr, "sharq::sim::BufferPool: node on freelist twice\n");
      std::abort();
    }
    node->in_free = false;
    node->buf.assign(size, 0);
    ++c.stats.acquired;
    ++c.stats.live;
    if (c.stats.live > c.stats.high_water) c.stats.high_water = c.stats.live;
    // Control block comes from the core's arena; the captured core keeps
    // the pool state alive until the last buffer is released.
    return std::shared_ptr<Buffer>(&node->buf, Deleter{core_, node},
                                   CtrlAlloc<void>{core_});
  }

  const PoolStats& stats() const { return core_->stats; }
  std::size_t free_count() const { return core_->free.size(); }

  /// Export-time census walk (stats/profiler.hpp): heap bytes retained by
  /// the pool — every owned buffer's capacity (buffers are recycled, never
  /// shrunk), node/freelist storage, and the control-block arena.
  std::uint64_t retained_bytes() const {
    const Core& c = *core_;
    std::uint64_t total = c.ctrl_arena.stats().bytes_capacity;
    total += c.owned.capacity() * sizeof(std::unique_ptr<Node>);
    total += c.free.capacity() * sizeof(Node*);
    for (const auto& n : c.owned) total += sizeof(Node) + n->buf.capacity();
    return total;
  }

  /// Same walk restricted to buffers currently referenced.
  std::uint64_t live_bytes() const {
    const Core& c = *core_;
    std::uint64_t total = c.ctrl_arena.stats().bytes_live;
    for (const auto& n : c.owned) {
      if (!n->in_free) total += sizeof(Node) + n->buf.capacity();
    }
    return total;
  }

 private:
  struct Node {
    Buffer buf;
    bool in_free = false;
  };
  struct Core {
    std::vector<std::unique_ptr<Node>> owned;
    std::vector<Node*> free;
    Arena ctrl_arena;  ///< shared_ptr control blocks
    PoolStats stats;
  };
  struct Deleter {
    std::shared_ptr<Core> core;
    Node* node;
    void operator()(Buffer*) {
      if (node->in_free) {
        std::fprintf(stderr, "sharq::sim::BufferPool: double release\n");
        std::abort();
      }
      node->in_free = true;
      core->free.push_back(node);
      ++core->stats.released;
      --core->stats.live;
    }
  };
  template <typename U>
  struct CtrlAlloc {
    using value_type = U;
    std::shared_ptr<Core> core;

    explicit CtrlAlloc(std::shared_ptr<Core> c) : core(std::move(c)) {}
    template <typename V>
    CtrlAlloc(const CtrlAlloc<V>& o) : core(o.core) {}  // NOLINT

    U* allocate(std::size_t n) {
      return static_cast<U*>(core->ctrl_arena.allocate(sizeof(U) * n));
    }
    void deallocate(U* p, std::size_t n) {
      core->ctrl_arena.deallocate(p, sizeof(U) * n);
    }
    friend bool operator==(const CtrlAlloc& a, const CtrlAlloc& b) {
      return a.core == b.core;
    }
  };

  std::shared_ptr<Core> core_;
};

}  // namespace sharq::sim
