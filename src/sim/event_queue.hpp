#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <queue>
#include <string_view>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace sharq::stats {
class Metrics;
class Counter;
class Gauge;
}  // namespace sharq::stats

namespace sharq::sim {

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// Encodes (generation, slot) into the event slab; a stale handle —
/// the event already fired or was cancelled — is harmless: cancelling it
/// is a no-op, because the slot's generation has moved on.
struct EventId {
  std::uint64_t value = 0;

  bool valid() const { return value != 0; }
  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Time-ordered queue of callbacks with O(1) (lazy) cancellation and two
/// interchangeable ordering backends:
///
///  - **calendar** (default): a calendar queue (Brown 1988) — buckets of
///    width `width_` indexed by `time / width`, each bucket a small
///    min-heap on `(time, seq)`. Near-uniform event flows (link
///    serialize/propagate at 10⁵–10⁶ receivers) dequeue in O(1)
///    amortized instead of the binary heap's O(log n). Far-future events
///    live in an overflow heap; the bucket array resizes and re-estimates
///    its width when occupancy drifts.
///  - **heap**: the classic binary heap, kept as the determinism
///    cross-check (tests run both and require byte-identical traces).
///
/// Both backends order strictly by `(time, seq)`: ties in time fire in
/// scheduling order, which is what keeps same-seed runs byte-identical
/// regardless of backend (docs/ARCHITECTURE.md, docs/PERFORMANCE.md).
///
/// Storage is a slab: callbacks live in recycled slots, ordering
/// structures hold 24-byte keys, and the callback type itself
/// (sim::Callback) stores captures inline — so scheduling an event
/// performs no heap allocation in steady state.
class EventQueue {
 public:
  using Callback = sim::Callback;

  enum class Backend { kCalendar, kHeap };

  /// Backend chosen by the SHARQFEC_EVENT_QUEUE environment variable
  /// ("calendar" or "heap"); calendar when unset.
  static Backend default_backend();

  explicit EventQueue(Backend backend = default_backend());

  /// Backend this queue was constructed with.
  Backend backend() const { return backend_; }

  /// Schedule `fn` to run at absolute time `at`. Returns a handle that can
  /// be passed to cancel(). `tag` names the event's purpose for the
  /// metrics registry ("transfer.request", "net.propagate", ...); it must
  /// point at a string literal (stored, never copied).
  EventId schedule(Time at, Callback fn, const char* tag = nullptr);

  /// Cancel a previously scheduled event. Returns true if the event was
  /// still pending (and is now guaranteed not to run).
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live events still pending.
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; kTimeInfinity when empty.
  Time next_time();

  /// Pop and return the earliest live event. On an empty queue returns an
  /// inert Fired{kTimeInfinity, nullptr} in every build type — callers
  /// must check `fn` (the old assert compiled out of Release and left a
  /// dangling top() dereference).
  struct Fired {
    Time at = 0.0;
    Callback fn;
  };
  Fired pop();

  /// Drop every pending event.
  void clear();

  /// Test-only: overwrite a *free* slot's generation counter so the
  /// generation-wrap retirement path can be exercised without 2^32 mint
  /// cycles (tests/test_event_queue.cpp). Aborts if the slot is live.
  void test_set_slot_generation(std::uint32_t slot, std::uint32_t gen);

  /// Attach a metrics registry: per-tag scheduled/fired/cancelled counters
  /// and the queue high-water mark. Pass nullptr to detach. Events
  /// scheduled before the call are still counted at fire/cancel time.
  /// `shard >= 0` adds a {"shard", N} label to every family this queue
  /// registers, so sharded runs can tell the per-shard queues apart
  /// (ShardRuntime::set_metrics passes each shard's index, including
  /// shard 0 — overriding the unlabeled registration from setup).
  void set_metrics(stats::Metrics* metrics, int shard = -1);

  /// Bytes retained by the queue's own containers (slot slab, heap /
  /// calendar keys, free list) — capacity, since vectors never shrink.
  /// Feeds the "event_queue" category of the profiler's memory census.
  std::size_t memory_bytes() const;

 private:
  /// Ordering key held by the backends; the callback stays in its slot.
  /// A key is stale once its slot's generation has moved on (the event
  /// fired or was cancelled); stale keys are skipped on pop.
  struct Key {
    Time at = 0.0;
    std::uint64_t seq = 0;   // global tie-break
    std::uint32_t slot = 0;  // index into slots_
    std::uint32_t gen = 0;   // generation the key was minted under
  };
  struct Later {
    bool operator()(const Key& a, const Key& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    Callback fn;
    const char* tag = nullptr;
    // Starts at 1 so EventId.value is never 0. When the counter wraps
    // back to 0 after 2^32-1 mints the slot is *retired* (never recycled):
    // reusing it would alias a fresh event with the oldest stale EventId
    // still in flight, and cancel() would kill the wrong event. gen == 0
    // marks a retired slot.
    std::uint32_t gen = 1;
    bool live = false;
  };
  struct TagCounters {
    stats::Counter* scheduled = nullptr;
    stats::Counter* fired = nullptr;
    stats::Counter* cancelled = nullptr;
  };

  bool stale(const Key& k) const {
    const Slot& s = slots_[k.slot];
    return !s.live || s.gen != k.gen;
  }
  void free_slot(std::uint32_t slot);

  /// Remove and return the earliest live key (staged or from the
  /// backend), skipping stale ones. False when nothing live remains.
  bool take_min(Key* out);

  void backend_push(const Key& k);
  bool backend_raw_pop(Key* out);

  // Calendar backend internals (see class comment for the design).
  void cal_push(const Key& k);
  bool cal_raw_pop(Key* out);
  void cal_rebuild(std::size_t nbuckets);

  TagCounters& counters_for(const char* tag);

  Backend backend_;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
  /// Key removed from the backend by next_time() but not yet consumed by
  /// pop(); re-inserted if a schedule() could outdate it.
  std::optional<Key> staged_;

  // heap backend
  std::priority_queue<Key, std::vector<Key>, Later> heap_;

  // calendar backend
  std::vector<std::vector<Key>> buckets_;  // each a min-heap on (at, seq)
  std::priority_queue<Key, std::vector<Key>, Later> overflow_;
  std::size_t nbuckets_ = 0;
  double width_ = 1.0;
  std::uint64_t bucket_b_ = 0;      // cursor: current global bucket number
  double overflow_limit_ = 0.0;     // times >= this go to overflow_
  std::size_t stored_ = 0;          // keys in buckets_ + overflow_ (incl. stale)

  stats::Metrics* metrics_ = nullptr;
  stats::Gauge* high_water_ = nullptr;
  int shard_ = -1;  ///< label for this queue's metric families (-1 = none)
  // Keyed by tag *contents*, ordered: two distinct literals spelling the
  // same tag share one counter family, and iteration order (if anyone
  // ever walks this) cannot follow literal addresses. The string_view
  // keys borrow the caller's string literals, same lifetime contract as
  // the old pointer keys.
  std::map<std::string_view, TagCounters> tag_counters_;
};

}  // namespace sharq::sim
