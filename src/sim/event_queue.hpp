#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace sharq::stats {
class Metrics;
class Counter;
class Gauge;
}  // namespace sharq::stats

namespace sharq::sim {

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// Handles are never reused within a run, so a stale handle is harmless:
/// cancelling it is a no-op.
struct EventId {
  std::uint64_t value = 0;

  bool valid() const { return value != 0; }
  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Time-ordered queue of callbacks with O(log n) insert/pop and O(1)
/// (lazy) cancellation.
///
/// Ties in time are broken by insertion order, which keeps runs
/// deterministic: two events scheduled for the same instant fire in the
/// order they were scheduled.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` to run at absolute time `at`. Returns a handle that can
  /// be passed to cancel(). `tag` names the event's purpose for the
  /// metrics registry ("transfer.request", "net.propagate", ...); it must
  /// point at a string literal (stored, never copied).
  EventId schedule(Time at, Callback fn, const char* tag = nullptr);

  /// Cancel a previously scheduled event. Returns true if the event was
  /// still pending (and is now guaranteed not to run).
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  bool empty() const { return pending_.empty(); }

  /// Number of live events still pending.
  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event; kTimeInfinity when empty.
  Time next_time();

  /// Pop and return the earliest live event. On an empty queue returns an
  /// inert Fired{kTimeInfinity, nullptr} in every build type — callers
  /// must check `fn` (the old assert compiled out of Release and left a
  /// dangling top() dereference).
  struct Fired {
    Time at = 0.0;
    Callback fn;
  };
  Fired pop();

  /// Drop every pending event.
  void clear();

  /// Attach a metrics registry: per-tag scheduled/fired/cancelled counters
  /// and the queue high-water mark. Pass nullptr to detach. Events
  /// scheduled before the call are still counted at fire/cancel time.
  void set_metrics(stats::Metrics* metrics);

 private:
  struct Entry {
    Time at = 0.0;
    std::uint64_t seq = 0;  // tie-break + identity
    Callback fn;
    const char* tag = nullptr;
    bool cancelled = false;
  };
  struct Later {
    bool operator()(const std::shared_ptr<Entry>& a,
                    const std::shared_ptr<Entry>& b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };
  struct TagCounters {
    stats::Counter* scheduled = nullptr;
    stats::Counter* fired = nullptr;
    stats::Counter* cancelled = nullptr;
  };

  /// Pop cancelled entries off the heap head so top() is live.
  void skim();

  TagCounters& counters_for(const char* tag);

  std::priority_queue<std::shared_ptr<Entry>, std::vector<std::shared_ptr<Entry>>,
                      Later>
      heap_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Entry>> pending_;
  std::uint64_t next_seq_ = 1;

  stats::Metrics* metrics_ = nullptr;
  stats::Gauge* high_water_ = nullptr;
  std::unordered_map<const char*, TagCounters> tag_counters_;
};

}  // namespace sharq::sim
