#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sharq::sim {

/// Move-only callable with fixed inline storage — the event queue's
/// callback type.
///
/// Every simulated packet hop schedules two events, so the callback type
/// is on the hottest allocation path in the system. `std::function` heap-
/// allocates any capture larger than its ~16-byte small-buffer and that
/// malloc/free pair per event dominated large-topology runs. This type
/// stores the callable inline (kCapacity bytes) and refuses — at compile
/// time — captures that do not fit, so scheduling an event never touches
/// the allocator (docs/PERFORMANCE.md).
///
/// Capacity rationale: the largest hot-path closure is the link serialize
/// lambda in net/network.cpp (a Packet by value plus this/link/epoch,
/// ~72 bytes); 120 leaves headroom for protocol timers without bloating
/// the event-slot slab.
class Callback {
 public:
  static constexpr std::size_t kCapacity = 120;

  Callback() = default;
  Callback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= kCapacity,
                  "capture too large for sim::Callback inline storage; "
                  "capture big state via a (pooled) shared_ptr instead");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "sim::Callback requires nothrow-movable callables");
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
    relocate_ = [](void* from, void* to) {
      D* src = static_cast<D*>(from);
      if (to != nullptr) ::new (to) D(std::move(*src));
      src->~D();
    };
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

 private:
  void reset() {
    if (invoke_ != nullptr) {
      relocate_(buf_, nullptr);
      invoke_ = nullptr;
      relocate_ = nullptr;
    }
  }

  void move_from(Callback& other) {
    if (other.invoke_ != nullptr) {
      other.relocate_(other.buf_, buf_);
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void* from, void* to) = nullptr;  // to == nullptr: destroy
};

}  // namespace sharq::sim
