#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace sharq::sim {

EventId Simulator::at(Time when, EventQueue::Callback fn, const char* tag) {
  return queue_.schedule(std::max(when, now_), std::move(fn), tag);
}

EventId Simulator::after(Time delay, EventQueue::Callback fn, const char* tag) {
  return queue_.schedule(now_ + std::max(delay, 0.0), std::move(fn), tag);
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  EventQueue::Fired fired = queue_.pop();
  // pop() returns an inert marker if the queue raced to empty (every
  // remaining entry was cancelled); treat it the same as empty().
  if (!fired.fn && fired.at == kTimeInfinity) return false;
  now_ = std::max(now_, fired.at);
  ++executed_;
  if (fired.fn) fired.fn();
  return true;
}

void Simulator::run_until(Time until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    step();
  }
  now_ = std::max(now_, until);
}

void Simulator::run() {
  while (step()) {
  }
}

void Timer::arm(Time delay, std::function<void()> fn) {
  cancel();
  pending_ = true;
  deadline_ = simu_->now() + std::max(delay, 0.0);
  id_ = simu_->after(
      delay,
      [this, fn = std::move(fn)] {
        pending_ = false;
        deadline_ = kTimeNever;
        fn();
      },
      tag_);
}

void Timer::arm_if_idle(Time delay, std::function<void()> fn) {
  if (!pending_) arm(delay, std::move(fn));
}

void Timer::cancel() {
  if (pending_) {
    simu_->cancel(id_);
    pending_ = false;
    deadline_ = kTimeNever;
  }
}

}  // namespace sharq::sim
