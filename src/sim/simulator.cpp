#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "stats/profiler.hpp"

namespace sharq::sim {

EventId Simulator::at(Time when, EventQueue::Callback fn, const char* tag) {
  return queue_.schedule(std::max(when, now_), std::move(fn), tag);
}

EventId Simulator::after(Time delay, EventQueue::Callback fn, const char* tag) {
  return queue_.schedule(now_ + std::max(delay, 0.0), std::move(fn), tag);
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  EventQueue::Fired fired = queue_.pop();
  // pop() returns an inert marker if the queue raced to empty (every
  // remaining entry was cancelled); treat it the same as empty().
  if (!fired.fn && fired.at == kTimeInfinity) return false;
  now_ = std::max(now_, fired.at);
  ++executed_;
  // Sampling gate: counts the dispatch exactly, wall-times one in
  // Profiler::kSamplePeriod of them. Handler time no finer probe claims
  // lands in event_loop's self time.
  stats::ProfGate gate(stats::ProfCounter::events_dispatched,
                       stats::ProfSubsys::event_loop);
  if (fired.fn) fired.fn();
  return true;
}

void Simulator::run_until(Time until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    step();
  }
  now_ = std::max(now_, until);
}

void Simulator::run_before(Time t) {
  while (!queue_.empty() && queue_.next_time() < t) {
    step();
  }
  now_ = std::max(now_, t);
}

void Simulator::run() {
  while (step()) {
  }
}

void Timer::arm(Time delay, Callback fn) {
  cancel();
  pending_ = true;
  deadline_ = simu_->now() + std::max(delay, 0.0);
  fn_ = std::move(fn);
  id_ = simu_->after(delay, [this] { fire(); }, tag_);
}

void Timer::fire() {
  pending_ = false;
  deadline_ = kTimeNever;
  // Move to a local first so the callback can rearm this very timer.
  Callback fn = std::move(fn_);
  fn();
}

void Timer::arm_if_idle(Time delay, Callback fn) {
  if (!pending_) arm(delay, std::move(fn));
}

void Timer::cancel() {
  if (pending_) {
    simu_->cancel(id_);
    pending_ = false;
    deadline_ = kTimeNever;
  }
  fn_ = nullptr;  // release captured state promptly
}

}  // namespace sharq::sim
