#pragma once

// This header IS the sanctioned randomness source: every stochastic draw
// in the tree must flow through sim::Rng so a seed pins the whole run.
// sharq-lint: wall-clock-ok file (the one place <random> is allowed)

#include <cstdint>
#include <random>

namespace sharq::sim {

/// Deterministic random source for a simulation run.
///
/// Wraps a 64-bit Mersenne twister with the handful of draw shapes the
/// protocols need. Every stochastic decision in the simulator (link loss,
/// timer jitter, session staggering) draws from an Rng so runs are exactly
/// reproducible given a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5ea11ab5u) : engine_(seed) {}

  /// Re-seed the stream (resets the sequence).
  void seed(std::uint64_t s) { engine_.seed(s); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed draw with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Raw 64-bit draw, for deriving child seeds.
  std::uint64_t next_u64() { return engine_(); }

  /// Derive an independent child stream (e.g. one per link).
  Rng fork() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ull); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sharq::sim
