#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace sharq::sim {

/// Discrete-event simulation engine.
///
/// Owns the virtual clock, the event queue, and the root random stream.
/// Every other component (links, agents, protocols) schedules work through
/// this object; nothing in the library reads wall-clock time.
///
/// Typical use:
/// ```
/// Simulator simu(/*seed=*/42);
/// simu.after(1.0, [&]{ ... });
/// simu.run_until(20.0);
/// ```
class Simulator {
 public:
  /// `backend` selects the event-queue implementation (calendar by
  /// default, binary heap as the determinism cross-check; overridable via
  /// SHARQFEC_EVENT_QUEUE=heap|calendar). Both produce byte-identical
  /// same-seed runs — see docs/PERFORMANCE.md.
  explicit Simulator(std::uint64_t seed = 1,
                     EventQueue::Backend backend = EventQueue::default_backend())
      : queue_(backend), rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (clamped to now()). `tag` must be
  /// a string literal naming the event for metrics (may be nullptr).
  EventId at(Time when, EventQueue::Callback fn, const char* tag = nullptr);

  /// Schedule `fn` after a relative delay (clamped to >= 0).
  EventId after(Time delay, EventQueue::Callback fn, const char* tag = nullptr);

  /// Cancel a pending event; harmless on stale/invalid handles.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue drains or virtual time would pass `until`.
  /// Events scheduled exactly at `until` are executed.
  void run_until(Time until);

  /// Run every event strictly before `t`, then advance the clock to `t`.
  /// The shard runtime's window primitive: windows are half-open [h, h+L)
  /// so an event exactly at a window boundary belongs to the next window.
  void run_before(Time t);

  /// Time of the earliest pending event (kTimeInfinity when idle). The
  /// shard runtime derives each window's horizon from the minimum across
  /// shards.
  Time next_event_time() { return queue_.next_time(); }

  /// Run until the queue drains completely.
  void run();

  /// Execute at most one event; returns false if the queue was empty.
  bool step();

  /// Abort the run: discards every pending event.
  void stop() { queue_.clear(); }

  /// Number of events executed so far (for tests and micro-benchmarks).
  std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending.
  std::size_t events_pending() const { return queue_.size(); }

  /// Root random stream for this run.
  Rng& rng() { return rng_; }

  /// Event-queue backend this run was constructed with.
  EventQueue::Backend backend() const { return queue_.backend(); }

  /// Attach a metrics registry to the event queue (per-tag event counters
  /// and the queue high-water mark). Pass nullptr to detach.
  void set_metrics(stats::Metrics* metrics, int shard = -1) {
    queue_.set_metrics(metrics, shard);
  }

  /// Bytes retained by the event queue (slots, heap/calendar storage) —
  /// the profiler census's "event_queue" category.
  std::size_t queue_memory_bytes() const { return queue_.memory_bytes(); }

 private:
  EventQueue queue_;
  Rng rng_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
};

/// A restartable one-shot timer bound to a Simulator.
///
/// Protocols use many of these (request timers, reply timers, session
/// timers). The class guarantees that after cancel()/restart the old
/// callback can no longer fire, which removes a whole class of
/// use-after-reschedule bugs.
class Timer {
 public:
  explicit Timer(Simulator& simu) : simu_(&simu) {}
  ~Timer() { cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arm the timer to fire `delay` seconds from now. Any previously
  /// armed firing is cancelled first.
  void arm(Time delay, Callback fn);

  /// Arm only if not already pending.
  void arm_if_idle(Time delay, Callback fn);

  /// Cancel a pending firing, if any.
  void cancel();

  /// True if a firing is scheduled and has not yet run.
  bool pending() const { return pending_; }

  /// Absolute time of the pending firing (kTimeNever if idle).
  Time deadline() const { return pending_ ? deadline_ : kTimeNever; }

  /// Name this timer's firings for event metrics. Must be a string
  /// literal; applies to subsequent arm() calls.
  void set_tag(const char* tag) { tag_ = tag; }

 private:
  void fire();

  Simulator* simu_;
  EventId id_{};
  /// The armed callable lives here, not in the scheduled event: the event
  /// captures only `this` (8 bytes), so timers with large captures never
  /// outgrow the queue's inline Callback storage.
  Callback fn_;
  bool pending_ = false;
  Time deadline_ = kTimeNever;
  const char* tag_ = nullptr;
};

}  // namespace sharq::sim
