#include "sim/shard_runtime.hpp"

#include <algorithm>
#include <cassert>
// sharq-lint: thread-unsafe-ok file (the shard runtime IS the
// deterministic synchronization layer; docs/ARCHITECTURE.md)
#include <thread>

#include "stats/journal.hpp"
#include "stats/lane.hpp"
#include "stats/metrics.hpp"
#include "stats/profiler.hpp"

namespace sharq::sim {

namespace {

// Per-shard seed derivation (splitmix64 finalizer): shards get decorrelated
// root streams from one run seed, independent of thread count.
std::uint64_t shard_seed(std::uint64_t seed, int shard) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(shard) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

ShardRuntime::ShardRuntime(Simulator& shard0, int nshards, Time lookahead,
                           std::uint64_t seed, int nthreads)
    : lookahead_(lookahead),
      nthreads_(std::clamp(nthreads, 1, std::max(nshards, 1))) {
  assert(nshards >= 1 && nshards <= stats::kMaxLanes);
  assert(nshards == 1 || lookahead > 0.0);
  sims_.push_back(&shard0);
  for (int s = 1; s < nshards; ++s) {
    owned_.push_back(std::make_unique<Simulator>(shard_seed(seed, s),
                                                 shard0.backend()));
    sims_.push_back(owned_.back().get());
  }
  mail_.resize(static_cast<std::size_t>(nshards));
  mail_seq_.assign(static_cast<std::size_t>(nshards), 0);
  window_executed_.assign(static_cast<std::size_t>(nshards), 0);
}

ShardRuntime::~ShardRuntime() = default;

void ShardRuntime::set_metrics(stats::Metrics* metrics) {
  // Every shard's queue — including shard 0, whose unlabeled registration
  // from setup this overrides — re-registers with a {"shard", s} label so
  // sharded runs can tell the per-shard queues and tag counters apart.
  for (int s = 0; s < nshards(); ++s) {
    sims_[static_cast<std::size_t>(s)]->set_metrics(metrics, metrics ? s : -1);
  }
  if (!metrics) {
    lookahead_stalls_ = nullptr;
    xshard_msgs_ = nullptr;
    return;
  }
  lookahead_stalls_ = &metrics->counter("sim.shard.lookahead_stalls");
  xshard_msgs_ = &metrics->counter("sim.shard.xshard_msgs");
}

void ShardRuntime::set_journal(stats::Journal* journal) {
  journal_ = journal;
  if (journal_) journal_->begin_lanes(nshards());
}

void ShardRuntime::post(int dst, Time at, Callback fn, const char* tag) {
  assert(in_window_ && "post() is the mid-window hand-off; schedule directly at barriers");
  const int src = stats::lane();
  assert(src != dst);
  auto& box = mail_[static_cast<std::size_t>(src)];
  box.push_back(Xmsg{at, src, mail_seq_[static_cast<std::size_t>(src)]++, dst,
                     std::move(fn), tag});
  if (xshard_msgs_) xshard_msgs_->inc();
  stats::Profiler::count(stats::ProfCounter::xshard_msgs);
}

void ShardRuntime::at_global(Time t, std::function<void()> fn) {
  assert(!in_window_ && "global ops are registered at barriers or setup");
  ops_.push_back(GlobalOp{t, op_seq_++, std::move(fn)});
}

bool ShardRuntime::next_op(std::size_t* index) const {
  if (ops_.empty()) return false;
  std::size_t best = 0;
  for (std::size_t i = 1; i < ops_.size(); ++i) {
    const GlobalOp& a = ops_[i];
    const GlobalOp& b = ops_[best];
    if (a.t < b.t || (a.t == b.t && a.seq < b.seq)) best = i;
  }
  *index = best;
  return true;
}

void ShardRuntime::run_window(Time end, bool inclusive) {
  const int k = nshards();
  const int workers = std::min(nthreads_, k);
  stats::Profiler* prof = stats::Profiler::active();
  if (prof) prof->window_begin();
  in_window_ = true;
  auto run_lane_set = [this, k, workers, end, inclusive, prof](int w) {
    for (int s = w; s < k; s += workers) {
      stats::ScopedLane scoped(s);
      Simulator& sim = *sims_[static_cast<std::size_t>(s)];
      const std::uint64_t before = sim.events_executed();
      if (inclusive) {
        sim.run_until(end);
      } else {
        sim.run_before(end);
      }
      window_executed_[static_cast<std::size_t>(s)] =
          sim.events_executed() - before;
      // The finish stamp feeds the barrier-wait histogram: a shard's wait
      // is the gap between its own finish and the last finisher's.
      if (prof) prof->shard_window_done(s);
    }
  };
  if (workers == 1) {
    run_lane_set(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers - 1));
    for (int w = 1; w < workers; ++w) {
      pool.emplace_back(run_lane_set, w);
    }
    run_lane_set(0);
    for (std::thread& t : pool) t.join();
  }
  in_window_ = false;

  bool stalled = false;
  for (int s = 0; s < k; ++s) {
    if (window_executed_[static_cast<std::size_t>(s)] == 0) stalled = true;
  }
  if (stalled && lookahead_stalls_) lookahead_stalls_->inc();
  if (prof) prof->window_end(k, stalled);
  barrier();
}

void ShardRuntime::barrier() {
  // Merge every shard's outbox in strict (arrival, source shard, sequence)
  // order — the deterministic rank the tentpole contract names. The order
  // keys destination-queue tie-breaking (schedule order = seq order), so
  // it must never depend on which worker finished first.
  // Sampling gate (see ProfGate): every barrier counts, one in
  // kSamplePeriod is wall-timed under shard_barrier.
  stats::ProfGate gate(stats::ProfCounter::barriers,
                       stats::ProfSubsys::shard_barrier);
  std::vector<Xmsg> batch;
  for (auto& box : mail_) {
    for (Xmsg& m : box) batch.push_back(std::move(m));
    box.clear();
  }
  std::sort(batch.begin(), batch.end(), [](const Xmsg& a, const Xmsg& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (Xmsg& m : batch) {
    sims_[static_cast<std::size_t>(m.dst)]->at(m.at, std::move(m.fn), m.tag);
  }
  if (journal_) journal_->flush_lanes();
}

void ShardRuntime::run_until(Time horizon) {
  const int k = nshards();
  for (;;) {
    Time h = kTimeInfinity;
    for (int s = 0; s < k; ++s) {
      h = std::min(h, sims_[static_cast<std::size_t>(s)]->next_event_time());
    }
    std::size_t oi = 0;
    const bool have_op = next_op(&oi);
    const Time t_op = have_op ? ops_[oi].t : kTimeInfinity;

    if (have_op && t_op <= h) {
      // Global ops run before any shard executes events at the same time.
      if (t_op > horizon) break;
      for (int s = 0; s < k; ++s) {
        sims_[static_cast<std::size_t>(s)]->run_before(t_op);  // clock only
      }
      GlobalOp op = std::move(ops_[oi]);
      ops_.erase(ops_.begin() + static_cast<std::ptrdiff_t>(oi));
      op.fn();
      barrier();
      continue;
    }
    if (h > horizon) break;  // also covers h == infinity

    Time end = h + lookahead_;
    if (have_op) end = std::min(end, t_op);
    bool inclusive = false;
    if (end > horizon) {
      // Final stretch: every cross-shard message generated in [h, horizon]
      // arrives at >= h + lookahead > horizon, so the whole remainder is
      // one window. Inclusive, matching Simulator::run_until semantics.
      end = horizon;
      inclusive = true;
    }
    run_window(end, inclusive);
    if (inclusive) break;
  }
  for (int s = 0; s < k; ++s) {
    sims_[static_cast<std::size_t>(s)]->run_until(horizon);  // clocks to horizon
  }
  if (journal_) journal_->flush_lanes();
}

std::uint64_t ShardRuntime::events_executed() const {
  std::uint64_t total = 0;
  for (const Simulator* s : sims_) total += s->events_executed();
  return total;
}

std::size_t ShardRuntime::events_pending() const {
  std::size_t total = 0;
  for (const Simulator* s : sims_) total += s->events_pending();
  return total;
}

}  // namespace sharq::sim
