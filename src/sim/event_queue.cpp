#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace sharq::sim {

EventId EventQueue::schedule(Time at, Callback fn) {
  const std::uint64_t seq = next_seq_++;
  auto entry = std::make_shared<Entry>();
  entry->at = at;
  entry->seq = seq;
  entry->fn = std::move(fn);
  pending_.emplace(seq, entry);
  heap_.push(std::move(entry));
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  auto it = pending_.find(id.value);
  if (it == pending_.end()) return false;
  it->second->cancelled = true;
  it->second->fn = nullptr;  // release captured state promptly
  pending_.erase(it);
  return true;
}

void EventQueue::skim() {
  while (!heap_.empty() && heap_.top()->cancelled) heap_.pop();
}

Time EventQueue::next_time() {
  skim();
  if (heap_.empty()) return kTimeInfinity;
  return heap_.top()->at;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  std::shared_ptr<Entry> top = heap_.top();
  heap_.pop();
  pending_.erase(top->seq);
  return Fired{top->at, std::move(top->fn)};
}

void EventQueue::clear() {
  heap_ = {};
  pending_.clear();
}

}  // namespace sharq::sim
