#include "sim/event_queue.hpp"

#include <utility>

#include "stats/metrics.hpp"

namespace sharq::sim {

namespace {
constexpr const char* kUntagged = "untagged";
}  // namespace

void EventQueue::set_metrics(stats::Metrics* metrics) {
  metrics_ = metrics;
  tag_counters_.clear();
  high_water_ = metrics_ ? &metrics_->gauge("sim.queue_high_water") : nullptr;
}

EventQueue::TagCounters& EventQueue::counters_for(const char* tag) {
  if (!tag) tag = kUntagged;
  auto [it, inserted] = tag_counters_.try_emplace(tag);
  if (inserted) {
    const stats::Labels labels{{"tag", tag}};
    it->second.scheduled = &metrics_->counter("sim.events_scheduled", labels);
    it->second.fired = &metrics_->counter("sim.events_fired", labels);
    it->second.cancelled = &metrics_->counter("sim.events_cancelled", labels);
  }
  return it->second;
}

EventId EventQueue::schedule(Time at, Callback fn, const char* tag) {
  const std::uint64_t seq = next_seq_++;
  auto entry = std::make_shared<Entry>();
  entry->at = at;
  entry->seq = seq;
  entry->fn = std::move(fn);
  entry->tag = tag;
  pending_.emplace(seq, entry);
  heap_.push(std::move(entry));
  if (metrics_) {
    counters_for(tag).scheduled->inc();
    high_water_->set_max(static_cast<double>(pending_.size()));
  }
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  auto it = pending_.find(id.value);
  if (it == pending_.end()) return false;
  if (metrics_) counters_for(it->second->tag).cancelled->inc();
  it->second->cancelled = true;
  it->second->fn = nullptr;  // release captured state promptly
  pending_.erase(it);
  return true;
}

void EventQueue::skim() {
  while (!heap_.empty() && heap_.top()->cancelled) heap_.pop();
}

Time EventQueue::next_time() {
  skim();
  if (heap_.empty()) return kTimeInfinity;
  return heap_.top()->at;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  if (heap_.empty()) return Fired{kTimeInfinity, nullptr};
  std::shared_ptr<Entry> top = heap_.top();
  heap_.pop();
  pending_.erase(top->seq);
  if (metrics_) counters_for(top->tag).fired->inc();
  return Fired{top->at, std::move(top->fn)};
}

void EventQueue::clear() {
  heap_ = {};
  pending_.clear();
}

}  // namespace sharq::sim
