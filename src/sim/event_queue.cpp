#include "sim/event_queue.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "stats/metrics.hpp"

namespace sharq::sim {

namespace {
constexpr const char* kUntagged = "untagged";
constexpr std::size_t kMinBuckets = 16;  // power of two
// Calendar span in "years" before an event is parked in the overflow
// heap; also keeps bucket numbers (time / width) well inside uint64.
constexpr double kOverflowYears = 1024.0;
}  // namespace

EventQueue::Backend EventQueue::default_backend() {
  const char* env = std::getenv("SHARQFEC_EVENT_QUEUE");
  if (env != nullptr && std::strcmp(env, "heap") == 0) return Backend::kHeap;
  return Backend::kCalendar;
}

EventQueue::EventQueue(Backend backend) : backend_(backend) {
  if (backend_ == Backend::kCalendar) {
    nbuckets_ = kMinBuckets;
    buckets_.assign(nbuckets_, {});
    width_ = 1.0;
    overflow_limit_ = static_cast<double>(nbuckets_) * kOverflowYears * width_;
  }
}

void EventQueue::set_metrics(stats::Metrics* metrics, int shard) {
  metrics_ = metrics;
  shard_ = shard;
  tag_counters_.clear();
  if (!metrics_) {
    high_water_ = nullptr;
    return;
  }
  stats::Labels labels;
  if (shard_ >= 0) labels.emplace("shard", std::to_string(shard_));
  high_water_ = &metrics_->gauge("sim.queue_high_water", labels);
}

EventQueue::TagCounters& EventQueue::counters_for(const char* tag) {
  if (!tag) tag = kUntagged;
  auto [it, inserted] = tag_counters_.try_emplace(tag);
  if (inserted) {
    stats::Labels labels{{"tag", tag}};
    if (shard_ >= 0) labels.emplace("shard", std::to_string(shard_));
    it->second.scheduled = &metrics_->counter("sim.events_scheduled", labels);
    it->second.fired = &metrics_->counter("sim.events_fired", labels);
    it->second.cancelled = &metrics_->counter("sim.events_cancelled", labels);
  }
  return it->second;
}

std::size_t EventQueue::memory_bytes() const {
  std::size_t total = slots_.capacity() * sizeof(Slot) +
                      free_slots_.capacity() * sizeof(std::uint32_t);
  // priority_queue exposes size(), not capacity; size is the retained
  // lower bound and the census is approximate by design.
  total += heap_.size() * sizeof(Key);
  total += overflow_.size() * sizeof(Key);
  total += buckets_.capacity() * sizeof(std::vector<Key>);
  for (const auto& b : buckets_) total += b.capacity() * sizeof(Key);
  return total;
}

EventId EventQueue::schedule(Time at, Callback fn, const char* tag) {
  // A staged key may no longer be the minimum once this event is in;
  // return it to the backend and let the next pop re-derive the min.
  if (staged_) {
    backend_push(*staged_);
    staged_.reset();
  }
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slots_.emplace_back();
    slot = static_cast<std::uint32_t>(slots_.size() - 1);
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.tag = tag;
  s.live = true;
  const std::uint64_t seq = next_seq_++;
  backend_push(Key{at, seq, slot, s.gen});
  ++live_;
  if (metrics_) {
    counters_for(tag).scheduled->inc();
    high_water_->set_max(static_cast<double>(live_));
  }
  if (backend_ == Backend::kCalendar && stored_ > 2 * nbuckets_) {
    cal_rebuild(nbuckets_ * 2);
  }
  return EventId{(static_cast<std::uint64_t>(s.gen) << 32) | slot};
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || s.gen != gen) return false;
  if (metrics_) counters_for(s.tag).cancelled->inc();
  // The ordering key stays behind (in a backend or staged_) and is
  // skipped as stale when it surfaces — the generation has moved on.
  free_slot(slot);
  --live_;
  return true;
}

void EventQueue::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;  // release captured state promptly
  s.tag = nullptr;
  s.live = false;
  ++s.gen;
  // Generation wrapped: retire the slot instead of recycling it. A fresh
  // mint would reissue generation numbers still held by stale EventIds
  // (and gen 0 would make EventId.value == slot, colliding with the null
  // id for slot 0). Retired slots simply never re-enter the free list.
  if (s.gen == 0) return;
  free_slots_.push_back(slot);
}

bool EventQueue::take_min(Key* out) {
  if (staged_) {
    const Key k = *staged_;
    staged_.reset();
    if (!stale(k)) {
      *out = k;
      return true;
    }
  }
  Key k;
  while (backend_raw_pop(&k)) {
    if (stale(k)) continue;
    *out = k;
    return true;
  }
  return false;
}

Time EventQueue::next_time() {
  Key k;
  if (!take_min(&k)) return kTimeInfinity;
  staged_ = k;
  return k.at;
}

EventQueue::Fired EventQueue::pop() {
  Key k;
  if (!take_min(&k)) return Fired{kTimeInfinity, nullptr};
  Slot& s = slots_[k.slot];
  Fired fired{k.at, std::move(s.fn)};
  if (metrics_) counters_for(s.tag).fired->inc();
  free_slot(k.slot);
  --live_;
  if (backend_ == Backend::kCalendar && nbuckets_ > kMinBuckets &&
      stored_ < nbuckets_ / 2) {
    cal_rebuild(nbuckets_ / 2);
  }
  return fired;
}

void EventQueue::clear() {
  for (Slot& s : slots_) {
    if (s.live) {
      s.fn = nullptr;
      s.tag = nullptr;
      s.live = false;
      ++s.gen;
    }
  }
  free_slots_.clear();
  for (std::size_t i = slots_.size(); i-- > 0;) {
    if (slots_[i].gen == 0) continue;  // retired (generation wrapped)
    free_slots_.push_back(static_cast<std::uint32_t>(i));
  }
  live_ = 0;
  staged_.reset();
  heap_ = {};
  for (auto& b : buckets_) b.clear();
  overflow_ = {};
  stored_ = 0;
}

void EventQueue::test_set_slot_generation(std::uint32_t slot,
                                          std::uint32_t gen) {
  if (slot >= slots_.size() || slots_[slot].live) {
    std::abort();  // the hook only touches existing, free slots
  }
  slots_[slot].gen = gen;
}

void EventQueue::backend_push(const Key& k) {
  if (backend_ == Backend::kHeap) {
    heap_.push(k);
  } else {
    cal_push(k);
  }
}

bool EventQueue::backend_raw_pop(Key* out) {
  if (backend_ == Backend::kHeap) {
    if (heap_.empty()) return false;
    *out = heap_.top();
    heap_.pop();
    return true;
  }
  return cal_raw_pop(out);
}

void EventQueue::cal_push(const Key& k) {
  if (k.at >= overflow_limit_) {
    overflow_.push(k);
    ++stored_;
    return;
  }
  const std::uint64_t eb = static_cast<std::uint64_t>(k.at / width_);
  if (stored_ == 0 || eb < bucket_b_) {
    // Empty calendar: jump the cursor straight to the event. Event before
    // the cursor window (can't happen from monotone pops, but rebuilds
    // and rewinds keep the invariant explicit): rewind.
    bucket_b_ = eb;
  }
  auto& b = buckets_[eb & (nbuckets_ - 1)];
  b.push_back(k);
  std::push_heap(b.begin(), b.end(), Later{});
  ++stored_;
}

bool EventQueue::cal_raw_pop(Key* out) {
  if (stored_ == 0) return false;
  const std::size_t mask = nbuckets_ - 1;
  // Fast path: scan at most one full "year" of windows from the cursor.
  // The invariant (no stored bucket key has a bucket number below the
  // cursor) means the first bucket whose head lies in its current window
  // holds the global bucket minimum. The window test reuses the insert
  // mapping (time / width) so float rounding cannot disagree with it.
  for (std::size_t i = 0; i < nbuckets_; ++i) {
    auto& b = buckets_[bucket_b_ & mask];
    if (!b.empty() &&
        static_cast<std::uint64_t>(b.front().at / width_) == bucket_b_) {
      if (!overflow_.empty() && Later{}(b.front(), overflow_.top())) {
        *out = overflow_.top();
        overflow_.pop();
      } else {
        *out = b.front();
        std::pop_heap(b.begin(), b.end(), Later{});
        b.pop_back();
      }
      --stored_;
      return true;
    }
    ++bucket_b_;
  }
  // Slow path (sparse far-apart events): direct search over bucket heads
  // and the overflow top, then jump the cursor to the minimum.
  const Key* best = nullptr;
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < nbuckets_; ++i) {
    const auto& b = buckets_[i];
    if (!b.empty() && (best == nullptr || Later{}(*best, b.front()))) {
      best = &b.front();
      best_i = i;
    }
  }
  if (!overflow_.empty() &&
      (best == nullptr || Later{}(*best, overflow_.top()))) {
    *out = overflow_.top();
    overflow_.pop();
    --stored_;
    if (out->at < overflow_limit_) {
      bucket_b_ = static_cast<std::uint64_t>(out->at / width_);
    }
    return true;
  }
  if (best == nullptr) return false;  // unreachable while stored_ > 0
  auto& b = buckets_[best_i];
  *out = b.front();
  std::pop_heap(b.begin(), b.end(), Later{});
  b.pop_back();
  --stored_;
  bucket_b_ = static_cast<std::uint64_t>(out->at / width_);
  return true;
}

void EventQueue::cal_rebuild(std::size_t nbuckets) {
  // Collect live keys (purging stale ones — this is where lazily
  // cancelled events are finally reclaimed) and re-estimate the bucket
  // width from the actual event spread: ~2x the mean gap, so a year of
  // buckets covers the populated span with a few events per bucket.
  std::vector<Key> keep;
  keep.reserve(stored_);
  for (auto& b : buckets_) {
    for (const Key& k : b) {
      if (!stale(k)) keep.push_back(k);
    }
    b.clear();
  }
  while (!overflow_.empty()) {
    if (!stale(overflow_.top())) keep.push_back(overflow_.top());
    overflow_.pop();
  }
  nbuckets_ = nbuckets;
  buckets_.assign(nbuckets_, {});
  Time lo = kTimeInfinity;
  Time hi = 0.0;
  for (const Key& k : keep) {
    lo = std::min(lo, k.at);
    hi = std::max(hi, k.at);
  }
  if (keep.size() >= 2 && hi > lo) {
    width_ = 2.0 * (hi - lo) / static_cast<double>(keep.size());
  } else {
    width_ = 1.0;
  }
  // Keep bucket numbers (time / width) far from uint64 range even for
  // large absolute times with tight event spacing.
  width_ = std::max(width_, hi / 1e15);
  bucket_b_ = (lo < kTimeInfinity)
                  ? static_cast<std::uint64_t>(lo / width_)
                  : 0;
  overflow_limit_ = (static_cast<double>(bucket_b_) +
                     static_cast<double>(nbuckets_) * kOverflowYears) *
                    width_;
  stored_ = 0;
  for (const Key& k : keep) cal_push(k);
}

}  // namespace sharq::sim
