#pragma once

// Deterministic zone-sharded parallel runtime (docs/ARCHITECTURE.md,
// "Zone-sharded parallel simulation"; docs/PERFORMANCE.md, "Parallel
// runs").
//
// The simulation is partitioned into K *shards* (by zone subtree — see
// topo::make_zone_shard_map), each owning its own Simulator: event queue,
// clock, and RNG stream. Execution proceeds in conservative-lookahead
// windows [h, h+L): h is the earliest pending event across shards, L the
// minimum latency of any cross-shard link. Within a window every shard
// runs independently — by construction no cross-shard message generated
// inside the window can arrive before its end — and windows are separated
// by single-threaded barriers where cross-shard messages are merged in
// strict (arrival time, source shard, per-source sequence) order, the
// journal's lane buffers are flushed, and global operations (fault
// injection) run.
//
// Determinism contract: the shard count K is fixed by the topology, never
// by the worker count N. N only sizes the thread pool that executes the
// K shards inside a window; every ordering decision (merge ranks, journal
// flush order, barrier op order) depends solely on simulated history, so
// an N-thread run is byte-identical to the 1-thread run.
//
// This file and its .cpp are the blessed home of raw threading primitives
// in src/ — everything else is protocol code and must stay
// synchronization-free (tools/sharq_lint, rule `thread-unsafe`).
// sharq-lint: thread-unsafe-ok file (the shard runtime IS the
// deterministic synchronization layer; docs/ARCHITECTURE.md)

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace sharq::stats {
class Counter;
class Journal;
class Metrics;
}  // namespace sharq::stats

namespace sharq::sim {

class ShardRuntime {
 public:
  using Callback = EventQueue::Callback;

  /// `shard0` is the driver's existing Simulator (it owns shard 0 — the
  /// root zone / source side); shards 1..nshards-1 get fresh Simulators
  /// seeded deterministically from `seed` with shard0's queue backend.
  /// `lookahead` is the minimum cross-shard link latency (> 0);
  /// `nthreads` >= 1 sizes the worker pool (clamped to nshards).
  ShardRuntime(Simulator& shard0, int nshards, Time lookahead,
               std::uint64_t seed, int nthreads);
  ~ShardRuntime();

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  int nshards() const { return static_cast<int>(sims_.size()); }
  int nthreads() const { return nthreads_; }
  Time lookahead() const { return lookahead_; }

  Simulator& sim(int shard) { return *sims_[static_cast<std::size_t>(shard)]; }

  /// True while worker threads are executing a window. Decides whether a
  /// cross-shard hand-off must go through post() (mid-window) or may
  /// schedule into the destination queue directly (barrier / setup).
  bool in_window() const { return in_window_; }

  /// Hand a callback across shards mid-window: it is queued in the
  /// *calling* shard's private mailbox and merged into `dst`'s event
  /// queue at the next barrier, ranked by (at, source shard, sequence).
  /// Must only be called from inside a window, from the lane that owns
  /// the sending shard; `at` must be >= the current window's end.
  void post(int dst, Time at, Callback fn, const char* tag);

  /// Schedule `fn` to run single-threaded at the barrier when every shard
  /// has reached time `t` (before any shard executes events at `t`).
  /// Same-time ops run in registration order. The fault injector's
  /// scheduling primitive.
  void at_global(Time t, std::function<void()> fn);

  /// Register `sim.shard.*` counters and attach per-shard event-queue
  /// metrics for shards 1..K-1 (the driver already attached shard 0's).
  void set_metrics(stats::Metrics* metrics);

  /// Switch `journal` into lane-buffered mode and flush it at every
  /// barrier. Call before any event emits.
  void set_journal(stats::Journal* journal);

  /// Run every shard to `horizon` (inclusive, like Simulator::run_until)
  /// in lookahead windows. Re-entrant across calls: chaos drains by
  /// calling it again with a later horizon.
  void run_until(Time horizon);

  /// Sum of events executed across shards.
  std::uint64_t events_executed() const;

  /// Sum of pending events across shards (mailboxes are always empty
  /// outside a window).
  std::size_t events_pending() const;

 private:
  struct Xmsg {
    Time at = 0.0;
    int src = 0;
    std::uint64_t seq = 0;
    int dst = 0;
    Callback fn;
    const char* tag = nullptr;
  };
  struct GlobalOp {
    Time t = 0.0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  void run_window(Time end, bool inclusive);
  void barrier();  // drain mailboxes + flush journal lanes
  bool next_op(std::size_t* index) const;

  // sharq-lint: shard-owned begin (lane/barrier state: mutate only under the runtime's window discipline)
  std::vector<Simulator*> sims_;                  // [0] = external shard 0
  std::vector<std::unique_ptr<Simulator>> owned_;  // shards 1..K-1
  Time lookahead_;
  int nthreads_;
  bool in_window_ = false;

  std::vector<std::vector<Xmsg>> mail_;     // by source shard
  std::vector<std::uint64_t> mail_seq_;     // by source shard
  std::vector<std::uint64_t> window_executed_;  // scratch, by shard

  std::vector<GlobalOp> ops_;
  std::uint64_t op_seq_ = 0;

  stats::Journal* journal_ = nullptr;
  stats::Counter* lookahead_stalls_ = nullptr;
  stats::Counter* xshard_msgs_ = nullptr;
  // sharq-lint: shard-owned end
};

}  // namespace sharq::sim
