#pragma once

#include <cstdint>
#include <limits>

namespace sharq::sim {

/// Simulation time, in seconds since the start of the run.
///
/// A plain double keeps the arithmetic the protocols perform (RTT halving,
/// EWMA filters, timer windows) natural while still giving ~microsecond
/// resolution over any realistic run length.
using Time = double;

/// A time that compares later than every reachable event time.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Sentinel for "no time recorded yet".
inline constexpr Time kTimeNever = -1.0;

/// Convert milliseconds to simulation seconds.
constexpr Time from_ms(double ms) { return ms / 1000.0; }

/// Convert simulation seconds to milliseconds.
constexpr double to_ms(Time t) { return t * 1000.0; }

}  // namespace sharq::sim
