#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sharq::fault {

const char* to_keyword(EventKind kind) {
  switch (kind) {
    case EventKind::kLinkDown: return "link-down";
    case EventKind::kLinkUp: return "link-up";
    case EventKind::kLossRate: return "loss";
    case EventKind::kCorruptRate: return "corrupt";
    case EventKind::kDuplicateRate: return "duplicate";
    case EventKind::kReorderRate: return "reorder";
    case EventKind::kNodeKill: return "kill";
    case EventKind::kNodeRestart: return "restart";
    case EventKind::kPartition: return "partition";
    case EventKind::kHeal: return "heal";
    case EventKind::kNackStorm: return "nack-storm";
    case EventKind::kFlashCrowd: return "flash-crowd";
    case EventKind::kBandwidth: return "bandwidth";
    case EventKind::kQueueLimit: return "queue-limit";
  }
  return "?";
}

void FaultPlan::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

std::string FaultPlan::to_spec() const {
  std::ostringstream os;
  os << "plan " << name << "\n";
  char num[64];
  auto fmt = [&](double v) -> std::string {
    // %.17g round-trips doubles exactly, so parse(to_spec()) == *this.
    std::snprintf(num, sizeof num, "%.17g", v);
    return num;
  };
  for (const FaultEvent& e : events) {
    os << "at " << fmt(e.at) << ' ' << to_keyword(e.kind);
    switch (e.kind) {
      case EventKind::kLinkDown:
      case EventKind::kLinkUp:
      case EventKind::kPartition:
      case EventKind::kHeal:
        os << ' ' << e.from << ' ' << e.to;
        break;
      case EventKind::kLossRate:
      case EventKind::kCorruptRate:
        os << ' ' << e.from << ' ' << e.to << ' ' << fmt(e.rate);
        break;
      case EventKind::kDuplicateRate:
        os << ' ' << e.from << ' ' << e.to << ' ' << fmt(e.rate) << ' '
           << e.copies;
        break;
      case EventKind::kReorderRate:
        os << ' ' << e.from << ' ' << e.to << ' ' << fmt(e.rate) << ' '
           << fmt(e.jitter);
        break;
      case EventKind::kNodeKill:
      case EventKind::kNodeRestart:
        os << ' ' << e.from;
        break;
      case EventKind::kNackStorm:
        os << ' ' << e.from << ' ' << e.copies << ' ' << fmt(e.jitter);
        break;
      case EventKind::kFlashCrowd:
        os << ' ' << e.from << ' ' << e.to << ' ' << fmt(e.jitter);
        break;
      case EventKind::kBandwidth:
        os << ' ' << e.from << ' ' << e.to << ' ' << fmt(e.rate);
        break;
      case EventKind::kQueueLimit:
        os << ' ' << e.from << ' ' << e.to << ' ' << e.copies;
        break;
    }
    os << '\n';
  }
  return os.str();
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& text,
                                          std::string* error) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& why) -> std::optional<FaultPlan> {
    if (error) {
      *error = "line " + std::to_string(lineno) + ": " + why;
    }
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank / comment-only line
    if (word == "plan") {
      if (!(ls >> plan.name)) return fail("plan needs a name");
      continue;
    }
    if (word != "at") return fail("expected 'at' or 'plan', got '" + word + "'");
    FaultEvent e;
    std::string verb;
    if (!(ls >> e.at >> verb)) return fail("expected '<time> <verb>'");
    if (e.at < 0.0) return fail("negative event time");
    auto need_nodes = [&](int n) {
      if (n >= 1 && !(ls >> e.from)) return false;
      if (n >= 2 && !(ls >> e.to)) return false;
      return true;
    };
    if (verb == "link-down" || verb == "link-up" || verb == "partition" ||
        verb == "heal") {
      e.kind = verb == "link-down"  ? EventKind::kLinkDown
               : verb == "link-up"  ? EventKind::kLinkUp
               : verb == "partition" ? EventKind::kPartition
                                     : EventKind::kHeal;
      if (!need_nodes(2)) return fail(verb + " needs <from> <to>");
    } else if (verb == "loss" || verb == "corrupt") {
      e.kind = verb == "loss" ? EventKind::kLossRate : EventKind::kCorruptRate;
      if (!need_nodes(2) || !(ls >> e.rate)) {
        return fail(verb + " needs <from> <to> <rate>");
      }
    } else if (verb == "duplicate") {
      e.kind = EventKind::kDuplicateRate;
      if (!need_nodes(2) || !(ls >> e.rate)) {
        return fail("duplicate needs <from> <to> <rate> [copies]");
      }
      if (!(ls >> e.copies)) e.copies = 1;
      if (e.copies < 1) return fail("duplicate copies must be >= 1");
    } else if (verb == "reorder") {
      e.kind = EventKind::kReorderRate;
      if (!need_nodes(2) || !(ls >> e.rate >> e.jitter)) {
        return fail("reorder needs <from> <to> <rate> <max-jitter>");
      }
      if (e.jitter < 0.0) return fail("negative reorder jitter");
    } else if (verb == "kill" || verb == "restart") {
      e.kind = verb == "kill" ? EventKind::kNodeKill : EventKind::kNodeRestart;
      if (!need_nodes(1)) return fail(verb + " needs <node>");
    } else if (verb == "nack-storm") {
      e.kind = EventKind::kNackStorm;
      if (!need_nodes(1) || !(ls >> e.copies >> e.jitter)) {
        return fail("nack-storm needs <node> <count> <spacing>");
      }
      if (e.copies < 1) return fail("nack-storm count must be >= 1");
      if (e.jitter < 0.0) return fail("negative nack-storm spacing");
    } else if (verb == "flash-crowd") {
      e.kind = EventKind::kFlashCrowd;
      if (!need_nodes(2) || !(ls >> e.jitter)) {
        return fail("flash-crowd needs <first> <last> <spacing>");
      }
      if (e.to < e.from) return fail("flash-crowd last before first");
      if (e.jitter < 0.0) return fail("negative flash-crowd spacing");
    } else if (verb == "bandwidth") {
      e.kind = EventKind::kBandwidth;
      if (!need_nodes(2) || !(ls >> e.rate)) {
        return fail("bandwidth needs <from> <to> <bps>");
      }
      if (e.rate <= 0.0) return fail("bandwidth must be > 0");
    } else if (verb == "queue-limit") {
      e.kind = EventKind::kQueueLimit;
      if (!need_nodes(2) || !(ls >> e.copies)) {
        return fail("queue-limit needs <from> <to> <pkts>");
      }
      if (e.copies < -1) return fail("queue-limit pkts must be >= -1");
    } else {
      return fail("unknown verb '" + verb + "'");
    }
    // Probability-shaped kinds keep the [0,1] check; bandwidth reuses
    // `rate` as bit/s and validates above.
    if (e.kind != EventKind::kBandwidth &&
        (e.rate < 0.0 || e.rate > 1.0)) {
      return fail("rate outside [0,1]");
    }
    std::string extra;
    if (ls >> extra) return fail("trailing garbage '" + extra + "'");
    plan.events.push_back(e);
  }
  plan.sort();
  return plan;
}

}  // namespace sharq::fault
