#include "fault/injector.hpp"

#include <memory>

#include "net/loss.hpp"

namespace sharq::fault {

void Injector::schedule_at(sim::Time at, std::function<void()> fn) {
  if (scheduler_) {
    scheduler_(at, std::move(fn));
  } else {
    net_.simulator().at(at, std::move(fn), "fault.inject");
  }
}

void Injector::schedule(const FaultPlan& plan) {
  for (const FaultEvent& e : plan.events) {
    schedule_at(e.at, [this, e] { apply(e); });
  }
}

void Injector::on_link(net::NodeId from, net::NodeId to,
                       const std::function<void(net::LinkId)>& fn) {
  const net::LinkId l = net_.find_link(from, to);
  if (l == net::kNoLink) {
    ++skipped_;
    return;
  }
  fn(l);
  ++applied_;
}

void Injector::apply(const FaultEvent& e) {
  auto valid_node = [this](net::NodeId n) {
    return n >= 0 && n < net_.node_count();
  };
  switch (e.kind) {
    case EventKind::kLinkDown:
      on_link(e.from, e.to, [this](net::LinkId l) { net_.set_link_up(l, false); });
      break;
    case EventKind::kLinkUp:
      on_link(e.from, e.to, [this](net::LinkId l) { net_.set_link_up(l, true); });
      break;
    case EventKind::kLossRate:
      on_link(e.from, e.to, [this, &e](net::LinkId l) {
        net_.conditioner(l).set_loss(
            e.rate > 0.0 ? std::make_unique<net::BernoulliLoss>(e.rate)
                         : nullptr);
      });
      break;
    case EventKind::kCorruptRate:
      on_link(e.from, e.to, [this, &e](net::LinkId l) {
        net_.conditioner(l).set_corrupt_rate(e.rate);
      });
      break;
    case EventKind::kDuplicateRate:
      on_link(e.from, e.to, [this, &e](net::LinkId l) {
        net_.conditioner(l).set_duplicate(e.rate, e.copies);
      });
      break;
    case EventKind::kReorderRate:
      on_link(e.from, e.to, [this, &e](net::LinkId l) {
        net_.conditioner(l).set_reorder(e.rate, e.jitter);
      });
      break;
    case EventKind::kNodeKill:
      if (!valid_node(e.from) || !net_.node_up(e.from)) {
        ++skipped_;
        break;
      }
      if (hooks_.kill) hooks_.kill(e.from);
      net_.set_node_up(e.from, false);
      ++applied_;
      break;
    case EventKind::kNodeRestart:
      if (!valid_node(e.from) || net_.node_up(e.from)) {
        ++skipped_;
        break;
      }
      net_.set_node_up(e.from, true);
      if (hooks_.restart) hooks_.restart(e.from);
      ++applied_;
      break;
    case EventKind::kPartition:
      on_link(e.from, e.to, [this](net::LinkId l) { net_.set_link_up(l, false); });
      on_link(e.to, e.from, [this](net::LinkId l) { net_.set_link_up(l, false); });
      break;
    case EventKind::kHeal:
      on_link(e.from, e.to, [this](net::LinkId l) { net_.set_link_up(l, true); });
      on_link(e.to, e.from, [this](net::LinkId l) { net_.set_link_up(l, true); });
      break;
    case EventKind::kNackStorm:
      if (!valid_node(e.from) || !hooks_.nack_storm) {
        ++skipped_;
        break;
      }
      hooks_.nack_storm(e.from, e.copies, e.jitter);
      ++applied_;
      break;
    case EventKind::kFlashCrowd: {
      if (!hooks_.join) {
        ++skipped_;
        break;
      }
      // Absolute times, not `after(now)`: the event fires at e.at, so
      // `e.at + idx*jitter` is the same instant, and absolute scheduling
      // also works through a barrier scheduler whose clock is the window
      // edge rather than the event time.
      int idx = 0;
      for (net::NodeId n = e.from; n <= e.to; ++n, ++idx) {
        if (!valid_node(n)) {
          ++skipped_;
          continue;
        }
        schedule_at(e.at + static_cast<sim::Time>(idx) * e.jitter,
                    [this, n] { hooks_.join(n); });
        ++applied_;
      }
      break;
    }
    case EventKind::kBandwidth:
      on_link(e.from, e.to, [this, &e](net::LinkId l) {
        net_.set_link_bandwidth(l, e.rate);
      });
      on_link(e.to, e.from, [this, &e](net::LinkId l) {
        net_.set_link_bandwidth(l, e.rate);
      });
      break;
    case EventKind::kQueueLimit:
      on_link(e.from, e.to, [this, &e](net::LinkId l) {
        net_.set_link_queue_limit(l, e.copies);
      });
      on_link(e.to, e.from, [this, &e](net::LinkId l) {
        net_.set_link_queue_limit(l, e.copies);
      });
      break;
  }
}

}  // namespace sharq::fault
