#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace sharq::fault {

/// What a single timed fault event does.
///
/// Link-shaped events identify the link by its endpoints (from -> to), not
/// by LinkId: plans are written against a topology's node numbering, which
/// is stable across runs, while link ids are an internal allocation order.
/// kPartition / kHeal act on BOTH simplex directions between the endpoints
/// (cutting a duplex edge partitions a tree topology).
enum class EventKind {
  kLinkDown,      ///< take the simplex link from->to down
  kLinkUp,        ///< bring it back
  kLossRate,      ///< set the link's Bernoulli loss rate (ramps = several)
  kCorruptRate,   ///< set the link's payload-corruption rate
  kDuplicateRate, ///< set the link's duplication rate (`copies` extras)
  kReorderRate,   ///< set the link's reorder rate and max jitter
  kNodeKill,      ///< crash a node (protocol + network teardown)
  kNodeRestart,   ///< restart a crashed node (network up + protocol rejoin)
  kPartition,     ///< cut both directions between the endpoints
  kHeal,          ///< restore both directions
  kNackStorm,     ///< node emits `copies` synthetic NACKs spaced `jitter` s
  kFlashCrowd,    ///< nodes from..to join the session, spaced `jitter` s
  kBandwidth,     ///< set the link's bandwidth to `rate` bit/s
  kQueueLimit,    ///< set the link's queue bound to `copies` pkts (-1 = off)
};

/// Keyword form of an EventKind (the spec grammar's verb).
const char* to_keyword(EventKind kind);

/// One timed event of a fault plan.
struct FaultEvent {
  sim::Time at = 0.0;
  EventKind kind = EventKind::kLinkDown;
  net::NodeId from = net::kNoNode;  ///< link/partition endpoint, or the node
  net::NodeId to = net::kNoNode;    ///< link/partition endpoint (kNoNode for
                                    ///< node events)
  double rate = 0.0;                ///< loss/corrupt/duplicate/reorder rate
  double jitter = 0.0;              ///< reorder max extra delay, seconds
  int copies = 1;                   ///< duplicate extras per firing
};

/// A named, ordered schedule of fault events driven off the simulator
/// clock. Plans are value types: benches, tests, and the chaos runner
/// share scenarios by passing the same plan (or the same spec text).
struct FaultPlan {
  std::string name = "plan";
  std::vector<FaultEvent> events;

  /// Events sorted by time (stable, so same-time events keep spec order).
  void sort();

  /// Serialize to the text spec `parse` accepts (round-trips exactly).
  std::string to_spec() const;

  /// Parse the text spec. Grammar, one statement per line ('#' comments):
  ///
  ///   plan <name>
  ///   at <t> link-down <from> <to>
  ///   at <t> link-up <from> <to>
  ///   at <t> loss <from> <to> <rate>
  ///   at <t> corrupt <from> <to> <rate>
  ///   at <t> duplicate <from> <to> <rate> [copies]
  ///   at <t> reorder <from> <to> <rate> <max-jitter>
  ///   at <t> kill <node>
  ///   at <t> restart <node>
  ///   at <t> partition <a> <b>
  ///   at <t> heal <a> <b>
  ///   at <t> nack-storm <node> <count> <spacing>
  ///   at <t> flash-crowd <first> <last> <spacing>
  ///   at <t> bandwidth <from> <to> <bps>
  ///   at <t> queue-limit <from> <to> <pkts>
  ///
  /// Returns nullopt (with a message in *error if given) on any malformed
  /// statement; a fault plan that silently half-parses would make chaos
  /// results lie.
  static std::optional<FaultPlan> parse(const std::string& text,
                                        std::string* error = nullptr);
};

}  // namespace sharq::fault
