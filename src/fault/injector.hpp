#pragma once

#include <cstdint>
#include <functional>

#include "fault/fault_plan.hpp"
#include "net/network.hpp"

namespace sharq::fault {

/// Drives a FaultPlan against a live network off the simulator clock.
///
/// The injector owns only the *network* side of a fault: link state,
/// conditioner retuning, and Network::set_node_up. Protocol-level churn
/// (stopping a crashed node's agent, re-adding it on restart) belongs to
/// whoever owns the session, so node events call back through Hooks:
/// kill fires the hook FIRST (the agent must stop transmitting before the
/// network tears its links down), restart brings the network up FIRST
/// (a rejoining agent needs working links to re-subscribe).
class Injector {
 public:
  struct Hooks {
    std::function<void(net::NodeId)> kill;     ///< before set_node_up(false)
    std::function<void(net::NodeId)> restart;  ///< after set_node_up(true)
    /// Late join: the session owner adds `node` as a receiver (flash-crowd
    /// events fan out to one call per node, staggered by the spacing).
    std::function<void(net::NodeId)> join;
    /// Synthetic NACK burst: `node` emits `count` scoped NACKs, `spacing`
    /// seconds apart (overload pressure, not a real deficit).
    std::function<void(net::NodeId, int count, sim::Time spacing)> nack_storm;
  };

  Injector(net::Network& net, Hooks hooks)
      : net_(net), hooks_(std::move(hooks)) {}

  /// Route plan events through `fn(at, thunk)` instead of the network's
  /// serial simulator. Fault events mutate global state (link flags,
  /// routing, conditioners), so a sharded run must execute them at a
  /// window barrier — the driver passes ShardRuntime::at_global here.
  /// Must be called before schedule().
  void set_scheduler(std::function<void(sim::Time, std::function<void()>)> fn) {
    scheduler_ = std::move(fn);
  }

  /// Schedule every event of `plan` at its absolute simulator time.
  /// Events naming a nonexistent link/node are counted in
  /// `skipped_events()` and otherwise ignored — a randomized plan must
  /// not abort the whole soak over one unroutable statement.
  void schedule(const FaultPlan& plan);

  std::uint64_t applied_events() const { return applied_; }
  std::uint64_t skipped_events() const { return skipped_; }

 private:
  void apply(const FaultEvent& e);
  /// Apply `fn` to the simplex link from->to (counts a skip if absent).
  void on_link(net::NodeId from, net::NodeId to,
               const std::function<void(net::LinkId)>& fn);

  /// Schedule `fn` at absolute time `at` (defaults to the serial simulator).
  void schedule_at(sim::Time at, std::function<void()> fn);

  net::Network& net_;
  Hooks hooks_;
  std::function<void(sim::Time, std::function<void()>)> scheduler_;
  std::uint64_t applied_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace sharq::fault
