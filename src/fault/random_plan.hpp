#pragma once

#include <vector>

#include "fault/fault_plan.hpp"
#include "sim/random.hpp"

namespace sharq::fault {

/// A duplex edge the generator may fault, with the loss rate to restore
/// when a loss window closes (fault plans must hand the topology back in
/// its configured state, not a pristine one).
struct FaultyEdge {
  net::NodeId a = net::kNoNode;
  net::NodeId b = net::kNoNode;
  double baseline_loss = 0.0;
  double baseline_bps = 0.0;  ///< restore target for bandwidth squeezes
};

/// Bounds for a generated plan. Every fault a random plan opens, it also
/// closes before `horizon` (partitions heal, crashed nodes restart, rates
/// return to baseline) so a soak can demand full delivery afterwards.
struct PlanShape {
  sim::Time horizon = 60.0;  ///< all recovery events land before this
  int partitions = 1;        ///< paired partition/heal windows
  int degrade_windows = 2;   ///< loss/corrupt/duplicate/reorder windows
  int node_churns = 1;       ///< paired kill/restart windows
  double max_loss = 0.30;    ///< peak loss rate inside a window
  double max_corrupt = 0.05;
  double max_duplicate = 0.10;
  double max_reorder = 0.20;
  double max_reorder_jitter = 0.050;  ///< seconds
  std::vector<FaultyEdge> edges;      ///< candidate edges for link faults
  std::vector<net::NodeId> killable;  ///< candidate crash victims (no source)

  // --- Exhaustion campaign knobs (all default off, so legacy shapes draw
  // --- the same rng sequence and yield byte-identical plans).
  int nack_storms = 0;      ///< synthetic NACK bursts from `stormers`
  int bw_squeezes = 0;      ///< bandwidth clamp windows on `edges`
  int queue_squeezes = 0;   ///< queue-limit clamp windows on `edges`
  int flash_crowds = 0;     ///< late-join waves over `joinable`
  int max_storm_nacks = 32;          ///< peak NACKs per storm
  double min_storm_spacing = 0.002;  ///< seconds between storm NACKs
  double max_storm_spacing = 0.020;
  double min_squeeze_fraction = 0.05;  ///< bandwidth floor as a fraction
                                       ///< of the edge baseline
  int min_squeeze_pkts = 2;   ///< tightest queue-limit clamp
  int max_squeeze_pkts = 16;
  int baseline_queue_pkts = -1;  ///< restore target when a squeeze closes
  std::vector<net::NodeId> joinable;  ///< flash-crowd candidates (not yet
                                      ///< in the session)
  std::vector<net::NodeId> stormers;  ///< nack-storm candidates (receivers)
};

/// Generate a seeded random plan inside `shape`'s bounds. Deterministic:
/// the same rng state and shape always yield the same plan. Fault windows
/// open in the first ~60% of the horizon and always recover by ~90% of it.
FaultPlan make_random_plan(sim::Rng& rng, const PlanShape& shape,
                           const std::string& name = "random");

}  // namespace sharq::fault
