#include "fault/random_plan.hpp"

namespace sharq::fault {

namespace {

/// A [start, end) window that opens early enough to bite and always closes
/// with margin before the horizon.
std::pair<sim::Time, sim::Time> draw_window(sim::Rng& rng, sim::Time horizon) {
  const sim::Time start = rng.uniform(0.05 * horizon, 0.60 * horizon);
  const sim::Time end = rng.uniform(start + 0.02 * horizon, 0.90 * horizon);
  return {start, end};
}

}  // namespace

FaultPlan make_random_plan(sim::Rng& rng, const PlanShape& shape,
                           const std::string& name) {
  FaultPlan plan;
  plan.name = name;

  auto pick_edge = [&]() -> const FaultyEdge& {
    return shape.edges[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(shape.edges.size()) - 1))];
  };

  if (!shape.edges.empty()) {
    for (int i = 0; i < shape.partitions; ++i) {
      const FaultyEdge& e = pick_edge();
      const auto [t0, t1] = draw_window(rng, shape.horizon);
      plan.events.push_back(
          {t0, EventKind::kPartition, e.a, e.b, 0.0, 0.0, 1});
      plan.events.push_back({t1, EventKind::kHeal, e.a, e.b, 0.0, 0.0, 1});
    }
    for (int i = 0; i < shape.degrade_windows; ++i) {
      const FaultyEdge& e = pick_edge();
      const auto [t0, t1] = draw_window(rng, shape.horizon);
      // Degrade the a->b simplex direction (callers order edges so that is
      // the data-bearing downstream direction).
      switch (rng.uniform_int(0, 3)) {
        case 0:
          plan.events.push_back({t0, EventKind::kLossRate, e.a, e.b,
                                 rng.uniform(0.05, shape.max_loss), 0.0, 1});
          plan.events.push_back({t1, EventKind::kLossRate, e.a, e.b,
                                 e.baseline_loss, 0.0, 1});
          break;
        case 1:
          plan.events.push_back({t0, EventKind::kCorruptRate, e.a, e.b,
                                 rng.uniform(0.005, shape.max_corrupt), 0.0,
                                 1});
          plan.events.push_back(
              {t1, EventKind::kCorruptRate, e.a, e.b, 0.0, 0.0, 1});
          break;
        case 2:
          plan.events.push_back(
              {t0, EventKind::kDuplicateRate, e.a, e.b,
               rng.uniform(0.01, shape.max_duplicate), 0.0,
               static_cast<int>(rng.uniform_int(1, 2))});
          plan.events.push_back(
              {t1, EventKind::kDuplicateRate, e.a, e.b, 0.0, 0.0, 1});
          break;
        default:
          plan.events.push_back(
              {t0, EventKind::kReorderRate, e.a, e.b,
               rng.uniform(0.02, shape.max_reorder),
               rng.uniform(0.001, shape.max_reorder_jitter), 1});
          plan.events.push_back(
              {t1, EventKind::kReorderRate, e.a, e.b, 0.0, 0.0, 1});
          break;
      }
    }
  }

  if (!shape.killable.empty()) {
    for (int i = 0; i < shape.node_churns; ++i) {
      const net::NodeId victim = shape.killable[static_cast<std::size_t>(
          rng.uniform_int(0,
                          static_cast<std::int64_t>(shape.killable.size()) - 1))];
      const auto [t0, t1] = draw_window(rng, shape.horizon);
      plan.events.push_back(
          {t0, EventKind::kNodeKill, victim, net::kNoNode, 0.0, 0.0, 1});
      plan.events.push_back(
          {t1, EventKind::kNodeRestart, victim, net::kNoNode, 0.0, 0.0, 1});
    }
  }

  plan.sort();
  return plan;
}

}  // namespace sharq::fault
