#include "fault/random_plan.hpp"

#include <algorithm>

namespace sharq::fault {

namespace {

/// A [start, end) window that opens early enough to bite and always closes
/// with margin before the horizon.
std::pair<sim::Time, sim::Time> draw_window(sim::Rng& rng, sim::Time horizon) {
  const sim::Time start = rng.uniform(0.05 * horizon, 0.60 * horizon);
  const sim::Time end = rng.uniform(start + 0.02 * horizon, 0.90 * horizon);
  return {start, end};
}

}  // namespace

FaultPlan make_random_plan(sim::Rng& rng, const PlanShape& shape,
                           const std::string& name) {
  FaultPlan plan;
  plan.name = name;

  auto pick_edge = [&]() -> const FaultyEdge& {
    return shape.edges[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(shape.edges.size()) - 1))];
  };

  if (!shape.edges.empty()) {
    for (int i = 0; i < shape.partitions; ++i) {
      const FaultyEdge& e = pick_edge();
      const auto [t0, t1] = draw_window(rng, shape.horizon);
      plan.events.push_back(
          {t0, EventKind::kPartition, e.a, e.b, 0.0, 0.0, 1});
      plan.events.push_back({t1, EventKind::kHeal, e.a, e.b, 0.0, 0.0, 1});
    }
    for (int i = 0; i < shape.degrade_windows; ++i) {
      const FaultyEdge& e = pick_edge();
      const auto [t0, t1] = draw_window(rng, shape.horizon);
      // Degrade the a->b simplex direction (callers order edges so that is
      // the data-bearing downstream direction).
      switch (rng.uniform_int(0, 3)) {
        case 0:
          plan.events.push_back({t0, EventKind::kLossRate, e.a, e.b,
                                 rng.uniform(0.05, shape.max_loss), 0.0, 1});
          plan.events.push_back({t1, EventKind::kLossRate, e.a, e.b,
                                 e.baseline_loss, 0.0, 1});
          break;
        case 1:
          plan.events.push_back({t0, EventKind::kCorruptRate, e.a, e.b,
                                 rng.uniform(0.005, shape.max_corrupt), 0.0,
                                 1});
          plan.events.push_back(
              {t1, EventKind::kCorruptRate, e.a, e.b, 0.0, 0.0, 1});
          break;
        case 2:
          plan.events.push_back(
              {t0, EventKind::kDuplicateRate, e.a, e.b,
               rng.uniform(0.01, shape.max_duplicate), 0.0,
               static_cast<int>(rng.uniform_int(1, 2))});
          plan.events.push_back(
              {t1, EventKind::kDuplicateRate, e.a, e.b, 0.0, 0.0, 1});
          break;
        default:
          plan.events.push_back(
              {t0, EventKind::kReorderRate, e.a, e.b,
               rng.uniform(0.02, shape.max_reorder),
               rng.uniform(0.001, shape.max_reorder_jitter), 1});
          plan.events.push_back(
              {t1, EventKind::kReorderRate, e.a, e.b, 0.0, 0.0, 1});
          break;
      }
    }
  }

  // Exhaustion pressure: every draw below is gated on its count, so legacy
  // shapes (all counts zero) consume the exact same rng sequence as before
  // and stay byte-identical.
  if (!shape.edges.empty()) {
    for (int i = 0; i < shape.bw_squeezes; ++i) {
      const FaultyEdge& e = pick_edge();
      const auto [t0, t1] = draw_window(rng, shape.horizon);
      const double fraction =
          rng.uniform(shape.min_squeeze_fraction,
                      std::max(shape.min_squeeze_fraction, 0.5));
      if (e.baseline_bps <= 0.0) continue;  // no restore target: skip edge
      plan.events.push_back({t0, EventKind::kBandwidth, e.a, e.b,
                             fraction * e.baseline_bps, 0.0, 1});
      plan.events.push_back(
          {t1, EventKind::kBandwidth, e.a, e.b, e.baseline_bps, 0.0, 1});
    }
    for (int i = 0; i < shape.queue_squeezes; ++i) {
      const FaultyEdge& e = pick_edge();
      const auto [t0, t1] = draw_window(rng, shape.horizon);
      const int pkts = static_cast<int>(rng.uniform_int(
          shape.min_squeeze_pkts,
          std::max(shape.min_squeeze_pkts, shape.max_squeeze_pkts)));
      plan.events.push_back(
          {t0, EventKind::kQueueLimit, e.a, e.b, 0.0, 0.0, pkts});
      plan.events.push_back({t1, EventKind::kQueueLimit, e.a, e.b, 0.0, 0.0,
                             shape.baseline_queue_pkts});
    }
  }

  if (!shape.stormers.empty()) {
    for (int i = 0; i < shape.nack_storms; ++i) {
      const net::NodeId from = shape.stormers[static_cast<std::size_t>(
          rng.uniform_int(0,
                          static_cast<std::int64_t>(shape.stormers.size()) - 1))];
      const sim::Time t0 = rng.uniform(0.05 * shape.horizon,
                                       0.60 * shape.horizon);
      const int count = static_cast<int>(rng.uniform_int(
          std::max(1, shape.max_storm_nacks / 2), shape.max_storm_nacks));
      const sim::Time spacing =
          rng.uniform(shape.min_storm_spacing, shape.max_storm_spacing);
      plan.events.push_back(
          {t0, EventKind::kNackStorm, from, net::kNoNode, 0.0, spacing, count});
    }
  }

  if (!shape.joinable.empty()) {
    for (int i = 0; i < shape.flash_crowds; ++i) {
      // Per-node events (from == to): joinable ids need not be contiguous.
      const sim::Time t0 = rng.uniform(0.05 * shape.horizon,
                                       0.50 * shape.horizon);
      const sim::Time spacing = rng.uniform(0.001, 0.010);
      int idx = 0;
      for (const net::NodeId n : shape.joinable) {
        plan.events.push_back({t0 + static_cast<sim::Time>(idx) * spacing,
                               EventKind::kFlashCrowd, n, n, 0.0, 0.0, 1});
        ++idx;
      }
    }
  }

  if (!shape.killable.empty()) {
    for (int i = 0; i < shape.node_churns; ++i) {
      const net::NodeId victim = shape.killable[static_cast<std::size_t>(
          rng.uniform_int(0,
                          static_cast<std::int64_t>(shape.killable.size()) - 1))];
      const auto [t0, t1] = draw_window(rng, shape.horizon);
      plan.events.push_back(
          {t0, EventKind::kNodeKill, victim, net::kNoNode, 0.0, 0.0, 1});
      plan.events.push_back(
          {t1, EventKind::kNodeRestart, victim, net::kNoNode, 0.0, 0.0, 1});
    }
  }

  plan.sort();
  return plan;
}

}  // namespace sharq::fault
