#pragma once

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace sharq::rm {

/// SRM-style suppression timer windows (Floyd et al. '95), shared by the
/// SRM baseline and SHARQFEC (which uses them with fixed constants
/// C1=C2=2, D1=D2=1 per the paper).
struct TimerPolicy {
  double c1 = 2.0;  ///< request window start multiplier
  double c2 = 2.0;  ///< request window width multiplier
  double d1 = 1.0;  ///< reply window start multiplier
  double d2 = 1.0;  ///< reply window width multiplier

  /// The window a request delay was drawn from, for observability: the
  /// flight recorder journals the sampled window alongside the draw so a
  /// trace shows *why* a NACK waited as long as it did.
  struct RequestDraw {
    double lo = 0.0;     ///< window start, 2^i * c1 * d
    double hi = 0.0;     ///< window end, 2^i * (c1+c2) * d
    double scale = 1.0;  ///< the 2^i backoff factor
  };

  /// Request delay: uniform on 2^i * [c1*d, (c1+c2)*d], where d is the
  /// one-way distance estimate to the source and i the backoff stage.
  /// When `draw` is non-null the sampled window is reported through it.
  sim::Time request_delay(sim::Rng& rng, sim::Time d, int backoff_stage,
                          RequestDraw* draw = nullptr) const {
    const double scale = static_cast<double>(
        1u << clamp_stage(backoff_stage));  // sharq-lint: unchecked-shift-ok (clamp_stage bounds to [0,16])
    if (draw) {
      draw->lo = scale * c1 * d;
      draw->hi = scale * (c1 + c2) * d;
      draw->scale = scale;
    }
    return scale * rng.uniform(c1 * d, (c1 + c2) * d);
  }

  /// Reply delay: uniform on [d1*d, (d1+d2)*d], where d is the one-way
  /// distance estimate to the requester. No backoff (paper: the SRM repair
  /// back-off is omitted for SHARQFEC; SRM applies its own suppression).
  sim::Time reply_delay(sim::Rng& rng, sim::Time d) const {
    return rng.uniform(d1 * d, (d1 + d2) * d);
  }

 private:
  static int clamp_stage(int i) { return i < 0 ? 0 : (i > 16 ? 16 : i); }
};

/// Session-message stagger (paper §5): uniform [0.9, 1.1] s steady state,
/// uniform [0.05, 0.25] s for the first three messages to speed up
/// convergence.
struct SessionStagger {
  double steady_lo = 0.9;
  double steady_hi = 1.1;
  double startup_lo = 0.05;
  double startup_hi = 0.25;
  int startup_count = 3;

  sim::Time next_delay(sim::Rng& rng, int messages_sent_so_far) const {
    if (messages_sent_so_far < startup_count) {
      return rng.uniform(startup_lo, startup_hi);
    }
    return rng.uniform(steady_lo, steady_hi);
  }
};

}  // namespace sharq::rm
