#include "rm/delivery_log.hpp"

namespace sharq::rm {

void DeliveryLog::record(net::NodeId node, std::uint64_t unit, sim::Time t) {
  auto& per_node = log_[node];
  per_node.emplace(unit, t);  // keep the first (earliest) completion
}

std::size_t DeliveryLog::completed_count(net::NodeId node) const {
  auto it = log_.find(node);
  return it == log_.end() ? 0 : it->second.size();
}

bool DeliveryLog::complete(net::NodeId node, std::uint64_t total) const {
  auto it = log_.find(node);
  if (it == log_.end()) return total == 0;
  for (std::uint64_t u = 0; u < total; ++u) {
    if (it->second.find(u) == it->second.end()) return false;
  }
  return true;
}

sim::Time DeliveryLog::completion_time(net::NodeId node,
                                       std::uint64_t unit) const {
  auto it = log_.find(node);
  if (it == log_.end()) return sim::kTimeNever;
  auto jt = it->second.find(unit);
  return jt == it->second.end() ? sim::kTimeNever : jt->second;
}

std::vector<double> DeliveryLog::latencies(
    const std::vector<net::NodeId>& nodes,
    const std::unordered_map<std::uint64_t, sim::Time>& sent_at) const {
  std::vector<double> out;
  for (net::NodeId n : nodes) {
    auto it = log_.find(n);
    if (it == log_.end()) continue;
    for (const auto& [unit, t] : it->second) {
      auto st = sent_at.find(unit);
      if (st != sent_at.end()) out.push_back(t - st->second);
    }
  }
  return out;
}

}  // namespace sharq::rm
