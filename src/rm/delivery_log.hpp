#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace sharq::rm {

/// Protocol-independent record of what each receiver ultimately delivered
/// to the application, used by integration tests and benches to verify
/// reliability and measure recovery latency.
class DeliveryLog {
 public:
  /// Receiver `node` completed application unit `unit` (an SRM sequence
  /// number or a SHARQFEC group id) at time `t`.
  void record(net::NodeId node, std::uint64_t unit, sim::Time t);

  /// Units completed by `node`.
  std::size_t completed_count(net::NodeId node) const;

  /// True if `node` completed every unit in [0, total).
  bool complete(net::NodeId node, std::uint64_t total) const;

  /// Completion time of `unit` at `node` (kTimeNever if missing).
  sim::Time completion_time(net::NodeId node, std::uint64_t unit) const;

  /// All completion latencies (t - reference_time(unit)) for a node set.
  std::vector<double> latencies(
      const std::vector<net::NodeId>& nodes,
      const std::unordered_map<std::uint64_t, sim::Time>& sent_at) const;

 private:
  // node -> unit -> completion time. The outer table is lookup-only, but
  // the inner one is iterated by latencies(), whose output order feeds
  // percentile reports — so it must be sorted, not hashed.
  std::unordered_map<net::NodeId, std::map<std::uint64_t, sim::Time>> log_;
};

}  // namespace sharq::rm
