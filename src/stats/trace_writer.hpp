#pragma once

#include <iosfwd>

#include "net/network.hpp"

namespace sharq::stats {

/// Writes a nam-inspired plain-text event trace, one line per event:
///
///   h <time> <from> <to> <class> <size> <uid>           hop (link transmit)
///   r <time> <node> - <class> <size> <uid>              receive (delivery)
///   d <time> <from> <to> <class> <size> <uid> <reason>  drop; reason is
///                                  loss | queue-full | link-down | epoch-kill
///
/// Useful for eyeballing protocol behaviour or feeding external plotting.
/// Can forward every event to another sink (e.g. a TrafficRecorder) so
/// tracing composes with metrics.
class TraceWriter final : public net::TrafficSink {
 public:
  /// `os` must outlive the writer. Pass the network to resolve link
  /// endpoints into from/to node ids (otherwise the raw link id is
  /// printed). `next` (optional) receives every event after writing.
  explicit TraceWriter(std::ostream& os, const net::Network* net = nullptr,
                       net::TrafficSink* next = nullptr);

  void set_next(net::TrafficSink* next) { next_ = next; }

  /// Only record events for traffic classes enabled here (default: all).
  void enable_class(net::TrafficClass cls, bool on);

  void on_deliver(sim::Time t, net::NodeId at, const net::Packet& p) override;
  void on_transmit(sim::Time t, net::LinkId link, const net::Packet& p) override;
  void on_hop(sim::Time t, net::LinkId link, const net::Packet& p) override;
  void on_drop(sim::Time t, net::LinkId link, const net::Packet& p,
               net::DropReason reason) override;

  std::uint64_t lines_written() const { return lines_; }

 private:
  bool enabled(net::TrafficClass cls) const {
    // Bound-check before shifting: a TrafficClass value >= 32 (future enum
    // growth or a forged byte off the wire) would be UB. Out-of-range
    // classes are never traced.
    const unsigned bit = static_cast<unsigned>(cls);
    // sharq-lint: unchecked-shift-ok (short-circuit bound check on the left)
    return bit < 32u && (mask_ & (1u << bit)) != 0;
  }
  /// `suffix`, when given, is appended as one extra space-separated
  /// field (the drop reason on 'd' lines).
  void line(char tag, sim::Time t, int a, int b, const net::Packet& p,
            const char* suffix = nullptr);

  std::ostream& os_;
  const net::Network* net_;
  net::TrafficSink* next_;
  unsigned mask_ = ~0u;
  std::uint64_t lines_ = 0;
};

}  // namespace sharq::stats
