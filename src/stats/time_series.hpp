#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace sharq::stats {

/// A counter binned over fixed-width time intervals.
///
/// The paper reports traffic as packet counts per 0.1 s interval; this is
/// the container those series accumulate into.
class BinnedSeries {
 public:
  explicit BinnedSeries(sim::Time bin_width = 0.1) : width_(bin_width) {}

  /// Add `amount` to the bin containing time `t`.
  void add(sim::Time t, double amount = 1.0);

  sim::Time bin_width() const { return width_; }

  /// Number of bins touched so far (dense from t=0).
  int bin_count() const { return static_cast<int>(bins_.size()); }

  /// Value of bin i (0 beyond the recorded range).
  double bin(int i) const {
    return (i >= 0 && i < bin_count()) ? bins_[i] : 0.0;
  }

  /// Start time of bin i.
  sim::Time bin_start(int i) const { return i * width_; }

  /// Sum over all bins.
  double total() const;

  /// Largest single bin value.
  double peak() const;

  const std::vector<double>& bins() const { return bins_; }

 private:
  sim::Time width_;
  std::vector<double> bins_;
};

/// Summary statistics over a set of samples.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Compute a Summary (sorts a copy; fine at analysis time).
Summary summarize(std::vector<double> samples);

}  // namespace sharq::stats
