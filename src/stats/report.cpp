#include "stats/report.hpp"

#include <iomanip>
#include <sstream>

namespace sharq::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << c;
    }
    os << '\n';
  };
  line(headers_);
  std::string sep;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    sep += std::string(widths[i], '-') + "  ";
  }
  os << sep << '\n';
  for (const auto& row : rows_) line(row);
}

void print_series(std::ostream& os, const std::string& name,
                  const std::vector<double>& values, double bin_width,
                  double t0) {
  os << "# series: " << name << '\n';
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << t0 + bin_width * static_cast<double>(i) << ' ' << values[i] << '\n';
  }
  os << '\n';
}

}  // namespace sharq::stats
