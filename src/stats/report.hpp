#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace sharq::stats {

/// Minimal fixed-width table printer for bench output.
///
/// The bench binaries print the same rows/series the paper's figures plot;
/// this keeps their formatting consistent and greppable.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; cells are printed as given.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 3);

  /// Write the table (headers, separator, rows) to `os`.
  void print(std::ostream& os = std::cout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a named time series as "t value" pairs, one per line, prefixed by
/// a `# series: name` comment — gnuplot-friendly.
void print_series(std::ostream& os, const std::string& name,
                  const std::vector<double>& values, double bin_width,
                  double t0 = 0.0);

}  // namespace sharq::stats
