#include "stats/traffic_recorder.hpp"

#include <cassert>
#include <ostream>
#include <string>
#include <utility>

#include "stats/metrics.hpp"

namespace sharq::stats {

TrafficRecorder::TrafficRecorder(int node_count, sim::Time bin) : bin_(bin) {
  per_node_.resize(node_count);
  for (auto& arr : per_node_) {
    for (auto& s : arr) s = BinnedSeries(bin_);
  }
  for (auto& s : totals_) s = BinnedSeries(bin_);
  for (auto& s : link_series_) s = BinnedSeries(bin_);
}

void TrafficRecorder::watch_links(std::unordered_set<net::LinkId> watched) {
  watched_links_ = std::move(watched);
}

void TrafficRecorder::watch_only(std::unordered_set<net::NodeId> watched) {
  watch_ = std::move(watched);
  watch_all_ = watch_.empty();
}

void TrafficRecorder::on_deliver(sim::Time t, net::NodeId at,
                                 const net::Packet& p) {
  const int ci = class_index(p.cls);
  totals_[ci].add(t);
  bytes_delivered_ += static_cast<std::uint64_t>(p.size_bytes);
  if (at >= 0 && at < static_cast<net::NodeId>(per_node_.size()) &&
      (watch_all_ || watch_.contains(at))) {
    per_node_[at][ci].add(t);
  }
}

void TrafficRecorder::on_transmit(sim::Time t, net::LinkId link,
                                  const net::Packet& p) {
  ++transmissions_;
  if (watched_links_.contains(link)) {
    link_series_[class_index(p.cls)].add(t);
  }
}

void TrafficRecorder::on_hop(sim::Time, net::LinkId, const net::Packet&) {
  ++hops_;
}

void TrafficRecorder::on_drop(sim::Time, net::LinkId, const net::Packet&,
                              net::DropReason reason) {
  ++drops_;
  ++drops_by_reason_[static_cast<int>(reason)];
}

const BinnedSeries& TrafficRecorder::node_series(net::NodeId node,
                                                 net::TrafficClass cls) const {
  return per_node_.at(node)[class_index(cls)];
}

const BinnedSeries& TrafficRecorder::total_series(net::TrafficClass cls) const {
  return totals_[class_index(cls)];
}

double TrafficRecorder::node_total(net::NodeId node,
                                   net::TrafficClass cls) const {
  return node_series(node, cls).total();
}

std::vector<double> TrafficRecorder::mean_over_nodes(
    const std::vector<net::NodeId>& nodes,
    std::initializer_list<net::TrafficClass> classes) const {
  int max_bins = 0;
  for (net::NodeId n : nodes) {
    for (net::TrafficClass c : classes) {
      max_bins = std::max(max_bins, node_series(n, c).bin_count());
    }
  }
  std::vector<double> out(max_bins, 0.0);
  if (nodes.empty()) return out;
  for (net::NodeId n : nodes) {
    for (net::TrafficClass c : classes) {
      const BinnedSeries& s = node_series(n, c);
      for (int i = 0; i < s.bin_count(); ++i) out[i] += s.bin(i);
    }
  }
  for (double& v : out) v /= static_cast<double>(nodes.size());
  return out;
}

void TrafficRecorder::write_series_json(std::ostream& os) const {
  // Alphabetical by wire name, fixed here rather than derived, so the
  // export order can never drift with the enum.
  static constexpr std::pair<const char*, net::TrafficClass> kOrder[] = {
      {"control", net::TrafficClass::kControl},
      {"data", net::TrafficClass::kData},
      {"nack", net::TrafficClass::kNack},
      {"repair", net::TrafficClass::kRepair},
      {"session", net::TrafficClass::kSession},
  };
  std::string out = "{\"bin_width\":";
  out += json_double(bin_);
  out += ",\"classes\":{";
  bool first = true;
  for (const auto& [name, cls] : kOrder) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":[";
    const BinnedSeries& s = totals_[class_index(cls)];
    for (int i = 0; i < s.bin_count(); ++i) {
      if (i > 0) out += ',';
      out += json_double(s.bin(i));
    }
    out += ']';
  }
  out += "}}";
  os << out;
}

}  // namespace sharq::stats
