#include "stats/metrics.hpp"

// sharq-lint: thread-unsafe-ok file (registry registration is the one
// cross-lane rendezvous the shard runtime allows; see metrics.hpp)

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace sharq::stats {

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_quoted(const std::string& s) {
  std::string out = "\"";
  json_escape(out, s);
  out += '"';
  return out;
}

// Shortest round-trip formatting via std::to_chars: deterministic across
// runs (no locale, no printf precision guessing).
std::string json_double(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

namespace {

// Serialized label key: "k1=v1,k2=v2" in map (lexicographic) order. Used
// both as the child map key and as the JSON object key, so export order
// is independent of registration order.
std::string label_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    if (!key.empty()) key += ',';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

std::string format_double(double v) { return json_double(v); }

std::string quoted(const std::string& s) { return json_quoted(s); }

[[noreturn]] void type_mismatch(const std::string& name) {
  std::fprintf(stderr, "metrics: family '%s' re-registered with a different type\n",
               name.c_str());
  std::abort();
}

const char* type_name(Metrics::Type t) {
  switch (t) {
    case Metrics::Type::kCounter: return "counter";
    case Metrics::Type::kGauge: return "gauge";
    case Metrics::Type::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(double least_bound, int bucket_count)
    : least_bound_(least_bound > 0.0 ? least_bound : 1e-3),
      nbuckets_(bucket_count > 0 ? bucket_count : 1),
      buckets_(static_cast<std::size_t>(nbuckets_) * kMaxLanes, 0) {}

double Histogram::bound(int i) const {
  double b = least_bound_;
  for (int k = 0; k < i; ++k) b *= 2.0;
  return b;
}

void Histogram::observe(double v) {
  const int l = lane();
  ++count_[l];
  sum_[l] += v;
  if (v <= least_bound_) {
    ++buckets_[slot(l, 0)];
    return;
  }
  double upper = least_bound_;
  for (int i = 0; i < nbuckets_; ++i, upper *= 2.0) {
    if (v <= upper) {
      ++buckets_[slot(l, i)];
      return;
    }
  }
  ++overflow_[l];
}

// --- Metrics: registration ---------------------------------------------------

Metrics::Family& Metrics::family_of(const std::string& name, Type type) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
  } else if (it->second.type != type) {
    type_mismatch(name);
  }
  return it->second;
}

const Metrics::Family* Metrics::find_family(const std::string& name) const {
  auto it = families_.find(name);
  return it == families_.end() ? nullptr : &it->second;
}

Counter& Metrics::counter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  Family& fam = family_of(name, Type::kCounter);
  auto [it, inserted] = fam.children.try_emplace(label_key(labels));
  if (inserted) {
    it->second.labels = labels;
    it->second.counter = std::make_unique<Counter>();
  }
  return *it->second.counter;
}

Gauge& Metrics::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  Family& fam = family_of(name, Type::kGauge);
  auto [it, inserted] = fam.children.try_emplace(label_key(labels));
  if (inserted) {
    it->second.labels = labels;
    it->second.gauge = std::make_unique<Gauge>();
  }
  return *it->second.gauge;
}

Histogram& Metrics::histogram(const std::string& name, const Labels& labels,
                              double least_bound, int bucket_count) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  Family& fam = family_of(name, Type::kHistogram);
  auto [it, inserted] = fam.children.try_emplace(label_key(labels));
  if (inserted) {
    it->second.labels = labels;
    it->second.histogram = std::make_unique<Histogram>(least_bound, bucket_count);
  }
  return *it->second.histogram;
}

// --- Metrics: lookups --------------------------------------------------------

std::uint64_t Metrics::counter_total(const std::string& name) const {
  const Family* fam = find_family(name);
  if (!fam || fam->type != Type::kCounter) return 0;
  std::uint64_t total = 0;
  for (const auto& [key, child] : fam->children) total += child.counter->value();
  return total;
}

std::uint64_t Metrics::counter_value(const std::string& name,
                                     const Labels& labels) const {
  const Family* fam = find_family(name);
  if (!fam || fam->type != Type::kCounter) return 0;
  auto it = fam->children.find(label_key(labels));
  return it == fam->children.end() ? 0 : it->second.counter->value();
}

double Metrics::gauge_value(const std::string& name, const Labels& labels,
                            double fallback) const {
  const Family* fam = find_family(name);
  if (!fam || fam->type != Type::kGauge) return fallback;
  auto it = fam->children.find(label_key(labels));
  return it == fam->children.end() ? fallback : it->second.gauge->value();
}

// --- Metrics: snapshot / delta -----------------------------------------------

Metrics::Snapshot Metrics::snapshot() const {
  Snapshot snap;
  for (const auto& [name, fam] : families_) {
    Snapshot::Family& sf = snap.families[name];
    sf.type = fam.type;
    for (const auto& [key, child] : fam.children) {
      Snapshot::Value& val = sf.values[key];
      val.labels = child.labels;
      switch (fam.type) {
        case Type::kCounter:
          val.scalar = static_cast<double>(child.counter->value());
          break;
        case Type::kGauge:
          val.scalar = child.gauge->value();
          break;
        case Type::kHistogram: {
          const Histogram& h = *child.histogram;
          val.count = h.count();
          val.sum = h.sum();
          val.least_bound = h.least_bound();
          val.buckets.resize(static_cast<std::size_t>(h.bucket_count()));
          for (int i = 0; i < h.bucket_count(); ++i)
            val.buckets[static_cast<std::size_t>(i)] = h.bucket(i);
          val.overflow = h.overflow();
          break;
        }
      }
    }
  }
  return snap;
}

Metrics::Snapshot Metrics::delta(const Snapshot& now, const Snapshot& then) {
  Snapshot out = now;
  for (auto& [name, fam] : out.families) {
    auto then_fam = then.families.find(name);
    if (then_fam == then.families.end()) continue;
    for (auto& [key, val] : fam.values) {
      auto then_val = then_fam->second.values.find(key);
      if (then_val == then_fam->second.values.end()) continue;
      const Snapshot::Value& old = then_val->second;
      switch (fam.type) {
        case Type::kCounter:
          val.scalar -= old.scalar;
          break;
        case Type::kGauge:
          break;  // gauges keep the newer value
        case Type::kHistogram:
          val.count -= old.count;
          val.sum -= old.sum;
          for (std::size_t i = 0; i < val.buckets.size() && i < old.buckets.size(); ++i)
            val.buckets[i] -= old.buckets[i];
          val.overflow -= old.overflow;
          break;
      }
    }
  }
  return out;
}

// --- Metrics: export ---------------------------------------------------------

namespace {

void write_value_json(std::ostream& os, Metrics::Type type,
                      const Metrics::Snapshot::Value& val) {
  switch (type) {
    case Metrics::Type::kCounter:
      os << static_cast<std::uint64_t>(val.scalar);
      break;
    case Metrics::Type::kGauge:
      os << format_double(val.scalar);
      break;
    case Metrics::Type::kHistogram: {
      os << "{\"count\":" << val.count << ",\"sum\":" << format_double(val.sum)
         << ",\"least_bound\":" << format_double(val.least_bound)
         << ",\"buckets\":[";
      for (std::size_t i = 0; i < val.buckets.size(); ++i) {
        if (i) os << ',';
        os << val.buckets[i];
      }
      os << "],\"overflow\":" << val.overflow << '}';
      break;
    }
  }
}

}  // namespace

void Metrics::write_json(std::ostream& os, const Snapshot& snap) {
  os << "{\"schema\":\"sharqfec.metrics.v1\",\"metrics\":";
  write_families_json(os, snap);
  os << '}';
}

void Metrics::write_families_json(std::ostream& os, const Snapshot& snap) {
  os << '{';
  bool first_fam = true;
  for (const auto& [name, fam] : snap.families) {
    if (!first_fam) os << ',';
    first_fam = false;
    os << quoted(name) << ":{\"type\":\"" << type_name(fam.type)
       << "\",\"values\":{";
    bool first_val = true;
    for (const auto& [key, val] : fam.values) {
      if (!first_val) os << ',';
      first_val = false;
      os << quoted(key) << ':';
      write_value_json(os, fam.type, val);
    }
    os << "}}";
  }
  os << '}';
}

void Metrics::write_json(std::ostream& os) const { write_json(os, snapshot()); }

void Metrics::write_totals_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const auto& [name, fam] : families_) {
    if (!first) os << ',';
    first = false;
    os << quoted(name) << ':';
    switch (fam.type) {
      case Type::kCounter: {
        std::uint64_t total = 0;
        for (const auto& [key, child] : fam.children)
          total += child.counter->value();
        os << total;
        break;
      }
      case Type::kGauge: {
        double mx = 0.0;
        bool any = false;
        for (const auto& [key, child] : fam.children) {
          double v = child.gauge->value();
          if (!any || v > mx) mx = v;
          any = true;
        }
        os << format_double(mx);
        break;
      }
      case Type::kHistogram: {
        std::uint64_t count = 0;
        double sum = 0.0;
        for (const auto& [key, child] : fam.children) {
          count += child.histogram->count();
          // sharq-lint: float-accum-ok (iteration order fixed: children is a std::map, label-key order)
          sum += child.histogram->sum();
        }
        os << "{\"count\":" << count << ",\"sum\":" << format_double(sum) << '}';
        break;
      }
    }
  }
  os << '}';
}

}  // namespace sharq::stats
