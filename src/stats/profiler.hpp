#pragma once

// Two-channel self-profiling layer (docs/OBSERVABILITY.md, "Profiles").
//
// Channel A — deterministic. Per-subsystem scope counts and named
// counters (events dispatched, packets forwarded, FEC bytes, cross-shard
// messages, windows, barriers) plus the pull-based memory census. Every
// value is a pure function of simulated history: lane-sliced like the
// metrics registry (lane == shard), so the exported "deterministic"
// section is byte-identical across worker counts and belongs inside the
// same-seed reproducibility contract.
//
// Channel B — wall-clock timing, explicitly OUTSIDE every determinism
// artifact. Per-(shard, subsystem) self time, barrier-wait and
// lookahead-stall histograms. The clock itself is confined to
// profiler.cpp (the tree's single `sharq-lint: wall-clock-ok` file); this
// header contains no time source, so probe call sites never carry clock
// tokens. The "timing" section of the export is never compared byte-wise.
//
// Probes are cheap by construction: a disabled profiler costs one branch
// per scope; an enabled one costs a lane-local counter bump. Clock reads
// are SAMPLED: each lane opens a timing gate every kSamplePeriod-th event
// (ProfGate, at the dispatch site), and only scopes running under an open
// gate take the out-of-line timed path in profiler.cpp. Channel-A counts
// stay exact; Channel-B self times are unbiased 1-in-kSamplePeriod
// estimates, scaled back up at export. On hosts where a TSC read costs
// tens of nanoseconds this keeps the --profile wall-time overhead within
// a couple of percent at tens of millions of scopes. Nothing here feeds
// back into simulation state, so enabling profiling cannot perturb event
// order.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "stats/lane.hpp"

namespace sharq::stats {

/// Subsystems a probe can attribute work to. The spelled-out lowercase
/// names double as the probe-catalog keys in docs/OBSERVABILITY.md
/// (scripts/check_docs.sh cross-checks both directions).
enum class ProfSubsys : int {
  event_loop = 0,  ///< event dispatch + handler time no finer probe claims
  net_forward,     ///< multicast forwarding: send, transmit, arrive
  transfer,        ///< two-phase transfer engine (data/NACK/repair + timers)
  session,         ///< session messaging, elections, peer/RTT bookkeeping
  codec,           ///< GF(256) FEC encode/decode call sites
  shard_barrier,   ///< shard-runtime barrier: mailbox merge + journal flush
  kCount,
};
inline constexpr int kProfSubsysCount = static_cast<int>(ProfSubsys::kCount);

/// Stable lowercase name of a subsystem ("event_loop", ...).
const char* prof_subsys_name(ProfSubsys s);

/// Named deterministic counters (Channel A).
enum class ProfCounter : int {
  events_dispatched = 0,  ///< events executed across all shard queues
  packets_forwarded,      ///< link hand-offs (per-hop, not per-send)
  packets_delivered,      ///< agent deliveries
  fec_bytes_encoded,      ///< parity bytes produced by repairers
  fec_bytes_decoded,      ///< payload bytes reconstructed by receivers
  xshard_msgs,            ///< cross-shard mailbox hand-offs
  windows,                ///< lookahead windows executed
  barriers,               ///< barrier merges executed
  lookahead_stalls,       ///< windows where some shard executed 0 events
  kCount,
};
inline constexpr int kProfCounterCount = static_cast<int>(ProfCounter::kCount);

/// Stable lowercase name of a counter ("events_dispatched", ...).
const char* prof_counter_name(ProfCounter c);

/// Pull-based memory attribution: components report bytes per named
/// category once, at export time (no hot-path accounting beyond the byte
/// fields the pools already keep). `live` is bytes referenced right now;
/// `peak` is the retained/high-water figure — what the resident set paid
/// for, since pools and containers do not return memory mid-run.
struct MemCensus {
  struct Entry {
    std::uint64_t live_bytes = 0;
    std::uint64_t peak_bytes = 0;
  };
  std::map<std::string, Entry> categories;

  void add(const std::string& category, std::uint64_t live,
           std::uint64_t peak) {
    Entry& e = categories[category];
    e.live_bytes += live;
    e.peak_bytes += peak;
  }
};

/// The profiler instance. Drivers construct one when `--profile=FILE` is
/// requested, install it with set_active(), run, feed the census, and
/// write_file(). One instance per process run; all probes in the tree
/// observe it through the process-wide active() pointer.
class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The installed profiler, or nullptr (probes become no-ops). Install
  /// and remove outside windows only — probes read this without
  /// synchronization, which is safe exactly because it never changes
  /// while worker threads run.
  static Profiler* active() { return active_; }
  static void set_active(Profiler* p) { active_ = p; }

  // --- Channel A: deterministic counters ----------------------------------

  /// Bump a named counter in the calling lane. Safe (and free) when no
  /// profiler is installed.
  static void count(ProfCounter c, std::uint64_t n = 1) {
    if (active_ != nullptr) {
      active_->counters_[lane()][static_cast<int>(c)] += n;
    }
  }

  std::uint64_t counter_value(ProfCounter c) const;
  std::uint64_t scope_count(ProfSubsys s) const;

  // --- probes (Channel A count + Channel B self time) ----------------------

  /// One in kSamplePeriod gated units (event dispatches, barrier merges)
  /// is wall-timed; the rest only count. Exported self times are scaled
  /// back by this factor. 16 keeps the d3_f8_8k macro case's --profile
  /// overhead inside the 2% budget on hosts where one TSC read costs
  /// ~15 ns, while still clocking >1M events per macro run.
  static constexpr std::uint32_t kSamplePeriod = 16;

  /// Scope enter: always bumps the Channel-A scope count; takes the
  /// clock-reading path (timed_enter, out of line in profiler.cpp) only
  /// when the calling lane's sampling gate is open. Returns whether the
  /// timed path was taken so ~ProfScope stays balanced.
  bool enter(ProfSubsys s) {
    const int l = lane();
    ++scopes_[l][static_cast<int>(s)];
    if (!gate_[l]) return false;
    timed_enter(l, static_cast<int>(s));
    return true;
  }

  /// Open the calling lane's sampling gate for one unit of work: bumps
  /// counter `c` and the `s` scope count (Channel A, every unit), and on
  /// every kSamplePeriod-th unit opens the gate with a timed `s` frame so
  /// handler time not claimed by a finer probe lands in `s`'s self time.
  /// Returns whether the gate opened (ProfGate closes it symmetrically).
  bool gate_open(ProfCounter c, ProfSubsys s) {
    const int l = lane();
    ++counters_[l][static_cast<int>(c)];
    ++scopes_[l][static_cast<int>(s)];
    if (++gate_tick_[l] != kSamplePeriod) return false;
    gate_tick_[l] = 0;
    gate_[l] = true;
    timed_enter(l, static_cast<int>(s));
    return true;
  }
  void gate_close() {
    const int l = lane();
    timed_exit(l);
    gate_[l] = false;
  }

  /// Timed frame push/pop. Out of line: the clock reads live in
  /// profiler.cpp. Self time is attributed to the frame's subsystem
  /// (child frames subtract themselves from the parent), per lane, so
  /// shard workers never contend.
  void timed_enter(int l, int subsys);
  void timed_exit(int l);

  // --- shard-runtime hooks (Channel B histograms) --------------------------
  // Called by ShardRuntime so its own files stay clock-token-free. All
  // stamps are taken inside profiler.cpp.

  /// A lookahead window is about to run (single-threaded).
  void window_begin();
  /// Shard `shard`'s lane finished its slice of the window (worker thread;
  /// writes only that shard's slot).
  void shard_window_done(int shard);
  /// Window joined (single-threaded, after the worker join): computes
  /// per-shard barrier-wait = (last finisher − this shard) and the window
  /// span, feeding the barrier_wait / window / stall_window histograms.
  void window_end(int nshards, bool stalled);

  // --- export-time inputs ---------------------------------------------------

  /// Merge a memory census into the deterministic section.
  void set_memory(const MemCensus& census);

  /// Resident-set growth over the run (timing section only — RSS is not
  /// deterministic).
  void set_rss_delta(std::uint64_t bytes);

  /// Free-form run descriptors for the timing section ("case", "threads",
  /// "tool", ...). Never part of the deterministic section.
  void set_env(const std::string& key, const std::string& value);

  /// Lanes to export (the run's shard count; serial runs use 1).
  void set_shards(int n);

  // --- export ---------------------------------------------------------------

  /// `{"schema":"sharqfec.profile.v1","deterministic":{...},"timing":{...}}`.
  /// The deterministic object is byte-identical for identical simulated
  /// histories; the timing object is a side channel.
  void write_json(std::ostream& os) const;

  /// write_json to `path`; false (with a stderr note) on I/O failure.
  bool write_file(const std::string& path) const;

  /// Log2 tick histogram (Channel B): bucket i counts samples with
  /// 2^(i-1) < ticks <= 2^i; bucket 0 takes 0/1-tick samples. Public so
  /// the export formatter (profiler.cpp) and tests can inspect it.
  struct TickHist {
    static constexpr int kBuckets = 40;
    std::uint64_t buckets[kBuckets] = {};
    std::uint64_t count = 0;
    std::uint64_t sum_ticks = 0;
    void add(std::uint64_t ticks);
  };

 private:
  struct Frame {
    int subsys = 0;
    std::uint64_t t0 = 0;
    std::uint64_t child = 0;
  };
  static constexpr int kMaxDepth = 16;
  struct LaneTiming {
    Frame stack[kMaxDepth];
    int depth = 0;
  };

  double ns_per_tick() const;
  void write_deterministic(std::ostream& os) const;
  void write_timing(std::ostream& os) const;

  inline static Profiler* active_ = nullptr;

  // Channel A (lane-sliced, summed/exported per shard).
  std::uint64_t counters_[kMaxLanes][kProfCounterCount] = {};
  std::uint64_t scopes_[kMaxLanes][kProfSubsysCount] = {};
  MemCensus memory_;
  int shards_ = 1;

  // Channel B (lane-sliced ticks; calibrated to ns at export). The gate
  // arrays are written only by their own lane, so sampling needs no
  // synchronization.
  bool gate_[kMaxLanes] = {};
  std::uint32_t gate_tick_[kMaxLanes] = {};
  LaneTiming timing_[kMaxLanes];
  std::uint64_t self_ticks_[kMaxLanes][kProfSubsysCount] = {};
  std::uint64_t truncated_scopes_[kMaxLanes] = {};  ///< past kMaxDepth, untimed
  std::uint64_t window_t0_ = 0;
  std::uint64_t shard_done_[kMaxLanes] = {};
  std::uint64_t barrier_wait_ticks_[kMaxLanes] = {};
  TickHist barrier_wait_;
  TickHist window_span_;
  TickHist stall_window_;
  std::uint64_t start_ticks_ = 0;
  std::uint64_t start_steady_ns_ = 0;
  std::uint64_t rss_delta_bytes_ = 0;
  std::map<std::string, std::string> env_;
};

/// RAII probe. `SHARQ_PROF_SCOPE(codec)` attributes the enclosing block's
/// self time (when the lane's sampling gate is open) and one scope count
/// (always) to ProfSubsys::codec.
class ProfScope {
 public:
  explicit ProfScope(ProfSubsys s) : prof_(Profiler::active()) {
    if (prof_ != nullptr) timed_ = prof_->enter(s);
  }
  ~ProfScope() {
    if (timed_) prof_->timed_exit(lane());
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* prof_;
  bool timed_ = false;
};

/// RAII sampling gate around one unit of dispatch (an event callback, a
/// barrier merge). Counts every unit exactly (Channel A); wall-times one
/// in Profiler::kSamplePeriod of them, opening the lane's gate so nested
/// ProfScope probes read the clock only inside sampled units.
class ProfGate {
 public:
  ProfGate(ProfCounter c, ProfSubsys s) : prof_(Profiler::active()) {
    if (prof_ != nullptr) opened_ = prof_->gate_open(c, s);
  }
  ~ProfGate() {
    if (opened_) prof_->gate_close();
  }
  ProfGate(const ProfGate&) = delete;
  ProfGate& operator=(const ProfGate&) = delete;

 private:
  Profiler* prof_;
  bool opened_ = false;
};

#define SHARQ_PROF_CAT2(a, b) a##b
#define SHARQ_PROF_CAT(a, b) SHARQ_PROF_CAT2(a, b)
/// Scoped probe: `SHARQ_PROF_SCOPE(net_forward);` — the argument must be
/// a ProfSubsys enumerator and appear in the docs/OBSERVABILITY.md probe
/// catalog (the prof-docs lint rule checks both directions).
// sharq-lint: prof-docs-ok begin (macro definition: `subsys` is the
// parameter name, not a probe)
#define SHARQ_PROF_SCOPE(subsys)                                    \
  ::sharq::stats::ProfScope SHARQ_PROF_CAT(sharq_prof_scope_,       \
                                           __LINE__)(               \
      ::sharq::stats::ProfSubsys::subsys)
// sharq-lint: prof-docs-ok end

}  // namespace sharq::stats
