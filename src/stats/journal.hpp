#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace sharq::stats {

/// Id of one journal event. Monotonically increasing from 1 within a
/// journal; 0 is the null id ("no cause" — the event is a span root, like
/// a group's first arrival, or its trigger was not recorded).
using EventId = std::uint64_t;

/// One typed attribute value. A plain tagged struct rather than
/// std::variant so the construction rules are exactly the overload set
/// below — no converting-constructor subtleties between int/double/bool.
struct AttrValue {
  enum class Kind { kInt, kDouble, kString };

  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;

  AttrValue(int v) : kind(Kind::kInt), i(v) {}                // NOLINT
  AttrValue(unsigned v) : kind(Kind::kInt), i(v) {}           // NOLINT
  AttrValue(std::int64_t v) : kind(Kind::kInt), i(v) {}       // NOLINT
  AttrValue(std::uint64_t v)                                  // NOLINT
      : kind(Kind::kInt), i(static_cast<std::int64_t>(v)) {}
  AttrValue(double v) : kind(Kind::kDouble), d(v) {}          // NOLINT
  AttrValue(const char* v) : kind(Kind::kString), s(v) {}     // NOLINT
  AttrValue(std::string v) : kind(Kind::kString), s(std::move(v)) {}  // NOLINT
};

/// Event attributes. An ordered map, for the same reason the metrics
/// registry orders its families: export bytes must not depend on
/// construction order or hash seeds.
using Attrs = std::map<std::string, AttrValue>;

/// Structured JSONL flight recorder for the recovery lifecycle.
///
/// Each line is one event:
///
///   {"id":N,"t":T,"node":N,"group":G,"ev":"...","cause":C,"attrs":{...}}
///
/// with keys always in that order, doubles via std::to_chars and attrs
/// map-ordered, so two same-seed runs write byte-identical journals
/// (docs/DETERMINISM.md). `cause` is the id of the event that triggered
/// this one (0 = root); causes always point backwards (cause < id), so a
/// journal read top-to-bottom is causally ordered.
///
/// The span key is {node, group}: one receiver's recovery lifecycle for
/// one group. Events outside any group (ZCR election, packet drops)
/// carry group -1.
///
/// Attachment follows the metrics-registry pattern: engines hold a
/// `Journal*` that is null by default, and every emitting site is guarded
/// (`if (journal_) ...`), so a detached run pays one predictable branch.
///
/// Cross-node causality rides on packet uids: the sender binds the uid
/// returned by Network::send to the event that sent it (bind_uid); the
/// receiver looks the uid up (uid_event) and uses it as the cause of
/// whatever the packet triggered. No wire-format change — the map lives
/// in the journal, outside the simulated protocol.
class Journal {
 public:
  /// The journal writes lines to `os` as they are emitted (no buffering
  /// beyond the stream's own). The stream must outlive the journal.
  explicit Journal(std::ostream& os) : os_(os) {}
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Append one event line and return its id. `ev` is the event name
  /// (catalog in docs/OBSERVABILITY.md); `t` the simulation time; `group`
  /// -1 for non-group events; `cause` the triggering event's id or 0.
  EventId emit(const char* ev, double t, int node, std::int64_t group,
               EventId cause, const Attrs& attrs = {});

  /// Bind a packet uid to the event that sent it. uid 0 (Network::send's
  /// "origin down" sentinel) is ignored.
  void bind_uid(std::uint64_t uid, EventId ev);

  /// Event bound to `uid`, or 0 if unknown.
  EventId uid_event(std::uint64_t uid) const;

  /// Number of events emitted so far (in lane mode: written + buffered).
  std::uint64_t events() const {
    std::uint64_t n = next_ - 1;
    for (const LaneState& l : lanes_) n += l.buf.size();
    return n;
  }

  // --- lane mode (sharded runtime) -------------------------------------------
  //
  // The shard runtime switches the journal into lane-buffered mode: each
  // worker lane appends records to its own buffer (no shared state inside
  // a window) and emit() returns a *provisional* id. At every window
  // barrier the runtime calls flush_lanes(), which merges the buffers in
  // deterministic (t, lane, emit-order) order, assigns final sequential
  // ids, rewrites provisional cause references, and writes the lines —
  // so the bytes depend only on simulated history, never on thread
  // interleaving. Cross-lane causality (packet uids) always crosses at
  // least one barrier (arrival >= send + lookahead), so by the time a
  // remote lane looks a uid up, its binding has been flushed into the
  // shared map; same-lane lookups hit the lane's pending map directly.

  /// Enter lane mode with `lanes` worker lanes (call before the run).
  void begin_lanes(int lanes);

  /// Merge and write all lane buffers (call at each window barrier and
  /// once after the run). Single-threaded by contract.
  void flush_lanes();

 private:
  // Provisional ids live at kProvBase and above ((lane+1) << 40 | seq);
  // final ids are sequential from 1, far below. The gap is how cause
  // references are told apart at flush time.
  static constexpr EventId kProvBase = EventId{1} << 40;

  struct LaneRec {
    std::string ev;
    double t = 0.0;
    int node = 0;
    std::int64_t group = 0;
    EventId cause = 0;
    Attrs attrs;
  };
  struct LaneState {
    std::vector<LaneRec> buf;
    std::uint64_t next_seq = 0;  // per-lane, monotonic across flushes
    // uid -> (possibly provisional) event id, merged into uid_events_ at
    // flush. Lookup-only: exempt from the unordered-iter rule.
    std::unordered_map<std::uint64_t, EventId> pending_uids;
  };

  void write_line(EventId id, const char* ev, double t, int node,
                  std::int64_t group, EventId cause, const Attrs& attrs);

  std::ostream& os_;
  EventId next_ = 1;
  // Lookup-only (never iterated): exempt from the unordered-iter rule.
  std::unordered_map<std::uint64_t, EventId> uid_events_;
  std::vector<LaneState> lanes_;  // empty = serial mode
  // Provisional -> final id map; persistent because a long-lived timer
  // may hold a cause from many windows ago. Lookup-only.
  std::unordered_map<EventId, EventId> prov_to_final_;
};

}  // namespace sharq::stats
