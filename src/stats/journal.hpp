#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>

namespace sharq::stats {

/// Id of one journal event. Monotonically increasing from 1 within a
/// journal; 0 is the null id ("no cause" — the event is a span root, like
/// a group's first arrival, or its trigger was not recorded).
using EventId = std::uint64_t;

/// One typed attribute value. A plain tagged struct rather than
/// std::variant so the construction rules are exactly the overload set
/// below — no converting-constructor subtleties between int/double/bool.
struct AttrValue {
  enum class Kind { kInt, kDouble, kString };

  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;

  AttrValue(int v) : kind(Kind::kInt), i(v) {}                // NOLINT
  AttrValue(unsigned v) : kind(Kind::kInt), i(v) {}           // NOLINT
  AttrValue(std::int64_t v) : kind(Kind::kInt), i(v) {}       // NOLINT
  AttrValue(std::uint64_t v)                                  // NOLINT
      : kind(Kind::kInt), i(static_cast<std::int64_t>(v)) {}
  AttrValue(double v) : kind(Kind::kDouble), d(v) {}          // NOLINT
  AttrValue(const char* v) : kind(Kind::kString), s(v) {}     // NOLINT
  AttrValue(std::string v) : kind(Kind::kString), s(std::move(v)) {}  // NOLINT
};

/// Event attributes. An ordered map, for the same reason the metrics
/// registry orders its families: export bytes must not depend on
/// construction order or hash seeds.
using Attrs = std::map<std::string, AttrValue>;

/// Structured JSONL flight recorder for the recovery lifecycle.
///
/// Each line is one event:
///
///   {"id":N,"t":T,"node":N,"group":G,"ev":"...","cause":C,"attrs":{...}}
///
/// with keys always in that order, doubles via std::to_chars and attrs
/// map-ordered, so two same-seed runs write byte-identical journals
/// (docs/DETERMINISM.md). `cause` is the id of the event that triggered
/// this one (0 = root); causes always point backwards (cause < id), so a
/// journal read top-to-bottom is causally ordered.
///
/// The span key is {node, group}: one receiver's recovery lifecycle for
/// one group. Events outside any group (ZCR election, packet drops)
/// carry group -1.
///
/// Attachment follows the metrics-registry pattern: engines hold a
/// `Journal*` that is null by default, and every emitting site is guarded
/// (`if (journal_) ...`), so a detached run pays one predictable branch.
///
/// Cross-node causality rides on packet uids: the sender binds the uid
/// returned by Network::send to the event that sent it (bind_uid); the
/// receiver looks the uid up (uid_event) and uses it as the cause of
/// whatever the packet triggered. No wire-format change — the map lives
/// in the journal, outside the simulated protocol.
class Journal {
 public:
  /// The journal writes lines to `os` as they are emitted (no buffering
  /// beyond the stream's own). The stream must outlive the journal.
  explicit Journal(std::ostream& os) : os_(os) {}
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Append one event line and return its id. `ev` is the event name
  /// (catalog in docs/OBSERVABILITY.md); `t` the simulation time; `group`
  /// -1 for non-group events; `cause` the triggering event's id or 0.
  EventId emit(const char* ev, double t, int node, std::int64_t group,
               EventId cause, const Attrs& attrs = {});

  /// Bind a packet uid to the event that sent it. uid 0 (Network::send's
  /// "origin down" sentinel) is ignored.
  void bind_uid(std::uint64_t uid, EventId ev);

  /// Event bound to `uid`, or 0 if unknown.
  EventId uid_event(std::uint64_t uid) const;

  /// Number of events emitted so far.
  std::uint64_t events() const { return next_ - 1; }

 private:
  std::ostream& os_;
  EventId next_ = 1;
  // Lookup-only (never iterated): exempt from the unordered-iter rule.
  std::unordered_map<std::uint64_t, EventId> uid_events_;
};

}  // namespace sharq::stats
