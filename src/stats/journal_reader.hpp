#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sharq::stats {

/// One parsed journal line (see Journal for the write side). Attribute
/// values are kept as their raw JSON text ("3", "0.25", "timer") — the
/// analyzer converts on demand, and round-tripping stays lossless.
struct JournalEvent {
  std::uint64_t id = 0;
  double t = 0.0;
  int node = -1;
  std::int64_t group = -1;
  std::string ev;
  std::uint64_t cause = 0;
  std::map<std::string, std::string> attrs;

  /// Attribute as text (nullptr if absent). String-valued attributes are
  /// returned unquoted/unescaped.
  const std::string* attr(const std::string& key) const;
  /// Attribute as a number (fallback if absent or not numeric).
  double attr_num(const std::string& key, double fallback = 0.0) const;
};

/// Parse a whole journal. Returns nullopt (message in *error if given) on
/// the first malformed line — a journal that half-parses would make every
/// analysis downstream lie.
std::optional<std::vector<JournalEvent>> read_journal(
    std::istream& is, std::string* error = nullptr);

/// Parse one journal line (exposed for tests).
std::optional<JournalEvent> parse_journal_line(const std::string& line,
                                               std::string* error = nullptr);

// --- timeline ----------------------------------------------------------------

/// One row of a causally ordered narrative. Events come out in id order,
/// which IS causal order (causes always point backwards), with the latency
/// of the cause edge attached.
struct TimelineEntry {
  const JournalEvent* event = nullptr;
  /// t(event) - t(cause); -1 when the event is a root or its cause was
  /// filtered out of the journal slice.
  double edge_latency = -1.0;
  /// Causal depth from the nearest root (0 = root).
  int depth = 0;
};

/// Narrative for one group (node -1 = all nodes). Cause edges are resolved
/// against the FULL event list, so cross-node edges keep their latency
/// even when filtering to one node.
std::vector<TimelineEntry> timeline(const std::vector<JournalEvent>& events,
                                    std::int64_t group, int node = -1);

// --- breakdown ---------------------------------------------------------------

/// Recovery-latency split of one {node, group} span. Phases not exercised
/// (no loss, no NACK, ...) stay at -1.
struct SpanBreakdown {
  int node = -1;
  std::int64_t group = -1;
  int level = -1;          ///< zone level of the span's first nack.sent
  double detection = -1.0; ///< first arrival -> first loss.detected
  double request = -1.0;   ///< first loss.detected -> first nack.sent
  double reply = -1.0;     ///< first nack.sent -> first useful repair.received
  double decode = -1.0;    ///< last phase boundary -> group.complete
  double total = -1.0;     ///< first arrival -> group.complete
  bool complete = false;
};

/// Assemble per-span breakdowns from group-scoped events.
std::vector<SpanBreakdown> span_breakdowns(
    const std::vector<JournalEvent>& events);

// --- anomaly detectors -------------------------------------------------------

struct Anomaly {
  std::string kind;   ///< nack-implosion | duplicate-repair |
                      ///< scope-escalation-storm | stuck-group
  std::int64_t group = -1;
  int node = -1;      ///< -1 when the anomaly is group-wide
  double t = 0.0;     ///< when it was first observed
  std::string detail; ///< human-readable specifics
};

struct AnomalyThresholds {
  /// nack-implosion: more than this many nack.sent for one group, across
  /// all nodes, inside one sliding window — suppression failed.
  int implosion_nacks = 8;
  double implosion_window = 0.5;
  /// duplicate-repair: the same (group, parity index) transmitted this
  /// many times or more within one zone — slice coordination failed.
  /// Distinct zones repeating an index is scoped repair working as
  /// designed, so the detector keys on the repair's `zone` attribute.
  int duplicate_repairs = 2;
  /// scope-escalation-storm: one span escalating at least this many times.
  int escalation_storm = 3;
};

/// Run every detector over the journal. Deterministic output order
/// (by kind, then group/node/t).
std::vector<Anomaly> detect_anomalies(const std::vector<JournalEvent>& events,
                                      const AnomalyThresholds& th = {});

// --- perfetto export ---------------------------------------------------------

/// Chrome trace-event JSON ({"traceEvents":[...]}): one "X" slice per
/// event (pid = node, tid = group; election events land on tid -1) plus a
/// flow "s"/"f" pair per cause edge, so Perfetto draws the causal arrows.
/// Byte-deterministic for a given journal.
void write_perfetto(std::ostream& os, const std::vector<JournalEvent>& events);

}  // namespace sharq::stats
