#include "stats/time_series.hpp"

#include <cmath>
#include <numeric>

namespace sharq::stats {

void BinnedSeries::add(sim::Time t, double amount) {
  if (t < 0.0) t = 0.0;
  const int idx = static_cast<int>(t / width_);
  if (idx >= bin_count()) bins_.resize(idx + 1, 0.0);
  bins_[idx] += amount;
}

double BinnedSeries::total() const {
  return std::accumulate(bins_.begin(), bins_.end(), 0.0);
}

double BinnedSeries::peak() const {
  double p = 0.0;
  for (double v : bins_) p = std::max(p, v);
  return p;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  auto at_quantile = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  s.p50 = at_quantile(0.50);
  s.p90 = at_quantile(0.90);
  s.p99 = at_quantile(0.99);
  return s;
}

}  // namespace sharq::stats
