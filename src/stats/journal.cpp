#include "stats/journal.hpp"

#include <ostream>

#include "stats/metrics.hpp"  // json_escape / json_quoted / json_double

namespace sharq::stats {

EventId Journal::emit(const char* ev, double t, int node, std::int64_t group,
                      EventId cause, const Attrs& attrs) {
  const EventId id = next_++;
  std::string line;
  line.reserve(96);
  line += "{\"id\":";
  line += std::to_string(id);
  line += ",\"t\":";
  line += json_double(t);
  line += ",\"node\":";
  line += std::to_string(node);
  line += ",\"group\":";
  line += std::to_string(group);
  line += ",\"ev\":\"";
  json_escape(line, ev);
  line += "\",\"cause\":";
  line += std::to_string(cause);
  line += ",\"attrs\":{";
  bool first = true;
  for (const auto& [key, val] : attrs) {
    if (!first) line += ',';
    first = false;
    line += json_quoted(key);
    line += ':';
    switch (val.kind) {
      case AttrValue::Kind::kInt:
        line += std::to_string(val.i);
        break;
      case AttrValue::Kind::kDouble:
        line += json_double(val.d);
        break;
      case AttrValue::Kind::kString:
        line += json_quoted(val.s);
        break;
    }
  }
  line += "}}\n";
  os_ << line;
  return id;
}

void Journal::bind_uid(std::uint64_t uid, EventId ev) {
  if (uid == 0) return;  // origin was down; nothing was sent
  uid_events_[uid] = ev;
}

EventId Journal::uid_event(std::uint64_t uid) const {
  auto it = uid_events_.find(uid);
  return it == uid_events_.end() ? 0 : it->second;
}

}  // namespace sharq::stats
