#include "stats/journal.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "stats/lane.hpp"
#include "stats/metrics.hpp"  // json_escape / json_quoted / json_double

namespace sharq::stats {

EventId Journal::emit(const char* ev, double t, int node, std::int64_t group,
                      EventId cause, const Attrs& attrs) {
  if (!lanes_.empty()) {
    LaneState& l = lanes_[static_cast<std::size_t>(lane())];
    const EventId prov =
        kProvBase * static_cast<EventId>(lane() + 1) + l.next_seq++;
    l.buf.push_back(LaneRec{ev, t, node, group, cause, attrs});
    return prov;
  }
  const EventId id = next_++;
  write_line(id, ev, t, node, group, cause, attrs);
  return id;
}

void Journal::write_line(EventId id, const char* ev, double t, int node,
                         std::int64_t group, EventId cause, const Attrs& attrs) {
  std::string line;
  line.reserve(96);
  line += "{\"id\":";
  line += std::to_string(id);
  line += ",\"t\":";
  line += json_double(t);
  line += ",\"node\":";
  line += std::to_string(node);
  line += ",\"group\":";
  line += std::to_string(group);
  line += ",\"ev\":\"";
  json_escape(line, ev);
  line += "\",\"cause\":";
  line += std::to_string(cause);
  line += ",\"attrs\":{";
  bool first = true;
  for (const auto& [key, val] : attrs) {
    if (!first) line += ',';
    first = false;
    line += json_quoted(key);
    line += ':';
    switch (val.kind) {
      case AttrValue::Kind::kInt:
        line += std::to_string(val.i);
        break;
      case AttrValue::Kind::kDouble:
        line += json_double(val.d);
        break;
      case AttrValue::Kind::kString:
        line += json_quoted(val.s);
        break;
    }
  }
  line += "}}\n";
  os_ << line;
}

void Journal::bind_uid(std::uint64_t uid, EventId ev) {
  if (uid == 0) return;  // origin was down; nothing was sent
  if (!lanes_.empty()) {
    lanes_[static_cast<std::size_t>(lane())].pending_uids[uid] = ev;
    return;
  }
  uid_events_[uid] = ev;
}

EventId Journal::uid_event(std::uint64_t uid) const {
  if (!lanes_.empty()) {
    // Same-lane bindings not yet flushed (a packet delivered within its
    // own shard's window). Cross-lane bindings always reach the shared
    // map through at least one intervening flush.
    const LaneState& l = lanes_[static_cast<std::size_t>(lane())];
    auto pit = l.pending_uids.find(uid);
    if (pit != l.pending_uids.end()) return pit->second;
  }
  auto it = uid_events_.find(uid);
  return it == uid_events_.end() ? 0 : it->second;
}

void Journal::begin_lanes(int lanes) {
  assert(lanes >= 1 && lanes <= kMaxLanes);
  // Lines already written (setup-time emissions) keep their final ids;
  // lane buffering applies from here on.
  lanes_.assign(static_cast<std::size_t>(lanes), LaneState{});
}

void Journal::flush_lanes() {
  if (lanes_.empty()) return;
  struct Item {
    const LaneRec* rec;
    EventId prov;
  };
  std::vector<Item> items;
  std::size_t total = 0;
  for (const LaneState& l : lanes_) total += l.buf.size();
  items.reserve(total);
  for (std::size_t li = 0; li < lanes_.size(); ++li) {
    const LaneState& l = lanes_[li];
    // The lane's buffered records carry consecutive sequence numbers
    // ending at next_seq; recover each record's provisional id from its
    // position.
    const std::uint64_t first_seq = l.next_seq - l.buf.size();
    for (std::size_t i = 0; i < l.buf.size(); ++i) {
      items.push_back(Item{
          &l.buf[i],
          kProvBase * static_cast<EventId>(li + 1) + first_seq + i});
    }
  }
  // Lanes were appended in lane order and each lane's buffer is in emit
  // order, so a stable sort by time alone yields (t, lane, emit-order) —
  // the deterministic merge rank.
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.rec->t < b.rec->t; });
  for (const Item& it : items) {
    const EventId id = next_++;
    prov_to_final_[it.prov] = id;
    EventId cause = it.rec->cause;
    if (cause >= kProvBase) {
      // Causes point backwards, so the referenced event's final id is
      // already assigned (this flush or an earlier one).
      cause = prov_to_final_.at(cause);
    }
    write_line(id, it.rec->ev.c_str(), it.rec->t, it.rec->node, it.rec->group,
               cause, it.rec->attrs);
  }
  for (LaneState& l : lanes_) {
    // sharq-lint: unordered-iter-ok (merge into an unordered map is order-free)
    for (const auto& [uid, ev] : l.pending_uids) {
      uid_events_[uid] = ev >= kProvBase ? prov_to_final_.at(ev) : ev;
    }
    l.pending_uids.clear();
    l.buf.clear();
  }
}

}  // namespace sharq::stats
