#include "stats/journal_reader.hpp"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "stats/metrics.hpp"

namespace sharq::stats {

namespace {

/// Hand-rolled scanner for the journal's single-line JSON objects. The
/// writer emits a fixed shape (flat object, one nested "attrs" object,
/// no arrays), so a full JSON library would be dead weight; the scanner
/// still tolerates whitespace and unknown keys so hand-edited fixtures
/// parse too.
class Scanner {
 public:
  explicit Scanner(const std::string& s) : s_(s) {}

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool peek_is(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

  /// Parse a quoted string at the cursor, unescaping into `out`.
  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // The writer only \u-escapes control characters, so a single
          // byte always suffices; accept the general BMP range anyway.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  /// Capture a bare JSON number's raw characters.
  bool parse_number_token(std::string& out) {
    skip_ws();
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        out.push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    return !out.empty();
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

bool fail(std::string* error, const char* msg) {
  if (error) *error = msg;
  return false;
}

/// Does `s` read entirely as one JSON number? Drives the perfetto export's
/// re-emit decision for attrs (numbers stay bare, everything else gets
/// quoted); the writer's string attrs never look numeric.
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  const char* begin = s.c_str();
  char* end = nullptr;
  std::strtod(begin, &end);
  return end == begin + s.size();
}

/// Parse a journal line's fields into `out`; false (with message) on any
/// structural problem.
bool parse_line_into(const std::string& line, JournalEvent& out,
                     std::string* error) {
  Scanner sc(line);
  if (!sc.eat('{')) return fail(error, "expected '{'");
  bool saw_id = false;
  bool saw_ev = false;
  if (!sc.peek_is('}')) {
    do {
      std::string key;
      if (!sc.parse_string(key)) return fail(error, "expected key string");
      if (!sc.eat(':')) return fail(error, "expected ':'");
      if (key == "attrs") {
        if (!sc.eat('{')) return fail(error, "expected attrs object");
        if (!sc.peek_is('}')) {
          do {
            std::string akey;
            std::string aval;
            if (!sc.parse_string(akey)) {
              return fail(error, "expected attr key");
            }
            if (!sc.eat(':')) return fail(error, "expected ':' in attrs");
            if (sc.peek_is('"')) {
              if (!sc.parse_string(aval)) {
                return fail(error, "bad attr string");
              }
            } else if (!sc.parse_number_token(aval)) {
              return fail(error, "bad attr value");
            }
            out.attrs.emplace(std::move(akey), std::move(aval));
          } while (sc.eat(','));
        }
        if (!sc.eat('}')) return fail(error, "unterminated attrs");
        continue;
      }
      if (key == "ev") {
        if (!sc.parse_string(out.ev)) return fail(error, "bad ev string");
        saw_ev = true;
        continue;
      }
      std::string num;
      if (sc.peek_is('"')) {
        // Unknown string-valued key from a newer writer: skip it.
        if (!sc.parse_string(num)) return fail(error, "bad string value");
        continue;
      }
      if (!sc.parse_number_token(num)) return fail(error, "bad value");
      if (key == "id") {
        out.id = std::strtoull(num.c_str(), nullptr, 10);
        saw_id = true;
      } else if (key == "t") {
        out.t = std::strtod(num.c_str(), nullptr);
      } else if (key == "node") {
        out.node = static_cast<int>(std::strtol(num.c_str(), nullptr, 10));
      } else if (key == "group") {
        out.group = std::strtoll(num.c_str(), nullptr, 10);
      } else if (key == "cause") {
        out.cause = std::strtoull(num.c_str(), nullptr, 10);
      }
      // Unknown numeric keys are skipped.
    } while (sc.eat(','));
  }
  if (!sc.eat('}')) return fail(error, "unterminated object");
  if (!sc.at_end()) return fail(error, "trailing characters");
  if (!saw_id || out.id == 0) return fail(error, "missing or zero id");
  if (!saw_ev || out.ev.empty()) return fail(error, "missing ev");
  return true;
}

}  // namespace

const std::string* JournalEvent::attr(const std::string& key) const {
  const auto it = attrs.find(key);
  return it == attrs.end() ? nullptr : &it->second;
}

double JournalEvent::attr_num(const std::string& key, double fallback) const {
  const std::string* raw = attr(key);
  if (!raw || raw->empty()) return fallback;
  const char* begin = raw->c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  return end == begin + raw->size() ? v : fallback;
}

std::optional<JournalEvent> parse_journal_line(const std::string& line,
                                               std::string* error) {
  JournalEvent ev;
  if (!parse_line_into(line, ev, error)) return std::nullopt;
  return ev;
}

std::optional<std::vector<JournalEvent>> read_journal(std::istream& is,
                                                      std::string* error) {
  std::vector<JournalEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string why;
    JournalEvent ev;
    if (!parse_line_into(line, ev, &why)) {
      if (error) *error = "line " + std::to_string(lineno) + ": " + why;
      return std::nullopt;
    }
    events.push_back(std::move(ev));
  }
  return events;
}

// --- timeline ----------------------------------------------------------------

std::vector<TimelineEntry> timeline(const std::vector<JournalEvent>& events,
                                    std::int64_t group, int node) {
  // Lookup-only index over the full journal so filtered views still
  // resolve cause edges that live outside the slice.
  std::unordered_map<std::uint64_t, const JournalEvent*> by_id;
  by_id.reserve(events.size());
  std::unordered_map<std::uint64_t, int> depth;
  depth.reserve(events.size());
  for (const JournalEvent& ev : events) {
    by_id.emplace(ev.id, &ev);
    int d = 0;
    if (ev.cause != 0) {
      const auto it = depth.find(ev.cause);
      if (it != depth.end()) d = it->second + 1;
    }
    depth.emplace(ev.id, d);
  }
  std::vector<TimelineEntry> rows;
  for (const JournalEvent& ev : events) {
    if (ev.group != group) continue;
    if (node != -1 && ev.node != node) continue;
    TimelineEntry row;
    row.event = &ev;
    const auto dit = depth.find(ev.id);
    row.depth = dit == depth.end() ? 0 : dit->second;
    if (ev.cause != 0) {
      const auto cit = by_id.find(ev.cause);
      if (cit != by_id.end()) row.edge_latency = ev.t - cit->second->t;
    }
    rows.push_back(row);
  }
  return rows;
}

// --- breakdown ---------------------------------------------------------------

std::vector<SpanBreakdown> span_breakdowns(
    const std::vector<JournalEvent>& events) {
  struct SpanAcc {
    double arrival = -1.0;
    double loss = -1.0;
    double nack = -1.0;
    double repair = -1.0;  // first USEFUL repair.received
    double complete = -1.0;
    int level = -1;
  };
  // Ordered: output rows come out sorted by (group, node).
  std::map<std::pair<std::int64_t, int>, SpanAcc> spans;
  for (const JournalEvent& ev : events) {
    if (ev.group < 0) continue;
    SpanAcc& acc = spans[{ev.group, ev.node}];
    if (ev.ev == "group.first_arrival") {
      if (acc.arrival < 0) acc.arrival = ev.t;
    } else if (ev.ev == "loss.detected") {
      if (acc.loss < 0) acc.loss = ev.t;
    } else if (ev.ev == "nack.sent") {
      if (acc.nack < 0) {
        acc.nack = ev.t;
        acc.level = static_cast<int>(ev.attr_num("level", -1.0));
      }
    } else if (ev.ev == "repair.received") {
      if (acc.repair < 0 && ev.attr_num("useful") > 0) acc.repair = ev.t;
    } else if (ev.ev == "group.complete") {
      if (acc.complete < 0) acc.complete = ev.t;
    }
  }
  std::vector<SpanBreakdown> rows;
  rows.reserve(spans.size());
  for (const auto& [key, acc] : spans) {
    SpanBreakdown row;
    row.group = key.first;
    row.node = key.second;
    row.level = acc.level;
    row.complete = acc.complete >= 0;
    if (acc.arrival >= 0 && acc.loss >= 0) {
      row.detection = acc.loss - acc.arrival;
    }
    if (acc.loss >= 0 && acc.nack >= 0) row.request = acc.nack - acc.loss;
    if (acc.nack >= 0 && acc.repair >= 0) row.reply = acc.repair - acc.nack;
    if (acc.complete >= 0) {
      // Decode is measured from the last phase boundary the span actually
      // crossed, so loss-free groups report 0-ish decode, not a gap.
      const double boundary = acc.repair >= 0   ? acc.repair
                              : acc.nack >= 0   ? acc.nack
                              : acc.loss >= 0   ? acc.loss
                                                : acc.arrival;
      if (boundary >= 0) row.decode = acc.complete - boundary;
      if (acc.arrival >= 0) row.total = acc.complete - acc.arrival;
    }
    rows.push_back(row);
  }
  return rows;
}

// --- anomaly detectors -------------------------------------------------------

std::vector<Anomaly> detect_anomalies(const std::vector<JournalEvent>& events,
                                      const AnomalyThresholds& th) {
  std::vector<Anomaly> out;

  // nack-implosion: sliding window over each group's nack.sent times
  // (journal order is time order). One report per group, at the moment
  // the window first overflows.
  {
    std::map<std::int64_t, std::vector<double>> nacks;
    for (const JournalEvent& ev : events) {
      if (ev.ev == "nack.sent" && ev.group >= 0) {
        nacks[ev.group].push_back(ev.t);
      }
    }
    for (const auto& [group, times] : nacks) {
      std::size_t lo = 0;
      for (std::size_t hi = 0; hi < times.size(); ++hi) {
        while (times[hi] - times[lo] > th.implosion_window) ++lo;
        const int in_window = static_cast<int>(hi - lo + 1);
        if (in_window > th.implosion_nacks) {
          Anomaly a;
          a.kind = "nack-implosion";
          a.group = group;
          a.t = times[hi];
          a.detail = std::to_string(in_window) + " NACKs within " +
                     json_double(th.implosion_window) +
                     "s; suppression is not converging";
          out.push_back(std::move(a));
          break;
        }
      }
    }
  }

  // duplicate-repair: the same (group, parity index) on the wire more
  // than once WITHIN one zone. Counted from repair.sent (repair.received
  // legitimately repeats once per listener), and keyed by zone because
  // scoped repair means distinct zones sending the same index is the
  // design, not an overlap.
  {
    struct DupAcc {
      int count = 0;
      double first_dup_t = 0.0;
    };
    std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>, DupAcc>
        sent;
    for (const JournalEvent& ev : events) {
      if (ev.ev != "repair.sent" || ev.group < 0) continue;
      const auto index = static_cast<std::int64_t>(ev.attr_num("index", -1.0));
      const auto zone = static_cast<std::int64_t>(ev.attr_num("zone", -1.0));
      DupAcc& acc = sent[{ev.group, index, zone}];
      ++acc.count;
      if (acc.count == th.duplicate_repairs) acc.first_dup_t = ev.t;
    }
    for (const auto& [key, acc] : sent) {
      if (acc.count < th.duplicate_repairs) continue;
      Anomaly a;
      a.kind = "duplicate-repair";
      a.group = std::get<0>(key);
      a.t = acc.first_dup_t;
      a.detail = "parity index " + std::to_string(std::get<1>(key)) +
                 " transmitted " + std::to_string(acc.count) +
                 " times in zone " + std::to_string(std::get<2>(key)) +
                 "; slice coordination overlapped";
      out.push_back(std::move(a));
    }
  }

  // scope-escalation-storm: one span widening its request scope again
  // and again — the configured zone sizing is not containing the loss.
  {
    struct EscAcc {
      int count = 0;
      double storm_t = 0.0;
    };
    std::map<std::pair<std::int64_t, int>, EscAcc> esc;
    for (const JournalEvent& ev : events) {
      if (ev.ev != "scope.escalated" || ev.group < 0) continue;
      EscAcc& acc = esc[{ev.group, ev.node}];
      ++acc.count;
      if (acc.count == th.escalation_storm) acc.storm_t = ev.t;
    }
    for (const auto& [key, acc] : esc) {
      if (acc.count < th.escalation_storm) continue;
      Anomaly a;
      a.kind = "scope-escalation-storm";
      a.group = key.first;
      a.node = key.second;
      a.t = acc.storm_t;
      a.detail = "scope escalated " + std::to_string(acc.count) +
                 " times in one recovery span";
      out.push_back(std::move(a));
    }
  }

  // stuck-group: a span that detected loss or sent NACKs but never logged
  // group.complete before the journal ended.
  {
    struct StuckAcc {
      bool active = false;
      bool complete = false;
      double last_t = 0.0;
    };
    std::map<std::pair<std::int64_t, int>, StuckAcc> spans;
    for (const JournalEvent& ev : events) {
      if (ev.group < 0) continue;
      StuckAcc& acc = spans[{ev.group, ev.node}];
      acc.last_t = ev.t;
      if (ev.ev == "loss.detected" || ev.ev == "nack.sent") acc.active = true;
      if (ev.ev == "group.complete") acc.complete = true;
    }
    for (const auto& [key, acc] : spans) {
      if (!acc.active || acc.complete) continue;
      Anomaly a;
      a.kind = "stuck-group";
      a.group = key.first;
      a.node = key.second;
      a.t = acc.last_t;
      a.detail = "recovery started but no group.complete by end of journal";
      out.push_back(std::move(a));
    }
  }

  std::sort(out.begin(), out.end(), [](const Anomaly& a, const Anomaly& b) {
    return std::tie(a.kind, a.group, a.node, a.t) <
           std::tie(b.kind, b.group, b.node, b.t);
  });
  return out;
}

// --- perfetto export ---------------------------------------------------------

void write_perfetto(std::ostream& os, const std::vector<JournalEvent>& events) {
  // Lookup-only: resolves each cause edge to its source coordinates.
  std::unordered_map<std::uint64_t, const JournalEvent*> by_id;
  by_id.reserve(events.size());
  for (const JournalEvent& ev : events) by_id.emplace(ev.id, &ev);

  os << "{\"traceEvents\":[";
  bool first = true;
  std::string buf;
  for (const JournalEvent& ev : events) {
    // Trace-event ts is in microseconds; the sim clock is seconds.
    const std::string ts = json_double(ev.t * 1e6);
    buf.clear();
    if (!first) buf += ',';
    first = false;
    buf += "\n{\"name\":";
    buf += json_quoted(ev.ev);
    buf += ",\"ph\":\"X\",\"ts\":";
    buf += ts;
    buf += ",\"dur\":1,\"pid\":";
    buf += std::to_string(ev.node);
    buf += ",\"tid\":";
    buf += std::to_string(ev.group);
    buf += ",\"args\":{\"id\":";
    buf += std::to_string(ev.id);
    for (const auto& [key, value] : ev.attrs) {
      buf += ',';
      buf += json_quoted(key);
      buf += ':';
      buf += looks_numeric(value) ? value : json_quoted(value);
    }
    buf += "}}";
    os << buf;
    if (ev.cause == 0) continue;
    const auto cit = by_id.find(ev.cause);
    if (cit == by_id.end()) continue;
    const JournalEvent& src = *cit->second;
    // One flow arrow per cause edge, keyed by the child's id (unique).
    buf.clear();
    buf += ",\n{\"name\":\"cause\",\"cat\":\"cause\",\"ph\":\"s\",\"id\":";
    buf += std::to_string(ev.id);
    buf += ",\"ts\":";
    buf += json_double(src.t * 1e6);
    buf += ",\"pid\":";
    buf += std::to_string(src.node);
    buf += ",\"tid\":";
    buf += std::to_string(src.group);
    buf += "},\n{\"name\":\"cause\",\"cat\":\"cause\",\"ph\":\"f\",\"bp\":\"e\",\"id\":";
    buf += std::to_string(ev.id);
    buf += ",\"ts\":";
    buf += ts;
    buf += ",\"pid\":";
    buf += std::to_string(ev.node);
    buf += ",\"tid\":";
    buf += std::to_string(ev.group);
    buf += '}';
    os << buf;
  }
  os << "\n]}\n";
}

}  // namespace sharq::stats
