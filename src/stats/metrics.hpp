#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
// Registration (family/child map insertion) is the one concurrent path in
// the sharded runtime — hot paths bump cached references. A plain mutex
// there cannot perturb simulation order, so determinism is preserved.
// sharq-lint: thread-unsafe-ok file (lane-aware metrics registry backing
// the deterministic shard runtime; docs/ARCHITECTURE.md)
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "stats/lane.hpp"

namespace sharq::stats {

// --- shared deterministic JSON helpers ---------------------------------------
// Every exporter in stats/ (metrics registry, journal, traffic series) must
// produce byte-identical output for identical values, so they share one
// formatting vocabulary: to_chars doubles (shortest round-trip, no locale)
// and one escaping rule.

/// Append `s` to `out` with JSON string escaping (", \, \n, \t, and other
/// control bytes as \uXXXX).
void json_escape(std::string& out, const std::string& s);

/// `s` escaped and wrapped in double quotes.
std::string json_quoted(const std::string& s);

/// Shortest round-trip formatting via std::to_chars; "0" on failure.
std::string json_double(double v);

/// Labels attached to one child of a metric family. Stored as an ordered
/// map so two registrations with the same pairs in different order land on
/// the same child, and so export order is stable.
using Labels = std::map<std::string, std::string>;

/// Monotonically increasing event count.
///
/// Lane-aware: each shard worker writes its own lane slot (no sharing, no
/// synchronization) and value() sums the lanes. Summation is
/// order-independent, so exports are byte-identical for any worker count.
/// Reading value() concurrently with a running shard window is a race by
/// contract — reads belong at barriers or after the run.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { lanes_[lane()] += n; }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (std::uint64_t v : lanes_) total += v;
    return total;
  }

 private:
  std::uint64_t lanes_[kMaxLanes] = {};
};

/// Point-in-time value (EWMA trajectories, queue depths, high-water marks).
///
/// Lane-aware like Counter: writes land in the caller's lane and value()
/// merges with max over *written* lanes — exact for high-water marks and
/// for per-entity gauges written from one lane (a node's gauge is only
/// ever set by the shard that owns the node). A serial run uses lane 0
/// only, so value() degenerates to the plain last-write semantics.
class Gauge {
 public:
  void set(double v) {
    lanes_[lane()] = v;
    written_[lane()] = true;
  }
  /// Keep the maximum ever seen (high-water marks).
  void set_max(double v) {
    written_[lane()] = true;
    if (v > lanes_[lane()]) lanes_[lane()] = v;
  }
  double value() const {
    double best = 0.0;
    bool any = false;
    for (int l = 0; l < kMaxLanes; ++l) {
      if (!written_[l]) continue;
      if (!any || lanes_[l] > best) best = lanes_[l];
      any = true;
    }
    return best;
  }

 private:
  double lanes_[kMaxLanes] = {};
  bool written_[kMaxLanes] = {};
};

/// Fixed-bucket log2 histogram: bucket i counts observations with
/// value <= least_bound * 2^i; anything larger lands in the overflow
/// bucket. Values <= 0 count in bucket 0. Bounds are fixed at
/// construction, so deltas subtract bucket-wise.
/// Lane-aware (see Counter): observations land in the caller's lane and
/// the accessors sum bucket-wise across lanes.
class Histogram {
 public:
  explicit Histogram(double least_bound = 1e-3, int bucket_count = 24);

  void observe(double v);

  std::uint64_t count() const { return sum_lanes(count_); }
  double sum() const {
    double total = 0.0;
    // sharq-lint: float-accum-ok (iteration order fixed: lane-indexed vector, lane count is seed-stable)
    for (double v : sum_) total += v;
    return total;
  }
  int bucket_count() const { return nbuckets_; }
  /// Inclusive upper bound of bucket i (least_bound * 2^i).
  double bound(int i) const;
  std::uint64_t bucket(int i) const {
    std::uint64_t total = 0;
    for (int l = 0; l < kMaxLanes; ++l) total += buckets_[slot(l, i)];
    return total;
  }
  std::uint64_t overflow() const { return sum_lanes(overflow_); }
  double least_bound() const { return least_bound_; }

 private:
  std::size_t slot(int lane, int bucket) const {
    return static_cast<std::size_t>(lane) * static_cast<std::size_t>(nbuckets_) +
           static_cast<std::size_t>(bucket);
  }
  static std::uint64_t sum_lanes(const std::uint64_t (&lanes)[kMaxLanes]) {
    std::uint64_t total = 0;
    for (std::uint64_t v : lanes) total += v;
    return total;
  }

  double least_bound_;
  int nbuckets_;
  std::vector<std::uint64_t> buckets_;  // [lane * nbuckets_ + bucket]
  std::uint64_t overflow_[kMaxLanes] = {};
  std::uint64_t count_[kMaxLanes] = {};
  double sum_[kMaxLanes] = {};
};

/// A deterministic registry of named counter/gauge/histogram families with
/// labelled children (per-node, per-zone-level, per-traffic-class, ...).
///
/// Contract:
///  - `counter(name, labels)` (etc.) returns a reference that stays valid
///    for the registry's lifetime, so hot paths register once and bump a
///    cached pointer;
///  - a family's type is fixed by its first registration; re-registering
///    under another type is a programmer error and aborts;
///  - export order is stable: families by name, children by their
///    serialized label key — two identical runs write identical bytes.
class Metrics {
 public:
  enum class Type { kCounter, kGauge, kHistogram };

  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       double least_bound = 1e-3, int bucket_count = 24);

  /// Sum of a counter family over all children (0 if absent). For tests
  /// and summary output.
  std::uint64_t counter_total(const std::string& name) const;
  /// One child's counter value (0 if absent).
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels) const;
  /// One child's gauge value (fallback if absent).
  double gauge_value(const std::string& name, const Labels& labels,
                     double fallback = 0.0) const;

  // --- snapshot / delta ------------------------------------------------------

  /// A deep copy of every value at one instant. Counter and histogram
  /// snapshots subtract (delta()); gauges report the newer value.
  struct Snapshot {
    struct Value {
      Labels labels;
      double scalar = 0.0;           // counter (integral) or gauge
      std::uint64_t count = 0;       // histogram
      double sum = 0.0;              // histogram
      double least_bound = 0.0;      // histogram
      std::vector<std::uint64_t> buckets;  // histogram (+overflow implicit)
      std::uint64_t overflow = 0;    // histogram
    };
    struct Family {
      Type type = Type::kCounter;
      std::map<std::string, Value> values;  // by serialized label key
    };
    std::map<std::string, Family> families;
  };

  Snapshot snapshot() const;

  /// now - then, per family/child: counters and histograms subtract
  /// element-wise, gauges keep their `now` value. Children absent from
  /// `then` pass through unchanged; children only in `then` are dropped.
  static Snapshot delta(const Snapshot& now, const Snapshot& then);

  // --- export ----------------------------------------------------------------

  /// Stable-ordered JSON: {"schema":"sharqfec.metrics.v1","metrics":{...}}.
  /// Byte-identical across runs that produced identical values.
  void write_json(std::ostream& os) const;
  static void write_json(std::ostream& os, const Snapshot& snap);

  /// Just the families object ({...} mapped name -> family), without the
  /// schema envelope — for embedding alongside sibling keys (the sim's
  /// combined metrics + "series" export).
  static void write_families_json(std::ostream& os, const Snapshot& snap);

  /// Compact one-level summary: {"name":<aggregate>,...} where counters
  /// sum over children, gauges take the max, histograms report
  /// {"count":..,"sum":..}. For embedding in other JSON lines (chaos_sim).
  void write_totals_json(std::ostream& os) const;

 private:
  struct Child {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Type type = Type::kCounter;
    std::map<std::string, Child> children;  // by serialized label key
  };

  Family& family_of(const std::string& name, Type type);
  const Family* find_family(const std::string& name) const;

  // Guards family/child map insertion only (cold path). Shard workers may
  // register a labelled child mid-window; returned references stay valid
  // (node-based maps), so hot-path bumps stay lock-free. Map insertion
  // order cannot leak into exports — they iterate in key order.
  mutable std::mutex reg_mu_;
  std::map<std::string, Family> families_;
};

}  // namespace sharq::stats
