#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace sharq::stats {

// --- shared deterministic JSON helpers ---------------------------------------
// Every exporter in stats/ (metrics registry, journal, traffic series) must
// produce byte-identical output for identical values, so they share one
// formatting vocabulary: to_chars doubles (shortest round-trip, no locale)
// and one escaping rule.

/// Append `s` to `out` with JSON string escaping (", \, \n, \t, and other
/// control bytes as \uXXXX).
void json_escape(std::string& out, const std::string& s);

/// `s` escaped and wrapped in double quotes.
std::string json_quoted(const std::string& s);

/// Shortest round-trip formatting via std::to_chars; "0" on failure.
std::string json_double(double v);

/// Labels attached to one child of a metric family. Stored as an ordered
/// map so two registrations with the same pairs in different order land on
/// the same child, and so export order is stable.
using Labels = std::map<std::string, std::string>;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time value (EWMA trajectories, queue depths, high-water marks).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  /// Keep the maximum ever seen (high-water marks).
  void set_max(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket log2 histogram: bucket i counts observations with
/// value <= least_bound * 2^i; anything larger lands in the overflow
/// bucket. Values <= 0 count in bucket 0. Bounds are fixed at
/// construction, so deltas subtract bucket-wise.
class Histogram {
 public:
  explicit Histogram(double least_bound = 1e-3, int bucket_count = 24);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  int bucket_count() const { return static_cast<int>(buckets_.size()); }
  /// Inclusive upper bound of bucket i (least_bound * 2^i).
  double bound(int i) const;
  std::uint64_t bucket(int i) const { return buckets_[i]; }
  std::uint64_t overflow() const { return overflow_; }
  double least_bound() const { return least_bound_; }

 private:
  double least_bound_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// A deterministic registry of named counter/gauge/histogram families with
/// labelled children (per-node, per-zone-level, per-traffic-class, ...).
///
/// Contract:
///  - `counter(name, labels)` (etc.) returns a reference that stays valid
///    for the registry's lifetime, so hot paths register once and bump a
///    cached pointer;
///  - a family's type is fixed by its first registration; re-registering
///    under another type is a programmer error and aborts;
///  - export order is stable: families by name, children by their
///    serialized label key — two identical runs write identical bytes.
class Metrics {
 public:
  enum class Type { kCounter, kGauge, kHistogram };

  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       double least_bound = 1e-3, int bucket_count = 24);

  /// Sum of a counter family over all children (0 if absent). For tests
  /// and summary output.
  std::uint64_t counter_total(const std::string& name) const;
  /// One child's counter value (0 if absent).
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels) const;
  /// One child's gauge value (fallback if absent).
  double gauge_value(const std::string& name, const Labels& labels,
                     double fallback = 0.0) const;

  // --- snapshot / delta ------------------------------------------------------

  /// A deep copy of every value at one instant. Counter and histogram
  /// snapshots subtract (delta()); gauges report the newer value.
  struct Snapshot {
    struct Value {
      Labels labels;
      double scalar = 0.0;           // counter (integral) or gauge
      std::uint64_t count = 0;       // histogram
      double sum = 0.0;              // histogram
      double least_bound = 0.0;      // histogram
      std::vector<std::uint64_t> buckets;  // histogram (+overflow implicit)
      std::uint64_t overflow = 0;    // histogram
    };
    struct Family {
      Type type = Type::kCounter;
      std::map<std::string, Value> values;  // by serialized label key
    };
    std::map<std::string, Family> families;
  };

  Snapshot snapshot() const;

  /// now - then, per family/child: counters and histograms subtract
  /// element-wise, gauges keep their `now` value. Children absent from
  /// `then` pass through unchanged; children only in `then` are dropped.
  static Snapshot delta(const Snapshot& now, const Snapshot& then);

  // --- export ----------------------------------------------------------------

  /// Stable-ordered JSON: {"schema":"sharqfec.metrics.v1","metrics":{...}}.
  /// Byte-identical across runs that produced identical values.
  void write_json(std::ostream& os) const;
  static void write_json(std::ostream& os, const Snapshot& snap);

  /// Just the families object ({...} mapped name -> family), without the
  /// schema envelope — for embedding alongside sibling keys (the sim's
  /// combined metrics + "series" export).
  static void write_families_json(std::ostream& os, const Snapshot& snap);

  /// Compact one-level summary: {"name":<aggregate>,...} where counters
  /// sum over children, gauges take the max, histograms report
  /// {"count":..,"sum":..}. For embedding in other JSON lines (chaos_sim).
  void write_totals_json(std::ostream& os) const;

 private:
  struct Child {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Type type = Type::kCounter;
    std::map<std::string, Child> children;  // by serialized label key
  };

  Family& family_of(const std::string& name, Type type);
  const Family* find_family(const std::string& name) const;

  std::map<std::string, Family> families_;
};

}  // namespace sharq::stats
