#include "stats/profiler.hpp"

// The ONE file in src/ allowed to read wall-clock time. Channel B is a
// timing side channel: its output lands only in the "timing" section of
// the profile export, which is never byte-compared and never feeds back
// into simulation state, so same-seed reproducibility is untouched.
// sharq-lint: wall-clock-ok file (Channel B self-profiling timing side
// channel; deterministic artifacts never read these values —
// docs/OBSERVABILITY.md, "Profiles")
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "stats/metrics.hpp"

namespace sharq::stats {

namespace {

/// Raw monotonic tick source. TSC where available (a serializing clock
/// call per probe would dominate the probe itself); steady_clock
/// nanoseconds elsewhere. Ticks are converted to seconds at export using
/// the steady_clock span measured across the whole run, so the unit never
/// needs to be known in advance.
std::uint64_t raw_ticks() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* clock_name() {
#if defined(__x86_64__) || defined(__i386__)
  return "tsc";
#else
  return "steady";
#endif
}

int log2_bucket(std::uint64_t ticks) {
  int b = 0;
  while (ticks > 1 && b < Profiler::TickHist::kBuckets - 1) {
    ticks >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

const char* prof_subsys_name(ProfSubsys s) {
  switch (s) {
    case ProfSubsys::event_loop: return "event_loop";
    case ProfSubsys::net_forward: return "net_forward";
    case ProfSubsys::transfer: return "transfer";
    case ProfSubsys::session: return "session";
    case ProfSubsys::codec: return "codec";
    case ProfSubsys::shard_barrier: return "shard_barrier";
    case ProfSubsys::kCount: break;
  }
  return "?";
}

const char* prof_counter_name(ProfCounter c) {
  switch (c) {
    case ProfCounter::events_dispatched: return "events_dispatched";
    case ProfCounter::packets_forwarded: return "packets_forwarded";
    case ProfCounter::packets_delivered: return "packets_delivered";
    case ProfCounter::fec_bytes_encoded: return "fec_bytes_encoded";
    case ProfCounter::fec_bytes_decoded: return "fec_bytes_decoded";
    case ProfCounter::xshard_msgs: return "xshard_msgs";
    case ProfCounter::windows: return "windows";
    case ProfCounter::barriers: return "barriers";
    case ProfCounter::lookahead_stalls: return "lookahead_stalls";
    case ProfCounter::kCount: break;
  }
  return "?";
}

void Profiler::TickHist::add(std::uint64_t ticks) {
  ++buckets[log2_bucket(ticks)];
  ++count;
  sum_ticks += ticks;
}

Profiler::Profiler() {
  start_ticks_ = raw_ticks();
  start_steady_ns_ = steady_ns();
}

Profiler::~Profiler() {
  if (active_ == this) active_ = nullptr;
}

std::uint64_t Profiler::counter_value(ProfCounter c) const {
  std::uint64_t total = 0;
  for (int l = 0; l < kMaxLanes; ++l) {
    total += counters_[l][static_cast<int>(c)];
  }
  return total;
}

std::uint64_t Profiler::scope_count(ProfSubsys s) const {
  std::uint64_t total = 0;
  for (int l = 0; l < kMaxLanes; ++l) {
    total += scopes_[l][static_cast<int>(s)];
  }
  return total;
}

void Profiler::timed_enter(int l, int subsys) {
  LaneTiming& lt = timing_[l];
  if (lt.depth >= kMaxDepth) {
    ++truncated_scopes_[l];
    ++lt.depth;  // keep enter/exit balanced past the cap
    return;
  }
  Frame& f = lt.stack[lt.depth++];
  f.subsys = subsys;
  f.t0 = raw_ticks();
  f.child = 0;
}

void Profiler::timed_exit(int l) {
  LaneTiming& lt = timing_[l];
  if (lt.depth <= 0) return;  // unmatched exit: ignore
  if (lt.depth > kMaxDepth) {
    --lt.depth;  // untimed overflow frame
    return;
  }
  const Frame& f = lt.stack[--lt.depth];
  const std::uint64_t t1 = raw_ticks();
  const std::uint64_t incl = t1 >= f.t0 ? t1 - f.t0 : 0;
  const std::uint64_t self = incl >= f.child ? incl - f.child : 0;
  self_ticks_[l][f.subsys] += self;
  if (lt.depth > 0) lt.stack[lt.depth - 1].child += incl;
}

void Profiler::window_begin() {
  count(ProfCounter::windows);
  window_t0_ = raw_ticks();
  for (std::uint64_t& d : shard_done_) d = 0;
}

void Profiler::shard_window_done(int shard) {
  if (shard < 0 || shard >= kMaxLanes) return;
  shard_done_[shard] = raw_ticks();
}

void Profiler::window_end(int nshards, bool stalled) {
  const std::uint64_t t1 = raw_ticks();
  const std::uint64_t span = t1 >= window_t0_ ? t1 - window_t0_ : 0;
  window_span_.add(span);
  if (stalled) {
    count(ProfCounter::lookahead_stalls);
    stall_window_.add(span);
  }
  std::uint64_t last = 0;
  for (int s = 0; s < nshards && s < kMaxLanes; ++s) {
    if (shard_done_[s] > last) last = shard_done_[s];
  }
  for (int s = 0; s < nshards && s < kMaxLanes; ++s) {
    if (shard_done_[s] == 0) continue;
    const std::uint64_t wait = last - shard_done_[s];
    barrier_wait_ticks_[s] += wait;
    barrier_wait_.add(wait);
  }
}

void Profiler::set_memory(const MemCensus& census) {
  for (const auto& [cat, e] : census.categories) {
    memory_.add(cat, e.live_bytes, e.peak_bytes);
  }
}

void Profiler::set_rss_delta(std::uint64_t bytes) { rss_delta_bytes_ = bytes; }

void Profiler::set_env(const std::string& key, const std::string& value) {
  env_[key] = value;
}

void Profiler::set_shards(int n) {
  if (n < 1) n = 1;
  if (n > kMaxLanes) n = kMaxLanes;
  shards_ = n;
}

double Profiler::ns_per_tick() const {
  const std::uint64_t ticks = raw_ticks() - start_ticks_;
  const std::uint64_t ns = steady_ns() - start_steady_ns_;
  if (ticks == 0) return 1.0;
  return static_cast<double>(ns) / static_cast<double>(ticks);
}

void Profiler::write_deterministic(std::ostream& os) const {
  os << "{\"shards\":" << shards_ << ",\"scopes\":{";
  for (int i = 0; i < kProfSubsysCount; ++i) {
    if (i) os << ',';
    const auto s = static_cast<ProfSubsys>(i);
    os << json_quoted(prof_subsys_name(s)) << ":{\"total\":"
       << scope_count(s) << ",\"by_shard\":[";
    for (int l = 0; l < shards_; ++l) {
      if (l) os << ',';
      os << scopes_[l][i];
    }
    os << "]}";
  }
  os << "},\"counters\":{";
  for (int i = 0; i < kProfCounterCount; ++i) {
    if (i) os << ',';
    const auto c = static_cast<ProfCounter>(i);
    os << json_quoted(prof_counter_name(c)) << ":{\"total\":"
       << counter_value(c) << ",\"by_shard\":[";
    for (int l = 0; l < shards_; ++l) {
      if (l) os << ',';
      os << counters_[l][i];
    }
    os << "]}";
  }
  os << "},\"memory\":{";
  bool first = true;
  for (const auto& [cat, e] : memory_.categories) {
    if (!first) os << ',';
    first = false;
    os << json_quoted(cat) << ":{\"live_bytes\":" << e.live_bytes
       << ",\"peak_bytes\":" << e.peak_bytes << '}';
  }
  os << "}}";
}

namespace {

void write_hist(std::ostream& os, const Profiler::TickHist& h,
                double sec_per_tick) {
  os << "{\"count\":" << h.count << ",\"sum_s\":"
     << json_double(static_cast<double>(h.sum_ticks) * sec_per_tick)
     << ",\"buckets\":[";
  bool first = true;
  for (int i = 0; i < Profiler::TickHist::kBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"le_s\":" << json_double(std::ldexp(1.0, i) * sec_per_tick)
       << ",\"n\":" << h.buckets[i] << '}';
  }
  os << "]}";
}

}  // namespace

void Profiler::write_timing(std::ostream& os) const {
  const double npt = ns_per_tick();
  const double spt = npt / 1e9;  // seconds per tick
  // Self times are sampled 1-in-kSamplePeriod (the ProfGate contract):
  // scale the estimate back to whole-run seconds here, once, at export.
  const double self_spt = spt * static_cast<double>(kSamplePeriod);
  const double wall_s =
      static_cast<double>(steady_ns() - start_steady_ns_) / 1e9;
  os << "{\"clock\":" << json_quoted(clock_name())
     << ",\"sample_period\":" << kSamplePeriod
     << ",\"wall_s\":" << json_double(wall_s)
     << ",\"rss_delta_bytes\":" << rss_delta_bytes_ << ",\"env\":{";
  bool first = true;
  for (const auto& [k, v] : env_) {
    if (!first) os << ',';
    first = false;
    os << json_quoted(k) << ':' << json_quoted(v);
  }
  os << "},\"self_time\":{";
  for (int i = 0; i < kProfSubsysCount; ++i) {
    if (i) os << ',';
    std::uint64_t total = 0;
    for (int l = 0; l < kMaxLanes; ++l) total += self_ticks_[l][i];
    os << json_quoted(prof_subsys_name(static_cast<ProfSubsys>(i)))
       << ":{\"total_s\":"
       << json_double(static_cast<double>(total) * self_spt)
       << ",\"by_shard_s\":[";
    for (int l = 0; l < shards_; ++l) {
      if (l) os << ',';
      os << json_double(static_cast<double>(self_ticks_[l][i]) * self_spt);
    }
    os << "]}";
  }
  os << "},\"barrier_wait_by_shard_s\":[";
  for (int l = 0; l < shards_; ++l) {
    if (l) os << ',';
    os << json_double(static_cast<double>(barrier_wait_ticks_[l]) * spt);
  }
  std::uint64_t truncated = 0;
  for (int l = 0; l < kMaxLanes; ++l) truncated += truncated_scopes_[l];
  os << "],\"truncated_scopes\":" << truncated
     << ",\"histograms\":{\"barrier_wait\":";
  write_hist(os, barrier_wait_, spt);
  os << ",\"window_span\":";
  write_hist(os, window_span_, spt);
  os << ",\"stall_window\":";
  write_hist(os, stall_window_, spt);
  os << "}}";
}

void Profiler::write_json(std::ostream& os) const {
  os << "{\"schema\":\"sharqfec.profile.v1\",\n\"deterministic\":";
  write_deterministic(os);
  os << ",\n\"timing\":";
  write_timing(os);
  os << "}\n";
}

bool Profiler::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "profiler: cannot write %s\n", path.c_str());
    return false;
  }
  write_json(out);
  return out.good();
}

}  // namespace sharq::stats
