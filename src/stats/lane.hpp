#pragma once

// Execution-lane id for the sharded parallel runtime (docs/ARCHITECTURE.md,
// "Zone-sharded parallel simulation"). Every stats sink (metrics registry,
// journal) keeps per-lane storage so shard worker threads never contend on
// a shared slot; lane 0 is the serial default and the barrier-time lane.
//
// The lane id is the one piece of thread-local state in the library: it is
// set by the shard runtime around each window and read by Counter::inc &
// co. Protocol code never touches it.

namespace sharq::stats {

/// Compile-time cap on shard lanes. The shard partitioner clamps its shard
/// count to this, so per-metric lane storage can be a fixed array.
inline constexpr int kMaxLanes = 8;

namespace detail {
inline int& lane_slot() {
  // sharq-lint: thread-unsafe-ok (the lane id IS the shard-runtime discipline)
  thread_local int lane = 0;
  return lane;
}
}  // namespace detail

/// Lane of the calling thread (0 unless a shard window is executing).
inline int lane() { return detail::lane_slot(); }

/// RAII lane setter used by the shard runtime around window execution.
class ScopedLane {
 public:
  explicit ScopedLane(int lane) : prev_(detail::lane_slot()) {
    detail::lane_slot() = lane;
  }
  ~ScopedLane() { detail::lane_slot() = prev_; }
  ScopedLane(const ScopedLane&) = delete;
  ScopedLane& operator=(const ScopedLane&) = delete;

 private:
  int prev_;
};

}  // namespace sharq::stats
