#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <unordered_set>
#include <vector>

#include "net/network.hpp"
#include "stats/time_series.hpp"

namespace sharq::stats {

/// Records per-node, per-traffic-class delivery series — the measurement
/// the paper's Figures 14-21 are built from ("data and repair traffic
/// visible at each session member over 0.1 second intervals").
///
/// Install with `network.set_sink(&recorder)`. Recording is cheap enough
/// to leave on for every run.
class TrafficRecorder final : public net::TrafficSink {
 public:
  /// `node_count` sizes the per-node tables; `bin` is the interval width.
  explicit TrafficRecorder(int node_count, sim::Time bin = 0.1);

  void on_deliver(sim::Time t, net::NodeId at, const net::Packet& p) override;
  void on_transmit(sim::Time t, net::LinkId link, const net::Packet& p) override;
  void on_hop(sim::Time t, net::LinkId link, const net::Packet& p) override;
  void on_drop(sim::Time t, net::LinkId link, const net::Packet& p,
               net::DropReason reason) override;

  /// Restrict per-node recording to these nodes (empty = all nodes).
  /// Aggregate counters still cover everything.
  void watch_only(std::unordered_set<net::NodeId> watched);

  /// Additionally record per-class transmission series on these links
  /// (e.g. the backbone links adjacent to the source, for Figure 20).
  void watch_links(std::unordered_set<net::LinkId> watched);

  /// Transmissions of `cls` on watched links, binned.
  const BinnedSeries& link_series(net::TrafficClass cls) const {
    return link_series_[class_index(cls)];
  }

  static constexpr int kClassCount = 5;

  /// Deliveries of one class at one node, binned.
  const BinnedSeries& node_series(net::NodeId node, net::TrafficClass cls) const;

  /// Deliveries of `cls` summed over every node, binned.
  const BinnedSeries& total_series(net::TrafficClass cls) const;

  /// Total packets of `cls` delivered to `node`.
  double node_total(net::NodeId node, net::TrafficClass cls) const;

  /// Per-0.1s mean across a node set of (data + repair) deliveries —
  /// the y-axis of Figures 14/16/17/18. Index = bin.
  std::vector<double> mean_over_nodes(const std::vector<net::NodeId>& nodes,
                                      std::initializer_list<net::TrafficClass>
                                          classes) const;

  std::uint64_t link_transmissions() const { return transmissions_; }
  std::uint64_t link_hops() const { return hops_; }
  std::uint64_t link_drops() const { return drops_; }

  /// Drops broken down by cause.
  std::uint64_t drops(net::DropReason reason) const {
    return drops_by_reason_[static_cast<int>(reason)];
  }

  /// True when the per-hop ledger balances: every transmission either
  /// completed its hop or was dropped on the wire (valid once the event
  /// queue has drained).
  bool hop_ledger_balanced() const {
    return transmissions_ == hops_ + drops(net::DropReason::kLoss) +
                                 drops(net::DropReason::kEpochKill);
  }

  /// Total bytes delivered, all nodes and classes.
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

  /// The aggregate per-class delivery series as one JSON object,
  /// {"bin_width":0.1,"classes":{"control":[..],"data":[..],...}} — the
  /// "series" section of the combined sharqfec.metrics.v1 export. Class
  /// keys are alphabetical and numbers use the shared deterministic
  /// formatter, so equal recordings serialize byte-identically.
  void write_series_json(std::ostream& os) const;

 private:
  static int class_index(net::TrafficClass cls) {
    return static_cast<int>(cls);
  }

  sim::Time bin_;
  std::vector<std::array<BinnedSeries, kClassCount>> per_node_;
  std::array<BinnedSeries, kClassCount> totals_;
  std::array<BinnedSeries, kClassCount> link_series_;
  std::unordered_set<net::NodeId> watch_;
  std::unordered_set<net::LinkId> watched_links_;
  bool watch_all_ = true;
  std::uint64_t transmissions_ = 0;
  std::uint64_t hops_ = 0;
  std::uint64_t drops_ = 0;
  std::array<std::uint64_t, 4> drops_by_reason_{};
  std::uint64_t bytes_delivered_ = 0;
};

}  // namespace sharq::stats
