#include "stats/trace_writer.hpp"

#include <ostream>

namespace sharq::stats {

TraceWriter::TraceWriter(std::ostream& os, const net::Network* net,
                         net::TrafficSink* next)
    : os_(os), net_(net), next_(next) {}

void TraceWriter::enable_class(net::TrafficClass cls, bool on) {
  const unsigned idx = static_cast<unsigned>(cls);
  if (idx >= 32u) return;  // see enabled(): shifting past the mask is UB
  const unsigned bit = 1u << idx;  // sharq-lint: unchecked-shift-ok (bound-checked above)
  if (on) {
    mask_ |= bit;
  } else {
    mask_ &= ~bit;
  }
}

void TraceWriter::line(char tag, sim::Time t, int a, int b,
                       const net::Packet& p, const char* suffix) {
  os_ << tag << ' ' << t << ' ' << a << ' ';
  if (b >= 0) {
    os_ << b;
  } else {
    os_ << '-';
  }
  os_ << ' ' << net::to_string(p.cls) << ' ' << p.size_bytes << ' ' << p.uid;
  if (suffix != nullptr) os_ << ' ' << suffix;
  os_ << '\n';
  ++lines_;
}

void TraceWriter::on_deliver(sim::Time t, net::NodeId at,
                             const net::Packet& p) {
  if (enabled(p.cls)) line('r', t, at, -1, p);
  if (next_) next_->on_deliver(t, at, p);
}

void TraceWriter::on_transmit(sim::Time t, net::LinkId link,
                              const net::Packet& p) {
  if (enabled(p.cls)) {
    if (net_ != nullptr) {
      line('h', t, net_->link_from(link), net_->link_to(link), p);
    } else {
      line('h', t, link, -1, p);
    }
  }
  if (next_) next_->on_transmit(t, link, p);
}

void TraceWriter::on_hop(sim::Time t, net::LinkId link, const net::Packet& p) {
  // Hop completions are not traced (the 'h' line is emitted at hand-off,
  // matching nam), but they are forwarded so chained sinks can account.
  if (next_) next_->on_hop(t, link, p);
}

void TraceWriter::on_drop(sim::Time t, net::LinkId link, const net::Packet& p,
                          net::DropReason reason) {
  if (enabled(p.cls)) {
    // The reason is part of the record: a queue-full drop and a random
    // loss tell very different stories about the same link.
    if (net_ != nullptr) {
      line('d', t, net_->link_from(link), net_->link_to(link), p,
           net::to_string(reason));
    } else {
      line('d', t, link, -1, p, net::to_string(reason));
    }
  }
  if (next_) next_->on_drop(t, link, p, reason);
}

}  // namespace sharq::stats
