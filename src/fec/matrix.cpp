#include "fec/matrix.hpp"

#include <cassert>

#include "fec/gf256_simd.hpp"

namespace sharq::fec {

Matrix Matrix::identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::vandermonde(int rows, int cols) {
  assert(rows <= 255 && "GF(256) Vandermonde limited to 255 rows");
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.at(r, c) = GF256::pow(GF256::alpha_pow(r), static_cast<unsigned>(c));
    }
  }
  return m;
}

Matrix Matrix::multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  std::vector<const Elem*> rhs(cols_);
  for (int k = 0; k < cols_; ++k) rhs[k] = other.row(k);
  for (int r = 0; r < rows_; ++r) {
    // One pass per output row: row r of this is the coefficient vector
    // applied across all rows of `other`.
    simd::mul_add_rows(out.row(r), rhs.data(), row(r), cols_, other.cols_);
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<int>& row_ids) const {
  Matrix out(static_cast<int>(row_ids.size()), cols_);
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    assert(row_ids[i] >= 0 && row_ids[i] < rows_);
    for (int c = 0; c < cols_; ++c) {
      out.at(static_cast<int>(i), c) = at(row_ids[i], c);
    }
  }
  return out;
}

bool Matrix::invert() {
  assert(rows_ == cols_);
  const int n = rows_;
  Matrix aug(n, 2 * n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) aug.at(r, c) = at(r, c);
    aug.at(r, n + r) = 1;
  }
  for (int col = 0; col < n; ++col) {
    int pivot = -1;
    for (int r = col; r < n; ++r) {
      if (aug.at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return false;
    if (pivot != col) {
      for (int c = 0; c < 2 * n; ++c) std::swap(aug.at(pivot, c), aug.at(col, c));
    }
    const Elem inv = GF256::inverse(aug.at(col, col));
    GF256::scale(aug.row(col), inv, 2 * n);
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const Elem factor = aug.at(r, col);
      if (factor != 0) GF256::mul_add(aug.row(r), aug.row(col), factor, 2 * n);
    }
  }
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) at(r, c) = aug.at(r, n + c);
  }
  return true;
}

bool Matrix::reduce_to_identity_on(const std::vector<int>& lead) {
  assert(static_cast<int>(lead.size()) == rows_);
  for (int i = 0; i < rows_; ++i) {
    const int col = lead[i];
    // Find a row at or below i with a nonzero entry in `col`.
    int pivot = -1;
    for (int r = i; r < rows_; ++r) {
      if (at(r, col) != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return false;
    if (pivot != i) {
      for (int c = 0; c < cols_; ++c) std::swap(at(pivot, c), at(i, c));
    }
    GF256::scale(row(i), GF256::inverse(at(i, col)), cols_);
    for (int r = 0; r < rows_; ++r) {
      if (r == i) continue;
      const Elem factor = at(r, col);
      if (factor != 0) GF256::mul_add(row(r), row(i), factor, cols_);
    }
  }
  return true;
}

}  // namespace sharq::fec
