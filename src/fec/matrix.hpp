#pragma once

#include <cstdint>
#include <vector>

#include "fec/gf256.hpp"

namespace sharq::fec {

/// Dense matrix over GF(2^8).
///
/// Sized for erasure coding (dimensions <= 255), so a simple row-major
/// vector with O(n^3) Gauss-Jordan inversion is the right tool.
class Matrix {
 public:
  using Elem = GF256::Elem;

  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols), data_(rows * cols) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  Elem& at(int r, int c) { return data_[r * cols_ + c]; }
  Elem at(int r, int c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row r.
  Elem* row(int r) { return data_.data() + r * cols_; }
  const Elem* row(int r) const { return data_.data() + r * cols_; }

  /// The n x n identity.
  static Matrix identity(int n);

  /// Vandermonde matrix V[r][c] = alpha^(r*c), rows x cols.
  /// Any `cols` rows of it are linearly independent when rows <= 255.
  static Matrix vandermonde(int rows, int cols);

  /// this * other. Precondition: cols() == other.rows().
  Matrix multiply(const Matrix& other) const;

  /// Extract a sub-matrix made of the given rows (all columns).
  Matrix select_rows(const std::vector<int>& row_ids) const;

  /// Invert in place via Gauss-Jordan. Returns false if singular.
  bool invert();

  /// Row-reduce so the columns listed in `lead` form an identity; helper
  /// for building systematic generator matrices.
  /// Returns false if the selected columns are not independent.
  bool reduce_to_identity_on(const std::vector<int>& lead);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<Elem> data_;
};

}  // namespace sharq::fec
