#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fec/reed_solomon.hpp"

namespace sharq::fec {

/// Sender-side view of one FEC packet group.
///
/// Wraps a ReedSolomon codec around the k application packets of a group
/// and hands out parity shards on demand. SHARQFEC repairers generate
/// parity lazily ("repair id" = shard index), so this object caches the
/// codec and data and produces shard `index` in O(k * size).
class GroupEncoder {
 public:
  /// `data` must contain exactly codec->k() equal-sized packets.
  GroupEncoder(std::shared_ptr<const ReedSolomon> codec,
               std::vector<std::vector<std::uint8_t>> data);

  int k() const { return codec_->k(); }
  int max_shards() const { return codec_->max_shards(); }

  /// Shard `index`: data packet for index < k, parity otherwise.
  std::vector<std::uint8_t> shard(int index) const;

  /// Like shard(), but returns a ref-counted buffer ready to attach to a
  /// message, generating parity directly into the final allocation (no
  /// intermediate copy on the repair path).
  std::shared_ptr<const std::vector<std::uint8_t>> shard_shared(
      int index) const;

  /// Produce shard `index` into a caller-supplied buffer (resized to the
  /// shard length). Lets callers recycle buffers (e.g. sim::BufferPool)
  /// instead of allocating per shard.
  void shard_into(int index, std::vector<std::uint8_t>& out) const;

  /// Heap bytes retained by the cached data view (memory-census probe;
  /// std-only so fec stays free of stats dependencies).
  std::size_t memory_bytes() const {
    std::size_t total = data_.capacity() * sizeof(data_[0]) +
                        data_ptrs_.capacity() * sizeof(data_ptrs_[0]);
    for (const auto& d : data_) total += d.capacity();
    return total;
  }

 private:
  std::shared_ptr<const ReedSolomon> codec_;
  std::vector<std::vector<std::uint8_t>> data_;
  std::vector<const std::uint8_t*> data_ptrs_;  // codec-ready view of data_
};

/// Receiver-side view of one FEC packet group.
///
/// Accumulates shards (data or parity, in any order, duplicates ignored)
/// and reports completion once any k distinct shards have arrived. Decoding
/// is deferred until requested.
class GroupDecoder {
 public:
  explicit GroupDecoder(std::shared_ptr<const ReedSolomon> codec);

  int k() const { return codec_->k(); }

  /// Add one received shard. Returns true if it was new (not a duplicate).
  bool add(int index, std::vector<std::uint8_t> bytes);

  /// True once any k distinct shards are held.
  bool complete() const { return distinct_ >= codec_->k(); }

  /// Number of distinct shards held.
  int distinct() const { return distinct_; }

  /// Number of distinct *data* shards held.
  int distinct_data() const { return distinct_data_; }

  /// Shards still required to complete the group (>= 0).
  int deficit() const { return std::max(0, codec_->k() - distinct_); }

  /// True if shard `index` has been received.
  bool has(int index) const;

  /// Recover the k original packets; nullopt unless complete().
  std::optional<std::vector<std::vector<std::uint8_t>>> reconstruct() const;

  /// Heap bytes retained by the accumulated shards (memory-census probe).
  std::size_t memory_bytes() const {
    std::size_t total = shards_.capacity() * sizeof(shards_[0]) +
                        have_.capacity() / 8;
    for (const auto& s : shards_) total += s.bytes.capacity();
    return total;
  }

 private:
  std::shared_ptr<const ReedSolomon> codec_;
  std::vector<ReedSolomon::Shard> shards_;
  std::vector<bool> have_;
  int distinct_ = 0;
  int distinct_data_ = 0;
};

}  // namespace sharq::fec
