#pragma once

#include <array>
#include <cstdint>

namespace sharq::fec {

/// Arithmetic over GF(2^8) with the AES/Rizzo polynomial x^8+x^4+x^3+x^2+1
/// (0x11d), the field used by software FEC codecs for packet erasure
/// correction (Rizzo, CCR '97).
///
/// All operations are table-driven; tables are built once at static
/// initialization. Addition and subtraction are XOR.
class GF256 {
 public:
  using Elem = std::uint8_t;

  /// Field size and the generator polynomial (for documentation/tests).
  static constexpr int kFieldSize = 256;
  static constexpr int kPolynomial = 0x11d;

  /// a + b (== a - b) in GF(2^8).
  static Elem add(Elem a, Elem b) { return a ^ b; }

  /// a * b in GF(2^8).
  static Elem mul(Elem a, Elem b) {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  /// a / b in GF(2^8). Precondition: b != 0.
  static Elem div(Elem a, Elem b);

  /// Multiplicative inverse. Precondition: a != 0.
  static Elem inverse(Elem a);

  /// a raised to integer power n (n >= 0).
  static Elem pow(Elem a, unsigned n);

  /// The primitive element alpha = 2 raised to power n, n in [0, 254].
  static Elem alpha_pow(unsigned n) { return exp_[n % 255]; }

  /// Multiply-accumulate over a buffer: dst[i] ^= c * src[i].
  /// This is the hot loop of erasure encode/decode; it dispatches to the
  /// best SIMD kernel the host supports (see fec/gf256_simd.hpp). Set
  /// SHARQFEC_FORCE_SCALAR=1 to pin the scalar path for reproducible runs.
  static void mul_add(Elem* dst, const Elem* src, Elem c, std::size_t n);

  /// Scale a buffer in place: dst[i] = c * dst[i]. SIMD-dispatched like
  /// mul_add.
  static void scale(Elem* dst, Elem c, std::size_t n);

  /// Portable table-driven kernels: the reference implementation every
  /// SIMD kernel is cross-checked against, and the fallback for hosts
  /// (or vector tails) without shuffle units.
  static void mul_add_scalar(Elem* dst, const Elem* src, Elem c,
                             std::size_t n);
  static void scale_scalar(Elem* dst, Elem c, std::size_t n);

  /// Discrete log / antilog access for tests.
  static Elem exp_table(unsigned i) { return exp_[i % 510]; }
  static int log_table(Elem a) { return log_[a]; }

 private:
  struct Tables {
    Tables();
    std::array<Elem, 510> exp{};  // doubled to skip the mod-255 in mul
    std::array<int, 256> log{};
    // mul_row[c][x] = c*x, one 256-byte row per multiplier, for fast MAC.
    std::array<std::array<Elem, 256>, 256> mul_row{};
  };
  static const Tables tables_;
  static const std::array<Elem, 510>& exp_;
  static const std::array<int, 256>& log_;
};

}  // namespace sharq::fec
