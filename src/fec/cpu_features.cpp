#include "fec/cpu_features.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace sharq::fec::cpu {

namespace {

Features probe() {
  Features f;
#if defined(__x86_64__) || defined(__i386__)
  f.ssse3 = __builtin_cpu_supports("ssse3");
  f.avx2 = __builtin_cpu_supports("avx2");
#elif defined(__aarch64__)
  // Advanced SIMD is architecturally mandatory on AArch64.
  f.neon = true;
#endif
  return f;
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

Kernel best_of(const Features& f) {
  if (f.neon) return Kernel::kNeon;
  if (f.avx2) return Kernel::kAvx2;
  if (f.ssse3) return Kernel::kSsse3;
  return Kernel::kScalar;
}

Kernel resolve_active() {
  const Features& f = features();
  if (env_flag("SHARQFEC_FORCE_SCALAR")) return Kernel::kScalar;
  if (const char* want = std::getenv("SHARQFEC_FORCE_KERNEL")) {
    const auto supported = supported_kernels();
    for (Kernel k : supported) {
      if (std::strcmp(want, kernel_name(k)) == 0) return k;
    }
    // Unknown or unsupported name: ignore the override rather than crash
    // mid-transfer on a mistyped environment variable.
  }
  return best_of(f);
}

}  // namespace

const Features& features() {
  static const Features f = probe();
  return f;
}

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kScalar: return "scalar";
    case Kernel::kSsse3: return "ssse3";
    case Kernel::kAvx2: return "avx2";
    case Kernel::kNeon: return "neon";
  }
  return "unknown";
}

std::vector<Kernel> supported_kernels() {
  const Features& f = features();
  std::vector<Kernel> out{Kernel::kScalar};
  if (f.ssse3) out.push_back(Kernel::kSsse3);
  if (f.avx2) out.push_back(Kernel::kAvx2);
  if (f.neon) out.push_back(Kernel::kNeon);
  return out;
}

Kernel active_kernel() {
  static const Kernel k = resolve_active();
  return k;
}

}  // namespace sharq::fec::cpu
