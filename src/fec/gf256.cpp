#include "fec/gf256.hpp"

#include <cassert>

#include "fec/gf256_simd.hpp"

namespace sharq::fec {

GF256::Tables::Tables() {
  // Generate the field from the primitive element alpha = 2.
  int x = 1;
  for (int i = 0; i < 255; ++i) {
    exp[i] = static_cast<Elem>(x);
    log[x] = i;
    x <<= 1;
    if (x & 0x100) x ^= kPolynomial;
  }
  for (int i = 255; i < 510; ++i) exp[i] = exp[i - 255];
  log[0] = 0;  // never consulted for 0 operands

  for (int c = 0; c < 256; ++c) {
    for (int v = 0; v < 256; ++v) {
      if (c == 0 || v == 0) {
        mul_row[c][v] = 0;
      } else {
        mul_row[c][v] = exp[log[c] + log[v]];
      }
    }
  }
}

const GF256::Tables GF256::tables_;
const std::array<GF256::Elem, 510>& GF256::exp_ = GF256::tables_.exp;
const std::array<int, 256>& GF256::log_ = GF256::tables_.log;

GF256::Elem GF256::div(Elem a, Elem b) {
  assert(b != 0 && "division by zero in GF(256)");
  if (a == 0) return 0;
  return exp_[log_[a] + 255 - log_[b]];
}

GF256::Elem GF256::inverse(Elem a) {
  assert(a != 0 && "inverse of zero in GF(256)");
  return exp_[255 - log_[a]];
}

GF256::Elem GF256::pow(Elem a, unsigned n) {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const unsigned e = (static_cast<unsigned>(log_[a]) * n) % 255;
  return exp_[e];
}

void GF256::mul_add_scalar(Elem* dst, const Elem* src, Elem c, std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const auto& row = tables_.mul_row[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void GF256::scale_scalar(Elem* dst, Elem c, std::size_t n) {
  if (c == 1) return;
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  const auto& row = tables_.mul_row[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[dst[i]];
}

void GF256::mul_add(Elem* dst, const Elem* src, Elem c, std::size_t n) {
  simd::mul_add(dst, src, c, n);
}

void GF256::scale(Elem* dst, Elem c, std::size_t n) {
  simd::scale(dst, c, n);
}

}  // namespace sharq::fec
