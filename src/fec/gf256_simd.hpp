#pragma once

#include <cstddef>
#include <cstdint>

#include "fec/cpu_features.hpp"

namespace sharq::fec::simd {

using cpu::Kernel;

/// Vectorized GF(2^8) buffer kernels (the erasure-coding hot path).
///
/// Technique: split-nibble shuffle multiplication (Rizzo-era table codecs
/// brought to SIMD by Intel ISA-L and klauspost/reedsolomon). For a fixed
/// multiplier c, precompute two 16-entry tables
///
///   lo[x] = c * x          for x in [0, 16)
///   hi[x] = c * (x << 4)   for x in [0, 16)
///
/// Then c * b == lo[b & 0xf] ^ hi[b >> 4] for any byte b, and a 16-byte
/// (PSHUFB / TBL) or 32-byte (VPSHUFB) shuffle computes 16/32 products per
/// instruction. All kernels accept unaligned buffers and any length; tails
/// shorter than a vector fall back to the scalar table loop.
///
/// Functions without a Kernel argument dispatch once (first call) to
/// cpu::active_kernel(); the explicit-kernel overloads exist for the
/// cross-check tests and the micro benchmark and must only be passed a
/// kernel from cpu::supported_kernels().

/// dst[i] ^= c * src[i], i in [0, n). c == 0 is a no-op.
void mul_add(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
             std::size_t n);
void mul_add(Kernel k, std::uint8_t* dst, const std::uint8_t* src,
             std::uint8_t c, std::size_t n);

/// dst[i] = c * dst[i], i in [0, n).
void scale(std::uint8_t* dst, std::uint8_t c, std::size_t n);
void scale(Kernel k, std::uint8_t* dst, std::uint8_t c, std::size_t n);

/// Apply a whole generator-matrix row in one pass:
///
///   dst[i] ^= coeffs[0]*srcs[0][i] ^ ... ^ coeffs[rows-1]*srcs[rows-1][i]
///
/// Equivalent to `rows` mul_add calls but walks dst once per cache block
/// instead of once per row, keeping the accumulator in registers: this is
/// what ReedSolomon::encode_parity / decode use per output shard.
void mul_add_rows(std::uint8_t* dst, const std::uint8_t* const* srcs,
                  const std::uint8_t* coeffs, int rows, std::size_t n);
void mul_add_rows(Kernel k, std::uint8_t* dst, const std::uint8_t* const* srcs,
                  const std::uint8_t* coeffs, int rows, std::size_t n);

}  // namespace sharq::fec::simd
