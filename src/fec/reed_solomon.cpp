#include "fec/reed_solomon.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

#include "fec/gf256_simd.hpp"

namespace sharq::fec {

ReedSolomon::ReedSolomon(int k, int max_parity)
    : k_(k), max_parity_(max_parity) {
  if (k < 1 || max_parity < 0 || k + max_parity > 255) {
    throw std::invalid_argument("ReedSolomon: need 1 <= k, k+parity <= 255");
  }
  // Start from an (n x k) Vandermonde matrix; any k rows are independent.
  // Row-reduce on the first k rows' columns so data shards are systematic.
  const int n = k + max_parity;
  Matrix v = Matrix::vandermonde(n, k);
  // Gauss-Jordan using the top k rows as pivots, applied to all n rows:
  // equivalent to multiplying on the right by inverse(top-k block).
  Matrix top(k, k);
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < k; ++c) top.at(r, c) = v.at(r, c);
  }
  const bool ok = top.invert();
  assert(ok && "top Vandermonde block must be invertible");
  (void)ok;
  gen_ = v.multiply(top);
}

std::vector<std::uint8_t> ReedSolomon::encode_parity(
    int index, const std::vector<std::vector<std::uint8_t>>& data) const {
  if (index < k_ || index >= max_shards()) {
    throw std::out_of_range("encode_parity: index must be a parity index");
  }
  if (static_cast<int>(data.size()) != k_) {
    throw std::invalid_argument("encode_parity: need exactly k data shards");
  }
  const std::size_t size = data.front().size();
  std::vector<const std::uint8_t*> ptrs(k_);
  for (int c = 0; c < k_; ++c) {
    if (data[c].size() != size) {
      throw std::invalid_argument("encode_parity: shard sizes differ");
    }
    ptrs[c] = data[c].data();
  }
  std::vector<std::uint8_t> out(size, 0);
  encode_parity_into(index, ptrs.data(), size, out.data());
  return out;
}

void ReedSolomon::encode_parity_into(int index, const std::uint8_t* const* data,
                                     std::size_t size,
                                     std::uint8_t* out) const {
  if (index < k_ || index >= max_shards()) {
    throw std::out_of_range("encode_parity_into: index must be a parity index");
  }
  std::fill(out, out + size, 0);
  simd::mul_add_rows(out, data, gen_.row(index), k_, size);
}

std::optional<std::vector<std::vector<std::uint8_t>>> ReedSolomon::decode(
    const std::vector<Shard>& shards) const {
  // Pick the first k distinct, in-range shards (prefer data shards: they
  // come for free in a systematic code).
  std::unordered_set<int> seen;
  std::vector<const Shard*> picked;
  picked.reserve(k_);
  std::size_t size = 0;
  auto consider = [&](const Shard& s, bool data_only) {
    if (static_cast<int>(picked.size()) >= k_) return;
    if (s.index < 0 || s.index >= max_shards()) return;
    if (data_only != (s.index < k_)) return;
    if (!seen.insert(s.index).second) return;
    if (picked.empty()) {
      size = s.bytes.size();
    } else if (s.bytes.size() != size) {
      throw std::invalid_argument("decode: shard sizes differ");
    }
    picked.push_back(&s);
  };
  for (const Shard& s : shards) consider(s, /*data_only=*/true);
  for (const Shard& s : shards) consider(s, /*data_only=*/false);
  if (static_cast<int>(picked.size()) < k_) return std::nullopt;

  // Fast path: all k data shards present.
  bool all_data = true;
  for (const Shard* s : picked) all_data = all_data && s->index < k_;
  std::vector<std::vector<std::uint8_t>> out(k_);
  if (all_data) {
    for (const Shard* s : picked) out[s->index] = s->bytes;
    return out;
  }

  // General path: invert the k x k sub-generator of the picked rows.
  std::vector<int> rows;
  rows.reserve(k_);
  for (const Shard* s : picked) rows.push_back(s->index);
  Matrix sub = gen_.select_rows(rows);
  if (!sub.invert()) return std::nullopt;  // cannot happen for Vandermonde

  std::vector<const std::uint8_t*> srcs(k_);
  for (int j = 0; j < k_; ++j) srcs[j] = picked[j]->bytes.data();
  for (int d = 0; d < k_; ++d) {
    out[d].assign(size, 0);
    simd::mul_add_rows(out[d].data(), srcs.data(), sub.row(d), k_, size);
  }
  return out;
}

}  // namespace sharq::fec
