#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fec/matrix.hpp"

namespace sharq::fec {

/// Systematic Reed-Solomon erasure codec over GF(2^8).
///
/// Encodes k data shards into up to (255 - k) parity shards; any k distinct
/// shards (data or parity) reconstruct the original data. This is the
/// "software FEC" construction of Rizzo (CCR '97) that SHARQFEC assumes:
/// a Vandermonde generator matrix row-reduced so the first k rows are the
/// identity, making the code systematic (data shards are sent verbatim).
///
/// Shard indices: 0..k-1 are data shards, k..n-1 are parity shards. The
/// codec is stateless after construction and safe to share const.
class ReedSolomon {
 public:
  /// Build a codec for k data shards and up to max_parity parity shards.
  /// Preconditions: 1 <= k, 0 <= max_parity, k + max_parity <= 255.
  ReedSolomon(int k, int max_parity);

  int k() const { return k_; }
  int max_parity() const { return max_parity_; }
  int max_shards() const { return k_ + max_parity_; }

  /// Produce parity shard `index` (k <= index < k+max_parity) from the k
  /// data shards. All shards must share the same size.
  std::vector<std::uint8_t> encode_parity(
      int index, const std::vector<std::vector<std::uint8_t>>& data) const;

  /// Batched form: write parity shard `index` into `out` (size bytes,
  /// caller-zeroed allocation not required). `data` holds k pointers to
  /// equal-sized shard buffers. Applies the whole generator row in one
  /// SIMD pass (fec/gf256_simd.hpp) instead of k separate scans — this is
  /// the path every repair and ZCR injection funnels through.
  void encode_parity_into(int index, const std::uint8_t* const* data,
                          std::size_t size, std::uint8_t* out) const;

  /// One shard as received: its global index plus payload bytes.
  struct Shard {
    int index = 0;
    std::vector<std::uint8_t> bytes;
  };

  /// Reconstruct the k data shards from any >= k distinct shards.
  /// Returns std::nullopt when fewer than k distinct valid shards are
  /// supplied. Duplicate indices are ignored.
  std::optional<std::vector<std::vector<std::uint8_t>>> decode(
      const std::vector<Shard>& shards) const;

  /// The generator row used for shard `index` (identity rows for data
  /// shards). Exposed for tests.
  const Matrix& generator() const { return gen_; }

 private:
  int k_;
  int max_parity_;
  Matrix gen_;  // (k+max_parity) x k, top k rows = identity
};

}  // namespace sharq::fec
