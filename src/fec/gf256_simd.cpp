#include "fec/gf256_simd.hpp"

#include <cassert>

#include "fec/gf256.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SHARQ_FEC_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define SHARQ_FEC_NEON 1
#endif

namespace sharq::fec::simd {

namespace {

// --- split-nibble tables --------------------------------------------------------
//
// Built with carry-less peasant multiplication so this translation unit has
// no static-initialization-order dependency on GF256's log/exp tables.

std::uint8_t gf_mul_slow(std::uint8_t a, std::uint8_t b) {
  unsigned r = 0;
  unsigned aa = a;
  for (unsigned bb = b; bb != 0; bb >>= 1) {
    if (bb & 1) r ^= aa;
    aa <<= 1;
    if (aa & 0x100) aa ^= GF256::kPolynomial;
  }
  return static_cast<std::uint8_t>(r);
}

struct NibbleTables {
  // Row c is the 16-entry shuffle table for multiplier c; rows are 16-byte
  // aligned so the vector loads below can be aligned loads.
  alignas(64) std::uint8_t lo[256][16];
  alignas(64) std::uint8_t hi[256][16];

  NibbleTables() {
    for (int c = 0; c < 256; ++c) {
      for (int x = 0; x < 16; ++x) {
        lo[c][x] = gf_mul_slow(static_cast<std::uint8_t>(c),
                               static_cast<std::uint8_t>(x));
        hi[c][x] = gf_mul_slow(static_cast<std::uint8_t>(c),
                               static_cast<std::uint8_t>(x << 4));
      }
    }
  }
};

const NibbleTables& nib() {
  static const NibbleTables t;
  return t;
}

// --- scalar reference -----------------------------------------------------------

void mul_add_scalar(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                    std::size_t n) {
  GF256::mul_add_scalar(dst, src, c, n);
}

void scale_scalar(std::uint8_t* dst, std::uint8_t c, std::size_t n) {
  GF256::scale_scalar(dst, c, n);
}

void mul_add_rows_scalar(std::uint8_t* dst, const std::uint8_t* const* srcs,
                         const std::uint8_t* coeffs, int rows, std::size_t n) {
  for (int r = 0; r < rows; ++r) {
    GF256::mul_add_scalar(dst, srcs[r], coeffs[r], n);
  }
}

// --- x86: SSSE3 (PSHUFB, 16 bytes/op) -------------------------------------------

#ifdef SHARQ_FEC_X86

__attribute__((target("ssse3"))) void mul_add_ssse3(std::uint8_t* dst,
                                                    const std::uint8_t* src,
                                                    std::uint8_t c,
                                                    std::size_t n) {
  const NibbleTables& t = nib();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i ph =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    d = _mm_xor_si128(d, _mm_xor_si128(pl, ph));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  if (i < n) mul_add_scalar(dst + i, src + i, c, n - i);
}

__attribute__((target("ssse3"))) void scale_ssse3(std::uint8_t* dst,
                                                  std::uint8_t c,
                                                  std::size_t n) {
  const NibbleTables& t = nib();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(d, mask));
    const __m128i ph =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(d, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(pl, ph));
  }
  if (i < n) scale_scalar(dst + i, c, n - i);
}

__attribute__((target("ssse3"))) void mul_add_rows_ssse3(
    std::uint8_t* dst, const std::uint8_t* const* srcs,
    const std::uint8_t* coeffs, int rows, std::size_t n) {
  const NibbleTables& t = nib();
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  // 32-byte blocks: the two accumulators stay in registers while every
  // source row streams through, so dst traffic is once per block, not once
  // per row.
  for (; i + 32 <= n; i += 32) {
    __m128i acc0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    __m128i acc1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + 16));
    for (int r = 0; r < rows; ++r) {
      const std::uint8_t c = coeffs[r];
      if (c == 0) continue;
      const __m128i lo =
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
      const __m128i hi =
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
      const std::uint8_t* src = srcs[r] + i;
      const __m128i s0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src));
      const __m128i s1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 16));
      acc0 = _mm_xor_si128(
          acc0, _mm_xor_si128(
                    _mm_shuffle_epi8(lo, _mm_and_si128(s0, mask)),
                    _mm_shuffle_epi8(
                        hi, _mm_and_si128(_mm_srli_epi64(s0, 4), mask))));
      acc1 = _mm_xor_si128(
          acc1, _mm_xor_si128(
                    _mm_shuffle_epi8(lo, _mm_and_si128(s1, mask)),
                    _mm_shuffle_epi8(
                        hi, _mm_and_si128(_mm_srli_epi64(s1, 4), mask))));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), acc1);
  }
  if (i < n) {
    for (int r = 0; r < rows; ++r) {
      mul_add_ssse3(dst + i, srcs[r] + i, coeffs[r], n - i);
    }
  }
}

// --- x86: AVX2 (VPSHUFB, 32 bytes/op) -------------------------------------------

__attribute__((target("avx2"))) void mul_add_avx2(std::uint8_t* dst,
                                                  const std::uint8_t* src,
                                                  std::uint8_t c,
                                                  std::size_t n) {
  const NibbleTables& t = nib();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
    const __m256i ph = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    d = _mm256_xor_si256(d, _mm256_xor_si256(pl, ph));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  if (i < n) mul_add_ssse3(dst + i, src + i, c, n - i);
}

__attribute__((target("avx2"))) void scale_avx2(std::uint8_t* dst,
                                                std::uint8_t c,
                                                std::size_t n) {
  const NibbleTables& t = nib();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(d, mask));
    const __m256i ph = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(d, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(pl, ph));
  }
  if (i < n) scale_ssse3(dst + i, c, n - i);
}

__attribute__((target("avx2"))) void mul_add_rows_avx2(
    std::uint8_t* dst, const std::uint8_t* const* srcs,
    const std::uint8_t* coeffs, int rows, std::size_t n) {
  const NibbleTables& t = nib();
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m256i acc0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i acc1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    for (int r = 0; r < rows; ++r) {
      const std::uint8_t c = coeffs[r];
      if (c == 0) continue;
      const __m256i lo = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c])));
      const __m256i hi = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c])));
      const std::uint8_t* src = srcs[r] + i;
      const __m256i s0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
      const __m256i s1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 32));
      acc0 = _mm256_xor_si256(
          acc0,
          _mm256_xor_si256(
              _mm256_shuffle_epi8(lo, _mm256_and_si256(s0, mask)),
              _mm256_shuffle_epi8(
                  hi, _mm256_and_si256(_mm256_srli_epi64(s0, 4), mask))));
      acc1 = _mm256_xor_si256(
          acc1,
          _mm256_xor_si256(
              _mm256_shuffle_epi8(lo, _mm256_and_si256(s1, mask)),
              _mm256_shuffle_epi8(
                  hi, _mm256_and_si256(_mm256_srli_epi64(s1, 4), mask))));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), acc1);
  }
  if (i < n) {
    for (int r = 0; r < rows; ++r) {
      mul_add_avx2(dst + i, srcs[r] + i, coeffs[r], n - i);
    }
  }
}

#endif  // SHARQ_FEC_X86

// --- AArch64: NEON (TBL, 16 bytes/op) -------------------------------------------

#ifdef SHARQ_FEC_NEON

void mul_add_neon(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                  std::size_t n) {
  const NibbleTables& t = nib();
  const uint8x16_t lo = vld1q_u8(t.lo[c]);
  const uint8x16_t hi = vld1q_u8(t.hi[c]);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(src + i);
    uint8x16_t d = vld1q_u8(dst + i);
    const uint8x16_t pl = vqtbl1q_u8(lo, vandq_u8(s, mask));
    const uint8x16_t ph = vqtbl1q_u8(hi, vshrq_n_u8(s, 4));
    d = veorq_u8(d, veorq_u8(pl, ph));
    vst1q_u8(dst + i, d);
  }
  if (i < n) mul_add_scalar(dst + i, src + i, c, n - i);
}

void scale_neon(std::uint8_t* dst, std::uint8_t c, std::size_t n) {
  const NibbleTables& t = nib();
  const uint8x16_t lo = vld1q_u8(t.lo[c]);
  const uint8x16_t hi = vld1q_u8(t.hi[c]);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t d = vld1q_u8(dst + i);
    const uint8x16_t pl = vqtbl1q_u8(lo, vandq_u8(d, mask));
    const uint8x16_t ph = vqtbl1q_u8(hi, vshrq_n_u8(d, 4));
    vst1q_u8(dst + i, veorq_u8(pl, ph));
  }
  if (i < n) scale_scalar(dst + i, c, n - i);
}

void mul_add_rows_neon(std::uint8_t* dst, const std::uint8_t* const* srcs,
                       const std::uint8_t* coeffs, int rows, std::size_t n) {
  const NibbleTables& t = nib();
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    uint8x16_t acc0 = vld1q_u8(dst + i);
    uint8x16_t acc1 = vld1q_u8(dst + i + 16);
    for (int r = 0; r < rows; ++r) {
      const std::uint8_t c = coeffs[r];
      if (c == 0) continue;
      const uint8x16_t lo = vld1q_u8(t.lo[c]);
      const uint8x16_t hi = vld1q_u8(t.hi[c]);
      const uint8x16_t s0 = vld1q_u8(srcs[r] + i);
      const uint8x16_t s1 = vld1q_u8(srcs[r] + i + 16);
      acc0 = veorq_u8(acc0, veorq_u8(vqtbl1q_u8(lo, vandq_u8(s0, mask)),
                                     vqtbl1q_u8(hi, vshrq_n_u8(s0, 4))));
      acc1 = veorq_u8(acc1, veorq_u8(vqtbl1q_u8(lo, vandq_u8(s1, mask)),
                                     vqtbl1q_u8(hi, vshrq_n_u8(s1, 4))));
    }
    vst1q_u8(dst + i, acc0);
    vst1q_u8(dst + i + 16, acc1);
  }
  if (i < n) {
    for (int r = 0; r < rows; ++r) {
      mul_add_neon(dst + i, srcs[r] + i, coeffs[r], n - i);
    }
  }
}

#endif  // SHARQ_FEC_NEON

// --- dispatch -------------------------------------------------------------------

using MulAddFn = void (*)(std::uint8_t*, const std::uint8_t*, std::uint8_t,
                          std::size_t);
using ScaleFn = void (*)(std::uint8_t*, std::uint8_t, std::size_t);
using MulAddRowsFn = void (*)(std::uint8_t*, const std::uint8_t* const*,
                              const std::uint8_t*, int, std::size_t);

MulAddFn mul_add_fn(Kernel k) {
  switch (k) {
#ifdef SHARQ_FEC_X86
    case Kernel::kSsse3: return mul_add_ssse3;
    case Kernel::kAvx2: return mul_add_avx2;
#endif
#ifdef SHARQ_FEC_NEON
    case Kernel::kNeon: return mul_add_neon;
#endif
    default: return mul_add_scalar;
  }
}

ScaleFn scale_fn(Kernel k) {
  switch (k) {
#ifdef SHARQ_FEC_X86
    case Kernel::kSsse3: return scale_ssse3;
    case Kernel::kAvx2: return scale_avx2;
#endif
#ifdef SHARQ_FEC_NEON
    case Kernel::kNeon: return scale_neon;
#endif
    default: return scale_scalar;
  }
}

MulAddRowsFn mul_add_rows_fn(Kernel k) {
  switch (k) {
#ifdef SHARQ_FEC_X86
    case Kernel::kSsse3: return mul_add_rows_ssse3;
    case Kernel::kAvx2: return mul_add_rows_avx2;
#endif
#ifdef SHARQ_FEC_NEON
    case Kernel::kNeon: return mul_add_rows_neon;
#endif
    default: return mul_add_rows_scalar;
  }
}

struct ActiveFns {
  MulAddFn mul_add;
  ScaleFn scale;
  MulAddRowsFn mul_add_rows;
};

const ActiveFns& active() {
  static const ActiveFns fns = [] {
    const Kernel k = cpu::active_kernel();
    return ActiveFns{mul_add_fn(k), scale_fn(k), mul_add_rows_fn(k)};
  }();
  return fns;
}

}  // namespace

void mul_add(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
             std::size_t n) {
  if (c == 0 || n == 0) return;
  active().mul_add(dst, src, c, n);
}

void mul_add(Kernel k, std::uint8_t* dst, const std::uint8_t* src,
             std::uint8_t c, std::size_t n) {
  if (c == 0 || n == 0) return;
  mul_add_fn(k)(dst, src, c, n);
}

void scale(std::uint8_t* dst, std::uint8_t c, std::size_t n) {
  if (c == 1 || n == 0) return;
  active().scale(dst, c, n);
}

void scale(Kernel k, std::uint8_t* dst, std::uint8_t c, std::size_t n) {
  if (c == 1 || n == 0) return;
  scale_fn(k)(dst, c, n);
}

void mul_add_rows(std::uint8_t* dst, const std::uint8_t* const* srcs,
                  const std::uint8_t* coeffs, int rows, std::size_t n) {
  if (rows <= 0 || n == 0) return;
  active().mul_add_rows(dst, srcs, coeffs, rows, n);
}

void mul_add_rows(Kernel k, std::uint8_t* dst, const std::uint8_t* const* srcs,
                  const std::uint8_t* coeffs, int rows, std::size_t n) {
  if (rows <= 0 || n == 0) return;
  mul_add_rows_fn(k)(dst, srcs, coeffs, rows, n);
}

}  // namespace sharq::fec::simd
