#pragma once

#include <string>
#include <vector>

namespace sharq::fec::cpu {

/// SIMD capabilities of the host, probed once at first use.
///
/// Detection is runtime (CPUID on x86 via __builtin_cpu_supports), so one
/// binary runs correctly on any host; the GF(256) kernels pick the widest
/// available instruction set and fall back to scalar tables elsewhere.
struct Features {
  bool ssse3 = false;  ///< x86 SSSE3 (PSHUFB, 16-byte shuffle)
  bool avx2 = false;   ///< x86 AVX2 (VPSHUFB, 32-byte shuffle)
  bool neon = false;   ///< AArch64 Advanced SIMD (TBL, 16-byte shuffle)
};

/// Host capabilities (cached; cheap to call repeatedly).
const Features& features();

/// The GF(256) kernel tiers, ordered weakest to strongest.
enum class Kernel {
  kScalar = 0,
  kSsse3 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Human-readable kernel name ("scalar", "ssse3", "avx2", "neon").
const char* kernel_name(Kernel k);

/// Kernels this host can execute, scalar first, strongest last.
std::vector<Kernel> supported_kernels();

/// The kernel the dispatcher will use: the strongest supported one, unless
/// overridden by environment:
///   SHARQFEC_FORCE_SCALAR=1      -> scalar (reproducible-run escape hatch)
///   SHARQFEC_FORCE_KERNEL=name   -> that kernel if supported, else best
/// The environment is read once, at the first FEC operation.
Kernel active_kernel();

}  // namespace sharq::fec::cpu
