#include "fec/group_codec.hpp"

#include <stdexcept>
#include <utility>

namespace sharq::fec {

GroupEncoder::GroupEncoder(std::shared_ptr<const ReedSolomon> codec,
                           std::vector<std::vector<std::uint8_t>> data)
    : codec_(std::move(codec)), data_(std::move(data)) {
  if (static_cast<int>(data_.size()) != codec_->k()) {
    throw std::invalid_argument("GroupEncoder: need exactly k data packets");
  }
  data_ptrs_.reserve(data_.size());
  for (const auto& d : data_) data_ptrs_.push_back(d.data());
}

std::vector<std::uint8_t> GroupEncoder::shard(int index) const {
  if (index < 0 || index >= max_shards()) {
    throw std::out_of_range("GroupEncoder::shard index");
  }
  if (index < k()) return data_[index];
  std::vector<std::uint8_t> out(data_.front().size());
  codec_->encode_parity_into(index, data_ptrs_.data(), out.size(), out.data());
  return out;
}

std::shared_ptr<const std::vector<std::uint8_t>> GroupEncoder::shard_shared(
    int index) const {
  if (index < 0 || index >= max_shards()) {
    throw std::out_of_range("GroupEncoder::shard index");
  }
  if (index < k()) {
    return std::make_shared<const std::vector<std::uint8_t>>(data_[index]);
  }
  auto out =
      std::make_shared<std::vector<std::uint8_t>>(data_.front().size());
  codec_->encode_parity_into(index, data_ptrs_.data(), out->size(),
                             out->data());
  return out;
}

void GroupEncoder::shard_into(int index, std::vector<std::uint8_t>& out) const {
  if (index < 0 || index >= max_shards()) {
    throw std::out_of_range("GroupEncoder::shard index");
  }
  if (index < k()) {
    out.assign(data_[index].begin(), data_[index].end());
    return;
  }
  out.resize(data_.front().size());
  codec_->encode_parity_into(index, data_ptrs_.data(), out.size(), out.data());
}

GroupDecoder::GroupDecoder(std::shared_ptr<const ReedSolomon> codec)
    : codec_(std::move(codec)), have_(codec_->max_shards(), false) {}

bool GroupDecoder::add(int index, std::vector<std::uint8_t> bytes) {
  if (index < 0 || index >= codec_->max_shards()) return false;
  if (have_[index]) return false;
  have_[index] = true;
  ++distinct_;
  if (index < codec_->k()) ++distinct_data_;
  shards_.push_back(ReedSolomon::Shard{index, std::move(bytes)});
  return true;
}

bool GroupDecoder::has(int index) const {
  if (index < 0 || index >= static_cast<int>(have_.size())) return false;
  return have_[index];
}

std::optional<std::vector<std::vector<std::uint8_t>>> GroupDecoder::reconstruct()
    const {
  if (!complete()) return std::nullopt;
  return codec_->decode(shards_);
}

}  // namespace sharq::fec
