#include "sharqfec/transfer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "sharqfec/ewma.hpp"
#include "stats/profiler.hpp"

namespace sharq::sfq {

namespace {
/// Sanity bound on how far ahead of the locally observed stream head a
/// message may reference a group. Legitimate senders are at most a few
/// groups ahead (plus session-advertised catch-up); a forged id beyond
/// this would otherwise make the backfill loops materialize state for
/// billions of phantom groups.
constexpr std::uint32_t kMaxGroupJump = 4096;

/// Accounted bytes per tracked group for the budget's state ledger
/// (Group struct plus its arena strides, approximated; see
/// docs/ROBUSTNESS.md on why the ledger is approximate by design).
constexpr std::size_t kGroupStateBytes = 512;
}  // namespace

TransferEngine::TransferEngine(net::Network& net, Hierarchy& hier,
                               SessionManager& session,
                               std::shared_ptr<const Config> cfg,
                               net::NodeId node, bool is_source,
                               rm::DeliveryLog* log, BudgetTracker* budget)
    : net_(net),
      simu_(net.simulator_for(node)),
      hier_(hier),
      session_(session),
      cfg_(std::move(cfg)),
      node_(node),
      is_source_(is_source),
      log_(log),
      rng_(net.simulator_for(node).rng().fork()),
      codec_(std::make_shared<fec::ReedSolomon>(cfg_->group_size,
                                                cfg_->max_parity)) {
  zlc_pred_.assign(session_.chain().size(), 0.0);
  cov_pred_.assign(session_.chain().size(), 0.0);
  c1_adapt_ = cfg_->timers.c1;
  c2_adapt_ = cfg_->timers.c2;
  if (is_source_) source_node_ = node_;
  journal_ = cfg_->journal;
  budget_ = budget;
  register_metrics();
}

stats::EventId TransferEngine::jnl(const char* ev, std::uint32_t group,
                                   stats::EventId cause,
                                   const stats::Attrs& attrs) {
  if (!journal_) return 0;
  return journal_->emit(ev, simu_.now(), node_,
                        static_cast<std::int64_t>(group), cause, attrs);
}

void TransferEngine::register_metrics() {
  stats::Metrics* m = cfg_->metrics;
  if (!m) return;
  const std::string node = std::to_string(node_);
  const stats::Labels by_node{{"node", node}};
  m_nacks_sent_ = &m->counter("sharqfec.nacks_sent", by_node);
  m_nacks_suppressed_ = &m->counter("sharqfec.nacks_suppressed", by_node);
  m_nacks_deduped_ = &m->counter("sharqfec.nacks_deduped", by_node);
  m_malformed_ = &m->counter("sharqfec.malformed_rejects", by_node);
  m_arrival_ewma_ = &m->gauge("sharqfec.arrival_ewma", by_node);
  m_pending_hw_ = &m->gauge("sharqfec.pending_repair_high_water");
  m_completion_ = &m->histogram("sharqfec.group_completion_seconds", by_node);
  if (budget_ && budget_->limits().any_enabled()) {
    m_repairs_deferred_ = &m->counter("sharqfec.repairs_deferred", by_node);
    m_repairs_coalesced_ = &m->counter("sharqfec.repairs_coalesced", by_node);
    m_scope_sheds_ = &m->counter("sharqfec.scope_sheds", by_node);
  }
  const std::size_t levels = session_.chain().size();
  m_repairs_by_level_.resize(levels);
  m_preemptive_by_level_.resize(levels);
  m_zlc_pred_.resize(levels);
  for (std::size_t l = 0; l < levels; ++l) {
    const stats::Labels by_level{{"level", std::to_string(l)}, {"node", node}};
    m_repairs_by_level_[l] = &m->counter("sharqfec.repairs_sent", by_level);
    m_preemptive_by_level_[l] = &m->counter("sharqfec.preemptive_repairs", by_level);
    m_zlc_pred_[l] = &m->gauge("sharqfec.zlc_pred", by_level);
  }
}

sim::Time TransferEngine::packet_interval() const {
  return static_cast<double>(cfg_->shard_size_bytes) * 8.0 / cfg_->data_rate_bps;
}

sim::Time TransferEngine::inter_arrival_estimate() const {
  // Same predicate as the update path (ewma_update seeds on sample >= 0):
  // the old `> 0.0` read ignored a slot legitimately seeded with 0.0.
  return ewma_seeded(arrival_ewma_) ? arrival_ewma_ : packet_interval();
}

sim::Time TransferEngine::dist_to_source() const {
  // Before the first data packet reveals the source (e.g. a late joiner
  // recovering pure history through its zone), the distance estimate has
  // nothing to converge on; default_dist keeps the request window at a
  // plausible network scale instead of collapsing to the floor and burning
  // through every NACK scope before the zone can answer once.
  if (source_node_ == net::kNoNode) return cfg_->default_dist;
  return std::max(1e-3, session_.estimate_dist(source_node_));
}

int TransferEngine::deficit(const Group& grp) const {
  return std::max(0, cfg_->group_size - grp.decoder.distinct());
}

int TransferEngine::slice_width() const {
  return std::max(1, cfg_->max_parity / hier_.depth());
}

int TransferEngine::slice_start(int global_level) const {
  return cfg_->group_size + global_level * slice_width();
}

void TransferEngine::note_parity_seen(Group& grp, int index) {
  if (index < cfg_->group_size) return;
  const int level = std::min((index - cfg_->group_size) / slice_width(),
                             hier_.depth() - 1);
  SliceLevel& sl = slice_lv(grp)[level];
  sl.next = std::max(sl.next, index + 1);
}

int TransferEngine::next_parity_index(Group& grp, net::ZoneId zone) {
  const int level = hier_.level(zone);
  const int lo = slice_start(level);
  const int hi = std::min(lo + slice_width(), codec_->max_shards());
  const int raw = std::max<int>(slice_lv(grp)[level].next, lo);
  // Slice exhausted: cycle through the slice again rather than pinning the
  // last index. A receiver that missed the whole first pass (crash,
  // partition) needs *distinct* shards; resending one duplicate forever
  // livelocks the NACK/repair exchange (found by the chaos soak).
  const int span = hi - lo;
  const int idx = raw < hi ? raw : (span > 0 ? lo + (raw - lo) % span : hi - 1);
  slice_lv(grp)[level].next = raw + 1;
  return idx;
}

TransferEngine::Group& TransferEngine::ensure_group(std::uint32_t g) {
  auto it = groups_.find(g);
  if (it != groups_.end()) return it->second;
  auto [jt, inserted] = groups_.try_emplace(g, codec_, simu_);
  (void)inserted;
  Group& grp = jt->second;
  grp.id = g;
  grp.initial_shards = cfg_->group_size;  // lower bound until announced
  // Arena strides are fixed at first use (chain and hierarchy shapes are
  // static once the session is up); each new group appends one stride.
  if (chain_levels_ == 0) {
    chain_levels_ = session_.chain().size();
    slice_levels_ = static_cast<std::size_t>(std::max(1, hier_.depth()));
  }
  grp.arena_slot = static_cast<std::uint32_t>(groups_.size() - 1);
  chain_arena_.resize(chain_arena_.size() + chain_levels_);
  slice_arena_.resize(slice_arena_.size() + slice_levels_);
  // Group state is accounted but never shed: dropping a tracked group
  // would break the delivery contract. It still counts against the state
  // budget so growth here pressures the sheddable structures.
  if (budget_) budget_->add_state(kGroupStateBytes);
  return grp;
}

bool TransferEngine::sane_group_id(std::uint32_t g) const {
  if (groups_total_ > 0 && g < groups_total_) return true;
  return g <= max_group_seen_ + kMaxGroupJump;
}

void TransferEngine::stop() {
  stopped_ = true;
  for (auto& [g, grp] : groups_) {
    grp.ldp_timer.cancel();
    grp.request_timer.cancel();
    grp.reply_timer.cancel();
    grp.measure_timer.cancel();
  }
}

void TransferEngine::memory_census(stats::MemCensus& census) const {
  // Message/shard pools: arena figures are exact (header-inclusive);
  // the buffer pool walk counts retained vector capacities.
  std::uint64_t pool_live = shard_pool_.live_bytes();
  std::uint64_t pool_peak = shard_pool_.retained_bytes();
  for (const sim::PoolStats* ps :
       {&data_pool_.stats(), &repair_pool_.stats(), &nack_pool_.stats()}) {
    pool_live += ps->bytes_live;
    pool_peak += ps->bytes_capacity;
  }
  census.add("transfer_pools", pool_live, pool_peak);

  // Per-group state. groups_ never erases and the level arenas only
  // append, so live == retained here. The map-node overhead constant
  // covers the rb-tree bookkeeping around each Group.
  constexpr std::uint64_t kMapNodeOverhead = 48;
  std::uint64_t grp_bytes =
      chain_arena_.capacity() * sizeof(ChainLevel) +
      slice_arena_.capacity() * sizeof(SliceLevel) + payload_.capacity();
  for (const auto& [id, grp] : groups_) {
    grp_bytes += sizeof(Group) + kMapNodeOverhead;
    grp_bytes += grp.decoder.memory_bytes();
    if (grp.encoder) {
      grp_bytes += sizeof(fec::GroupEncoder) + grp.encoder->memory_bytes();
    }
  }
  census.add("transfer_groups", grp_bytes, grp_bytes);
}

std::uint32_t TransferEngine::groups_completed() const {
  std::uint32_t n = 0;
  for (const auto& [g, grp] : groups_) n += grp.complete ? 1 : 0;
  return n;
}

bool TransferEngine::group_complete(std::uint32_t g) const {
  auto it = groups_.find(g);
  return it != groups_.end() && it->second.complete;
}

double TransferEngine::predicted_zlc(net::ZoneId z) const {
  const auto& chain = session_.chain();
  for (std::size_t l = 0; l < chain.size(); ++l) {
    if (chain[l] == z) return zlc_pred_[l];
  }
  return 0.0;
}

std::vector<std::uint8_t> TransferEngine::reconstructed(std::uint32_t g) const {
  auto it = groups_.find(g);
  if (it == groups_.end() || !it->second.complete || !cfg_->real_payload) {
    return {};
  }
  SHARQ_PROF_SCOPE(codec);
  auto data = it->second.decoder.reconstruct();
  if (!data) return {};
  std::vector<std::uint8_t> out;
  out.reserve(data->size() * cfg_->shard_size_bytes);
  for (const auto& shard : *data) out.insert(out.end(), shard.begin(), shard.end());
  return out;
}

// --- sender ------------------------------------------------------------------

void TransferEngine::send_stream(std::uint32_t group_count, sim::Time start_at,
                                 std::vector<std::uint8_t> payload) {
  assert(is_source_);
  send_total_groups_ = group_count;
  groups_total_ = group_count;
  payload_ = std::move(payload);
  if (cfg_->real_payload) {
    payload_.resize(static_cast<std::size_t>(group_count) * cfg_->group_size *
                        cfg_->shard_size_bytes,
                    0);
  }
  // seen_any_ flips when the first packet actually leaves: advertising
  // progress before then would make receivers chase phantom losses.
  simu_.at(start_at, [this] { source_send_next(); }, "transfer.source_pace");
}

std::shared_ptr<const std::vector<std::uint8_t>> TransferEngine::shard_bytes(
    Group& grp, int index) {
  if (!cfg_->real_payload) return nullptr;
  SHARQ_PROF_SCOPE(codec);
  if (!grp.encoder) {
    if (is_source_ && grp.id < send_total_groups_) {
      std::vector<std::vector<std::uint8_t>> data(cfg_->group_size);
      const std::size_t base = static_cast<std::size_t>(grp.id) *
                               cfg_->group_size * cfg_->shard_size_bytes;
      for (int i = 0; i < cfg_->group_size; ++i) {
        const auto* p = payload_.data() + base + i * cfg_->shard_size_bytes;
        data[i].assign(p, p + cfg_->shard_size_bytes);
      }
      grp.encoder = std::make_unique<fec::GroupEncoder>(codec_, std::move(data));
    } else if (grp.complete) {
      auto data = grp.decoder.reconstruct();
      if (!data) return nullptr;
      grp.encoder = std::make_unique<fec::GroupEncoder>(codec_, std::move(*data));
    } else {
      return nullptr;
    }
  }
  // Parity is encoded straight into a pooled buffer the message will carry
  // (one codec row-pass, no intermediate copy). The buffer returns to the
  // freelist when the last in-flight packet copy releases it.
  auto buf =
      shard_pool_.acquire(static_cast<std::size_t>(cfg_->shard_size_bytes));
  grp.encoder->shard_into(index, *buf);
  return buf;
}

void TransferEngine::source_send_next() {
  SHARQ_PROF_SCOPE(transfer);
  if (stopped_ || send_group_ >= send_total_groups_) return;
  Group& grp = ensure_group(send_group_);
  if (send_index_ == 0) {
    // Decide this group's proactive redundancy h from the EWMA-predicted
    // ZLC of the largest zone (zero when injection is disabled).
    int h = 0;
    if (cfg_->injection) {
      // Size up ("sufficient redundancy to guarantee delivery", §3.2):
      // fractional predicted loss still means some receiver usually needs
      // that shard, and an unneeded proactive shard merely suppresses.
      h = static_cast<int>(std::ceil(zlc_pred_.back() - 0.05));
      // Initial parity lives in the root zone's slice of the parity space.
      h = std::clamp(h, 0, slice_width() - 1);
    }
    grp.initial_shards = cfg_->group_size + h;
    max_group_seen_ = std::max(max_group_seen_, grp.id);
    seen_any_ = true;
  }
  auto msg = data_pool_.make();
  msg->group = grp.id;
  msg->index = send_index_;
  msg->k = cfg_->group_size;
  msg->initial_shards = grp.initial_shards;
  msg->groups_total = groups_total_;
  msg->bytes = shard_bytes(grp, send_index_);
  const bool is_parity = send_index_ >= cfg_->group_size;
  net_.send(node_, hier_.data_channel(),
            is_parity ? net::TrafficClass::kRepair : net::TrafficClass::kData,
            cfg_->shard_size_bytes, msg);
  if (is_parity) {
    ++preemptive_sent_;
    // Initial parity is injected at root scope (the whole session).
    if (!m_preemptive_by_level_.empty()) m_preemptive_by_level_.back()->inc();
  }
  // The source trivially "has" every shard it emits.
  add_shard(grp, send_index_, msg->bytes);
  grp.last_initial_seen = send_index_;
  grp.max_id_seen = std::max(grp.max_id_seen, send_index_);

  ++send_index_;
  if (send_index_ >= grp.initial_shards) {
    // Group fully transmitted: the sender enters the repair phase for it
    // immediately (paper RP rule 1) and flushes any queued repairs.
    grp.ldp_done = true;
    if (!grp.reply_timer.pending()) {
      const ChainLevel* lv = chain_lv(grp);
      int level = -1;
      for (std::size_t l = chain_levels_; l-- > 0;) {
        if (lv[l].pending > 0) level = static_cast<int>(l);
      }
      if (level >= 0) {
        grp.reply_level = level;
        fire_reply(grp.id);
      }
    }
    schedule_zlc_measurement(grp);
    send_index_ = 0;
    ++send_group_;
  }
  simu_.after(packet_interval(), [this] { source_send_next(); },
              "transfer.source_pace");
}

// --- receive path -------------------------------------------------------------

bool TransferEngine::handle(const net::Packet& packet) {
  SHARQ_PROF_SCOPE(transfer);
  // Cross-node causality: whatever this packet triggers is caused by the
  // event that sent it (bound to the uid on the sender's side).
  cause_in_ = journal_ ? journal_->uid_event(packet.uid) : 0;
  if (const auto* d = packet.as<DataMsg>()) {
    if (stopped_) return true;
    // Field validation before any state is touched: a hostile or decoder-
    // mangled message must bump the reject counter, not hang the backfill
    // loops or inflate per-group bookkeeping.
    if (d->index < 0 || d->index >= codec_->max_shards() ||
        d->k != cfg_->group_size || d->initial_shards > codec_->max_shards() ||
        !sane_group_id(d->group)) {
      ++malformed_rejects_;
      if (m_malformed_) m_malformed_->inc();
      return true;
    }
    if (source_node_ == net::kNoNode) source_node_ = packet.origin;
    if (!is_source_) on_data(*d, packet.cls);
    return true;
  }
  if (const auto* r = packet.as<RepairMsg>()) {
    if (stopped_) return true;
    if (r->index < 0 || r->index >= codec_->max_shards() ||
        r->new_max_id < 0 || r->new_max_id >= codec_->max_shards() ||
        !sane_group_id(r->group)) {
      ++malformed_rejects_;
      if (m_malformed_) m_malformed_->inc();
      return true;
    }
    on_repair(*r);
    return true;
  }
  if (const auto* n = packet.as<NackMsg>()) {
    if (stopped_) return true;
    if (n->llc < 0 || n->llc > codec_->max_shards() || n->needed < 0 ||
        n->needed > codec_->max_shards() || n->max_id_seen < -1 ||
        n->max_id_seen >= codec_->max_shards() || !sane_group_id(n->group)) {
      ++malformed_rejects_;
      if (m_malformed_) m_malformed_->inc();
      return true;
    }
    on_nack(*n);
    return true;
  }
  return false;
}

void TransferEngine::fix_join_point(std::uint32_t first_heard_group,
                                    bool at_group_start) {
  if (join_point_fixed_ || is_source_) return;
  join_point_fixed_ = true;
  if (cfg_->late_join_full_history) return;  // contract covers everything
  // Live-only contract: skip all earlier groups, and the partially-heard
  // one unless we caught its very first shard.
  skip_before_ = at_group_start ? first_heard_group : first_heard_group + 1;
}

void TransferEngine::note_remote_progress(std::uint32_t remote_max_group) {
  if (stopped_ || is_source_) return;
  // Clamp rather than reject: a genuinely far-ahead stream still makes
  // incremental progress across successive advertisements, while a forged
  // value cannot commandeer unbounded group state in one step.
  remote_max_group =
      std::min(remote_max_group, max_group_seen_ + kMaxGroupJump);
  fix_join_point(remote_max_group + 1, /*at_group_start=*/true);
  if (!seen_any_) {
    // We have heard nothing at all yet; the stream exists, so group 0 and
    // everything up to the advertised max is missing.
    seen_any_ = true;
  }
  for (std::uint32_t g = skip_before_; g <= remote_max_group; ++g) {
    Group& grp = ensure_group(g);
    if (grp.ldp_done || grp.ldp_timer.pending()) continue;
    if (g < remote_max_group) {
      // Groups below the advertised max have certainly finished at the
      // source.
      finish_ldp(grp);
    } else if (grp.first_arrival == sim::kTimeNever) {
      // The advertised max group itself may still be in flight toward us
      // (the advertisement can race the tranche). Give it one tranche
      // duration plus slack; a live arrival re-arms this timer, a late
      // joiner's silence finalizes it and starts recovery.
      const sim::Time grace =
          std::max(0.5, 2.0 * cfg_->group_size * inter_arrival_estimate());
      grp.ldp_timer.arm(grace, [this, g] {
        auto it = groups_.find(g);
        if (it != groups_.end() && !it->second.ldp_done) {
          finish_ldp(it->second, "timer");
        }
      });
      if (journal_ && grp.ldp_armed_ev == 0) {
        grp.ldp_armed_ev =
            jnl("ldp.armed", grp.id, grp.root_ev, {{"eta", grace}});
      }
    }
  }
  max_group_seen_ = std::max(max_group_seen_, remote_max_group);
}

void TransferEngine::on_data(const DataMsg& msg, net::TrafficClass) {
  fix_join_point(msg.group, /*at_group_start=*/msg.index == 0);
  seen_any_ = true;
  if (msg.group < skip_before_) return;  // outside our delivery contract
  // Inter-arrival estimate refinement (paper: group-by-group).
  if (last_arrival_ != sim::kTimeNever) {
    const double gap = simu_.now() - last_arrival_;
    if (gap > 0.0 && gap < 10.0 * packet_interval()) {
      ewma_update(arrival_ewma_, gap, 0.1);
      if (m_arrival_ewma_) m_arrival_ewma_->set(arrival_ewma_);
    }
  }
  last_arrival_ = simu_.now();

  // Groups before this one that we never completed detection on have
  // finished their initial tranche at the source.
  if (msg.group > max_group_seen_ || !seen_any_) {
    for (std::uint32_t g = skip_before_; g < msg.group; ++g) {
      Group& prev = ensure_group(g);
      if (!prev.ldp_done && !prev.ldp_timer.pending()) finish_ldp(prev);
    }
    max_group_seen_ = std::max(max_group_seen_, msg.group);
  }
  if (msg.groups_total > 0) groups_total_ = msg.groups_total;

  Group& grp = ensure_group(msg.group);
  grp.initial_shards = std::max(grp.initial_shards, msg.initial_shards);
  if (grp.first_arrival == sim::kTimeNever) {
    grp.first_arrival = simu_.now();
    if (journal_) {
      // Span root: data sends are not journaled (volume), so the first
      // arrival starts this {node, group} recovery lifecycle from nothing.
      grp.root_ev =
          jnl("group.first_arrival", grp.id, 0, {{"index", msg.index}});
    }
  }
  note_initial_progress(grp, msg.index);
  add_shard(grp, msg.index, msg.bytes);
  if (grp.complete || grp.ldp_done) return;
  // (Re)arm the LDP timer: expect the rest of the initial tranche at the
  // estimated inter-packet pace, with slack for jitter.
  const int remaining = grp.initial_shards - 1 - grp.last_initial_seen;
  const sim::Time eta =
      (static_cast<double>(std::max(remaining, 0)) * 1.5 + 2.0) *
      inter_arrival_estimate();
  grp.ldp_timer.arm(eta, [this, g = grp.id] {
    auto it = groups_.find(g);
    if (it != groups_.end() && !it->second.ldp_done) {
      finish_ldp(it->second, "timer");
    }
  });
  // Journaled once per group (the timer re-arms on every packet; a line
  // per packet would drown the journal in the common no-loss case).
  if (journal_ && grp.ldp_armed_ev == 0) {
    grp.ldp_armed_ev = jnl("ldp.armed", grp.id, grp.root_ev, {{"eta", eta}});
  }
}

void TransferEngine::note_initial_progress(Group& grp, int index) {
  // Initial-tranche shards arrive in index order over a FIFO tree; a jump
  // means the skipped shards were lost on our path.
  if (index <= grp.last_initial_seen) return;
  int newly_missing_originals = 0;
  for (int j = grp.last_initial_seen + 1; j < index; ++j) {
    if (!grp.decoder.has(j) && j < cfg_->group_size) ++newly_missing_originals;
  }
  grp.last_initial_seen = index;
  grp.max_id_seen = std::max(grp.max_id_seen, index);
  if (newly_missing_originals > 0) {
    // An index jump is observed on a data arrival, so the span root (the
    // group's first arrival) is the closest recorded trigger.
    raise_llc(grp, newly_missing_originals, grp.root_ev);
  }
}

void TransferEngine::raise_llc(Group& grp, int newly_missing,
                               stats::EventId cause) {
  grp.llc += newly_missing;
  if (journal_) {
    grp.last_loss_ev =
        jnl("loss.detected", grp.id, cause ? cause : grp.root_ev,
            {{"llc", grp.llc}, {"newly_missing", newly_missing}});
  }
  maybe_request(grp);
}

void TransferEngine::finish_ldp(Group& grp, const char* via) {
  if (grp.ldp_done) return;
  grp.ldp_done = true;
  grp.ldp_timer.cancel();
  // Shards of the initial tranche we never saw are lost.
  int missing_originals = 0;
  for (int j = grp.last_initial_seen + 1; j < grp.initial_shards; ++j) {
    if (!grp.decoder.has(j) && j < cfg_->group_size) ++missing_originals;
  }
  grp.last_initial_seen = grp.initial_shards - 1;
  grp.max_id_seen = std::max(grp.max_id_seen, grp.initial_shards - 1);
  if (journal_) {
    grp.ldp_fired_ev =
        jnl("ldp.fired", grp.id,
            grp.ldp_armed_ev ? grp.ldp_armed_ev : grp.root_ev,
            {{"missing", missing_originals}, {"via", via}});
  }
  if (missing_originals > 0) {
    raise_llc(grp, missing_originals, grp.ldp_fired_ev);
  } else {
    maybe_request(grp);
  }
  if (grp.complete) return;
  schedule_zlc_measurement(grp);
}

void TransferEngine::add_shard(
    Group& grp, int index,
    const std::shared_ptr<const std::vector<std::uint8_t>>& bytes) {
  std::vector<std::uint8_t> copy;
  if (cfg_->real_payload && bytes) copy = *bytes;
  note_parity_seen(grp, index);
  if (!grp.decoder.add(index, std::move(copy))) return;
  if (index >= cfg_->group_size) {
    // Parity actually received, attributed to the level that emitted it
    // (used to size incremental injection from below).
    const int gl = std::min((index - cfg_->group_size) / slice_width(),
                            hier_.depth() - 1);
    ++slice_lv(grp)[gl].seen;
  }
  grp.max_id_seen = std::max(grp.max_id_seen, index);
  if (!grp.complete && grp.decoder.complete()) on_group_complete(grp);
}

// --- request side ---------------------------------------------------------------

int TransferEngine::base_scope_level() const {
  const auto& chain = session_.chain();
  // A zone's ZCR represents its zone upward: its own unrecovered losses
  // are, by construction, losses the whole zone shares (they happened
  // upstream of the zone boundary), so its NACKs start at the parent
  // scope where a repairer can actually exist. This is what lets the
  // source learn the per-zone loss it must cover with initial redundancy
  // ("the source need only add sufficient redundancy to guarantee
  // delivery of each group to receiver Y", §3.2).
  int base = 0;
  while (base + 1 < static_cast<int>(chain.size()) &&
         session_.is_zcr(chain[base])) {
    ++base;
  }
  return base;
}

int TransferEngine::nack_level(const Group& grp) const {
  const auto& chain = session_.chain();
  const int base = base_scope_level();
  int level = std::min<int>(base + grp.scope_level, chain.size() - 1);
  // Paper: if the source is a member of the target partition, use the
  // largest scope instead (its repairs serve everyone anyway).
  if (source_node_ != net::kNoNode &&
      hier_.zone_contains(chain[level], source_node_)) {
    level = static_cast<int>(chain.size()) - 1;
  }
  return level;
}

bool TransferEngine::covered_by_zlc(const Group& grp) const {
  // A NACK at ANY scope containing us whose announced loss count reaches
  // ours means repairs covering our deficit are on their way (repairs at
  // larger scopes reach nested zones too).
  const ChainLevel* lv = chain_lv(grp);
  int best = 0;
  for (std::size_t l = 0; l < chain_levels_; ++l) {
    best = std::max<int>(best, lv[l].zlc);
  }
  return grp.llc <= best;
}

void TransferEngine::maybe_request(Group& grp) {
  if (is_source_ || grp.complete) return;
  if (deficit(grp) <= 0) return;
  // Whether covered by someone else's NACK or not, the request timer must
  // run: if covered, it acts as a stall probe; if not, it races to be the
  // zone's NACKer. Suppression proper happens at fire time.
  if (!grp.request_timer.pending()) arm_request_timer(grp);
}

void TransferEngine::arm_request_timer(Group& grp, stats::EventId cause) {
  const double d = dist_to_source();
  rm::TimerPolicy policy = cfg_->timers;
  if (cfg_->adaptive_timers) {
    policy.c1 = c1_adapt_;
    policy.c2 = c2_adapt_;
  }
  rm::TimerPolicy::RequestDraw draw;
  const sim::Time delay =
      policy.request_delay(rng_, d, std::min(grp.backoff_i, cfg_->max_backoff_stage),
                           journal_ ? &draw : nullptr);
  grp.request_timer.arm(delay, [this, g = grp.id] { fire_request(g); });
  if (journal_) {
    // The sampled suppression window rides along so a trace shows why
    // this receiver's NACK waited as long as it did.
    jnl("request.armed", grp.id, cause ? cause : span_cause(grp),
        {{"delay", delay},
         {"hi", draw.hi},
         {"lo", draw.lo},
         {"scale", draw.scale}});
  }
}

void TransferEngine::adapt_request_window(bool heard_duplicate) {
  if (!cfg_->adaptive_timers) return;
  ave_dup_nack_ =
      0.75 * ave_dup_nack_ + 0.25 * (heard_duplicate ? 1.0 : 0.0);
  if (ave_dup_nack_ >= 0.5) {
    c1_adapt_ += 0.1;
    c2_adapt_ += 0.5;
  } else if (ave_dup_nack_ < 0.2) {
    c1_adapt_ -= 0.05;
    c2_adapt_ -= 0.1;
  }
  c1_adapt_ = std::clamp(c1_adapt_, cfg_->adaptive_c1_min, cfg_->adaptive_c1_max);
  c2_adapt_ = std::clamp(c2_adapt_, cfg_->adaptive_c2_min, cfg_->adaptive_c2_max);
}

void TransferEngine::fire_request(std::uint32_t g) {
  SHARQ_PROF_SCOPE(transfer);
  if (stopped_) return;
  auto it = groups_.find(g);
  if (it == groups_.end()) return;
  Group& grp = it->second;
  if (grp.complete || deficit(grp) <= 0) return;
  if (!grp.ldp_done) {
    // The initial tranche is still arriving: a NACK now would count
    // in-flight shards as losses and demand repairs nobody needs. Wait
    // out the rest of the loss-detection phase first.
    const int remaining = grp.initial_shards - 1 - grp.last_initial_seen;
    const sim::Time eta = (static_cast<double>(std::max(remaining, 1)) * 1.2 +
                           1.0) *
                          inter_arrival_estimate();
    grp.request_timer.arm(eta, [this, g] { fire_request(g); });
    return;
  }
  const int level = nack_level(grp);
  // Suppression re-check at fire time (paper LDP rule 6): somebody in
  // this zone already announced at least our loss count, so their repairs
  // cover us — unless recovery has stalled (no new shard since our last
  // probe), in which case the repairs were evidently lost and we NACK
  // anyway (paper RP rule: repairees detect lost repairs and re-request).
  const bool covered = covered_by_zlc(grp);
  const bool progressing = grp.decoder.distinct() != grp.last_fire_distinct;
  grp.last_fire_distinct = grp.decoder.distinct();
  if (covered && progressing) {
    if (m_nacks_suppressed_) m_nacks_suppressed_->inc();
    stats::EventId suppressed_ev = 0;
    if (journal_) {
      suppressed_ev = jnl("nack.suppressed", grp.id, span_cause(grp),
                          {{"level", level}, {"llc", grp.llc}});
    }
    grp.backoff_i = std::min(grp.backoff_i + 1, cfg_->max_backoff_stage);
    arm_request_timer(grp, suppressed_ev);
    return;
  }
  const net::ZoneId zone = session_.chain()[level];

  auto msg = nack_pool_.make();
  msg->group = g;
  msg->zone = zone;
  msg->llc = grp.llc;
  msg->needed = deficit(grp);
  msg->max_id_seen = grp.max_id_seen;
  msg->sender = node_;
  msg->hints = session_.make_hints();
  ++nacks_sent_;
  if (m_nacks_sent_) m_nacks_sent_->inc();
  const std::uint64_t uid =
      net_.send(node_, hier_.repair_channel(zone), net::TrafficClass::kNack,
                nack_size(msg->hints.size()), msg, /*lossless=*/true);
  if (journal_) {
    grp.last_nack_ev = jnl("nack.sent", grp.id, span_cause(grp),
                           {{"level", level},
                            {"llc", grp.llc},
                            {"needed", msg->needed},
                            {"zone", zone}});
    journal_->bind_uid(uid, grp.last_nack_ev);
  }
  ChainLevel& lv = chain_lv(grp)[level];
  lv.nacked = true;
  lv.zlc = std::max<std::int32_t>(lv.zlc, grp.llc);

  // Escalate to the parent scope after the configured number of attempts;
  // a fresh scope starts with a fresh backoff stage (the paper resets i on
  // repair arrival; without a reset here, escalation to a scope that can
  // actually repair would inherit minutes of accumulated backoff).
  ++grp.attempts_at_scope;
  const bool escalation_due =
      grp.attempts_at_scope >= cfg_->attempts_per_scope &&
      level + 1 < static_cast<int>(session_.chain().size());
  if (escalation_due && budget_ && budget_->under_pressure()) {
    // Overload shed: widening the scope would recruit a strictly larger
    // repairer population while this node is already shedding load, so
    // step back toward the base scope instead. The request is never
    // dropped — recovery just stays local until pressure lifts. The shed
    // deliberately does not refresh the pressure clock: it is a response
    // to pressure, and refreshing would let scope sheds sustain the
    // pressure they are meant to relieve.
    grp.attempts_at_scope = 0;
    if (grp.scope_level > 0) --grp.scope_level;
    grp.backoff_i = std::min(grp.backoff_i + 1, cfg_->max_backoff_stage);
    ++scope_sheds_;
    if (m_scope_sheds_) m_scope_sheds_->inc();
    if (journal_) {
      jnl("shed.scope", grp.id, grp.last_nack_ev,
          {{"scope_level", grp.scope_level}});
    }
  } else if (escalation_due) {
    ++grp.scope_level;
    grp.attempts_at_scope = 0;
    grp.backoff_i = 1;
    if (journal_) {
      jnl("scope.escalated", grp.id, grp.last_nack_ev,
          {{"scope_level", grp.scope_level}});
    }
  } else {
    grp.backoff_i = std::min(grp.backoff_i + 1, cfg_->max_backoff_stage);
  }
  arm_request_timer(grp, grp.last_nack_ev);
}

// --- NACK handling (suppression + repairer bookkeeping) ------------------------

void TransferEngine::on_nack(const NackMsg& msg) {
  if (join_point_fixed_ && msg.group < skip_before_ && !is_source_) {
    // Outside our contract — but we may still hold the shards from before
    // we narrowed it; otherwise ignore.
    if (groups_.find(msg.group) == groups_.end()) return;
  }
  Group& grp = ensure_group(msg.group);
  const auto& chain = session_.chain();
  int level = -1;
  for (std::size_t l = 0; l < chain.size(); ++l) {
    if (chain[l] == msg.zone) {
      level = static_cast<int>(l);
      break;
    }
  }
  if (level < 0) return;  // scoping prevents this in practice

  stats::EventId heard_ev = 0;
  if (journal_) {
    // Cross-node edge: cause is the sender's nack.sent, via the packet uid.
    heard_ev = jnl("nack.heard", grp.id, cause_in_,
                   {{"level", level},
                    {"llc", msg.llc},
                    {"needed", msg.needed},
                    {"sender", msg.sender}});
  }

  // No group-creating call happens below, so the stride reference stays
  // valid for the rest of the handler.
  ChainLevel& lv = chain_lv(grp)[level];
  const bool increased = msg.llc > lv.zlc;
  lv.zlc = std::max<std::int32_t>(lv.zlc, msg.llc);

  // The NACK's max-id may reveal shards we never saw (paper LDP rule 7).
  if (msg.max_id_seen > grp.max_id_seen) {
    int missing_originals = 0;
    for (int j = grp.max_id_seen + 1; j <= msg.max_id_seen; ++j) {
      if (j < cfg_->group_size && !grp.decoder.has(j)) ++missing_originals;
    }
    if (grp.last_initial_seen < msg.max_id_seen &&
        msg.max_id_seen < grp.initial_shards) {
      grp.last_initial_seen = msg.max_id_seen;
    }
    grp.max_id_seen = msg.max_id_seen;
    if (missing_originals > 0 && !is_source_) {
      raise_llc(grp, missing_originals, heard_ev);
    }
  }

  if (!is_source_ && !grp.complete) {
    // Suppression (paper LDP rules 5/6): a NACK that covers our losses, or
    // one that does not raise the ZLC, backs our own request off.
    if (grp.request_timer.pending() && (!increased || grp.llc <= lv.zlc)) {
      if (m_nacks_deduped_) m_nacks_deduped_->inc();
      stats::EventId dedup_ev = 0;
      if (journal_) {
        dedup_ev = jnl("nack.deduped", grp.id, heard_ev,
                       {{"level", level}, {"llc", grp.llc}});
      }
      grp.backoff_i = std::min(grp.backoff_i + 1, cfg_->max_backoff_stage);
      arm_request_timer(grp, dedup_ev);
      // A NACK that didn't raise the ZLC while ours announced the same
      // losses is a duplicate in the adaptive-timer sense.
      if (lv.nacked && !increased) adapt_request_window(true);
    }
  }

  // Repairer bookkeeping: speculative repair queue for that zone. New
  // NACKs raise the queue to the worst outstanding deficit; increases do
  // not reset a pending reply timer (paper LDP rule 8).
  std::int32_t want = std::max<std::int32_t>(lv.pending, msg.needed);
  const std::int32_t qcap = budget_ ? budget_->limits().repair_queue_depth : 0;
  if (qcap > 0 && want > qcap) {
    // Queue budget: coalesce the deficit down to the cap. The capped
    // queue still answers the worst deficit up to the budget; requesters
    // still short after the burst re-NACK and are served next round.
    want = qcap;
    ++repairs_coalesced_;
    if (m_repairs_coalesced_) m_repairs_coalesced_->inc();
    budget_->note_shed("repair");
    if (journal_) {
      jnl("shed.repair", grp.id, heard_ev,
          {{"mode", "coalesce"},
           {"level", level},
           {"needed", msg.needed},
           {"queued", qcap}});
    }
  }
  lv.pending = want;
  if (lv.pending > pending_high_water_) pending_high_water_ = lv.pending;
  if (m_pending_hw_) m_pending_hw_->set_max(static_cast<double>(lv.pending));
  if (!eligible_repairer(grp)) return;
  if (cfg_->sender_only && !is_source_) return;
  if (grp.reply_timer.pending()) {
    grp.reply_level = std::max(grp.reply_level, level);
    return;
  }
  grp.reply_level = level;
  if (is_source_ || session_.is_zcr(msg.zone)) {
    // Sender and responsible ZCRs answer immediately (paced).
    if (journal_) {
      grp.repair_sched_ev = jnl("repair.scheduled", grp.id, heard_ev,
                                {{"level", level}, {"via", "immediate"}});
    }
    fire_reply(grp.id);
  } else {
    const double d =
        std::max(1e-3, session_.estimate_dist(msg.sender, msg.hints));
    if (journal_) {
      grp.repair_sched_ev = jnl("repair.scheduled", grp.id, heard_ev,
                                {{"level", level}, {"via", "deferred"}});
    }
    arm_reply_timer(grp, level, d * cfg_->fallback_reply_defer);
  }
}

bool TransferEngine::eligible_repairer(const Group& grp) const {
  if (is_source_) return grp.ldp_done || grp.complete;
  return grp.complete;
}

void TransferEngine::arm_reply_timer(Group& grp, int level,
                                     double dist_to_requester) {
  grp.reply_level = level;
  const sim::Time delay = cfg_->timers.reply_delay(rng_, dist_to_requester);
  grp.reply_timer.arm(delay, [this, g = grp.id] { fire_reply(g); });
}

void TransferEngine::fire_reply(std::uint32_t g) {
  SHARQ_PROF_SCOPE(transfer);
  if (stopped_) return;
  auto it = groups_.find(g);
  if (it == groups_.end()) return;
  Group& grp = it->second;
  if (!eligible_repairer(grp)) return;
  if (cfg_->sender_only && !is_source_) return;
  int level = grp.reply_level;
  if (level < 0) return;
  if (chain_lv(grp)[level].pending <= 0) {
    // This zone is served; check smaller zones we may also owe.
    const ChainLevel* lv = chain_lv(grp);
    level = -1;
    for (std::size_t l = chain_levels_; l-- > 0;) {
      if (lv[l].pending > 0) level = static_cast<int>(l);
    }
    if (level < 0) return;
    grp.reply_level = level;
  }
  if (budget_ && !budget_->repair_due()) {
    // Rate budget: defer, never drop — re-arm for the pacer's next free
    // slot. The pacer hands out slots in event order, so concurrent
    // deferrals across groups serialize deterministically.
    ++repairs_deferred_;
    if (m_repairs_deferred_) m_repairs_deferred_->inc();
    budget_->note_shed("repair");
    if (journal_) {
      jnl("shed.repair", grp.id, grp.repair_sched_ev,
          {{"mode", "defer"},
           {"level", level},
           {"wait", budget_->repair_wait()}});
    }
    grp.reply_timer.arm(budget_->repair_wait(), [this, g] { fire_reply(g); });
    return;
  }
  send_one_repair(grp, level, /*preemptive=*/false);
  // Re-fetch the stride: send_one_repair can complete the group, and the
  // completion callback may create groups (arena growth moves the data).
  ChainLevel* lv = chain_lv(grp);
  lv[level].pending = std::max<std::int32_t>(0, lv[level].pending - 1);
  bool any_pending = false;
  for (std::size_t l = 0; l < chain_levels_; ++l) {
    any_pending = any_pending || lv[l].pending > 0;
  }
  if (any_pending) {
    if (is_source_ || session_.is_zcr(session_.chain()[level])) {
      // Dedicated repairers pace the rest of the burst at half the data
      // inter-packet interval (paper RP rule 1).
      grp.reply_timer.arm(cfg_->repair_spacing_factor * packet_interval(),
                           [this, g] { fire_reply(g); });
    } else {
      // Fallback repairers re-randomize a suppression-sized delay between
      // repairs so a dedicated repairer's burst (or another fallback's)
      // can drain the queue first.
      arm_reply_timer(grp, grp.reply_level,
                      cfg_->default_dist * cfg_->fallback_reply_defer);
    }
  }
}

void TransferEngine::send_one_repair(Group& grp, int level, bool preemptive) {
  if (stopped_) return;
  if (budget_ && preemptive && !budget_->repair_due()) {
    // Preemptive injection is speculative redundancy: when the rate
    // budget has no slot, skipping the shard is the graceful choice —
    // anyone who actually needed it will NACK and be served through the
    // (deferring, never-dropping) reactive path.
    ++repairs_deferred_;
    if (m_repairs_deferred_) m_repairs_deferred_->inc();
    budget_->note_shed("repair");
    if (journal_) {
      jnl("shed.repair", grp.id, grp.inject_ev,
          {{"mode", "skip_preemptive"}, {"level", level}});
    }
    return;
  }
  const net::ZoneId zone = session_.chain()[level];
  const int index = next_parity_index(grp, zone);
  grp.max_id_seen = std::max(grp.max_id_seen, index);

  auto msg = repair_pool_.make();
  msg->group = grp.id;
  msg->index = index;
  msg->k = cfg_->group_size;
  msg->new_max_id = index;
  msg->repairer = node_;
  msg->zone = zone;
  msg->preemptive = preemptive;
  msg->hints = session_.make_hints();
  msg->bytes = shard_bytes(grp, index);
  // Logical parity bytes: counted in both payload modes so the profile's
  // FEC figures survive the (fast) shard-count configuration.
  stats::Profiler::count(stats::ProfCounter::fec_bytes_encoded,
                         static_cast<std::uint64_t>(cfg_->shard_size_bytes));
  ++repairs_sent_;
  if (preemptive) ++preemptive_sent_;
  if (level >= 0 && level < static_cast<int>(m_repairs_by_level_.size())) {
    m_repairs_by_level_[level]->inc();
    if (preemptive) m_preemptive_by_level_[level]->inc();
  }
  const std::uint64_t uid =
      net_.send(node_, hier_.repair_channel(zone), net::TrafficClass::kRepair,
                cfg_->shard_size_bytes, msg);
  if (budget_) budget_->note_repair_sent();
  if (journal_) {
    const stats::EventId cause =
        preemptive ? grp.inject_ev : grp.repair_sched_ev;
    const stats::EventId sent_ev =
        jnl("repair.sent", grp.id, cause ? cause : span_cause(grp),
            {{"index", index},
             {"level", level},
             {"mode", preemptive ? "preemptive" : "reactive"},
             {"zone", zone}});
    journal_->bind_uid(uid, sent_ev);
  }
  // Our own shard store should know the shard exists (dedup/coordination).
  add_shard(grp, index, msg->bytes);
}

// --- repair handling -----------------------------------------------------------

void TransferEngine::on_repair(const RepairMsg& msg) {
  seen_any_ = true;
  if (join_point_fixed_ && msg.group < skip_before_) return;
  Group& grp = ensure_group(msg.group);
  const auto& chain = session_.chain();
  int level = -1;
  for (std::size_t l = 0; l < chain.size(); ++l) {
    if (chain[l] == msg.zone) {
      level = static_cast<int>(l);
      break;
    }
  }
  grp.max_id_seen = std::max(grp.max_id_seen, msg.new_max_id);
  note_parity_seen(grp, msg.new_max_id);
  ++grp.repair_coverage;
  const bool useful = !grp.decoder.has(msg.index);
  if (journal_) {
    grp.last_repair_recv_ev =
        jnl("repair.received", grp.id, cause_in_,
            {{"index", msg.index},
             {"level", level},
             {"mode", msg.preemptive ? "preemptive" : "reactive"},
             {"useful", useful ? 1 : 0}});
  }
  add_shard(grp, msg.index, msg.bytes);

  // A repair resets the request backoff (paper LDP rule: "any time a
  // repair arrives, i is reset to 1") — but only a repair that added
  // information. Resetting on duplicates lets a stream of useless repairs
  // hold a starved receiver at its fastest NACK cadence, which sustains a
  // session-wide NACK/repair storm (found by the chaos soak).
  if (useful && !grp.complete) {
    grp.backoff_i = 1;
    // De-escalate to the scope that actually served us: that zone has a
    // live repairer with the shards, so wider NACKs are pure amplification
    // (a root-scope NACK recruits ~every complete receiver). Without this,
    // an outage parks the scope at the root forever — ~100x repair
    // amplification after heal, found by the chaos soak. Scopes below the
    // serving level stay ruled out: they already failed to answer, which
    // is how we escalated past them in the first place.
    const int serving =
        std::max(level - base_scope_level(), 0);
    if (grp.scope_level > serving) {
      grp.scope_level = serving;
      grp.attempts_at_scope = 0;
      if (journal_) {
        jnl("scope.deescalated", grp.id, grp.last_repair_recv_ev,
            {{"scope_level", serving}});
      }
    }
    if (grp.request_timer.pending() && deficit(grp) > 0) {
      arm_request_timer(grp, grp.last_repair_recv_ev);
    }
  }

  // Dequeue speculative repairs for the repair's zone and every smaller
  // zone on our chain (paper LDP rule 9). Fetched after add_shard: the
  // completion callback it can trigger may grow the arena.
  if (level >= 0) {
    ChainLevel* lv = chain_lv(grp);
    for (int l = 0; l <= level; ++l) {
      lv[l].pending = std::max<std::int32_t>(0, lv[l].pending - 1);
    }
    if (grp.reply_timer.pending()) {
      bool any = false;
      for (std::size_t l = 0; l < chain_levels_; ++l) {
        any = any || lv[l].pending > 0;
      }
      if (!any) grp.reply_timer.cancel();
    }
  }
}

// --- completion, injection, ZLC measurement -------------------------------------

void TransferEngine::on_group_complete(Group& grp) {
  grp.complete = true;
  grp.ldp_done = true;
  grp.ldp_timer.cancel();
  grp.request_timer.cancel();
  // Originals never heard directly are what the decode rebuilt (logical
  // bytes, mode-independent — same rationale as fec_bytes_encoded).
  int rebuilt = 0;
  for (int j = 0; j < cfg_->group_size; ++j) {
    if (!grp.decoder.has(j)) ++rebuilt;
  }
  if (rebuilt > 0) {
    stats::Profiler::count(
        stats::ProfCounter::fec_bytes_decoded,
        static_cast<std::uint64_t>(rebuilt) *
            static_cast<std::uint64_t>(cfg_->shard_size_bytes));
  }
  if (m_completion_ && grp.first_arrival != sim::kTimeNever) {
    m_completion_->observe(simu_.now() - grp.first_arrival);
  }
  if (journal_) {
    // The parity decode is instantaneous in shard-count mode, so start and
    // complete land at the same t; they are separate events because real
    // decoders are not, and the analyzer's latency split wants the edge.
    const stats::EventId cause = grp.last_repair_recv_ev
                                     ? grp.last_repair_recv_ev
                                     : span_cause(grp);
    const stats::EventId start_ev =
        jnl("decode.start", grp.id, cause,
            {{"distinct", grp.decoder.distinct()}, {"llc", grp.llc}});
    const stats::EventId done_ev =
        jnl("decode.complete", grp.id, start_ev, {});
    grp.complete_ev =
        jnl("group.complete", grp.id, done_ev,
            {{"elapsed", grp.first_arrival != sim::kTimeNever
                             ? simu_.now() - grp.first_arrival
                             : 0.0},
             {"repairs_heard", grp.repair_coverage}});
  }
  // Successful recovery without duplicate NACKs nudges the adaptive
  // request window back down.
  if (grp.llc > 0) adapt_request_window(false);
  if (log_) log_->record(node_, grp.id, simu_.now());
  if (on_complete_) on_complete_(grp.id);
  // Becoming a repairer: serve any speculative queue (paper RP rules 2/3).
  // Stride fetched after the completion callback above (it may create
  // groups and grow the arena).
  if (eligible_repairer(grp) && (!cfg_->sender_only || is_source_)) {
    const ChainLevel* lv = chain_lv(grp);
    int level = -1;
    for (std::size_t l = chain_levels_; l-- > 0;) {
      if (lv[l].pending > 0) level = static_cast<int>(l);
    }
    if (level >= 0 && !grp.reply_timer.pending()) {
      const net::ZoneId zone = session_.chain()[level];
      if (journal_) {
        grp.repair_sched_ev =
            jnl("repair.scheduled", grp.id, grp.complete_ev,
                {{"level", level}, {"via", "completion"}});
      }
      if (is_source_ || session_.is_zcr(zone)) {
        grp.reply_level = level;
        fire_reply(grp.id);
      } else {
        arm_reply_timer(grp, level,
                        std::max(1e-3, cfg_->default_dist * 1.0));
      }
    }
  }
  schedule_injection(grp);
  schedule_zlc_measurement(grp);
}

void TransferEngine::schedule_injection(Group& grp) {
  if (!cfg_->injection) return;
  if (cfg_->sender_only && !is_source_) return;
  const auto& chain = session_.chain();
  // The source's root-level proactive FEC is the initial tranche; ZCRs of
  // smaller zones top up their zone to the predicted ZLC.
  ChainLevel* lv = chain_lv(grp);
  for (std::size_t l = 0; l + 1 < chain.size(); ++l) {
    if (!session_.is_zcr(chain[l]) || lv[l].injected) continue;
    lv[l].injected = true;
    // Incremental redundancy: predicted zone loss minus the coverage the
    // larger scopes are predicted to deliver into this zone (paper §3.2:
    // each zone compensates only for its own incremental loss; "should
    // too much redundancy be injected at one level, receivers in
    // subservient zones will add less").
    const int want =
        static_cast<int>(std::ceil(zlc_pred_[l] - cov_pred_[l] - 0.05));
    const int extra = std::clamp(want, 0, slice_width() - 1);
    if (extra <= 0) continue;
    const int level = static_cast<int>(l);
    if (journal_) {
      grp.inject_ev = jnl("inject.scheduled", grp.id, grp.complete_ev,
                          {{"count", extra}, {"level", level}});
    }
    // Paced burst of preemptive repairs into this zone (paper RP rule 2:
    // the ZCR transmits without waiting for NACKs).
    for (int i = 0; i < extra; ++i) {
      simu_.after(
          cfg_->repair_spacing_factor * packet_interval() * i,
          [this, g = grp.id, level] {
            auto it = groups_.find(g);
            if (it == groups_.end()) return;
            send_one_repair(it->second, level, /*preemptive=*/true);
          },
          "transfer.inject");
    }
  }
}

void TransferEngine::schedule_zlc_measurement(Group& grp) {
  if (grp.measured || grp.measure_timer.pending()) return;
  const auto& chain = session_.chain();
  bool responsible = is_source_;
  for (std::size_t l = 0; !responsible && l < chain.size(); ++l) {
    responsible = session_.is_zcr(chain[l]);
  }
  if (!responsible) return;
  double max_rtt = 0.0;
  for (net::ZoneId z : chain) {
    if (is_source_ || session_.is_zcr(z)) {
      max_rtt = std::max(max_rtt, session_.max_rtt_in_zone(z));
    }
  }
  // The paper's 2.5x window assumes NACKs are delayed at most one zone
  // RTT plus the suppression timer; our request timers (like the paper's)
  // are drawn from 2^i [C1 d_S, (C1+C2) d_S] against the distance to the
  // SOURCE, so the window must cover that too or the measurement will
  // consistently run before any NACK can fire.
  // The relevant distance is the larger of our distance to the source and
  // the zone's farthest member's (approximated by half the max in-zone
  // RTT): that member's request timer is the last NACK we must wait for.
  const double d_src = std::max(dist_to_source(), max_rtt / 2.0);
  const double nack_window =
      2.0 * (cfg_->timers.c1 + cfg_->timers.c2) * std::max(d_src, 1e-3);
  const sim::Time wait =
      cfg_->zlc_measure_rtt_factor * std::max(max_rtt, nack_window);
  grp.measure_timer.arm(wait, [this, g = grp.id] {
    auto it = groups_.find(g);
    if (it == groups_.end()) return;
    Group& grp2 = it->second;
    grp2.measured = true;
    const auto& ch = session_.chain();
    const ChainLevel* lv = chain_lv(grp2);
    const SliceLevel* sl = slice_lv(grp2);
    for (std::size_t l = 0; l < ch.size(); ++l) {
      const bool mine =
          (is_source_ && l + 1 == ch.size()) || session_.is_zcr(ch[l]);
      if (!mine) continue;
      // True ZLC if NACKs announced it; otherwise our own LLC stands in
      // (paper: "the EWMA filter will use the receiver's LLC in cases
      // where no NACKs are received").
      const int measured = std::max<int>(lv[l].zlc, grp2.llc);
      zlc_pred_[l] =
          cfg_->ewma_old * zlc_pred_[l] + cfg_->ewma_new * measured;
      if (!m_zlc_pred_.empty() && l < m_zlc_pred_.size()) {
        m_zlc_pred_[l]->set(zlc_pred_[l]);
      }
      // Coverage from larger scopes observed for this group: parity whose
      // originating level is strictly above this zone's level.
      const int my_glevel = hier_.level(ch[l]);
      int from_above = 0;
      for (int gl = 0; gl < my_glevel && gl < hier_.depth(); ++gl) {
        from_above += sl[gl].seen;
      }
      cov_pred_[l] =
          cfg_->ewma_old * cov_pred_[l] + cfg_->ewma_new * from_above;
    }
  });
}

// --- overload-testing hooks ---------------------------------------------------

void TransferEngine::nack_storm(int count, sim::Time spacing) {
  if (stopped_ || is_source_ || count <= 0) return;
  for (int i = 0; i < count; ++i) {
    simu_.after(
        spacing * static_cast<double>(i), [this] { send_storm_nack(); },
        "transfer.storm");
  }
}

void TransferEngine::send_storm_nack() {
  if (stopped_) return;
  // Lowest incomplete tracked group, else the stream head: the storm must
  // reference a real group so repairers actually queue encodes for it.
  std::uint32_t g = max_group_seen_;
  for (const auto& [id, grp2] : groups_) {
    if (!grp2.complete) {
      g = id;
      break;
    }
  }
  Group& grp = ensure_group(g);
  const auto& chain = session_.chain();
  if (chain.empty()) return;
  // Root scope on purpose: a root NACK recruits every repairer in the
  // session — the worst-case feedback implosion the budgets must absorb.
  const int level = static_cast<int>(chain.size()) - 1;
  const net::ZoneId zone = chain[level];
  auto msg = nack_pool_.make();
  msg->group = g;
  msg->zone = zone;
  msg->llc = std::max(grp.llc, 1);
  msg->needed = std::max(deficit(grp), 1);
  msg->max_id_seen = grp.max_id_seen;
  msg->sender = node_;
  msg->hints = session_.make_hints();
  ++nacks_sent_;
  if (m_nacks_sent_) m_nacks_sent_->inc();
  const std::uint64_t uid =
      net_.send(node_, hier_.repair_channel(zone), net::TrafficClass::kNack,
                nack_size(msg->hints.size()), msg, /*lossless=*/true);
  if (journal_) {
    grp.last_nack_ev = jnl("nack.sent", g, span_cause(grp),
                           {{"level", level},
                            {"llc", msg->llc},
                            {"needed", msg->needed},
                            {"storm", 1},
                            {"zone", zone}});
    journal_->bind_uid(uid, grp.last_nack_ev);
  }
}

}  // namespace sharq::sfq
