#pragma once

#include <unordered_map>

#include "net/types.hpp"
#include "rm/timers.hpp"
#include "sharqfec/budget.hpp"
#include "sim/time.hpp"

namespace sharq::stats {
class Journal;
class Metrics;
}  // namespace sharq::stats

namespace sharq::sfq {

/// SHARQFEC tunables. Defaults are the values the paper simulates with;
/// the three feature flags reproduce the ablated variants of §6.2:
///
///   scoping=false                    -> SHARQFEC(ns)
///   injection=false                  -> SHARQFEC(ni)
///   sender_only=true                 -> SHARQFEC(so)
///   all three off/on as labelled     -> SHARQFEC(ns,ni,so) == ECSRM-like
struct Config {
  // --- ablation flags (paper §6.2) ---------------------------------------
  bool scoping = true;      ///< use the administrative zone hierarchy
  bool injection = true;    ///< ZCRs preemptively inject FEC repairs
  bool sender_only = false; ///< only the source may send repairs

  // --- transfer ------------------------------------------------------------
  int group_size = 16;            ///< k original packets per group (paper)
  int shard_size_bytes = 1000;    ///< wire size of data/repair packets
  double data_rate_bps = 800e3;   ///< CBR source rate (paper)
  int max_parity = 128;           ///< parity shards available per group
  bool real_payload = false;      ///< carry & FEC-decode actual bytes
  /// Late-join policy (paper §7 / Kermode's thesis): a receiver joining
  /// mid-stream either recovers the full history through its zone's
  /// repair channels (true) or starts from the first group it hears
  /// live (false).
  bool late_join_full_history = true;

  // --- timers (paper: fixed timers, C1=C2=2, D1=D2=1) ----------------------
  rm::TimerPolicy timers{2.0, 2.0, 1.0, 1.0};
  /// Paper §7 future work, implemented here as an option: adapt the
  /// request window per receiver from observed duplicate NACKs (grow it)
  /// and recovery delay (shrink it), bounded by [c_min, c_max] factors.
  bool adaptive_timers = false;
  double adaptive_c1_min = 0.5, adaptive_c1_max = 8.0;
  double adaptive_c2_min = 1.0, adaptive_c2_max = 16.0;
  /// Repair pacing: successive repairs from one repairer are spaced at
  /// this fraction of the data inter-packet interval (paper: one half).
  double repair_spacing_factor = 0.5;
  /// Non-dedicated repairers (complete receivers that are neither the
  /// source nor a ZCR) stretch their reply-suppression delay by this
  /// factor, and re-randomize it between successive repairs instead of
  /// using the dedicated pacing above. They exist for robustness when the
  /// dedicated repairers are dead; without the deferral, one large-scope
  /// NACK recruits every complete receiver faster than the first repair
  /// can propagate and suppress them (~100x repair amplification under
  /// churn).
  double fallback_reply_defer = 3.0;
  /// NACK attempts at one scope before escalating to the parent zone
  /// (paper: "after two attempts at each zone").
  int attempts_per_scope = 2;
  /// Backoff stage cap for request timers.
  int max_backoff_stage = 10;

  // --- ZLC prediction (paper: EWMA 0.75 / 0.25) ----------------------------
  double ewma_old = 0.75;
  double ewma_new = 0.25;
  /// A ZCR measures the group's true ZLC after waiting this multiple of
  /// the RTT to its most distant known receiver (paper: 2.5).
  double zlc_measure_rtt_factor = 2.5;

  // --- session management ----------------------------------------------------
  rm::SessionStagger stagger;      ///< paper §5 staggering constants
  double rtt_gain = 0.25;          ///< EWMA gain for RTT estimates
  sim::Time default_dist = 0.050;  ///< distance before estimates converge
  sim::Time zcr_challenge_period = 4.0;   ///< ZCR re-challenge cadence
  sim::Time zcr_watchdog_period = 10.0;   ///< silence before usurping
  /// Session peers silent for this long are expired from the RTT tables
  /// (their measurements would otherwise pollute distance estimates
  /// forever after a crash). 0 disables expiry.
  sim::Time peer_expiry = 30.0;
  /// First watchdog window: elections must settle within the paper's 5 s
  /// session warm-up, so the bootstrap challenge fires early.
  sim::Time zcr_bootstrap_delay = 1.0;
  sim::Time zcr_processing_delay = 0.001; ///< challenge->response delay
  /// Takeover suppression: candidates delay proportionally to their
  /// distance so the closest receiver announces first.
  double takeover_delay_factor = 2.0;
  /// Statically configured ZCRs (paper §5.2: "a cache is placed next to
  /// the zone's Border Gateway Router"): zone -> node. Members start with
  /// these as the known ZCRs — no bootstrap election churn — but the
  /// challenge machinery still runs, so a dead static ZCR is replaced
  /// ("the challenge phase will only be necessary should one wish to
  /// provide robustness in the event that the dedicated receiver ceases
  /// to function").
  std::unordered_map<net::ZoneId, net::NodeId> static_zcrs;

  // --- resource budget (docs/ROBUSTNESS.md) ----------------------------------
  /// Per-node deterministic resource budget. The defaults keep every
  /// dimension disabled (except the dedup-window cap, which matches the
  /// pre-budget constant), so default-configured runs behave — and trace —
  /// exactly as before. Overload campaigns enable finite limits and the
  /// graceful-degradation policies behind them.
  ResourceBudget budget;

  // --- observability ---------------------------------------------------------
  /// Optional metrics registry (not owned; must outlive the protocol
  /// objects). Agents register sharqfec.* counter/gauge/histogram families
  /// here; null disables instrumentation with no hot-path cost beyond a
  /// pointer test.
  stats::Metrics* metrics = nullptr;
  /// Optional recovery-lifecycle flight recorder (not owned; must outlive
  /// the protocol objects). Engines journal causally linked lifecycle
  /// events here (docs/OBSERVABILITY.md catalog); null disables the
  /// recorder the same way.
  stats::Journal* journal = nullptr;
};

}  // namespace sharq::sfq
