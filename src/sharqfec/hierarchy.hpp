#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.hpp"

namespace sharq::sfq {

/// The protocol's view of the scope hierarchy plus the channels built on
/// it: one global data channel, and a repair + session channel per zone.
///
/// With scoping enabled this mirrors the network's ZoneHierarchy (zone ids
/// are shared, so the network's administrative boundaries actually confine
/// the channels). With scoping disabled — the paper's "ns" ablation — the
/// hierarchy collapses to a single unscoped root zone covering everyone,
/// turning SHARQFEC into a flat hybrid ARQ/FEC protocol.
class Hierarchy {
 public:
  Hierarchy(net::Network& net, bool scoping);

  bool scoping() const { return scoping_; }

  net::ChannelId data_channel() const { return data_channel_; }
  net::ChannelId repair_channel(net::ZoneId z) const;
  net::ChannelId session_channel(net::ZoneId z) const;

  /// Zone of a repair/session channel (kNoZone for the data channel).
  net::ZoneId zone_of_channel(net::ChannelId ch) const;

  net::ZoneId root() const { return root_; }
  net::ZoneId parent(net::ZoneId z) const { return info_.at(z).parent; }
  int level(net::ZoneId z) const { return info_.at(z).level; }

  /// Number of levels in the hierarchy (root-only = 1).
  int depth() const { return depth_; }

  /// The node's zones, smallest first, ending at the root.
  const std::vector<net::ZoneId>& chain(net::NodeId n) const;

  net::ZoneId smallest_zone(net::NodeId n) const { return chain(n).front(); }

  /// Smallest zone containing both nodes.
  net::ZoneId common_zone(net::NodeId a, net::NodeId b) const;

  bool zone_contains(net::ZoneId z, net::NodeId n) const;

  /// Subscribe a member to the data channel and to the repair + session
  /// channels of every zone on its chain.
  void join(net::NodeId n);

  /// Undo join(): unsubscribe from every channel and drop protocol-level
  /// membership. Used when a member crashes or leaves the session.
  void leave(net::NodeId n);

  /// Members that have join()ed, per zone (protocol-level membership).
  const std::unordered_set<net::NodeId>& joined(net::ZoneId z) const {
    return info_.at(z).joined;
  }

  /// All zone ids, root first (BFS order).
  const std::vector<net::ZoneId>& all_zones() const { return order_; }

 private:
  struct ZoneInfo {
    net::ZoneId parent = net::kNoZone;
    int level = 0;
    net::ChannelId repair = net::kNoChannel;
    net::ChannelId session = net::kNoChannel;
    std::unordered_set<net::NodeId> joined;
  };

  net::Network& net_;
  bool scoping_;
  int depth_ = 1;
  net::ZoneId root_ = net::kNoZone;
  net::ChannelId data_channel_ = net::kNoChannel;
  std::unordered_map<net::ZoneId, ZoneInfo> info_;
  std::vector<net::ZoneId> order_;
  std::unordered_map<net::ChannelId, net::ZoneId> by_channel_;
  mutable std::unordered_map<net::NodeId, std::vector<net::ZoneId>> chains_;
};

}  // namespace sharq::sfq
