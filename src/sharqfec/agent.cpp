#include "sharqfec/agent.hpp"

#include <algorithm>
#include <string>

#include "fec/cpu_features.hpp"

namespace sharq::sfq {

const char* Agent::fec_kernel_name() {
  return fec::cpu::kernel_name(fec::cpu::active_kernel());
}

Agent::Agent(net::Network& net, Hierarchy& hier,
             std::shared_ptr<const Config> cfg, net::NodeId node,
             bool is_source, rm::DeliveryLog* log)
    : is_source_(is_source) {
  net.attach(node, this);
  hier.join(node);
  stats::Metrics* metrics = cfg->metrics;
  journal_ = cfg->journal;
  budget_ = std::make_unique<BudgetTracker>(cfg->budget, node,
                                            net.simulator_for(node), metrics,
                                            journal_);
  session_ = std::make_unique<SessionManager>(net, hier, cfg, node, is_source,
                                              budget_.get());
  transfer_ = std::make_unique<TransferEngine>(net, hier, *session_,
                                               std::move(cfg), node, is_source,
                                               log, budget_.get());
  session_->set_progress_provider([this] {
    return std::make_pair(transfer_->max_group_seen(),
                          transfer_->seen_any_data());
  });
  session_->set_progress_listener(
      [this](std::uint32_t g) { transfer_->note_remote_progress(g); });
  if (metrics) {
    const stats::Labels by_node{{"node", std::to_string(node)}};
    m_corrupt_rejects_ = &metrics->counter("sharqfec.corrupt_rejects", by_node);
    m_duplicate_rejects_ =
        &metrics->counter("sharqfec.duplicate_rejects", by_node);
    if (budget_->limits().any_enabled()) {
      m_dedup_shed_ = &metrics->counter("sharqfec.dedup_shed", by_node);
    }
  }
}

bool Agent::first_sighting(std::uint64_t uid) {
  if (!seen_uids_.insert(uid).second) return false;
  seen_order_.push_back(uid);
  budget_->add_state(kDedupEntryBytes);
  const std::size_t cap = budget_->limits().dedup_entries;
  if (cap == 0) {
    if (seen_order_.size() > dedup_high_water_) {
      dedup_high_water_ = seen_order_.size();
    }
    return true;
  }
  // Under state pressure the window target halves: the oldest entries are
  // the least likely to ever match again (link-level duplicates arrive
  // within a reorder window, not minutes later), so they are the cheapest
  // state to shed. Evictions past normal rotation count as sheds.
  const std::size_t target =
      budget_->over_state() ? std::max<std::size_t>(cap / 2, 1) : cap;
  std::size_t shed = 0;
  while (seen_order_.size() > target) {
    if (seen_order_.size() <= cap) ++shed;
    seen_uids_.erase(seen_order_.front());
    seen_order_.pop_front();
    budget_->sub_state(kDedupEntryBytes);
  }
  if (shed > 0) {
    dedup_shed_ += shed;
    if (m_dedup_shed_) m_dedup_shed_->inc(shed);
    budget_->note_shed("dedup");
    // Journal only the bulk shrink (the transition into pressure); the
    // steady one-per-insert trickle while pressure lasts would emit one
    // line per packet.
    if (journal_ && shed > 1) {
      journal_->emit("shed.dedup", network().simulator_for(node()).now(), node(),
                     /*group=*/-1, /*cause=*/0,
                     {{"evicted", std::uint64_t{shed}},
                      {"target", std::uint64_t{target}}});
    }
  }
  // High water is measured after shedding, so `dedup_high_water() <=
  // dedup_entries` is an exact invariant the chaos campaign can assert.
  if (seen_order_.size() > dedup_high_water_) {
    dedup_high_water_ = seen_order_.size();
  }
  return true;
}

void Agent::on_receive(const net::Packet& packet) {
  // Hostile-wire hardening, in checksum order: a corrupt packet's payload
  // is untrustworthy (reject before any field is read), and a duplicated
  // uid has already been processed (idempotence without asking every
  // handler to re-check).
  if (packet.corrupted) {
    ++corrupt_rejects_;
    if (m_corrupt_rejects_) m_corrupt_rejects_->inc();
    if (journal_) {
      journal_->emit("pkt.rejected", network().simulator_for(node()).now(), node(),
                     /*group=*/-1, journal_->uid_event(packet.uid),
                     {{"class", net::to_string(packet.cls)},
                      {"reason", "corrupt"}});
    }
    return;
  }
  if (!first_sighting(packet.uid)) {
    ++duplicate_rejects_;
    if (m_duplicate_rejects_) m_duplicate_rejects_->inc();
    if (journal_) {
      journal_->emit("pkt.rejected", network().simulator_for(node()).now(), node(),
                     /*group=*/-1, journal_->uid_event(packet.uid),
                     {{"class", net::to_string(packet.cls)},
                      {"reason", "duplicate"}});
    }
    return;
  }
  if (transfer_->handle(packet)) return;
  session_->handle(packet);
}

}  // namespace sharq::sfq
