#include "sharqfec/agent.hpp"

#include <string>

#include "fec/cpu_features.hpp"

namespace sharq::sfq {

const char* Agent::fec_kernel_name() {
  return fec::cpu::kernel_name(fec::cpu::active_kernel());
}

Agent::Agent(net::Network& net, Hierarchy& hier,
             std::shared_ptr<const Config> cfg, net::NodeId node,
             bool is_source, rm::DeliveryLog* log)
    : is_source_(is_source) {
  net.attach(node, this);
  hier.join(node);
  stats::Metrics* metrics = cfg->metrics;
  journal_ = cfg->journal;
  session_ = std::make_unique<SessionManager>(net, hier, cfg, node, is_source);
  transfer_ = std::make_unique<TransferEngine>(net, hier, *session_,
                                               std::move(cfg), node, is_source,
                                               log);
  session_->set_progress_provider([this] {
    return std::make_pair(transfer_->max_group_seen(),
                          transfer_->seen_any_data());
  });
  session_->set_progress_listener(
      [this](std::uint32_t g) { transfer_->note_remote_progress(g); });
  if (metrics) {
    const stats::Labels by_node{{"node", std::to_string(node)}};
    m_corrupt_rejects_ = &metrics->counter("sharqfec.corrupt_rejects", by_node);
    m_duplicate_rejects_ =
        &metrics->counter("sharqfec.duplicate_rejects", by_node);
  }
}

bool Agent::first_sighting(std::uint64_t uid) {
  if (!seen_uids_.insert(uid).second) return false;
  seen_order_.push_back(uid);
  if (seen_order_.size() > kDedupWindow) {
    seen_uids_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return true;
}

void Agent::on_receive(const net::Packet& packet) {
  // Hostile-wire hardening, in checksum order: a corrupt packet's payload
  // is untrustworthy (reject before any field is read), and a duplicated
  // uid has already been processed (idempotence without asking every
  // handler to re-check).
  if (packet.corrupted) {
    ++corrupt_rejects_;
    if (m_corrupt_rejects_) m_corrupt_rejects_->inc();
    if (journal_) {
      journal_->emit("pkt.rejected", network().simulator().now(), node(),
                     /*group=*/-1, journal_->uid_event(packet.uid),
                     {{"class", net::to_string(packet.cls)},
                      {"reason", "corrupt"}});
    }
    return;
  }
  if (!first_sighting(packet.uid)) {
    ++duplicate_rejects_;
    if (m_duplicate_rejects_) m_duplicate_rejects_->inc();
    if (journal_) {
      journal_->emit("pkt.rejected", network().simulator().now(), node(),
                     /*group=*/-1, journal_->uid_event(packet.uid),
                     {{"class", net::to_string(packet.cls)},
                      {"reason", "duplicate"}});
    }
    return;
  }
  if (transfer_->handle(packet)) return;
  session_->handle(packet);
}

}  // namespace sharq::sfq
