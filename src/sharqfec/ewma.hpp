#pragma once

namespace sharq::sfq {

/// Shared EWMA sentinel convention for protocol estimators (inter-arrival
/// gap, per-level RTT): a slot seeded with kEwmaUnset holds no estimate;
/// the first accepted sample seeds it directly; later samples blend in
/// with gain `gain`. Centralised here because transfer.cpp and
/// session_manager.cpp previously disagreed on the predicate (`< 0.0` to
/// write vs `> 0.0` to read), which made an estimator seeded with a
/// legitimate 0.0 sample invisible to readers.
inline constexpr double kEwmaUnset = -1.0;

/// True once the slot holds an estimate. The complement of the update
/// predicate, so a 0.0 first sample both seeds and reads back.
inline bool ewma_seeded(double slot) { return slot >= 0.0; }

/// Fold `sample` into `slot`. Negative samples are rejected (they would
/// masquerade as the unset sentinel); the first accepted sample seeds the
/// slot verbatim.
inline void ewma_update(double& slot, double sample, double gain) {
  if (sample < 0.0) return;
  if (!ewma_seeded(slot)) {
    slot = sample;
  } else {
    slot = (1.0 - gain) * slot + gain * sample;
  }
}

}  // namespace sharq::sfq
