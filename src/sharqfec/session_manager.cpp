#include "sharqfec/session_manager.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sharqfec/ewma.hpp"
#include "stats/profiler.hpp"

namespace sharq::sfq {

namespace {
constexpr double kDistEps = 1e-4;  // exact-tie margin for suppression

// Accounted bytes per RTT-table / bridge-table entry for the budget's
// state ledger (map node + payload, with container overhead). Approximate
// by design: the ledger drives shedding decisions, not allocator truth.
constexpr std::size_t kPeerEntryBytes = 96;
constexpr std::size_t kBridgeEntryBytes = 64;

/// Election hysteresis: challenge-derived distances carry ~1 ms of noise
/// (serialization of session messages inflates some measured components
/// and not others), so a claim must beat the incumbent by a real margin
/// or the election would churn between near-equal receivers forever.
double election_margin(double a, double b) {
  return std::max(0.002, 0.05 * std::max(a, b));
}
}

SessionManager::SessionManager(net::Network& net, Hierarchy& hier,
                               std::shared_ptr<const Config> cfg,
                               net::NodeId node, bool is_source,
                               BudgetTracker* budget)
    : net_(net),
      simu_(net.simulator_for(node)),
      hier_(hier),
      cfg_(std::move(cfg)),
      node_(node),
      is_source_(is_source),
      rng_(net.simulator_for(node).rng().fork()),
      chain_(hier.chain(node)),
      session_timer_(net.simulator_for(node)),
      next_challenge_id_(static_cast<std::uint64_t>(node) << 32 | 1u),
      budget_(budget) {
  levels_.resize(chain_.size());
  session_timer_.set_tag("session.beacon");
  for (std::size_t l = 0; l < chain_.size(); ++l) {
    levels_[l].zone = chain_[l];
    levels_[l].challenge_timer = std::make_unique<sim::Timer>(simu_);
    levels_[l].challenge_timer->set_tag("session.challenge");
    levels_[l].watchdog = std::make_unique<sim::Timer>(simu_);
    levels_[l].watchdog->set_tag("session.watchdog");
    levels_[l].takeover_timer = std::make_unique<sim::Timer>(simu_);
    levels_[l].takeover_timer->set_tag("session.takeover");
  }
  register_metrics();
  // The source is the static ZCR of the root zone (the paper's "top ZCR").
  if (is_source_) {
    Level& root = levels_.back();
    root.zcr = node_;
    root.zcr_parent_dist = 0.0;
  }
  journal_ = cfg_->journal;
  // Provider-configured static ZCRs (paper §5.2): seed the election state
  // so zones converge instantly; the challenge machinery stays armed for
  // failover.
  for (Level& lv : levels_) {
    auto it = cfg_->static_zcrs.find(lv.zone);
    if (it == cfg_->static_zcrs.end()) continue;
    lv.zcr = it->second;
    lv.zcr_last_heard = 0.0;
  }
}

void SessionManager::register_metrics() {
  stats::Metrics* m = cfg_->metrics;
  if (!m) return;
  const std::string node = std::to_string(node_);
  const stats::Labels by_node{{"node", node}};
  m_rtt_samples_ = &m->counter("sharqfec.rtt_samples", by_node);
  m_challenges_ = &m->counter("sharqfec.zcr_challenges", by_node);
  m_takeovers_ = &m->counter("sharqfec.zcr_takeovers", by_node);
  m_zcr_expiries_ = &m->counter("sharqfec.zcr_expiries", by_node);
  m_peers_expired_ = &m->counter("sharqfec.peers_expired", by_node);
  // Fleet-wide high-water gauges (unlabeled; set_max across every node):
  // one registry child each regardless of receiver count.
  m_peer_table_hw_ = &m->gauge("sharqfec.peer_table_high_water");
  if (budget_ && budget_->limits().any_enabled()) {
    m_peers_shed_ = &m->counter("sharqfec.peers_shed", by_node);
  }
  m_session_msgs_.resize(chain_.size());
  for (std::size_t l = 0; l < chain_.size(); ++l) {
    const stats::Labels by_scope{{"node", node}, {"scope", std::to_string(l)}};
    m_session_msgs_[l] = &m->counter("sharqfec.session_msgs", by_scope);
  }
}

void SessionManager::memory_census(stats::MemCensus& census) const {
  // The per-entry constants are the budget ledger's (approximate by
  // design); tables shrink on expiry, so live is also the best retained
  // figure we can attribute without walking allocator internals.
  std::uint64_t tables = 0;
  for (const Level& lv : levels_) {
    tables += lv.peers.size() * kPeerEntryBytes +
              lv.bridge_rtt.size() * kBridgeEntryBytes;
  }
  census.add("peer_tables", tables, tables);
  const sim::PoolStats& ps = session_pool_.stats();
  census.add("session_pools", ps.bytes_live, ps.bytes_capacity);
}

stats::EventId SessionManager::jnl(const char* ev, stats::EventId cause,
                                   const stats::Attrs& attrs) {
  if (!journal_) return 0;
  return journal_->emit(ev, simu_.now(), node_, /*group=*/-1, cause, attrs);
}

void SessionManager::start() {
  schedule_session();
  // Election: the root has a static ZCR; every other level arms its
  // watchdog (members) and, if we ever become ZCR, a challenge timer.
  for (int l = 0; l + 1 < static_cast<int>(levels_.size()); ++l) {
    schedule_watchdog(l);
    // A statically configured ZCR (including us) skips the election, so
    // nothing has armed its challenge rounds yet. Without them it never
    // measures its distance to the parent ZCR, and with no measured claim
    // it cannot reassert against a usurper after a partition heals.
    if (levels_[l].zcr == node_) schedule_challenge(l);
  }
}

void SessionManager::stop() {
  session_timer_.cancel();
  for (Level& lv : levels_) {
    lv.challenge_timer->cancel();
    lv.watchdog->cancel();
    lv.takeover_timer->cancel();
  }
}

int SessionManager::level_index(net::ZoneId z) const {
  for (std::size_t l = 0; l < chain_.size(); ++l) {
    if (chain_[l] == z) return static_cast<int>(l);
  }
  return -1;
}

net::NodeId SessionManager::expected_bridge(int level) const {
  if (level == 0) return levels_[0].zcr;
  return levels_[level - 1].zcr;
}

bool SessionManager::participates_at(int level) const {
  if (level == 0) return true;
  // Paper: the ZCR for a zone participates in RTT determination for that
  // zone *and* its parent zone. A node can be ZCR of a zone that is not
  // its smallest (e.g. a leaf elected for the whole subtree at bootstrap),
  // so both directions must be checked.
  return levels_[level - 1].zcr == node_ || levels_[level].zcr == node_;
}

bool SessionManager::is_zcr(net::ZoneId z) const {
  const int l = level_index(z);
  return l >= 0 && levels_[l].zcr == node_;
}

net::NodeId SessionManager::zcr_of(net::ZoneId z) const {
  const int l = level_index(z);
  return l < 0 ? net::kNoNode : levels_[l].zcr;
}

double SessionManager::direct_rtt(net::ZoneId z, net::NodeId peer) const {
  const int l = level_index(z);
  if (l < 0) return -1.0;
  auto it = levels_[l].peers.find(peer);
  return it == levels_[l].peers.end() ? -1.0 : it->second.rtt;
}

double SessionManager::max_rtt_in_zone(net::ZoneId z) const {
  const int l = level_index(z);
  double best = -1.0;
  if (l >= 0) {
    for (const auto& [peer, p] : levels_[l].peers) {
      best = std::max(best, p.rtt);
    }
  }
  return best > 0.0 ? best : 2.0 * cfg_->default_dist;
}

double SessionManager::dist_to_zcr_at(int level) const {
  if (level < 0 || level >= static_cast<int>(levels_.size())) return -1.0;
  // Highest level at or below `level` where we ourselves are the ZCR:
  // distance accumulates from there upward via ZCR->parent-ZCR segments.
  int start = -1;
  for (int l = level; l >= 0; --l) {
    if (levels_[l].zcr == node_) {
      start = l;
      break;
    }
  }
  double d = 0.0;
  if (start < 0) {
    const Level& l0 = levels_[0];
    if (l0.zcr == net::kNoNode) return -1.0;
    auto it = l0.peers.find(l0.zcr);
    if (it == l0.peers.end() || it->second.rtt < 0.0) return -1.0;
    d = it->second.rtt / 2.0;
    start = 0;
  }
  for (int l = start; l < level; ++l) {
    if (levels_[l].zcr_parent_dist < 0.0) return -1.0;
    d += levels_[l].zcr_parent_dist;
  }
  return d;
}

std::vector<RttHint> SessionManager::make_hints() const {
  std::vector<RttHint> hints;
  hints.reserve(levels_.size());
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const Level& lv = levels_[l];
    if (lv.zcr == net::kNoNode) continue;
    const double d = dist_to_zcr_at(static_cast<int>(l));
    if (d < 0.0) continue;
    hints.push_back(RttHint{lv.zone, lv.zcr, d});
  }
  return hints;
}

double SessionManager::estimate_dist(net::NodeId peer,
                                     const std::vector<RttHint>& hints) const {
  if (peer == node_) return 0.0;
  // Direct measurement at any level we participate in wins.
  for (const Level& lv : levels_) {
    auto it = lv.peers.find(peer);
    if (it != lv.peers.end() && it->second.rtt >= 0.0) {
      return it->second.rtt / 2.0;
    }
  }
  const net::ZoneId common = hier_.common_zone(node_, peer);
  if (common == net::kNoZone) return cfg_->default_dist;
  const int lc = level_index(common);
  if (lc < 0) return cfg_->default_dist;

  const net::NodeId bridge = expected_bridge(lc);
  if (bridge == net::kNoNode) return cfg_->default_dist;
  const double base = dist_to_zcr_at(lc == 0 ? 0 : lc - 1);
  if (base < 0.0) return cfg_->default_dist;
  if (peer == bridge) return base;

  const Level& lv = levels_[lc];
  // Peer participates directly in the common zone?
  auto direct = lv.bridge_rtt.find(peer);
  if (direct != lv.bridge_rtt.end() && direct->second >= 0.0) {
    return base + direct->second / 2.0;
  }
  // Peer sits behind a sibling zone: find its hint for the child-of-common
  // zone and bridge through that zone's ZCR.
  for (const RttHint& h : hints) {
    if (h.zone == common || hier_.zone_contains(h.zone, node_)) continue;
    // h.zone must be a child of the common zone on the peer's side.
    // (The hierarchy is shared configuration, so parent() is available.)
    if (!hier_.scoping()) break;
    if (hier_.parent(h.zone) != common) continue;
    if (h.zcr == bridge) return base + h.dist;
    auto sib = lv.bridge_rtt.find(h.zcr);
    if (sib != lv.bridge_rtt.end() && sib->second >= 0.0) {
      return base + sib->second / 2.0 + h.dist;
    }
  }
  return cfg_->default_dist;
}

void SessionManager::ewma_rtt(double& slot, double sample) const {
  // Shared sentinel convention with the transfer engine's inter-arrival
  // estimator (sharqfec/ewma.hpp): unset slots are negative, the first
  // accepted sample seeds directly.
  ewma_update(slot, sample, cfg_->rtt_gain);
}

// --- session messages -------------------------------------------------------

void SessionManager::schedule_session() {
  const sim::Time delay = cfg_->stagger.next_delay(rng_, session_rounds_);
  session_timer_.arm(delay, [this] {
    SHARQ_PROF_SCOPE(session);
    send_session_messages();
    ++session_rounds_;
    // Prune challenge timings that never saw a response.
    for (auto it = challenges_.begin(); it != challenges_.end();) {
      if (simu_.now() - it->second.heard_at > 5.0) {
        it = challenges_.erase(it);
      } else {
        ++it;
      }
    }
    expire_silent_peers();
    schedule_session();
  });
}

void SessionManager::expire_silent_peers() {
  if (cfg_->peer_expiry <= 0.0) return;
  for (Level& lv : levels_) {
    for (auto it = lv.peers.begin(); it != lv.peers.end();) {
      if (simu_.now() - it->second.heard_at > cfg_->peer_expiry) {
        // Crashed (or partitioned-away) peer: its RTT samples and bridge
        // entries would otherwise feed stale distances into repair timers
        // forever. Re-arrival simply re-measures from scratch.
        if (lv.bridge_rtt.erase(it->first) > 0 && budget_) {
          budget_->sub_state(kBridgeEntryBytes);
        }
        it = lv.peers.erase(it);
        if (budget_) budget_->sub_state(kPeerEntryBytes);
        ++peers_expired_;
        if (m_peers_expired_) m_peers_expired_->inc();
      } else {
        ++it;
      }
    }
  }
}

void SessionManager::reserve_peer_slot(int level) {
  if (!budget_) return;
  Level& lv = levels_[level];
  std::size_t cap = budget_->limits().peers_per_level;
  if (budget_->over_state()) {
    // State pressure freezes table growth: the effective cap is the
    // current size, so inserting a new peer replaces the oldest one.
    cap = cap > 0 ? std::min(cap, lv.peers.size()) : lv.peers.size();
    if (cap == 0) cap = 1;  // always room to track the newest peer
  }
  if (cap == 0) return;
  while (lv.peers.size() >= cap && !lv.peers.empty()) {
    // Oldest by (heard_at, node id): the map iterates node-ascending, so
    // keeping the first minimum makes the tie-break the lower node id —
    // deterministic regardless of insertion history.
    auto victim = lv.peers.begin();
    for (auto it = lv.peers.begin(); it != lv.peers.end(); ++it) {
      if (it->second.heard_at < victim->second.heard_at) victim = it;
    }
    if (lv.bridge_rtt.erase(victim->first) > 0) {
      budget_->sub_state(kBridgeEntryBytes);
    }
    ++peers_shed_;
    if (m_peers_shed_) m_peers_shed_->inc();
    if (journal_) {
      jnl("shed.peer", 0,
          {{"level", level},
           {"peer", victim->first},
           {"idle", simu_.now() - victim->second.heard_at}});
    }
    lv.peers.erase(victim);
    budget_->sub_state(kPeerEntryBytes);
    budget_->note_shed("peers");
  }
}

std::size_t SessionManager::tracked_peer_count() const {
  std::size_t n = 0;
  for (const Level& lv : levels_) n += lv.peers.size() + lv.bridge_rtt.size();
  return n;
}

void SessionManager::send_session_messages() {
  for (int l = 0; l < static_cast<int>(levels_.size()); ++l) {
    if (participates_at(l)) send_session_for_level(l);
  }
}

void SessionManager::send_session_for_level(int level) {
  Level& lv = levels_[level];
  auto msg = session_pool_.make();
  msg->sender = node_;
  msg->zone = lv.zone;
  msg->ts = simu_.now();
  msg->zcr = lv.zcr;
  msg->zcr_parent_dist = lv.zcr_parent_dist;
  if (progress_) {
    auto [mg, any] = progress_();
    msg->max_group_seen = mg;
    msg->seen_any_data = any;
  }
  msg->entries.reserve(lv.peers.size());
  for (const auto& [peer, p] : lv.peers) {
    SessionMsg::Entry e;
    e.peer = peer;
    if (p.clock_valid) {
      e.peer_ts = p.last_ts;
      e.delay = simu_.now() - p.heard_at;
    }
    e.rtt_est = p.rtt;
    msg->entries.push_back(e);
  }
  ++session_sent_;
  if (!m_session_msgs_.empty()) m_session_msgs_[level]->inc();
  net_.send(node_, hier_.session_channel(lv.zone), net::TrafficClass::kSession,
            session_size(msg->entries.size()), msg, /*lossless=*/true);
}

void SessionManager::handle_session(const SessionMsg& msg, int level) {
  Level& lv = levels_[level];
  // Learn/refresh the zone's ZCR.
  if (msg.zcr != net::kNoNode) {
    if (lv.zcr == net::kNoNode) {
      adopt_zcr(level, msg.zcr, msg.zcr_parent_dist);
    } else if (msg.sender == msg.zcr && msg.zcr == lv.zcr &&
               msg.zcr_parent_dist >= 0.0) {
      lv.zcr_parent_dist = msg.zcr_parent_dist;
    } else if (msg.sender == lv.zcr && msg.zcr != msg.sender &&
               msg.sender != node_) {
      // The node we believed to be ZCR disclaims the role: adopt its view
      // so a zone whose takeovers crossed in flight re-converges.
      adopt_zcr(level, msg.zcr, msg.zcr_parent_dist);
    } else if (msg.zcr != lv.zcr && msg.sender == msg.zcr &&
               msg.zcr_parent_dist >= 0.0) {
      // Rival claimant: a ZCR that was partitioned away misses the
      // zone's re-election (takeovers are one-shot), so after the heal
      // both old and new ZCR advertise the role in their session
      // messages forever. Resolve the split deterministically with the
      // same ordering elections use: adopt the better claim, and if we
      // hold the role with the better claim, reassert it to the rival.
      if (claim_beats(msg.zcr_parent_dist, msg.zcr, lv.zcr_parent_dist,
                      lv.zcr)) {
        adopt_zcr(level, msg.zcr, msg.zcr_parent_dist);
      } else if (lv.zcr == node_ && lv.zcr_parent_dist >= 0.0) {
        become_zcr(level, lv.zcr_parent_dist);
      }
    }
  }
  if (msg.sender == lv.zcr) lv.zcr_last_heard = simu_.now();

  // Clock bookkeeping + RTT measurement for channels we participate in.
  auto pit = lv.peers.find(msg.sender);
  if (pit == lv.peers.end()) {
    reserve_peer_slot(level);
    pit = lv.peers.emplace(msg.sender, Peer{}).first;
    if (budget_) budget_->add_state(kPeerEntryBytes);
    if (lv.peers.size() > peers_high_water_) {
      peers_high_water_ = lv.peers.size();
    }
    if (m_peer_table_hw_) {
      m_peer_table_hw_->set_max(static_cast<double>(lv.peers.size()));
    }
  }
  Peer& peer = pit->second;
  peer.last_ts = msg.ts;
  peer.heard_at = simu_.now();
  peer.clock_valid = true;
  for (const SessionMsg::Entry& e : msg.entries) {
    if (e.peer == node_ && e.peer_ts > 0.0) {
      const double rtt = simu_.now() - e.peer_ts - e.delay;
      if (rtt > 0.0) {
        ewma_rtt(peer.rtt, rtt);
        if (m_rtt_samples_) m_rtt_samples_->inc();
      }
      break;
    }
  }
  // Bridge-table learning: announcements from the bridge ZCR expose its
  // RTTs to the peers of this zone.
  if (msg.sender == expected_bridge(level)) {
    const std::size_t bridge_cap =
        budget_ ? budget_->limits().peers_per_level : 0;
    for (const SessionMsg::Entry& e : msg.entries) {
      if (e.rtt_est < 0.0) continue;
      auto slot = lv.bridge_rtt.find(e.peer);
      if (slot == lv.bridge_rtt.end()) {
        // At capacity (or frozen by state pressure) the table keeps its
        // current entries rather than churning: refreshed RTTs for known
        // peers beat first sightings of unknown ones. A bound, not a shed
        // — it re-applies every beacon, so it is counted but not
        // journaled.
        const bool frozen = budget_ && budget_->over_state();
        if ((bridge_cap > 0 && lv.bridge_rtt.size() >= bridge_cap) ||
            (frozen && !lv.bridge_rtt.empty())) {
          ++bridge_skips_;
          continue;
        }
        slot = lv.bridge_rtt.emplace(e.peer, -1.0).first;
        if (budget_) budget_->add_state(kBridgeEntryBytes);
        if (lv.bridge_rtt.size() > bridge_high_water_) {
          bridge_high_water_ = lv.bridge_rtt.size();
        }
      }
      ewma_rtt(slot->second, e.rtt_est);
    }
  }
  if (on_progress_ && msg.seen_any_data) on_progress_(msg.max_group_seen);
}

// --- ZCR election -----------------------------------------------------------

void SessionManager::schedule_challenge(int level) {
  Level& lv = levels_[level];
  if (lv.zcr != node_) return;
  if (level + 1 >= static_cast<int>(levels_.size())) return;  // root
  const sim::Time period =
      cfg_->zcr_challenge_period * rng_.uniform(0.8, 1.2);
  lv.challenge_timer->arm(period, [this, level] {
    SHARQ_PROF_SCOPE(session);
    if (levels_[level].zcr == node_) {
      issue_challenge(level);
      schedule_challenge(level);
    }
  });
}

void SessionManager::schedule_watchdog(int level) {
  Level& lv = levels_[level];
  // The first firing comes quickly (bootstrap election inside the session
  // warm-up window); steady-state monitoring is much lazier.
  const bool bootstrap = lv.zcr == net::kNoNode;
  const sim::Time period =
      bootstrap ? cfg_->zcr_bootstrap_delay * rng_.uniform(1.0, 2.0)
                : cfg_->zcr_watchdog_period * rng_.uniform(1.0, 1.5);
  lv.watchdog->arm(period, [this, level] {
    SHARQ_PROF_SCOPE(session);
    Level& l = levels_[level];
    const bool parent_known =
        level + 1 < static_cast<int>(levels_.size()) &&
        levels_[level + 1].zcr != net::kNoNode;
    const bool zcr_silent =
        l.zcr == net::kNoNode ||
        (l.zcr != node_ && (l.zcr_last_heard == sim::kTimeNever ||
                            simu_.now() - l.zcr_last_heard >
                                cfg_->zcr_watchdog_period));
    // Top-down rule: children back off until the parent zone has a ZCR.
    if (parent_known && zcr_silent && l.zcr != node_) {
      // A silent ZCR is presumed dead: drop its (possibly better) claim
      // so the surviving receivers can elect among themselves.
      if (l.zcr != net::kNoNode &&
          (l.zcr_last_heard == sim::kTimeNever ||
           simu_.now() - l.zcr_last_heard > cfg_->zcr_watchdog_period)) {
        if (journal_) {
          jnl("zcr.expired", 0, {{"old_zcr", l.zcr}, {"zone", l.zone}});
        }
        l.zcr = net::kNoNode;
        l.zcr_parent_dist = -1.0;
        ++zcr_expiries_;
        if (m_zcr_expiries_) m_zcr_expiries_->inc();
      }
      issue_challenge(level);
    }
    schedule_watchdog(level);
  });
}

void SessionManager::issue_challenge(int level) {
  if (level + 1 >= static_cast<int>(levels_.size())) return;
  const net::ZoneId parent_zone = chain_[level + 1];
  auto msg = std::make_shared<ZcrChallengeMsg>();
  msg->challenger = node_;
  msg->zone = chain_[level];
  msg->challenge_id = next_challenge_id_++;
  challenges_[msg->challenge_id] =
      PendingChallenge{msg->zone, node_, simu_.now(), true};
  ++challenges_sent_;
  if (m_challenges_) m_challenges_->inc();
  const std::uint64_t uid =
      net_.send(node_, hier_.session_channel(parent_zone),
                net::TrafficClass::kControl, 40, msg, /*lossless=*/true);
  if (journal_) {
    // Challenges start rounds (periodic or watchdog-driven): cause 0.
    journal_->bind_uid(
        uid, jnl("zcr.challenge", 0,
                 {{"challenge_id", msg->challenge_id}, {"zone", msg->zone}}));
  }
}

void SessionManager::handle_challenge(const ZcrChallengeMsg& msg) {
  const int l = level_index(msg.zone);
  if (l >= 0 && msg.challenger != node_) {
    // We are a member of the challenged zone: time the exchange.
    challenges_[msg.challenge_id] =
        PendingChallenge{msg.zone, msg.challenger, simu_.now(), false};
  }
  // If we are the ZCR of the challenged zone's parent, respond (the
  // challenge may come from a sibling zone not on our chain).
  const net::ZoneId parent_zone = hier_.parent(msg.zone);
  if (parent_zone == net::kNoZone) return;
  const int pl = level_index(parent_zone);
  if (pl < 0 || levels_[pl].zcr != node_) return;
  auto resp = std::make_shared<ZcrResponseMsg>();
  resp->responder = node_;
  resp->zone = msg.zone;
  resp->challenge_id = msg.challenge_id;
  resp->processing_delay = cfg_->zcr_processing_delay;
  simu_.after(
      cfg_->zcr_processing_delay,
      [this, resp, parent_zone, cause = cause_in_] {
        const std::uint64_t uid =
            net_.send(node_, hier_.session_channel(parent_zone),
                      net::TrafficClass::kControl, 40, resp, /*lossless=*/true);
        if (journal_) {
          journal_->bind_uid(
              uid, jnl("zcr.response", cause,
                       {{"challenge_id", resp->challenge_id},
                        {"zone", resp->zone}}));
        }
      },
      "session.response");
}

void SessionManager::handle_response(const ZcrResponseMsg& msg) {
  auto it = challenges_.find(msg.challenge_id);
  if (it == challenges_.end()) return;
  const PendingChallenge pc = it->second;
  challenges_.erase(it);
  const int l = level_index(pc.zone);
  if (l < 0) return;
  Level& lv = levels_[l];

  double my_dist = -1.0;
  if (pc.mine) {
    // Round trip we initiated: exact distance to the parent ZCR.
    my_dist =
        (simu_.now() - pc.heard_at - msg.processing_delay) / 2.0;
  } else {
    // Paper's formula: dist_to_parentZCR = dist_to_localZCR +
    // (t_reply - t_challenge) - dist(localZCR -> parentZCR).
    const double to_local = dist_to_zcr_at(l);
    if (to_local < 0.0 || lv.zcr_parent_dist < 0.0) return;
    my_dist = to_local + (simu_.now() - pc.heard_at - msg.processing_delay) -
              lv.zcr_parent_dist;
  }
  if (my_dist < 0.0) my_dist = 0.0;

  if (lv.zcr == node_) {
    // Refresh our own advertised distance — but only from rounds we
    // initiated. The observed-challenge formula is relative to the local
    // ZCR, i.e. ourselves, so it degenerates to (elapsed - zcr_parent_dist)
    // and shrinks our claim a little every observed round; a usurper
    // refreshing from it becomes unbeatable by the legitimate ZCR (found
    // by the chaos soak: post-partition re-election never converged back).
    if (pc.mine) lv.zcr_parent_dist = my_dist;
    return;
  }
  consider_takeover(l, my_dist);
}

void SessionManager::consider_takeover(int level, double my_dist) {
  Level& lv = levels_[level];
  if (!claim_beats(my_dist, node_, lv.zcr_parent_dist, lv.zcr)) return;
  if (lv.takeover_timer->pending() && lv.candidate_dist <= my_dist) return;
  lv.candidate_dist = my_dist;
  lv.takeover_cause = cause_in_;  // the response that revealed a better claim
  const sim::Time delay =
      cfg_->takeover_delay_factor * my_dist + rng_.uniform(0.0, 0.01);
  lv.takeover_timer->arm(delay, [this, level] {
    Level& l = levels_[level];
    if (l.zcr == node_) return;
    if (!claim_beats(l.candidate_dist, node_, l.zcr_parent_dist, l.zcr)) {
      return;  // someone better announced meanwhile
    }
    become_zcr(level, l.candidate_dist);
  });
}

void SessionManager::become_zcr(int level, double dist_to_parent) {
  Level& lv = levels_[level];
  if (getenv("SHARQ_TRACE_ZCR")) {
    std::fprintf(stderr, "[%.3f] node %d becomes ZCR of zone %d dist=%.4f\n",
                 simu_.now(), node_, lv.zone, dist_to_parent);
  }
  lv.zcr = node_;
  lv.zcr_parent_dist = dist_to_parent;
  lv.zcr_last_heard = simu_.now();
  stats::EventId takeover_ev = 0;
  if (journal_) {
    takeover_ev = jnl("zcr.takeover", lv.takeover_cause,
                      {{"dist", dist_to_parent}, {"zone", lv.zone}});
    lv.takeover_cause = 0;
  }
  auto announce = [&](net::ZoneId zone) {
    auto msg = std::make_shared<ZcrTakeoverMsg>();
    msg->new_zcr = node_;
    msg->zone = lv.zone;
    msg->dist_to_parent = dist_to_parent;
    ++takeovers_sent_;
    if (m_takeovers_) m_takeovers_->inc();
    const std::uint64_t uid =
        net_.send(node_, hier_.session_channel(zone),
                  net::TrafficClass::kControl, 32, msg, /*lossless=*/true);
    if (journal_) journal_->bind_uid(uid, takeover_ev);
  };
  announce(lv.zone);
  if (level + 1 < static_cast<int>(levels_.size())) {
    announce(chain_[level + 1]);
  }
  schedule_challenge(level);
}

void SessionManager::adopt_zcr(int level, net::NodeId who, double dist) {
  Level& lv = levels_[level];
  lv.zcr = who;
  if (dist >= 0.0) lv.zcr_parent_dist = dist;
  lv.zcr_last_heard = simu_.now();
  if (who == node_) schedule_challenge(level);
}

/// Deterministic claim ordering so concurrent takeovers converge on every
/// node regardless of arrival order: smaller distance wins, node id breaks
/// near-ties.
bool SessionManager::claim_beats(double dist_a, net::NodeId a, double dist_b,
                                 net::NodeId b) {
  if (b == net::kNoNode || dist_b < 0.0) return true;
  const double margin = election_margin(dist_a, dist_b);
  if (dist_a + margin < dist_b) return true;                 // clearly closer
  if (dist_a < dist_b + margin && a < b) return true;        // near-tie: id
  return false;
}

void SessionManager::handle_takeover(const ZcrTakeoverMsg& msg) {
  const int l = level_index(msg.zone);
  if (l < 0) return;  // a sibling zone's affair
  Level& lv = levels_[l];
  if (lv.zcr == node_ && msg.new_zcr != node_) {
    // Reassert if we are in fact the better claimant (paper: the true ZCR
    // "reasserts its superiority as soon as the usurper attempts to issue
    // a takeover message").
    if (lv.zcr_parent_dist >= 0.0 &&
        claim_beats(lv.zcr_parent_dist, node_, msg.dist_to_parent,
                    msg.new_zcr)) {
      lv.takeover_cause = cause_in_;  // reassertion answers the usurper
      become_zcr(l, lv.zcr_parent_dist);
      return;
    }
  }
  // Adopt only a strictly better claim than the incumbent's; stale or
  // worse claims are ignored so crossing takeovers cannot split the zone.
  if (msg.new_zcr != lv.zcr &&
      !claim_beats(msg.dist_to_parent, msg.new_zcr, lv.zcr_parent_dist,
                   lv.zcr)) {
    return;
  }
  if (lv.takeover_timer->pending() &&
      !claim_beats(lv.candidate_dist, node_, msg.dist_to_parent,
                   msg.new_zcr)) {
    lv.takeover_timer->cancel();
  }
  adopt_zcr(l, msg.new_zcr, msg.dist_to_parent);
}

// --- dispatch ----------------------------------------------------------------

bool SessionManager::handle(const net::Packet& packet) {
  SHARQ_PROF_SCOPE(session);
  // Cross-node causality: whatever this packet triggers is caused by the
  // event that sent it (bound to the uid on the sender's side).
  cause_in_ = journal_ ? journal_->uid_event(packet.uid) : 0;
  if (const auto* s = packet.as<SessionMsg>()) {
    const int l = level_index(s->zone);
    if (l >= 0) handle_session(*s, l);
    return true;
  }
  if (const auto* c = packet.as<ZcrChallengeMsg>()) {
    handle_challenge(*c);
    return true;
  }
  if (const auto* r = packet.as<ZcrResponseMsg>()) {
    handle_response(*r);
    return true;
  }
  if (const auto* t = packet.as<ZcrTakeoverMsg>()) {
    handle_takeover(*t);
    return true;
  }
  return false;
}

}  // namespace sharq::sfq
