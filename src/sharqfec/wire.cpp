#include "sharqfec/wire.hpp"

#include <cstring>

namespace sharq::sfq::wire {

namespace {

// --- primitive writer ---------------------------------------------------------

class Writer {
 public:
  explicit Writer(MsgType type) {
    buf_.push_back(static_cast<std::uint8_t>(type));
    buf_.push_back(kWireVersion);
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void bytes(const std::vector<std::uint8_t>* v) {
    if (v == nullptr) {
      u32(0xffffffffu);  // distinguish "no payload" from "empty payload"
      return;
    }
    u32(static_cast<std::uint32_t>(v->size()));
    buf_.insert(buf_.end(), v->begin(), v->end());
  }
  void hints(const std::vector<RttHint>& hs) {
    u16(static_cast<std::uint16_t>(hs.size()));
    for (const RttHint& h : hs) {
      i32(h.zone);
      i32(h.zcr);
      f64(h.dist);
    }
  }

  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

// --- primitive bounds-checked reader -------------------------------------------

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() { return take(1) ? data_[pos_ - 1] : 0; }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= std::uint16_t(data_[pos_ - 2 + i]) << (8 * i);
    return v;
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(data_[pos_ - 4 + i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(data_[pos_ - 8 + i]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::shared_ptr<const std::vector<std::uint8_t>> bytes() {
    const std::uint32_t n = u32();
    if (n == 0xffffffffu) return nullptr;
    if (!take(n)) return nullptr;
    return std::make_shared<const std::vector<std::uint8_t>>(
        data_ + pos_ - n, data_ + pos_);
  }
  std::vector<RttHint> hints() {
    const std::uint16_t n = u16();
    std::vector<RttHint> out;
    // Each hint needs 16 bytes; reject counts the buffer cannot hold.
    if (static_cast<std::size_t>(n) * 16 > remaining()) {
      ok_ = false;
      return out;
    }
    out.reserve(n);
    for (std::uint16_t i = 0; i < n && ok_; ++i) {
      RttHint h;
      h.zone = i32();
      h.zcr = i32();
      h.dist = f64();
      out.push_back(h);
    }
    return out;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

// --- encoders -------------------------------------------------------------------

std::vector<std::uint8_t> encode(const DataMsg& m) {
  Writer w(MsgType::kData);
  w.u32(m.group);
  w.i32(m.index);
  w.i32(m.k);
  w.i32(m.initial_shards);
  w.u32(m.groups_total);
  w.bytes(m.bytes.get());
  return w.take();
}

std::vector<std::uint8_t> encode(const RepairMsg& m) {
  Writer w(MsgType::kRepair);
  w.u32(m.group);
  w.i32(m.index);
  w.i32(m.k);
  w.i32(m.new_max_id);
  w.i32(m.repairer);
  w.i32(m.zone);
  w.u8(m.preemptive ? 1 : 0);
  w.hints(m.hints);
  w.bytes(m.bytes.get());
  return w.take();
}

std::vector<std::uint8_t> encode(const NackMsg& m) {
  Writer w(MsgType::kNack);
  w.u32(m.group);
  w.i32(m.zone);
  w.i32(m.llc);
  w.i32(m.needed);
  w.i32(m.max_id_seen);
  w.i32(m.sender);
  w.hints(m.hints);
  return w.take();
}

std::vector<std::uint8_t> encode(const SessionMsg& m) {
  Writer w(MsgType::kSession);
  w.i32(m.sender);
  w.i32(m.zone);
  w.f64(m.ts);
  w.i32(m.zcr);
  w.f64(m.zcr_parent_dist);
  w.u32(m.max_group_seen);
  w.u8(m.seen_any_data ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(m.entries.size()));
  for (const SessionMsg::Entry& e : m.entries) {
    w.i32(e.peer);
    w.f64(e.peer_ts);
    w.f64(e.delay);
    w.f64(e.rtt_est);
  }
  return w.take();
}

std::vector<std::uint8_t> encode(const ZcrChallengeMsg& m) {
  Writer w(MsgType::kZcrChallenge);
  w.i32(m.challenger);
  w.i32(m.zone);
  w.u64(m.challenge_id);
  return w.take();
}

std::vector<std::uint8_t> encode(const ZcrResponseMsg& m) {
  Writer w(MsgType::kZcrResponse);
  w.i32(m.responder);
  w.i32(m.zone);
  w.u64(m.challenge_id);
  w.f64(m.processing_delay);
  return w.take();
}

std::vector<std::uint8_t> encode(const ZcrTakeoverMsg& m) {
  Writer w(MsgType::kZcrTakeover);
  w.i32(m.new_zcr);
  w.i32(m.zone);
  w.f64(m.dist_to_parent);
  return w.take();
}

// --- decoder --------------------------------------------------------------------

std::optional<MsgType> peek_type(const std::uint8_t* data, std::size_t size) {
  if (size < 2 || data[1] != kWireVersion) return std::nullopt;
  const std::uint8_t t = data[0];
  if (t < 1 || t > 7) return std::nullopt;
  return static_cast<MsgType>(t);
}

std::optional<AnyMsg> decode(const std::uint8_t* data, std::size_t size) {
  const auto type = peek_type(data, size);
  if (!type) return std::nullopt;
  Reader r(data + 2, size - 2);
  AnyMsg out;
  switch (*type) {
    case MsgType::kData: {
      DataMsg m;
      m.group = r.u32();
      m.index = r.i32();
      m.k = r.i32();
      m.initial_shards = r.i32();
      m.groups_total = r.u32();
      m.bytes = r.bytes();
      out = std::move(m);
      break;
    }
    case MsgType::kRepair: {
      RepairMsg m;
      m.group = r.u32();
      m.index = r.i32();
      m.k = r.i32();
      m.new_max_id = r.i32();
      m.repairer = r.i32();
      m.zone = r.i32();
      m.preemptive = r.u8() != 0;
      m.hints = r.hints();
      m.bytes = r.bytes();
      out = std::move(m);
      break;
    }
    case MsgType::kNack: {
      NackMsg m;
      m.group = r.u32();
      m.zone = r.i32();
      m.llc = r.i32();
      m.needed = r.i32();
      m.max_id_seen = r.i32();
      m.sender = r.i32();
      m.hints = r.hints();
      out = std::move(m);
      break;
    }
    case MsgType::kSession: {
      SessionMsg m;
      m.sender = r.i32();
      m.zone = r.i32();
      m.ts = r.f64();
      m.zcr = r.i32();
      m.zcr_parent_dist = r.f64();
      m.max_group_seen = r.u32();
      m.seen_any_data = r.u8() != 0;
      const std::uint16_t n = r.u16();
      if (static_cast<std::size_t>(n) * 28 > r.remaining()) {
        return std::nullopt;
      }
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
        SessionMsg::Entry e;
        e.peer = r.i32();
        e.peer_ts = r.f64();
        e.delay = r.f64();
        e.rtt_est = r.f64();
        m.entries.push_back(e);
      }
      out = std::move(m);
      break;
    }
    case MsgType::kZcrChallenge: {
      ZcrChallengeMsg m;
      m.challenger = r.i32();
      m.zone = r.i32();
      m.challenge_id = r.u64();
      out = std::move(m);
      break;
    }
    case MsgType::kZcrResponse: {
      ZcrResponseMsg m;
      m.responder = r.i32();
      m.zone = r.i32();
      m.challenge_id = r.u64();
      m.processing_delay = r.f64();
      out = std::move(m);
      break;
    }
    case MsgType::kZcrTakeover: {
      ZcrTakeoverMsg m;
      m.new_zcr = r.i32();
      m.zone = r.i32();
      m.dist_to_parent = r.f64();
      out = std::move(m);
      break;
    }
  }
  if (!r.ok()) return std::nullopt;
  return out;
}

}  // namespace sharq::sfq::wire
