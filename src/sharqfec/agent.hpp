#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>

#include "net/network.hpp"
#include "rm/delivery_log.hpp"
#include "sharqfec/budget.hpp"
#include "sharqfec/config.hpp"
#include "sharqfec/hierarchy.hpp"
#include "sharqfec/session_manager.hpp"
#include "sharqfec/transfer.hpp"

namespace sharq::sfq {

/// A complete SHARQFEC endpoint: the scoped session manager plus the
/// two-phase transfer engine, attached to one node and joined to every
/// channel of the node's zone chain.
class Agent final : public net::Agent {
 public:
  /// Primary form: the Config is shared, not copied — every agent in a
  /// session aliases one immutable instance, so per-agent cost stays flat
  /// no matter how large static_zcrs (etc.) grows.
  Agent(net::Network& net, Hierarchy& hier, std::shared_ptr<const Config> cfg,
        net::NodeId node, bool is_source, rm::DeliveryLog* log = nullptr);

  /// Convenience for standalone construction (tests, examples): snapshots
  /// `cfg` into a private shared copy.
  Agent(net::Network& net, Hierarchy& hier, const Config& cfg,
        net::NodeId node, bool is_source, rm::DeliveryLog* log = nullptr)
      : Agent(net, hier, std::make_shared<const Config>(cfg), node, is_source,
              log) {}

  /// Begin session messaging and ZCR election.
  void start() { session_->start(); }

  /// Model this member dying: stop transmitting session/election traffic
  /// AND cancel the transfer engine's timers, so a killed member leaves no
  /// events pending and never transmits again. Pair with
  /// Network::detach() to also stop it receiving.
  void stop() {
    session_->stop();
    transfer_->stop();
  }

  /// Source API: stream groups starting at `start_at`.
  void send_stream(std::uint32_t group_count, sim::Time start_at,
                   std::vector<std::uint8_t> payload = {}) {
    transfer_->send_stream(group_count, start_at, std::move(payload));
  }

  void on_receive(const net::Packet& packet) override;

  SessionManager& session() { return *session_; }
  const SessionManager& session() const { return *session_; }
  TransferEngine& transfer() { return *transfer_; }
  const TransferEngine& transfer() const { return *transfer_; }
  bool is_source() const { return is_source_; }

  /// Packets rejected because they arrived corrupted (the modelled wire
  /// checksum failed). Decode never sees a corrupt packet's payload.
  std::uint64_t corrupt_rejects() const { return corrupt_rejects_; }
  /// Packets rejected as duplicates of an already-processed uid (link
  /// duplication; the multicast tree itself delivers each uid once).
  std::uint64_t duplicate_rejects() const { return duplicate_rejects_; }

  /// This node's runtime budget state (docs/ROBUSTNESS.md), shared with
  /// the session manager and transfer engine.
  BudgetTracker& budget() { return *budget_; }
  const BudgetTracker& budget() const { return *budget_; }
  /// Current / high-water dedup-window occupancy (exhaustion invariant:
  /// high water never exceeds ResourceBudget::dedup_entries).
  std::size_t dedup_entries() const { return seen_order_.size(); }
  std::size_t dedup_high_water() const { return dedup_high_water_; }
  /// Entries aged out beyond normal window rotation (state pressure).
  std::uint64_t dedup_shed() const { return dedup_shed_; }

  /// Contribute this endpoint's retained bytes to the profiler's memory
  /// census: the uid dedup window under "dedup_windows" (live vs high
  /// water), then the session manager's and transfer engine's categories.
  void memory_census(stats::MemCensus& census) const {
    census.add("dedup_windows", seen_order_.size() * kDedupEntryBytes,
               dedup_high_water_ * kDedupEntryBytes);
    session_->memory_census(census);
    transfer_->memory_census(census);
  }

  /// Name of the GF(256) kernel every agent's FEC work dispatches to
  /// ("scalar", "ssse3", "avx2", "neon"); fixed for the process lifetime.
  /// See README "Debugging aids" for the SHARQFEC_FORCE_SCALAR contract.
  static const char* fec_kernel_name();

 private:
  /// True exactly once per uid within the sliding window; duplicated
  /// deliveries (conditioner copies) return false. Bounded by
  /// ResourceBudget::dedup_entries (and shrunk under state pressure) so a
  /// soak run cannot grow it without limit.
  bool first_sighting(std::uint64_t uid);

  /// Accounted bytes per dedup entry (set node + order deque, with
  /// container overhead) for the state-bytes ledger.
  static constexpr std::size_t kDedupEntryBytes = 48;

  bool is_source_;
  std::unique_ptr<BudgetTracker> budget_;
  std::unique_ptr<SessionManager> session_;
  std::unique_ptr<TransferEngine> transfer_;
  std::unordered_set<std::uint64_t> seen_uids_;
  std::deque<std::uint64_t> seen_order_;
  std::size_t dedup_high_water_ = 0;
  std::uint64_t dedup_shed_ = 0;
  std::uint64_t corrupt_rejects_ = 0;
  std::uint64_t duplicate_rejects_ = 0;
  stats::Counter* m_corrupt_rejects_ = nullptr;
  stats::Counter* m_duplicate_rejects_ = nullptr;
  stats::Counter* m_dedup_shed_ = nullptr;
  stats::Journal* journal_ = nullptr;  ///< cfg.journal, cached
};

}  // namespace sharq::sfq
