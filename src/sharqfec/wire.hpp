#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "sharqfec/messages.hpp"

namespace sharq::sfq::wire {

/// Binary wire format for SHARQFEC messages.
///
/// The simulator passes message objects by pointer; a deployment needs
/// bytes. This codec defines a compact little-endian encoding with a
/// 1-byte type tag, suitable for a UDP payload:
///
///   [u8 type][u8 version][body...]
///
/// Decoding is fully bounds-checked: truncated or corrupt input yields
/// std::nullopt, never undefined behaviour (fuzzed in the tests).
enum class MsgType : std::uint8_t {
  kData = 1,
  kRepair = 2,
  kNack = 3,
  kSession = 4,
  kZcrChallenge = 5,
  kZcrResponse = 6,
  kZcrTakeover = 7,
};

inline constexpr std::uint8_t kWireVersion = 1;

/// Any decodable message.
using AnyMsg = std::variant<DataMsg, RepairMsg, NackMsg, SessionMsg,
                            ZcrChallengeMsg, ZcrResponseMsg, ZcrTakeoverMsg>;

/// Encode one message (overloads per type).
std::vector<std::uint8_t> encode(const DataMsg& m);
std::vector<std::uint8_t> encode(const RepairMsg& m);
std::vector<std::uint8_t> encode(const NackMsg& m);
std::vector<std::uint8_t> encode(const SessionMsg& m);
std::vector<std::uint8_t> encode(const ZcrChallengeMsg& m);
std::vector<std::uint8_t> encode(const ZcrResponseMsg& m);
std::vector<std::uint8_t> encode(const ZcrTakeoverMsg& m);

/// Decode any message; nullopt on truncation, bad tag, bad version, or
/// length fields that overrun the buffer.
std::optional<AnyMsg> decode(const std::uint8_t* data, std::size_t size);

inline std::optional<AnyMsg> decode(const std::vector<std::uint8_t>& buf) {
  return decode(buf.data(), buf.size());
}

/// Wire type of an encoded buffer (nullopt if empty/unknown).
std::optional<MsgType> peek_type(const std::uint8_t* data, std::size_t size);

}  // namespace sharq::sfq::wire
