#include "sharqfec/budget.hpp"

#include <string>

#include "sim/simulator.hpp"
#include "stats/journal.hpp"
#include "stats/metrics.hpp"

namespace sharq::sfq {

BudgetTracker::BudgetTracker(const ResourceBudget& limits, net::NodeId node,
                             sim::Simulator& simu, stats::Metrics* metrics,
                             stats::Journal* journal)
    : limits_(limits),
      node_(node),
      simu_(simu),
      metrics_(metrics),
      journal_(journal),
      min_spacing_(sim::kTimeNever) {
  // The state gauge is only registered when a budget is actually enabled:
  // macro runs with budgets off must not pay one extra metric child per
  // node (100k+ nodes).
  if (metrics_ && limits_.any_enabled()) {
    m_state_bytes_ = &metrics_->gauge("sharqfec.budget_state_bytes",
                                      {{"node", std::to_string(node_)}});
  }
  // The fleet-wide high water is a single unlabeled child, so it is safe
  // to register even when no budget is enabled (the ledger still runs).
  if (metrics_) {
    m_state_hw_ = &metrics_->gauge("sharqfec.budget_state_high_water");
  }
}

void BudgetTracker::add_state(std::size_t bytes) {
  state_bytes_ += bytes;
  if (state_bytes_ > state_high_water_) state_high_water_ = state_bytes_;
  if (m_state_bytes_) m_state_bytes_->set_max(static_cast<double>(state_bytes_));
  if (m_state_hw_) m_state_hw_->set_max(static_cast<double>(state_bytes_));
}

void BudgetTracker::sub_state(std::size_t bytes) {
  state_bytes_ = bytes > state_bytes_ ? 0 : state_bytes_ - bytes;
}

bool BudgetTracker::repair_due() const {
  if (limits_.repair_rate_per_s <= 0.0) return true;
  return simu_.now() >= next_repair_ok_;
}

sim::Time BudgetTracker::repair_wait() const {
  if (limits_.repair_rate_per_s <= 0.0) return 0.0;
  const sim::Time wait = next_repair_ok_ - simu_.now();
  return wait > 0.0 ? wait : 0.0;
}

void BudgetTracker::note_repair_sent() {
  const sim::Time now = simu_.now();
  if (any_repair_sent_) {
    const sim::Time spacing = now - last_repair_sent_;
    if (min_spacing_ == sim::kTimeNever || spacing < min_spacing_) {
      min_spacing_ = spacing;
    }
  }
  any_repair_sent_ = true;
  last_repair_sent_ = now;
  if (limits_.repair_rate_per_s > 0.0) {
    const sim::Time base = next_repair_ok_ > now ? next_repair_ok_ : now;
    next_repair_ok_ = base + 1.0 / limits_.repair_rate_per_s;
  }
}

void BudgetTracker::note_shed(const char* resource) {
  const sim::Time now = simu_.now();
  const bool onset = !ever_shed_ || now - last_shed_ > limits_.pressure_window;
  ever_shed_ = true;
  last_shed_ = now;
  ++sheds_;
  if (!onset) return;
  // Trips count pressure onsets, not individual shed decisions (the
  // per-policy counters hold those), so the lookup below only runs on the
  // rare transition into pressure.
  if (metrics_) {
    metrics_
        ->counter("sharqfec.budget_trips",
                  {{"node", std::to_string(node_)}, {"resource", resource}})
        .inc();
  }
  if (journal_) {
    journal_->emit("budget.tripped", now, node_, /*group=*/-1, /*cause=*/0,
                   {{"resource", resource}});
  }
}

bool BudgetTracker::under_pressure() const {
  if (!ever_shed_) return false;
  return simu_.now() - last_shed_ <= limits_.pressure_window;
}

}  // namespace sharq::sfq
