#include "sharqfec/hierarchy.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace sharq::sfq {

Hierarchy::Hierarchy(net::Network& net, bool scoping)
    : net_(net), scoping_(scoping) {
  data_channel_ = net_.create_channel(net::kNoZone);

  if (scoping_) {
    const net::ZoneHierarchy& zones = net_.zones();
    assert(zones.root() != net::kNoZone &&
           "scoped SHARQFEC needs a zone hierarchy on the network");
    root_ = zones.root();
    // BFS so parents are registered before children.
    std::deque<net::ZoneId> todo{root_};
    while (!todo.empty()) {
      const net::ZoneId z = todo.front();
      todo.pop_front();
      ZoneInfo zi;
      zi.parent = zones.parent(z);
      zi.level = zones.level(z);
      zi.repair = net_.create_channel(z);
      zi.session = net_.create_channel(z);
      by_channel_[zi.repair] = z;
      by_channel_[zi.session] = z;
      depth_ = std::max(depth_, zi.level + 1);
      info_.emplace(z, std::move(zi));
      order_.push_back(z);
      for (net::ZoneId c : zones.children(z)) todo.push_back(c);
    }
  } else {
    // Flat pseudo-hierarchy: one root zone over everyone, channels
    // unscoped. We use a synthetic zone id that cannot collide with the
    // network's (negative ids other than kNoZone are never allocated).
    root_ = -2;
    ZoneInfo zi;
    zi.parent = net::kNoZone;
    zi.level = 0;
    zi.repair = net_.create_channel(net::kNoZone);
    zi.session = net_.create_channel(net::kNoZone);
    by_channel_[zi.repair] = root_;
    by_channel_[zi.session] = root_;
    info_.emplace(root_, std::move(zi));
    order_.push_back(root_);
  }
}

net::ChannelId Hierarchy::repair_channel(net::ZoneId z) const {
  return info_.at(z).repair;
}

net::ChannelId Hierarchy::session_channel(net::ZoneId z) const {
  return info_.at(z).session;
}

net::ZoneId Hierarchy::zone_of_channel(net::ChannelId ch) const {
  auto it = by_channel_.find(ch);
  return it == by_channel_.end() ? net::kNoZone : it->second;
}

const std::vector<net::ZoneId>& Hierarchy::chain(net::NodeId n) const {
  auto it = chains_.find(n);
  if (it != chains_.end()) return it->second;
  std::vector<net::ZoneId> c;
  if (!scoping_) {
    c = {root_};
  } else {
    const net::ZoneHierarchy& zones = net_.zones();
    net::ZoneId z = zones.smallest_zone(n);
    assert(z != net::kNoZone && "node not assigned to any zone");
    for (; z != net::kNoZone; z = zones.parent(z)) c.push_back(z);
  }
  return chains_.emplace(n, std::move(c)).first->second;
}

net::ZoneId Hierarchy::common_zone(net::NodeId a, net::NodeId b) const {
  if (!scoping_) return root_;
  return net_.zones().common_zone(a, b);
}

bool Hierarchy::zone_contains(net::ZoneId z, net::NodeId n) const {
  if (!scoping_) return z == root_;
  return net_.zones().contains(z, n);
}

void Hierarchy::join(net::NodeId n) {
  net_.subscribe(data_channel_, n);
  for (net::ZoneId z : chain(n)) {
    ZoneInfo& zi = info_.at(z);
    net_.subscribe(zi.repair, n);
    net_.subscribe(zi.session, n);
    zi.joined.insert(n);
  }
}

void Hierarchy::leave(net::NodeId n) {
  net_.unsubscribe(data_channel_, n);
  for (net::ZoneId z : chain(n)) {
    ZoneInfo& zi = info_.at(z);
    net_.unsubscribe(zi.repair, n);
    net_.unsubscribe(zi.session, n);
    zi.joined.erase(n);
  }
}

}  // namespace sharq::sfq
