#include "sharqfec/protocol.hpp"

#include <stdexcept>

namespace sharq::sfq {

Session::Session(net::Network& net, net::NodeId source,
                 const std::vector<net::NodeId>& receivers, const Config& cfg,
                 rm::DeliveryLog* log)
    : net_(net), cfg_(std::make_shared<const Config>(cfg)), log_(log) {
  hier_ = std::make_unique<Hierarchy>(net, cfg_->scoping);
  agents_.push_back(std::make_unique<Agent>(net, *hier_, cfg_, source,
                                            /*is_source=*/true, log));
  for (net::NodeId r : receivers) {
    agents_.push_back(std::make_unique<Agent>(net, *hier_, cfg_, r,
                                              /*is_source=*/false, log));
  }
}

void Session::start() {
  for (auto& a : agents_) a->start();
}

Agent& Session::add_receiver(net::NodeId node) {
  agents_.push_back(std::make_unique<Agent>(net_, *hier_, cfg_, node,
                                            /*is_source=*/false, log_));
  agents_.back()->start();
  return *agents_.back();
}

void Session::remove_receiver(net::NodeId node) {
  for (std::size_t i = 1; i < agents_.size(); ++i) {
    if (agents_[i]->node() != node) continue;
    Agent& a = *agents_[i];
    a.stop();
    net_.detach(node, &a);
    hier_->leave(node);
    retired_.push_back(std::move(agents_[i]));
    agents_.erase(agents_.begin() + static_cast<std::ptrdiff_t>(i));
    return;
  }
}

Agent& Session::agent_for(net::NodeId node) {
  for (auto& a : agents_) {
    if (a->node() == node) return *a;
  }
  throw std::out_of_range("no SHARQFEC agent for node");
}

bool Session::all_complete(std::uint32_t total) const {
  for (std::size_t i = 1; i < agents_.size(); ++i) {
    for (std::uint32_t g = 0; g < total; ++g) {
      if (!agents_[i]->transfer().group_complete(g)) return false;
    }
  }
  return true;
}

}  // namespace sharq::sfq
