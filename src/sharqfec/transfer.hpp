#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fec/group_codec.hpp"
#include "net/network.hpp"
#include "rm/delivery_log.hpp"
#include "sharqfec/config.hpp"
#include "sharqfec/hierarchy.hpp"
#include "sharqfec/messages.hpp"
#include "sharqfec/session_manager.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"
#include "stats/journal.hpp"
#include "stats/metrics.hpp"
#include "stats/profiler.hpp"

namespace sharq::sfq {

/// The SHARQFEC data/repair engine for one member (paper §4).
///
/// Implements the two-phase group delivery: the Loss Detection Phase
/// (LLC/ZLC accounting, SRM-style request timers with 2^i backoff, NACK
/// suppression) and the Repair Phase (speculative repair queues, reply
/// timers, repair-id coordination, preemptive ZCR injection driven by an
/// EWMA of past Zone Loss Counts).
class TransferEngine {
 public:
  /// `budget` (optional, not owned) is the node's shared budget tracker:
  /// when set, repair sends are paced to ResourceBudget::repair_rate_per_s,
  /// pending-repair queues clamp to repair_queue_depth, and due scope
  /// escalations de-escalate while the node is under pressure
  /// (docs/ROBUSTNESS.md).
  TransferEngine(net::Network& net, Hierarchy& hier, SessionManager& session,
                 std::shared_ptr<const Config> cfg, net::NodeId node,
                 bool is_source, rm::DeliveryLog* log,
                 BudgetTracker* budget = nullptr);

  /// Source API: stream `group_count` groups of k shards each, starting at
  /// `start_at`. With real_payload set, `payload` supplies the bytes
  /// (padded to whole groups); otherwise sizes alone are simulated.
  void send_stream(std::uint32_t group_count, sim::Time start_at,
                   std::vector<std::uint8_t> payload = {});

  /// Offer a packet; returns true if it was a transfer message.
  bool handle(const net::Packet& packet);

  /// Cease all activity (models the member dying): cancels every per-group
  /// timer and turns the remaining entry points into no-ops, so a killed
  /// member neither transmits nor keeps events pending. Irreversible;
  /// restart is modelled by a fresh engine.
  void stop();
  bool stopped() const { return stopped_; }

  // --- inspection ------------------------------------------------------------
  std::uint32_t groups_completed() const;
  bool group_complete(std::uint32_t g) const;
  std::uint32_t max_group_seen() const { return max_group_seen_; }
  bool seen_any_data() const { return seen_any_; }
  std::uint64_t nacks_sent() const { return nacks_sent_; }
  std::uint64_t repairs_sent() const { return repairs_sent_; }
  std::uint64_t preemptive_repairs_sent() const { return preemptive_sent_; }
  /// Transfer messages rejected as malformed (out-of-range shard indices,
  /// absurd group jumps, inconsistent counts). Hostile input must bump
  /// this counter, never distort protocol state.
  std::uint64_t malformed_rejects() const { return malformed_rejects_; }
  /// Number of groups currently tracked (state-growth probe).
  std::size_t tracked_group_count() const { return groups_.size(); }
  double predicted_zlc(net::ZoneId z) const;
  /// Reconstructed application bytes for a completed group (real_payload
  /// mode only; empty otherwise).
  std::vector<std::uint8_t> reconstructed(std::uint32_t g) const;
  /// Called by the session manager's progress listener.
  void note_remote_progress(std::uint32_t remote_max_group);
  /// Application hook: invoked once per group, on completion.
  void set_completion_callback(std::function<void(std::uint32_t)> cb) {
    on_complete_ = std::move(cb);
  }
  /// First group this receiver is responsible for (>0 after a late join
  /// without full-history recovery).
  std::uint32_t first_tracked_group() const { return skip_before_; }
  /// Raw inter-arrival EWMA slot (kEwmaUnset until the first sample).
  double arrival_ewma() const { return arrival_ewma_; }

  /// Overload-testing hook (chaos exhaustion campaigns): send `count`
  /// root-scope NACKs for the lowest incomplete group, spaced `spacing`
  /// apart, bypassing suppression — the worst-case feedback implosion the
  /// budget layer must absorb. No-op on the source or a stopped engine.
  void nack_storm(int count, sim::Time spacing);

  /// Repair sends pushed later by the rate budget (shed decisions).
  std::uint64_t repairs_deferred() const { return repairs_deferred_; }
  /// NACK deficits clamped down to the repair-queue budget.
  std::uint64_t repairs_coalesced() const { return repairs_coalesced_; }
  /// Due scope escalations converted to de-escalations under pressure.
  std::uint64_t scope_sheds() const { return scope_sheds_; }
  /// Largest pending-repair queue ever held at one (group, level)
  /// (exhaustion invariant: never exceeds repair_queue_depth when set).
  std::int32_t pending_high_water() const { return pending_high_water_; }
  /// Message/buffer pool accounting for this engine (exhaustion probes).
  sim::PoolStats data_pool_stats() const { return data_pool_.stats(); }
  sim::PoolStats repair_pool_stats() const { return repair_pool_.stats(); }
  sim::PoolStats nack_pool_stats() const { return nack_pool_.stats(); }
  sim::PoolStats shard_pool_stats() const { return shard_pool_.stats(); }

  /// Contribute this engine's retained bytes to the profiler's memory
  /// census: message/shard pools under "transfer_pools", per-group state
  /// (decoders, encoders, level arenas, payload) under "transfer_groups".
  void memory_census(stats::MemCensus& census) const;

 private:
  /// Per chain-level state, indexed like the session manager's chain.
  /// Packed in the engine's `chain_arena_` (one stride per group) so a
  /// mostly-idle group carries no per-level heap allocations.
  struct ChainLevel {
    std::int32_t zlc = 0;      ///< highest loss count heard for this zone
    std::int32_t pending = 0;  ///< speculative repair queue size
    bool nacked = false;       ///< we announced our LLC at this level
    bool injected = false;     ///< preemptive injection done at this level
  };
  /// Parity-index coordination state, one entry per *global* hierarchy
  /// level (packed in `slice_arena_`): the parity space is partitioned
  /// into one slice per level so repairers in nested zones never emit the
  /// same shard; within a slice, repairs heard advance the cursor (the
  /// paper's max-identifier announcements).
  struct SliceLevel {
    std::int32_t next = 0;  ///< next parity index to emit in this slice
    std::int32_t seen = 0;  ///< repair shards heard that originated here
  };

  /// Per-group receiver/repairer state. Constructed in place inside
  /// `groups_` (never moved): the four timers are direct members whose
  /// armed callbacks capture only the engine and a group id.
  struct Group {
    std::uint32_t id = 0;
    fec::GroupDecoder decoder;
    int initial_shards = 0;      ///< k + h announced by the source
    int last_initial_seen = -1;  ///< highest initial-tranche index received
    int max_id_seen = -1;        ///< highest shard id seen or announced
    int llc = 0;                 ///< local loss count (missing originals)
    int repair_coverage = 0;     ///< repair shards seen for this group
    bool ldp_done = false;
    bool complete = false;
    bool repairer_active = false;
    sim::Time first_arrival = sim::kTimeNever;
    /// Stride index into the engine's level arenas (chain_lv()/slice_lv()).
    std::uint32_t arena_slot = 0;
    int backoff_i = 1;                  ///< paper: i starts at 1
    int scope_level = 0;                ///< current NACK escalation level
    int attempts_at_scope = 0;
    sim::Timer ldp_timer;
    sim::Timer request_timer;
    sim::Timer reply_timer;
    sim::Timer measure_timer;
    int reply_level = -1;               ///< level the reply timer serves
    bool measured = false;
    int last_fire_distinct = -1;        ///< progress marker for stall NACKs
    // Flight-recorder causal anchors (all 0 when the journal is detached):
    // the most recent event of each kind, used as the `cause` of whatever
    // it triggers next (docs/OBSERVABILITY.md).
    stats::EventId root_ev = 0;          ///< group.first_arrival (span root)
    stats::EventId ldp_armed_ev = 0;
    stats::EventId ldp_fired_ev = 0;
    stats::EventId last_loss_ev = 0;
    stats::EventId last_nack_ev = 0;     ///< our own nack.sent
    stats::EventId repair_sched_ev = 0;
    stats::EventId inject_ev = 0;
    stats::EventId last_repair_recv_ev = 0;
    stats::EventId complete_ev = 0;
    // Sender-side extras
    std::unique_ptr<fec::GroupEncoder> encoder;  // real-payload repair source
    Group(std::shared_ptr<const fec::ReedSolomon> codec, sim::Simulator& simu)
        : decoder(std::move(codec)),
          ldp_timer(simu),
          request_timer(simu),
          reply_timer(simu),
          measure_timer(simu) {
      ldp_timer.set_tag("transfer.ldp");
      request_timer.set_tag("transfer.request");
      reply_timer.set_tag("transfer.reply");
      measure_timer.set_tag("transfer.measure");
    }
  };

  /// A group's per-chain-level stride in the packed arena. The pointer is
  /// invalidated by ensure_group() (arena growth): re-fetch after any call
  /// that may create a group — including user completion callbacks.
  ChainLevel* chain_lv(const Group& grp) {
    return chain_arena_.data() +
           static_cast<std::size_t>(grp.arena_slot) * chain_levels_;
  }
  const ChainLevel* chain_lv(const Group& grp) const {
    return chain_arena_.data() +
           static_cast<std::size_t>(grp.arena_slot) * chain_levels_;
  }
  /// Same for the per-global-level parity-slice stride.
  SliceLevel* slice_lv(const Group& grp) {
    return slice_arena_.data() +
           static_cast<std::size_t>(grp.arena_slot) * slice_levels_;
  }

  Group& ensure_group(std::uint32_t g);
  bool sane_group_id(std::uint32_t g) const;
  void fix_join_point(std::uint32_t first_heard_group, bool at_group_start);
  void source_send_next();
  void on_data(const DataMsg& msg, net::TrafficClass cls);
  void on_repair(const RepairMsg& msg);
  void on_nack(const NackMsg& msg);
  void add_shard(Group& grp, int index,
                 const std::shared_ptr<const std::vector<std::uint8_t>>& bytes);
  void note_initial_progress(Group& grp, int index);
  void raise_llc(Group& grp, int newly_missing, stats::EventId cause = 0);
  void finish_ldp(Group& grp, const char* via = "advance");
  void maybe_request(Group& grp);
  void arm_request_timer(Group& grp, stats::EventId cause = 0);
  void adapt_request_window(bool heard_duplicate);
  void fire_request(std::uint32_t g);
  void on_group_complete(Group& grp);
  void arm_reply_timer(Group& grp, int level, double dist_to_requester);
  void fire_reply(std::uint32_t g);
  void send_storm_nack();
  void send_one_repair(Group& grp, int level, bool preemptive);
  void schedule_injection(Group& grp);
  void schedule_zlc_measurement(Group& grp);
  bool eligible_repairer(const Group& grp) const;
  int base_scope_level() const;
  int nack_level(const Group& grp) const;
  bool covered_by_zlc(const Group& grp) const;
  sim::Time packet_interval() const;
  sim::Time inter_arrival_estimate() const;
  sim::Time dist_to_source() const;
  int deficit(const Group& grp) const;
  std::shared_ptr<const std::vector<std::uint8_t>> shard_bytes(Group& grp,
                                                               int index);
  int slice_width() const;
  int slice_start(int global_level) const;
  void note_parity_seen(Group& grp, int index);
  int next_parity_index(Group& grp, net::ZoneId zone);
  /// Append one journal event for `group` (no-op returning 0 when
  /// detached). Call sites still guard with `if (journal_)` so a detached
  /// run never constructs the Attrs map.
  stats::EventId jnl(const char* ev, std::uint32_t group, stats::EventId cause,
                     const stats::Attrs& attrs = {});
  /// Default cause for span-internal events: the latest loss, else the
  /// span root (0 when neither was journaled).
  static stats::EventId span_cause(const Group& grp) {
    return grp.last_loss_ev ? grp.last_loss_ev : grp.root_ev;
  }

  net::Network& net_;
  sim::Simulator& simu_;
  Hierarchy& hier_;
  SessionManager& session_;
  // Shared with every other agent in the session (see SessionManager).
  std::shared_ptr<const Config> cfg_;
  net::NodeId node_;
  bool is_source_;
  rm::DeliveryLog* log_;
  stats::Journal* journal_ = nullptr;  ///< cfg_.journal, cached
  /// Event bound to the packet currently being handled (0 outside
  /// handle()): the cross-node cause of whatever the packet triggers.
  stats::EventId cause_in_ = 0;
  sim::Rng rng_;
  std::shared_ptr<const fec::ReedSolomon> codec_;

  std::map<std::uint32_t, Group> groups_;
  // Packed per-level state for every tracked group (SoA arenas, one
  // fixed-size stride per group, appended by ensure_group and never
  // freed — groups_ never erases). Strides are sized on first use.
  std::vector<ChainLevel> chain_arena_;
  std::vector<SliceLevel> slice_arena_;
  std::size_t chain_levels_ = 0;  ///< session chain length (arena stride)
  std::size_t slice_levels_ = 0;  ///< hierarchy depth (arena stride)
  // Message/buffer pools: per-send bodies and shard payloads come from
  // freelists instead of the global heap; packets in flight keep pooled
  // nodes alive past the engine via the pools' shared cores (sim/pool.hpp).
  sim::ObjectPool<DataMsg> data_pool_;
  sim::ObjectPool<RepairMsg> repair_pool_;
  sim::ObjectPool<NackMsg> nack_pool_;
  sim::BufferPool shard_pool_;
  std::uint32_t max_group_seen_ = 0;
  bool seen_any_ = false;
  /// Groups below this id are outside our delivery contract (late join
  /// with full-history recovery disabled).
  std::uint32_t skip_before_ = 0;
  bool join_point_fixed_ = false;
  std::uint32_t groups_total_ = 0;  ///< 0 while unknown
  net::NodeId source_node_ = net::kNoNode;
  std::function<void(std::uint32_t)> on_complete_;

  // Predicted ZLC per chain level (EWMA state), and the predicted repair
  // coverage arriving from larger scopes (so ZCR injection is incremental:
  // each zone tops up only the loss its parent's coverage leaves exposed).
  std::vector<double> zlc_pred_;
  std::vector<double> cov_pred_;
  std::uint32_t send_group_ = 0;
  int send_index_ = 0;
  std::uint32_t send_total_groups_ = 0;
  std::vector<std::uint8_t> payload_;
  double arrival_ewma_ = -1.0;
  sim::Time last_arrival_ = sim::kTimeNever;

  std::uint64_t nacks_sent_ = 0;
  std::uint64_t repairs_sent_ = 0;
  std::uint64_t preemptive_sent_ = 0;
  std::uint64_t malformed_rejects_ = 0;
  bool stopped_ = false;
  BudgetTracker* budget_ = nullptr;  ///< shared per-node tracker, not owned
  std::uint64_t repairs_deferred_ = 0;
  std::uint64_t repairs_coalesced_ = 0;
  std::uint64_t scope_sheds_ = 0;
  std::int32_t pending_high_water_ = 0;

  // Metrics registry children, cached at construction (all null when
  // cfg_.metrics is null). Indexed like the session chain where per-level.
  void register_metrics();
  stats::Counter* m_nacks_sent_ = nullptr;
  stats::Counter* m_nacks_suppressed_ = nullptr;
  stats::Counter* m_nacks_deduped_ = nullptr;
  stats::Counter* m_malformed_ = nullptr;
  std::vector<stats::Counter*> m_repairs_by_level_;
  std::vector<stats::Counter*> m_preemptive_by_level_;
  std::vector<stats::Gauge*> m_zlc_pred_;
  stats::Gauge* m_arrival_ewma_ = nullptr;
  /// Fleet-wide (unlabeled, set_max across every engine) mirror of
  /// pending_high_water_: the deepest per-level repair backlog any node
  /// saw. One registry child total, so macro-scale runs pay nothing.
  stats::Gauge* m_pending_hw_ = nullptr;
  stats::Histogram* m_completion_ = nullptr;
  stats::Counter* m_repairs_deferred_ = nullptr;
  stats::Counter* m_repairs_coalesced_ = nullptr;
  stats::Counter* m_scope_sheds_ = nullptr;

  // Adaptive request-window state (Config::adaptive_timers).
  double c1_adapt_;
  double c2_adapt_;
  double ave_dup_nack_ = 0.0;

 public:
  double adapted_c1() const { return c1_adapt_; }
  double adapted_c2() const { return c2_adapt_; }
};

}  // namespace sharq::sfq
