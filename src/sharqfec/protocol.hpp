#pragma once

#include <memory>
#include <vector>

#include "sharqfec/agent.hpp"

namespace sharq::sfq {

/// Convenience owner of a full SHARQFEC session over a network whose zone
/// hierarchy (if scoping is on) has already been built: creates the channel
/// hierarchy, the source agent, and one receiver agent per node.
class Session {
 public:
  Session(net::Network& net, net::NodeId source,
          const std::vector<net::NodeId>& receivers, const Config& cfg,
          rm::DeliveryLog* log = nullptr);

  /// Start session messaging/elections on every member.
  void start();

  /// Late join: add (and start) a receiver while the session runs. The
  /// joiner recovers history or starts live per Config::late_join_full_
  /// history; its zone's repair channels localize any catch-up traffic.
  /// Also how a crashed receiver rejoins after Network::set_node_up(node,
  /// true): the fresh agent re-subscribes and recovers like any late
  /// joiner.
  Agent& add_receiver(net::NodeId node);

  /// Crash a receiver mid-transfer: its agent stops (no timers left
  /// pending, never transmits again), detaches from the network, and
  /// leaves every channel. The dead agent is retired, not destroyed —
  /// in-flight events may still reference it — so `agents()` and
  /// `all_complete()` immediately stop counting it. No-op for unknown
  /// nodes and for the source.
  void remove_receiver(net::NodeId node);

  /// Emit `group_count` groups from the source at `start_at`.
  void send_stream(std::uint32_t group_count, sim::Time start_at,
                   std::vector<std::uint8_t> payload = {}) {
    source_agent().send_stream(group_count, start_at, std::move(payload));
  }

  Hierarchy& hierarchy() { return *hier_; }
  Agent& source_agent() { return *agents_.front(); }
  Agent& agent_for(net::NodeId node);
  const std::vector<std::unique_ptr<Agent>>& agents() const { return agents_; }

  /// Agents retired by remove_receiver (stopped and detached, kept alive
  /// only so stale scheduled events fire harmlessly).
  const std::vector<std::unique_ptr<Agent>>& retired() const {
    return retired_;
  }

  /// True if every receiver completed every group in [0, total).
  bool all_complete(std::uint32_t total) const;

  /// Memory census over every agent, retired ones included (their state
  /// is retained until destruction, so the resident set still pays for
  /// it). Drivers feed the result to Profiler::set_memory.
  void memory_census(stats::MemCensus& census) const {
    for (const auto& a : agents_) a->memory_census(census);
    for (const auto& a : retired_) a->memory_census(census);
  }

 private:
  net::Network& net_;
  // One immutable Config aliased by every agent (see Agent's primary
  // constructor) — per-receiver memory stays independent of Config size.
  std::shared_ptr<const Config> cfg_;
  rm::DeliveryLog* log_;
  std::unique_ptr<Hierarchy> hier_;
  std::vector<std::unique_ptr<Agent>> agents_;  // [0] = source
  std::vector<std::unique_ptr<Agent>> retired_;
};

}  // namespace sharq::sfq
