#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sharqfec/config.hpp"
#include "sharqfec/hierarchy.hpp"
#include "sharqfec/messages.hpp"
#include "sim/pool.hpp"
#include "sim/simulator.hpp"
#include "stats/journal.hpp"
#include "stats/metrics.hpp"
#include "stats/profiler.hpp"

namespace sharq::sfq {

/// Scoped session management for one SHARQFEC member (paper §5):
///
///  - sends session messages only within the member's smallest zone
///    (plus the parent zone for each zone it is the ZCR of);
///  - measures direct RTTs to the peers of each channel it participates
///    in via timestamp echoes;
///  - learns, per ancestor level, the RTT table of its "bridge" ZCR,
///    enabling indirect RTT estimation to arbitrary senders from the
///    distance hints those senders attach to NACKs/repairs;
///  - runs the ZCR challenge/response/takeover election so every zone
///    converges on its receiver closest to the parent ZCR.
///
/// The class is owned by an Agent, which forwards it the session-channel
/// packets.
class SessionManager {
 public:
  /// `budget` (optional, not owned) is the node's shared budget tracker:
  /// when set, the per-level peer and bridge tables are bounded by
  /// ResourceBudget::peers_per_level with oldest-first aging
  /// (docs/ROBUSTNESS.md).
  SessionManager(net::Network& net, Hierarchy& hier,
                 std::shared_ptr<const Config> cfg, net::NodeId node,
                 bool is_source, BudgetTracker* budget = nullptr);

  /// Begin session messaging and election timers.
  void start();

  /// Cease all activity (models the member dying or leaving the session):
  /// cancels the session timer and every election timer. The object stays
  /// queryable but will never transmit again.
  void stop();

  /// Offer a packet; returns true if it was a session/election message
  /// this manager consumed.
  bool handle(const net::Packet& packet);

  // --- queries used by the transfer engine ---------------------------------

  /// One-way distance estimate to an arbitrary peer, using direct
  /// measurements when available and the scoped indirect scheme otherwise.
  double estimate_dist(net::NodeId peer,
                       const std::vector<RttHint>& hints = {}) const;

  /// Distance hints to attach to outgoing NACKs/repairs.
  std::vector<RttHint> make_hints() const;

  /// Am I currently the ZCR of zone `z`?
  bool is_zcr(net::ZoneId z) const;

  /// Current ZCR of `z` as this member believes (kNoNode if unknown).
  net::NodeId zcr_of(net::ZoneId z) const;

  /// Largest direct RTT measured to any peer in `z`'s session channel
  /// (used by ZCRs to time their ZLC measurement; falls back to twice the
  /// default distance when nothing is measured yet).
  double max_rtt_in_zone(net::ZoneId z) const;

  /// Direct RTT measured to `peer` on `z`'s channel (<0 if none).
  double direct_rtt(net::ZoneId z, net::NodeId peer) const;

  /// Cumulative one-way distance to the ZCR at chain index `level`.
  /// (<0 when not yet derivable.)
  double dist_to_zcr_at(int level) const;

  net::NodeId node() const { return node_; }
  const std::vector<net::ZoneId>& chain() const { return chain_; }

  /// Transfer engine hook: supplies (max_group_seen, seen_any_data) for
  /// inclusion in session messages, enabling tail-loss detection.
  void set_progress_provider(std::function<std::pair<std::uint32_t, bool>()> f) {
    progress_ = std::move(f);
  }
  /// Transfer engine hook: called when a session message advertises a
  /// higher max group than we have seen.
  void set_progress_listener(std::function<void(std::uint32_t)> f) {
    on_progress_ = std::move(f);
  }

  std::uint64_t session_messages_sent() const { return session_sent_; }
  std::uint64_t takeovers_sent() const { return takeovers_sent_; }
  std::uint64_t challenges_sent() const { return challenges_sent_; }
  /// Silent peers garbage-collected from the RTT tables (Config::
  /// peer_expiry).
  std::uint64_t peers_expired() const { return peers_expired_; }
  /// Times the watchdog declared a silent ZCR dead and cleared it.
  std::uint64_t zcr_expiries() const { return zcr_expiries_; }
  /// Live peers currently tracked across all levels (state-growth probe).
  std::size_t tracked_peer_count() const;
  /// Peers aged out to stay inside ResourceBudget::peers_per_level.
  std::uint64_t peers_shed() const { return peers_shed_; }
  /// Bridge-table learnings skipped because the table was at capacity.
  std::uint64_t bridge_skips() const { return bridge_skips_; }
  /// Largest per-level RTT / bridge table ever held (exhaustion
  /// invariant: never exceeds ResourceBudget::peers_per_level when set).
  std::size_t peer_table_high_water() const { return peers_high_water_; }
  std::size_t bridge_table_high_water() const { return bridge_high_water_; }

  /// Contribute this manager's retained bytes to the profiler's memory
  /// census: RTT/bridge tables under "peer_tables" (the budget ledger's
  /// per-entry constants), session-message pool under "session_pools".
  void memory_census(stats::MemCensus& census) const;

 private:
  struct Peer {
    double rtt = -1.0;           // measured RTT to this peer (EWMA)
    sim::Time last_ts = 0.0;     // peer clock for echoing
    sim::Time heard_at = 0.0;
    bool clock_valid = false;
  };
  struct Level {
    net::ZoneId zone = net::kNoZone;
    // Ordered: iterated into session-message entries (wire order), peer
    // expiry, and max-RTT scans — hash order here would make beacon
    // contents and timer sequencing depend on the standard library.
    std::map<net::NodeId, Peer> peers;
    net::NodeId zcr = net::kNoNode;
    double zcr_parent_dist = -1.0;  // dist(zcr(zone) -> zcr(parent))
    sim::Time zcr_last_heard = sim::kTimeNever;
    // rtt(bridge, peer) learned from the bridge ZCR's announcements on
    // this zone's channel; bridge = zcr(chain[l-1]) for l>0, zcr(chain[0])
    // for l==0.
    std::map<net::NodeId, double> bridge_rtt;
    // election plumbing
    std::unique_ptr<sim::Timer> challenge_timer;
    std::unique_ptr<sim::Timer> watchdog;
    std::unique_ptr<sim::Timer> takeover_timer;
    double candidate_dist = -1.0;
    sim::Time last_reassert = sim::kTimeNever;
    /// Journal cause of a pending takeover: the zcr.response (or heard
    /// zcr.takeover) that started the consideration.
    stats::EventId takeover_cause = 0;
  };
  struct PendingChallenge {
    net::ZoneId zone = net::kNoZone;
    net::NodeId challenger = net::kNoNode;
    sim::Time heard_at = sim::kTimeNever;
    bool mine = false;
  };

  int level_index(net::ZoneId z) const;          // -1 if not on my chain
  net::NodeId expected_bridge(int level) const;  // kNoNode if unknown
  bool participates_at(int level) const;
  void send_session_messages();
  void send_session_for_level(int level);
  void schedule_session();
  void expire_silent_peers();
  /// Make room for one new peer in `level`'s RTT table: age out the
  /// oldest entries by (heard_at, node id) while the table is at its
  /// budget cap (or at its current size under state pressure).
  void reserve_peer_slot(int level);
  void schedule_challenge(int level);
  void schedule_watchdog(int level);
  void issue_challenge(int level);
  void handle_session(const SessionMsg& msg, int level);
  void handle_challenge(const ZcrChallengeMsg& msg);
  void handle_response(const ZcrResponseMsg& msg);
  void handle_takeover(const ZcrTakeoverMsg& msg);
  void consider_takeover(int level, double my_dist);
  static bool claim_beats(double dist_a, net::NodeId a, double dist_b,
                          net::NodeId b);
  void become_zcr(int level, double dist_to_parent);
  void adopt_zcr(int level, net::NodeId who, double dist);
  void ewma_rtt(double& slot, double sample) const;
  void register_metrics();
  /// Append one election event (group -1; no-op returning 0 when the
  /// journal is detached). Call sites guard with `if (journal_)`.
  stats::EventId jnl(const char* ev, stats::EventId cause,
                     const stats::Attrs& attrs = {});

  net::Network& net_;
  sim::Simulator& simu_;
  Hierarchy& hier_;
  // Shared, immutable: one Config serves every agent in the session. At
  // macro scale the per-agent copy dominated memory — static_zcrs alone
  // is tens of KB on deep hierarchies, and it was duplicated twice per
  // receiver (session manager + transfer engine).
  std::shared_ptr<const Config> cfg_;
  net::NodeId node_;
  bool is_source_;
  stats::Journal* journal_ = nullptr;  ///< cfg_.journal, cached
  /// Event bound to the packet currently being handled (0 outside
  /// handle()): the cross-node cause of whatever the packet triggers.
  stats::EventId cause_in_ = 0;
  sim::Rng rng_;
  std::vector<net::ZoneId> chain_;
  std::vector<Level> levels_;
  sim::Timer session_timer_;
  /// Beacon bodies come from a freelist: at large memberships the periodic
  /// session beacon dominates allocation volume, and every body is freed
  /// as soon as the last hop delivers it — ideal pool churn.
  sim::ObjectPool<SessionMsg> session_pool_;
  int session_rounds_ = 0;
  // Ordered: the prune walk erases by timeout, and erase order decides
  // nothing today — but keeping it deterministic is free at this size.
  std::map<std::uint64_t, PendingChallenge> challenges_;
  std::uint64_t next_challenge_id_;
  std::function<std::pair<std::uint32_t, bool>()> progress_;
  std::function<void(std::uint32_t)> on_progress_;
  std::uint64_t session_sent_ = 0;
  std::uint64_t takeovers_sent_ = 0;
  std::uint64_t challenges_sent_ = 0;
  std::uint64_t peers_expired_ = 0;
  std::uint64_t zcr_expiries_ = 0;
  BudgetTracker* budget_ = nullptr;  ///< shared per-node tracker, not owned
  std::uint64_t peers_shed_ = 0;
  std::uint64_t bridge_skips_ = 0;
  std::size_t peers_high_water_ = 0;
  std::size_t bridge_high_water_ = 0;

  // Metrics registry children, cached at construction (null when
  // cfg_.metrics is null). m_session_msgs_ is per chain level ("scope").
  std::vector<stats::Counter*> m_session_msgs_;
  stats::Counter* m_rtt_samples_ = nullptr;
  stats::Counter* m_challenges_ = nullptr;
  stats::Counter* m_takeovers_ = nullptr;
  stats::Counter* m_zcr_expiries_ = nullptr;
  stats::Counter* m_peers_expired_ = nullptr;
  stats::Gauge* m_peer_table_hw_ = nullptr;  ///< fleet-wide, unlabeled
  stats::Counter* m_peers_shed_ = nullptr;
};

}  // namespace sharq::sfq
