#pragma once

#include <cstddef>
#include <cstdint>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace sharq::sim {
class Simulator;
}  // namespace sharq::sim

namespace sharq::stats {
class Gauge;
class Journal;
class Metrics;
}  // namespace sharq::stats

namespace sharq::sfq {

/// Per-node resource budget (docs/ROBUSTNESS.md). Every limit is a
/// deterministic cap with an explicit graceful-degradation policy behind
/// it — tripping a budget sheds load (ages state, defers repairs, narrows
/// NACK scope); it never crashes, blocks, or silently drops a request.
/// A zero limit disables that dimension; the defaults reproduce the
/// pre-budget behaviour exactly, so existing traces stay byte-identical.
struct ResourceBudget {
  /// Soft target for accounted protocol state bytes (dedup window, RTT
  /// tables, bridge tables). Exceeding it puts the node under state
  /// pressure: the dedup window shrinks to half its cap and peer tables
  /// stop growing (oldest entries are replaced). 0 = unlimited.
  std::size_t state_bytes = 0;
  /// Hard cap on the packet-dedup sliding window (entries). The window
  /// already rotates FIFO; the cap bounds it. 0 = unlimited (the
  /// pre-budget constant was 8192, kept as the default cap).
  std::size_t dedup_entries = 8192;
  /// Hard cap on session peers tracked per zone level (RTT table plus
  /// bridge table, independently). At capacity the oldest entry by
  /// (last-heard time, node id) is aged out. 0 = unlimited.
  std::size_t peers_per_level = 0;
  /// Hard cap on the pending-repair queue depth per group and level.
  /// NACK deficits beyond it are coalesced down to the cap. 0 = unlimited.
  std::int32_t repair_queue_depth = 0;
  /// Maximum repair send rate per node (repairs/s). Sends that would
  /// exceed the minimum spacing 1/rate are deferred, not dropped.
  /// 0 = unlimited.
  double repair_rate_per_s = 0.0;
  /// How long one shed decision keeps the node "under pressure"; while
  /// under pressure, due scope escalations de-escalate instead.
  sim::Time pressure_window = 1.0;

  bool any_enabled() const {
    return state_bytes > 0 || peers_per_level > 0 || repair_queue_depth > 0 ||
           repair_rate_per_s > 0.0;
  }
};

/// Runtime budget state for one node: the accounted-state ledger, the
/// deterministic repair-rate pacer, and the pressure clock. One tracker
/// per Agent, shared by its SessionManager and TransferEngine so a shed
/// in one layer is visible to the others. All decisions depend only on
/// simulation time and configured limits — never on wall clock or host
/// state — so same-seed runs shed identically.
class BudgetTracker {
 public:
  BudgetTracker(const ResourceBudget& limits, net::NodeId node,
                sim::Simulator& simu, stats::Metrics* metrics,
                stats::Journal* journal);

  const ResourceBudget& limits() const { return limits_; }

  // --- accounted protocol state ---------------------------------------------
  void add_state(std::size_t bytes);
  void sub_state(std::size_t bytes);
  std::size_t state_bytes() const { return state_bytes_; }
  std::size_t state_high_water() const { return state_high_water_; }
  bool over_state() const {
    return limits_.state_bytes > 0 && state_bytes_ > limits_.state_bytes;
  }

  // --- repair-rate pacer ------------------------------------------------------
  /// True when a repair may be sent now without exceeding the rate cap.
  bool repair_due() const;
  /// Delay until the next repair is allowed (0 when due).
  sim::Time repair_wait() const;
  /// Record a repair send: advances the pacer and the observed-spacing
  /// probe (the exhaustion invariant checks min spacing >= 1/rate).
  void note_repair_sent();
  /// Smallest spacing observed between two repair sends; kTimeNever until
  /// two sends have happened.
  sim::Time min_repair_spacing() const { return min_spacing_; }

  // --- pressure ---------------------------------------------------------------
  /// Record one shed decision for `resource` ("dedup", "peers", "repair",
  /// "scope"). Emits `budget.tripped` (journal) and counts
  /// `sharqfec.budget_trips` on the transition into pressure only.
  void note_shed(const char* resource);
  /// True within `pressure_window` of the last shed.
  bool under_pressure() const;
  std::uint64_t sheds() const { return sheds_; }

 private:
  ResourceBudget limits_;
  net::NodeId node_;
  sim::Simulator& simu_;
  stats::Metrics* metrics_;
  stats::Journal* journal_;
  stats::Gauge* m_state_bytes_ = nullptr;
  /// Fleet-wide high-water mirror of state_high_water_ (unlabeled,
  /// set_max across every node — one registry child at any scale).
  stats::Gauge* m_state_hw_ = nullptr;

  std::size_t state_bytes_ = 0;
  std::size_t state_high_water_ = 0;
  sim::Time next_repair_ok_ = 0.0;
  sim::Time last_repair_sent_ = 0.0;
  bool any_repair_sent_ = false;
  sim::Time min_spacing_;
  sim::Time last_shed_ = 0.0;
  bool ever_shed_ = false;
  std::uint64_t sheds_ = 0;
};

}  // namespace sharq::sfq
