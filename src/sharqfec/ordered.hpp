#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace sharq {

/// Sorted snapshots of unordered containers.
///
/// Hash-table iteration order is an implementation detail: it differs
/// between libstdc++ and libc++, and can change when the table rehashes.
/// Anything that feeds iteration order into an output path — timers,
/// wire messages, exporters, logs — must therefore walk a sorted copy.
/// These helpers make the sorted copy a one-word idiom, and sharq_lint's
/// `unordered-iter` rule recognises them as the blessed escape route
/// (see docs/DETERMINISM.md).
///
/// Cost: one allocation + O(n log n). For hot paths that cannot afford
/// that, migrate the container itself to std::map / std::set instead.

/// Keys of an associative container, ascending. Also accepts sets
/// (where the "key" is the element itself).
template <class Map>
auto ordered_keys(const Map& m) {
  using Key = typename Map::key_type;
  std::vector<Key> keys;
  keys.reserve(m.size());
  for (auto it = m.begin(); it != m.end(); ++it) {  // sharq-lint: unordered-iter-ok (sorted immediately below)
    if constexpr (requires { it->first; }) {
      keys.push_back(it->first);
    } else {
      keys.push_back(*it);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Key/value pairs of a map, ascending by key. Values are copied; use
/// `ordered_keys` plus `.at()` when copies are too expensive.
template <class Map>
auto ordered_items(const Map& m) {
  using Key = typename Map::key_type;
  using Value = typename Map::mapped_type;
  std::vector<std::pair<Key, Value>> items;
  items.reserve(m.size());
  for (const auto& [k, v] : m) {  // sharq-lint: unordered-iter-ok (sorted immediately below)
    items.emplace_back(k, v);
  }
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

/// Values of a map, ascending by key (not by value): the stable, intent-
/// revealing order when the key is the identity and the value the payload.
template <class Map>
auto ordered_values(const Map& m) {
  using Value = typename Map::mapped_type;
  std::vector<Value> values;
  for (const auto& [k, v] : ordered_items(m)) values.push_back(v);
  return values;
}

}  // namespace sharq
