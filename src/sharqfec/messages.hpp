#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace sharq::sfq {

/// Distance hint carried on NACKs and repairs: the sender's cumulative
/// one-way distance to its ZCR at one scope level. Receivers combine these
/// with their own ZCR tables to estimate the RTT to the sender without
/// ever having exchanged session messages with it (paper §5.1).
struct RttHint {
  net::ZoneId zone = net::kNoZone;  ///< the sender's zone at this level
  net::NodeId zcr = net::kNoNode;   ///< ZCR of that zone, as the sender knows it
  double dist = 0.0;                ///< sender's one-way distance to that ZCR
};

/// One shard of the source's initial transmission for a group: original
/// data for index < k, proactive parity for k <= index < initial_shards.
struct DataMsg final : net::MessageBase {
  std::uint32_t group = 0;
  int index = 0;
  int k = 16;
  int initial_shards = 16;      ///< k + h announced for this group
  std::uint32_t groups_total = 0;  ///< 0 while unknown
  std::shared_ptr<const std::vector<std::uint8_t>> bytes;
};

/// A repair shard sent on a zone's repair channel.
struct RepairMsg final : net::MessageBase {
  std::uint32_t group = 0;
  int index = 0;            ///< shard id; parity ids grow monotonically
  int k = 16;
  int new_max_id = 0;       ///< highest shard id after this repairer's burst
  net::NodeId repairer = net::kNoNode;
  net::ZoneId zone = net::kNoZone;  ///< scope it was injected into
  bool preemptive = false;  ///< ZCR injection rather than NACK response
  std::vector<RttHint> hints;
  std::shared_ptr<const std::vector<std::uint8_t>> bytes;
};

/// A NACK: "I am missing `needed` shards of `group`" — counts, not packet
/// identities (the FEC property makes any fresh shard useful).
struct NackMsg final : net::MessageBase {
  std::uint32_t group = 0;
  net::ZoneId zone = net::kNoZone;  ///< scope zone this NACK targets
  int llc = 0;        ///< sender's local loss count (candidate new ZLC)
  int needed = 0;     ///< repair shards required to complete the group
  int max_id_seen = -1;  ///< greatest shard id the sender has seen
  net::NodeId sender = net::kNoNode;
  std::vector<RttHint> hints;
};

/// Scoped session message (paper §5). Sent on one zone's session channel;
/// lists clock echoes and RTT estimates for the peers heard on that
/// channel, plus the sender's view of the zone's ZCR.
struct SessionMsg final : net::MessageBase {
  net::NodeId sender = net::kNoNode;
  net::ZoneId zone = net::kNoZone;   ///< channel's zone
  sim::Time ts = 0.0;                ///< sender clock
  net::NodeId zcr = net::kNoNode;    ///< ZCR of `zone`, as the sender knows it
  double zcr_parent_dist = -1.0;     ///< dist(zone ZCR -> parent zone ZCR)
  std::uint32_t max_group_seen = 0;  ///< tail-loss detection aid
  bool seen_any_data = false;
  struct Entry {
    net::NodeId peer = net::kNoNode;
    sim::Time peer_ts = 0.0;  ///< last clock heard from peer
    sim::Time delay = 0.0;    ///< elapsed since hearing it
    double rtt_est = -1.0;    ///< sender's RTT estimate to peer (<0 unknown)
  };
  std::vector<Entry> entries;
};

/// ZCR election: challenge sent toward the parent zone's ZCR (heard by
/// the child zone's members too, who time the exchange).
struct ZcrChallengeMsg final : net::MessageBase {
  net::NodeId challenger = net::kNoNode;
  net::ZoneId zone = net::kNoZone;  ///< child zone whose ZCR is in question
  std::uint64_t challenge_id = 0;
};

/// ZCR election: the parent ZCR's response to a challenge.
struct ZcrResponseMsg final : net::MessageBase {
  net::NodeId responder = net::kNoNode;
  net::ZoneId zone = net::kNoZone;
  std::uint64_t challenge_id = 0;
  double processing_delay = 0.0;  ///< time the responder held the challenge
};

/// ZCR election: a closer receiver takes over as ZCR (sent to both the
/// child zone and its parent).
struct ZcrTakeoverMsg final : net::MessageBase {
  net::NodeId new_zcr = net::kNoNode;
  net::ZoneId zone = net::kNoZone;
  double dist_to_parent = 0.0;  ///< claimant's distance to the parent ZCR
};

/// Wire-size helpers (bytes) for control messages.
inline int nack_size(std::size_t hints) {
  return 48 + static_cast<int>(hints) * 16;
}
inline int session_size(std::size_t entries) {
  return 32 + static_cast<int>(entries) * 20;
}

}  // namespace sharq::sfq
