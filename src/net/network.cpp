#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <utility>

#include "sharqfec/ordered.hpp"
#include "sim/shard_runtime.hpp"
#include "stats/journal.hpp"
#include "stats/lane.hpp"
#include "stats/metrics.hpp"
#include "stats/profiler.hpp"

namespace sharq::net {

const char* to_string(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kData: return "data";
    case TrafficClass::kRepair: return "repair";
    case TrafficClass::kNack: return "nack";
    case TrafficClass::kSession: return "session";
    case TrafficClass::kControl: return "control";
  }
  return "?";
}

const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kLinkDown: return "link-down";
    case DropReason::kQueueFull: return "queue-full";
    case DropReason::kLoss: return "loss";
    case DropReason::kEpochKill: return "epoch-kill";
  }
  return "?";
}

Network::Network(sim::Simulator& simu) : simu_(simu) { lanes_.resize(1); }

// --- sharding ---------------------------------------------------------------

Network::LaneCtx& Network::ctx() {
  return lanes_[static_cast<std::size_t>(rt_ ? stats::lane() : 0)];
}

sim::Simulator& Network::ctx_sim() {
  return rt_ ? rt_->sim(stats::lane()) : simu_;
}

sim::Simulator& Network::sim_of_node(NodeId node) {
  return rt_ ? rt_->sim(shard_map_.shard(node)) : simu_;
}

TrafficSink* Network::sink() {
  if (rt_ && !shard_sinks_.empty()) {
    if (TrafficSink* s = shard_sinks_[static_cast<std::size_t>(stats::lane())])
      return s;
  }
  return sink_;
}

void Network::enable_sharding(sim::ShardRuntime& rt, ShardMap map) {
  assert(static_cast<int>(map.shard_of.size()) == node_count());
  assert(map.nshards == rt.nshards());
  rt_ = &rt;
  shard_map_ = std::move(map);
  lanes_.clear();
  lanes_.resize(static_cast<std::size_t>(shard_map_.nshards));
  shard_sinks_.assign(lanes_.size(), nullptr);
  shard_next_uid_.assign(lanes_.size(), 1);
}

sim::Simulator& Network::simulator_for(NodeId node) { return sim_of_node(node); }

void Network::set_shard_sink(int shard, TrafficSink* sink) {
  assert(rt_ && shard >= 0 && shard < shard_map_.nshards);
  shard_sinks_[static_cast<std::size_t>(shard)] = sink;
}

void Network::set_metrics(stats::Metrics* metrics) {
  metrics_ = metrics;
  if (!metrics_) {
    for (auto& c : sends_by_class_) c = nullptr;
    for (auto& c : drops_by_reason_) c = nullptr;
    corrupted_ = nullptr;
    duplicated_ = nullptr;
    return;
  }
  for (int i = 0; i < kTrafficClassCount; ++i) {
    const stats::Labels labels{{"class", to_string(static_cast<TrafficClass>(i))}};
    sends_by_class_[i] = &metrics_->counter("net.sends", labels);
  }
  for (int i = 0; i < 4; ++i) {
    const stats::Labels labels{{"reason", to_string(static_cast<DropReason>(i))}};
    drops_by_reason_[i] = &metrics_->counter("net.drops", labels);
  }
  corrupted_ = &metrics_->counter("net.corrupted");
  duplicated_ = &metrics_->counter("net.duplicated");
}

void Network::memory_census(stats::MemCensus& census) const {
  // Topology vectors are append-only after build, so live == retained.
  std::uint64_t topo = nodes_.capacity() * sizeof(NodeRec) +
                       links_.capacity() * sizeof(Link) +
                       channels_.capacity() * sizeof(Channel);
  for (const NodeRec& n : nodes_) {
    topo += n.out_links.capacity() * sizeof(LinkId) +
            n.agents.capacity() * sizeof(Agent*);
  }
  for (const Channel& c : channels_) {
    // Hash-set node approximation: payload plus bucket/next pointers.
    topo += c.subs.size() * (sizeof(NodeId) + 2 * sizeof(void*));
  }
  census.add("net_topology", topo, topo);

  // Lazily built per-lane routing/forwarding caches; they only grow (no
  // eviction), so live == retained here too.
  std::uint64_t caches = lanes_.capacity() * sizeof(LaneCtx);
  for (const LaneCtx& lc : lanes_) {
    caches += lc.routing.capacity() * sizeof(Routing);
    for (const Routing& r : lc.routing) {
      caches += r.dist.capacity() * sizeof(sim::Time) +
                r.pred_link.capacity() * sizeof(LinkId) +
                r.next_hop.capacity() * sizeof(NodeId) +
                r.next_hop_known.capacity() / 8;
    }
    caches += lc.fwd_cache.size() *
              (sizeof(FwdKey) + sizeof(FwdEntry) + 2 * sizeof(void*));
    // The census sums integers, so iteration order never shows.
    for (const auto& [key, e] : lc.fwd_cache) {  // sharq-lint: unordered-iter-ok (integer byte sums commute)
      caches += e.nodes.capacity() * sizeof(NodeId) +
                e.out_begin.capacity() * sizeof(std::uint32_t) +
                e.links.capacity() * sizeof(LinkId) +
                e.deliver.capacity() / 8;
    }
    caches += (lc.arrive_outs.capacity() + lc.send_outs.capacity()) *
                  sizeof(LinkId) +
              lc.arrive_agents.capacity() * sizeof(Agent*);
  }
  census.add("net_caches", caches, caches);
}

void Network::count_drop(DropReason reason) {
  if (metrics_) drops_by_reason_[static_cast<int>(reason)]->inc();
}

void Network::journal_drop(LinkId link, const Packet& packet,
                           DropReason reason) {
  if (!journal_) return;
  // Recovery traffic always journals: a lost NACK or repair breaks a
  // causal chain the analyzer would otherwise call "stuck", so the drop
  // itself is the explanation. Data loss from the conditioner is ordinary
  // here and surfaces as loss.detected — but a queue-full drop journals
  // for every class, because overflow is an overload symptom the
  // robustness campaign must be able to narrate (docs/ROBUSTNESS.md).
  if (reason != DropReason::kQueueFull &&
      packet.cls != TrafficClass::kNack && packet.cls != TrafficClass::kRepair)
    return;
  journal_->emit("net.dropped", ctx_sim().now(), links_[link].to, -1,
                 journal_->uid_event(packet.uid),
                 {{"class", to_string(packet.cls)},
                  {"from", links_[link].from},
                  {"reason", to_string(reason)},
                  {"to", links_[link].to}});
}

NodeId Network::add_node() {
  nodes_.push_back(NodeRec{});
  invalidate_routing();
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Network::add_nodes(int count) {
  const NodeId first = static_cast<NodeId>(nodes_.size());
  for (int i = 0; i < count; ++i) add_node();
  return first;
}

LinkId Network::add_link(NodeId from, NodeId to, const LinkConfig& cfg) {
  assert(from >= 0 && from < node_count() && to >= 0 && to < node_count());
  assert(from != to && "self links are not allowed");
  Link l;
  l.from = from;
  l.to = to;
  l.bandwidth_bps = cfg.bandwidth_bps;
  l.delay = cfg.delay;
  if (cfg.loss_rate > 0.0) {
    l.cond.set_loss(std::make_unique<BernoulliLoss>(cfg.loss_rate));
  }
  l.rng = simu_.rng().fork();
  l.queue_limit_pkts = cfg.queue_limit_pkts;
  links_.push_back(std::move(l));
  const LinkId id = static_cast<LinkId>(links_.size() - 1);
  nodes_[from].out_links.push_back(id);
  invalidate_routing();
  return id;
}

std::pair<LinkId, LinkId> Network::add_duplex_link(NodeId a, NodeId b,
                                                   const LinkConfig& cfg) {
  return {add_link(a, b, cfg), add_link(b, a, cfg)};
}

void Network::set_loss_model(LinkId link, std::unique_ptr<LossModel> model) {
  assert(link >= 0 && link < link_count());
  links_[link].cond.set_loss(std::move(model));
}

void Network::set_link_bandwidth(LinkId link, double bandwidth_bps) {
  assert(link >= 0 && link < link_count());
  assert(bandwidth_bps > 0.0);
  // Takes effect at the next hand-off: packets already serializing keep
  // their computed busy window. Routing is delay-based, so no cache
  // invalidation is needed.
  links_[link].bandwidth_bps = bandwidth_bps;
}

void Network::set_link_queue_limit(LinkId link, int queue_limit_pkts) {
  assert(link >= 0 && link < link_count());
  // Already-queued packets are not evicted; a tighter limit applies to
  // subsequent hand-offs only (a squeeze narrows the door, it does not
  // throw out whoever is inside).
  links_[link].queue_limit_pkts = queue_limit_pkts;
}

LinkId Network::find_link(NodeId from, NodeId to) const {
  if (from < 0 || from >= node_count()) return kNoLink;
  for (LinkId l : nodes_[from].out_links) {
    if (links_[l].to == to) return l;
  }
  return kNoLink;
}

ChannelId Network::create_channel(ZoneId scope) {
  Channel c;
  c.scope = scope;
  channels_.push_back(std::move(c));
  return static_cast<ChannelId>(channels_.size() - 1);
}

void Network::subscribe(ChannelId ch, NodeId node) {
  assert(ch >= 0 && ch < static_cast<ChannelId>(channels_.size()));
  // Membership is shared read-only state inside a shard window; mutations
  // (joins/leaves, fault hooks) must happen at barriers or setup.
  assert(!rt_ || !rt_->in_window());
  if (channels_[ch].subs.insert(node).second) ++channels_[ch].version;
}

void Network::unsubscribe(ChannelId ch, NodeId node) {
  assert(ch >= 0 && ch < static_cast<ChannelId>(channels_.size()));
  assert(!rt_ || !rt_->in_window());
  if (channels_[ch].subs.erase(node) > 0) ++channels_[ch].version;
}

bool Network::subscribed(ChannelId ch, NodeId node) const {
  return channels_[ch].subs.contains(node);
}

std::vector<NodeId> Network::subscribers(ChannelId ch) const {
  return ordered_keys(channels_[ch].subs);
}

void Network::attach(NodeId node, Agent* agent) {
  assert(node >= 0 && node < node_count());
  agent->node_ = node;
  agent->net_ = this;
  nodes_[node].agents.push_back(agent);
}

void Network::detach(NodeId node, Agent* agent) {
  auto& v = nodes_[node].agents;
  v.erase(std::remove(v.begin(), v.end(), agent), v.end());
}

void Network::invalidate_routing() {
  for (LaneCtx& lc : lanes_) {
    for (Routing& r : lc.routing) r.valid = false;
    lc.fwd_cache.clear();
  }
}

void Network::ensure_routing(NodeId src) {
  LaneCtx& lc = ctx();
  if (lc.routing.size() < nodes_.size()) lc.routing.resize(nodes_.size());
  Routing& r = lc.routing[static_cast<std::size_t>(src)];
  if (r.valid) return;
  const int n = node_count();
  r.dist.assign(n, sim::kTimeInfinity);
  r.pred_link.assign(n, kNoLink);
  r.next_hop.assign(n, kNoNode);
  r.next_hop_known.assign(n, false);
  // Dijkstra by propagation delay, with a tiny per-hop epsilon so equal-
  // delay paths deterministically prefer fewer hops.
  constexpr sim::Time kHopEps = 1e-9;
  using Item = std::pair<sim::Time, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  r.dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > r.dist[u]) continue;
    for (LinkId lid : nodes_[u].out_links) {
      const Link& l = links_[lid];
      if (!l.up || !nodes_[l.from].up || !nodes_[l.to].up) continue;
      const sim::Time nd = d + l.delay + kHopEps;
      if (nd < r.dist[l.to]) {
        r.dist[l.to] = nd;
        r.pred_link[l.to] = lid;
        pq.emplace(nd, l.to);
      }
    }
  }
  r.valid = true;
}

std::vector<NodeId> Network::path(NodeId a, NodeId b) {
  ensure_routing(a);
  const Routing& r = ctx().routing[static_cast<std::size_t>(a)];
  if (b < 0 || b >= node_count() || r.dist[b] == sim::kTimeInfinity) return {};
  std::vector<NodeId> rev{b};
  NodeId cur = b;
  while (cur != a) {
    const LinkId pl = r.pred_link[cur];
    cur = links_[pl].from;
    rev.push_back(cur);
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

sim::Time Network::path_delay(NodeId a, NodeId b) {
  if (a == b) return 0.0;
  ensure_routing(a);
  const Routing& r = ctx().routing[static_cast<std::size_t>(a)];
  const sim::Time d = r.dist[b];
  if (d == sim::kTimeInfinity) return sim::kTimeInfinity;
  // Strip the per-hop epsilon contribution by recomputing over the path.
  sim::Time total = 0.0;
  NodeId cur = b;
  while (cur != a) {
    const LinkId pl = r.pred_link[cur];
    total += links_[pl].delay;
    cur = links_[pl].from;
  }
  return total;
}

double Network::path_loss(NodeId a, NodeId b) {
  if (a == b) return 0.0;
  ensure_routing(a);
  const Routing& r = ctx().routing[static_cast<std::size_t>(a)];
  if (r.dist[b] == sim::kTimeInfinity) return 1.0;
  double deliver = 1.0;
  NodeId cur = b;
  while (cur != a) {
    const LinkId pl = r.pred_link[cur];
    deliver *= 1.0 - links_[pl].cond.mean_drop_rate();
    cur = links_[pl].from;
  }
  return 1.0 - deliver;
}

int Network::FwdEntry::find(NodeId v) const {
  const auto it = std::lower_bound(nodes.begin(), nodes.end(), v);
  if (it == nodes.end() || *it != v) return -1;
  return static_cast<int>(it - nodes.begin());
}

/// Pack per-subscriber graft output — hops in insertion order (= wire
/// order of downstream copies) and delivery nodes in ascending order —
/// into the entry's CSR arrays.
void Network::pack_fwd_entry(FwdEntry& e,
                             std::vector<std::pair<NodeId, LinkId>>& hops,
                             const std::vector<NodeId>& deliver_nodes) {
  // stable_sort keeps each node's links in insertion order, which is the
  // deterministic wire order the dense layout used to provide.
  std::stable_sort(hops.begin(), hops.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  e.nodes.clear();
  for (const auto& [node, link] : hops) {
    if (e.nodes.empty() || e.nodes.back() != node) e.nodes.push_back(node);
  }
  for (NodeId d : deliver_nodes) {
    const auto it = std::lower_bound(e.nodes.begin(), e.nodes.end(), d);
    if (it == e.nodes.end() || *it != d) e.nodes.insert(it, d);
  }
  e.out_begin.assign(e.nodes.size() + 1, 0);
  e.links.clear();
  e.links.reserve(hops.size());
  e.deliver.assign(e.nodes.size(), false);
  std::size_t hi = 0;
  for (std::size_t i = 0; i < e.nodes.size(); ++i) {
    e.out_begin[i] = static_cast<std::uint32_t>(e.links.size());
    while (hi < hops.size() && hops[hi].first == e.nodes[i]) {
      e.links.push_back(hops[hi].second);
      ++hi;
    }
  }
  e.out_begin[e.nodes.size()] = static_cast<std::uint32_t>(e.links.size());
  for (NodeId d : deliver_nodes) {
    const auto it = std::lower_bound(e.nodes.begin(), e.nodes.end(), d);
    e.deliver[static_cast<std::size_t>(it - e.nodes.begin())] = true;
  }
}

const Network::FwdEntry& Network::forwarding(ChannelId ch, NodeId origin) {
  const Channel& channel = channels_[ch];
  FwdEntry& e = ctx().fwd_cache[FwdKey{ch, origin}];
  if (e.version == channel.version + 1) return e;

  e.version = channel.version + 1;  // 0 marks "never built"
  e.nodes.clear();
  e.out_begin.clear();
  e.links.clear();
  e.deliver.clear();

  const ZoneId scope = channel.scope;
  const bool origin_in_scope =
      scope == kNoZone || zones_.contains(scope, origin);
  if (!origin_in_scope) return e;  // boundary blocks everything

  if (scope == kNoZone) {
    build_unscoped_entry(e, channel, origin);
  } else {
    build_scoped_entry(e, channel, origin, scope);
  }
  return e;
}

void Network::build_unscoped_entry(FwdEntry& e, const Channel& channel,
                                   NodeId origin) {
  ensure_routing(origin);
  const Routing& r = ctx().routing[static_cast<std::size_t>(origin)];
  const int n = node_count();
  std::vector<bool> on_tree(n, false);
  on_tree[origin] = true;
  std::vector<std::pair<NodeId, LinkId>> hops;
  std::vector<NodeId> deliver_nodes;
  // Graft in ascending subscriber order: the hash set's own order differs
  // across standard libraries and rehashes, and it decides the order links
  // join the entry — i.e. the wire order of downstream copies.
  for (NodeId s : ordered_keys(channel.subs)) {
    if (s == origin) continue;
    if (r.dist[s] == sim::kTimeInfinity) continue;
    deliver_nodes.push_back(s);
    for (NodeId cur = s; !on_tree[cur];) {
      on_tree[cur] = true;
      const LinkId pl = r.pred_link[cur];
      hops.emplace_back(links_[pl].from, pl);
      cur = links_[pl].from;
    }
  }
  pack_fwd_entry(e, hops, deliver_nodes);
}

void Network::build_scoped_entry(FwdEntry& e, const Channel& channel,
                                 NodeId origin, ZoneId scope) {
  // Dijkstra restricted to the zone-induced subgraph: a scoped channel
  // never traverses a node outside the zone, so everything outside can be
  // ignored outright. Cost scales with the zone, not the whole network —
  // essential because every member is an origin on its session channel.
  const std::vector<NodeId> zone_nodes = ordered_keys(zones_.members(scope));
  const int m = static_cast<int>(zone_nodes.size());
  auto local = [&](NodeId v) -> int {
    const auto it = std::lower_bound(zone_nodes.begin(), zone_nodes.end(), v);
    if (it == zone_nodes.end() || *it != v) return -1;
    return static_cast<int>(it - zone_nodes.begin());
  };
  const int lorigin = local(origin);
  if (lorigin < 0) return;

  constexpr sim::Time kHopEps = 1e-9;
  std::vector<sim::Time> dist(m, sim::kTimeInfinity);
  std::vector<LinkId> pred(m, kNoLink);
  using Item = std::pair<sim::Time, int>;  // (dist, local index)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[lorigin] = 0.0;
  pq.emplace(0.0, lorigin);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    const NodeId un = zone_nodes[u];
    if (!nodes_[un].up) continue;
    for (LinkId lid : nodes_[un].out_links) {
      const Link& l = links_[lid];
      if (!l.up || !nodes_[l.from].up || !nodes_[l.to].up) continue;
      const int lv = local(l.to);
      if (lv < 0) continue;  // leaves the zone: scope boundary blocks it
      const sim::Time nd = d + l.delay + kHopEps;
      if (nd < dist[lv]) {
        dist[lv] = nd;
        pred[lv] = lid;
        pq.emplace(nd, lv);
      }
    }
  }

  std::vector<bool> on_tree(m, false);
  on_tree[lorigin] = true;
  std::vector<std::pair<NodeId, LinkId>> hops;
  std::vector<NodeId> deliver_nodes;
  for (NodeId s : ordered_keys(channel.subs)) {
    if (s == origin) continue;
    const int ls = local(s);
    if (ls < 0 || dist[ls] == sim::kTimeInfinity) continue;
    deliver_nodes.push_back(s);
    for (int cur = ls; !on_tree[cur];) {
      on_tree[cur] = true;
      const LinkId pl = pred[cur];
      hops.emplace_back(links_[pl].from, pl);
      cur = local(links_[pl].from);
    }
  }
  pack_fwd_entry(e, hops, deliver_nodes);
}

std::uint64_t Network::send(NodeId origin, ChannelId ch, TrafficClass cls,
                            int size_bytes,
                            std::shared_ptr<const MessageBase> msg,
                            bool lossless) {
  assert(origin >= 0 && origin < node_count());
  assert(ch >= 0 && ch < static_cast<ChannelId>(channels_.size()));
  SHARQ_PROF_SCOPE(net_forward);
  if (!nodes_[origin].up) return 0;  // a crashed node's NIC sends nothing
  Packet p;
  if (rt_) {
    const std::size_t shard =
        static_cast<std::size_t>(shard_map_.shard(origin));
    p.uid = (static_cast<std::uint64_t>(shard + 1) << 48) |
            shard_next_uid_[shard]++;
  } else {
    p.uid = next_uid_++;
  }
  p.origin = origin;
  p.channel = ch;
  p.cls = cls;
  p.size_bytes = size_bytes;
  p.lossless = lossless;
  p.msg = std::move(msg);
  // Bound-check before indexing: same forged-class hazard as
  // TraceWriter::enabled().
  const unsigned ci = static_cast<unsigned>(cls);
  if (metrics_ && ci < static_cast<unsigned>(kTrafficClassCount)) {
    sends_by_class_[ci]->inc();
  }
  // Copy the origin's out-links into lane scratch (capacity retained
  // across packets, so no steady-state allocation): transmit() is
  // event-deferred and touches no forwarding state, but the entry itself
  // lives in the lane's fwd cache and a rebuild must not invalidate the
  // iteration.
  LaneCtx& lc = ctx();
  assert(!lc.in_send && "Network::send is not reentrant");
  lc.in_send = true;
  const FwdEntry& fwd = forwarding(ch, origin);
  lc.send_outs.clear();
  if (const int i = fwd.find(origin); i >= 0) {
    lc.send_outs.assign(fwd.links.begin() + fwd.out_begin[i],
                        fwd.links.begin() + fwd.out_begin[i + 1]);
  }
  for (LinkId l : lc.send_outs) transmit(l, p);
  lc.in_send = false;
  return p.uid;
}

void Network::set_link_up(LinkId l, bool up) {
  assert(l >= 0 && l < link_count());
  // Link state is owned by one shard; administrative flips come from the
  // fault injector, which runs at barriers in sharded runs (every shard
  // clock agrees there, so ctx_sim().now() is THE time).
  assert(!rt_ || !rt_->in_window());
  Link& lk = links_[l];
  if (lk.up == up) return;
  lk.up = up;
  if (!up) {
    ++lk.epoch;  // invalidates packets currently being serialized
    lk.busy_until = ctx_sim().now();
    lk.queued = 0;
  }
  invalidate_routing();
}

void Network::set_node_up(NodeId node, bool up) {
  assert(node >= 0 && node < node_count());
  assert(!rt_ || !rt_->in_window());
  NodeRec& rec = nodes_[node];
  if (rec.up == up) return;
  rec.up = up;
  if (!up) {
    // Kill everything being serialized on an incident link, in either
    // direction — a crashed node neither finishes its own transmissions
    // nor terminates anyone else's.
    for (Link& lk : links_) {
      if (lk.from != node && lk.to != node) continue;
      ++lk.epoch;
      lk.busy_until = ctx_sim().now();
      lk.queued = 0;
    }
    // Multicast membership is soft state refreshed by the member; a dead
    // node stops refreshing, so drop it everywhere. Rejoining after a
    // restart is the protocol's responsibility.
    for (Channel& c : channels_) {
      if (c.subs.erase(node) > 0) ++c.version;
    }
  }
  invalidate_routing();
}

void Network::deliver_after(LinkId link, const Packet& out, sim::Time arrival) {
  // The propagate event belongs to the RECEIVING node's shard: its on_hop
  // accounting lands in that shard's sink and arrive() runs in that
  // shard's lane. Same-shard (and serial) hops schedule directly;
  // mid-window cross-shard hops ride the runtime's mailbox and are merged
  // at the barrier in (arrival, source shard, sequence) order — the
  // conservative lookahead guarantees `arrival` is at or beyond the
  // current window's end, so the merge never misses.
  auto fn = [this, link, out] {
    if (TrafficSink* s = sink()) s->on_hop(ctx_sim().now(), link, out);
    arrive(links_[link].to, out);
  };
  if (!rt_) {
    simu_.at(arrival, std::move(fn), "net.propagate");
    return;
  }
  const int src_shard = shard_map_.shard(links_[link].from);
  const int dst_shard = shard_map_.shard(links_[link].to);
  if (dst_shard == src_shard || !rt_->in_window()) {
    rt_->sim(dst_shard).at(arrival, std::move(fn), "net.propagate");
  } else {
    rt_->post(dst_shard, arrival, std::move(fn), "net.propagate");
  }
}

void Network::transmit(LinkId link, const Packet& packet) {
  Link& l = links_[link];
  const sim::Time now = ctx_sim().now();
  if (!l.up) {
    count_drop(DropReason::kLinkDown);
    journal_drop(link, packet, DropReason::kLinkDown);
    if (TrafficSink* s = sink()) s->on_drop(now, link, packet, DropReason::kLinkDown);
    return;
  }
  if (l.queue_limit_pkts >= 0 && l.queued >= l.queue_limit_pkts) {
    count_drop(DropReason::kQueueFull);
    journal_drop(link, packet, DropReason::kQueueFull);
    if (TrafficSink* s = sink()) {
      s->on_drop(now, link, packet, DropReason::kQueueFull);
    }
    return;
  }
  if (TrafficSink* s = sink()) s->on_transmit(now, link, packet);
  stats::Profiler::count(stats::ProfCounter::packets_forwarded);
  const sim::Time tx_time =
      static_cast<double>(packet.size_bytes) * 8.0 / l.bandwidth_bps;
  const sim::Time start = std::max(now, l.busy_until);
  l.busy_until = start + tx_time;
  ++l.queued;
  // The packet's fate is decided at serialization completion so stateful
  // (bursty) conditioner stages see packets in wire order. The event
  // runs on the shard owning the link's sending side — the same lane
  // executing this hand-off during a window, so link state stays
  // thread-private.
  sim_of_node(l.from).at(
      start + tx_time,
      [this, link, packet, epoch = l.epoch] {
        SHARQ_PROF_SCOPE(net_forward);
        Link& lk = links_[link];
        const sim::Time snow = ctx_sim().now();
        if (!lk.up || lk.epoch != epoch) {  // link or endpoint died mid-flight
          count_drop(DropReason::kEpochKill);
          journal_drop(link, packet, DropReason::kEpochKill);
          if (TrafficSink* s = sink()) {
            s->on_drop(snow, link, packet, DropReason::kEpochKill);
          }
          return;
        }
        --lk.queued;
        const PacketFate fate = lk.cond.next(lk.rng, packet);
        if (fate.drop) {
          count_drop(DropReason::kLoss);
          journal_drop(link, packet, DropReason::kLoss);
          if (TrafficSink* s = sink()) {
            s->on_drop(snow, link, packet, DropReason::kLoss);
          }
          return;
        }
        Packet out = packet;
        if (fate.corrupt) {
          out.corrupted = true;
          if (corrupted_) corrupted_->inc();
        }
        if (fate.duplicates > 0 && duplicated_) {
          duplicated_->inc(static_cast<std::uint64_t>(fate.duplicates));
        }
        // Duplicates are real wire copies, so each gets its own ledger entry;
        // jitter shifts the whole burst, letting later packets overtake it.
        for (int copy = 0; copy <= fate.duplicates; ++copy) {
          if (copy > 0) {
            if (TrafficSink* s = sink()) s->on_transmit(snow, link, out);
          }
          deliver_after(link, out, snow + lk.delay + fate.extra_delay);
        }
      },
      "net.serialize");
}

void Network::arrive(NodeId at, const Packet& packet) {
  SHARQ_PROF_SCOPE(net_forward);
  if (!nodes_[at].up) return;  // a crashed node terminates nothing
  // Copy what we need out of the cache entry first: agent callbacks may
  // send(), which can rebuild entries and invalidate references into the
  // cache. The copies land in lane scratch (capacity retained across
  // packets) — arrive() cannot reenter because every transmission is
  // deferred through the event queue.
  LaneCtx& lc = ctx();
  assert(!lc.in_arrive && "Network::arrive is not reentrant");
  lc.in_arrive = true;
  bool deliver_here = false;
  lc.arrive_outs.clear();
  {
    const FwdEntry& fwd = forwarding(packet.channel, packet.origin);
    if (const int i = fwd.find(at); i >= 0) {
      deliver_here = fwd.deliver[i];
      lc.arrive_outs.assign(fwd.links.begin() + fwd.out_begin[i],
                            fwd.links.begin() + fwd.out_begin[i + 1]);
    }
  }
  // Forward before delivering so downstream copies are not reordered by
  // anything an agent transmits synchronously on the same links.
  for (LinkId l : lc.arrive_outs) transmit(l, packet);
  if (deliver_here) {
    stats::Profiler::count(stats::ProfCounter::packets_delivered);
    if (TrafficSink* s = sink()) s->on_deliver(ctx_sim().now(), at, packet);
    // Copy: an agent may detach others while handling the packet.
    lc.arrive_agents.assign(nodes_[at].agents.begin(), nodes_[at].agents.end());
    for (Agent* a : lc.arrive_agents) a->on_receive(packet);
  }
  lc.in_arrive = false;
}

}  // namespace sharq::net
