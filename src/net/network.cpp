#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "sharqfec/ordered.hpp"
#include "stats/journal.hpp"
#include "stats/metrics.hpp"

namespace sharq::net {

const char* to_string(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kData: return "data";
    case TrafficClass::kRepair: return "repair";
    case TrafficClass::kNack: return "nack";
    case TrafficClass::kSession: return "session";
    case TrafficClass::kControl: return "control";
  }
  return "?";
}

const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kLinkDown: return "link-down";
    case DropReason::kQueueFull: return "queue-full";
    case DropReason::kLoss: return "loss";
    case DropReason::kEpochKill: return "epoch-kill";
  }
  return "?";
}

Network::Network(sim::Simulator& simu) : simu_(simu) {}

void Network::set_metrics(stats::Metrics* metrics) {
  metrics_ = metrics;
  if (!metrics_) {
    for (auto& c : sends_by_class_) c = nullptr;
    for (auto& c : drops_by_reason_) c = nullptr;
    corrupted_ = nullptr;
    duplicated_ = nullptr;
    return;
  }
  for (int i = 0; i < kTrafficClassCount; ++i) {
    const stats::Labels labels{{"class", to_string(static_cast<TrafficClass>(i))}};
    sends_by_class_[i] = &metrics_->counter("net.sends", labels);
  }
  for (int i = 0; i < 4; ++i) {
    const stats::Labels labels{{"reason", to_string(static_cast<DropReason>(i))}};
    drops_by_reason_[i] = &metrics_->counter("net.drops", labels);
  }
  corrupted_ = &metrics_->counter("net.corrupted");
  duplicated_ = &metrics_->counter("net.duplicated");
}

void Network::count_drop(DropReason reason) {
  if (metrics_) drops_by_reason_[static_cast<int>(reason)]->inc();
}

void Network::journal_drop(LinkId link, const Packet& packet,
                           DropReason reason) {
  if (!journal_) return;
  // Only recovery traffic: a lost NACK or repair breaks a causal chain the
  // analyzer would otherwise call "stuck", so the drop itself is the
  // explanation. Data loss is ordinary here and surfaces as loss.detected.
  if (packet.cls != TrafficClass::kNack && packet.cls != TrafficClass::kRepair)
    return;
  journal_->emit("net.dropped", simu_.now(), links_[link].to, -1,
                 journal_->uid_event(packet.uid),
                 {{"class", to_string(packet.cls)},
                  {"from", links_[link].from},
                  {"reason", to_string(reason)},
                  {"to", links_[link].to}});
}

NodeId Network::add_node() {
  nodes_.push_back(NodeRec{});
  routing_.push_back(Routing{});
  invalidate_routing();
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Network::add_nodes(int count) {
  const NodeId first = static_cast<NodeId>(nodes_.size());
  for (int i = 0; i < count; ++i) add_node();
  return first;
}

LinkId Network::add_link(NodeId from, NodeId to, const LinkConfig& cfg) {
  assert(from >= 0 && from < node_count() && to >= 0 && to < node_count());
  assert(from != to && "self links are not allowed");
  Link l;
  l.from = from;
  l.to = to;
  l.bandwidth_bps = cfg.bandwidth_bps;
  l.delay = cfg.delay;
  if (cfg.loss_rate > 0.0) {
    l.cond.set_loss(std::make_unique<BernoulliLoss>(cfg.loss_rate));
  }
  l.rng = simu_.rng().fork();
  l.queue_limit_pkts = cfg.queue_limit_pkts;
  links_.push_back(std::move(l));
  const LinkId id = static_cast<LinkId>(links_.size() - 1);
  nodes_[from].out_links.push_back(id);
  invalidate_routing();
  return id;
}

std::pair<LinkId, LinkId> Network::add_duplex_link(NodeId a, NodeId b,
                                                   const LinkConfig& cfg) {
  return {add_link(a, b, cfg), add_link(b, a, cfg)};
}

void Network::set_loss_model(LinkId link, std::unique_ptr<LossModel> model) {
  assert(link >= 0 && link < link_count());
  links_[link].cond.set_loss(std::move(model));
}

LinkId Network::find_link(NodeId from, NodeId to) const {
  if (from < 0 || from >= node_count()) return kNoLink;
  for (LinkId l : nodes_[from].out_links) {
    if (links_[l].to == to) return l;
  }
  return kNoLink;
}

ChannelId Network::create_channel(ZoneId scope) {
  Channel c;
  c.scope = scope;
  channels_.push_back(std::move(c));
  return static_cast<ChannelId>(channels_.size() - 1);
}

void Network::subscribe(ChannelId ch, NodeId node) {
  assert(ch >= 0 && ch < static_cast<ChannelId>(channels_.size()));
  if (channels_[ch].subs.insert(node).second) ++channels_[ch].version;
}

void Network::unsubscribe(ChannelId ch, NodeId node) {
  assert(ch >= 0 && ch < static_cast<ChannelId>(channels_.size()));
  if (channels_[ch].subs.erase(node) > 0) ++channels_[ch].version;
}

bool Network::subscribed(ChannelId ch, NodeId node) const {
  return channels_[ch].subs.contains(node);
}

std::vector<NodeId> Network::subscribers(ChannelId ch) const {
  return ordered_keys(channels_[ch].subs);
}

void Network::attach(NodeId node, Agent* agent) {
  assert(node >= 0 && node < node_count());
  agent->node_ = node;
  agent->net_ = this;
  nodes_[node].agents.push_back(agent);
}

void Network::detach(NodeId node, Agent* agent) {
  auto& v = nodes_[node].agents;
  v.erase(std::remove(v.begin(), v.end(), agent), v.end());
}

void Network::invalidate_routing() {
  for (Routing& r : routing_) r.valid = false;
  fwd_cache_.clear();
}

void Network::ensure_routing(NodeId src) {
  Routing& r = routing_[src];
  if (r.valid) return;
  const int n = node_count();
  r.dist.assign(n, sim::kTimeInfinity);
  r.pred_link.assign(n, kNoLink);
  r.next_hop.assign(n, kNoNode);
  r.next_hop_known.assign(n, false);
  // Dijkstra by propagation delay, with a tiny per-hop epsilon so equal-
  // delay paths deterministically prefer fewer hops.
  constexpr sim::Time kHopEps = 1e-9;
  using Item = std::pair<sim::Time, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  r.dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > r.dist[u]) continue;
    for (LinkId lid : nodes_[u].out_links) {
      const Link& l = links_[lid];
      if (!l.up || !nodes_[l.from].up || !nodes_[l.to].up) continue;
      const sim::Time nd = d + l.delay + kHopEps;
      if (nd < r.dist[l.to]) {
        r.dist[l.to] = nd;
        r.pred_link[l.to] = lid;
        pq.emplace(nd, l.to);
      }
    }
  }
  r.valid = true;
}

std::vector<NodeId> Network::path(NodeId a, NodeId b) {
  ensure_routing(a);
  const Routing& r = routing_[a];
  if (b < 0 || b >= node_count() || r.dist[b] == sim::kTimeInfinity) return {};
  std::vector<NodeId> rev{b};
  NodeId cur = b;
  while (cur != a) {
    const LinkId pl = r.pred_link[cur];
    cur = links_[pl].from;
    rev.push_back(cur);
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

sim::Time Network::path_delay(NodeId a, NodeId b) {
  if (a == b) return 0.0;
  ensure_routing(a);
  const sim::Time d = routing_[a].dist[b];
  if (d == sim::kTimeInfinity) return sim::kTimeInfinity;
  // Strip the per-hop epsilon contribution by recomputing over the path.
  sim::Time total = 0.0;
  NodeId cur = b;
  while (cur != a) {
    const LinkId pl = routing_[a].pred_link[cur];
    total += links_[pl].delay;
    cur = links_[pl].from;
  }
  return total;
}

double Network::path_loss(NodeId a, NodeId b) {
  if (a == b) return 0.0;
  ensure_routing(a);
  if (routing_[a].dist[b] == sim::kTimeInfinity) return 1.0;
  double deliver = 1.0;
  NodeId cur = b;
  while (cur != a) {
    const LinkId pl = routing_[a].pred_link[cur];
    deliver *= 1.0 - links_[pl].cond.mean_drop_rate();
    cur = links_[pl].from;
  }
  return 1.0 - deliver;
}

const Network::FwdEntry& Network::forwarding(ChannelId ch, NodeId origin) {
  const Channel& channel = channels_[ch];
  FwdEntry& e = fwd_cache_[FwdKey{ch, origin}];
  if (!e.out.empty() && e.version == channel.version + 1) return e;

  ensure_routing(origin);
  const Routing& r = routing_[origin];
  const int n = node_count();
  e.version = channel.version + 1;  // 0 marks "never built"
  e.out.assign(n, {});
  e.deliver.assign(n, false);

  const ZoneId scope = channel.scope;
  const bool origin_in_scope =
      scope == kNoZone || zones_.contains(scope, origin);
  if (!origin_in_scope) return e;  // boundary blocks everything

  std::vector<bool> on_tree(n, false);
  on_tree[origin] = true;
  std::vector<char> edge_added(links_.size(), 0);
  // Graft in ascending subscriber order: the hash set's own order differs
  // across standard libraries and rehashes, and it decides the order links
  // join e.out — i.e. the wire order of downstream copies.
  for (NodeId s : ordered_keys(channel.subs)) {
    if (s == origin) continue;
    if (scope != kNoZone && !zones_.contains(scope, s)) continue;
    if (r.dist[s] == sim::kTimeInfinity) continue;
    // Verify the whole path stays inside the scope zone, then graft it.
    bool inside = true;
    if (scope != kNoZone) {
      for (NodeId cur = s; cur != origin;) {
        const LinkId pl = r.pred_link[cur];
        cur = links_[pl].from;
        if (!zones_.contains(scope, cur)) {
          inside = false;
          break;
        }
      }
    }
    if (!inside) continue;
    e.deliver[s] = true;
    for (NodeId cur = s; !on_tree[cur];) {
      on_tree[cur] = true;
      const LinkId pl = r.pred_link[cur];
      if (!edge_added[pl]) {
        edge_added[pl] = 1;
        e.out[links_[pl].from].push_back(pl);
      }
      cur = links_[pl].from;
    }
  }
  return e;
}

std::uint64_t Network::send(NodeId origin, ChannelId ch, TrafficClass cls,
                            int size_bytes,
                            std::shared_ptr<const MessageBase> msg,
                            bool lossless) {
  assert(origin >= 0 && origin < node_count());
  assert(ch >= 0 && ch < static_cast<ChannelId>(channels_.size()));
  if (!nodes_[origin].up) return 0;  // a crashed node's NIC sends nothing
  Packet p;
  p.uid = next_uid_++;
  p.origin = origin;
  p.channel = ch;
  p.cls = cls;
  p.size_bytes = size_bytes;
  p.lossless = lossless;
  p.msg = std::move(msg);
  // Bound-check before indexing: same forged-class hazard as
  // TraceWriter::enabled().
  const unsigned ci = static_cast<unsigned>(cls);
  if (metrics_ && ci < static_cast<unsigned>(kTrafficClassCount)) {
    sends_by_class_[ci]->inc();
  }
  const std::vector<LinkId> outs = forwarding(ch, origin).out[origin];
  for (LinkId l : outs) transmit(l, p);
  return p.uid;
}

void Network::set_link_up(LinkId l, bool up) {
  assert(l >= 0 && l < link_count());
  Link& lk = links_[l];
  if (lk.up == up) return;
  lk.up = up;
  if (!up) {
    ++lk.epoch;  // invalidates packets currently being serialized
    lk.busy_until = simu_.now();
    lk.queued = 0;
  }
  invalidate_routing();
}

void Network::set_node_up(NodeId node, bool up) {
  assert(node >= 0 && node < node_count());
  NodeRec& rec = nodes_[node];
  if (rec.up == up) return;
  rec.up = up;
  if (!up) {
    // Kill everything being serialized on an incident link, in either
    // direction — a crashed node neither finishes its own transmissions
    // nor terminates anyone else's.
    for (Link& lk : links_) {
      if (lk.from != node && lk.to != node) continue;
      ++lk.epoch;
      lk.busy_until = simu_.now();
      lk.queued = 0;
    }
    // Multicast membership is soft state refreshed by the member; a dead
    // node stops refreshing, so drop it everywhere. Rejoining after a
    // restart is the protocol's responsibility.
    for (Channel& c : channels_) {
      if (c.subs.erase(node) > 0) ++c.version;
    }
  }
  invalidate_routing();
}

void Network::transmit(LinkId link, const Packet& packet) {
  Link& l = links_[link];
  if (!l.up) {
    count_drop(DropReason::kLinkDown);
    journal_drop(link, packet, DropReason::kLinkDown);
    if (sink_) sink_->on_drop(simu_.now(), link, packet, DropReason::kLinkDown);
    return;
  }
  if (l.queue_limit_pkts >= 0 && l.queued >= l.queue_limit_pkts) {
    count_drop(DropReason::kQueueFull);
    journal_drop(link, packet, DropReason::kQueueFull);
    if (sink_) {
      sink_->on_drop(simu_.now(), link, packet, DropReason::kQueueFull);
    }
    return;
  }
  if (sink_) sink_->on_transmit(simu_.now(), link, packet);
  const sim::Time now = simu_.now();
  const sim::Time tx_time =
      static_cast<double>(packet.size_bytes) * 8.0 / l.bandwidth_bps;
  const sim::Time start = std::max(now, l.busy_until);
  l.busy_until = start + tx_time;
  ++l.queued;
  // The packet's fate is decided at serialization completion so stateful
  // (bursty) conditioner stages see packets in wire order.
  simu_.at(
      start + tx_time,
      [this, link, packet, epoch = l.epoch] {
        Link& lk = links_[link];
        if (!lk.up || lk.epoch != epoch) {  // link or endpoint died mid-flight
          count_drop(DropReason::kEpochKill);
          journal_drop(link, packet, DropReason::kEpochKill);
          if (sink_) {
            sink_->on_drop(simu_.now(), link, packet, DropReason::kEpochKill);
          }
          return;
        }
        --lk.queued;
        const PacketFate fate = lk.cond.next(lk.rng, packet);
        if (fate.drop) {
          count_drop(DropReason::kLoss);
          journal_drop(link, packet, DropReason::kLoss);
          if (sink_) {
            sink_->on_drop(simu_.now(), link, packet, DropReason::kLoss);
          }
          return;
        }
        Packet out = packet;
        if (fate.corrupt) {
          out.corrupted = true;
          if (corrupted_) corrupted_->inc();
        }
        if (fate.duplicates > 0 && duplicated_) {
          duplicated_->inc(static_cast<std::uint64_t>(fate.duplicates));
        }
        // Duplicates are real wire copies, so each gets its own ledger entry;
        // jitter shifts the whole burst, letting later packets overtake it.
        for (int copy = 0; copy <= fate.duplicates; ++copy) {
          if (copy > 0 && sink_) sink_->on_transmit(simu_.now(), link, out);
          simu_.after(
              lk.delay + fate.extra_delay,
              [this, link, out] {
                if (sink_) sink_->on_hop(simu_.now(), link, out);
                arrive(links_[link].to, out);
              },
              "net.propagate");
        }
      },
      "net.serialize");
}

void Network::arrive(NodeId at, const Packet& packet) {
  if (!nodes_[at].up) return;  // a crashed node terminates nothing
  // Copy what we need out of the cache entry first: agent callbacks may
  // send(), which can rehash fwd_cache_ and invalidate references into it.
  bool deliver_here = false;
  std::vector<LinkId> outs;
  {
    const FwdEntry& fwd = forwarding(packet.channel, packet.origin);
    deliver_here = static_cast<int>(fwd.deliver.size()) > at && fwd.deliver[at];
    if (static_cast<int>(fwd.out.size()) > at) outs = fwd.out[at];
  }
  // Forward before delivering so downstream copies are not reordered by
  // anything an agent transmits synchronously on the same links.
  for (LinkId l : outs) transmit(l, packet);
  if (deliver_here) {
    if (sink_) sink_->on_deliver(simu_.now(), at, packet);
    // Copy: an agent may detach others while handling the packet.
    const std::vector<Agent*> agents = nodes_[at].agents;
    for (Agent* a : agents) a->on_receive(packet);
  }
}

}  // namespace sharq::net
