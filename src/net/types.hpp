#pragma once

#include <cstdint>

namespace sharq::net {

/// Index of a node (host or router) in a Network. Dense, 0-based.
using NodeId = std::int32_t;

/// Index of a simplex link in a Network. Dense, 0-based.
using LinkId = std::int32_t;

/// Index of a multicast channel (group) in a Network. Dense, 0-based.
using ChannelId = std::int32_t;

/// Index of an administrative scope zone. Dense, 0-based.
using ZoneId = std::int32_t;

inline constexpr NodeId kNoNode = -1;
inline constexpr LinkId kNoLink = -1;
inline constexpr ChannelId kNoChannel = -1;
inline constexpr ZoneId kNoZone = -1;

}  // namespace sharq::net
