#pragma once

#include <vector>

#include "sim/time.hpp"

namespace sharq::net {

/// Node -> shard assignment for the zone-sharded parallel runtime.
///
/// Produced by topo::make_zone_shard_map from the zone hierarchy: shard 0
/// holds the root zone (source side and anything unassigned), shards
/// 1..nshards-1 hold top-level zone subtrees. `lookahead` is the minimum
/// propagation delay over links whose endpoints live in different shards —
/// the conservative window length: a cross-shard packet sent at t cannot
/// arrive before t + lookahead.
///
/// nshards == 1 means "don't shard" (the partitioner found a zero-delay
/// cross-shard link, or the topology has no top-level zones).
struct ShardMap {
  int nshards = 1;
  sim::Time lookahead = 0.0;
  std::vector<int> shard_of;  // by node id

  int shard(int node) const {
    return node >= 0 && node < static_cast<int>(shard_of.size())
               ? shard_of[static_cast<std::size_t>(node)]
               : 0;
  }
};

}  // namespace sharq::net
