#include "net/zone.hpp"

#include <cassert>

namespace sharq::net {

ZoneId ZoneHierarchy::add_root() {
  assert(root_ == kNoZone && "root zone already exists");
  root_ = static_cast<ZoneId>(zones_.size());
  zones_.push_back(Zone{});
  return root_;
}

ZoneId ZoneHierarchy::add_zone(ZoneId parent) {
  assert(parent >= 0 && parent < static_cast<ZoneId>(zones_.size()));
  const ZoneId id = static_cast<ZoneId>(zones_.size());
  Zone z;
  z.parent = parent;
  z.level = zones_[parent].level + 1;
  zones_.push_back(std::move(z));
  zones_[parent].children.push_back(id);
  return id;
}

void ZoneHierarchy::assign(NodeId node, ZoneId zone) {
  assert(zone >= 0 && zone < static_cast<ZoneId>(zones_.size()));
  auto it = assignment_.find(node);
  if (it != assignment_.end()) {
    for (ZoneId z = it->second; z != kNoZone; z = zones_[z].parent) {
      zones_[z].members.erase(node);
    }
    zones_[it->second].direct.erase(node);
  }
  assignment_[node] = zone;
  zones_[zone].direct.insert(node);
  for (ZoneId z = zone; z != kNoZone; z = zones_[z].parent) {
    zones_[z].members.insert(node);
  }
}

bool ZoneHierarchy::contains(ZoneId zone, NodeId node) const {
  if (zone < 0 || zone >= static_cast<ZoneId>(zones_.size())) return false;
  return zones_[zone].members.contains(node);
}

ZoneId ZoneHierarchy::smallest_zone(NodeId node) const {
  auto it = assignment_.find(node);
  return it == assignment_.end() ? kNoZone : it->second;
}

std::vector<ZoneId> ZoneHierarchy::chain(NodeId node) const {
  std::vector<ZoneId> out;
  for (ZoneId z = smallest_zone(node); z != kNoZone; z = zones_[z].parent) {
    out.push_back(z);
  }
  return out;
}

ZoneId ZoneHierarchy::common_zone(NodeId a, NodeId b) const {
  ZoneId za = smallest_zone(a);
  if (za == kNoZone || smallest_zone(b) == kNoZone) return kNoZone;
  for (ZoneId z = za; z != kNoZone; z = zones_[z].parent) {
    if (contains(z, b)) return z;
  }
  return kNoZone;
}

bool ZoneHierarchy::is_ancestor_or_self(ZoneId ancestor, ZoneId zone) const {
  for (ZoneId z = zone; z != kNoZone; z = zones_[z].parent) {
    if (z == ancestor) return true;
  }
  return false;
}

}  // namespace sharq::net
