#pragma once

#include <memory>

#include "sim/random.hpp"

namespace sharq::net {

/// Per-link packet loss process.
///
/// Each simplex link owns one model instance and consults it once per
/// packet, in transmission order, so stateful (bursty) models see a
/// faithful packet sequence.
class LossModel {
 public:
  virtual ~LossModel() = default;

  /// Decide the fate of the next packet. True = packet is dropped.
  virtual bool drop_next(sim::Rng& rng) = 0;

  /// Long-run average drop probability (for analytic helpers and tests).
  virtual double mean_loss_rate() const = 0;

  /// Deep copy (links are cloned when topologies are duplicated).
  virtual std::unique_ptr<LossModel> clone() const = 0;
};

/// Independent (Bernoulli) loss at a fixed rate — the model the paper's
/// simulations use, justified there by MBone measurements of uncorrelated
/// loss across receivers.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double rate) : rate_(rate) {}

  bool drop_next(sim::Rng& rng) override { return rng.bernoulli(rate_); }
  double mean_loss_rate() const override { return rate_; }
  std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<BernoulliLoss>(rate_);
  }

  double rate() const { return rate_; }

 private:
  double rate_;
};

/// Two-state Gilbert-Elliott burst-loss model (extension beyond the paper:
/// lets the benchmarks probe sensitivity to loss correlation in time).
///
/// In the Good state packets drop with probability `good_loss`; in the Bad
/// state with `bad_loss`. Transitions g->b and b->g happen per packet with
/// the given probabilities.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                     double good_loss, double bad_loss)
      : p_gb_(p_good_to_bad),
        p_bg_(p_bad_to_good),
        good_loss_(good_loss),
        bad_loss_(bad_loss) {}

  bool drop_next(sim::Rng& rng) override;
  double mean_loss_rate() const override;
  std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<GilbertElliottLoss>(p_gb_, p_bg_, good_loss_,
                                                bad_loss_);
  }

  bool in_bad_state() const { return bad_; }

 private:
  double p_gb_;
  double p_bg_;
  double good_loss_;
  double bad_loss_;
  bool bad_ = false;
};

/// A link that never drops anything.
class NoLoss final : public LossModel {
 public:
  bool drop_next(sim::Rng&) override { return false; }
  double mean_loss_rate() const override { return 0.0; }
  std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<NoLoss>();
  }
};

}  // namespace sharq::net
