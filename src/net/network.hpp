#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/conditioner.hpp"
#include "net/loss.hpp"
#include "net/packet.hpp"
#include "net/shard_map.hpp"
#include "net/types.hpp"
#include "net/zone.hpp"
#include "sim/simulator.hpp"

namespace sharq::sim {
class ShardRuntime;
}  // namespace sharq::sim

namespace sharq::stats {
class Counter;
class Journal;
class Metrics;
struct MemCensus;
}  // namespace sharq::stats

namespace sharq::net {

class Network;

/// A protocol endpoint attached to a node.
///
/// Agents receive every packet delivered to their node on channels the
/// node subscribes to. A node's own sends are NOT looped back to its
/// agents (protocols track their own transmissions directly).
class Agent {
 public:
  virtual ~Agent() = default;

  /// Packet delivered to this agent's node.
  virtual void on_receive(const Packet& packet) = 0;

  NodeId node() const { return node_; }
  Network& network() const { return *net_; }

 private:
  friend class Network;
  NodeId node_ = kNoNode;
  Network* net_ = nullptr;
};

/// Why a link discarded a packet.
enum class DropReason : std::uint8_t {
  kLinkDown,   ///< offered to a link that is administratively down
  kQueueFull,  ///< FIFO cap reached at hand-off
  kLoss,       ///< the link's conditioner dropped it on the wire
  kEpochKill,  ///< link (or an endpoint node) died mid-serialization
};

/// Human-readable name for a DropReason.
const char* to_string(DropReason reason);

/// Observer for traffic accounting (implemented by the stats module).
///
/// Per-hop conservation contract: every `on_transmit` is followed, once the
/// event queue drains, by exactly one of `on_hop` (the hop completed) or
/// `on_drop` with reason kLoss / kEpochKill. Drops with reason kLinkDown /
/// kQueueFull happen at hand-off, *instead of* `on_transmit`. The chaos
/// soak asserts this ledger balances after every plan.
class TrafficSink {
 public:
  virtual ~TrafficSink() = default;

  /// Packet delivered to a subscribed node.
  virtual void on_deliver(sim::Time t, NodeId at, const Packet& packet) = 0;

  /// Packet handed to a link for transmission.
  virtual void on_transmit(sim::Time t, LinkId link, const Packet& packet) {
    (void)t, (void)link, (void)packet;
  }

  /// Packet completed one hop (propagation finished, about to arrive).
  virtual void on_hop(sim::Time t, LinkId link, const Packet& packet) {
    (void)t, (void)link, (void)packet;
  }

  /// Packet dropped by a link.
  virtual void on_drop(sim::Time t, LinkId link, const Packet& packet,
                       DropReason reason) {
    (void)t, (void)link, (void)packet, (void)reason;
  }
};

/// Configuration for one simplex link.
struct LinkConfig {
  double bandwidth_bps = 10e6;  ///< serialization rate
  sim::Time delay = 0.010;      ///< propagation delay, seconds
  double loss_rate = 0.0;       ///< Bernoulli drop probability
  int queue_limit_pkts = -1;    ///< FIFO cap; -1 = unbounded
};

/// The simulated network: nodes, simplex links, multicast channels with
/// administrative scoping, and source-rooted shortest-path forwarding.
///
/// Routing model: every source uses its shortest-path tree (by propagation
/// delay) toward the channel's subscribers, pruned at the boundary of the
/// channel's scope zone — packets on a scoped channel never traverse a
/// node outside the zone, which is exactly the containment administrative
/// scoping provides. Trees are rebuilt lazily when membership changes.
class Network {
 public:
  explicit Network(sim::Simulator& simu);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology -----------------------------------------------------------

  /// Add a node; returns its dense id.
  NodeId add_node();

  /// Add `count` nodes; returns the id of the first.
  NodeId add_nodes(int count);

  int node_count() const { return static_cast<int>(nodes_.size()); }

  /// Add one simplex link. Routing caches are invalidated.
  LinkId add_link(NodeId from, NodeId to, const LinkConfig& cfg);

  /// Add a duplex link (two simplex links with the same config).
  std::pair<LinkId, LinkId> add_duplex_link(NodeId a, NodeId b,
                                            const LinkConfig& cfg);

  /// Replace the loss process of a link (shorthand for
  /// `conditioner(link).set_loss(...)`).
  void set_loss_model(LinkId link, std::unique_ptr<LossModel> model);

  /// Full fault-conditioning pipeline of a link (loss, corruption,
  /// duplication, reordering). Mutable so fault plans can retune it mid-run.
  LinkConditioner& conditioner(LinkId link) { return links_[link].cond; }
  const LinkConditioner& conditioner(LinkId link) const {
    return links_[link].cond;
  }

  /// The simplex link from `from` to `to`, or kNoLink.
  LinkId find_link(NodeId from, NodeId to) const;

  int link_count() const { return static_cast<int>(links_.size()); }

  /// Endpoints of a link.
  NodeId link_from(LinkId l) const { return links_[l].from; }
  NodeId link_to(LinkId l) const { return links_[l].to; }

  /// Mean loss rate configured on a link.
  double link_loss_rate(LinkId l) const {
    return links_[l].cond.mean_drop_rate();
  }

  /// Propagation delay configured on a link.
  sim::Time link_delay(LinkId l) const { return links_[l].delay; }

  /// Take a link down (packets in flight are lost; routing recomputes
  /// around it) or bring it back up. Models backbone failures.
  void set_link_up(LinkId l, bool up);
  bool link_up(LinkId l) const { return links_[l].up; }

  /// Retune a link's serialization rate mid-run (fault plans: slow-receiver
  /// drag). Effective from the next hand-off; in-flight packets keep their
  /// computed serialization window.
  void set_link_bandwidth(LinkId l, double bandwidth_bps);
  double link_bandwidth(LinkId l) const { return links_[l].bandwidth_bps; }

  /// Retune a link's FIFO cap mid-run (fault plans: queue-limit squeeze);
  /// -1 = unbounded. Applies to subsequent hand-offs only.
  void set_link_queue_limit(LinkId l, int queue_limit_pkts);
  int link_queue_limit(LinkId l) const { return links_[l].queue_limit_pkts; }

  /// Crash a node (all incident links kill in-flight packets, every channel
  /// subscription is lost, sends from it become no-ops, and routing steers
  /// around it) or bring it back up. Rejoining is the protocol's job: a
  /// restarted node has no subscriptions until it re-joins its channels.
  void set_node_up(NodeId node, bool up);
  bool node_up(NodeId node) const { return nodes_[node].up; }

  // --- zones & channels ----------------------------------------------------

  ZoneHierarchy& zones() { return zones_; }
  const ZoneHierarchy& zones() const { return zones_; }

  /// Create a channel confined to `scope` (kNoZone = unscoped/global).
  ChannelId create_channel(ZoneId scope = kNoZone);

  ZoneId channel_scope(ChannelId ch) const { return channels_[ch].scope; }

  void subscribe(ChannelId ch, NodeId node);
  void unsubscribe(ChannelId ch, NodeId node);
  bool subscribed(ChannelId ch, NodeId node) const;

  /// Current members of a channel, ascending by id. A sorted snapshot, not
  /// a reference into the membership hash set: callers iterate this into
  /// timers, wire messages, and reports, where hash order would leak
  /// nondeterminism (docs/DETERMINISM.md).
  std::vector<NodeId> subscribers(ChannelId ch) const;
  std::size_t subscriber_count(ChannelId ch) const {
    return channels_[ch].subs.size();
  }

  // --- agents ---------------------------------------------------------------

  /// Attach an agent (non-owning) to a node.
  void attach(NodeId node, Agent* agent);
  void detach(NodeId node, Agent* agent);

  // --- traffic ---------------------------------------------------------------

  /// Multicast `msg` from `origin` on `ch`. Returns the packet uid.
  /// `lossless` exempts the packet from link loss (paper §6.2 exempts
  /// session messages and NACKs).
  std::uint64_t send(NodeId origin, ChannelId ch, TrafficClass cls,
                     int size_bytes, std::shared_ptr<const MessageBase> msg,
                     bool lossless = false);

  // --- ground truth (for tests, metrics, and analytic benches) -------------

  /// One-way propagation delay along the routed path (kTimeInfinity if
  /// unreachable).
  sim::Time path_delay(NodeId a, NodeId b);

  /// Compounded mean loss along the routed path a -> b.
  double path_loss(NodeId a, NodeId b);

  /// The routed node sequence a..b (empty if unreachable).
  std::vector<NodeId> path(NodeId a, NodeId b);

  // --- plumbing --------------------------------------------------------------

  void set_sink(TrafficSink* sink) { sink_ = sink; }

  /// Attach a metrics registry: net.sends{class}, net.drops{reason},
  /// net.corrupted, net.duplicated. Pass nullptr to detach.
  void set_metrics(stats::Metrics* metrics);

  /// Contribute the network's retained bytes to the profiler's memory
  /// census: topology vectors under "net_topology", per-lane routing and
  /// forwarding caches (plus packet scratch) under "net_caches".
  void memory_census(stats::MemCensus& census) const;

  /// Attach the recovery-lifecycle journal: drops of recovery traffic
  /// (NACK / repair classes only — data loss is ordinary, journaled
  /// indirectly as `loss.detected`) become `net.dropped` events whose
  /// cause is the event that sent the packet. Pass nullptr to detach.
  void set_journal(stats::Journal* journal) { journal_ = journal; }

  sim::Simulator& simulator() { return simu_; }

  // --- sharding (docs/ARCHITECTURE.md, "Zone-sharded parallel simulation") --

  /// Switch this network onto a shard runtime. Call after the topology is
  /// built (the map is computed from it) and before any protocol agents
  /// bind — agents must schedule into their node's shard via
  /// simulator_for(). Link events run on the shard owning the link's
  /// `from` node; a packet crossing into another shard is handed through
  /// the runtime's deterministic mailbox merge. Per-lane copies of the
  /// routing/forwarding caches keep lookups thread-private.
  void enable_sharding(sim::ShardRuntime& rt, ShardMap map);

  bool sharded() const { return rt_ != nullptr; }

  const ShardMap& shard_map() const { return shard_map_; }

  /// The simulator that owns `node`'s events: its shard's simulator when
  /// sharding is enabled, the base simulator otherwise. Agents bind their
  /// timers and RNG forks through this.
  sim::Simulator& simulator_for(NodeId node);

  /// Per-shard traffic sink (sharded runs): hop/deliver callbacks fire on
  /// the shard executing the packet, so each shard needs its own
  /// recorder; ledgers balance across the set, not per recorder.
  void set_shard_sink(int shard, TrafficSink* sink);

  /// Drop all routing/forwarding caches (topology editing mid-run).
  void invalidate_routing();

 private:
  struct Link {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    double bandwidth_bps = 0.0;
    sim::Time delay = 0.0;
    LinkConditioner cond;
    sim::Rng rng;
    int queue_limit_pkts = -1;
    sim::Time busy_until = 0.0;
    int queued = 0;
    bool up = true;
    std::uint32_t epoch = 0;  // bumped on down; kills in-flight packets
  };
  struct NodeRec {
    std::vector<LinkId> out_links;
    std::vector<Agent*> agents;
    bool up = true;
  };
  struct Channel {
    ZoneId scope = kNoZone;
    std::unordered_set<NodeId> subs;
    std::uint64_t version = 0;
  };
  struct Routing {
    bool valid = false;
    std::vector<sim::Time> dist;       // from src, by dst
    std::vector<LinkId> pred_link;     // into dst on shortest path from src
    std::vector<NodeId> next_hop;      // first hop from src toward dst
    std::vector<bool> next_hop_known;
  };
  struct FwdKey {
    ChannelId channel;
    NodeId origin;
    friend bool operator==(const FwdKey&, const FwdKey&) = default;
  };
  struct FwdKeyHash {
    std::size_t operator()(const FwdKey& k) const {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.channel))
           << 32) |
          static_cast<std::uint32_t>(k.origin));
    }
  };
  /// Sparse forwarding state for one (channel, origin): only nodes that
  /// forward or receive appear, in CSR form. On a scoped channel every
  /// member is an origin (session beacons), so a dense per-node layout
  /// would cost O(V) per entry — O(V²) across a session. Sparse entries
  /// cost O(zone size) instead (docs/ARCHITECTURE.md).
  struct FwdEntry {
    std::uint64_t version = 0;
    std::vector<NodeId> nodes;             // sorted, binary-searched
    std::vector<std::uint32_t> out_begin;  // nodes.size()+1 offsets into links
    std::vector<LinkId> links;             // grouped by node, in wire order
    std::vector<bool> deliver;             // parallel to nodes

    /// Index of `v` in nodes, or -1 when the node takes no part.
    int find(NodeId v) const;
  };

  /// Per-execution-lane working state. Serial runs use exactly lane 0; a
  /// sharded run gives every shard lane its own copy, so the lazily built
  /// routing/forwarding caches and the per-packet scratch are written only
  /// by the thread executing that lane — no sharing, no locks, and cache
  /// contents stay a pure function of topology state (identical across
  /// lanes whenever queried).
  struct LaneCtx {
    std::vector<Routing> routing;  // per source node, sized lazily
    std::unordered_map<FwdKey, FwdEntry, FwdKeyHash> fwd_cache;
    // Per-packet scratch, reused across calls so the hot path performs no
    // heap allocation in steady state. arrive()/send() are not reentrant
    // (transmission is event-deferred); guarded by an assert in debug.
    std::vector<LinkId> arrive_outs;
    std::vector<Agent*> arrive_agents;
    std::vector<LinkId> send_outs;
    bool in_arrive = false;
    bool in_send = false;
  };

  LaneCtx& ctx();
  /// Simulator providing "now" for the executing context: the executing
  /// lane's shard simulator, or the base simulator in serial runs. At
  /// barriers every shard clock agrees, so lane 0 is always safe there.
  sim::Simulator& ctx_sim();
  /// Simulator owning `node`'s events (shard of the node).
  sim::Simulator& sim_of_node(NodeId node);
  /// The sink observing the executing lane.
  TrafficSink* sink();

  void ensure_routing(NodeId src);
  const FwdEntry& forwarding(ChannelId ch, NodeId origin);
  /// Graft shortest paths from `origin` to in-scope subscribers restricted
  /// to the members of `scope`, appending (node, link) hops + delivery
  /// flags into `e`. Runs Dijkstra over the zone-induced subgraph only.
  void build_scoped_entry(FwdEntry& e, const Channel& channel, NodeId origin,
                          ZoneId scope);
  void build_unscoped_entry(FwdEntry& e, const Channel& channel,
                            NodeId origin);
  static void pack_fwd_entry(FwdEntry& e,
                             std::vector<std::pair<NodeId, LinkId>>& hops,
                             const std::vector<NodeId>& deliver_nodes);
  void transmit(LinkId link, const Packet& packet);
  /// Schedule the propagation-complete (hop + arrive) event for `out` on
  /// the shard owning the link's receiving side, crossing shards through
  /// the runtime mailbox when mid-window.
  void deliver_after(LinkId link, const Packet& out, sim::Time arrival);
  void arrive(NodeId at, const Packet& packet);

  sim::Simulator& simu_;
  std::vector<NodeRec> nodes_;
  std::vector<Link> links_;
  std::vector<Channel> channels_;
  ZoneHierarchy zones_;
  std::vector<LaneCtx> lanes_;  // [0] only in serial runs
  void count_drop(DropReason reason);
  void journal_drop(LinkId link, const Packet& packet, DropReason reason);

  // sharq-lint: shard-owned begin (per-shard lanes and uid streams: touched only from the owning lane or the barrier merge)
  sim::ShardRuntime* rt_ = nullptr;
  ShardMap shard_map_;
  std::vector<TrafficSink*> shard_sinks_;  // by shard, sharded runs only
  /// Per-shard uid streams: uid = (shard+1) << 48 | counter, keyed by the
  /// origin's shard, so uids are globally unique and depend only on each
  /// shard's own deterministic send order. Serial runs use next_uid_.
  std::vector<std::uint64_t> shard_next_uid_;
  // sharq-lint: shard-owned end

  TrafficSink* sink_ = nullptr;
  stats::Metrics* metrics_ = nullptr;
  stats::Journal* journal_ = nullptr;
  stats::Counter* sends_by_class_[kTrafficClassCount] = {};
  stats::Counter* drops_by_reason_[4] = {};
  stats::Counter* corrupted_ = nullptr;
  stats::Counter* duplicated_ = nullptr;
  std::uint64_t next_uid_ = 1;
};

}  // namespace sharq::net
