#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/types.hpp"

namespace sharq::net {

/// A hierarchy of nested administratively scoped zones.
///
/// Zones form a tree: the root zone (level 0) covers the whole session;
/// every other zone is strictly contained in its parent. Each node is
/// *assigned* to exactly one smallest zone and is implicitly a member of
/// every ancestor of that zone — matching how administrative scoping nests
/// on real networks (a host inside a site is also inside its region, etc.).
///
/// The network layer uses zone membership to confine scoped channels; the
/// SHARQFEC session layer uses the parent chain for ZCR election and
/// indirect RTT estimation.
class ZoneHierarchy {
 public:
  /// Create the root zone. Must be called exactly once, first.
  ZoneId add_root();

  /// Create a child zone of `parent`.
  ZoneId add_zone(ZoneId parent);

  /// Assign `node` to `zone` as its smallest zone. The node becomes a
  /// member of `zone` and all of its ancestors. A node may be re-assigned;
  /// old memberships are removed.
  void assign(NodeId node, ZoneId zone);

  /// True if `node` is a member of `zone` (directly or via nesting).
  bool contains(ZoneId zone, NodeId node) const;

  /// The smallest zone `node` was assigned to (kNoZone if unassigned).
  ZoneId smallest_zone(NodeId node) const;

  /// Zones containing `node`, ordered smallest -> root.
  std::vector<ZoneId> chain(NodeId node) const;

  /// Smallest zone containing both nodes (kNoZone if either unassigned).
  ZoneId common_zone(NodeId a, NodeId b) const;

  /// Parent of a zone (kNoZone for the root).
  ZoneId parent(ZoneId zone) const { return zones_.at(zone).parent; }

  /// Depth below the root (root = 0).
  int level(ZoneId zone) const { return zones_.at(zone).level; }

  /// The root zone id (kNoZone until add_root()).
  ZoneId root() const { return root_; }

  /// Direct children of a zone.
  const std::vector<ZoneId>& children(ZoneId zone) const {
    return zones_.at(zone).children;
  }

  /// All members of a zone (directly assigned or nested).
  const std::unordered_set<NodeId>& members(ZoneId zone) const {
    return zones_.at(zone).members;
  }

  /// Nodes whose *smallest* zone is exactly `zone`.
  const std::unordered_set<NodeId>& direct_members(ZoneId zone) const {
    return zones_.at(zone).direct;
  }

  int zone_count() const { return static_cast<int>(zones_.size()); }

  /// True when `ancestor` is `zone` itself or one of its ancestors.
  bool is_ancestor_or_self(ZoneId ancestor, ZoneId zone) const;

 private:
  struct Zone {
    ZoneId parent = kNoZone;
    int level = 0;
    std::vector<ZoneId> children;
    std::unordered_set<NodeId> members;
    std::unordered_set<NodeId> direct;
  };
  std::vector<Zone> zones_;
  std::unordered_map<NodeId, ZoneId> assignment_;
  ZoneId root_ = kNoZone;
};

}  // namespace sharq::net
