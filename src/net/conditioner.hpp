#pragma once

#include <memory>
#include <vector>

#include "net/loss.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace sharq::net {

/// The fate a link's conditioner pipeline assigns one packet at the moment
/// its serialization completes (wire order, same instant the old loss
/// models were consulted).
struct PacketFate {
  bool drop = false;        ///< packet is discarded by the link
  bool corrupt = false;     ///< payload bytes arrive damaged (checksum fails)
  int duplicates = 0;       ///< extra copies delivered beyond the original
  sim::Time extra_delay = 0.0;  ///< jitter added to propagation (reordering)
};

/// One composable stage of a link's conditioning pipeline.
///
/// Stages run in pipeline order and may set any field of the fate; a stage
/// must not *clear* a field an earlier stage set (faults compound). Stages
/// are stateful (burst models, periodic patterns) and are consulted once
/// per packet in transmission order.
class ConditionerStage {
 public:
  virtual ~ConditionerStage() = default;

  /// Decide this stage's contribution to the packet's fate.
  virtual void condition(PacketFate& fate, sim::Rng& rng,
                         const Packet& packet) = 0;

  /// Long-run probability that this stage alone discards a packet
  /// (only dropping stages report a nonzero rate).
  virtual double mean_drop_rate() const { return 0.0; }

  /// Deep copy (pipelines are cloned when topologies are duplicated).
  virtual std::unique_ptr<ConditionerStage> clone() const = 0;
};

/// Adversarial link conditioning: the generalization of the per-link loss
/// model into a pipeline that can also corrupt payload bytes (delivered
/// with `Packet::corrupted` set — the simulator's model of a failed
/// checksum over bit-flipped bytes), duplicate packets, and add delay
/// jitter so packets resequence in flight.
///
/// The built-in stages run in a fixed order — loss, corrupt, duplicate,
/// reorder — followed by any appended custom stages. All built-in fault
/// rates default to zero and, because `Rng::bernoulli` consumes no
/// randomness for p <= 0, a default-constructed conditioner is
/// byte-identical in behaviour (and RNG stream) to the bare loss model it
/// wraps.
///
/// Loss honours `Packet::lossless` (the paper exempts session messages and
/// NACKs from loss, §6.2); corruption, duplication, and reordering apply to
/// every packet — they model pathologies, not policy.
class LinkConditioner {
 public:
  LinkConditioner() : loss_(std::make_unique<NoLoss>()) {}

  LinkConditioner(LinkConditioner&&) = default;
  LinkConditioner& operator=(LinkConditioner&&) = default;

  /// Decide the fate of the next packet, in transmission order.
  PacketFate next(sim::Rng& rng, const Packet& packet);

  // --- built-in stages ------------------------------------------------------

  /// Replace the loss process (never null; pass NoLoss to disable).
  void set_loss(std::unique_ptr<LossModel> model);
  const LossModel& loss() const { return *loss_; }

  /// Probability a packet's payload is corrupted in flight.
  void set_corrupt_rate(double rate) { corrupt_rate_ = rate; }
  double corrupt_rate() const { return corrupt_rate_; }

  /// Probability a packet is duplicated (`copies` extras when it fires).
  void set_duplicate(double rate, int copies = 1);
  double duplicate_rate() const { return dup_rate_; }

  /// Probability a packet picks up extra delay, uniform in [0, max_jitter]
  /// — packets behind it can overtake, i.e. delay-jitter resequencing.
  void set_reorder(double rate, sim::Time max_jitter);
  double reorder_rate() const { return reorder_rate_; }
  sim::Time reorder_jitter() const { return reorder_jitter_; }

  /// Append a custom stage; custom stages run after the built-ins.
  void append(std::unique_ptr<ConditionerStage> stage);

  // --- analytics ------------------------------------------------------------

  /// Long-run probability a (loss-eligible) packet is discarded on the
  /// wire. Matches the old LossModel::mean_loss_rate() contract, so
  /// routing analytics (`Network::path_loss`) are unchanged by default.
  double mean_drop_rate() const;

  /// Long-run probability a packet fails to *usefully* arrive: dropped, or
  /// delivered corrupted (a hardened receiver rejects it either way).
  double effective_loss_rate() const;

  /// True when the pipeline is just a loss model (no fault stages armed).
  bool transparent() const {
    return corrupt_rate_ <= 0.0 && dup_rate_ <= 0.0 && reorder_rate_ <= 0.0 &&
           extra_.empty();
  }

  /// Deep copy (links are cloned when topologies are duplicated).
  LinkConditioner clone() const;

 private:
  std::unique_ptr<LossModel> loss_;
  double corrupt_rate_ = 0.0;
  double dup_rate_ = 0.0;
  int dup_copies_ = 1;
  double reorder_rate_ = 0.0;
  sim::Time reorder_jitter_ = 0.0;
  std::vector<std::unique_ptr<ConditionerStage>> extra_;
};

}  // namespace sharq::net
