#include "net/conditioner.hpp"

#include <utility>

namespace sharq::net {

PacketFate LinkConditioner::next(sim::Rng& rng, const Packet& packet) {
  PacketFate fate;
  // Stage order is fixed so a given seed produces the same draw sequence
  // regardless of which stages are armed (zero-rate stages draw nothing).
  if (!packet.lossless && loss_->drop_next(rng)) fate.drop = true;
  if (rng.bernoulli(corrupt_rate_)) fate.corrupt = true;
  if (rng.bernoulli(dup_rate_)) fate.duplicates += dup_copies_;
  if (rng.bernoulli(reorder_rate_)) {
    fate.extra_delay += rng.uniform(0.0, reorder_jitter_);
  }
  for (auto& stage : extra_) stage->condition(fate, rng, packet);
  return fate;
}

void LinkConditioner::set_loss(std::unique_ptr<LossModel> model) {
  loss_ = model ? std::move(model) : std::make_unique<NoLoss>();
}

void LinkConditioner::set_duplicate(double rate, int copies) {
  dup_rate_ = rate;
  dup_copies_ = copies < 1 ? 1 : copies;
}

void LinkConditioner::set_reorder(double rate, sim::Time max_jitter) {
  reorder_rate_ = rate;
  reorder_jitter_ = max_jitter < 0.0 ? 0.0 : max_jitter;
}

void LinkConditioner::append(std::unique_ptr<ConditionerStage> stage) {
  if (stage) extra_.push_back(std::move(stage));
}

double LinkConditioner::mean_drop_rate() const {
  // Independent stages: a packet survives only if every stage passes it.
  double deliver = 1.0 - loss_->mean_loss_rate();
  for (const auto& stage : extra_) deliver *= 1.0 - stage->mean_drop_rate();
  return 1.0 - deliver;
}

double LinkConditioner::effective_loss_rate() const {
  // Drop or corrupt both deny the receiver a usable packet; the two draws
  // are independent.
  const double usable =
      (1.0 - mean_drop_rate()) * (1.0 - (corrupt_rate_ > 0.0 ? corrupt_rate_
                                                             : 0.0));
  return 1.0 - usable;
}

LinkConditioner LinkConditioner::clone() const {
  LinkConditioner c;
  c.loss_ = loss_->clone();
  c.corrupt_rate_ = corrupt_rate_;
  c.dup_rate_ = dup_rate_;
  c.dup_copies_ = dup_copies_;
  c.reorder_rate_ = reorder_rate_;
  c.reorder_jitter_ = reorder_jitter_;
  c.extra_.reserve(extra_.size());
  for (const auto& stage : extra_) c.extra_.push_back(stage->clone());
  return c;
}

}  // namespace sharq::net
