#pragma once

#include <cstdint>
#include <memory>

#include "net/types.hpp"

namespace sharq::net {

/// Coarse classification of a packet for accounting and loss policy.
///
/// The paper's simulations subject data and repair packets to link loss but
/// exempt session messages and NACKs (§6.2); the link layer uses this class
/// together with Packet::lossless to apply that policy.
enum class TrafficClass : std::uint8_t {
  kData,     ///< original application data
  kRepair,   ///< FEC parity / ARQ retransmission
  kNack,     ///< repair requests
  kSession,  ///< session / RTT-estimation messages
  kControl,  ///< ZCR election and other control traffic
};

/// Number of TrafficClass values (for dense per-class arrays and for
/// bound-checking class-indexed bit masks).
inline constexpr int kTrafficClassCount = 5;

/// Human-readable name for a TrafficClass.
const char* to_string(TrafficClass cls);

/// Base class for protocol message bodies carried inside packets.
///
/// The network layer treats message bodies as opaque; protocol agents
/// downcast to their concrete message types on receive. Bodies are
/// immutable and shared between the copies a multicast fan-out creates.
struct MessageBase {
  virtual ~MessageBase() = default;
};

/// One packet in flight.
///
/// Copies of a Packet made during multicast forwarding share the message
/// body; the struct itself is tiny and copied by value per hop.
struct Packet {
  std::uint64_t uid = 0;      ///< unique per original send, kept across hops
  NodeId origin = kNoNode;    ///< node that performed the send
  ChannelId channel = kNoChannel;  ///< multicast channel it travels on
  TrafficClass cls = TrafficClass::kData;
  std::int32_t size_bytes = 0;     ///< wire size used for serialization time
  bool lossless = false;           ///< exempt from link loss (session/NACK)
  bool corrupted = false;          ///< payload damaged in flight (bit flips);
                                   ///< a checksum over the wire bytes fails,
                                   ///< so hardened receivers must reject it
  std::shared_ptr<const MessageBase> msg;  ///< protocol payload

  /// Downcast helper: the body as T, or nullptr if it is another type.
  template <typename T>
  const T* as() const {
    return dynamic_cast<const T*>(msg.get());
  }
};

}  // namespace sharq::net
