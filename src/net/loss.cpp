#include "net/loss.hpp"

namespace sharq::net {

bool GilbertElliottLoss::drop_next(sim::Rng& rng) {
  // State transition first, then the per-state loss draw, so a burst's
  // first packet already sees the Bad state's rate.
  if (bad_) {
    if (rng.bernoulli(p_bg_)) bad_ = false;
  } else {
    if (rng.bernoulli(p_gb_)) bad_ = true;
  }
  return rng.bernoulli(bad_ ? bad_loss_ : good_loss_);
}

double GilbertElliottLoss::mean_loss_rate() const {
  const double denom = p_gb_ + p_bg_;
  if (denom <= 0.0) return good_loss_;
  const double pi_bad = p_gb_ / denom;
  return (1.0 - pi_bad) * good_loss_ + pi_bad * bad_loss_;
}

}  // namespace sharq::net
