#include "app/file_transfer.hpp"

#include <algorithm>
#include <stdexcept>

namespace sharq::app {

FileMulticast::FileMulticast(sfq::Session& session, const sfq::Config& cfg)
    : session_(session), cfg_(cfg) {
  if (!cfg.real_payload) {
    throw std::invalid_argument(
        "FileMulticast needs Config::real_payload = true");
  }
  group_bytes_ =
      static_cast<std::size_t>(cfg_.group_size) * cfg_.shard_size_bytes;
}

std::uint32_t FileMulticast::send_file(std::vector<std::uint8_t> file,
                                       sim::Time start_at) {
  file_size_ = file.size();
  groups_ = static_cast<std::uint32_t>((file.size() + group_bytes_ - 1) /
                                       group_bytes_);
  if (groups_ == 0) groups_ = 0;
  session_.send_stream(groups_, start_at, std::move(file));
  return groups_;
}

void FileMulticast::attach_receiver(net::NodeId node, Delegate delegate) {
  ReceiverState st;
  st.delegate = std::move(delegate);
  receivers_[node] = std::move(st);
  // Surface bytes whenever the next in-order group completes. Groups can
  // complete out of order; pump() drains the contiguous prefix.
  session_.agent_for(node).transfer().set_completion_callback(
      [this, node](std::uint32_t) { pump(node); });
}

void FileMulticast::pump(net::NodeId node) {
  auto it = receivers_.find(node);
  if (it == receivers_.end()) return;
  ReceiverState& st = it->second;
  auto& transfer = session_.agent_for(node).transfer();
  while (!st.done && st.next_group < groups_ &&
         transfer.group_complete(st.next_group)) {
    std::vector<std::uint8_t> bytes = transfer.reconstructed(st.next_group);
    // Trim the final group's padding back to the true file size.
    const std::uint64_t remaining = file_size_ - st.offset;
    const std::size_t usable =
        static_cast<std::size_t>(std::min<std::uint64_t>(bytes.size(),
                                                         remaining));
    if (usable > 0 && st.delegate.on_bytes) {
      st.delegate.on_bytes(st.offset, bytes.data(), usable);
    }
    st.offset += usable;
    ++st.next_group;
    if (st.next_group == groups_ || st.offset == file_size_) {
      st.done = true;
      if (st.delegate.on_complete) st.delegate.on_complete();
    }
  }
}

std::uint64_t FileMulticast::bytes_delivered(net::NodeId node) const {
  auto it = receivers_.find(node);
  return it == receivers_.end() ? 0 : it->second.offset;
}

bool FileMulticast::file_complete(net::NodeId node) const {
  auto it = receivers_.find(node);
  return it != receivers_.end() && it->second.done;
}

}  // namespace sharq::app
