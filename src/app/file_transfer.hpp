#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sharqfec/protocol.hpp"

namespace sharq::app {

/// Application-level reliable file multicast on top of SHARQFEC.
///
/// The transfer layer deals in fixed-size groups of shards; this wrapper
/// deals in files: the sender takes an arbitrary byte buffer (padded to a
/// whole number of groups on the wire, trimmed again on delivery), and
/// each receiver surfaces a contiguous, in-order byte stream through a
/// callback as soon as the prefix is decodable — even though groups may
/// complete out of order under loss.
class FileMulticast {
 public:
  /// Callbacks a receiver can register.
  struct Delegate {
    /// `data`/`size`: the next contiguous chunk, `offset`: its position.
    std::function<void(std::uint64_t offset, const std::uint8_t* data,
                       std::size_t size)>
        on_bytes;
    /// The whole file arrived.
    std::function<void()> on_complete;
  };

  /// Wrap an existing session. `cfg.real_payload` must have been set on
  /// the session's Config (the wrapper checks and refuses otherwise).
  FileMulticast(sfq::Session& session, const sfq::Config& cfg);

  /// Sender side: schedule `file` for transmission at `start_at`.
  /// Returns the number of groups the file occupies on the wire.
  std::uint32_t send_file(std::vector<std::uint8_t> file, sim::Time start_at);

  /// Receiver side: register a delegate for `node`. Must be a receiver
  /// that belongs to the wrapped session.
  void attach_receiver(net::NodeId node, Delegate delegate);

  /// Bytes of contiguous prefix delivered to `node` so far.
  std::uint64_t bytes_delivered(net::NodeId node) const;

  /// True once `node` received the whole file.
  bool file_complete(net::NodeId node) const;

  std::uint64_t file_size() const { return file_size_; }
  std::uint32_t group_count() const { return groups_; }

 private:
  struct ReceiverState {
    Delegate delegate;
    std::uint32_t next_group = 0;   ///< first group not yet surfaced
    std::uint64_t offset = 0;       ///< bytes surfaced so far
    bool done = false;
  };

  void pump(net::NodeId node);

  sfq::Session& session_;
  sfq::Config cfg_;
  std::uint64_t file_size_ = 0;
  std::uint32_t groups_ = 0;
  std::size_t group_bytes_ = 0;
  std::unordered_map<net::NodeId, ReceiverState> receivers_;
};

}  // namespace sharq::app
