// File transfer: multicast a "software update" to a campus of receivers
// with the application-level FileMulticast API — the paper's motivating
// use case ("computer programs and legal documents must be delivered
// without loss for them to have any utility").
#include <cstdio>
#include <numeric>

#include "app/file_transfer.hpp"
#include "sim/simulator.hpp"
#include "topo/shapes.hpp"

using namespace sharq;

int main() {
  sim::Simulator simu(8080);
  net::Network net(simu);

  // Campus: distribution server -> 3 building switches -> 4 hosts each.
  const net::NodeId server = net.add_node();
  std::vector<net::NodeId> receivers;
  auto& zones = net.zones();
  const net::ZoneId campus = zones.add_root();
  zones.assign(server, campus);
  for (int b = 0; b < 3; ++b) {
    net::LinkConfig riser;
    riser.bandwidth_bps = 100e6;
    riser.delay = 0.002;
    riser.loss_rate = 0.02;
    const net::NodeId sw = net.add_node();
    net.add_duplex_link(server, sw, riser);
    const net::ZoneId building = zones.add_zone(campus);
    zones.assign(sw, building);
    receivers.push_back(sw);
    for (int h = 0; h < 4; ++h) {
      net::LinkConfig drop;
      drop.bandwidth_bps = 10e6;
      drop.delay = 0.001;
      drop.loss_rate = 0.03;
      const net::NodeId host = net.add_node();
      net.add_duplex_link(sw, host, drop);
      zones.assign(host, building);
      receivers.push_back(host);
    }
  }

  sfq::Config cfg;
  cfg.real_payload = true;
  cfg.group_size = 16;
  cfg.shard_size_bytes = 1024;
  cfg.data_rate_bps = 8e6;

  sfq::Session session(net, server, receivers, cfg);
  app::FileMulticast fm(session, cfg);

  // A 300 KiB "update image" with a recognizable checksum.
  std::vector<std::uint8_t> image(300 * 1024);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<std::uint8_t>(i * 167 + (i >> 9));
  }
  const std::uint64_t want_sum =
      std::accumulate(image.begin(), image.end(), std::uint64_t{0});

  struct Rx {
    std::uint64_t sum = 0;
    double done_at = -1.0;
  };
  std::vector<Rx> state(receivers.size());
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    fm.attach_receiver(
        receivers[i],
        {.on_bytes =
             [&state, i](std::uint64_t, const std::uint8_t* d, std::size_t n) {
               for (std::size_t j = 0; j < n; ++j) state[i].sum += d[j];
             },
         .on_complete = [&state, i, &simu] {
           state[i].done_at = simu.now();
         }});
  }

  session.start();
  const std::uint32_t groups = fm.send_file(image, 6.0);
  simu.run_until(60.0);

  std::printf("image: %zu bytes in %u groups of %d x %d B shards\n\n",
              image.size(), groups, cfg.group_size, cfg.shard_size_bytes);
  int ok = 0;
  double last_done = 0.0;
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    const bool match = state[i].sum == want_sum && state[i].done_at > 0;
    ok += match;
    last_done = std::max(last_done, state[i].done_at);
    std::printf("host %2d: %s at t=%.2fs\n", receivers[i],
                match ? "checksum OK" : "INCOMPLETE", state[i].done_at);
  }
  const double xfer = last_done - 6.0;
  std::printf("\n%d/%zu hosts verified; slowest finished %.2f s after start "
              "(%.0f kbit/s effective)\n",
              ok, receivers.size(), xfer,
              image.size() * 8.0 / xfer / 1000.0);
  return ok == static_cast<int>(receivers.size()) ? 0 : 1;
}
