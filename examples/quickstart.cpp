// Quickstart: reliably multicast a real payload over a lossy tree with
// SHARQFEC and verify every receiver reconstructs it bit-for-bit.
//
// This is the smallest end-to-end use of the library's public API:
//   1. build a Simulator + Network topology,
//   2. overlay administrative scope zones,
//   3. create a sfq::Session (source + receivers),
//   4. stream bytes, run the simulation, read them back.
#include <cstdio>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"

using namespace sharq;

int main() {
  // 1. A deterministic simulation universe.
  sim::Simulator simu(/*seed=*/2026);
  net::Network net(simu);

  // 2. Topology: a source feeding two lossy regional relays, each serving
  //    three receivers. Every link loses 5% of packets.
  const net::NodeId source = net.add_node();
  std::vector<net::NodeId> receivers;
  std::vector<net::NodeId> relays;
  for (int region = 0; region < 2; ++region) {
    net::LinkConfig backbone;
    backbone.bandwidth_bps = 45e6;
    backbone.delay = 0.030;
    backbone.loss_rate = 0.05;
    const net::NodeId relay = net.add_node();
    relays.push_back(relay);
    net.add_duplex_link(source, relay, backbone);
    for (int i = 0; i < 3; ++i) {
      net::LinkConfig access;
      access.bandwidth_bps = 10e6;
      access.delay = 0.010;
      access.loss_rate = 0.05;
      const net::NodeId rx = net.add_node();
      net.add_duplex_link(relay, rx, access);
      receivers.push_back(rx);
      // The relay itself also subscribes (it will become the zone's ZCR).
    }
    receivers.push_back(relay);
  }

  // 3. Administrative scoping: one global zone plus one zone per region.
  auto& zones = net.zones();
  const net::ZoneId global = zones.add_root();
  zones.assign(source, global);
  for (int region = 0; region < 2; ++region) {
    const net::ZoneId z = zones.add_zone(global);
    zones.assign(relays[region], z);
    for (int i = 0; i < 3; ++i) {
      zones.assign(receivers[region * 4 + i], z);
    }
  }

  // 4. A SHARQFEC session carrying real bytes.
  sfq::Config cfg;
  cfg.real_payload = true;
  cfg.group_size = 8;
  cfg.shard_size_bytes = 256;
  cfg.data_rate_bps = 2e6;

  rm::DeliveryLog log;
  sfq::Session session(net, source, receivers, cfg, &log);
  session.start();

  // The "document" to deliver: 4 groups x 8 shards x 256 bytes.
  const std::uint32_t kGroups = 4;
  std::vector<std::uint8_t> payload(kGroups * cfg.group_size *
                                    cfg.shard_size_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 13);
  }
  session.send_stream(kGroups, /*start_at=*/6.0, payload);
  simu.run_until(30.0);

  // 5. Verify.
  int ok = 0;
  for (net::NodeId rx : receivers) {
    std::vector<std::uint8_t> got;
    for (std::uint32_t g = 0; g < kGroups; ++g) {
      auto part = session.agent_for(rx).transfer().reconstructed(g);
      got.insert(got.end(), part.begin(), part.end());
    }
    const bool match = got == payload;
    ok += match;
    std::printf("receiver %2d: %s (%zu bytes, %zu groups complete)\n", rx,
                match ? "payload reconstructed" : "MISMATCH", got.size(),
                static_cast<std::size_t>(
                    session.agent_for(rx).transfer().groups_completed()));
  }
  std::uint64_t nacks = 0, repairs = 0;
  for (auto& a : session.agents()) {
    nacks += a->transfer().nacks_sent();
    repairs += a->transfer().repairs_sent();
  }
  std::printf("\n%d/%zu receivers complete | %llu NACKs, %llu repair shards, "
              "%llu preemptive\n",
              ok, receivers.size(), static_cast<unsigned long long>(nacks),
              static_cast<unsigned long long>(repairs),
              static_cast<unsigned long long>(
                  session.source_agent().transfer().preemptive_repairs_sent()));
  return ok == static_cast<int>(receivers.size()) ? 0 : 1;
}
