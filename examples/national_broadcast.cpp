// National broadcast: the paper's motivating scenario (§5.1) — a live
// event distributed through a 4-level national hierarchy with dedicated
// caches as static ZCRs. We build a reduced-scale instance, stream data
// through full SHARQFEC, and show (a) reliable delivery, (b) how session
// state per subscriber matches the analytic Figure 8 prediction, and
// (c) how repair traffic stays out of the national backbone.
#include <cstdio>

#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "stats/report.hpp"
#include "stats/traffic_recorder.hpp"
#include "topo/national.hpp"

using namespace sharq;

int main() {
  // Reduced scale: 2 regions x 3 cities x 3 suburbs x 4 subscribers.
  topo::NationalParams p;
  p.regions = 2;
  p.cities_per_region = 3;
  p.suburbs_per_city = 3;
  p.subscribers_per_suburb = 4;
  p.access_loss = 0.05;

  sim::Simulator simu(99);
  net::Network net(simu);
  topo::National nat = topo::make_national(net, p);

  std::vector<net::NodeId> receivers;
  for (auto v : {&nat.region_caches, &nat.city_caches, &nat.suburb_hubs,
                 &nat.subscribers}) {
    receivers.insert(receivers.end(), v->begin(), v->end());
  }

  stats::TrafficRecorder rec(net.node_count(), 0.1);
  net.set_sink(&rec);

  sfq::Config cfg;
  cfg.group_size = 8;
  cfg.data_rate_bps = 1e6;
  // The paper's deployment: "dedicated caching receivers have been
  // distributed at each of the bifurcation points to act as ZCRs except
  // at the suburb level where one of the subscribers will be elected".
  for (std::size_t r = 0; r < nat.region_caches.size(); ++r) {
    cfg.static_zcrs[nat.z_regions[r]] = nat.region_caches[r];
  }
  for (std::size_t c = 0; c < nat.city_caches.size(); ++c) {
    cfg.static_zcrs[nat.z_cities[c]] = nat.city_caches[c];
  }
  rm::DeliveryLog log;
  sfq::Session session(net, nat.source, receivers, cfg, &log);
  session.start();
  const std::uint32_t kGroups = 12;
  session.send_stream(kGroups, 6.0);
  simu.run_until(40.0);

  int complete = 0;
  for (net::NodeId r : receivers) complete += log.complete(r, kGroups);
  std::printf("national broadcast: %d/%zu receivers completed all %u groups\n\n",
              complete, receivers.size(), kGroups);

  // Figure 8 cross-check at this scale.
  topo::NationalAnalytics a = topo::analyze_national(p);
  stats::Table t({"level", "zones", "receivers", "analytic RTTs/receiver"});
  for (const auto& l : a.levels) {
    t.add_row({l.name, std::to_string(l.zone_count),
               std::to_string(l.receivers_total),
               std::to_string(l.rtts_per_receiver)});
  }
  t.print();

  // Traffic localization: how much repair traffic did each tier see?
  auto tier_mean = [&](const std::vector<net::NodeId>& nodes) {
    double total = 0.0;
    for (net::NodeId n : nodes) {
      total += rec.node_total(n, net::TrafficClass::kRepair);
    }
    return nodes.empty() ? 0.0 : total / static_cast<double>(nodes.size());
  };
  std::printf("\nmean repair packets seen per node, by tier:\n");
  std::printf("  source (national core): %.1f\n",
              rec.node_total(nat.source, net::TrafficClass::kRepair));
  std::printf("  region caches:          %.1f\n", tier_mean(nat.region_caches));
  std::printf("  city caches:            %.1f\n", tier_mean(nat.city_caches));
  std::printf("  suburb hubs:            %.1f\n", tier_mean(nat.suburb_hubs));
  std::printf("  subscribers:            %.1f\n", tier_mean(nat.subscribers));
  std::printf("\nRepairs concentrate at the lossy access tier; the core sees "
              "almost none\n(the paper's Figure 20 effect, at national "
              "scale).\n");
  return complete == static_cast<int>(receivers.size()) ? 0 : 1;
}
