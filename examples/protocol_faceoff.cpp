// Protocol face-off: SRM vs the ECSRM-like hybrid vs full SHARQFEC on one
// shared workload — the comparison the paper's evaluation builds up to,
// in a single runnable program.
#include <cstdio>

#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "srm/session.hpp"
#include "stats/report.hpp"
#include "stats/traffic_recorder.hpp"
#include "topo/figure10.hpp"

using namespace sharq;

namespace {

struct Outcome {
  std::string name;
  std::uint64_t nacks = 0;
  std::uint64_t repairs = 0;
  double rx_packets_per_receiver = 0;
  double backbone_nacks = 0;
  int incomplete = 0;
};

Outcome run_srm_case() {
  sim::Simulator simu(7);
  net::Network net(simu);
  topo::Figure10 topo = topo::make_figure10(net);
  stats::TrafficRecorder rec(net.node_count(), 0.1);
  net.set_sink(&rec);
  rm::DeliveryLog log;
  srm::Config cfg;
  srm::Session s(net, topo.source, topo.receivers, cfg, &log);
  s.start();
  s.send_stream(512, 6.0);
  simu.run_until(40.0);
  Outcome o;
  o.name = "SRM (adaptive timers)";
  for (auto& a : s.agents()) {
    o.nacks += a->requests_sent();
    o.repairs += a->repairs_sent();
  }
  double rx = 0;
  for (net::NodeId r : topo.receivers) {
    rx += rec.node_total(r, net::TrafficClass::kData) +
          rec.node_total(r, net::TrafficClass::kRepair);
    o.incomplete += log.complete(r, 512) ? 0 : 1;
  }
  o.rx_packets_per_receiver = rx / 112.0;
  o.backbone_nacks = rec.node_total(topo.source, net::TrafficClass::kNack);
  return o;
}

Outcome run_sfq_case(bool scoped, const char* name) {
  sim::Simulator simu(7);
  net::Network net(simu);
  topo::Figure10 topo = topo::make_figure10(net);
  stats::TrafficRecorder rec(net.node_count(), 0.1);
  net.set_sink(&rec);
  rm::DeliveryLog log;
  sfq::Config cfg;
  if (!scoped) {
    cfg.scoping = false;
    cfg.injection = false;
    cfg.sender_only = true;  // ECSRM-like
  }
  sfq::Session s(net, topo.source, topo.receivers, cfg, &log);
  s.start();
  s.send_stream(32, 6.0);  // 512 packets in groups of 16
  simu.run_until(40.0);
  Outcome o;
  o.name = name;
  for (auto& a : s.agents()) {
    o.nacks += a->transfer().nacks_sent();
    o.repairs += a->transfer().repairs_sent();
  }
  double rx = 0;
  for (net::NodeId r : topo.receivers) {
    rx += rec.node_total(r, net::TrafficClass::kData) +
          rec.node_total(r, net::TrafficClass::kRepair);
    o.incomplete += log.complete(r, 32) ? 0 : 1;
  }
  o.rx_packets_per_receiver = rx / 112.0;
  o.backbone_nacks = rec.node_total(topo.source, net::TrafficClass::kNack);
  return o;
}

}  // namespace

int main() {
  std::printf("Protocol face-off: 512 x 1000 B packets @ 800 kbit/s on the "
              "Figure 10 topology\n(13-28%% compounded loss at the leaves)\n\n");
  Outcome srm_o = run_srm_case();
  Outcome ecsrm_o = run_sfq_case(false, "Hybrid ARQ/FEC (ECSRM-like)");
  Outcome sfq_o = run_sfq_case(true, "SHARQFEC (scoped + injection)");

  stats::Table t({"protocol", "NACKs sent", "repairs sent",
                  "pkts/receiver", "NACKs at source", "incomplete"});
  for (const Outcome& o : {srm_o, ecsrm_o, sfq_o}) {
    t.add_row({o.name, std::to_string(o.nacks), std::to_string(o.repairs),
               stats::Table::num(o.rx_packets_per_receiver, 0),
               stats::Table::num(o.backbone_nacks, 0),
               std::to_string(o.incomplete)});
  }
  t.print();
  std::printf(
      "\nReading: SRM floods requests/repairs globally; the flat hybrid\n"
      "suppresses with counts+FEC; SHARQFEC additionally confines both to\n"
      "the zones that need them, keeping the source's neighborhood quiet.\n");
  return 0;
}
