// Lossy WAN session walk-through: runs SHARQFEC's scoped session
// management on the paper's evaluation topology and narrates what it
// builds — elected ZCRs per zone, per-level distance hints, and indirect
// RTT estimates between receivers that never exchanged a session message.
#include <algorithm>
#include <cstdio>

#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "stats/report.hpp"
#include "topo/figure10.hpp"

using namespace sharq;

int main() {
  sim::Simulator simu(31415);
  net::Network net(simu);
  topo::Figure10 topo = topo::make_figure10(net);

  sfq::Config cfg;
  sfq::Session session(net, topo.source, topo.receivers, cfg);
  session.start();
  simu.run_until(30.0);

  std::printf("SHARQFEC session management on the Figure 10 topology\n");
  std::printf("(112 receivers, 3-level administrative scope hierarchy)\n\n");

  // 1. Elected ZCRs.
  stats::Table zcrs({"zone", "kind", "elected ZCR", "expected"});
  for (int m = 0; m < 7; ++m) {
    const net::NodeId got =
        session.agent_for(topo.mesh[m]).session().zcr_of(topo.tree_zones[m]);
    zcrs.add_row({std::to_string(topo.tree_zones[m]), "tree",
                  std::to_string(got), std::to_string(topo.mesh[m])});
  }
  for (int c = 0; c < 21; c += 7) {
    const net::NodeId got = session.agent_for(topo.middles[c])
                                .session()
                                .zcr_of(topo.leaf_zones[c]);
    zcrs.add_row({std::to_string(topo.leaf_zones[c]), "leaf",
                  std::to_string(got), std::to_string(topo.middles[c])});
  }
  zcrs.print();

  // 2. A leaf's view of the world: distance hints up its chain.
  const net::NodeId leaf = topo.leaves[0];  // node 29
  auto& leaf_sess = session.agent_for(leaf).session();
  std::printf("\nnode %d's chain hints (zone, ZCR, cumulative one-way s):\n",
              leaf);
  for (const auto& h : leaf_sess.make_hints()) {
    std::printf("  zone %2d -> ZCR %3d at %.4f s\n", h.zone, h.zcr, h.dist);
  }

  // 3. Indirect RTT: estimate the distance from a leaf in tree 1 to a
  //    leaf in tree 6 — two nodes that share no session channel below the
  //    global scope and have never heard each other directly.
  const net::NodeId far_leaf = topo.leaves[83];  // node 112
  auto hints = session.agent_for(far_leaf).session().make_hints();
  const double est = leaf_sess.estimate_dist(far_leaf, hints);
  const double actual = net.path_delay(leaf, far_leaf);
  std::printf("\nindirect estimate %d -> %d: %.4f s (actual %.4f s, "
              "error %.1f%%)\n",
              leaf, far_leaf, est, actual,
              100.0 * (est - actual) / actual);

  // 4. Accuracy distribution across all receivers toward one sender.
  std::vector<double> ratios;
  auto sender_hints = session.agent_for(36).session().make_hints();
  for (net::NodeId r : topo.receivers) {
    if (r == 36) continue;
    const double e = session.agent_for(r).session().estimate_dist(36,
                                                                  sender_hints);
    ratios.push_back(e / net.path_delay(r, 36));
  }
  std::sort(ratios.begin(), ratios.end());
  std::printf("\nestimate/actual toward node 36 across %zu receivers: "
              "p10=%.3f p50=%.3f p90=%.3f\n",
              ratios.size(), ratios[ratios.size() / 10],
              ratios[ratios.size() / 2], ratios[9 * ratios.size() / 10]);
  std::printf("\nTotal session messages exchanged: ");
  std::uint64_t msgs = 0;
  for (auto& a : session.agents()) msgs += a->session().session_messages_sent();
  std::printf("%llu (O(sum of zone sizes^2), not O(n^2))\n",
              static_cast<unsigned long long>(msgs));
  return 0;
}
