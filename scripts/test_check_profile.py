#!/usr/bin/env python3
"""Unit coverage for check_profile.py's validation rules.

Each test feeds check_profile()/compare_baseline() a doc derived from a
known-good sharqfec.profile.v1 and asserts the exact failure (or absence
of one). The regression focus: by-shard slices silently disagreeing with
their totals, Channel-A drift sailing through a baseline comparison, and
the memory-attribution gate accepting a census that covers almost none of
the resident set.

Run directly (python3 scripts/test_check_profile.py) or via ctest/CI.
"""

import copy
import importlib.util
import math
import pathlib
import unittest

_HERE = pathlib.Path(__file__).resolve().parent
_SPEC = importlib.util.spec_from_file_location(
    "check_profile", _HERE / "check_profile.py")
check_profile = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_profile)


def hist(count=0, sum_s=0.0, buckets=()):
    return {"count": count, "sum_s": sum_s,
            "buckets": [{"le_s": le, "n": n} for le, n in buckets]}


def good_doc():
    return {
        "schema": check_profile.SCHEMA,
        "deterministic": {
            "shards": 2,
            "scopes": {
                "event_loop": {"total": 1000, "by_shard": [600, 400]},
                "net_forward": {"total": 420, "by_shard": [300, 120]},
            },
            "counters": {
                "events_dispatched": {"total": 1000, "by_shard": [600, 400]},
                "windows": {"total": 10, "by_shard": [10, 0]},
                "barriers": {"total": 10, "by_shard": [10, 0]},
            },
            "memory": {
                "peer_tables": {"live_bytes": 9000, "peak_bytes": 10000},
                "event_queue": {"live_bytes": 800000, "peak_bytes": 900000},
            },
        },
        "timing": {
            "clock": "tsc",
            "sample_period": 8,
            "wall_s": 2.0,
            "rss_delta_bytes": 1000000,
            "env": {"tool": "unit-test"},
            "self_time": {
                "event_loop": {"total_s": 1.1, "by_shard_s": [0.6, 0.5]},
                "net_forward": {"total_s": 0.5, "by_shard_s": [0.3, 0.2]},
            },
            "barrier_wait_by_shard_s": [0.01, 0.02],
            "truncated_scopes": 0,
            "histograms": {
                "barrier_wait": hist(3, 0.03, [(0.01, 1), (0.02, 2)]),
                "window_span": hist(10, 0.5, [(0.1, 10)]),
                "stall_window": hist(),
            },
        },
    }


def run(doc):
    errors, _, _ = check_profile.check_profile(doc)
    return errors


def run_baseline(doc, base, time_tol=10.0, mem_tol=0.25):
    errors = []
    check_profile.compare_baseline(
        doc["deterministic"], doc["timing"],
        base["deterministic"], base["timing"],
        time_tol, mem_tol, errors.append)
    return errors


class CheckProfileTest(unittest.TestCase):
    def assert_error(self, errors, needle):
        self.assertTrue(any(needle in e for e in errors),
                        f"no error containing {needle!r} in {errors!r}")

    def test_good_doc_passes(self):
        self.assertEqual(run(good_doc()), [])

    def test_wrong_schema(self):
        doc = good_doc()
        doc["schema"] = "sharqfec.profile.v0"
        self.assert_error(run(doc), "schema")

    def test_missing_timing_section(self):
        doc = good_doc()
        del doc["timing"]
        self.assert_error(run(doc), "timing section missing")

    def test_by_shard_must_sum_to_total(self):
        doc = good_doc()
        doc["deterministic"]["scopes"]["net_forward"]["by_shard"] = [300, 100]
        self.assert_error(run(doc), "sums to 400, total says 420")

    def test_by_shard_length_must_match_shards(self):
        doc = good_doc()
        doc["deterministic"]["scopes"]["net_forward"]["by_shard"] = [420]
        self.assert_error(run(doc), "exactly 2 entries")

    def test_nan_wall_s_is_rejected(self):
        doc = good_doc()
        doc["timing"]["wall_s"] = math.nan
        self.assert_error(run(doc), "wall_s")

    def test_negative_counter_is_rejected(self):
        doc = good_doc()
        doc["deterministic"]["counters"]["windows"]["total"] = -1
        self.assert_error(run(doc), "counters.windows")

    def test_live_bytes_above_peak_is_rejected(self):
        doc = good_doc()
        doc["deterministic"]["memory"]["peer_tables"]["live_bytes"] = 20000
        self.assert_error(run(doc), "live_bytes 20000 > peak_bytes")

    def test_self_time_may_exceed_wall_within_sampling_slack(self):
        # Sampled estimates scaled back up can legitimately land a little
        # above wall_s; only beyond 25% is it a calibration bug.
        doc = good_doc()
        doc["timing"]["self_time"]["event_loop"] = {
            "total_s": 1.9, "by_shard_s": [1.0, 0.9]}
        self.assertEqual(run(doc), [])
        doc["timing"]["self_time"]["event_loop"] = {
            "total_s": 2.5, "by_shard_s": [1.5, 1.0]}
        self.assert_error(run(doc), "more than")

    def test_bad_sample_period_is_rejected(self):
        doc = good_doc()
        doc["timing"]["sample_period"] = 0
        self.assert_error(run(doc), "sample_period")

    def test_histogram_bucket_sum_must_match_count(self):
        doc = good_doc()
        doc["timing"]["histograms"]["window_span"] = hist(10, 0.5, [(0.1, 7)])
        self.assert_error(run(doc), "buckets hold 7 samples, count says 10")

    def test_empty_profile_is_not_a_baseline(self):
        doc = good_doc()
        for table in ("scopes", "counters"):
            for entry in doc["deterministic"][table].values():
                entry["total"] = 0
                entry["by_shard"] = [0, 0]
        self.assert_error(run(doc), "events_dispatched is 0")

    def test_windows_without_barriers_is_rejected(self):
        doc = good_doc()
        doc["deterministic"]["counters"]["barriers"] = {
            "total": 0, "by_shard": [0, 0]}
        self.assert_error(run(doc), "0 barriers")

    def test_baseline_self_compare_passes(self):
        doc = good_doc()
        self.assertEqual(run_baseline(doc, copy.deepcopy(doc)), [])

    def test_baseline_channel_a_drift_is_exact(self):
        doc = good_doc()
        base = copy.deepcopy(doc)
        doc["deterministic"]["counters"]["events_dispatched"]["total"] = 1001
        self.assert_error(run_baseline(doc, base),
                          "Channel A must match exactly")

    def test_baseline_missing_scope_is_a_drift(self):
        doc = good_doc()
        base = copy.deepcopy(doc)
        del doc["deterministic"]["scopes"]["net_forward"]
        self.assert_error(run_baseline(doc, base), "net_forward")

    def test_baseline_memory_tolerance(self):
        doc = good_doc()
        base = copy.deepcopy(doc)
        doc["deterministic"]["memory"]["event_queue"]["peak_bytes"] = 1000000
        self.assertEqual(run_baseline(doc, base), [])  # ~11% move, tol 25%
        doc["deterministic"]["memory"]["event_queue"]["peak_bytes"] = 2000000
        self.assert_error(run_baseline(doc, base), "memory.event_queue")

    def test_baseline_wall_time_is_generous(self):
        doc = good_doc()
        base = copy.deepcopy(doc)
        doc["timing"]["wall_s"] = 15.0  # 7.5x on tol 10x: fine
        self.assertEqual(run_baseline(doc, base), [])
        doc["timing"]["wall_s"] = 2000.0
        self.assert_error(run_baseline(doc, base), "wall_s")


if __name__ == "__main__":
    unittest.main()
