#!/usr/bin/env python3
"""Validate a macro-sim benchmark baseline (BENCH_sim.json from macro_sim).

Usage: check_bench.py BENCH_sim.json [--min-receivers N] [--require-complete]
       [--max-kb-per-receiver X]

Checks, in order:
  parse     the file is a single JSON object
  schema    it carries schema/backend/peak_rss_bytes/cases with the right
            types, schema is "sharqfec-macro-sim-v1", and every case has
            the full column set (see CASE_FIELDS); non-finite numbers
            (NaN/Infinity, which the JSON parser happily accepts) are
            rejected wherever they appear
  labels    case names are unique — a sweep that writes two rows under
            one label would let one silently shadow the other in any
            name-keyed comparison
  sanity    per case: receivers/nodes/events positive, wall_s positive,
            events_per_sec consistent with events/wall_s (10% slack),
            complete_receivers <= receivers, zone_levels = zone_depth + 1,
            threads/shards columns coherent. A point where *no* receiver
            completed is a hard error even without --require-complete: a
            killed or wedged benchmark run must never be committed as a
            baseline. Sanity is evaluated per case — a schema error in an
            earlier case no longer hides sanity failures in later ones.
  scale     with --min-receivers N, at least one case reaches N receivers
            (the committed baseline must include a macro-scale point)
  complete  with --require-complete, every case delivered every group to
            every receiver (complete_receivers == receivers)
  memory    with --max-kb-per-receiver X, no case spends more than X KiB
            of RSS growth per receiver (the per-receiver memory budget;
            guards against protocol-state regressions at macro scale)

Exit status 0 on success; prints one line per failure otherwise.
"""

import json
import math
import sys

SCHEMA = "sharqfec-macro-sim-v1"
BACKENDS = ("calendar", "heap")

# field -> (type(s), must_be_positive)
CASE_FIELDS = {
    "name": (str, False),
    "threads": (int, False),   # 0 = serial engine, >= 1 = shard runtime
    "shards": (int, False),    # 0 = serial engine, >= 2 when sharded
    "zone_depth": (int, True),
    "zone_levels": (int, True),
    "fanout": (int, True),
    "leaves_per_hub": (int, True),
    "receivers": (int, True),
    "nodes": (int, True),
    "groups": (int, True),
    "horizon_s": ((int, float), True),
    "events": (int, True),
    "wall_s": ((int, float), True),
    "events_per_sec": ((int, float), True),
    "queue_high_water": ((int, float), True),
    "rss_delta_bytes": (int, False),
    "bytes_per_receiver": ((int, float), False),
    "complete_receivers": (int, False),
}

# Optional columns newer macro_sim builds add; older committed baselines
# predate them. "mem_peak_bytes" is the profiler census: category name ->
# retained bytes at end of run (docs/OBSERVABILITY.md, "Profiles").
OPTIONAL_CASE_FIELDS = ("mem_peak_bytes",)


def check_mem_peak(case, where, bad):
    mem = case.get("mem_peak_bytes")
    if mem is None:
        return
    if not isinstance(mem, dict) or not mem:
        bad(f"{where}: mem_peak_bytes is {mem!r}, expected a non-empty "
            f"object of category -> bytes")
        return
    for cat, val in mem.items():
        if not isinstance(cat, str) or not cat:
            bad(f"{where}: mem_peak_bytes has a non-string category "
                f"{cat!r}")
        if not isinstance(val, int) or isinstance(val, bool) or val < 0:
            bad(f"{where}: mem_peak_bytes[{cat!r}] is {val!r}, expected a "
                f"non-negative integer")


def check(doc, min_receivers, require_complete, max_kb_per_receiver=None):
    errors = []

    def bad(msg):
        errors.append(msg)

    if not isinstance(doc, dict):
        return ["top level is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        bad(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if doc.get("backend") not in BACKENDS:
        bad(f"backend is {doc.get('backend')!r}, expected one of {BACKENDS}")
    peak = doc.get("peak_rss_bytes")
    if not isinstance(peak, int) or peak < 0:
        bad(f"peak_rss_bytes is {peak!r}, expected a non-negative integer")
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        return errors + ["cases is missing, not a list, or empty"]

    names = [c.get("name") for c in cases
             if isinstance(c, dict) and isinstance(c.get("name"), str)]
    dups = sorted({n for n in names if names.count(n) > 1})
    if dups:
        bad(f"duplicate case names {dups}: every benchmark point must "
            f"carry a unique label")

    for i, case in enumerate(cases):
        where = f"case {i}"
        if not isinstance(case, dict):
            bad(f"{where}: not a JSON object")
            continue
        if isinstance(case.get("name"), str):
            where = f"case {case['name']!r}"
        before = len(errors)
        for field, (types, positive) in CASE_FIELDS.items():
            val = case.get(field)
            if not isinstance(val, types) or isinstance(val, bool):
                bad(f"{where}: {field} is {val!r}, expected {types}")
            elif isinstance(val, float) and not math.isfinite(val):
                bad(f"{where}: {field} is {val!r}, expected a finite number")
            elif positive and val <= 0:
                bad(f"{where}: {field} must be positive, got {val!r}")
        extra = set(case) - set(CASE_FIELDS) - set(OPTIONAL_CASE_FIELDS)
        if extra:
            bad(f"{where}: unknown fields {sorted(extra)}")
        check_mem_peak(case, where, bad)
        if len(errors) > before:
            continue  # this case's sanity checks assume its schema held

        if case["zone_levels"] != case["zone_depth"] + 1:
            bad(f"{where}: zone_levels {case['zone_levels']} != "
                f"zone_depth {case['zone_depth']} + 1")
        if case["receivers"] >= case["nodes"]:
            bad(f"{where}: receivers {case['receivers']} >= "
                f"nodes {case['nodes']} (the source is a node too)")
        implied = case["events"] / case["wall_s"]
        if abs(implied - case["events_per_sec"]) > 0.1 * implied:
            bad(f"{where}: events_per_sec {case['events_per_sec']:.0f} "
                f"inconsistent with events/wall_s {implied:.0f}")
        if case["complete_receivers"] > case["receivers"]:
            bad(f"{where}: complete_receivers {case['complete_receivers']} > "
                f"receivers {case['receivers']}")
        if case["complete_receivers"] == 0:
            bad(f"{where}: no receiver completed any transfer — a killed "
                f"or incomplete benchmark run is not a valid baseline point")
        if case["threads"] < 0 or case["shards"] < 0:
            bad(f"{where}: threads/shards must be non-negative")
        elif (case["threads"] > 0) != (case["shards"] > 0):
            bad(f"{where}: threads {case['threads']} and shards "
                f"{case['shards']} disagree about the engine (both zero "
                f"for serial, both positive for the shard runtime)")
        elif case["shards"] == 1:
            bad(f"{where}: shards == 1 is not a real partition")
        if require_complete and case["complete_receivers"] != case["receivers"]:
            bad(f"{where}: only {case['complete_receivers']}/"
                f"{case['receivers']} receivers completed every group")
        if max_kb_per_receiver is not None:
            limit = max_kb_per_receiver * 1024
            if case["bytes_per_receiver"] > limit:
                bad(f"{where}: bytes_per_receiver "
                    f"{case['bytes_per_receiver']:.0f} exceeds the "
                    f"{max_kb_per_receiver} KiB/receiver budget")

    if min_receivers is not None and not errors:
        best = max(c["receivers"] for c in cases if isinstance(c, dict))
        if best < min_receivers:
            bad(f"largest case has {best} receivers, "
                f"--min-receivers demands {min_receivers}")
    return errors


def main(argv):
    args = list(argv[1:])
    min_receivers = None
    max_kb_per_receiver = None
    require_complete = False
    if "--require-complete" in args:
        args.remove("--require-complete")
        require_complete = True
    if "--min-receivers" in args:
        at = args.index("--min-receivers")
        try:
            min_receivers = int(args[at + 1])
        except (IndexError, ValueError):
            print("check_bench: --min-receivers needs an integer", file=sys.stderr)
            return 2
        del args[at:at + 2]
    if "--max-kb-per-receiver" in args:
        at = args.index("--max-kb-per-receiver")
        try:
            max_kb_per_receiver = float(args[at + 1])
        except (IndexError, ValueError):
            print("check_bench: --max-kb-per-receiver needs a number",
                  file=sys.stderr)
            return 2
        del args[at:at + 2]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    try:
        with open(args[0], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_bench: {args[0]}: {exc}", file=sys.stderr)
        return 1

    errors = check(doc, min_receivers, require_complete, max_kb_per_receiver)
    for err in errors:
        print(f"check_bench: {err}", file=sys.stderr)
    if not errors:
        cases = doc["cases"]
        biggest = max(c["receivers"] for c in cases)
        print(f"check_bench: OK ({len(cases)} cases, "
              f"largest {biggest} receivers, backend {doc['backend']})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
