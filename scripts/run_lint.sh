#!/usr/bin/env bash
# One-command static analysis: sharq_lint (always), clang-tidy and
# shellcheck (when installed; required under --strict, which CI uses).
#
#   scripts/run_lint.sh [--strict] [--sarif FILE] [BUILD_DIR]
#
# BUILD_DIR defaults to ./build and must contain compile_commands.json for
# the clang-tidy stage (the top-level CMakeLists.txt always exports it).
# --sarif FILE is passed through to sharq_lint, which writes its findings
# (post-baseline) as SARIF 2.1.0 for code-scanning upload.
#
# The sharq_lint stage runs against tools/sharq_lint/baseline.txt: a
# shrink-only suppression list for pre-existing findings outside src/.
# A stale entry (the finding no longer exists) fails the run so the
# baseline can only ever get smaller.
set -u

cd "$(dirname "$0")/.." || exit 2

strict=0
build_dir=build
sarif_out=""
expect_sarif=0
for arg in "$@"; do
  if [ "$expect_sarif" -eq 1 ]; then
    sarif_out="$arg"
    expect_sarif=0
    continue
  fi
  case "$arg" in
    --strict) strict=1 ;;
    --sarif) expect_sarif=1 ;;
    --sarif=*) sarif_out="${arg#--sarif=}" ;;
    *) build_dir="$arg" ;;
  esac
done
if [ "$expect_sarif" -eq 1 ]; then
  echo "run_lint: --sarif needs a file argument" >&2
  exit 2
fi

fail=0
note_fail() {
  echo "run_lint: $1" >&2
  fail=1
}
skip_or_fail() {
  if [ "$strict" -eq 1 ]; then
    note_fail "$1 (required under --strict)"
  else
    echo "run_lint: $1 — skipping" >&2
  fi
}

# --- sharq_lint ------------------------------------------------------------------
# Prefer the CMake-built binary; fall back to a direct compile so the lint
# runs even before the first cmake configure.
lint_bin="$build_dir/tools/sharq_lint"
if [ ! -x "$lint_bin" ]; then
  lint_bin=$(mktemp -t sharq_lint.XXXXXX)
  if ! c++ -std=c++20 -O2 -o "$lint_bin" tools/sharq_lint/sharq_lint.cpp; then
    note_fail "could not build tools/sharq_lint/sharq_lint.cpp"
    exit "$fail"
  fi
fi
"$lint_bin" --self-test tools/sharq_lint/fixtures || note_fail "sharq_lint self-test failed"
lint_args=(--doc docs/OBSERVABILITY.md --reverse-docs
           --baseline tools/sharq_lint/baseline.txt)
if [ -n "$sarif_out" ]; then
  lint_args+=(--sarif "$sarif_out")
fi
"$lint_bin" "${lint_args[@]}" src tools bench examples tests ||
  note_fail "sharq_lint found violations or a stale baseline entry"

# --- clang-tidy ------------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "$build_dir/compile_commands.json" ]; then
    # Lint the compiled .cpp files (headers ride along via -header-filter
    # from .clang-tidy). Findings are errors: the config only enables
    # checks the tree is expected to hold.
    # Lint fixtures are parsed by sharq_lint, never compiled — no entry in
    # the compilation database, so keep them away from clang-tidy.
    mapfile -t sources < <(git ls-files 'src/*.cpp' 'tools/*.cpp' \
                           'bench/*.cpp' 'examples/*.cpp' 'tests/*.cpp' |
                           grep -v '/fixtures/')
    clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*' \
      "${sources[@]}" || note_fail "clang-tidy found violations"
  else
    skip_or_fail "no $build_dir/compile_commands.json for clang-tidy (run cmake first)"
  fi
else
  skip_or_fail "clang-tidy not installed"
fi

# --- shellcheck ------------------------------------------------------------------
if command -v shellcheck >/dev/null 2>&1; then
  shellcheck scripts/*.sh || note_fail "shellcheck found violations"
else
  skip_or_fail "shellcheck not installed"
fi

if [ "$fail" -eq 0 ]; then
  echo "run_lint: OK"
fi
exit "$fail"
