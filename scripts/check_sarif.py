#!/usr/bin/env python3
"""Structural validator for sharq_lint's SARIF 2.1.0 output.

CI cannot fetch the official JSON schema (no network in the sandboxed
jobs), so this checks the invariants GitHub code scanning actually
relies on, with stdlib json only:

  - top level: $schema naming sarif-2.1.0, version == "2.1.0", runs[]
  - each run: tool.driver.name/informationUri, rules[] with unique ids
    and defaultConfiguration.level in the SARIF level set
  - each result: ruleId present among the driver rules, ruleIndex
    agreeing with the rules array, a level, message.text, and exactly
    one physicalLocation with a relative uri, uriBaseId, and a
    startLine >= 1

Usage: scripts/check_sarif.py FILE.sarif
Exits 0 when the file holds, 1 with one line per violation otherwise.
"""
import json
import sys

LEVELS = {"none", "note", "warning", "error"}


def main(path):
    errors = []

    def bad(msg):
        errors.append(f"check_sarif: {path}: {msg}")

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_sarif: {path}: unreadable or not JSON: {e}",
              file=sys.stderr)
        return 1

    if "sarif-2.1.0" not in str(doc.get("$schema", "")):
        bad(f"$schema does not name sarif-2.1.0: {doc.get('$schema')!r}")
    if doc.get("version") != "2.1.0":
        bad(f"version is {doc.get('version')!r}, want '2.1.0'")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        bad("runs is missing, not a list, or empty")
        runs = []

    for ri, run in enumerate(runs):
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            bad(f"runs[{ri}].tool.driver.name missing")
        if not driver.get("informationUri"):
            bad(f"runs[{ri}].tool.driver.informationUri missing")
        rules = driver.get("rules", [])
        ids = [r.get("id") for r in rules]
        if len(set(ids)) != len(ids):
            bad(f"runs[{ri}] rule ids are not unique")
        for qi, rule in enumerate(rules):
            if not rule.get("id"):
                bad(f"runs[{ri}].rules[{qi}].id missing")
            level = rule.get("defaultConfiguration", {}).get("level")
            if level not in LEVELS:
                bad(f"runs[{ri}].rules[{qi}] level {level!r} not in {sorted(LEVELS)}")
            if not rule.get("shortDescription", {}).get("text"):
                bad(f"runs[{ri}].rules[{qi}].shortDescription.text missing")

        for si, res in enumerate(run.get("results", [])):
            where = f"runs[{ri}].results[{si}]"
            rule_id = res.get("ruleId")
            if rule_id not in ids:
                bad(f"{where}.ruleId {rule_id!r} not among the driver rules")
            idx = res.get("ruleIndex")
            if not isinstance(idx, int) or not 0 <= idx < len(ids):
                bad(f"{where}.ruleIndex {idx!r} out of range")
            elif ids[idx] != rule_id:
                bad(f"{where}.ruleIndex {idx} names {ids[idx]!r}, not {rule_id!r}")
            if res.get("level") not in LEVELS:
                bad(f"{where}.level {res.get('level')!r} invalid")
            if not res.get("message", {}).get("text"):
                bad(f"{where}.message.text missing")
            locs = res.get("locations", [])
            if len(locs) != 1:
                bad(f"{where} has {len(locs)} locations, want 1")
                continue
            phys = locs[0].get("physicalLocation", {})
            art = phys.get("artifactLocation", {})
            uri = art.get("uri", "")
            if not uri:
                bad(f"{where} artifactLocation.uri missing")
            elif uri.startswith("/") or ":" in uri.split("/", 1)[0]:
                bad(f"{where} uri {uri!r} is not repo-relative")
            if not art.get("uriBaseId"):
                bad(f"{where} artifactLocation.uriBaseId missing")
            start = phys.get("region", {}).get("startLine")
            if not isinstance(start, int) or start < 1:
                bad(f"{where} region.startLine {start!r} invalid")

    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        nres = sum(len(r.get("results", [])) for r in runs)
        nrules = sum(len(r.get("tool", {}).get("driver", {}).get("rules", []))
                     for r in runs)
        print(f"check_sarif: {path}: OK "
              f"({len(runs)} run(s), {nrules} rule(s), {nres} result(s))")
    return 1 if errors else 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
