#!/usr/bin/env python3
"""Unit coverage for check_bench.py's validation rules.

Each test feeds check() a doc derived from a known-good baseline and
asserts the exact failure (or absence of one). The regression focus is
the three silent-pass bugs: duplicate case labels, non-finite
events_per_sec (json.load parses NaN!), and killed/incomplete points
sailing through when --require-complete is off — plus the early-continue
bug where one case's schema error suppressed every later case's sanity
checks.

Run directly (python3 scripts/test_check_bench.py) or via ctest/CI.
"""

import importlib.util
import math
import pathlib
import unittest

_HERE = pathlib.Path(__file__).resolve().parent
_SPEC = importlib.util.spec_from_file_location(
    "check_bench", _HERE / "check_bench.py")
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)


def good_case(name="d2_f4_smoke", **overrides):
    case = {
        "name": name,
        "threads": 0,
        "shards": 0,
        "zone_depth": 2,
        "zone_levels": 3,
        "fanout": 4,
        "leaves_per_hub": 8,
        "receivers": 148,
        "nodes": 149,
        "groups": 2,
        "horizon_s": 20.0,
        "events": 151000,
        "wall_s": 0.13,
        "events_per_sec": 151000 / 0.13,
        "queue_high_water": 909.0,
        "rss_delta_bytes": 9000000,
        "bytes_per_receiver": 9000000 / 148,
        "complete_receivers": 148,
    }
    case.update(overrides)
    return case


def good_doc(*cases):
    return {
        "schema": check_bench.SCHEMA,
        "backend": "calendar",
        "peak_rss_bytes": 1 << 30,
        "cases": list(cases) or [good_case()],
    }


def run(doc, min_receivers=None, require_complete=False,
        max_kb_per_receiver=None):
    return check_bench.check(doc, min_receivers, require_complete,
                             max_kb_per_receiver)


class CheckBenchTest(unittest.TestCase):
    def assert_error(self, errors, needle):
        self.assertTrue(any(needle in e for e in errors),
                        f"no error containing {needle!r} in {errors!r}")

    def test_good_doc_passes(self):
        self.assertEqual(run(good_doc()), [])

    def test_sharded_case_passes(self):
        doc = good_doc(good_case(),
                       good_case(name="d2_f4_smoke_t4", threads=4, shards=8))
        self.assertEqual(run(doc), [])

    def test_duplicate_names_are_a_hard_error(self):
        doc = good_doc(good_case(), good_case())
        self.assert_error(run(doc), "duplicate case names")

    def test_nan_events_per_sec_is_a_hard_error(self):
        doc = good_doc(good_case(events_per_sec=math.nan))
        self.assert_error(run(doc), "finite")

    def test_infinite_wall_s_is_a_hard_error(self):
        doc = good_doc(good_case(wall_s=math.inf))
        self.assert_error(run(doc), "finite")

    def test_negative_events_per_sec_is_a_hard_error(self):
        doc = good_doc(good_case(events_per_sec=-1.0))
        self.assert_error(run(doc), "must be positive")

    def test_killed_point_fails_without_require_complete(self):
        doc = good_doc(good_case(complete_receivers=0))
        self.assert_error(run(doc, require_complete=False),
                          "killed or incomplete")

    def test_partial_point_passes_without_require_complete(self):
        doc = good_doc(good_case(complete_receivers=100))
        self.assertEqual(run(doc), [])

    def test_partial_point_fails_with_require_complete(self):
        doc = good_doc(good_case(complete_receivers=100))
        self.assert_error(run(doc, require_complete=True),
                          "completed every group")

    def test_schema_error_in_one_case_does_not_mask_the_next(self):
        # Regression: check() used to skip sanity for every case after the
        # first error ("if errors: continue" against the global list).
        broken = good_case(name="broken", events="many")
        inconsistent = good_case(name="inconsistent",
                                 events_per_sec=1.0)  # wildly off events/wall
        errors = run(good_doc(broken, inconsistent))
        self.assert_error(errors, "'broken'")
        self.assert_error(errors, "'inconsistent'")
        self.assert_error(errors, "inconsistent with events/wall_s")

    def test_threads_shards_must_agree(self):
        doc = good_doc(good_case(threads=4, shards=0))
        self.assert_error(run(doc), "disagree about the engine")
        doc = good_doc(good_case(threads=2, shards=1))
        self.assert_error(run(doc), "not a real partition")

    def test_bool_is_not_an_int(self):
        doc = good_doc(good_case(receivers=True))
        self.assert_error(run(doc), "receivers")

    def test_unknown_field_is_rejected(self):
        doc = good_doc(good_case(speedup=3.0))
        self.assert_error(run(doc), "unknown fields")

    def test_min_receivers_gate(self):
        self.assert_error(run(good_doc(), min_receivers=100000),
                          "--min-receivers demands")
        self.assertEqual(run(good_doc(), min_receivers=100), [])

    def test_memory_budget_gate(self):
        doc = good_doc(good_case(bytes_per_receiver=200 * 1024.0))
        self.assert_error(run(doc, max_kb_per_receiver=100),
                          "KiB/receiver budget")


if __name__ == "__main__":
    unittest.main()
