#!/usr/bin/env python3
"""Validate a self-profile (sharqfec.profile.v1 from --profile=FILE).

Usage: check_profile.py PROFILE [--baseline BASE] [--time-tol F]
       [--mem-tol F] [--min-attribution F] [--max-overhead-wall S]

Checks, in order:
  parse        the file is a single JSON object
  schema       schema is "sharqfec.profile.v1" with a "deterministic" and
               a "timing" section of the right shapes; non-finite numbers
               are rejected wherever they appear
  sanity       shards >= 1 and every by_shard array has exactly `shards`
               entries summing to its total; scope counts and counters are
               non-negative integers; every memory category carries
               non-negative live_bytes <= peak_bytes; self-time totals are
               non-negative and their sum does not exceed wall_s plus 25%
               slack (self times are 1-in-sample_period estimates scaled
               back up at export, so they carry sampling noise on top of
               clock calibration error); histogram counts match their
               bucket sums
  cross        events_dispatched > 0 (an empty profile is a wedged run,
               not a baseline); when windows > 0, barriers > 0 too
  baseline     with --baseline BASE, compare against a committed profile:
               Channel A counters and scope counts must match EXACTLY
               (they are inside the byte-identical determinism contract);
               memory categories within --mem-tol (default 0.25: census
               values are deterministic, but allocator/container growth
               may shift across library versions); wall time and
               self-time within --time-tol (default 10.0 — CI hardware
               is not the baseline's hardware)
  attribution  with --min-attribution F, the memory census's summed peak
               bytes must cover at least fraction F of rss_delta_bytes
               (the "no anonymous memory" gate; skipped when the profile
               carries no rss delta)

Exit status 0 on success; prints one line per failure otherwise.
"""

import json
import math
import sys

SCHEMA = "sharqfec.profile.v1"


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) \
        and math.isfinite(v)


def is_count(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_by_shard(entry, shards, where, bad, field="by_shard",
                   total_field="total"):
    total = entry.get(total_field)
    per = entry.get(field)
    if not is_count(total) and not is_num(total):
        bad(f"{where}: {total_field} is {total!r}")
        return
    if not isinstance(per, list) or len(per) != shards:
        bad(f"{where}: {field} must be a list of exactly {shards} entries, "
            f"got {per!r}")
        return
    if not all(is_num(v) and v >= 0 for v in per):
        bad(f"{where}: {field} has a negative or non-finite entry")
        return
    if isinstance(total, int) and all(isinstance(v, int) for v in per):
        if sum(per) != total:
            bad(f"{where}: {field} sums to {sum(per)}, total says {total}")
    elif abs(sum(per) - total) > max(1e-6, 0.01 * abs(total)):
        bad(f"{where}: {field} sums to {sum(per):g}, total says {total:g}")


def check_hist(hist, where, bad):
    if not isinstance(hist, dict):
        bad(f"{where}: not an object")
        return
    count = hist.get("count")
    buckets = hist.get("buckets")
    if not is_count(count) or not isinstance(buckets, list):
        bad(f"{where}: needs integer count and bucket list")
        return
    seen = 0
    for b in buckets:
        if not isinstance(b, dict) or not is_num(b.get("le_s")) \
                or not is_count(b.get("n")):
            bad(f"{where}: malformed bucket {b!r}")
            return
        seen += b["n"]
    if seen != count:
        bad(f"{where}: buckets hold {seen} samples, count says {count}")


def check_profile(doc):
    errors = []

    def bad(msg):
        errors.append(msg)

    if not isinstance(doc, dict):
        return ["top level is not a JSON object"], None, None
    if doc.get("schema") != SCHEMA:
        bad(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    det = doc.get("deterministic")
    tim = doc.get("timing")
    if not isinstance(det, dict):
        return errors + ["deterministic section missing"], None, None
    if not isinstance(tim, dict):
        return errors + ["timing section missing"], det, None

    shards = det.get("shards")
    if not isinstance(shards, int) or shards < 1:
        bad(f"deterministic.shards is {shards!r}, expected an integer >= 1")
        shards = 1
    for section in ("scopes", "counters"):
        table = det.get(section)
        if not isinstance(table, dict) or not table:
            bad(f"deterministic.{section} missing or empty")
            continue
        for name, entry in table.items():
            if not isinstance(entry, dict):
                bad(f"deterministic.{section}.{name}: not an object")
                continue
            if not is_count(entry.get("total")):
                bad(f"deterministic.{section}.{name}: total is "
                    f"{entry.get('total')!r}, expected a non-negative int")
                continue
            check_by_shard(entry, shards, f"deterministic.{section}.{name}",
                           bad)
    mem = det.get("memory")
    if not isinstance(mem, dict):
        bad("deterministic.memory missing")
    else:
        for cat, entry in mem.items():
            where = f"deterministic.memory.{cat}"
            if not isinstance(entry, dict) \
                    or not is_count(entry.get("live_bytes")) \
                    or not is_count(entry.get("peak_bytes")):
                bad(f"{where}: needs non-negative integer live_bytes and "
                    f"peak_bytes")
                continue
            if entry["live_bytes"] > entry["peak_bytes"]:
                bad(f"{where}: live_bytes {entry['live_bytes']} > "
                    f"peak_bytes {entry['peak_bytes']}")

    wall = tim.get("wall_s")
    if not is_num(wall) or wall < 0:
        bad(f"timing.wall_s is {wall!r}")
        wall = None
    period = tim.get("sample_period")
    if period is not None and (not is_count(period) or period < 1):
        bad(f"timing.sample_period is {period!r}, expected a positive int")
    if not is_count(tim.get("rss_delta_bytes")):
        bad(f"timing.rss_delta_bytes is {tim.get('rss_delta_bytes')!r}")
    self_time = tim.get("self_time")
    if not isinstance(self_time, dict) or not self_time:
        bad("timing.self_time missing or empty")
    else:
        total_self = 0.0
        for name, entry in self_time.items():
            where = f"timing.self_time.{name}"
            if not isinstance(entry, dict) or not is_num(entry.get("total_s")) \
                    or entry["total_s"] < 0:
                bad(f"{where}: total_s is not a non-negative number")
                continue
            check_by_shard(entry, shards, where, bad, field="by_shard_s",
                           total_field="total_s")
            total_self += entry["total_s"]
        # Self time partitions wall time, but the exported figures are
        # sampled (1 in sample_period gated units is clocked, scaled back
        # up at export): allow 25% slack for sampling noise on top of
        # TSC-to-ns calibration error.
        if wall is not None and total_self > wall * 1.25 + 0.01:
            bad(f"timing.self_time sums to {total_self:.3f}s, more than "
                f"wall_s {wall:.3f}s")
    hists = tim.get("histograms")
    if not isinstance(hists, dict):
        bad("timing.histograms missing")
    else:
        for name in ("barrier_wait", "window_span", "stall_window"):
            if name not in hists:
                bad(f"timing.histograms.{name} missing")
            else:
                check_hist(hists[name], f"timing.histograms.{name}", bad)

    # Cross-field sanity on Channel A.
    counters = det.get("counters")
    if isinstance(counters, dict):
        def total(name):
            entry = counters.get(name)
            return entry.get("total") if isinstance(entry, dict) else None
        ev = total("events_dispatched")
        if is_count(ev) and ev == 0:
            bad("counters.events_dispatched is 0 — an empty profile is a "
                "wedged run, not a baseline")
        windows = total("windows")
        barriers = total("barriers")
        if is_count(windows) and is_count(barriers) \
                and windows > 0 and barriers == 0:
            bad(f"counters: {windows} windows ran but 0 barriers — the "
                f"shard runtime always joins each window")
    return errors, det, tim


def rel_close(base, new, tol, floor):
    mag = max(abs(base), abs(new), floor)
    return abs(new - base) <= tol * mag


def compare_baseline(det, tim, bdet, btim, time_tol, mem_tol, bad):
    # Channel A: exact. These values are inside the byte-identical
    # determinism contract — any drift is a real behaviour change.
    for section in ("scopes", "counters"):
        base_t = bdet.get(section, {})
        new_t = det.get(section, {})
        for name in sorted(set(base_t) | set(new_t)):
            b = base_t.get(name, {}).get("total")
            n = new_t.get(name, {}).get("total")
            if b != n:
                bad(f"baseline: deterministic.{section}.{name} changed "
                    f"{b!r} -> {n!r} (Channel A must match exactly)")
    base_m = bdet.get("memory", {})
    new_m = det.get("memory", {})
    for cat in sorted(set(base_m) | set(new_m)):
        b = base_m.get(cat, {}).get("peak_bytes", 0)
        n = new_m.get(cat, {}).get("peak_bytes", 0)
        if not rel_close(b, n, mem_tol, 4096):
            bad(f"baseline: memory.{cat} peak_bytes {b} -> {n} moved more "
                f"than {mem_tol:.0%}")
    # Channel B: generous — different hardware, shared CI runners. A
    # ratio test, not rel_close: with a tolerance this large a relative
    # delta against max(old, new) could never fail on increases.
    b = btim.get("wall_s", 0)
    n = tim.get("wall_s", 0)
    if is_num(b) and is_num(n):
        lo, hi = sorted((max(b, 0.1), max(n, 0.1)))
        if hi / lo > time_tol:
            bad(f"baseline: wall_s {b:g} -> {n:g} moved more than "
                f"{time_tol:g}x")


def main(argv):
    args = list(argv[1:])
    baseline = None
    time_tol = 10.0
    mem_tol = 0.25
    min_attr = None
    max_wall = None

    def take(flag, cast):
        if flag not in args:
            return None
        at = args.index(flag)
        try:
            val = cast(args[at + 1])
        except (IndexError, ValueError):
            print(f"check_profile: {flag} needs a value", file=sys.stderr)
            sys.exit(2)
        del args[at:at + 2]
        return val

    baseline = take("--baseline", str)
    time_tol = take("--time-tol", float) or time_tol
    mem_tol = take("--mem-tol", float) or mem_tol
    min_attr = take("--min-attribution", float)
    max_wall = take("--max-overhead-wall", float)
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    def load(path):
        try:
            with open(path, encoding="utf-8") as f:
                return json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"check_profile: {path}: {exc}", file=sys.stderr)
            sys.exit(1)

    doc = load(args[0])
    errors, det, tim = check_profile(doc)

    def bad(msg):
        errors.append(msg)

    if baseline is not None and det is not None and tim is not None:
        bdoc = load(baseline)
        berrors, bdet, btim = check_profile(bdoc)
        for err in berrors:
            bad(f"baseline file: {err}")
        if bdet is not None and btim is not None:
            compare_baseline(det, tim, bdet, btim, time_tol, mem_tol, bad)

    if min_attr is not None and det is not None and tim is not None:
        rss = tim.get("rss_delta_bytes")
        mem = det.get("memory")
        if is_count(rss) and rss > 0 and isinstance(mem, dict):
            covered = sum(e.get("peak_bytes", 0) for e in mem.values()
                          if isinstance(e, dict))
            if covered < min_attr * rss:
                bad(f"memory census attributes {covered} of {rss} resident "
                    f"bytes ({covered / rss:.1%}), --min-attribution "
                    f"demands {min_attr:.0%}")

    if max_wall is not None and tim is not None:
        wall = tim.get("wall_s")
        if is_num(wall) and wall > max_wall:
            bad(f"wall_s {wall:g} exceeds --max-overhead-wall {max_wall:g}")

    for err in errors:
        print(f"check_profile: {err}", file=sys.stderr)
    if not errors and det is not None and tim is not None:
        ev = det.get("counters", {}).get("events_dispatched", {}).get(
            "total", 0)
        print(f"check_profile: OK (shards {det.get('shards')}, "
              f"{ev} events, wall {tim.get('wall_s', 0):.2f}s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
