#!/usr/bin/env bash
# Documentation lint: fails (exit 1) on
#   1. dead relative markdown links in the tracked docs,
#   2. backticked source-tree file references that no longer exist,
#   3. protocol messages declared in src/sharqfec/messages.hpp that
#      PROTOCOL.md does not document,
#   4. drift between docs/PERFORMANCE.md's bench target index and the
#      targets bench/CMakeLists.txt actually builds, in both directions.
# docs/OBSERVABILITY.md drift (metric rows and event-catalog rows, both
# directions) is enforced token-level by sharq_lint's metric-docs and
# journal-cause rules with --reverse-docs; see docs/DETERMINISM.md.
# Run from anywhere; operates on the repo containing this script.
set -u

cd "$(dirname "$0")/.." || exit 2

DOCS=(README.md DESIGN.md PROTOCOL.md EXPERIMENTS.md CHANGES.md ROADMAP.md
      docs/ARCHITECTURE.md docs/OBSERVABILITY.md docs/DETERMINISM.md
      docs/PERFORMANCE.md docs/ROBUSTNESS.md)
fail=0

note_fail() {
  echo "check_docs: $1" >&2
  fail=1
}

# --- 1. relative markdown links --------------------------------------------------
for doc in "${DOCS[@]}"; do
  [ -f "$doc" ] || { note_fail "missing doc: $doc"; continue; }
  dir=$(dirname "$doc")
  # Extract (target) of every [text](target); keep relative file targets.
  grep -oE '\]\([^)]+\)' "$doc" | sed -e 's/^](//' -e 's/)$//' |
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"        # drop in-page anchors
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "check_docs: dead link in $doc: ($target)" >&2
      echo FAIL >> .check_docs_failed
    fi
  done
done

# --- 2. backticked file references ----------------------------------------------
for doc in "${DOCS[@]}"; do
  [ -f "$doc" ] || continue
  grep -oE '`(src|docs|scripts|tests|bench|examples|tools)/[A-Za-z0-9_./-]+`' "$doc" |
  tr -d '`' | sort -u |
  while IFS= read -r ref; do
    # Only judge concrete files (with a recognizable extension) and
    # directories (trailing slash); skip binary/target mentions and
    # brace-glob shorthand like gf256_simd.{hpp,cpp}.
    case "$ref" in
      *.) continue ;;
      */)
        if [ ! -d "$ref" ]; then
          echo "check_docs: stale dir reference in $doc: $ref" >&2
          echo FAIL >> .check_docs_failed
        fi
        continue ;;
      *.cpp|*.hpp|*.c|*.h|*.md|*.sh|*.py|*.txt|*.json|*.yml)
        if [ ! -e "$ref" ]; then
          # `name.*` shorthand for a .hpp/.cpp pair is fine if either exists.
          stem="${ref%.*}"
          if [ ! -e "$stem.hpp" ] && [ ! -e "$stem.cpp" ]; then
            echo "check_docs: stale file reference in $doc: $ref" >&2
            echo FAIL >> .check_docs_failed
          fi
        fi ;;
    esac
  done
done

# --- 3. PROTOCOL.md covers every protocol message -------------------------------
while IFS= read -r msg; do
  grep -q "$msg" PROTOCOL.md ||
    note_fail "PROTOCOL.md does not document $msg (declared in src/sharqfec/messages.hpp)"
done < <(grep -oE 'struct [A-Za-z0-9]+Msg' src/sharqfec/messages.hpp |
         awk '{print $2}' | sort -u)

# --- 4. PERFORMANCE.md bench index <-> bench/CMakeLists.txt ---------------------
# Built targets: sharq_bench(name) registrations plus the google-benchmark
# binaries listed in the foreach(micro ...) line.
built=$( (grep -oE '^sharq_bench\([a-z0-9_]+\)' bench/CMakeLists.txt |
            sed -E 's/^sharq_bench\(([^)]+)\)/\1/';
          grep -oE 'foreach\(micro [a-z0-9_ ]+\)' bench/CMakeLists.txt |
            sed -E 's/^foreach\(micro ([^)]+)\)/\1/' | tr ' ' '\n') | sort -u)
# Documented targets: first backticked token of each index-table row.
indexed=$(grep -hoE '^\| `[a-z0-9_]+` \|' docs/PERFORMANCE.md |
          sed -E 's/^\| `([^`]+)` \|/\1/' | sort -u)
for t in $built; do
  echo "$indexed" | grep -qx "$t" ||
    note_fail "docs/PERFORMANCE.md bench index is missing target $t (built by bench/CMakeLists.txt)"
done
for t in $indexed; do
  echo "$built" | grep -qx "$t" ||
    note_fail "docs/PERFORMANCE.md bench index lists $t but bench/CMakeLists.txt does not build it"
done

# Subshell pipelines above cannot set $fail directly; they drop a marker.
if [ -f .check_docs_failed ]; then
  rm -f .check_docs_failed
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "check_docs: OK"
fi
exit "$fail"
