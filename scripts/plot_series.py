#!/usr/bin/env python3
"""Plot the time series the bench binaries print.

The figure benches emit blocks of the form

    # t  <labelA>  <labelB>
    6.0  3.161  3.161
    6.1  7.839  7.839
    ...

Pipe one through this script (requires matplotlib; falls back to a
text-mode sparkline when it is unavailable):

    build/bench/fig17_scoping | scripts/plot_series.py -o fig17.png
"""
import argparse
import sys


def parse_blocks(lines):
    """Yield (labels, rows) for each '# t ...' block found."""
    labels, rows = None, []
    for line in lines:
        line = line.strip()
        if line.startswith("# t"):
            if labels and rows:
                yield labels, rows
            labels, rows = line[3:].split(), []
            continue
        if labels is None or not line:
            if labels and rows:
                yield labels, rows
                labels, rows = None, []
            continue
        parts = line.split()
        try:
            rows.append([float(x) for x in parts])
        except ValueError:
            if labels and rows:
                yield labels, rows
            labels, rows = None, []
    if labels and rows:
        yield labels, rows


def sparkline(values, width=72):
    """Text fallback: one coarse sparkline per series."""
    marks = " .:-=+*#%@"
    if not values:
        return ""
    step = max(1, len(values) // width)
    sampled = [max(values[i:i + step]) for i in range(0, len(values), step)]
    top = max(sampled) or 1.0
    return "".join(marks[min(int(v / top * (len(marks) - 1)), len(marks) - 1)]
                   for v in sampled)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("-o", "--output", help="write a PNG instead of showing")
    ap.add_argument("file", nargs="?", help="input file (default: stdin)")
    args = ap.parse_args()
    lines = open(args.file).readlines() if args.file else sys.stdin.readlines()

    blocks = list(parse_blocks(lines))
    if not blocks:
        print("no '# t ...' series blocks found", file=sys.stderr)
        return 1

    try:
        import matplotlib
        matplotlib.use("Agg" if args.output else matplotlib.get_backend())
        import matplotlib.pyplot as plt
    except ImportError:
        for labels, rows in blocks:
            print(f"series: {' vs '.join(labels)}")
            for i, label in enumerate(labels):
                vals = [r[i + 1] for r in rows if len(r) > i + 1]
                print(f"  {label:>12} |{sparkline(vals)}|  peak={max(vals):.1f}")
        return 0

    fig, axes = plt.subplots(len(blocks), 1, figsize=(10, 4 * len(blocks)),
                             squeeze=False)
    for ax, (labels, rows) in zip((a for row in axes for a in row), blocks):
        t = [r[0] for r in rows]
        for i, label in enumerate(labels):
            ax.plot(t, [r[i + 1] if len(r) > i + 1 else 0 for r in rows],
                    label=label, linewidth=1)
        ax.set_xlabel("time (s)")
        ax.set_ylabel("packets / 0.1 s")
        ax.legend()
        ax.grid(True, alpha=0.3)
    fig.tight_layout()
    if args.output:
        fig.savefig(args.output, dpi=120)
        print(f"wrote {args.output}")
    else:
        plt.show()
    return 0


if __name__ == "__main__":
    sys.exit(main())
