#!/usr/bin/env python3
"""Validate a sharqfec metrics JSON export.

Usage: check_metrics.py METRICS.json [--require-traffic]

Checks, in order:
  schema     the top-level schema tag is sharqfec.metrics.v1
  shape      every family has a known type and well-formed values
             (counters are non-negative ints, gauges are numbers,
             histograms carry consistent count/buckets/overflow)
  catalog    the families a Figure-10 sharqfec run must register are
             all present
  traffic    with --require-traffic, the counters a lossy run cannot
             leave at zero (data sends, NACKs, repairs) are non-zero
  series     when the optional top-level "series" section is present
             (sharqfec_sim --metrics-json), it carries a positive
             bin_width and one numeric list per traffic class

Exit status 0 on success; prints one line per failure otherwise.
"""

import json
import sys

SCHEMA = "sharqfec.metrics.v1"

# Families every sharqfec run registers, whatever the topology.
REQUIRED = {
    "net.corrupted": "counter",
    "net.drops": "counter",
    "net.duplicated": "counter",
    "net.sends": "counter",
    "sharqfec.arrival_ewma": "gauge",
    "sharqfec.corrupt_rejects": "counter",
    "sharqfec.duplicate_rejects": "counter",
    "sharqfec.group_completion_seconds": "histogram",
    "sharqfec.malformed_rejects": "counter",
    "sharqfec.nacks_deduped": "counter",
    "sharqfec.nacks_sent": "counter",
    "sharqfec.nacks_suppressed": "counter",
    "sharqfec.peers_expired": "counter",
    "sharqfec.preemptive_repairs": "counter",
    "sharqfec.repairs_sent": "counter",
    "sharqfec.rtt_samples": "counter",
    "sharqfec.session_msgs": "counter",
    "sharqfec.zcr_challenges": "counter",
    "sharqfec.zcr_expiries": "counter",
    "sharqfec.zcr_takeovers": "counter",
    "sharqfec.zlc_pred": "gauge",
    "sim.events_cancelled": "counter",
    "sim.events_fired": "counter",
    "sim.events_scheduled": "counter",
    "sim.queue_high_water": "gauge",
}

# Counters that cannot be zero after a completed lossy run.
NONZERO_ON_TRAFFIC = [
    "net.sends",
    "sharqfec.nacks_sent",
    "sharqfec.repairs_sent",
    "sharqfec.rtt_samples",
    "sharqfec.session_msgs",
    "sim.events_fired",
]


def counter_total(family):
    return sum(family["values"].values())


def check(doc, require_traffic):
    errors = []
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema: expected {SCHEMA!r}, got {doc.get('schema')!r}")
        return errors
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("shape: top-level 'metrics' is not an object")
        return errors

    for name, fam in metrics.items():
        ftype = fam.get("type")
        values = fam.get("values")
        if ftype not in ("counter", "gauge", "histogram"):
            errors.append(f"shape: {name}: unknown type {ftype!r}")
            continue
        if not isinstance(values, dict) or not values:
            errors.append(f"shape: {name}: empty or missing values")
            continue
        for key, val in values.items():
            where = f"{name}[{key!r}]"
            if ftype == "counter":
                if not isinstance(val, int) or val < 0:
                    errors.append(f"shape: {where}: bad counter {val!r}")
            elif ftype == "gauge":
                if not isinstance(val, (int, float)):
                    errors.append(f"shape: {where}: bad gauge {val!r}")
            else:
                buckets = val.get("buckets")
                if not isinstance(buckets, list) or not buckets:
                    errors.append(f"shape: {where}: bad buckets")
                    continue
                binned = sum(buckets) + val.get("overflow", 0)
                if binned != val.get("count"):
                    errors.append(
                        f"shape: {where}: buckets+overflow {binned} "
                        f"!= count {val.get('count')}")

    for name, ftype in REQUIRED.items():
        fam = metrics.get(name)
        if fam is None:
            errors.append(f"catalog: missing family {name}")
        elif fam.get("type") != ftype:
            errors.append(
                f"catalog: {name}: expected {ftype}, got {fam.get('type')}")

    series = doc.get("series")
    if series is not None:
        classes = series.get("classes") if isinstance(series, dict) else None
        width = series.get("bin_width") if isinstance(series, dict) else None
        if not isinstance(width, (int, float)) or width <= 0:
            errors.append(f"series: bad bin_width {width!r}")
        if not isinstance(classes, dict):
            errors.append("series: 'classes' is not an object")
        else:
            expected = {"control", "data", "nack", "repair", "session"}
            if set(classes) != expected:
                errors.append(
                    f"series: class keys {sorted(classes)} != "
                    f"{sorted(expected)}")
            for cls, bins in classes.items():
                if not isinstance(bins, list) or not all(
                        isinstance(v, (int, float)) for v in bins):
                    errors.append(f"series: {cls}: bins are not numbers")

    if require_traffic:
        for name in NONZERO_ON_TRAFFIC:
            fam = metrics.get(name)
            if fam and fam.get("type") == "counter" and counter_total(fam) == 0:
                errors.append(f"traffic: {name} is zero after a lossy run")

    return errors


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    require_traffic = "--require-traffic" in argv[1:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    with open(args[0], encoding="utf-8") as f:
        doc = json.load(f)
    errors = check(doc, require_traffic)
    for e in errors:
        print(f"check_metrics: {e}", file=sys.stderr)
    if not errors:
        n = len(doc["metrics"])
        print(f"check_metrics: OK ({n} families)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
