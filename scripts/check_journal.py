#!/usr/bin/env python3
"""Validate a sharqfec causal event journal (JSONL from --journal).

Usage: check_journal.py JOURNAL.jsonl [--require-recovery]

Checks, in order:
  parse      every line is a self-contained JSON object
  schema     each event carries id/t/node/group/ev/cause/attrs with the
             right types (ids integral >= 1, t a number, ev a non-empty
             string, attrs an object of scalars)
  order      ids are strictly increasing and timestamps never go
             backwards (the journal is append-only in simulation time)
  causality  every non-zero cause refers to an id emitted EARLIER in the
             same journal — cause edges always point backwards, so the
             file is topologically ordered and every event is traceable
  recovery   with --require-recovery, the events a lossy run must emit
             (loss.detected, nack.sent, repair.received, group.complete)
             all appear at least once

Exit status 0 on success; prints one line per failure otherwise.
"""

import collections
import json
import sys

REQUIRED_KEYS = ("id", "t", "node", "group", "ev", "cause", "attrs")

RECOVERY_EVENTS = [
    "group.first_arrival",
    "loss.detected",
    "nack.sent",
    "repair.sent",
    "repair.received",
    "group.complete",
]


def check(lines, require_recovery):
    errors = []
    seen_ids = set()
    last_id = 0
    last_t = None
    counts = collections.Counter()
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        where = f"line {lineno}"
        try:
            ev = json.loads(raw)
        except json.JSONDecodeError as e:
            errors.append(f"parse: {where}: {e}")
            continue
        missing = [k for k in REQUIRED_KEYS if k not in ev]
        if missing:
            errors.append(f"schema: {where}: missing {missing}")
            continue
        eid, cause = ev["id"], ev["cause"]
        if not isinstance(eid, int) or eid < 1:
            errors.append(f"schema: {where}: bad id {eid!r}")
            continue
        if not isinstance(cause, int) or cause < 0:
            errors.append(f"schema: {where}: bad cause {cause!r}")
        if not isinstance(ev["t"], (int, float)):
            errors.append(f"schema: {where}: bad t {ev['t']!r}")
        if not isinstance(ev["node"], int) or not isinstance(ev["group"], int):
            errors.append(f"schema: {where}: bad node/group")
        if not isinstance(ev["ev"], str) or not ev["ev"]:
            errors.append(f"schema: {where}: bad ev {ev['ev']!r}")
        if not isinstance(ev["attrs"], dict) or not all(
                isinstance(v, (int, float, str))
                for v in ev["attrs"].values()):
            errors.append(f"schema: {where}: attrs must be scalar-valued")
        if eid <= last_id:
            errors.append(f"order: {where}: id {eid} after {last_id}")
        if isinstance(ev["t"], (int, float)):
            if last_t is not None and ev["t"] < last_t:
                errors.append(
                    f"order: {where}: t {ev['t']} before {last_t}")
            last_t = ev["t"]
        if cause:
            if cause >= eid:
                errors.append(
                    f"causality: {where}: cause {cause} not before id {eid}")
            elif cause not in seen_ids:
                errors.append(
                    f"causality: {where}: cause {cause} never emitted")
        seen_ids.add(eid)
        last_id = max(last_id, eid)
        if isinstance(ev["ev"], str):
            counts[ev["ev"]] += 1

    if require_recovery:
        for name in RECOVERY_EVENTS:
            if counts[name] == 0:
                errors.append(f"recovery: no {name} events in a lossy run")

    return errors, counts


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    require_recovery = "--require-recovery" in argv[1:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    with open(args[0], encoding="utf-8") as f:
        errors, counts = check(f, require_recovery)
    for e in errors:
        print(f"check_journal: {e}", file=sys.stderr)
    if not errors:
        total = sum(counts.values())
        print(f"check_journal: OK ({total} events, "
              f"{len(counts)} distinct types)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
