// sharq_trace: analyzer for the causal recovery journal written by
// sharqfec_sim --journal (stats::Journal JSONL).
//
//   sharq_trace timeline JOURNAL --group G [--node N]
//       Causally ordered narrative of one group's recovery: every event
//       with its cause edge and the latency along it.
//
//   sharq_trace breakdown JOURNAL
//       Recovery latency split per zone level: detection (first arrival
//       -> loss detected), request (-> NACK sent), reply (-> first
//       useful repair heard), decode (-> group complete), aggregated
//       over every {node, group} span.
//
//   sharq_trace anomalies JOURNAL [--nack-count K] [--nack-window W]
//                                 [--escalations N] [--dup-repairs N]
//       NACK implosions, duplicate repairs, scope-escalation storms and
//       stuck groups.
//
//   sharq_trace export JOURNAL --perfetto [-o FILE]
//       Chrome trace-event JSON (load in Perfetto / chrome://tracing);
//       pid = node, tid = group, flow arrows follow the cause edges.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "stats/journal_reader.hpp"
#include "stats/metrics.hpp"
#include "stats/report.hpp"
#include "stats/time_series.hpp"

using namespace sharq;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: sharq_trace timeline JOURNAL --group G [--node N]\n"
               "       sharq_trace breakdown JOURNAL\n"
               "       sharq_trace anomalies JOURNAL [--nack-count K]\n"
               "                   [--nack-window W] [--escalations N]\n"
               "                   [--dup-repairs N]\n"
               "       sharq_trace export JOURNAL --perfetto [-o FILE]\n");
  std::exit(2);
}

std::vector<stats::JournalEvent> load(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "sharq_trace: cannot open '%s'\n", path.c_str());
    std::exit(2);
  }
  std::string error;
  auto events = stats::read_journal(is, &error);
  if (!events) {
    std::fprintf(stderr, "sharq_trace: %s: %s\n", path.c_str(), error.c_str());
    std::exit(2);
  }
  return std::move(*events);
}

std::string fmt(double v) { return stats::json_double(v); }

int cmd_timeline(const std::vector<stats::JournalEvent>& events,
                 std::int64_t group, int node) {
  const auto rows = stats::timeline(events, group, node);
  if (rows.empty()) {
    std::printf("no events for group %lld\n",
                static_cast<long long>(group));
    return 0;
  }
  for (const auto& row : rows) {
    const stats::JournalEvent& ev = *row.event;
    std::string line(static_cast<std::size_t>(2 * std::min(row.depth, 16)),
                     ' ');
    line += '#';
    line += std::to_string(ev.id);
    line += " t=";
    line += fmt(ev.t);
    line += " node=";
    line += std::to_string(ev.node);
    line += ' ';
    line += ev.ev;
    if (ev.cause != 0) {
      line += "  <- #";
      line += std::to_string(ev.cause);
      if (row.edge_latency >= 0) {
        line += " (+";
        line += fmt(row.edge_latency);
        line += "s)";
      }
    }
    for (const auto& [key, value] : ev.attrs) {
      line += ' ';
      line += key;
      line += '=';
      line += value;
    }
    std::printf("%s\n", line.c_str());
  }
  return 0;
}

int cmd_breakdown(const std::vector<stats::JournalEvent>& events) {
  const auto spans = stats::span_breakdowns(events);
  if (spans.empty()) {
    std::printf("no recovery spans in journal\n");
    return 0;
  }
  // Per-level sample sets for each phase; level -1 collects spans that
  // never sent a NACK (loss-free or repaired preemptively).
  struct Phase {
    const char* name;
    double stats::SpanBreakdown::*member;
  };
  static constexpr Phase kPhases[] = {
      {"detection", &stats::SpanBreakdown::detection},
      {"request", &stats::SpanBreakdown::request},
      {"reply", &stats::SpanBreakdown::reply},
      {"decode", &stats::SpanBreakdown::decode},
      {"total", &stats::SpanBreakdown::total},
  };
  std::map<int, std::vector<const stats::SpanBreakdown*>> by_level;
  int complete = 0;
  for (const auto& span : spans) {
    by_level[span.level].push_back(&span);
    if (span.complete) ++complete;
  }
  std::printf("%zu spans (%d complete, %zu incomplete)\n", spans.size(),
              complete, spans.size() - static_cast<std::size_t>(complete));
  stats::Table t({"level", "phase", "count", "mean", "p50", "p90", "p99",
                  "max"});
  for (const auto& [level, group_spans] : by_level) {
    std::string label = "no-nack";
    if (level >= 0) {
      label = "L";
      label += std::to_string(level);
    }
    for (const Phase& phase : kPhases) {
      std::vector<double> samples;
      for (const auto* span : group_spans) {
        const double v = span->*phase.member;
        if (v >= 0) samples.push_back(v);
      }
      if (samples.empty()) continue;
      const stats::Summary s = stats::summarize(std::move(samples));
      t.add_row({label, phase.name, std::to_string(s.count),
                 stats::Table::num(s.mean, 4), stats::Table::num(s.p50, 4),
                 stats::Table::num(s.p90, 4), stats::Table::num(s.p99, 4),
                 stats::Table::num(s.max, 4)});
    }
  }
  t.print();
  return 0;
}

int cmd_anomalies(const std::vector<stats::JournalEvent>& events,
                  const stats::AnomalyThresholds& th) {
  const auto anomalies = stats::detect_anomalies(events, th);
  if (anomalies.empty()) {
    std::printf("no anomalies\n");
    return 0;
  }
  for (const auto& a : anomalies) {
    std::string line = a.kind;
    line += " group=";
    line += std::to_string(a.group);
    if (a.node >= 0) {
      line += " node=";
      line += std::to_string(a.node);
    }
    line += " t=";
    line += fmt(a.t);
    line += ": ";
    line += a.detail;
    std::printf("%s\n", line.c_str());
  }
  std::printf("%zu anomalies\n", anomalies.size());
  return 0;
}

int cmd_export(const std::vector<stats::JournalEvent>& events,
               const std::string& out_file) {
  if (out_file.empty()) {
    stats::write_perfetto(std::cout, events);
    return 0;
  }
  std::ofstream os(out_file);
  if (!os) {
    std::fprintf(stderr, "sharq_trace: cannot open '%s'\n", out_file.c_str());
    return 2;
  }
  stats::write_perfetto(os, events);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string cmd = argv[1];
  const std::string journal_file = argv[2];

  std::int64_t group = -2;  // unset; -1 is the valid election track
  int node = -1;
  bool perfetto = false;
  std::string out_file;
  stats::AnomalyThresholds th;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage();
    return argv[++i];
  };
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--group") group = std::strtoll(need(i), nullptr, 10);
    else if (a == "--node") node = std::atoi(need(i));
    else if (a == "--perfetto") perfetto = true;
    else if (a == "-o") out_file = need(i);
    else if (a == "--nack-count") th.implosion_nacks = std::atoi(need(i));
    else if (a == "--nack-window") th.implosion_window = std::atof(need(i));
    else if (a == "--escalations") th.escalation_storm = std::atoi(need(i));
    else if (a == "--dup-repairs") th.duplicate_repairs = std::atoi(need(i));
    else usage();
  }

  const auto events = load(journal_file);
  if (cmd == "timeline") {
    if (group == -2) {
      std::fprintf(stderr, "sharq_trace: timeline needs --group\n");
      return 2;
    }
    return cmd_timeline(events, group, node);
  }
  if (cmd == "breakdown") return cmd_breakdown(events);
  if (cmd == "anomalies") return cmd_anomalies(events, th);
  if (cmd == "export") {
    if (!perfetto) {
      std::fprintf(stderr, "sharq_trace: export needs --perfetto\n");
      return 2;
    }
    return cmd_export(events, out_file);
  }
  usage();
}
