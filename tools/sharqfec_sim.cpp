// sharqfec_sim: command-line driver for the simulator and protocols.
//
// Lets a user run any protocol variant on a chosen topology and workload
// without writing C++:
//
//   sharqfec_sim --topo fig10 --protocol sharqfec --packets 1024
//                --rate 800000 --seed 7 --until 45 --series
//
//   sharqfec_sim --topo tree --depth 3 --fanout 3 --loss 0.05
//                --protocol srm --packets 256
//
// Prints a run summary (and optionally the 0.1 s traffic series) in the
// same format the bench binaries use.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "srm/session.hpp"
#include "stats/journal.hpp"
#include "stats/metrics.hpp"
#include "stats/profiler.hpp"
#include "stats/report.hpp"
#include "stats/trace_writer.hpp"
#include "stats/traffic_recorder.hpp"
#include "topo/figure10.hpp"
#include "topo/national.hpp"
#include "topo/shapes.hpp"

using namespace sharq;

namespace {

struct Options {
  std::string topo = "fig10";     // fig10 | tree | national
  std::string protocol = "sharqfec";  // sharqfec | ecsrm | srm | ns | ni | so
  int depth = 2;
  int fanout = 3;
  double loss = 0.05;
  std::uint32_t packets = 1024;
  int packet_size = 1000;
  double rate = 800e3;
  int group = 16;
  std::uint64_t seed = 1;
  double until = 45.0;
  double data_start = 6.0;
  bool series = false;
  bool adaptive = false;
  std::string trace_file;    // empty = no trace
  std::string metrics_file;  // empty = no metrics JSON
  std::string journal_file;  // empty = no event journal
  std::string profile_file;  // empty = no self-profile
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --topo fig10|tree|national   topology (default fig10)\n"
      "  --depth N --fanout N         tree shape (tree topo)\n"
      "  --loss P                     per-link loss for tree topo\n"
      "  --protocol sharqfec|ecsrm|srm|ns|ni|so\n"
      "  --packets N --packet-size B --rate BPS --group K\n"
      "  --seed S --until T --data-start T\n"
      "  --adaptive                   adaptive suppression timers\n"
      "  --series                     print the 0.1 s traffic series\n"
      "  --trace FILE                 write a nam-style event trace\n"
      "  --metrics-json FILE          write the metrics registry as JSON\n"
      "  --journal FILE               write the causal recovery journal\n"
      "                               (JSONL; analyze with sharq_trace)\n"
      "  --profile FILE               write a sharqfec.profile.v1 self-\n"
      "                               profile (analyze with sharq_prof;\n"
      "                               never byte-compared)\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--topo") o.topo = need(i);
    else if (a == "--protocol") o.protocol = need(i);
    else if (a == "--depth") o.depth = std::atoi(need(i));
    else if (a == "--fanout") o.fanout = std::atoi(need(i));
    else if (a == "--loss") o.loss = std::atof(need(i));
    else if (a == "--packets") o.packets = std::strtoul(need(i), nullptr, 10);
    else if (a == "--packet-size") o.packet_size = std::atoi(need(i));
    else if (a == "--rate") o.rate = std::atof(need(i));
    else if (a == "--group") o.group = std::atoi(need(i));
    else if (a == "--seed") o.seed = std::strtoull(need(i), nullptr, 10);
    else if (a == "--until") o.until = std::atof(need(i));
    else if (a == "--data-start") o.data_start = std::atof(need(i));
    else if (a == "--series") o.series = true;
    else if (a == "--trace") o.trace_file = need(i);
    else if (a == "--metrics-json") o.metrics_file = need(i);
    else if (a.rfind("--metrics-json=", 0) == 0)
      o.metrics_file = a.substr(std::strlen("--metrics-json="));
    else if (a == "--journal") o.journal_file = need(i);
    else if (a.rfind("--journal=", 0) == 0)
      o.journal_file = a.substr(std::strlen("--journal="));
    else if (a == "--profile") o.profile_file = need(i);
    else if (a.rfind("--profile=", 0) == 0)
      o.profile_file = a.substr(std::strlen("--profile="));
    else if (a == "--adaptive") o.adaptive = true;
    else usage(argv[0]);
  }
  return o;
}

struct Built {
  net::NodeId source = net::kNoNode;
  std::vector<net::NodeId> receivers;
};

Built build_topology(net::Network& net, const Options& o) {
  Built b;
  if (o.topo == "fig10") {
    topo::Figure10 t = topo::make_figure10(net);
    b.source = t.source;
    b.receivers = t.receivers;
  } else if (o.topo == "tree") {
    net::LinkConfig link;
    link.loss_rate = o.loss;
    topo::BalancedTree t = topo::make_balanced_tree(net, o.depth, o.fanout,
                                                    link);
    b.source = t.root;
    b.receivers.assign(t.all.begin() + 1, t.all.end());
    auto& z = net.zones();
    const net::ZoneId root = z.add_root();
    z.assign(t.root, root);
    // One zone per first-level subtree, everything deeper nested inside.
    for (std::size_t i = 0; i < t.levels[1].size(); ++i) {
      const net::ZoneId sub =
          t.levels.size() > 2 ? z.add_zone(root) : root;
      z.assign(t.levels[1][i], sub);
      if (t.levels.size() > 2) {
        // Assign this subtree's descendants level by level.
        std::vector<net::NodeId> frontier{t.levels[1][i]};
        for (std::size_t d = 2; d < t.levels.size(); ++d) {
          std::vector<net::NodeId> next;
          for (net::NodeId parent : frontier) {
            for (net::NodeId child : t.levels[d]) {
              if (net.path(parent, child).size() == 2) {
                z.assign(child, sub);
                next.push_back(child);
              }
            }
          }
          frontier = std::move(next);
        }
      }
    }
  } else if (o.topo == "national") {
    topo::NationalParams p;
    p.regions = 2;
    p.cities_per_region = 3;
    p.suburbs_per_city = 3;
    p.subscribers_per_suburb = 5;
    p.access_loss = o.loss;
    topo::National n = topo::make_national(net, p);
    b.source = n.source;
    for (auto v : {&n.region_caches, &n.city_caches, &n.suburb_hubs,
                   &n.subscribers}) {
      b.receivers.insert(b.receivers.end(), v->begin(), v->end());
    }
  } else {
    std::fprintf(stderr, "unknown topology '%s'\n", o.topo.c_str());
    std::exit(2);
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  // Installed before any protocol object exists; removed before export.
  // Probes cost one branch when absent, so --profile never changes the
  // simulated history (tests compare journal/metrics bytes both ways).
  std::unique_ptr<stats::Profiler> prof;
  stats::MemCensus census;
  if (!o.profile_file.empty()) {
    prof = std::make_unique<stats::Profiler>();
    stats::Profiler::set_active(prof.get());
  }
  sim::Simulator simu(o.seed);
  net::Network net(simu);
  stats::Metrics metrics;
  if (!o.metrics_file.empty()) {
    simu.set_metrics(&metrics);
    net.set_metrics(&metrics);
  }
  const Built b = build_topology(net, o);
  std::ofstream journal_os;
  std::unique_ptr<stats::Journal> journal;
  if (!o.journal_file.empty()) {
    journal_os.open(o.journal_file);
    if (!journal_os) {
      std::fprintf(stderr, "cannot open journal file '%s'\n",
                   o.journal_file.c_str());
      return 2;
    }
    journal = std::make_unique<stats::Journal>(journal_os);
    net.set_journal(journal.get());
  }
  stats::TrafficRecorder rec(net.node_count(), 0.1);
  std::ofstream trace_os;
  std::unique_ptr<stats::TraceWriter> tracer;
  if (!o.trace_file.empty()) {
    trace_os.open(o.trace_file);
    tracer = std::make_unique<stats::TraceWriter>(trace_os, &net, &rec);
    net.set_sink(tracer.get());
  } else {
    net.set_sink(&rec);
  }
  rm::DeliveryLog log;

  std::uint64_t nacks = 0, repairs = 0, units = 0;
  if (o.protocol == "srm") {
    srm::Config cfg;
    cfg.packet_size_bytes = o.packet_size;
    cfg.data_rate_bps = o.rate;
    srm::Session s(net, b.source, b.receivers, cfg, &log);
    s.start();
    s.send_stream(o.packets, o.data_start);
    simu.run_until(o.until);
    for (auto& a : s.agents()) {
      nacks += a->requests_sent();
      repairs += a->repairs_sent();
    }
    units = o.packets;
  } else {
    sfq::Config cfg;
    cfg.shard_size_bytes = o.packet_size;
    cfg.data_rate_bps = o.rate;
    cfg.group_size = o.group;
    cfg.adaptive_timers = o.adaptive;
    if (!o.metrics_file.empty()) cfg.metrics = &metrics;
    cfg.journal = journal.get();
    if (o.protocol == "ecsrm") {
      cfg.scoping = false;
      cfg.injection = false;
      cfg.sender_only = true;
    } else if (o.protocol == "ns") {
      cfg.scoping = false;
    } else if (o.protocol == "ni") {
      cfg.injection = false;
    } else if (o.protocol == "so") {
      cfg.sender_only = true;
    } else if (o.protocol != "sharqfec") {
      std::fprintf(stderr, "unknown protocol '%s'\n", o.protocol.c_str());
      return 2;
    }
    sfq::Session s(net, b.source, b.receivers, cfg, &log);
    s.start();
    s.send_stream(o.packets / cfg.group_size, o.data_start);
    simu.run_until(o.until);
    for (auto& a : s.agents()) {
      nacks += a->transfer().nacks_sent();
      repairs += a->transfer().repairs_sent();
    }
    units = o.packets / cfg.group_size;
    if (prof) s.memory_census(census);
  }

  int incomplete = 0;
  for (net::NodeId r : b.receivers) {
    if (!log.complete(r, units)) ++incomplete;
  }
  std::printf("fec kernel: %s\n", sfq::Agent::fec_kernel_name());
  stats::Table t({"protocol", "topo", "receivers", "nacks", "repairs",
                  "incomplete", "events", "drops"});
  t.add_row({o.protocol, o.topo, std::to_string(b.receivers.size()),
             std::to_string(nacks), std::to_string(repairs),
             std::to_string(incomplete),
             std::to_string(simu.events_executed()),
             std::to_string(rec.link_drops())});
  t.print();

  if (o.series) {
    auto series = rec.mean_over_nodes(
        b.receivers, {net::TrafficClass::kData, net::TrafficClass::kRepair});
    stats::print_series(std::cout, "data+repair pkts/receiver/0.1s", series,
                        0.1);
  }
  if (!o.metrics_file.empty()) {
    std::ofstream mos(o.metrics_file);
    if (!mos) {
      std::fprintf(stderr, "cannot open metrics file '%s'\n",
                   o.metrics_file.c_str());
      return 2;
    }
    // Combined export: the registry families plus the 0.1 s per-class
    // delivery series, under one sharqfec.metrics.v1 envelope.
    mos << "{\"schema\":\"sharqfec.metrics.v1\",\"metrics\":";
    stats::Metrics::write_families_json(mos, metrics.snapshot());
    mos << ",\"series\":";
    rec.write_series_json(mos);
    mos << "}\n";
  }
  if (prof) {
    net.memory_census(census);
    const std::uint64_t evq = simu.queue_memory_bytes();
    census.add("event_queue", evq, evq);
    prof->set_memory(census);
    prof->set_env("tool", "sharqfec_sim");
    prof->set_env("topo", o.topo);
    prof->set_env("protocol", o.protocol);
    stats::Profiler::set_active(nullptr);
    prof->write_file(o.profile_file);
  }
  return incomplete == 0 ? 0 : 1;
}
