// sharq_prof: analyzer for the self-profiling runtime's profile JSON
// (sharqfec.profile.v1, written by --profile=FILE in macro_sim /
// chaos_sim / sharqfec_sim; see docs/OBSERVABILITY.md, "Profiles").
//
//   sharq_prof report PROFILE
//       Ranked wall-time and memory attribution per subsystem and shard:
//       self-time table with shard imbalance factors, barrier-wait
//       breakdown, memory census ranked by retained bytes with the
//       fraction of the run's RSS growth attributed to named categories,
//       and the deterministic counters.
//
//   sharq_prof diff BASE NEW [--time-tol F] [--mem-tol F] [--count-tol F]
//       Compare two profiles: deterministic counters exactly by default
//       (--count-tol relaxes), memory within --mem-tol (default 0.25),
//       timing within --time-tol (default 10.0 — wall time is hardware).
//       Exit 1 when any tracked quantity moved beyond its tolerance.
//
//   sharq_prof export PROFILE --perfetto [-o FILE]
//       Chrome trace-event JSON (load in Perfetto / chrome://tracing):
//       one track per shard with the per-subsystem self-time laid out as
//       slices, plus counter tracks for the memory census.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "stats/metrics.hpp"

using namespace sharq;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: sharq_prof report PROFILE\n"
      "       sharq_prof diff BASE NEW [--time-tol F] [--mem-tol F]\n"
      "                   [--count-tol F]\n"
      "       sharq_prof export PROFILE --perfetto [-o FILE]\n");
  std::exit(2);
}

// --- minimal JSON value + recursive-descent parser ---------------------------
// The profile writer emits a known shape, but the parser is general
// (objects, arrays, strings, numbers, bools, null) so hand-edited
// fixtures and future schema fields parse too.

struct JVal {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JVal> arr;
  std::vector<std::pair<std::string, JVal>> obj;  // insertion order kept

  const JVal* get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double num_or(const std::string& key, double fallback) const {
    const JVal* v = get(key);
    return v != nullptr && v->kind == kNum ? v->num : fallback;
  }
};

class Parser {
 public:
  explicit Parser(std::string text) : s_(std::move(text)) {}

  bool parse(JVal& out) { return value(out) && at_end(); }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The profile writer only \u-escapes control characters;
          // accept any BMP scalar and re-encode as UTF-8.
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }
  bool value(JVal& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = JVal::kObj;
      if (eat('}')) return true;
      for (;;) {
        std::string key;
        if (!string(key) || !eat(':')) return false;
        JVal v;
        if (!value(v)) return false;
        out.obj.emplace_back(std::move(key), std::move(v));
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = JVal::kArr;
      if (eat(']')) return true;
      for (;;) {
        JVal v;
        if (!value(v)) return false;
        out.arr.push_back(std::move(v));
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') {
      out.kind = JVal::kStr;
      return string(out.str);
    }
    if (c == 't') {
      out.kind = JVal::kBool;
      out.b = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JVal::kBool;
      out.b = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = JVal::kNull;
      return literal("null");
    }
    // number
    std::string tok;
    while (pos_ < s_.size()) {
      const char d = s_[pos_];
      if ((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' ||
          d == 'e' || d == 'E') {
        tok.push_back(d);
        ++pos_;
      } else {
        break;
      }
    }
    if (tok.empty()) return false;
    char* end = nullptr;
    out.kind = JVal::kNum;
    out.num = std::strtod(tok.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  std::string s_;
  std::size_t pos_ = 0;
};

JVal load(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "sharq_prof: cannot open '%s'\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  JVal doc;
  if (!Parser(buf.str()).parse(doc) || doc.kind != JVal::kObj) {
    std::fprintf(stderr, "sharq_prof: '%s' is not valid JSON\n", path.c_str());
    std::exit(2);
  }
  const JVal* schema = doc.get("schema");
  if (schema == nullptr || schema->kind != JVal::kStr ||
      schema->str != "sharqfec.profile.v1") {
    std::fprintf(stderr, "sharq_prof: '%s' is not a sharqfec.profile.v1\n",
                 path.c_str());
    std::exit(2);
  }
  return doc;
}

// --- report ------------------------------------------------------------------

std::string human_bytes(double b) {
  const char* unit = "B";
  if (b >= 1024.0 * 1024.0 * 1024.0) {
    b /= 1024.0 * 1024.0 * 1024.0;
    unit = "GiB";
  } else if (b >= 1024.0 * 1024.0) {
    b /= 1024.0 * 1024.0;
    unit = "MiB";
  } else if (b >= 1024.0) {
    b /= 1024.0;
    unit = "KiB";
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1f %s", b, unit);
  return buf;
}

/// max(by_shard) / mean(by_shard) over nonzero shard count — 1.0 means
/// perfectly balanced, K means one shard did all the work.
double imbalance(const JVal& by_shard) {
  if (by_shard.kind != JVal::kArr || by_shard.arr.empty()) return 1.0;
  double sum = 0.0;
  double mx = 0.0;
  for (const JVal& v : by_shard.arr) {
    sum += v.num;  // sharq-lint: float-accum-ok (report math, not export)
    mx = std::max(mx, v.num);
  }
  if (sum <= 0.0) return 1.0;
  return mx / (sum / static_cast<double>(by_shard.arr.size()));
}

int cmd_report(const JVal& doc) {
  const JVal* det = doc.get("deterministic");
  const JVal* tim = doc.get("timing");
  if (det == nullptr || tim == nullptr) {
    std::fprintf(stderr, "sharq_prof: profile missing sections\n");
    return 2;
  }
  const double wall = tim->num_or("wall_s", 0.0);
  const double rss = tim->num_or("rss_delta_bytes", 0.0);
  std::string env_line;
  if (const JVal* env = tim->get("env")) {
    for (const auto& [k, v] : env->obj) {
      env_line += ' ' + k + '=' + (v.kind == JVal::kStr ? v.str : "");
    }
  }
  std::printf("profile: shards=%d wall=%.2fs rss_delta=%s%s\n",
              static_cast<int>(det->num_or("shards", 1)), wall,
              human_bytes(rss).c_str(), env_line.c_str());

  // Self time, ranked. Row: name, total_s, % of wall, imbalance.
  if (const JVal* self = tim->get("self_time")) {
    struct Row {
      std::string name;
      double total;
      double imb;
    };
    std::vector<Row> rows;
    double attributed = 0.0;
    for (const auto& [name, entry] : self->obj) {
      const double total = entry.num_or("total_s", 0.0);
      const JVal* shards = entry.get("by_shard_s");
      rows.push_back({name, total, shards ? imbalance(*shards) : 1.0});
      attributed += total;  // sharq-lint: float-accum-ok (parser preserves the profile's insertion order)
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.total > b.total; });
    std::printf("\n%-16s %10s %7s %10s\n", "self time", "seconds", "%wall",
                "imbalance");
    for (const Row& r : rows) {
      std::printf("%-16s %10.3f %6.1f%% %9.2fx\n", r.name.c_str(), r.total,
                  wall > 0 ? 100.0 * r.total / wall : 0.0, r.imb);
    }
    if (wall > 0) {
      std::printf("%-16s %10.3f %6.1f%%\n", "(attributed)", attributed,
                  100.0 * attributed / wall);
    }
  }

  // Barrier wait per shard (the parallel-run diagnosis: who waits on whom).
  if (const JVal* waits = tim->get("barrier_wait_by_shard_s")) {
    std::printf("\nbarrier wait by shard:");
    for (std::size_t s = 0; s < waits->arr.size(); ++s) {
      std::printf(" [%zu]=%.3fs", s, waits->arr[s].num);
    }
    std::printf("\n");
  }

  // Memory census, ranked by peak; attribution fraction against RSS
  // growth is the acceptance figure for memory-win claims
  // (docs/PERFORMANCE.md, "Reading a profile").
  if (const JVal* mem = det->get("memory")) {
    struct MRow {
      std::string name;
      double live;
      double peak;
    };
    std::vector<MRow> rows;
    double peak_sum = 0.0;
    for (const auto& [name, entry] : mem->obj) {
      const double live = entry.num_or("live_bytes", 0.0);
      const double peak = entry.num_or("peak_bytes", 0.0);
      rows.push_back({name, live, peak});
      peak_sum += peak;  // sharq-lint: float-accum-ok (parser preserves the profile's insertion order)
    }
    std::sort(rows.begin(), rows.end(),
              [](const MRow& a, const MRow& b) { return a.peak > b.peak; });
    std::printf("\n%-16s %12s %12s %8s\n", "memory", "live", "peak",
                "%rss");
    for (const MRow& r : rows) {
      std::printf("%-16s %12s %12s %7.1f%%\n", r.name.c_str(),
                  human_bytes(r.live).c_str(), human_bytes(r.peak).c_str(),
                  rss > 0 ? 100.0 * r.peak / rss : 0.0);
    }
    if (rss > 0) {
      std::printf("%-16s %12s %12s %7.1f%%  <- attribution\n", "(total)", "",
                  human_bytes(peak_sum).c_str(), 100.0 * peak_sum / rss);
    }
  }

  // Deterministic counters and scope counts.
  if (const JVal* counters = det->get("counters")) {
    std::printf("\ncounters:\n");
    for (const auto& [name, entry] : counters->obj) {
      std::printf("  %-20s %15.0f\n", name.c_str(),
                  entry.num_or("total", 0.0));
    }
  }
  if (const JVal* scopes = det->get("scopes")) {
    std::printf("scope entries:\n");
    for (const auto& [name, entry] : scopes->obj) {
      std::printf("  %-20s %15.0f\n", name.c_str(),
                  entry.num_or("total", 0.0));
    }
  }
  const double trunc = tim->num_or("truncated_scopes", 0.0);
  if (trunc > 0) {
    std::printf("warning: %.0f scopes exceeded the frame-stack depth "
                "(untimed)\n",
                trunc);
  }
  return 0;
}

// --- diff --------------------------------------------------------------------

struct DiffStats {
  int checked = 0;
  int failed = 0;

  /// Relative comparison: |a-b| <= tol * max(|a|,|b|, floor). The floor
  /// keeps tiny absolute values (a 2 ms subsystem) from tripping a
  /// relative gate.
  void check(const std::string& what, double base, double now, double tol,
             double floor) {
    ++checked;
    const double mag = std::max({std::fabs(base), std::fabs(now), floor});
    const double delta = std::fabs(now - base);
    if (delta <= tol * mag) return;
    ++failed;
    std::printf("FAIL %-40s base=%.6g new=%.6g (%+.1f%%, tol %.0f%%)\n",
                what.c_str(), base, now,
                base != 0 ? 100.0 * (now - base) / base : 0.0, 100.0 * tol);
  }
};

void diff_section(DiffStats& st, const JVal* base, const JVal* now,
                  const char* section, const char* field, double tol,
                  double floor) {
  if (base == nullptr && now == nullptr) return;
  // A category present on one side only is a change worth flagging.
  if (base == nullptr || now == nullptr) {
    ++st.checked;
    ++st.failed;
    std::printf("FAIL section %s only in %s profile\n", section,
                base == nullptr ? "new" : "base");
    return;
  }
  for (const auto& [name, entry] : base->obj) {
    const JVal* other = now->get(name);
    const double b = entry.num_or(field, entry.kind == JVal::kNum ? entry.num : 0.0);
    const double n =
        other != nullptr
            ? other->num_or(field, other->kind == JVal::kNum ? other->num : 0.0)
            : 0.0;
    st.check(std::string(section) + "." + name, b, n, tol, floor);
  }
  for (const auto& [name, entry] : now->obj) {
    if (base->get(name) == nullptr) {
      const double n =
          entry.num_or(field, entry.kind == JVal::kNum ? entry.num : 0.0);
      st.check(std::string(section) + "." + name + " (new)", 0.0, n, tol,
               floor);
    }
  }
}

int cmd_diff(const JVal& base, const JVal& now, double time_tol,
             double mem_tol, double count_tol) {
  const JVal* bdet = base.get("deterministic");
  const JVal* ndet = now.get("deterministic");
  const JVal* btim = base.get("timing");
  const JVal* ntim = now.get("timing");
  if (bdet == nullptr || ndet == nullptr || btim == nullptr ||
      ntim == nullptr) {
    std::fprintf(stderr, "sharq_prof: profile missing sections\n");
    return 2;
  }
  DiffStats st;
  // Channel A: counters and scope counts gate tightly (exact by default —
  // they are inside the determinism contract), memory by category.
  diff_section(st, bdet->get("counters"), ndet->get("counters"), "counters",
               "total", count_tol, 1.0);
  diff_section(st, bdet->get("scopes"), ndet->get("scopes"), "scopes",
               "total", count_tol, 1.0);
  diff_section(st, bdet->get("memory"), ndet->get("memory"), "memory",
               "peak_bytes", mem_tol, 4096.0);
  // Channel B: generous — wall time moves with the hardware.
  st.check("timing.wall_s", btim->num_or("wall_s", 0.0),
           ntim->num_or("wall_s", 0.0), time_tol, 0.1);
  diff_section(st, btim->get("self_time"), ntim->get("self_time"),
               "self_time", "total_s", time_tol, 0.1);
  std::printf("%d compared, %d beyond tolerance\n", st.checked, st.failed);
  return st.failed == 0 ? 0 : 1;
}

// --- perfetto export ---------------------------------------------------------

int cmd_export(const JVal& doc, std::ostream& os) {
  const JVal* det = doc.get("deterministic");
  const JVal* tim = doc.get("timing");
  if (det == nullptr || tim == nullptr) {
    std::fprintf(stderr, "sharq_prof: profile missing sections\n");
    return 2;
  }
  // Aggregate profile -> one track per shard: the per-subsystem self
  // times laid end to end as slices (the layout conveys proportions, not
  // sequence), plus one counter track per memory category. Same
  // {"traceEvents": [...]} envelope as sharq_trace's perfetto export.
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& json) {
    if (!first) os << ",";
    first = false;
    os << "\n" << json;
  };
  const JVal* self = tim->get("self_time");
  const int shards = static_cast<int>(det->num_or("shards", 1));
  for (int s = 0; s < shards; ++s) {
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" +
         std::to_string(s) + ",\"args\":{\"name\":\"shard " +
         std::to_string(s) + "\"}}");
    double cursor_us = 0.0;
    if (self != nullptr) {
      for (const auto& [name, entry] : self->obj) {
        const JVal* by_shard = entry.get("by_shard_s");
        if (by_shard == nullptr ||
            s >= static_cast<int>(by_shard->arr.size())) {
          continue;
        }
        const double dur_us = by_shard->arr[static_cast<std::size_t>(s)].num * 1e6;
        if (dur_us <= 0.0) continue;
        emit("{\"ph\":\"X\",\"name\":" + stats::json_quoted(name) +
             ",\"cat\":\"self\",\"pid\":0,\"tid\":" + std::to_string(s) +
             ",\"ts\":" + stats::json_double(cursor_us) +
             ",\"dur\":" + stats::json_double(dur_us) + "}");
        cursor_us += dur_us;  // sharq-lint: float-accum-ok (lays slices end to end; order fixed by subsystem index)
      }
    }
    if (const JVal* waits = tim->get("barrier_wait_by_shard_s")) {
      if (s < static_cast<int>(waits->arr.size())) {
        const double dur_us = waits->arr[static_cast<std::size_t>(s)].num * 1e6;
        if (dur_us > 0.0) {
          emit("{\"ph\":\"X\",\"name\":\"barrier_wait\",\"cat\":\"wait\","
               "\"pid\":0,\"tid\":" +
               std::to_string(s) + ",\"ts\":" + stats::json_double(cursor_us) +
               ",\"dur\":" + stats::json_double(dur_us) + "}");
        }
      }
    }
  }
  if (const JVal* mem = det->get("memory")) {
    for (const auto& [name, entry] : mem->obj) {
      emit("{\"ph\":\"C\",\"name\":" + stats::json_quoted("mem:" + name) +
           ",\"pid\":0,\"ts\":0,\"args\":{\"peak_bytes\":" +
           stats::json_double(entry.num_or("peak_bytes", 0.0)) + "}}");
    }
  }
  os << "\n]}\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);

  if (cmd == "report") {
    if (args.size() != 1) usage();
    const JVal doc = load(args[0]);
    return cmd_report(doc);
  }
  if (cmd == "diff") {
    double time_tol = 10.0;
    double mem_tol = 0.25;
    double count_tol = 0.0;
    std::vector<std::string> files;
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      auto tol_arg = [&](double& slot) {
        if (i + 1 >= args.size()) usage();
        slot = std::strtod(args[++i].c_str(), nullptr);
      };
      if (a == "--time-tol") {
        tol_arg(time_tol);
      } else if (a == "--mem-tol") {
        tol_arg(mem_tol);
      } else if (a == "--count-tol") {
        tol_arg(count_tol);
      } else if (!a.empty() && a[0] == '-') {
        usage();
      } else {
        files.push_back(a);
      }
    }
    if (files.size() != 2) usage();
    const JVal base = load(files[0]);
    const JVal now = load(files[1]);
    return cmd_diff(base, now, time_tol, mem_tol, count_tol);
  }
  if (cmd == "export") {
    bool perfetto = false;
    std::string out;
    std::vector<std::string> files;
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a == "--perfetto") {
        perfetto = true;
      } else if (a == "-o") {
        if (i + 1 >= args.size()) usage();
        out = args[++i];
      } else if (!a.empty() && a[0] == '-') {
        usage();
      } else {
        files.push_back(a);
      }
    }
    if (files.size() != 1) usage();
    if (!perfetto) {
      std::fprintf(stderr, "sharq_prof: export needs --perfetto\n");
      return 2;
    }
    const JVal doc = load(files[0]);
    if (out.empty()) return cmd_export(doc, std::cout);
    std::ofstream os(out);
    if (!os) {
      std::fprintf(stderr, "sharq_prof: cannot write '%s'\n", out.c_str());
      return 2;
    }
    return cmd_export(doc, os);
  }
  usage();
}
