// chaos_sim: randomized fault-injection soak for the SHARQFEC protocol.
//
// Runs N seeded random fault plans (partitions, loss/corruption/duplication/
// reordering windows, node kill/restart churn) against the paper's Figure 10
// topology and asserts protocol invariants after every plan:
//
//   complete  every live receiver finished every group
//   drained   no stuck timers: after stopping all agents and a grace
//             period, the event queue is empty
//   bounded   per-agent state (tracked groups, session peers) stayed
//             within its structural bound
//   ledger    per-hop conservation: transmissions == hops + wire drops
//
// Output is one JSON object per plan plus a totals line, and is
// byte-identical for the same --seed (the acceptance bar for reproducing
// chaos failures). Exit status 0 iff every invariant held on every plan.
//
// --exhaustion layers an overload campaign on top (docs/ROBUSTNESS.md):
// finite per-node resource budgets, NACK storms, flash-crowd joins,
// bandwidth/queue squeezes — and a fifth invariant:
//
//   budget    every budgeted dimension stayed at or under its cap and the
//             repair pacer never beat its minimum spacing
//
//   chaos_sim --plans 20 --seed 1
//   chaos_sim --plans 1 --seed 7 --dump-plans   # show the plan spec text
//   chaos_sim --plans 5 --seed 3 --exhaustion   # overload campaign
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/random_plan.hpp"
#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/shard_runtime.hpp"
#include "sim/simulator.hpp"
#include "stats/lane.hpp"
#include "stats/metrics.hpp"
#include "stats/profiler.hpp"
#include "stats/traffic_recorder.hpp"
#include "topo/figure10.hpp"
#include "topo/shard_plan.hpp"

using namespace sharq;

namespace {

struct Options {
  int plans = 20;
  std::uint64_t seed = 1;
  std::uint32_t groups = 20;       // 20 groups x 16 shards = 320 data packets
  double data_start = 6.0;         // after the paper's session warm-up
  double horizon = 40.0;           // faults all recover before this
  double until = 90.0;             // completion deadline
  double grace = 5.0;              // post-stop drain window
  int queue_limit = 512;           // per-link queue bound (-1 = unbounded)
  bool exhaustion = false;         // overload campaign + finite budgets
  bool dump_plans = false;
  int threads = 0;                 // 0 = serial engine; >=1 = shard runtime
  const char* profile = nullptr;   // campaign-wide sharqfec.profile.v1
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --plans N       number of random fault plans (default 20)\n"
      "  --seed S        master seed; same seed => identical output\n"
      "  --groups N      FEC groups per transfer (default 20)\n"
      "  --horizon T     all faults recover before T (default 40)\n"
      "  --until T       completion deadline per plan (default 90)\n"
      "  --grace T       post-stop drain window (default 5)\n"
      "  --queue-limit N per-link queue bound in packets, -1 = unbounded\n"
      "                  (default 512)\n"
      "  --exhaustion    overload campaign: finite per-node budgets plus\n"
      "                  NACK storms, flash crowds, bandwidth and queue\n"
      "                  squeezes (adds the budget invariant)\n"
      "  --dump-plans    print each plan's spec text before running it\n"
      "  --threads N     run on the zone-sharded runtime with N workers\n"
      "                  (output is byte-identical for every N; 0 =\n"
      "                  legacy serial engine, the default)\n"
      "  --profile FILE  write a campaign-wide sharqfec.profile.v1 (time\n"
      "                  and memory attribution summed over every plan;\n"
      "                  never part of the byte-compared stdout)\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--plans") o.plans = std::atoi(need(i));
    else if (a == "--seed") o.seed = std::strtoull(need(i), nullptr, 10);
    else if (a == "--groups") o.groups = std::strtoul(need(i), nullptr, 10);
    else if (a == "--horizon") o.horizon = std::atof(need(i));
    else if (a == "--until") o.until = std::atof(need(i));
    else if (a == "--grace") o.grace = std::atof(need(i));
    else if (a == "--queue-limit") o.queue_limit = std::atoi(need(i));
    else if (a == "--exhaustion") o.exhaustion = true;
    else if (a == "--dump-plans") o.dump_plans = true;
    else if (a == "--threads") o.threads = std::atoi(need(i));
    else if (a == "--profile") o.profile = need(i);
    else if (a.rfind("--profile=", 0) == 0) o.profile = argv[i] + 10;
    else usage(argv[0]);
  }
  return o;
}

/// Per-plan result row; every field is derived deterministically from the
/// plan seed so two runs of the same master seed print identical bytes.
struct PlanResult {
  bool complete = false;
  bool drained = false;
  bool bounded = false;
  bool ledger = false;
  std::size_t stuck_events = 0;
  std::uint64_t applied = 0, skipped = 0;
  std::uint64_t corrupt_rejects = 0, duplicate_rejects = 0;
  std::uint64_t malformed_rejects = 0;
  std::uint64_t peers_expired = 0, zcr_expiries = 0;
  std::size_t max_tracked_groups = 0, max_tracked_peers = 0;
  std::uint64_t drops_link_down = 0, drops_epoch_kill = 0;
  std::uint64_t drops_queue_full = 0;
  std::uint64_t events = 0;
  std::uint64_t nacks = 0, repairs = 0, preemptive = 0;
  bool budget_ok = true;  // vacuous when no budget dimension is enabled
  std::uint64_t dedup_shed = 0, peers_shed = 0, bridge_skips = 0;
  std::uint64_t repairs_deferred = 0, repairs_coalesced = 0, scope_sheds = 0;
  std::string metrics_json;  // per-plan registry totals, deterministic

  bool ok() const {
    return complete && drained && bounded && ledger && budget_ok;
  }
};

PlanResult run_plan(const Options& o, std::uint64_t plan_seed,
                    const std::string& plan_name, bool dump,
                    stats::MemCensus* census) {
  // Declared before the simulator/network/agents that cache pointers into
  // it, so it is destroyed last.
  stats::Metrics metrics;
  sim::Simulator simu(plan_seed);
  net::Network net(simu);
  simu.set_metrics(&metrics);
  net.set_metrics(&metrics);
  topo::Figure10Options topt;
  topt.queue_limit_pkts = o.queue_limit;
  const topo::Figure10 t = topo::make_figure10(net, topt);

  // Sharding decisions happen before any recorder/agent exists: agents
  // bind their shard's Simulator at construction, and sinks must be
  // per-shard so recording stays lane-private inside a window.
  std::unique_ptr<sim::ShardRuntime> rt;
  if (o.threads > 0) {
    net::ShardMap map = topo::make_zone_shard_map(net, stats::kMaxLanes);
    if (map.nshards > 1) {
      rt = std::make_unique<sim::ShardRuntime>(simu, map.nshards,
                                               map.lookahead, plan_seed,
                                               o.threads);
      net.enable_sharding(*rt, std::move(map));
      rt->set_metrics(&metrics);
    }
  }
  std::vector<std::unique_ptr<stats::TrafficRecorder>> recs;
  if (rt) {
    for (int s = 0; s < rt->nshards(); ++s) {
      recs.push_back(
          std::make_unique<stats::TrafficRecorder>(net.node_count()));
      net.set_shard_sink(s, recs.back().get());
    }
  } else {
    recs.push_back(
        std::make_unique<stats::TrafficRecorder>(net.node_count()));
    net.set_sink(recs.front().get());
  }
  // The shared DeliveryLog is serial-only bookkeeping (nothing below reads
  // it); a sharded run would interleave writes across lanes, so skip it.
  rm::DeliveryLog log;

  sfq::Config cfg;
  cfg.metrics = &metrics;
  // Chaos tuning: a tighter backoff cap keeps post-heal recovery latency
  // inside the completion deadline (the paper's cap of 10 gives worst-case
  // 2^10 backoff factors that outlive any reasonable soak budget).
  cfg.max_backoff_stage = 5;
  cfg.late_join_full_history = true;  // restarted receivers recover history
  if (o.exhaustion) {
    // Finite budgets, sized so the storms/crowds below actually trip them
    // while leaving enough headroom that transfers still complete once
    // pressure lifts (docs/ROBUSTNESS.md rationale).
    cfg.budget.state_bytes = 64 * 1024;
    cfg.budget.dedup_entries = 2048;
    cfg.budget.peers_per_level = 4;
    cfg.budget.repair_queue_depth = 8;
    cfg.budget.repair_rate_per_s = 150.0;
  }

  // Exhaustion campaigns hold out one leaf per middle node as flash-crowd
  // joiners: they join mid-stream (via the fault plan) and must still
  // complete, proving overload shedding does not wedge late catch-up.
  std::vector<net::NodeId> receivers;
  std::vector<net::NodeId> joiners;
  if (o.exhaustion) {
    std::set<net::NodeId> held;
    for (std::size_t c = 0; c < t.middles.size(); ++c) {
      held.insert(t.leaves[4 * c + 3]);
    }
    for (net::NodeId n : t.receivers) {
      (held.count(n) ? joiners : receivers).push_back(n);
    }
  } else {
    receivers = t.receivers;
  }

  sfq::Session session(net, t.source, receivers, cfg,
                       rt ? nullptr : &log);
  session.start();
  session.send_stream(o.groups, o.data_start);

  // Candidate faults: the downstream tree edges (mesh->middle, middle->leaf)
  // with their configured baseline loss, so loss windows restore the paper's
  // rates. Backbone edges stay clean — cutting source->mesh with no mesh
  // interconnect would strand a whole tree with no alternate route.
  fault::PlanShape shape;
  shape.horizon = o.horizon;
  for (std::size_t m = 0; m < t.mesh.size(); ++m) {
    for (net::NodeId mid : t.middles_of(static_cast<int>(m))) {
      shape.edges.push_back({t.mesh[m], mid, topt.mesh_child_loss,
                             topt.tree_bandwidth_bps});
    }
  }
  for (std::size_t c = 0; c < t.middles.size(); ++c) {
    for (net::NodeId leaf : t.leaves_of(static_cast<int>(c))) {
      shape.edges.push_back({t.middles[c], leaf, topt.child_leaf_loss,
                             topt.tree_bandwidth_bps});
    }
  }
  // Churn victims; middles/ZCRs churn via tests. Held-out joiners are
  // excluded: killing a node before it ever joined is meaningless churn.
  for (net::NodeId n : t.leaves) {
    if (!o.exhaustion ||
        std::find(joiners.begin(), joiners.end(), n) == joiners.end()) {
      shape.killable.push_back(n);
    }
  }
  shape.partitions = 1;
  shape.degrade_windows = 3;
  shape.node_churns = 2;
  if (o.exhaustion) {
    shape.nack_storms = 3;
    shape.bw_squeezes = 2;
    shape.queue_squeezes = 2;
    shape.flash_crowds = 1;
    shape.baseline_queue_pkts = o.queue_limit;
    shape.joinable = joiners;
    shape.stormers = shape.killable;  // in-session leaves
  }

  sim::Rng plan_rng(plan_seed ^ 0xc4a05fau);
  const fault::FaultPlan plan =
      fault::make_random_plan(plan_rng, shape, plan_name);
  if (dump) std::fputs(plan.to_spec().c_str(), stdout);

  auto member = [&](net::NodeId n) -> sfq::Agent* {
    for (const auto& a : session.agents()) {
      if (a->node() == n) return a.get();
    }
    return nullptr;
  };
  fault::Injector inject(
      net, {.kill = [&](net::NodeId n) { session.remove_receiver(n); },
            .restart = [&](net::NodeId n) { session.add_receiver(n); },
            .join =
                [&](net::NodeId n) {
                  if (net.node_up(n) && !member(n)) session.add_receiver(n);
                },
            .nack_storm =
                [&](net::NodeId n, int count, sim::Time spacing) {
                  if (sfq::Agent* a = member(n)) {
                    a->transfer().nack_storm(count, spacing);
                  }
                }});
  if (rt) {
    // Fault events flip global state (link flags, routing, conditioners,
    // membership), so they execute single-threaded at window barriers.
    inject.set_scheduler([&rtr = *rt](sim::Time at, std::function<void()> fn) {
      rtr.at_global(at, std::move(fn));
    });
  }
  inject.schedule(plan);

#ifdef CHAOS_DEBUG_SERIES
  for (double tt = 5.0; tt <= o.until; tt += 5.0) {
    simu.run_until(tt);
    std::fprintf(stderr, "t=%5.1f events=%llu pending=%zu\n", tt,
                 static_cast<unsigned long long>(simu.events_executed()),
                 simu.events_pending());
  }
#endif
  if (rt) {
    rt->run_until(o.until);
  } else {
    simu.run_until(o.until);
  }

  PlanResult r;
  r.complete = session.all_complete(o.groups);
  // Budget invariants: every budgeted dimension's high water stayed at or
  // under its cap, and the repair pacer kept its minimum spacing. The
  // state ledger is a soft target with one-allocation overshoot before
  // the next dedup insert sheds, hence the small slack.
  const sfq::ResourceBudget& bud = cfg.budget;
  constexpr std::size_t kStateSlack = 4096;
  auto tally = [&](const sfq::Agent& a) {
    r.corrupt_rejects += a.corrupt_rejects();
    r.duplicate_rejects += a.duplicate_rejects();
    r.malformed_rejects += a.transfer().malformed_rejects();
    r.nacks += a.transfer().nacks_sent();
    r.repairs += a.transfer().repairs_sent();
    r.preemptive += a.transfer().preemptive_repairs_sent();
    r.peers_expired += a.session().peers_expired();
    r.zcr_expiries += a.session().zcr_expiries();
    r.max_tracked_groups =
        std::max(r.max_tracked_groups, a.transfer().tracked_group_count());
    r.max_tracked_peers =
        std::max(r.max_tracked_peers, a.session().tracked_peer_count());
    r.dedup_shed += a.dedup_shed();
    r.peers_shed += a.session().peers_shed();
    r.bridge_skips += a.session().bridge_skips();
    r.repairs_deferred += a.transfer().repairs_deferred();
    r.repairs_coalesced += a.transfer().repairs_coalesced();
    r.scope_sheds += a.transfer().scope_sheds();
    if (bud.dedup_entries > 0 && a.dedup_high_water() > bud.dedup_entries) {
      r.budget_ok = false;
    }
    if (bud.peers_per_level > 0 &&
        (a.session().peer_table_high_water() > bud.peers_per_level ||
         a.session().bridge_table_high_water() > bud.peers_per_level)) {
      r.budget_ok = false;
    }
    if (bud.repair_queue_depth > 0 &&
        a.transfer().pending_high_water() > bud.repair_queue_depth) {
      r.budget_ok = false;
    }
    if (bud.repair_rate_per_s > 0.0 &&
        a.budget().min_repair_spacing() != sim::kTimeNever &&
        a.budget().min_repair_spacing() <
            1.0 / bud.repair_rate_per_s - 1e-9) {
      r.budget_ok = false;
    }
    if (bud.state_bytes > 0 &&
        a.budget().state_high_water() > bud.state_bytes + kStateSlack) {
      r.budget_ok = false;
    }
  };
  for (const auto& a : session.agents()) tally(*a);
  for (const auto& a : session.retired()) tally(*a);
  // Structural bounds: an agent never tracks more groups than the transfer
  // has, and never more session peers than 3 hierarchy levels times the
  // member count (peer table + bridge RTT table per level).
  r.bounded =
      r.max_tracked_groups <= o.groups &&
      r.max_tracked_peers <=
          static_cast<std::size_t>(6 * net.node_count());

  // Stuck-timer check: once every agent stops, the queue must fully drain
  // within the grace window (in-flight packets, pacing chains, and stale
  // scheduled lambdas all fire and no-op).
  for (const auto& a : session.agents()) a->stop();
  if (rt) {
    rt->run_until(o.until + o.grace);
    r.stuck_events = rt->events_pending();
  } else {
    simu.run_until(o.until + o.grace);
    r.stuck_events = simu.events_pending();
  }
  r.drained = r.stuck_events == 0;

  // Per-hop conservation. A sharded run records a transmission on the
  // sender's shard and the matching hop on the receiver's, so only the
  // ledger summed across recorders balances.
  std::uint64_t tx = 0, hops = 0, d_loss = 0, d_kill = 0;
  auto sum_drops = [&recs](net::DropReason reason) {
    std::uint64_t n = 0;
    for (const auto& rp : recs) n += rp->drops(reason);
    return n;
  };
  for (const auto& rp : recs) {
    tx += rp->link_transmissions();
    hops += rp->link_hops();
  }
  d_loss = sum_drops(net::DropReason::kLoss);
  d_kill = sum_drops(net::DropReason::kEpochKill);
  r.ledger = tx == hops + d_loss + d_kill;
  r.applied = inject.applied_events();
  r.skipped = inject.skipped_events();
  r.drops_link_down = sum_drops(net::DropReason::kLinkDown);
  r.drops_epoch_kill = d_kill;
  r.drops_queue_full = sum_drops(net::DropReason::kQueueFull);
  r.events = rt ? rt->events_executed() : simu.events_executed();
  std::ostringstream mos;
  metrics.write_totals_json(mos);
  r.metrics_json = mos.str();
  // Campaign-wide memory attribution: each plan's retained bytes add onto
  // the caller's census (the profile reports the campaign sum).
  if (census != nullptr) {
    session.memory_census(*census);
    net.memory_census(*census);
    std::uint64_t evq = 0;
    if (rt) {
      for (int s = 0; s < rt->nshards(); ++s) {
        evq += rt->sim(s).queue_memory_bytes();
      }
      if (stats::Profiler* prof = stats::Profiler::active()) {
        prof->set_shards(rt->nshards());
      }
    } else {
      evq = simu.queue_memory_bytes();
    }
    census->add("event_queue", evq, evq);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  sim::Rng master(o.seed);
  std::unique_ptr<stats::Profiler> prof;
  stats::MemCensus census;
  if (o.profile != nullptr) {
    prof = std::make_unique<stats::Profiler>();
    stats::Profiler::set_active(prof.get());
  }
  int failed = 0;
  for (int i = 0; i < o.plans; ++i) {
    const std::uint64_t plan_seed = master.next_u64();
    const PlanResult r =
        run_plan(o, plan_seed, "chaos-" + std::to_string(i), o.dump_plans,
                 prof ? &census : nullptr);
    if (!r.ok()) ++failed;
    std::printf(
        "{\"plan\":%d,\"seed\":%llu,\"applied\":%llu,\"skipped\":%llu,"
        "\"complete\":%s,\"drained\":%s,\"bounded\":%s,\"ledger\":%s,"
        "\"stuck_events\":%zu,"
        "\"corrupt_rejects\":%llu,\"duplicate_rejects\":%llu,"
        "\"malformed_rejects\":%llu,"
        "\"peers_expired\":%llu,\"zcr_expiries\":%llu,"
        "\"max_tracked_groups\":%zu,\"max_tracked_peers\":%zu,"
        "\"drops_link_down\":%llu,\"drops_epoch_kill\":%llu,"
        "\"drops_queue_full\":%llu,"
        "\"events\":%llu,\"nacks\":%llu,\"repairs\":%llu,"
        "\"preemptive\":%llu,\"budget_ok\":%s,"
        "\"dedup_shed\":%llu,\"peers_shed\":%llu,\"bridge_skips\":%llu,"
        "\"repairs_deferred\":%llu,\"repairs_coalesced\":%llu,"
        "\"scope_sheds\":%llu,\"ok\":%s,\"metrics\":%s}\n",
        i, static_cast<unsigned long long>(plan_seed),
        static_cast<unsigned long long>(r.applied),
        static_cast<unsigned long long>(r.skipped),
        r.complete ? "true" : "false", r.drained ? "true" : "false",
        r.bounded ? "true" : "false", r.ledger ? "true" : "false",
        r.stuck_events, static_cast<unsigned long long>(r.corrupt_rejects),
        static_cast<unsigned long long>(r.duplicate_rejects),
        static_cast<unsigned long long>(r.malformed_rejects),
        static_cast<unsigned long long>(r.peers_expired),
        static_cast<unsigned long long>(r.zcr_expiries), r.max_tracked_groups,
        r.max_tracked_peers,
        static_cast<unsigned long long>(r.drops_link_down),
        static_cast<unsigned long long>(r.drops_epoch_kill),
        static_cast<unsigned long long>(r.drops_queue_full),
        static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.nacks),
        static_cast<unsigned long long>(r.repairs),
        static_cast<unsigned long long>(r.preemptive),
        r.budget_ok ? "true" : "false",
        static_cast<unsigned long long>(r.dedup_shed),
        static_cast<unsigned long long>(r.peers_shed),
        static_cast<unsigned long long>(r.bridge_skips),
        static_cast<unsigned long long>(r.repairs_deferred),
        static_cast<unsigned long long>(r.repairs_coalesced),
        static_cast<unsigned long long>(r.scope_sheds),
        r.ok() ? "true" : "false", r.metrics_json.c_str());
  }
  std::printf("{\"plans\":%d,\"failed\":%d,\"ok\":%s}\n", o.plans, failed,
              failed == 0 ? "true" : "false");
  if (prof) {
    prof->set_memory(census);
    prof->set_env("tool", "chaos_sim");
    prof->set_env("plans", std::to_string(o.plans));
    prof->set_env("threads", std::to_string(o.threads));
    stats::Profiler::set_active(nullptr);
    prof->write_file(o.profile);
  }
  return failed == 0 ? 0 : 1;
}
