// chaos_sim: randomized fault-injection soak for the SHARQFEC protocol.
//
// Runs N seeded random fault plans (partitions, loss/corruption/duplication/
// reordering windows, node kill/restart churn) against the paper's Figure 10
// topology and asserts protocol invariants after every plan:
//
//   complete  every live receiver finished every group
//   drained   no stuck timers: after stopping all agents and a grace
//             period, the event queue is empty
//   bounded   per-agent state (tracked groups, session peers) stayed
//             within its structural bound
//   ledger    per-hop conservation: transmissions == hops + wire drops
//
// Output is one JSON object per plan plus a totals line, and is
// byte-identical for the same --seed (the acceptance bar for reproducing
// chaos failures). Exit status 0 iff every invariant held on every plan.
//
//   chaos_sim --plans 20 --seed 1
//   chaos_sim --plans 1 --seed 7 --dump-plans   # show the plan spec text
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/random_plan.hpp"
#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"
#include "stats/traffic_recorder.hpp"
#include "topo/figure10.hpp"

using namespace sharq;

namespace {

struct Options {
  int plans = 20;
  std::uint64_t seed = 1;
  std::uint32_t groups = 20;       // 20 groups x 16 shards = 320 data packets
  double data_start = 6.0;         // after the paper's session warm-up
  double horizon = 40.0;           // faults all recover before this
  double until = 90.0;             // completion deadline
  double grace = 5.0;              // post-stop drain window
  bool dump_plans = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --plans N       number of random fault plans (default 20)\n"
      "  --seed S        master seed; same seed => identical output\n"
      "  --groups N      FEC groups per transfer (default 20)\n"
      "  --horizon T     all faults recover before T (default 40)\n"
      "  --until T       completion deadline per plan (default 90)\n"
      "  --grace T       post-stop drain window (default 5)\n"
      "  --dump-plans    print each plan's spec text before running it\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--plans") o.plans = std::atoi(need(i));
    else if (a == "--seed") o.seed = std::strtoull(need(i), nullptr, 10);
    else if (a == "--groups") o.groups = std::strtoul(need(i), nullptr, 10);
    else if (a == "--horizon") o.horizon = std::atof(need(i));
    else if (a == "--until") o.until = std::atof(need(i));
    else if (a == "--grace") o.grace = std::atof(need(i));
    else if (a == "--dump-plans") o.dump_plans = true;
    else usage(argv[0]);
  }
  return o;
}

/// Per-plan result row; every field is derived deterministically from the
/// plan seed so two runs of the same master seed print identical bytes.
struct PlanResult {
  bool complete = false;
  bool drained = false;
  bool bounded = false;
  bool ledger = false;
  std::size_t stuck_events = 0;
  std::uint64_t applied = 0, skipped = 0;
  std::uint64_t corrupt_rejects = 0, duplicate_rejects = 0;
  std::uint64_t malformed_rejects = 0;
  std::uint64_t peers_expired = 0, zcr_expiries = 0;
  std::size_t max_tracked_groups = 0, max_tracked_peers = 0;
  std::uint64_t drops_link_down = 0, drops_epoch_kill = 0;
  std::uint64_t events = 0;
  std::uint64_t nacks = 0, repairs = 0, preemptive = 0;
  std::string metrics_json;  // per-plan registry totals, deterministic

  bool ok() const { return complete && drained && bounded && ledger; }
};

PlanResult run_plan(const Options& o, std::uint64_t plan_seed,
                    const std::string& plan_name, bool dump) {
  // Declared before the simulator/network/agents that cache pointers into
  // it, so it is destroyed last.
  stats::Metrics metrics;
  sim::Simulator simu(plan_seed);
  net::Network net(simu);
  simu.set_metrics(&metrics);
  net.set_metrics(&metrics);
  const topo::Figure10 t = topo::make_figure10(net);
  stats::TrafficRecorder rec(net.node_count());
  net.set_sink(&rec);
  rm::DeliveryLog log;

  sfq::Config cfg;
  cfg.metrics = &metrics;
  // Chaos tuning: a tighter backoff cap keeps post-heal recovery latency
  // inside the completion deadline (the paper's cap of 10 gives worst-case
  // 2^10 backoff factors that outlive any reasonable soak budget).
  cfg.max_backoff_stage = 5;
  cfg.late_join_full_history = true;  // restarted receivers recover history
  sfq::Session session(net, t.source, t.receivers, cfg, &log);
  session.start();
  session.send_stream(o.groups, o.data_start);

  // Candidate faults: the downstream tree edges (mesh->middle, middle->leaf)
  // with their configured baseline loss, so loss windows restore the paper's
  // rates. Backbone edges stay clean — cutting source->mesh with no mesh
  // interconnect would strand a whole tree with no alternate route.
  const topo::Figure10Options topo_defaults;
  fault::PlanShape shape;
  shape.horizon = o.horizon;
  for (std::size_t m = 0; m < t.mesh.size(); ++m) {
    for (net::NodeId mid : t.middles_of(static_cast<int>(m))) {
      shape.edges.push_back({t.mesh[m], mid, topo_defaults.mesh_child_loss});
    }
  }
  for (std::size_t c = 0; c < t.middles.size(); ++c) {
    for (net::NodeId leaf : t.leaves_of(static_cast<int>(c))) {
      shape.edges.push_back({t.middles[c], leaf, topo_defaults.child_leaf_loss});
    }
  }
  shape.killable = t.leaves;  // churn victims; middles/ZCRs churn via tests
  shape.partitions = 1;
  shape.degrade_windows = 3;
  shape.node_churns = 2;

  sim::Rng plan_rng(plan_seed ^ 0xc4a05fau);
  const fault::FaultPlan plan =
      fault::make_random_plan(plan_rng, shape, plan_name);
  if (dump) std::fputs(plan.to_spec().c_str(), stdout);

  fault::Injector inject(
      net, {.kill = [&](net::NodeId n) { session.remove_receiver(n); },
            .restart = [&](net::NodeId n) { session.add_receiver(n); }});
  inject.schedule(plan);

#ifdef CHAOS_DEBUG_SERIES
  for (double tt = 5.0; tt <= o.until; tt += 5.0) {
    simu.run_until(tt);
    std::fprintf(stderr, "t=%5.1f events=%llu pending=%zu\n", tt,
                 static_cast<unsigned long long>(simu.events_executed()),
                 simu.events_pending());
  }
#endif
  simu.run_until(o.until);

  PlanResult r;
  r.complete = session.all_complete(o.groups);
  for (const auto& a : session.agents()) {
    r.corrupt_rejects += a->corrupt_rejects();
    r.duplicate_rejects += a->duplicate_rejects();
    r.malformed_rejects += a->transfer().malformed_rejects();
    r.nacks += a->transfer().nacks_sent();
    r.repairs += a->transfer().repairs_sent();
    r.preemptive += a->transfer().preemptive_repairs_sent();
    r.peers_expired += a->session().peers_expired();
    r.zcr_expiries += a->session().zcr_expiries();
    r.max_tracked_groups =
        std::max(r.max_tracked_groups, a->transfer().tracked_group_count());
    r.max_tracked_peers =
        std::max(r.max_tracked_peers, a->session().tracked_peer_count());
  }
  // Structural bounds: an agent never tracks more groups than the transfer
  // has, and never more session peers than 3 hierarchy levels times the
  // member count (peer table + bridge RTT table per level).
  r.bounded =
      r.max_tracked_groups <= o.groups &&
      r.max_tracked_peers <=
          static_cast<std::size_t>(6 * net.node_count());

  // Stuck-timer check: once every agent stops, the queue must fully drain
  // within the grace window (in-flight packets, pacing chains, and stale
  // scheduled lambdas all fire and no-op).
  for (const auto& a : session.agents()) a->stop();
  simu.run_until(o.until + o.grace);
  r.stuck_events = simu.events_pending();
  r.drained = r.stuck_events == 0;

  r.ledger = rec.hop_ledger_balanced();
  r.applied = inject.applied_events();
  r.skipped = inject.skipped_events();
  r.drops_link_down = rec.drops(net::DropReason::kLinkDown);
  r.drops_epoch_kill = rec.drops(net::DropReason::kEpochKill);
  r.events = simu.events_executed();
  std::ostringstream mos;
  metrics.write_totals_json(mos);
  r.metrics_json = mos.str();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  sim::Rng master(o.seed);
  int failed = 0;
  for (int i = 0; i < o.plans; ++i) {
    const std::uint64_t plan_seed = master.next_u64();
    const PlanResult r =
        run_plan(o, plan_seed, "chaos-" + std::to_string(i), o.dump_plans);
    if (!r.ok()) ++failed;
    std::printf(
        "{\"plan\":%d,\"seed\":%llu,\"applied\":%llu,\"skipped\":%llu,"
        "\"complete\":%s,\"drained\":%s,\"bounded\":%s,\"ledger\":%s,"
        "\"stuck_events\":%zu,"
        "\"corrupt_rejects\":%llu,\"duplicate_rejects\":%llu,"
        "\"malformed_rejects\":%llu,"
        "\"peers_expired\":%llu,\"zcr_expiries\":%llu,"
        "\"max_tracked_groups\":%zu,\"max_tracked_peers\":%zu,"
        "\"drops_link_down\":%llu,\"drops_epoch_kill\":%llu,"
        "\"events\":%llu,\"nacks\":%llu,\"repairs\":%llu,"
        "\"preemptive\":%llu,\"ok\":%s,\"metrics\":%s}\n",
        i, static_cast<unsigned long long>(plan_seed),
        static_cast<unsigned long long>(r.applied),
        static_cast<unsigned long long>(r.skipped),
        r.complete ? "true" : "false", r.drained ? "true" : "false",
        r.bounded ? "true" : "false", r.ledger ? "true" : "false",
        r.stuck_events, static_cast<unsigned long long>(r.corrupt_rejects),
        static_cast<unsigned long long>(r.duplicate_rejects),
        static_cast<unsigned long long>(r.malformed_rejects),
        static_cast<unsigned long long>(r.peers_expired),
        static_cast<unsigned long long>(r.zcr_expiries), r.max_tracked_groups,
        r.max_tracked_peers,
        static_cast<unsigned long long>(r.drops_link_down),
        static_cast<unsigned long long>(r.drops_epoch_kill),
        static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.nacks),
        static_cast<unsigned long long>(r.repairs),
        static_cast<unsigned long long>(r.preemptive),
        r.ok() ? "true" : "false", r.metrics_json.c_str());
  }
  std::printf("{\"plans\":%d,\"failed\":%d,\"ok\":%s}\n", o.plans, failed,
              failed == 0 ? "true" : "false");
  return failed == 0 ? 0 : 1;
}
