// sharq_lint — project-invariant static analysis for the SHARQFEC tree.
//
// The repo's load-bearing contract is byte-identical same-seed simulation
// output (chaos soak JSON, the sharqfec.metrics.v1 export, packet traces).
// That property is easy to break silently: one range-for over an
// unordered_map in a path that feeds timers, wire messages, or an exporter
// and the run is only "deterministic" by the grace of one library's hash
// ordering. This tool turns the contract into a checked property.
//
// It is a real lexer, not a grep: source is tokenized (comments, string
// and raw-string literals, char literals, preprocessor header-names are
// all understood), rules run over the token stream, and suppressions are
// structured annotations, so banned names inside strings or comments never
// fire and annotations are auditable. See docs/DETERMINISM.md for the rule
// catalog and the annotation grammar.
//
// Rules:
//   unordered-iter   iteration over unordered containers (range-for or
//                    begin()/end() family) outside annotated regions.
//                    Iterate an ordered container, or take a sorted
//                    snapshot via sharqfec/ordered.hpp.
//   wall-clock       wall-clock / ambient-nondeterminism sources in src/
//                    (time(), system_clock, rand(), std::random_device,
//                    <chrono>/<ctime>/<random> includes). Randomness must
//                    come from sim/random.hpp, time from the Simulator.
//   event-tag        Simulator::at/after call sites must carry an event
//                    tag (the metrics registry's per-tag event counters
//                    are part of the observable output).
//   unchecked-shift  `1 << expr` with a non-constant shift count — the
//                    PR-3 TraceWriter bug class (UB for forged/future
//                    values >= width). Bound-check, then annotate.
//   metric-docs      metric family names and event tags registered in
//                    src/ must appear in docs/OBSERVABILITY.md.
//   thread-unsafe    raw threading primitives (std::thread, std::mutex,
//                    std::atomic, thread_local, pthreads, their headers)
//                    in src/ outside the blessed shard-runtime files.
//                    Protocol code must stay synchronization-free: the
//                    deterministic parallel contract is lane/barrier
//                    discipline (src/sim/shard_runtime.hpp), not locks.
//
// Annotation grammar (line comments; block comments work too):
//   // sharq-lint: <rule>-ok                this line and the next line
//   // sharq-lint: <rule>-ok file           whole file
//   // sharq-lint: <rule>-ok begin          region start
//   // sharq-lint: <rule>-ok end            region end
// Several rules may be listed comma-separated:  // sharq-lint: a-ok, b-ok
// A trailing free-text reason after the control words is encouraged:
//   // sharq-lint: unchecked-shift-ok (cls bound-checked two lines up)
//
// Exit status: 0 clean, 1 findings, 2 usage/internal error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

struct Tok {
  enum Kind { kIdent, kNumber, kString, kChar, kPunct, kHeader } kind;
  std::string text;
  int line = 0;
};

struct Annotation {
  enum Scope { kLine, kFile, kBegin, kEnd } scope = kLine;
  std::string rule;  // without the "-ok" suffix
  int line = 0;
};

struct LexedFile {
  std::string path;               // as given on the command line
  std::vector<Tok> toks;
  std::vector<Annotation> annotations;
  std::vector<std::pair<int, std::string>> expect_markers;  // line -> rule
};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Parse a comment body for "sharq-lint:" annotations and "EXPECT-LINT:"
// self-test markers.
void parse_comment(const std::string& body, int line, LexedFile& out) {
  auto scan = [&](const std::string& key, auto&& handle) {
    std::size_t pos = body.find(key);
    if (pos == std::string::npos) return;
    handle(body.substr(pos + key.size()));
  };
  scan("sharq-lint:", [&](std::string rest) {
    // Words up to an opening paren (free-text reason) or end.
    if (std::size_t p = rest.find('('); p != std::string::npos) rest.resize(p);
    std::replace(rest.begin(), rest.end(), ',', ' ');
    std::istringstream is(rest);
    std::vector<std::string> words;
    for (std::string w; is >> w;) words.push_back(w);
    Annotation::Scope scope = Annotation::kLine;
    if (!words.empty()) {
      if (words.back() == "file") { scope = Annotation::kFile; words.pop_back(); }
      else if (words.back() == "begin") { scope = Annotation::kBegin; words.pop_back(); }
      else if (words.back() == "end") { scope = Annotation::kEnd; words.pop_back(); }
    }
    for (const std::string& w : words) {
      if (w.size() > 3 && w.compare(w.size() - 3, 3, "-ok") == 0) {
        out.annotations.push_back(
            Annotation{scope, w.substr(0, w.size() - 3), line});
      }
    }
  });
  scan("EXPECT-LINT:", [&](std::string rest) {
    std::replace(rest.begin(), rest.end(), ',', ' ');
    std::istringstream is(rest);
    for (std::string w; is >> w;) out.expect_markers.emplace_back(line, w);
  });
}

// Tokenize one file. Comments are consumed here (feeding annotations);
// everything else becomes a token. `#include <name>` header-names are
// lexed as a single kHeader token so include rules never confuse them
// with less-than expressions.
LexedFile lex_file(const std::string& path, const std::string& text) {
  LexedFile out;
  out.path = path;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  bool line_started_hash = false;   // current preproc line began with '#'
  bool expect_header = false;       // just saw `# include`

  auto peek = [&](std::size_t k) -> char { return i + k < n ? text[i + k] : '\0'; };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_started_hash = false;
      expect_header = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) { ++i; continue; }

    // Comments.
    if (c == '/' && peek(1) == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      parse_comment(text.substr(i + 2, end - i - 2), line, out);
      i = end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      std::size_t end = text.find("*/", i + 2);
      const int start_line = line;
      if (end == std::string::npos) end = n; else end += 2;
      parse_comment(text.substr(i + 2, end - i - 2), start_line, out);
      line += static_cast<int>(std::count(text.begin() + static_cast<std::ptrdiff_t>(i),
                                          text.begin() + static_cast<std::ptrdiff_t>(end), '\n'));
      i = end;
      continue;
    }

    // Preprocessor bookkeeping for header-name lexing.
    if (c == '#') {
      line_started_hash = true;
      out.toks.push_back({Tok::kPunct, "#", line});
      ++i;
      continue;
    }
    if (expect_header && c == '<') {
      std::size_t end = text.find('>', i + 1);
      if (end != std::string::npos) {
        out.toks.push_back({Tok::kHeader, text.substr(i + 1, end - i - 1), line});
        i = end + 1;
        expect_header = false;
        continue;
      }
    }

    // String literals (with encoding prefixes and raw strings).
    if (c == '"' || ((c == 'L' || c == 'u' || c == 'U' || c == 'R') &&
                     (peek(1) == '"' ||
                      (c == 'u' && peek(1) == '8' && (peek(2) == '"' || (peek(2) == 'R' && peek(3) == '"'))) ||
                      ((c == 'L' || c == 'u' || c == 'U') && peek(1) == 'R' && peek(2) == '"')))) {
      // Advance to the opening quote, noting whether this is a raw string.
      std::size_t q = i;
      bool raw = false;
      while (text[q] != '"') {
        if (text[q] == 'R') raw = true;
        ++q;
      }
      std::size_t end;
      if (raw) {
        // R"delim( ... )delim"
        std::size_t p = text.find('(', q + 1);
        const std::string delim = text.substr(q + 1, p - q - 1);
        const std::string closer = ")" + delim + "\"";
        end = text.find(closer, p + 1);
        end = end == std::string::npos ? n : end + closer.size();
      } else {
        end = q + 1;
        while (end < n && text[end] != '"') {
          if (text[end] == '\\') ++end;
          if (text[end] == '\n') break;  // unterminated; recover at newline
          ++end;
        }
        if (end < n && text[end] == '"') ++end;
      }
      // Store the literal's body; the exact body only matters for
      // metric-docs, which never uses raw strings, so the raw case may
      // keep its delimiters.
      const std::string body = raw ? text.substr(q, end - q)
                                   : text.substr(q + 1, end > q + 1 ? end - q - 2 : 0);
      out.toks.push_back({Tok::kString, body, line});
      line += static_cast<int>(std::count(text.begin() + static_cast<std::ptrdiff_t>(i),
                                          text.begin() + static_cast<std::ptrdiff_t>(end), '\n'));
      i = end;
      continue;
    }

    // Char literals.
    if (c == '\'') {
      std::size_t end = i + 1;
      while (end < n && text[end] != '\'') {
        if (text[end] == '\\') ++end;
        ++end;
      }
      out.toks.push_back({Tok::kChar, text.substr(i + 1, end - i - 1), line});
      i = end < n ? end + 1 : n;
      continue;
    }

    // Numbers (including hex, digit separators, exponents).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t end = i + 1;
      while (end < n) {
        const char d = text[end];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' || d == '\'') { ++end; continue; }
        if ((d == '+' || d == '-') && (text[end - 1] == 'e' || text[end - 1] == 'E' ||
                                       text[end - 1] == 'p' || text[end - 1] == 'P')) { ++end; continue; }
        break;
      }
      out.toks.push_back({Tok::kNumber, text.substr(i, end - i), line});
      i = end;
      continue;
    }

    // Identifiers.
    if (ident_start(c)) {
      std::size_t end = i + 1;
      while (end < n && ident_char(text[end])) ++end;
      std::string id = text.substr(i, end - i);
      if (line_started_hash && id == "include") expect_header = true;
      out.toks.push_back({Tok::kIdent, std::move(id), line});
      i = end;
      continue;
    }

    // Punctuation: fold the multi-char operators the rules care about.
    static const char* kTwoChar[] = {"<<", ">>", "->", "::"};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (c == op[0] && peek(1) == op[1]) {
        // "<<=" / ">>=" are compound assignments, not the shift pattern.
        if ((c == '<' || c == '>') && peek(2) == '=') break;
        out.toks.push_back({Tok::kPunct, op, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.toks.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppression lookup
// ---------------------------------------------------------------------------

class Suppressions {
 public:
  explicit Suppressions(const LexedFile& f) {
    std::map<std::string, int> open_regions;
    for (const Annotation& a : f.annotations) {
      switch (a.scope) {
        case Annotation::kFile: file_.insert(a.rule); break;
        case Annotation::kLine:
          lines_[a.rule].push_back(a.line);
          break;
        case Annotation::kBegin: open_regions[a.rule] = a.line; break;
        case Annotation::kEnd: {
          auto it = open_regions.find(a.rule);
          const int start = it == open_regions.end() ? 0 : it->second;
          regions_[a.rule].emplace_back(start, a.line);
          if (it != open_regions.end()) open_regions.erase(it);
          break;
        }
      }
    }
    // An unclosed begin-region runs to end of file.
    for (const auto& [rule, start] : open_regions) {
      regions_[rule].emplace_back(start, 1 << 30);
    }
  }

  bool suppressed(const std::string& rule, int line) const {
    if (file_.count(rule)) return true;
    if (auto it = lines_.find(rule); it != lines_.end()) {
      for (int l : it->second) {
        if (line == l || line == l + 1) return true;
      }
    }
    if (auto it = regions_.find(rule); it != regions_.end()) {
      for (const auto& [lo, hi] : it->second) {
        if (line >= lo && line <= hi) return true;
      }
    }
    return false;
  }

 private:
  std::set<std::string> file_;
  std::map<std::string, std::vector<int>> lines_;
  std::map<std::string, std::vector<std::pair<int, int>>> regions_;
};

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    return std::tie(file, line, rule, message) <
           std::tie(o.file, o.line, o.rule, o.message);
  }
};

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

// Index of the token after the matcher of toks[open] (which must be "(",
// "[" or "{"); returns toks.size() on imbalance.
std::size_t skip_balanced(const std::vector<Tok>& toks, std::size_t open) {
  static const std::map<std::string, std::string> kMatch = {
      {"(", ")"}, {"[", "]"}, {"{", "}"}};
  const std::string& o = toks[open].text;
  const std::string& cl = kMatch.at(o);
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (toks[i].text == o) ++depth;
    else if (toks[i].text == cl && --depth == 0) return i + 1;
  }
  return toks.size();
}

// From toks[open] == "<", skip a balanced template-argument list. Returns
// the index after the closing ">" (treating ">>" as two closers), or
// `open` itself if this does not look like a template argument list.
std::size_t skip_template_args(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind == Tok::kPunct) {
      if (t.text == "<") ++depth;
      else if (t.text == ">") { if (--depth == 0) return i + 1; }
      else if (t.text == ">>") { depth -= 2; if (depth <= 0) return i + 1; }
      else if (t.text == ";" || t.text == "{") return open;  // not a template
    }
  }
  return open;
}

bool is_const_like(const Tok& t) {
  if (t.kind == Tok::kNumber) return true;
  if (t.kind != Tok::kIdent) return false;
  const std::string& s = t.text;
  if (s == "sizeof" || s == "true" || s == "false") return true;
  // k-constant convention (kTrafficClassCount) or ALL_CAPS macro.
  if (s.size() >= 2 && s[0] == 'k' && std::isupper(static_cast<unsigned char>(s[1]))) return true;
  bool caps = s.size() >= 2;
  for (char c : s) {
    caps = caps && (std::isupper(static_cast<unsigned char>(c)) ||
                    std::isdigit(static_cast<unsigned char>(c)) || c == '_');
  }
  return caps;
}

// ---------------------------------------------------------------------------
// Pass 1: collect names declared with unordered container types.
// ---------------------------------------------------------------------------

// Scoping: type/alias names are global (aliases live in headers and name
// the same thing everywhere). Variable/member/function names are global
// only when declared in a HEADER — that is what lets `peers` declared in
// session_manager.hpp flag the walks in session_manager.cpp. Names
// declared in a .cpp stay local to that file, so one test's short-named
// local (`std::unordered_set<int> s`) cannot poison every `s` in the tree.
struct SymbolTable {
  std::set<std::string> unordered_types;  // type/alias names
  std::set<std::string> unordered_vars;   // variable/member/function names
};

bool is_header(const std::string& path) {
  const std::string ext = fs::path(path).extension().string();
  return ext == ".hpp" || ext == ".h";
}

void collect_unordered_decls(const LexedFile& f, SymbolTable& sym) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const auto& toks = f.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const bool base = kUnordered.count(toks[i].text) > 0;
    const bool alias = !base && sym.unordered_types.count(toks[i].text) > 0;
    if (!base && !alias) continue;

    // `using X = std::unordered_map<...>;` — record the alias. Look back
    // past `std ::` for `using X =`.
    if (base) {
      std::size_t b = i;
      while (b >= 2 && ((toks[b - 1].kind == Tok::kPunct && toks[b - 1].text == "::") ||
                        (toks[b - 1].kind == Tok::kIdent && toks[b - 1].text == "std"))) {
        --b;
      }
      if (b >= 3 && toks[b - 1].text == "=" && toks[b - 2].kind == Tok::kIdent &&
          toks[b - 3].kind == Tok::kIdent && toks[b - 3].text == "using") {
        sym.unordered_types.insert(toks[b - 2].text);
      }
    }

    // Declaration: TYPE<...> [&*const]* name   (members, locals, params,
    // and functions returning an unordered container all count).
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].kind == Tok::kPunct && toks[j].text == "<") {
      const std::size_t after = skip_template_args(toks, j);
      if (after == j) continue;  // comparison, not a template arg list
      j = after;
    } else if (base) {
      continue;  // bare `unordered_map` without args: using-decl etc.
    }
    while (j < toks.size() &&
           ((toks[j].kind == Tok::kPunct && (toks[j].text == "&" || toks[j].text == "*")) ||
            (toks[j].kind == Tok::kIdent && toks[j].text == "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Tok::kIdent) {
      sym.unordered_vars.insert(toks[j].text);
    }
  }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

// Names that mark a range expression as an ordered snapshot.
bool has_ordered_snapshot_call(const std::vector<Tok>& toks, std::size_t lo,
                               std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    if (toks[i].kind == Tok::kIdent &&
        (toks[i].text == "ordered_keys" || toks[i].text == "ordered_items" ||
         toks[i].text == "ordered_values")) {
      return true;
    }
  }
  return false;
}

void rule_unordered_iter(const LexedFile& f, const SymbolTable& sym,
                         const Suppressions& sup, std::vector<Finding>& out) {
  const auto& toks = f.toks;
  auto is_unordered_name = [&](const Tok& t) {
    return t.kind == Tok::kIdent && (sym.unordered_vars.count(t.text) > 0 ||
                                     sym.unordered_types.count(t.text) > 0);
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression mentions an unordered name.
    if (toks[i].kind == Tok::kIdent && toks[i].text == "for" &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      const std::size_t close = skip_balanced(toks, i + 1);
      // Find the top-level ':' of a range-for (depth 1 relative to the
      // for-parens; `::` is a distinct token so plain ':' is unambiguous).
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (toks[j].kind != Tok::kPunct) continue;
        if (toks[j].text == "(" || toks[j].text == "[" || toks[j].text == "{") ++depth;
        else if (toks[j].text == ")" || toks[j].text == "]" || toks[j].text == "}") --depth;
        else if (toks[j].text == ":" && depth == 1) { colon = j; break; }
        else if (toks[j].text == ";") break;  // classic for-loop
      }
      if (colon != 0 && !has_ordered_snapshot_call(toks, colon, close)) {
        for (std::size_t j = colon + 1; j + 1 < close; ++j) {
          if (is_unordered_name(toks[j]) && !sup.suppressed("unordered-iter", toks[j].line)) {
            out.push_back({f.path, toks[i].line, "unordered-iter",
                           "range-for over unordered container '" + toks[j].text +
                               "': iteration order is hash-dependent and can leak "
                               "into timers/wire/export ordering; use an ordered "
                               "container or sharqfec/ordered.hpp, or annotate "
                               "`// sharq-lint: unordered-iter-ok (reason)`"});
            break;
          }
        }
      }
    }
    // begin()/end() family on an unordered name: explicit iterator walks.
    if (toks[i].kind == Tok::kIdent && i + 2 < toks.size() &&
        toks[i + 1].kind == Tok::kPunct &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        toks[i + 2].kind == Tok::kIdent) {
      // Only the begin() family: a walk cannot start at end(), and
      // `m.find(k) == m.end()` is the (order-free) lookup idiom.
      static const std::set<std::string> kIter = {"begin", "cbegin", "rbegin"};
      if (kIter.count(toks[i + 2].text) && is_unordered_name(toks[i]) &&
          !sup.suppressed("unordered-iter", toks[i].line)) {
        out.push_back({f.path, toks[i].line, "unordered-iter",
                       "iterator walk over unordered container '" + toks[i].text +
                           "': order is hash-dependent; use an ordered container "
                           "or sharqfec/ordered.hpp, or annotate "
                           "`// sharq-lint: unordered-iter-ok (reason)`"});
      }
    }
  }
}

void rule_wall_clock(const LexedFile& f, const Suppressions& sup,
                     std::vector<Finding>& out) {
  static const std::set<std::string> kBannedIdents = {
      "rand", "srand", "drand48", "lrand48", "random_device", "mt19937",
      "mt19937_64", "minstd_rand", "default_random_engine", "system_clock",
      "steady_clock", "high_resolution_clock", "gettimeofday",
      "clock_gettime", "localtime", "gmtime", "strftime"};
  static const std::set<std::string> kBannedHeaders = {"chrono", "ctime",
                                                       "time.h", "sys/time.h",
                                                       "random"};
  const auto& toks = f.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind == Tok::kHeader && kBannedHeaders.count(t.text) &&
        !sup.suppressed("wall-clock", t.line)) {
      out.push_back({f.path, t.line, "wall-clock",
                     "#include <" + t.text + "> in src/: wall-clock time and "
                         "ambient randomness break same-seed reproducibility; "
                         "use sim/random.hpp and Simulator::now()"});
      continue;
    }
    if (t.kind != Tok::kIdent) continue;
    const bool member = i > 0 && toks[i - 1].kind == Tok::kPunct &&
                        (toks[i - 1].text == "." || toks[i - 1].text == "->");
    if (member) continue;  // obj.rand() is somebody else's method
    bool banned = kBannedIdents.count(t.text) > 0;
    // `time(...)` as a free function call (std::time / ::time).
    if (!banned && t.text == "time" && i + 1 < toks.size() &&
        toks[i + 1].kind == Tok::kPunct && toks[i + 1].text == "(") {
      banned = true;
    }
    if (banned && !sup.suppressed("wall-clock", t.line)) {
      out.push_back({f.path, t.line, "wall-clock",
                     "'" + t.text + "' is a nondeterminism source: every "
                         "stochastic or temporal input must flow through "
                         "sim/random.hpp or the Simulator clock"});
    }
  }
}

void rule_event_tag(const LexedFile& f, const Suppressions& sup,
                    std::vector<Finding>& out) {
  const auto& toks = f.toks;
  auto simulator_receiver = [&](std::size_t dot) -> bool {
    if (dot == 0) return false;
    const Tok& r = toks[dot - 1];
    if (r.kind == Tok::kIdent) {
      return r.text == "sim" || r.text == "sim_" || r.text == "simu" ||
             r.text == "simu_" || r.text == "simulator" || r.text == "simulator_";
    }
    // `... .simulator().after(...)` — receiver is a call: look through `()`.
    if (r.kind == Tok::kPunct && r.text == ")" && dot >= 3 &&
        toks[dot - 2].text == "(" && toks[dot - 3].kind == Tok::kIdent) {
      return toks[dot - 3].text == "simulator";
    }
    return false;
  };
  for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || (toks[i].text != "at" && toks[i].text != "after")) continue;
    if (toks[i - 1].kind != Tok::kPunct ||
        (toks[i - 1].text != "." && toks[i - 1].text != "->")) continue;
    if (toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != "(") continue;
    if (!simulator_receiver(i - 1)) continue;
    const std::size_t close = skip_balanced(toks, i + 1);
    // Split the argument list at top-level commas.
    int depth = 0;
    std::vector<std::size_t> commas;
    for (std::size_t j = i + 1; j < close - 1; ++j) {
      if (toks[j].kind != Tok::kPunct) continue;
      if (toks[j].text == "(" || toks[j].text == "[" || toks[j].text == "{") ++depth;
      else if (toks[j].text == ")" || toks[j].text == "]" || toks[j].text == "}") --depth;
      else if (toks[j].text == "," && depth == 1) commas.push_back(j);
    }
    bool ok = commas.size() >= 2;  // at(when, fn, tag): >= 3 arguments
    if (ok) {
      // The tag argument must be a string literal or a plain identifier
      // expression (e.g. `tag_`, `e.tag`) — not a lambda, not nullptr.
      const std::size_t lo = commas.back() + 1;
      bool has_str = false, has_brace = false, has_null = false;
      for (std::size_t j = lo; j + 1 < close; ++j) {
        if (toks[j].kind == Tok::kString) has_str = true;
        if (toks[j].kind == Tok::kPunct && toks[j].text == "{") has_brace = true;
        if (toks[j].kind == Tok::kIdent && (toks[j].text == "nullptr" || toks[j].text == "NULL"))
          has_null = true;
      }
      const bool ident_tag = !has_str && !has_brace && !has_null && lo + 1 <= close - 1;
      ok = (has_str || ident_tag) && !has_brace && !has_null;
    }
    if (!ok && !sup.suppressed("event-tag", toks[i].line)) {
      out.push_back({f.path, toks[i].line, "event-tag",
                     "Simulator::" + toks[i].text + "() call site without an event "
                         "tag: per-tag event counters are part of the metrics "
                         "contract (docs/OBSERVABILITY.md); pass a string-literal "
                         "tag as the last argument"});
    }
  }
}

void rule_unchecked_shift(const LexedFile& f, const Suppressions& sup,
                          std::vector<Finding>& out) {
  const auto& toks = f.toks;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct || toks[i].text != "<<") continue;
    const Tok& lhs = toks[i - 1];
    if (lhs.kind != Tok::kNumber) continue;
    if (lhs.text.find('.') != std::string::npos) continue;  // float stream
    // Constant-fold-visible RHS is fine.
    const Tok& rhs = toks[i + 1];
    bool constant = false;
    if (is_const_like(rhs)) {
      constant = true;
    } else if (rhs.kind == Tok::kPunct && rhs.text == "(") {
      const std::size_t close = skip_balanced(toks, i + 1);
      constant = true;
      for (std::size_t j = i + 2; j + 1 < close; ++j) {
        if (toks[j].kind == Tok::kPunct) continue;
        if (!is_const_like(toks[j])) { constant = false; break; }
      }
    }
    if (!constant && !sup.suppressed("unchecked-shift", toks[i].line)) {
      out.push_back({f.path, toks[i].line, "unchecked-shift",
                     "'" + lhs.text + " << " + rhs.text + "': shifting a literal "
                         "by a non-constant is UB once the count reaches the "
                         "operand width (the TraceWriter forged-class bug); "
                         "bound-check the count, then annotate "
                         "`// sharq-lint: unchecked-shift-ok (guard)`"});
    }
  }
}

void rule_thread_unsafe(const LexedFile& f, const Suppressions& sup,
                        std::vector<Finding>& out) {
  static const std::set<std::string> kBannedStd = {
      "thread", "jthread", "mutex", "timed_mutex", "recursive_mutex",
      "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
      "atomic", "atomic_flag", "atomic_ref", "condition_variable",
      "condition_variable_any", "lock_guard", "unique_lock", "scoped_lock",
      "shared_lock", "counting_semaphore", "binary_semaphore", "barrier",
      "latch", "future", "shared_future", "promise", "async", "stop_token",
      "stop_source", "call_once", "once_flag"};
  static const std::set<std::string> kBannedHeaders = {
      "thread", "mutex", "atomic", "condition_variable", "future",
      "shared_mutex", "semaphore", "barrier", "latch", "stop_token",
      "pthread.h"};
  const auto& toks = f.toks;
  const std::string advice =
      "; synchronization in protocol code breaks the deterministic "
      "shard contract (lane/barrier discipline, "
      "src/sim/shard_runtime.hpp) — if this file IS shard-runtime "
      "infrastructure, annotate "
      "`// sharq-lint: thread-unsafe-ok file (reason)`";
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind == Tok::kHeader && kBannedHeaders.count(t.text) &&
        !sup.suppressed("thread-unsafe", t.line)) {
      out.push_back({f.path, t.line, "thread-unsafe",
                     "#include <" + t.text + "> in src/" + advice});
      continue;
    }
    if (t.kind != Tok::kIdent) continue;
    if (t.text == "thread_local") {
      if (!sup.suppressed("thread-unsafe", t.line)) {
        out.push_back({f.path, t.line, "thread-unsafe",
                       "'thread_local' storage in src/" + advice});
      }
      continue;
    }
    if (t.text.size() > 8 && t.text.compare(0, 8, "pthread_") == 0) {
      if (!sup.suppressed("thread-unsafe", t.line)) {
        out.push_back({f.path, t.line, "thread-unsafe",
                       "'" + t.text + "' in src/" + advice});
      }
      continue;
    }
    // Only the std-qualified spellings: a protocol-domain identifier that
    // happens to be called `barrier` or `promise` must not fire.
    const bool std_qualified =
        i >= 2 && toks[i - 1].kind == Tok::kPunct && toks[i - 1].text == "::" &&
        toks[i - 2].kind == Tok::kIdent && toks[i - 2].text == "std";
    if (std_qualified && kBannedStd.count(t.text) &&
        !sup.suppressed("thread-unsafe", t.line)) {
      out.push_back({f.path, t.line, "thread-unsafe",
                     "'std::" + t.text + "' in src/" + advice});
    }
  }
}

void rule_metric_docs(const LexedFile& f, const Suppressions& sup,
                      const std::string& doc_text, std::vector<Finding>& out) {
  const auto& toks = f.toks;
  auto documented = [&](const std::string& name) {
    return doc_text.find("`" + name + "`") != std::string::npos;
  };
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const std::string& id = toks[i].text;
    const bool metric_reg = id == "counter" || id == "gauge" || id == "histogram";
    const bool tag_reg = id == "set_tag";
    if (!metric_reg && !tag_reg) continue;
    if (toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != "(") continue;
    if (toks[i + 2].kind != Tok::kString) continue;
    const std::string& name = toks[i + 2].text;
    if (name.empty()) continue;
    if (!documented(name) && !sup.suppressed("metric-docs", toks[i].line)) {
      out.push_back({f.path, toks[i].line, "metric-docs",
                     std::string(metric_reg ? "metric family" : "event tag") +
                         " \"" + name + "\" is not documented in "
                         "docs/OBSERVABILITY.md: add a catalog row (the doc is "
                         "part of the metrics schema contract)"});
    }
  }
  // Event tags passed as the literal last argument of Simulator::at/after.
  for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kString) continue;
    if (i + 1 >= toks.size() || toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != ")") continue;
    if (toks[i - 1].kind != Tok::kPunct || toks[i - 1].text != ",") continue;
    // Only treat as a tag when it looks like one ("area.name") to avoid
    // matching arbitrary string arguments.
    const std::string& name = toks[i].text;
    if (name.find('.') == std::string::npos || name.find(' ') != std::string::npos) continue;
    if (!documented(name) && !sup.suppressed("metric-docs", toks[i].line)) {
      out.push_back({f.path, toks[i].line, "metric-docs",
                     "event tag \"" + name + "\" is not documented in "
                         "docs/OBSERVABILITY.md: add it to the event-tag table"});
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Options {
  std::vector<std::string> paths;
  std::string doc_path = "docs/OBSERVABILITY.md";
  bool all_scopes = false;  // fixtures: every rule applies everywhere
  std::string self_test_dir;
};

bool starts_with(const std::string& s, const std::string& p) {
  return s.rfind(p, 0) == 0;
}

// Default rule scoping by tree location (relative paths from the repo
// root). tests/ may schedule untagged events and shift ad hoc; wall-clock
// and the docs contract are properties of the library tree.
bool rule_applies(const std::string& rule, const std::string& path,
                  bool all_scopes) {
  if (all_scopes) return true;
  const bool in_src = starts_with(path, "src/");
  const bool in_tests = starts_with(path, "tests/");
  if (rule == "wall-clock" || rule == "metric-docs" ||
      rule == "thread-unsafe") {
    return in_src;
  }
  if (rule == "event-tag" || rule == "unchecked-shift") return !in_tests;
  return true;  // unordered-iter: whole tree
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::vector<std::string> collect_files(const std::vector<std::string>& roots) {
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    fs::path rp(root);
    if (fs::is_regular_file(rp)) {
      files.push_back(rp.generic_string());
      continue;
    }
    if (!fs::is_directory(rp)) continue;
    for (auto it = fs::recursive_directory_iterator(rp);
         it != fs::recursive_directory_iterator(); ++it) {
      const std::string name = it->path().filename().string();
      if (it->is_directory() &&
          (starts_with(name, "build") || name == ".git" || name == "fixtures")) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Finding> run_lint(const std::vector<std::string>& files,
                              const Options& opt) {
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  // Global table: header declarations only (see SymbolTable). Types from
  // .cpp files still feed the global alias set — a type names the same
  // thing wherever it is spelled.
  SymbolTable sym;
  auto collect_scoped = [&](const LexedFile& f, SymbolTable& into) {
    if (is_header(f.path)) {
      collect_unordered_decls(f, into);
    } else {
      SymbolTable local;
      local.unordered_types = into.unordered_types;
      collect_unordered_decls(f, local);
      into.unordered_types = std::move(local.unordered_types);
    }
  };
  for (const std::string& path : files) {
    lexed.push_back(lex_file(path, slurp(path)));
    collect_scoped(lexed.back(), sym);
  }
  // Alias declarations may be seen after their uses in file order; one
  // more collection round reaches the fixed point for one level of
  // aliasing, which is all the tree uses.
  for (const LexedFile& f : lexed) collect_scoped(f, sym);

  const std::string doc_text = slurp(opt.doc_path);
  std::vector<Finding> findings;
  for (const LexedFile& f : lexed) {
    const Suppressions sup(f);
    if (rule_applies("unordered-iter", f.path, opt.all_scopes)) {
      // Effective table for this file: globals plus its own declarations.
      SymbolTable eff = sym;
      collect_unordered_decls(f, eff);
      rule_unordered_iter(f, eff, sup, findings);
    }
    if (rule_applies("wall-clock", f.path, opt.all_scopes))
      rule_wall_clock(f, sup, findings);
    if (rule_applies("event-tag", f.path, opt.all_scopes))
      rule_event_tag(f, sup, findings);
    if (rule_applies("unchecked-shift", f.path, opt.all_scopes))
      rule_unchecked_shift(f, sup, findings);
    if (rule_applies("thread-unsafe", f.path, opt.all_scopes))
      rule_thread_unsafe(f, sup, findings);
    if (rule_applies("metric-docs", f.path, opt.all_scopes))
      rule_metric_docs(f, sup, doc_text, findings);
  }
  std::sort(findings.begin(), findings.end());
  return findings;
}

// Self-test: every fixture line marked `// EXPECT-LINT: rule` must produce
// exactly that finding, and no unmarked finding may appear.
int run_self_test(const Options& opt) {
  std::vector<std::string> files = collect_files({opt.self_test_dir});
  if (files.empty()) {
    std::fprintf(stderr, "sharq_lint: no fixtures under %s\n",
                 opt.self_test_dir.c_str());
    return 2;
  }
  Options fixture_opt = opt;
  fixture_opt.all_scopes = true;
  // The fixture doc lives next to the fixtures.
  const fs::path doc = fs::path(opt.self_test_dir) / "observability_fixture.md";
  if (fs::exists(doc)) fixture_opt.doc_path = doc.generic_string();

  std::set<std::pair<std::string, std::pair<int, std::string>>> expected;
  for (const std::string& path : files) {
    const LexedFile f = lex_file(path, slurp(path));
    for (const auto& [line, rule] : f.expect_markers) {
      expected.insert({path, {line, rule}});
    }
  }
  std::set<std::pair<std::string, std::pair<int, std::string>>> got;
  for (const Finding& fi : run_lint(files, fixture_opt)) {
    got.insert({fi.file, {fi.line, fi.rule}});
  }
  int rc = 0;
  for (const auto& e : expected) {
    if (!got.count(e)) {
      std::fprintf(stderr, "self-test FAIL: expected %s:%d: [%s] not reported\n",
                   e.first.c_str(), e.second.first, e.second.second.c_str());
      rc = 1;
    }
  }
  for (const auto& g : got) {
    if (!expected.count(g)) {
      std::fprintf(stderr, "self-test FAIL: unexpected %s:%d: [%s]\n",
                   g.first.c_str(), g.second.first, g.second.second.c_str());
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("sharq_lint self-test: %zu expectations across %zu fixtures OK\n",
                expected.size(), files.size());
  }
  return rc;
}

void print_rules() {
  std::printf(
      "unordered-iter   no iteration over unordered containers (order feeds output)\n"
      "wall-clock       no wall-clock/randomness sources in src/ outside sim/random.hpp\n"
      "event-tag        Simulator::at/after call sites must carry an event tag\n"
      "unchecked-shift  no literal-<<-nonconstant shifts without a bound-check\n"
      "metric-docs      metric families and event tags must be in docs/OBSERVABILITY.md\n"
      "thread-unsafe    no raw threading primitives in src/ outside the shard runtime\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list-rules") { print_rules(); return 0; }
    if (a == "--all-scopes") { opt.all_scopes = true; continue; }
    if (starts_with(a, "--doc=")) { opt.doc_path = a.substr(6); continue; }
    if (a == "--doc" && i + 1 < argc) { opt.doc_path = argv[++i]; continue; }
    if (a == "--self-test" && i + 1 < argc) { opt.self_test_dir = argv[++i]; continue; }
    if (starts_with(a, "--")) {
      std::fprintf(stderr, "sharq_lint: unknown option %s\n", a.c_str());
      return 2;
    }
    opt.paths.push_back(a);
  }
  if (!opt.self_test_dir.empty()) return run_self_test(opt);
  if (opt.paths.empty()) {
    std::fprintf(stderr,
                 "usage: sharq_lint [--doc PATH] [--all-scopes] [--list-rules] "
                 "[--self-test FIXTURE_DIR] paths...\n");
    return 2;
  }
  const std::vector<std::string> files = collect_files(opt.paths);
  const std::vector<Finding> findings = run_lint(files, opt);
  for (const Finding& fi : findings) {
    std::printf("%s:%d: [%s] %s\n", fi.file.c_str(), fi.line, fi.rule.c_str(),
                fi.message.c_str());
  }
  if (findings.empty()) {
    std::printf("sharq_lint: %zu files clean\n", files.size());
    return 0;
  }
  std::printf("sharq_lint: %zu finding(s) in %zu files\n", findings.size(),
              files.size());
  return 1;
}
