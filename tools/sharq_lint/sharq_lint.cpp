// sharq_lint — project-invariant static analysis for the SHARQFEC tree.
//
// The repo's load-bearing contract is byte-identical same-seed simulation
// output (chaos soak JSON, the sharqfec.metrics.v1 export, packet traces).
// That property is easy to break silently: one range-for over an
// unordered_map in a path that feeds timers, wire messages, or an exporter
// and the run is only "deterministic" by the grace of one library's hash
// ordering. This tool turns the contract into a checked property.
//
// It is a real lexer, not a grep: source is tokenized (comments, string
// and raw-string literals, char literals, preprocessor header-names are
// all understood), rules run over the token stream, and suppressions are
// structured annotations, so banned names inside strings or comments never
// fire and annotations are auditable. See docs/DETERMINISM.md for the rule
// catalog and the annotation grammar.
//
// Rules:
//   unordered-iter   iteration over unordered containers (range-for or
//                    begin()/end() family) outside annotated regions.
//                    Iterate an ordered container, or take a sorted
//                    snapshot via sharqfec/ordered.hpp.
//   wall-clock       wall-clock / ambient-nondeterminism sources in src/
//                    (time(), system_clock, rand(), std::random_device,
//                    <chrono>/<ctime>/<random> includes). Randomness must
//                    come from sim/random.hpp, time from the Simulator.
//   event-tag        Simulator::at/after call sites must carry an event
//                    tag (the metrics registry's per-tag event counters
//                    are part of the observable output).
//   unchecked-shift  `1 << expr` with a non-constant shift count — the
//                    PR-3 TraceWriter bug class (UB for forged/future
//                    values >= width). Bound-check, then annotate.
//   metric-docs      metric family names and event tags registered in
//                    src/ must appear in docs/OBSERVABILITY.md.
//   thread-unsafe    raw threading primitives (std::thread, std::mutex,
//                    std::atomic, thread_local, pthreads, their headers)
//                    in src/ outside the blessed shard-runtime files.
//                    Protocol code must stay synchronization-free: the
//                    deterministic parallel contract is lane/barrier
//                    discipline (src/sim/shard_runtime.hpp), not locks.
//
// Parallel-era rules (cross-TU, driven by the project symbol index):
//   pointer-key      no raw-pointer / const char* keys in associative
//                    containers and no std::less/std::greater over
//                    pointers: hash and compare order follows ASLR and
//                    pool recycling, which TSan cannot see.
//   shard-affinity   members declared inside `// sharq-lint: shard-owned
//                    begin/end` regions of a header may only be touched
//                    from files sharing that header's stem (the owning
//                    shard runtime); anything else needs an annotation
//                    naming the audited merge path.
//   float-accum      no `+=` of a float-typed name inside a range-for
//                    body without an ordering annotation: cross-shard
//                    merge changes summation order, and FP addition is
//                    not associative.
//   rng-stream       every by-value sim::Rng in src/ must be initialized
//                    from a parent stream's fork() (directly or in a
//                    constructor); ad-hoc seeded or default-constructed
//                    streams fork the determinism story per call site.
//   journal-cause    journal emit sites (Journal::emit and the per-class
//                    jnl wrappers, resolved through the symbol index)
//                    must name a cataloged event and pass a real cause id
//                    when docs/OBSERVABILITY.md declares a cause edge;
//                    `--reverse-docs` additionally checks that every
//                    cataloged event and metric row is live in src/.
//
// Annotation grammar (line comments; block comments work too):
//   // sharq-lint: <rule>-ok                this line and the next line
//   // sharq-lint: <rule>-ok file           whole file
//   // sharq-lint: <rule>-ok begin          region start
//   // sharq-lint: <rule>-ok end            region end
// Several rules may be listed comma-separated:  // sharq-lint: a-ok, b-ok
// A trailing free-text reason after the control words is encouraged:
//   // sharq-lint: unchecked-shift-ok (cls bound-checked two lines up)
//
// Exit status: 0 clean, 1 findings, 2 usage/internal error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

struct Tok {
  enum Kind { kIdent, kNumber, kString, kChar, kPunct, kHeader } kind;
  std::string text;
  int line = 0;
};

struct Annotation {
  enum Scope { kLine, kFile, kBegin, kEnd } scope = kLine;
  std::string rule;  // without the "-ok" suffix
  int line = 0;
};

struct LexedFile {
  std::string path;               // as given on the command line
  std::vector<Tok> toks;
  std::vector<Annotation> annotations;
  std::vector<std::pair<int, std::string>> expect_markers;  // line -> rule
};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Parse a comment body for "sharq-lint:" annotations and "EXPECT-LINT:"
// self-test markers.
void parse_comment(const std::string& body, int line, LexedFile& out) {
  auto scan = [&](const std::string& key, auto&& handle) {
    std::size_t pos = body.find(key);
    if (pos == std::string::npos) return;
    handle(body.substr(pos + key.size()));
  };
  scan("sharq-lint:", [&](std::string rest) {
    // Words up to an opening paren (free-text reason) or end.
    if (std::size_t p = rest.find('('); p != std::string::npos) rest.resize(p);
    std::replace(rest.begin(), rest.end(), ',', ' ');
    std::istringstream is(rest);
    std::vector<std::string> words;
    for (std::string w; is >> w;) words.push_back(w);
    Annotation::Scope scope = Annotation::kLine;
    if (!words.empty()) {
      if (words.back() == "file") { scope = Annotation::kFile; words.pop_back(); }
      else if (words.back() == "begin") { scope = Annotation::kBegin; words.pop_back(); }
      else if (words.back() == "end") { scope = Annotation::kEnd; words.pop_back(); }
    }
    for (const std::string& w : words) {
      if (w.size() > 3 && w.compare(w.size() - 3, 3, "-ok") == 0) {
        out.annotations.push_back(
            Annotation{scope, w.substr(0, w.size() - 3), line});
      } else if (w == "shard-owned") {
        // Region *declaration* (not a suppression): members declared
        // between begin/end belong to this header's shard runtime.
        out.annotations.push_back(Annotation{scope, "shard-owned", line});
      }
    }
  });
  scan("EXPECT-LINT:", [&](std::string rest) {
    std::replace(rest.begin(), rest.end(), ',', ' ');
    std::istringstream is(rest);
    for (std::string w; is >> w;) out.expect_markers.emplace_back(line, w);
  });
}

// Tokenize one file. Comments are consumed here (feeding annotations);
// everything else becomes a token. `#include <name>` header-names are
// lexed as a single kHeader token so include rules never confuse them
// with less-than expressions.
LexedFile lex_file(const std::string& path, const std::string& text) {
  LexedFile out;
  out.path = path;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  bool line_started_hash = false;   // current preproc line began with '#'
  bool expect_header = false;       // just saw `# include`

  auto peek = [&](std::size_t k) -> char { return i + k < n ? text[i + k] : '\0'; };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_started_hash = false;
      expect_header = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) { ++i; continue; }

    // Comments.
    if (c == '/' && peek(1) == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      parse_comment(text.substr(i + 2, end - i - 2), line, out);
      i = end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      std::size_t end = text.find("*/", i + 2);
      const int start_line = line;
      if (end == std::string::npos) end = n; else end += 2;
      parse_comment(text.substr(i + 2, end - i - 2), start_line, out);
      line += static_cast<int>(std::count(text.begin() + static_cast<std::ptrdiff_t>(i),
                                          text.begin() + static_cast<std::ptrdiff_t>(end), '\n'));
      i = end;
      continue;
    }

    // Preprocessor bookkeeping for header-name lexing.
    if (c == '#') {
      line_started_hash = true;
      out.toks.push_back({Tok::kPunct, "#", line});
      ++i;
      continue;
    }
    if (expect_header && c == '<') {
      std::size_t end = text.find('>', i + 1);
      if (end != std::string::npos) {
        out.toks.push_back({Tok::kHeader, text.substr(i + 1, end - i - 1), line});
        i = end + 1;
        expect_header = false;
        continue;
      }
    }

    // String literals (with encoding prefixes and raw strings).
    if (c == '"' || ((c == 'L' || c == 'u' || c == 'U' || c == 'R') &&
                     (peek(1) == '"' ||
                      (c == 'u' && peek(1) == '8' && (peek(2) == '"' || (peek(2) == 'R' && peek(3) == '"'))) ||
                      ((c == 'L' || c == 'u' || c == 'U') && peek(1) == 'R' && peek(2) == '"')))) {
      // Advance to the opening quote, noting whether this is a raw string.
      std::size_t q = i;
      bool raw = false;
      while (text[q] != '"') {
        if (text[q] == 'R') raw = true;
        ++q;
      }
      std::size_t end;
      if (raw) {
        // R"delim( ... )delim"
        std::size_t p = text.find('(', q + 1);
        const std::string delim = text.substr(q + 1, p - q - 1);
        const std::string closer = ")" + delim + "\"";
        end = text.find(closer, p + 1);
        end = end == std::string::npos ? n : end + closer.size();
      } else {
        end = q + 1;
        while (end < n && text[end] != '"') {
          if (text[end] == '\\') ++end;
          if (text[end] == '\n') break;  // unterminated; recover at newline
          ++end;
        }
        if (end < n && text[end] == '"') ++end;
      }
      // Store the literal's body; the exact body only matters for
      // metric-docs, which never uses raw strings, so the raw case may
      // keep its delimiters.
      const std::string body = raw ? text.substr(q, end - q)
                                   : text.substr(q + 1, end > q + 1 ? end - q - 2 : 0);
      out.toks.push_back({Tok::kString, body, line});
      line += static_cast<int>(std::count(text.begin() + static_cast<std::ptrdiff_t>(i),
                                          text.begin() + static_cast<std::ptrdiff_t>(end), '\n'));
      i = end;
      continue;
    }

    // Char literals.
    if (c == '\'') {
      std::size_t end = i + 1;
      while (end < n && text[end] != '\'') {
        if (text[end] == '\\') ++end;
        ++end;
      }
      out.toks.push_back({Tok::kChar, text.substr(i + 1, end - i - 1), line});
      i = end < n ? end + 1 : n;
      continue;
    }

    // Numbers (including hex, digit separators, exponents).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t end = i + 1;
      while (end < n) {
        const char d = text[end];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' || d == '\'') { ++end; continue; }
        if ((d == '+' || d == '-') && (text[end - 1] == 'e' || text[end - 1] == 'E' ||
                                       text[end - 1] == 'p' || text[end - 1] == 'P')) { ++end; continue; }
        break;
      }
      out.toks.push_back({Tok::kNumber, text.substr(i, end - i), line});
      i = end;
      continue;
    }

    // Identifiers.
    if (ident_start(c)) {
      std::size_t end = i + 1;
      while (end < n && ident_char(text[end])) ++end;
      std::string id = text.substr(i, end - i);
      if (line_started_hash && id == "include") expect_header = true;
      out.toks.push_back({Tok::kIdent, std::move(id), line});
      i = end;
      continue;
    }

    // Punctuation: fold the multi-char operators the rules care about.
    static const char* kTwoChar[] = {"<<", ">>", "->", "::", "+="};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (c == op[0] && peek(1) == op[1]) {
        // "<<=" / ">>=" are compound assignments, not the shift pattern.
        if ((c == '<' || c == '>') && peek(2) == '=') break;
        out.toks.push_back({Tok::kPunct, op, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.toks.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppression lookup
// ---------------------------------------------------------------------------

class Suppressions {
 public:
  explicit Suppressions(const LexedFile& f) {
    std::map<std::string, int> open_regions;
    for (const Annotation& a : f.annotations) {
      switch (a.scope) {
        case Annotation::kFile: file_.insert(a.rule); break;
        case Annotation::kLine:
          lines_[a.rule].push_back(a.line);
          break;
        case Annotation::kBegin: open_regions[a.rule] = a.line; break;
        case Annotation::kEnd: {
          auto it = open_regions.find(a.rule);
          const int start = it == open_regions.end() ? 0 : it->second;
          regions_[a.rule].emplace_back(start, a.line);
          if (it != open_regions.end()) open_regions.erase(it);
          break;
        }
      }
    }
    // An unclosed begin-region runs to end of file.
    for (const auto& [rule, start] : open_regions) {
      regions_[rule].emplace_back(start, 1 << 30);
    }
  }

  bool suppressed(const std::string& rule, int line) const {
    if (file_.count(rule)) return true;
    if (auto it = lines_.find(rule); it != lines_.end()) {
      for (int l : it->second) {
        if (line == l || line == l + 1) return true;
      }
    }
    if (auto it = regions_.find(rule); it != regions_.end()) {
      for (const auto& [lo, hi] : it->second) {
        if (line >= lo && line <= hi) return true;
      }
    }
    return false;
  }

 private:
  std::set<std::string> file_;
  std::map<std::string, std::vector<int>> lines_;
  std::map<std::string, std::vector<std::pair<int, int>>> regions_;
};

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    return std::tie(file, line, rule, message) <
           std::tie(o.file, o.line, o.rule, o.message);
  }
};

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

// Index of the token after the matcher of toks[open] (which must be "(",
// "[" or "{"); returns toks.size() on imbalance.
std::size_t skip_balanced(const std::vector<Tok>& toks, std::size_t open) {
  static const std::map<std::string, std::string> kMatch = {
      {"(", ")"}, {"[", "]"}, {"{", "}"}};
  const std::string& o = toks[open].text;
  const std::string& cl = kMatch.at(o);
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (toks[i].text == o) ++depth;
    else if (toks[i].text == cl && --depth == 0) return i + 1;
  }
  return toks.size();
}

// From toks[open] == "<", skip a balanced template-argument list. Returns
// the index after the closing ">" (treating ">>" as two closers), or
// `open` itself if this does not look like a template argument list.
std::size_t skip_template_args(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind == Tok::kPunct) {
      if (t.text == "<") ++depth;
      else if (t.text == ">") { if (--depth == 0) return i + 1; }
      else if (t.text == ">>") { depth -= 2; if (depth <= 0) return i + 1; }
      else if (t.text == ";" || t.text == "{") return open;  // not a template
    }
  }
  return open;
}

bool is_const_like(const Tok& t) {
  if (t.kind == Tok::kNumber) return true;
  if (t.kind != Tok::kIdent) return false;
  const std::string& s = t.text;
  if (s == "sizeof" || s == "true" || s == "false") return true;
  // k-constant convention (kTrafficClassCount) or ALL_CAPS macro.
  if (s.size() >= 2 && s[0] == 'k' && std::isupper(static_cast<unsigned char>(s[1]))) return true;
  bool caps = s.size() >= 2;
  for (char c : s) {
    caps = caps && (std::isupper(static_cast<unsigned char>(c)) ||
                    std::isdigit(static_cast<unsigned char>(c)) || c == '_');
  }
  return caps;
}

// Index of the "[" matching toks[close] == "]" (searching backwards);
// returns 0 on imbalance.
std::size_t rskip_balanced(const std::vector<Tok>& toks, std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (toks[i].text == "]") ++depth;
    else if (toks[i].text == "[" && --depth == 0) return i;
  }
  return 0;
}

bool ends_with(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// Tracks the innermost enclosing class/struct while walking a token
// stream linearly. Good enough for the header shapes this tree uses:
// `template <class T>` pendings are cleared by the closing '>' / ')',
// forward declarations by ';'.
struct ClassTracker {
  struct Frame { std::string name; int depth; };
  std::vector<Frame> stack;
  int depth = 0;
  std::string pending;

  void feed(const std::vector<Tok>& toks, std::size_t i) {
    const Tok& t = toks[i];
    if (t.kind == Tok::kIdent && (t.text == "class" || t.text == "struct")) {
      if (i > 0 && toks[i - 1].kind == Tok::kIdent && toks[i - 1].text == "enum") return;
      if (i + 1 < toks.size() && toks[i + 1].kind == Tok::kIdent) pending = toks[i + 1].text;
      return;
    }
    if (t.kind != Tok::kPunct) return;
    if (t.text == "{") {
      ++depth;
      if (!pending.empty()) { stack.push_back({pending, depth}); pending.clear(); }
    } else if (t.text == "}") {
      if (!stack.empty() && stack.back().depth == depth) stack.pop_back();
      --depth;
    } else if (t.text == ";" || t.text == ")" || t.text == ">") {
      pending.clear();
    }
  }
  std::string current() const { return stack.empty() ? std::string() : stack.back().name; }
};

// ---------------------------------------------------------------------------
// Pass 1: collect names declared with unordered container types.
// ---------------------------------------------------------------------------

// Scoping: type/alias names are global (aliases live in headers and name
// the same thing everywhere). Variable/member/function names are global
// only when declared in a HEADER — that is what lets `peers` declared in
// session_manager.hpp flag the walks in session_manager.cpp. Names
// declared in a .cpp stay local to that file, so one test's short-named
// local (`std::unordered_set<int> s`) cannot poison every `s` in the tree.
struct SymbolTable {
  std::set<std::string> unordered_types;  // type/alias names
  std::set<std::string> unordered_vars;   // variable/member/function names
};

bool is_header(const std::string& path) {
  const std::string ext = fs::path(path).extension().string();
  return ext == ".hpp" || ext == ".h";
}

void collect_unordered_decls(const LexedFile& f, SymbolTable& sym) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const auto& toks = f.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const bool base = kUnordered.count(toks[i].text) > 0;
    const bool alias = !base && sym.unordered_types.count(toks[i].text) > 0;
    if (!base && !alias) continue;

    // `using X = std::unordered_map<...>;` — record the alias. Look back
    // past `std ::` for `using X =`.
    if (base) {
      std::size_t b = i;
      while (b >= 2 && ((toks[b - 1].kind == Tok::kPunct && toks[b - 1].text == "::") ||
                        (toks[b - 1].kind == Tok::kIdent && toks[b - 1].text == "std"))) {
        --b;
      }
      if (b >= 3 && toks[b - 1].text == "=" && toks[b - 2].kind == Tok::kIdent &&
          toks[b - 3].kind == Tok::kIdent && toks[b - 3].text == "using") {
        sym.unordered_types.insert(toks[b - 2].text);
      }
    }

    // Declaration: TYPE<...> [&*const]* name   (members, locals, params,
    // and functions returning an unordered container all count).
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].kind == Tok::kPunct && toks[j].text == "<") {
      const std::size_t after = skip_template_args(toks, j);
      if (after == j) continue;  // comparison, not a template arg list
      j = after;
    } else if (base) {
      continue;  // bare `unordered_map` without args: using-decl etc.
    }
    while (j < toks.size() &&
           ((toks[j].kind == Tok::kPunct && (toks[j].text == "&" || toks[j].text == "*")) ||
            (toks[j].kind == Tok::kIdent && toks[j].text == "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Tok::kIdent) {
      sym.unordered_vars.insert(toks[j].text);
    }
  }
}

// ---------------------------------------------------------------------------
// Documentation model (docs/OBSERVABILITY.md)
// ---------------------------------------------------------------------------

struct DocEvent {
  std::string name;
  bool requires_cause = false;  // cause-edge cell is not "root (0)"
  int line = 0;
};

struct DocModel {
  std::string path;
  std::string text;  // raw text, for the substring-based forward check
  std::vector<std::pair<std::string, int>> metric_rows;  // name -> line
  std::vector<DocEvent> event_rows;
  // Profiler probe-catalog rows (type cell "probe" / "profile counter").
  std::vector<std::pair<std::string, int>> probe_rows;
  bool has_event_catalog = false;

  const DocEvent* find_event(const std::string& name) const {
    for (const DocEvent& e : event_rows)
      if (e.name == name) return &e;
    return nullptr;
  }
};

std::string trim_ws(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

// Parse the observability doc's tables. Metric rows are any table row
// whose second cell is a metric type; event rows live under the
// "Event catalog" heading and declare a cause edge in the third cell
// ("root (0)" means a zero cause id is the documented shape).
DocModel parse_doc(const std::string& path, const std::string& text) {
  DocModel doc;
  doc.path = path;
  doc.text = text;
  std::istringstream in(text);
  int line = 0;
  bool in_events = false;
  for (std::string ln; std::getline(in, ln);) {
    ++line;
    if (!ln.empty() && ln[0] == '#') {
      in_events = ln.find("Event catalog") != std::string::npos;
      if (in_events) doc.has_event_catalog = true;
      continue;
    }
    if (ln.empty() || ln[0] != '|') continue;
    std::vector<std::string> cells;
    std::size_t p = 1;
    while (p <= ln.size()) {
      std::size_t q = ln.find('|', p);
      if (q == std::string::npos) break;
      cells.push_back(trim_ws(ln.substr(p, q - p)));
      p = q + 1;
    }
    if (cells.empty()) continue;
    std::string name;
    if (std::size_t b0 = cells[0].find('`'); b0 != std::string::npos) {
      if (std::size_t b1 = cells[0].find('`', b0 + 1); b1 != std::string::npos)
        name = cells[0].substr(b0 + 1, b1 - b0 - 1);
    }
    if (name.empty()) continue;
    if (cells.size() >= 2 && (cells[1] == "counter" || cells[1] == "gauge" ||
                              cells[1] == "histogram")) {
      doc.metric_rows.emplace_back(name, line);
    }
    if (cells.size() >= 2 &&
        (cells[1] == "probe" || cells[1] == "profile counter")) {
      doc.probe_rows.emplace_back(name, line);
    }
    if (in_events && cells.size() >= 4) {
      DocEvent ev;
      ev.name = name;
      ev.requires_cause = cells[2].find("root (0)") == std::string::npos;
      ev.line = line;
      doc.event_rows.push_back(ev);
    }
  }
  return doc;
}

// ---------------------------------------------------------------------------
// Project symbol index (cross-TU, built from every file on the command
// line before any rule runs)
// ---------------------------------------------------------------------------

struct ProjectIndex {
  SymbolTable sym;  // unordered container types/vars (two-tier scoping)
  std::set<std::string> float_types{"double", "float"};
  std::set<std::string> float_vars;  // header-declared float-typed names
  std::map<std::string, std::string> shard_members;  // name -> owner stem
  std::map<std::string, std::set<std::string>> member_decl_files;
  // class -> function -> zero-based index of its `cause` parameter.
  std::map<std::string, std::map<std::string, int>> cause_sigs;
  std::set<std::string> rng_forked;  // names assigned a fork() anywhere
  // Filled during the rule pass, consumed by --reverse-docs.
  std::set<std::string> emitted_events;
  std::set<std::string> registered_metrics;
  std::set<std::string> used_probes;
};

// `using X = double;` (possibly through one alias level, e.g. sim::Time).
void collect_float_aliases(const LexedFile& f, ProjectIndex& idx) {
  const auto& toks = f.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || !idx.float_types.count(toks[i].text)) continue;
    std::size_t b = i;
    while (b >= 2 && ((toks[b - 1].kind == Tok::kPunct && toks[b - 1].text == "::") ||
                      (toks[b - 1].kind == Tok::kIdent &&
                       (toks[b - 1].text == "std" || toks[b - 1].text == "sim")))) {
      --b;
    }
    if (b >= 3 && toks[b - 1].text == "=" && toks[b - 2].kind == Tok::kIdent &&
        toks[b - 3].kind == Tok::kIdent && toks[b - 3].text == "using") {
      idx.float_types.insert(toks[b - 2].text);
    }
  }
}

// `double name_;` in a header: float-typed members, global by name (the
// underscore suffix keeps short locals like `total` out of the set).
void collect_float_members(const LexedFile& f,
                           const std::set<std::string>& float_types,
                           std::set<std::string>& out) {
  const auto& toks = f.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || !float_types.count(toks[i].text)) continue;
    if (toks[i + 1].kind == Tok::kIdent && toks[i + 1].text.back() == '_')
      out.insert(toks[i + 1].text);
  }
}

// Every scalar numeric declaration in one file, in token order, so the
// accumulation rule can resolve a name to its *nearest preceding*
// declaration (a file may reuse `total` for a uint64 lane sum and a
// double latency sum; only the latter is order-sensitive).
struct NumDecl {
  std::size_t tok = 0;
  std::string name;
  bool is_float = false;
};

std::vector<NumDecl> collect_num_decls(const LexedFile& f,
                                       const std::set<std::string>& float_types) {
  static const std::set<std::string> kIntTypes = {
      "int",      "unsigned", "long",     "short",    "size_t",
      "uint64_t", "int64_t",  "uint32_t", "int32_t",  "uint16_t",
      "int16_t",  "uint8_t",  "int8_t",   "ptrdiff_t", "bool",
      "EventId",  "uint_fast32_t"};
  const auto& toks = f.toks;
  std::vector<NumDecl> out;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    if (toks[i + 1].kind == Tok::kIdent) {
      const bool flt = float_types.count(toks[i].text) > 0;
      const bool integral = !flt && kIntTypes.count(toks[i].text) > 0;
      if (flt || integral) {
        out.push_back({i + 1, toks[i + 1].text, flt});
        continue;
      }
      // `auto name = <number>`: decide by the literal's spelling.
      if (toks[i].text == "auto" && i + 3 < toks.size() &&
          toks[i + 2].kind == Tok::kPunct && toks[i + 2].text == "=" &&
          toks[i + 3].kind == Tok::kNumber) {
        const std::string& num = toks[i + 3].text;
        out.push_back({i + 1, toks[i + 1].text,
                       num.find('.') != std::string::npos});
      }
    }
  }
  return out;
}

// Trailing-underscore member declarations per header — the uniqueness
// filter for shard-affinity (a name declared in two headers is too
// ambiguous to attribute to one shard owner).
void collect_member_decls(const LexedFile& f, ProjectIndex& idx) {
  const auto& toks = f.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || toks[i].text.back() != '_') continue;
    if (toks[i + 1].kind != Tok::kPunct) continue;
    const std::string& nx = toks[i + 1].text;
    if (nx == ";" || nx == "=" || nx == "{" || nx == "[") {
      idx.member_decl_files[toks[i].text].insert(f.path);
    }
  }
}

// Members declared inside `// sharq-lint: shard-owned begin/end` regions
// of a header belong to that header's stem (shard_runtime, network, ...).
void collect_shard_members(const LexedFile& f, ProjectIndex& idx) {
  std::vector<std::pair<int, int>> regions;
  int open = -1;
  for (const Annotation& a : f.annotations) {
    if (a.rule != "shard-owned") continue;
    switch (a.scope) {
      case Annotation::kBegin: open = a.line; break;
      case Annotation::kEnd:
        regions.emplace_back(open < 0 ? 0 : open, a.line);
        open = -1;
        break;
      case Annotation::kFile: regions.emplace_back(0, 1 << 30); break;
      case Annotation::kLine: regions.emplace_back(a.line, a.line + 1); break;
    }
  }
  if (open >= 0) regions.emplace_back(open, 1 << 30);
  if (regions.empty()) return;
  const std::string stem = fs::path(f.path).stem().string();
  const auto& toks = f.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || toks[i].text.back() != '_') continue;
    if (toks[i + 1].kind != Tok::kPunct) continue;
    const std::string& nx = toks[i + 1].text;
    if (nx != ";" && nx != "=" && nx != "{") continue;
    bool inside = false;
    for (const auto& [lo, hi] : regions) {
      if (toks[i].line >= lo && toks[i].line <= hi) { inside = true; break; }
    }
    if (inside) idx.shard_members.emplace(toks[i].text, stem);
  }
}

// Functions whose parameter list carries a `cause` parameter after a
// `const char* ev` lead: Journal::emit and the per-class jnl wrappers.
// Works on both in-class declarations (ClassTracker) and out-of-line
// `Class :: fn (` definitions. Call sites never match: their first
// argument is a string literal, not tokens containing `char`.
void collect_cause_sigs(const LexedFile& f, ProjectIndex& idx) {
  static const std::set<std::string> kNotFn = {
      "if", "for", "while", "switch", "return", "sizeof", "catch"};
  const auto& toks = f.toks;
  ClassTracker tracker;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    tracker.feed(toks, i);
    if (toks[i].kind != Tok::kIdent || i + 1 >= toks.size() ||
        toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != "(") {
      continue;
    }
    if (kNotFn.count(toks[i].text)) continue;
    std::string cls;
    if (i >= 2 && toks[i - 1].kind == Tok::kPunct && toks[i - 1].text == "::" &&
        toks[i - 2].kind == Tok::kIdent) {
      cls = toks[i - 2].text;
    } else {
      cls = tracker.current();
    }
    if (cls.empty()) continue;
    const std::size_t close = skip_balanced(toks, i + 1);
    if (close == toks.size()) continue;
    // Split parameters at top-level commas.
    int depth = 0;
    std::vector<std::pair<std::size_t, std::size_t>> params;
    std::size_t start = i + 2;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (toks[j].kind != Tok::kPunct) continue;
      const std::string& p = toks[j].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      else if (p == ")" || p == "]" || p == "}") --depth;
      if ((p == "," && depth == 1) || (p == ")" && depth == 0)) {
        if (j > start) params.emplace_back(start, j);
        start = j + 1;
      }
    }
    if (params.size() < 2) continue;
    bool first_char = false;
    for (std::size_t j = params[0].first; j < params[0].second; ++j) {
      if (toks[j].kind == Tok::kIdent && toks[j].text == "char") { first_char = true; break; }
    }
    if (!first_char) continue;
    int cause_idx = -1;
    for (std::size_t k = 0; k < params.size(); ++k) {
      std::string last_ident;
      for (std::size_t j = params[k].first; j < params[k].second; ++j) {
        if (toks[j].kind == Tok::kIdent) last_ident = toks[j].text;
        if (toks[j].kind == Tok::kPunct && toks[j].text == "=") break;  // default arg
      }
      if (last_ident == "cause") { cause_idx = static_cast<int>(k); break; }
    }
    if (cause_idx > 0) idx.cause_sigs[cls][toks[i].text] = cause_idx;
  }
}

// Names initialized or assigned from a fork(): `x = parent.fork();` and
// constructor-style `x_(parent.fork())` / `Rng x(parent.fork())`.
void collect_rng_forked(const LexedFile& f, ProjectIndex& idx) {
  const auto& toks = f.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    if (toks[i + 1].kind != Tok::kPunct) continue;
    if (toks[i + 1].text == "(") {
      const std::size_t close = skip_balanced(toks, i + 1);
      for (std::size_t j = i + 2; j + 1 < close; ++j) {
        if (toks[j].kind == Tok::kIdent && toks[j].text == "fork") {
          idx.rng_forked.insert(toks[i].text);
          break;
        }
      }
    } else if (toks[i + 1].text == "=") {
      for (std::size_t j = i + 2; j < toks.size(); ++j) {
        if (toks[j].kind == Tok::kPunct && toks[j].text == ";") break;
        if (toks[j].kind == Tok::kIdent && toks[j].text == "fork") {
          idx.rng_forked.insert(toks[i].text);
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

// Names that mark a range expression as an ordered snapshot.
bool has_ordered_snapshot_call(const std::vector<Tok>& toks, std::size_t lo,
                               std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    if (toks[i].kind == Tok::kIdent &&
        (toks[i].text == "ordered_keys" || toks[i].text == "ordered_items" ||
         toks[i].text == "ordered_values")) {
      return true;
    }
  }
  return false;
}

void rule_unordered_iter(const LexedFile& f, const SymbolTable& sym,
                         const Suppressions& sup, std::vector<Finding>& out) {
  const auto& toks = f.toks;
  auto is_unordered_name = [&](const Tok& t) {
    return t.kind == Tok::kIdent && (sym.unordered_vars.count(t.text) > 0 ||
                                     sym.unordered_types.count(t.text) > 0);
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression mentions an unordered name.
    if (toks[i].kind == Tok::kIdent && toks[i].text == "for" &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      const std::size_t close = skip_balanced(toks, i + 1);
      // Find the top-level ':' of a range-for (depth 1 relative to the
      // for-parens; `::` is a distinct token so plain ':' is unambiguous).
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (toks[j].kind != Tok::kPunct) continue;
        if (toks[j].text == "(" || toks[j].text == "[" || toks[j].text == "{") ++depth;
        else if (toks[j].text == ")" || toks[j].text == "]" || toks[j].text == "}") --depth;
        else if (toks[j].text == ":" && depth == 1) { colon = j; break; }
        else if (toks[j].text == ";") break;  // classic for-loop
      }
      if (colon != 0 && !has_ordered_snapshot_call(toks, colon, close)) {
        for (std::size_t j = colon + 1; j + 1 < close; ++j) {
          if (is_unordered_name(toks[j]) && !sup.suppressed("unordered-iter", toks[j].line)) {
            out.push_back({f.path, toks[i].line, "unordered-iter",
                           "range-for over unordered container '" + toks[j].text +
                               "': iteration order is hash-dependent and can leak "
                               "into timers/wire/export ordering; use an ordered "
                               "container or sharqfec/ordered.hpp, or annotate "
                               "`// sharq-lint: unordered-iter-ok (reason)`"});
            break;
          }
        }
      }
    }
    // begin()/end() family on an unordered name: explicit iterator walks.
    if (toks[i].kind == Tok::kIdent && i + 2 < toks.size() &&
        toks[i + 1].kind == Tok::kPunct &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        toks[i + 2].kind == Tok::kIdent) {
      // Only the begin() family: a walk cannot start at end(), and
      // `m.find(k) == m.end()` is the (order-free) lookup idiom.
      static const std::set<std::string> kIter = {"begin", "cbegin", "rbegin"};
      if (kIter.count(toks[i + 2].text) && is_unordered_name(toks[i]) &&
          !sup.suppressed("unordered-iter", toks[i].line)) {
        out.push_back({f.path, toks[i].line, "unordered-iter",
                       "iterator walk over unordered container '" + toks[i].text +
                           "': order is hash-dependent; use an ordered container "
                           "or sharqfec/ordered.hpp, or annotate "
                           "`// sharq-lint: unordered-iter-ok (reason)`"});
      }
    }
  }
}

void rule_wall_clock(const LexedFile& f, const Suppressions& sup,
                     std::vector<Finding>& out) {
  static const std::set<std::string> kBannedIdents = {
      "rand", "srand", "drand48", "lrand48", "random_device", "mt19937",
      "mt19937_64", "minstd_rand", "default_random_engine", "system_clock",
      "steady_clock", "high_resolution_clock", "gettimeofday",
      "clock_gettime", "localtime", "gmtime", "strftime",
      // Raw cycle counters: the self-profiler's tick source. Timing reads
      // belong in src/stats/profiler.cpp (the one `wall-clock-ok file`
      // annotation); a probe call site must stay clock-free.
      "__rdtsc", "__rdtscp", "_rdtsc"};
  static const std::set<std::string> kBannedHeaders = {"chrono", "ctime",
                                                       "time.h", "sys/time.h",
                                                       "random"};
  const auto& toks = f.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind == Tok::kHeader && kBannedHeaders.count(t.text) &&
        !sup.suppressed("wall-clock", t.line)) {
      out.push_back({f.path, t.line, "wall-clock",
                     "#include <" + t.text + "> in src/: wall-clock time and "
                         "ambient randomness break same-seed reproducibility; "
                         "use sim/random.hpp and Simulator::now()"});
      continue;
    }
    if (t.kind != Tok::kIdent) continue;
    const bool member = i > 0 && toks[i - 1].kind == Tok::kPunct &&
                        (toks[i - 1].text == "." || toks[i - 1].text == "->");
    if (member) continue;  // obj.rand() is somebody else's method
    bool banned = kBannedIdents.count(t.text) > 0;
    // `time(...)` as a free function call (std::time / ::time).
    if (!banned && t.text == "time" && i + 1 < toks.size() &&
        toks[i + 1].kind == Tok::kPunct && toks[i + 1].text == "(") {
      banned = true;
    }
    if (banned && !sup.suppressed("wall-clock", t.line)) {
      out.push_back({f.path, t.line, "wall-clock",
                     "'" + t.text + "' is a nondeterminism source: every "
                         "stochastic or temporal input must flow through "
                         "sim/random.hpp or the Simulator clock"});
    }
  }
}

void rule_event_tag(const LexedFile& f, const Suppressions& sup,
                    std::vector<Finding>& out) {
  const auto& toks = f.toks;
  auto simulator_receiver = [&](std::size_t dot) -> bool {
    if (dot == 0) return false;
    const Tok& r = toks[dot - 1];
    if (r.kind == Tok::kIdent) {
      return r.text == "sim" || r.text == "sim_" || r.text == "simu" ||
             r.text == "simu_" || r.text == "simulator" || r.text == "simulator_";
    }
    // `... .simulator().after(...)` — receiver is a call: look through `()`.
    if (r.kind == Tok::kPunct && r.text == ")" && dot >= 3 &&
        toks[dot - 2].text == "(" && toks[dot - 3].kind == Tok::kIdent) {
      return toks[dot - 3].text == "simulator";
    }
    return false;
  };
  for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || (toks[i].text != "at" && toks[i].text != "after")) continue;
    if (toks[i - 1].kind != Tok::kPunct ||
        (toks[i - 1].text != "." && toks[i - 1].text != "->")) continue;
    if (toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != "(") continue;
    if (!simulator_receiver(i - 1)) continue;
    const std::size_t close = skip_balanced(toks, i + 1);
    // Split the argument list at top-level commas.
    int depth = 0;
    std::vector<std::size_t> commas;
    for (std::size_t j = i + 1; j < close - 1; ++j) {
      if (toks[j].kind != Tok::kPunct) continue;
      if (toks[j].text == "(" || toks[j].text == "[" || toks[j].text == "{") ++depth;
      else if (toks[j].text == ")" || toks[j].text == "]" || toks[j].text == "}") --depth;
      else if (toks[j].text == "," && depth == 1) commas.push_back(j);
    }
    bool ok = commas.size() >= 2;  // at(when, fn, tag): >= 3 arguments
    if (ok) {
      // The tag argument must be a string literal or a plain identifier
      // expression (e.g. `tag_`, `e.tag`) — not a lambda, not nullptr.
      const std::size_t lo = commas.back() + 1;
      bool has_str = false, has_brace = false, has_null = false;
      for (std::size_t j = lo; j + 1 < close; ++j) {
        if (toks[j].kind == Tok::kString) has_str = true;
        if (toks[j].kind == Tok::kPunct && toks[j].text == "{") has_brace = true;
        if (toks[j].kind == Tok::kIdent && (toks[j].text == "nullptr" || toks[j].text == "NULL"))
          has_null = true;
      }
      const bool ident_tag = !has_str && !has_brace && !has_null && lo + 1 <= close - 1;
      ok = (has_str || ident_tag) && !has_brace && !has_null;
    }
    if (!ok && !sup.suppressed("event-tag", toks[i].line)) {
      out.push_back({f.path, toks[i].line, "event-tag",
                     "Simulator::" + toks[i].text + "() call site without an event "
                         "tag: per-tag event counters are part of the metrics "
                         "contract (docs/OBSERVABILITY.md); pass a string-literal "
                         "tag as the last argument"});
    }
  }
}

void rule_unchecked_shift(const LexedFile& f, const Suppressions& sup,
                          std::vector<Finding>& out) {
  const auto& toks = f.toks;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct || toks[i].text != "<<") continue;
    const Tok& lhs = toks[i - 1];
    if (lhs.kind != Tok::kNumber) continue;
    if (lhs.text.find('.') != std::string::npos) continue;  // float stream
    // Constant-fold-visible RHS is fine.
    const Tok& rhs = toks[i + 1];
    bool constant = false;
    if (is_const_like(rhs)) {
      constant = true;
    } else if (rhs.kind == Tok::kPunct && rhs.text == "(") {
      const std::size_t close = skip_balanced(toks, i + 1);
      constant = true;
      for (std::size_t j = i + 2; j + 1 < close; ++j) {
        if (toks[j].kind == Tok::kPunct) continue;
        if (!is_const_like(toks[j])) { constant = false; break; }
      }
    }
    if (!constant && !sup.suppressed("unchecked-shift", toks[i].line)) {
      out.push_back({f.path, toks[i].line, "unchecked-shift",
                     "'" + lhs.text + " << " + rhs.text + "': shifting a literal "
                         "by a non-constant is UB once the count reaches the "
                         "operand width (the TraceWriter forged-class bug); "
                         "bound-check the count, then annotate "
                         "`// sharq-lint: unchecked-shift-ok (guard)`"});
    }
  }
}

void rule_thread_unsafe(const LexedFile& f, const Suppressions& sup,
                        std::vector<Finding>& out) {
  static const std::set<std::string> kBannedStd = {
      "thread", "jthread", "mutex", "timed_mutex", "recursive_mutex",
      "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
      "atomic", "atomic_flag", "atomic_ref", "condition_variable",
      "condition_variable_any", "lock_guard", "unique_lock", "scoped_lock",
      "shared_lock", "counting_semaphore", "binary_semaphore", "barrier",
      "latch", "future", "shared_future", "promise", "async", "stop_token",
      "stop_source", "call_once", "once_flag"};
  static const std::set<std::string> kBannedHeaders = {
      "thread", "mutex", "atomic", "condition_variable", "future",
      "shared_mutex", "semaphore", "barrier", "latch", "stop_token",
      "pthread.h"};
  const auto& toks = f.toks;
  const std::string advice =
      "; synchronization in protocol code breaks the deterministic "
      "shard contract (lane/barrier discipline, "
      "src/sim/shard_runtime.hpp) — if this file IS shard-runtime "
      "infrastructure, annotate "
      "`// sharq-lint: thread-unsafe-ok file (reason)`";
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind == Tok::kHeader && kBannedHeaders.count(t.text) &&
        !sup.suppressed("thread-unsafe", t.line)) {
      out.push_back({f.path, t.line, "thread-unsafe",
                     "#include <" + t.text + "> in src/" + advice});
      continue;
    }
    if (t.kind != Tok::kIdent) continue;
    if (t.text == "thread_local") {
      if (!sup.suppressed("thread-unsafe", t.line)) {
        out.push_back({f.path, t.line, "thread-unsafe",
                       "'thread_local' storage in src/" + advice});
      }
      continue;
    }
    if (t.text.size() > 8 && t.text.compare(0, 8, "pthread_") == 0) {
      if (!sup.suppressed("thread-unsafe", t.line)) {
        out.push_back({f.path, t.line, "thread-unsafe",
                       "'" + t.text + "' in src/" + advice});
      }
      continue;
    }
    // Only the std-qualified spellings: a protocol-domain identifier that
    // happens to be called `barrier` or `promise` must not fire.
    const bool std_qualified =
        i >= 2 && toks[i - 1].kind == Tok::kPunct && toks[i - 1].text == "::" &&
        toks[i - 2].kind == Tok::kIdent && toks[i - 2].text == "std";
    if (std_qualified && kBannedStd.count(t.text) &&
        !sup.suppressed("thread-unsafe", t.line)) {
      out.push_back({f.path, t.line, "thread-unsafe",
                     "'std::" + t.text + "' in src/" + advice});
    }
  }
}

void rule_metric_docs(const LexedFile& f, const Suppressions& sup,
                      const std::string& doc_text, std::vector<Finding>& out,
                      std::set<std::string>* registered) {
  const auto& toks = f.toks;
  auto documented = [&](const std::string& name) {
    return doc_text.find("`" + name + "`") != std::string::npos;
  };
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const std::string& id = toks[i].text;
    const bool metric_reg = id == "counter" || id == "gauge" || id == "histogram";
    const bool tag_reg = id == "set_tag";
    if (!metric_reg && !tag_reg) continue;
    if (toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != "(") continue;
    if (toks[i + 2].kind != Tok::kString) continue;
    const std::string& name = toks[i + 2].text;
    if (name.empty()) continue;
    if (metric_reg && registered) registered->insert(name);
    if (!documented(name) && !sup.suppressed("metric-docs", toks[i].line)) {
      out.push_back({f.path, toks[i].line, "metric-docs",
                     std::string(metric_reg ? "metric family" : "event tag") +
                         " \"" + name + "\" is not documented in "
                         "docs/OBSERVABILITY.md: add a catalog row (the doc is "
                         "part of the metrics schema contract)"});
    }
  }
  // Event tags passed as the literal last argument of Simulator::at/after.
  for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kString) continue;
    if (i + 1 >= toks.size() || toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != ")") continue;
    if (toks[i - 1].kind != Tok::kPunct || toks[i - 1].text != ",") continue;
    // Only treat as a tag when it looks like one ("area.name") to avoid
    // matching arbitrary string arguments.
    const std::string& name = toks[i].text;
    if (name.find('.') == std::string::npos || name.find(' ') != std::string::npos) continue;
    if (!documented(name) && !sup.suppressed("metric-docs", toks[i].line)) {
      out.push_back({f.path, toks[i].line, "metric-docs",
                     "event tag \"" + name + "\" is not documented in "
                         "docs/OBSERVABILITY.md: add it to the event-tag table"});
    }
  }
}

// prof-docs: every profiler probe name used in src/ — a SHARQ_PROF_SCOPE
// argument or a ProfSubsys:: / ProfCounter:: member — must have a row in
// the docs/OBSERVABILITY.md probe catalog (type cell "probe" for
// subsystems, "profile counter" for named counters); --reverse-docs
// checks the cataloged rows stay live. The catalog is part of the
// sharqfec.profile.v1 schema contract the same way the metric tables are
// part of the metrics schema.
void rule_prof_docs(const LexedFile& f, const Suppressions& sup,
                    const std::string& doc_text, std::vector<Finding>& out,
                    std::set<std::string>* used) {
  const auto& toks = f.toks;
  auto documented = [&](const std::string& name) {
    return doc_text.find("`" + name + "`") != std::string::npos;
  };
  auto flag = [&](const std::string& name, int line) {
    if (used) used->insert(name);
    if (!documented(name) && !sup.suppressed("prof-docs", line)) {
      out.push_back({f.path, line, "prof-docs",
                     "profiler probe \"" + name + "\" is not documented in "
                     "docs/OBSERVABILITY.md: add a probe-catalog row (the "
                     "catalog is part of the profile schema contract)"});
    }
  };
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    if (toks[i].text == "SHARQ_PROF_SCOPE") {
      if (toks[i + 1].kind == Tok::kPunct && toks[i + 1].text == "(" &&
          toks[i + 2].kind == Tok::kIdent) {
        flag(toks[i + 2].text, toks[i].line);
      }
      continue;
    }
    if (toks[i].text != "ProfSubsys" && toks[i].text != "ProfCounter") {
      continue;
    }
    if (toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != "::") continue;
    if (toks[i + 2].kind != Tok::kIdent) continue;
    const std::string& name = toks[i + 2].text;
    if (name == "kCount") continue;  // the enum's own size sentinel
    flag(name, toks[i].line);
  }
}

// pointer-key: pointer-typed keys in associative containers and
// std::less/std::greater over pointers. The key is the first template
// argument; a mapped type holding pointers is fine.
void rule_pointer_key(const LexedFile& f, const Suppressions& sup,
                      std::vector<Finding>& out) {
  static const std::set<std::string> kOrdered = {"map", "set", "multimap",
                                                 "multiset"};
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const auto& toks = f.toks;
  auto std_qualified = [&](std::size_t i) {
    return i >= 2 && toks[i - 1].kind == Tok::kPunct && toks[i - 1].text == "::" &&
           toks[i - 2].kind == Tok::kIdent && toks[i - 2].text == "std";
  };
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const std::string& id = toks[i].text;
    const bool container = kUnordered.count(id) ||
                           (kOrdered.count(id) && std_qualified(i));
    const bool cmp = (id == "less" || id == "greater") && std_qualified(i);
    if (!container && !cmp) continue;
    if (toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != "<") continue;
    const std::size_t after = skip_template_args(toks, i + 1);
    if (after == i + 1) continue;
    // Scan the first top-level template argument (the key / compared
    // type) for a raw pointer declarator.
    int angle = 1, paren = 0;
    bool ptr = false;
    for (std::size_t j = i + 2; j + 1 < after; ++j) {
      if (toks[j].kind != Tok::kPunct) continue;
      const std::string& p = toks[j].text;
      if (p == "<") ++angle;
      else if (p == ">") --angle;
      else if (p == ">>") angle -= 2;
      else if (p == "(" || p == "[") ++paren;
      else if (p == ")" || p == "]") --paren;
      else if (p == "," && angle == 1 && paren == 0 && container) break;
      else if (p == "*") { ptr = true; break; }
    }
    if (ptr && !sup.suppressed("pointer-key", toks[i].line)) {
      out.push_back({f.path, toks[i].line, "pointer-key",
                     container
                         ? "pointer-typed key in '" + id + "': hash/compare "
                           "order follows allocation addresses (ASLR, pool "
                           "recycling) and silently breaks same-seed "
                           "byte-identity; key by value (e.g. "
                           "std::map<std::string_view, ...>) or annotate "
                           "`// sharq-lint: pointer-key-ok (reason)`"
                         : "std::" + id + " over a pointer type: comparison "
                           "order is the allocator's, not the program's; "
                           "sort by a value key or annotate "
                           "`// sharq-lint: pointer-key-ok (reason)`"});
    }
  }
}

// shard-affinity: a member declared in a shard-owned region of a header
// may only be named from files sharing that header's stem.
void rule_shard_affinity(const LexedFile& f, const ProjectIndex& idx,
                         const Suppressions& sup, std::vector<Finding>& out) {
  if (idx.shard_members.empty()) return;
  const std::string stem = fs::path(f.path).stem().string();
  const auto& toks = f.toks;
  for (const Tok& t : toks) {
    if (t.kind != Tok::kIdent) continue;
    auto it = idx.shard_members.find(t.text);
    if (it == idx.shard_members.end()) continue;
    if (stem == it->second) continue;
    // A name declared in more than one header cannot be attributed to
    // one owner; drop it rather than guess.
    auto df = idx.member_decl_files.find(t.text);
    if (df != idx.member_decl_files.end() && df->second.size() > 1) continue;
    if (sup.suppressed("shard-affinity", t.line)) continue;
    out.push_back({f.path, t.line, "shard-affinity",
                   "'" + t.text + "' is shard-owned state of " + it->second +
                       ".hpp: cross-shard access is only deterministic on "
                       "the barrier-merge path; keep the access in " +
                       it->second + ".* or annotate "
                       "`// sharq-lint: shard-affinity-ok (merge path, "
                       "barrier audited)`"});
  }
}

// float-accum: `name += ...` on a float-typed name inside a range-for
// body. FP addition is not associative, so summation order is part of
// the output contract; an annotation records why the order is fixed.
void rule_float_accum(const LexedFile& f, const ProjectIndex& idx,
                      const Suppressions& sup, std::vector<Finding>& out) {
  const auto& toks = f.toks;
  const std::vector<NumDecl> decls = collect_num_decls(f, idx.float_types);
  // Is the name float-typed at this use? The nearest preceding
  // declaration in this file wins; header-declared float members are the
  // cross-TU fallback.
  auto is_float_at = [&](const std::string& name, std::size_t use) {
    for (std::size_t d = decls.size(); d-- > 0;) {
      if (decls[d].tok < use && decls[d].name == name) return decls[d].is_float;
    }
    return idx.float_vars.count(name) > 0;
  };
  // Token-index intervals of range-for bodies.
  std::vector<std::pair<std::size_t, std::size_t>> bodies;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || toks[i].text != "for") continue;
    if (toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != "(") continue;
    const std::size_t close = skip_balanced(toks, i + 1);
    if (close == toks.size()) continue;
    int depth = 0;
    bool is_range = false;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (toks[j].kind != Tok::kPunct) continue;
      const std::string& p = toks[j].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      else if (p == ")" || p == "]" || p == "}") --depth;
      else if (p == ":" && depth == 1) { is_range = true; break; }
      else if (p == ";") break;
    }
    if (!is_range) continue;
    std::size_t b1 = close;
    if (close < toks.size() && toks[close].kind == Tok::kPunct &&
        toks[close].text == "{") {
      b1 = skip_balanced(toks, close);
    } else {
      while (b1 < toks.size() &&
             !(toks[b1].kind == Tok::kPunct && toks[b1].text == ";")) {
        ++b1;
      }
    }
    bodies.emplace_back(close, b1);
  }
  if (bodies.empty()) return;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct || toks[i].text != "+=") continue;
    bool inside = false;
    for (const auto& [lo, hi] : bodies) {
      if (i > lo && i < hi) { inside = true; break; }
    }
    if (!inside) continue;
    std::size_t k = i - 1;
    while (k > 0 && toks[k].kind == Tok::kPunct && toks[k].text == "]") {
      const std::size_t open = rskip_balanced(toks, k);
      if (open == 0) break;
      k = open - 1;
    }
    if (toks[k].kind != Tok::kIdent || !is_float_at(toks[k].text, i)) continue;
    if (sup.suppressed("float-accum", toks[i].line)) continue;
    out.push_back({f.path, toks[i].line, "float-accum",
                   "'" + toks[k].text + " +=' inside a range-for: float "
                       "summation order is observable output, and a sharded "
                       "merge can reorder it; accumulate in a fixed order "
                       "and annotate `// sharq-lint: float-accum-ok "
                       "(iteration order fixed: ...)`, or sum integers"});
  }
}

// rng-stream: by-value sim::Rng declarations must be initialized from a
// parent stream's fork() (at the declaration, or via a constructor /
// assignment seen anywhere in the project — rng_forked is name-based).
void rule_rng_stream(const LexedFile& f, const ProjectIndex& idx,
                     const Suppressions& sup, bool all_scopes,
                     std::vector<Finding>& out) {
  if (!all_scopes &&
      (ends_with(f.path, "src/sim/random.hpp") ||
       ends_with(f.path, "src/sim/simulator.hpp") ||
       ends_with(f.path, "src/sim/simulator.cpp"))) {
    return;  // the stream factories themselves
  }
  const auto& toks = f.toks;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || toks[i].text != "Rng") continue;
    // Qualified spelling must be sim::Rng; another namespace's Rng is
    // not ours.
    if (i >= 2 && toks[i - 1].kind == Tok::kPunct && toks[i - 1].text == "::" &&
        !(toks[i - 2].kind == Tok::kIdent && toks[i - 2].text == "sim")) {
      continue;
    }
    // Skip type-position uses that are not by-value declarations.
    const std::size_t prev = (i >= 2 && toks[i - 1].text == "::") ? i - 3 : i - 1;
    if (prev + 1 > 0 && prev < toks.size() && toks[prev].kind == Tok::kIdent) {
      static const std::set<std::string> kNotDecl = {
          "class", "struct", "using", "enum", "typename", "return"};
      if (kNotDecl.count(toks[prev].text)) continue;
    }
    if (toks[i + 1].kind != Tok::kIdent) continue;  // Rng&, Rng*, Rng::, Rng)
    const std::string& name = toks[i + 1].text;
    if (i + 2 >= toks.size() || toks[i + 2].kind != Tok::kPunct) continue;
    const std::string& nx = toks[i + 2].text;
    bool flagged = false;
    if (nx == ";") {
      flagged = true;  // uninitialized member/local
    } else if (nx == "=" ) {
      flagged = true;
      for (std::size_t j = i + 3; j < toks.size(); ++j) {
        if (toks[j].kind == Tok::kPunct && toks[j].text == ";") break;
        if (toks[j].kind == Tok::kIdent &&
            (toks[j].text == "fork" || toks[j].text == "next_u64")) {
          flagged = false;
          break;
        }
      }
    } else if (nx == "(" || nx == "{") {
      const std::size_t close = skip_balanced(toks, i + 2);
      if (close == toks.size()) continue;
      bool has_fork = false, adjacent_idents = false, empty = close == i + 4;
      for (std::size_t j = i + 3; j + 1 < close; ++j) {
        if (toks[j].kind == Tok::kIdent &&
            (toks[j].text == "fork" || toks[j].text == "next_u64")) {
          has_fork = true;
        }
        if (toks[j].kind == Tok::kIdent && toks[j + 1].kind == Tok::kIdent) {
          adjacent_idents = true;  // `type name`: a function declaration
        }
      }
      flagged = !has_fork && !adjacent_idents && !(nx == "(" && empty);
    }
    if (!flagged) continue;
    if (idx.rng_forked.count(name)) continue;
    if (sup.suppressed("rng-stream", toks[i].line)) continue;
    out.push_back({f.path, toks[i].line, "rng-stream",
                   "'" + name + "' is a sim::Rng that is never fork()ed "
                       "from a Simulator/shard stream: ad-hoc streams make "
                       "draw order depend on call-site history, not the "
                       "seed; initialize from a parent stream's fork() or "
                       "annotate `// sharq-lint: rng-stream-ok (reason)`"});
  }
}

// Shared scanner for journal emit sites: Journal::emit through a
// journal-named receiver, and the per-class wrappers recorded in
// cause_sigs, resolved via the enclosing class (in headers) or the last
// `Class :: fn (` definition seen (in .cpp files).
template <typename Cb>
void scan_emit_sites(const LexedFile& f, const ProjectIndex& idx, Cb&& cb) {
  const auto& toks = f.toks;
  ClassTracker tracker;
  std::string cur_qual;  // class of the enclosing out-of-line definition
  for (std::size_t i = 0; i < toks.size(); ++i) {
    tracker.feed(toks, i);
    if (toks[i].kind == Tok::kPunct && toks[i].text == "::" && i >= 1 &&
        i + 2 < toks.size() && toks[i - 1].kind == Tok::kIdent &&
        toks[i + 1].kind == Tok::kIdent && toks[i + 2].kind == Tok::kPunct &&
        toks[i + 2].text == "(") {
      // A definition's class name sits in type position: what precedes it
      // is a return type, a scope close, or another qualifier — never
      // expression punctuation (`cond ? std::min(...) : y` must not read
      // as a constructor-init definition of class `std`).
      if (i >= 2 && toks[i - 2].kind == Tok::kPunct) {
        const std::string& b = toks[i - 2].text;
        if (b != ";" && b != "}" && b != "{" && b != "*" && b != "&" &&
            b != ">" && b != "::") {
          continue;
        }
      }
      std::size_t close = skip_balanced(toks, i + 2);
      std::size_t k = close;
      while (k < toks.size() && toks[k].kind == Tok::kIdent &&
             (toks[k].text == "const" || toks[k].text == "noexcept" ||
              toks[k].text == "override")) {
        ++k;
      }
      if (k < toks.size() && toks[k].kind == Tok::kPunct &&
          (toks[k].text == "{" || toks[k].text == ":")) {
        cur_qual = toks[i - 1].text;
      }
    }
    if (toks[i].kind != Tok::kIdent || i + 1 >= toks.size() ||
        toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != "(") {
      continue;
    }
    const std::string& fn = toks[i].text;
    if (i >= 1 && toks[i - 1].kind == Tok::kPunct && toks[i - 1].text == "::")
      continue;  // definition or qualified static call, not an emit site
    std::string cls;
    if (fn == "emit") {
      if (i < 2 || toks[i - 1].kind != Tok::kPunct ||
          (toks[i - 1].text != "." && toks[i - 1].text != "->")) {
        continue;
      }
      if (toks[i - 2].kind != Tok::kIdent ||
          lower(toks[i - 2].text).find("journal") == std::string::npos) {
        continue;
      }
      // The journal class itself: prefer "Journal", else the unique
      // class declaring emit.
      if (idx.cause_sigs.count("Journal") &&
          idx.cause_sigs.at("Journal").count("emit")) {
        cls = "Journal";
      } else {
        for (const auto& [c, fns] : idx.cause_sigs) {
          if (!fns.count("emit")) continue;
          if (!cls.empty()) { cls.clear(); break; }
          cls = c;
        }
        if (cls.empty()) continue;
      }
    } else {
      std::vector<std::string> candidates;
      for (const auto& [c, fns] : idx.cause_sigs) {
        if (fns.count(fn)) candidates.push_back(c);
      }
      if (candidates.empty()) continue;
      auto defines = [&](const std::string& c) {
        auto it = idx.cause_sigs.find(c);
        return it != idx.cause_sigs.end() && it->second.count(fn) > 0;
      };
      if (!cur_qual.empty() && defines(cur_qual)) cls = cur_qual;
      else if (!tracker.current().empty() && defines(tracker.current())) cls = tracker.current();
      else if (candidates.size() == 1) cls = candidates[0];
      else continue;
    }
    const int cause_idx = idx.cause_sigs.at(cls).at(fn);
    const std::size_t close = skip_balanced(toks, i + 1);
    if (close == toks.size()) continue;
    int depth = 0;
    std::vector<std::pair<std::size_t, std::size_t>> args;
    std::size_t start = i + 2;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (toks[j].kind != Tok::kPunct) continue;
      const std::string& p = toks[j].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      else if (p == ")" || p == "]" || p == "}") --depth;
      if ((p == "," && depth == 1) || (p == ")" && depth == 0)) {
        if (j > start) args.emplace_back(start, j);
        start = j + 1;
      }
    }
    // The event name must be a single string literal: wrapper bodies
    // forwarding `ev` are not call sites.
    if (args.empty() || args[0].second != args[0].first + 1 ||
        toks[args[0].first].kind != Tok::kString) {
      continue;
    }
    if (static_cast<std::size_t>(cause_idx) >= args.size()) continue;
    cb(toks[args[0].first].text, args[static_cast<std::size_t>(cause_idx)],
       toks[i].line);
  }
}

// journal-cause: every emit site naming an event literal must name a
// cataloged event, and must pass a non-zero-literal cause id when the
// catalog declares a cause edge (anything but "root (0)").
void rule_journal_cause(const LexedFile& f, const ProjectIndex& idx,
                        const DocModel& doc, const Suppressions& sup,
                        std::vector<Finding>& out,
                        std::set<std::string>* emitted) {
  if (!doc.has_event_catalog) return;
  const auto& toks = f.toks;
  scan_emit_sites(f, idx, [&](const std::string& ev,
                              std::pair<std::size_t, std::size_t> cause_arg,
                              int line) {
    if (emitted) emitted->insert(ev);
    const DocEvent* row = doc.find_event(ev);
    if (!row) {
      if (!sup.suppressed("journal-cause", line)) {
        out.push_back({f.path, line, "journal-cause",
                       "journal event \"" + ev + "\" is not in the " +
                           doc.path + " event catalog: the catalog is the "
                           "machine-checked schema for every emitted event; "
                           "add a row (with its cause edge) or rename"});
      }
      return;
    }
    if (!row->requires_cause) return;
    const bool literal_zero =
        cause_arg.second == cause_arg.first + 1 &&
        toks[cause_arg.first].kind == Tok::kNumber &&
        toks[cause_arg.first].text == "0";
    if (literal_zero && !sup.suppressed("journal-cause", line)) {
      out.push_back({f.path, line, "journal-cause",
                     "journal event \"" + ev + "\" declares the cause edge "
                         "\"" + ev + " <- ...\" in " + doc.path + " but this "
                         "site passes cause=0: thread the causing EventId "
                         "through (or recatalog the event as root (0)), or "
                         "annotate `// sharq-lint: journal-cause-ok "
                         "(reason)`"});
    }
  });
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Options {
  std::vector<std::string> paths;
  std::string doc_path = "docs/OBSERVABILITY.md";
  bool all_scopes = false;  // fixtures: every rule applies everywhere
  bool reverse_docs = false;  // docs -> source liveness (lint_tree / CI)
  std::string self_test_dir;
  std::string sarif_path;
  std::string baseline_path;
};

bool starts_with(const std::string& s, const std::string& p) {
  return s.rfind(p, 0) == 0;
}

// Default rule scoping by tree location (relative paths from the repo
// root). tests/ may schedule untagged events and shift ad hoc; wall-clock
// and the docs contract are properties of the library tree.
bool rule_applies(const std::string& rule, const std::string& path,
                  bool all_scopes) {
  if (all_scopes) return true;
  const bool in_src = starts_with(path, "src/");
  const bool in_tests = starts_with(path, "tests/");
  if (rule == "wall-clock" || rule == "metric-docs" ||
      rule == "prof-docs" || rule == "thread-unsafe" ||
      rule == "shard-affinity" || rule == "rng-stream" ||
      rule == "journal-cause") {
    return in_src;
  }
  if (rule == "event-tag" || rule == "unchecked-shift" ||
      rule == "float-accum") {
    return !in_tests;
  }
  return true;  // unordered-iter, pointer-key: whole tree
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::vector<std::string> collect_files(const std::vector<std::string>& roots) {
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    fs::path rp(root);
    if (fs::is_regular_file(rp)) {
      files.push_back(rp.generic_string());
      continue;
    }
    if (!fs::is_directory(rp)) continue;
    for (auto it = fs::recursive_directory_iterator(rp);
         it != fs::recursive_directory_iterator(); ++it) {
      const std::string name = it->path().filename().string();
      if (it->is_directory() &&
          (starts_with(name, "build") || name == ".git" || name == "fixtures")) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Finding> run_lint(const std::vector<std::string>& files,
                              const Options& opt) {
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  // Round 1+2 build the project-wide type sets. Unordered-variable names
  // use two-tier scoping: header declarations are global, .cpp names are
  // file-local; type/alias names are global wherever they are spelled.
  // Two rounds reach the fixed point for one level of aliasing, which is
  // all the tree uses.
  ProjectIndex idx;
  auto collect_types = [&](const LexedFile& f) {
    if (is_header(f.path)) {
      collect_unordered_decls(f, idx.sym);
    } else {
      SymbolTable local;
      local.unordered_types = idx.sym.unordered_types;
      collect_unordered_decls(f, local);
      idx.sym.unordered_types = std::move(local.unordered_types);
    }
    collect_float_aliases(f, idx);
  };
  for (const std::string& path : files) {
    lexed.push_back(lex_file(path, slurp(path)));
    collect_types(lexed.back());
  }
  for (const LexedFile& f : lexed) collect_types(f);
  // Round 3: member ownership, function signatures, and fork sites — the
  // cross-TU facts the parallel-era rules resolve through.
  for (const LexedFile& f : lexed) {
    if (is_header(f.path)) {
      collect_float_members(f, idx.float_types, idx.float_vars);
      collect_member_decls(f, idx);
      collect_shard_members(f, idx);
    }
    collect_cause_sigs(f, idx);
    collect_rng_forked(f, idx);
  }

  const DocModel doc = parse_doc(opt.doc_path, slurp(opt.doc_path));
  std::vector<Finding> findings;
  for (const LexedFile& f : lexed) {
    const Suppressions sup(f);
    if (rule_applies("unordered-iter", f.path, opt.all_scopes)) {
      // Effective table for this file: globals plus its own declarations.
      SymbolTable eff = idx.sym;
      collect_unordered_decls(f, eff);
      rule_unordered_iter(f, eff, sup, findings);
    }
    if (rule_applies("wall-clock", f.path, opt.all_scopes))
      rule_wall_clock(f, sup, findings);
    if (rule_applies("event-tag", f.path, opt.all_scopes))
      rule_event_tag(f, sup, findings);
    if (rule_applies("unchecked-shift", f.path, opt.all_scopes))
      rule_unchecked_shift(f, sup, findings);
    if (rule_applies("thread-unsafe", f.path, opt.all_scopes))
      rule_thread_unsafe(f, sup, findings);
    if (rule_applies("metric-docs", f.path, opt.all_scopes))
      rule_metric_docs(f, sup, doc.text, findings, &idx.registered_metrics);
    if (rule_applies("prof-docs", f.path, opt.all_scopes))
      rule_prof_docs(f, sup, doc.text, findings, &idx.used_probes);
    if (rule_applies("pointer-key", f.path, opt.all_scopes))
      rule_pointer_key(f, sup, findings);
    if (rule_applies("shard-affinity", f.path, opt.all_scopes))
      rule_shard_affinity(f, idx, sup, findings);
    if (rule_applies("float-accum", f.path, opt.all_scopes))
      rule_float_accum(f, idx, sup, findings);
    if (rule_applies("rng-stream", f.path, opt.all_scopes))
      rule_rng_stream(f, idx, sup, opt.all_scopes, findings);
    if (rule_applies("journal-cause", f.path, opt.all_scopes))
      rule_journal_cause(f, idx, doc, sup, findings, &idx.emitted_events);
  }
  if (opt.reverse_docs) {
    // Docs -> source: every documented metric row and cataloged event
    // must still be live, so the doc cannot drift above the code.
    for (const auto& [name, line] : doc.metric_rows) {
      if (idx.registered_metrics.count(name)) continue;
      findings.push_back({opt.doc_path, line, "metric-docs",
                          "metric family \"" + name + "\" is documented but "
                          "never registered by counter()/gauge()/histogram() "
                          "in the linted tree: delete the stale row or "
                          "restore the metric"});
    }
    for (const DocEvent& ev : doc.event_rows) {
      if (idx.emitted_events.count(ev.name)) continue;
      findings.push_back({opt.doc_path, ev.line, "journal-cause",
                          "event \"" + ev.name + "\" is cataloged but never "
                          "emitted with a literal name in the linted tree: "
                          "delete the stale row or restore the emit site"});
    }
    for (const auto& [name, line] : doc.probe_rows) {
      if (idx.used_probes.count(name)) continue;
      findings.push_back({opt.doc_path, line, "prof-docs",
                          "probe \"" + name + "\" is cataloged but no "
                          "SHARQ_PROF_SCOPE / ProfSubsys / ProfCounter site "
                          "in the linted tree uses it: delete the stale row "
                          "or restore the probe"});
    }
  }
  std::sort(findings.begin(), findings.end());
  return findings;
}

// ---------------------------------------------------------------------------
// SARIF 2.1.0 writer
// ---------------------------------------------------------------------------

struct RuleDoc { const char* id; const char* text; };
constexpr RuleDoc kRuleDocs[] = {
    {"unordered-iter", "no iteration over unordered containers (order feeds output)"},
    {"wall-clock", "no wall-clock/randomness sources in src/ outside sim/random.hpp"},
    {"event-tag", "Simulator::at/after call sites must carry an event tag"},
    {"unchecked-shift", "no literal-<<-nonconstant shifts without a bound-check"},
    {"metric-docs", "metric families and event tags must match docs/OBSERVABILITY.md"},
    {"prof-docs", "profiler probe names must match the docs/OBSERVABILITY.md probe catalog"},
    {"thread-unsafe", "no raw threading primitives in src/ outside the shard runtime"},
    {"pointer-key", "no pointer-typed keys in associative containers or std::less-over-pointers"},
    {"shard-affinity", "shard-owned members only touched from the owning shard's files"},
    {"float-accum", "no float += in range-for bodies without an ordering annotation"},
    {"rng-stream", "every by-value sim::Rng must be fork()ed from a simulator stream"},
    {"journal-cause", "journal emits must be cataloged and pass a cause id when declared"},
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool write_sarif(const std::string& path, const std::vector<Finding>& findings) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "sharq_lint: cannot write SARIF to %s\n", path.c_str());
    return false;
  }
  std::map<std::string, int> rule_index;
  out << "{\n"
         "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"sharq_lint\",\n"
         "          \"version\": \"2.0.0\",\n"
         "          \"informationUri\": \"docs/DETERMINISM.md\",\n"
         "          \"rules\": [\n";
  int n = 0;
  for (const RuleDoc& r : kRuleDocs) {
    rule_index[r.id] = n;
    out << "            {\"id\": \"" << r.id
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(r.text)
        << "\"}, \"defaultConfiguration\": {\"level\": \"error\"}}"
        << (++n < static_cast<int>(std::size(kRuleDocs)) ? ",\n" : "\n");
  }
  out << "          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& fi = findings[i];
    const auto it = rule_index.find(fi.rule);
    out << "        {\"ruleId\": \"" << json_escape(fi.rule) << "\"";
    if (it != rule_index.end()) out << ", \"ruleIndex\": " << it->second;
    out << ", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(fi.message)
        << "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": \""
        << json_escape(fi.file)
        << "\", \"uriBaseId\": \"SRCROOT\"}, \"region\": {\"startLine\": "
        << (fi.line > 0 ? fi.line : 1) << "}}}]}"
        << (i + 1 < findings.size() ? ",\n" : "\n");
  }
  out << "      ]\n"
         "    }\n"
         "  ]\n"
         "}\n";
  return out.good();
}

// ---------------------------------------------------------------------------
// Suppression baseline (`path rule count` per line, shrink-only)
// ---------------------------------------------------------------------------

// Filters findings covered by the baseline in place. Returns 0 when the
// baseline is exact, 1 when it is stale (an entry no longer fires at its
// recorded count — shrink the file), 2 on malformed or src/ entries.
int apply_baseline(const std::string& path, std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "sharq_lint: cannot read baseline %s\n", path.c_str());
    return 2;
  }
  std::map<std::pair<std::string, std::string>, int> allowed;
  int lineno = 0, rc = 0;
  for (std::string ln; std::getline(in, ln);) {
    ++lineno;
    const std::string t = trim_ws(ln);
    if (t.empty() || t[0] == '#') continue;
    std::istringstream is(t);
    std::string file, rule;
    int count = 0;
    if (!(is >> file >> rule >> count) || count <= 0) {
      std::fprintf(stderr, "sharq_lint: %s:%d: malformed baseline entry "
                   "(want `path rule count`)\n", path.c_str(), lineno);
      return 2;
    }
    if (starts_with(file, "src/")) {
      std::fprintf(stderr, "sharq_lint: %s:%d: baseline entries for src/ are "
                   "not permitted — src/ must be clean or annotated\n",
                   path.c_str(), lineno);
      return 2;
    }
    allowed[{file, rule}] += count;
  }
  std::map<std::pair<std::string, std::string>, int> actual;
  for (const Finding& fi : findings) ++actual[{fi.file, fi.rule}];
  for (const auto& [key, allow] : allowed) {
    const auto it = actual.find(key);
    const int have = it == actual.end() ? 0 : it->second;
    if (have < allow) {
      std::fprintf(stderr, "sharq_lint: stale baseline entry `%s %s %d` "
                   "(only %d finding(s) still fire): shrink %s\n",
                   key.first.c_str(), key.second.c_str(), allow, have,
                   path.c_str());
      rc = 1;
    } else if (have > allow) {
      std::fprintf(stderr, "sharq_lint: `%s %s` exceeds its baseline "
                   "(%d > %d): fix the new finding(s), do not grow the "
                   "baseline\n", key.first.c_str(), key.second.c_str(), have,
                   allow);
    }
  }
  // Suppress exactly-covered groups; over-baseline groups stay reported.
  std::vector<Finding> keep;
  keep.reserve(findings.size());
  for (Finding& fi : findings) {
    const auto it = allowed.find({fi.file, fi.rule});
    if (it != allowed.end() && actual[{fi.file, fi.rule}] <= it->second) continue;
    keep.push_back(std::move(fi));
  }
  findings = std::move(keep);
  return rc;
}

// Self-test: every fixture line marked `// EXPECT-LINT: rule` must produce
// exactly that finding, and no unmarked finding may appear.
int run_self_test(const Options& opt) {
  std::vector<std::string> files = collect_files({opt.self_test_dir});
  if (files.empty()) {
    std::fprintf(stderr, "sharq_lint: no fixtures under %s\n",
                 opt.self_test_dir.c_str());
    return 2;
  }
  Options fixture_opt = opt;
  fixture_opt.all_scopes = true;
  // The fixture doc lives next to the fixtures.
  const fs::path doc = fs::path(opt.self_test_dir) / "observability_fixture.md";
  if (fs::exists(doc)) fixture_opt.doc_path = doc.generic_string();

  std::set<std::pair<std::string, std::pair<int, std::string>>> expected;
  for (const std::string& path : files) {
    const LexedFile f = lex_file(path, slurp(path));
    for (const auto& [line, rule] : f.expect_markers) {
      expected.insert({path, {line, rule}});
    }
  }
  std::set<std::pair<std::string, std::pair<int, std::string>>> got;
  for (const Finding& fi : run_lint(files, fixture_opt)) {
    got.insert({fi.file, {fi.line, fi.rule}});
  }
  int rc = 0;
  for (const auto& e : expected) {
    if (!got.count(e)) {
      std::fprintf(stderr, "self-test FAIL: expected %s:%d: [%s] not reported\n",
                   e.first.c_str(), e.second.first, e.second.second.c_str());
      rc = 1;
    }
  }
  for (const auto& g : got) {
    if (!expected.count(g)) {
      std::fprintf(stderr, "self-test FAIL: unexpected %s:%d: [%s]\n",
                   g.first.c_str(), g.second.first, g.second.second.c_str());
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("sharq_lint self-test: %zu expectations across %zu fixtures OK\n",
                expected.size(), files.size());
  }
  return rc;
}

void print_rules() {
  for (const RuleDoc& r : kRuleDocs) {
    std::printf("%-16s %s\n", r.id, r.text);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list-rules") { print_rules(); return 0; }
    if (a == "--all-scopes") { opt.all_scopes = true; continue; }
    if (a == "--reverse-docs") { opt.reverse_docs = true; continue; }
    if (starts_with(a, "--doc=")) { opt.doc_path = a.substr(6); continue; }
    if (a == "--doc" && i + 1 < argc) { opt.doc_path = argv[++i]; continue; }
    if (starts_with(a, "--sarif=")) { opt.sarif_path = a.substr(8); continue; }
    if (a == "--sarif" && i + 1 < argc) { opt.sarif_path = argv[++i]; continue; }
    if (starts_with(a, "--baseline=")) { opt.baseline_path = a.substr(11); continue; }
    if (a == "--baseline" && i + 1 < argc) { opt.baseline_path = argv[++i]; continue; }
    if (a == "--self-test" && i + 1 < argc) { opt.self_test_dir = argv[++i]; continue; }
    if (starts_with(a, "--")) {
      std::fprintf(stderr, "sharq_lint: unknown option %s\n", a.c_str());
      return 2;
    }
    opt.paths.push_back(a);
  }
  if (!opt.self_test_dir.empty()) return run_self_test(opt);
  if (opt.paths.empty()) {
    std::fprintf(stderr,
                 "usage: sharq_lint [--doc PATH] [--sarif FILE] "
                 "[--baseline FILE] [--reverse-docs] [--all-scopes] "
                 "[--list-rules] [--self-test FIXTURE_DIR] paths...\n");
    return 2;
  }
  const std::vector<std::string> files = collect_files(opt.paths);
  std::vector<Finding> findings = run_lint(files, opt);
  int baseline_rc = 0;
  if (!opt.baseline_path.empty()) {
    baseline_rc = apply_baseline(opt.baseline_path, findings);
    if (baseline_rc == 2) return 2;
  }
  if (!opt.sarif_path.empty() && !write_sarif(opt.sarif_path, findings)) {
    return 2;
  }
  for (const Finding& fi : findings) {
    std::printf("%s:%d: [%s] %s\n", fi.file.c_str(), fi.line, fi.rule.c_str(),
                fi.message.c_str());
  }
  if (findings.empty()) {
    if (baseline_rc != 0) {
      std::printf("sharq_lint: %zu files clean, but the baseline is stale\n",
                  files.size());
      return baseline_rc;
    }
    std::printf("sharq_lint: %zu files clean\n", files.size());
    return 0;
  }
  std::printf("sharq_lint: %zu finding(s) in %zu files\n", findings.size(),
              files.size());
  return 1;
}
