// Lint-clean file for the negative baseline tests: any baseline entry
// naming it is stale by construction. Not compiled.
int fb_answer() { return 42; }
