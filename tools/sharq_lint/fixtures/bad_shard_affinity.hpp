// Fixture: shard-owned members declared here, touched from the paired
// bad_shard_affinity_use.cpp whose stem differs. Proves the analyzer
// resolves header-declared members across translation units.
// Not compiled — parsed by sharq_lint's self-test.
#pragma once

#include <unordered_map>
#include <vector>

class SaLaneRuntime {
 public:
  void merge();

 private:
  // sharq-lint: shard-owned begin (fixture lane state)
  std::vector<int> sa_lane_mail_;
  std::vector<unsigned long long> sa_lane_seq_;
  // sharq-lint: shard-owned end

  // Declared outside the shard-owned region: not affinity-checked, but
  // still the cross-TU target for the unordered-iteration rule.
  std::unordered_map<int, int> sa_lane_peers_;
};
