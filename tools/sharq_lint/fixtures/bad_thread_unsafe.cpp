// Fixture: raw threading primitives the thread-unsafe rule must catch.
// Not compiled — parsed by sharq_lint's self-test.
#include <thread>              // EXPECT-LINT: thread-unsafe
#include <mutex>               // EXPECT-LINT: thread-unsafe
#include <atomic>              // EXPECT-LINT: thread-unsafe
#include <condition_variable>  // EXPECT-LINT: thread-unsafe
#include <pthread.h>           // EXPECT-LINT: thread-unsafe

void spawn() {
  std::thread t([] {});  // EXPECT-LINT: thread-unsafe
  t.join();
  std::jthread u([] {});  // EXPECT-LINT: thread-unsafe
}

struct Shared {
  std::mutex mu;            // EXPECT-LINT: thread-unsafe
  std::atomic<int> n{0};    // EXPECT-LINT: thread-unsafe
  thread_local static int slot;  // EXPECT-LINT: thread-unsafe
};

void locked(Shared& s) {
  std::lock_guard<std::mutex> lock(s.mu);  // EXPECT-LINT: thread-unsafe, thread-unsafe
}

int posix_spawned() {
  return pthread_create(nullptr, nullptr, nullptr, nullptr);  // EXPECT-LINT: thread-unsafe
}

// Mentions in comments or strings must NOT fire:
// a std::mutex here would be bad, and so would pthread_join.
const char* kDoc = "guarded by std::mutex internally";

// Protocol-domain identifiers that collide with std names must NOT fire
// without the std:: qualifier; nor may somebody else's member.
struct Repair;
int barrier = 0;
int promise(Repair* r) { return barrier + (r != nullptr); }
struct Obj;
int member_ok(Obj* o);

// The escape hatch: an annotated line is blessed.
// sharq-lint: thread-unsafe-ok (fixture demonstrating the annotation)
extern std::atomic<int> blessed_counter;
