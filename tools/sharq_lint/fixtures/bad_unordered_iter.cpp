// Fixture: every unordered-iteration shape the rule must catch.
// Not compiled — parsed by sharq_lint's self-test (see EXPECT-LINT markers).
#include <unordered_map>
#include <unordered_set>

struct Engine {
  std::unordered_map<int, double> peers_;
  std::unordered_set<int> uids_;
};

using PeerTable = std::unordered_map<int, double>;
PeerTable table_;

int sum(Engine& e) {
  int n = 0;
  for (const auto& [k, v] : e.peers_) n += k;  // EXPECT-LINT: unordered-iter
  for (int u : e.uids_) n += u;                // EXPECT-LINT: unordered-iter
  for (const auto& [k, v] : table_) n += k;    // EXPECT-LINT: unordered-iter
  for (auto it = e.peers_.begin(); it != e.peers_.end(); ++it) n += it->first;  // EXPECT-LINT: unordered-iter
  return n;
}

int fine(Engine& e) {
  // Lookups are order-free: none of these may fire.
  auto it = e.peers_.find(3);
  (void)it;
  return e.uids_.contains(7) ? 1 : 0;
}
