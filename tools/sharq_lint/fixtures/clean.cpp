// Fixture: a file that exercises every rule's escape hatch and must lint
// clean. Not compiled — parsed by sharq_lint's self-test.
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

struct Stats {
  std::unordered_map<int, long> hits_;    // lookups only: fine to keep
  std::map<int, long> ordered_hits_;      // ordered: iteration is fine
};

template <class M> std::vector<int> ordered_keys(const M& m);

long total(const Stats& s) {
  long n = 0;
  // Ordered container: never flagged.
  for (const auto& [k, v] : s.ordered_hits_) n += v;
  // Unordered, but through a sorted snapshot: never flagged.
  for (int k : ordered_keys(s.hits_)) n += k;
  return n;
}

// Region annotation: a genuinely order-free fold (documented reason).
// sharq-lint: unordered-iter-ok begin (commutative sum, result order-free)
long fold(const Stats& s) {
  long n = 0;
  for (const auto& [k, v] : s.hits_) n += v;
  return n;
}
// sharq-lint: unordered-iter-ok end

// Line annotation with a reason.
unsigned checked(unsigned cls) {
  if (cls >= 32u) return 0;
  return 1u << cls;  // sharq-lint: unchecked-shift-ok (bound-checked above)
}

struct Sim {
  template <class F> int after(double d, F f, const char* tag = nullptr);
};
void schedule(Sim& simu) {
  simu.after(1.0, [] {}, "fixture.tick");  // tagged: clean
}
