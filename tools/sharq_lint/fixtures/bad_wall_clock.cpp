// Fixture: wall-clock / ambient-nondeterminism sources the rule must catch.
// Not compiled — parsed by sharq_lint's self-test.
#include <chrono>  // EXPECT-LINT: wall-clock
#include <ctime>   // EXPECT-LINT: wall-clock
#include <random>  // EXPECT-LINT: wall-clock

double now_s() {
  auto t = std::chrono::system_clock::now();  // EXPECT-LINT: wall-clock
  (void)t;
  return static_cast<double>(time(nullptr));  // EXPECT-LINT: wall-clock
}

int roll() {
  std::random_device rd;  // EXPECT-LINT: wall-clock
  return rand() % 6;      // EXPECT-LINT: wall-clock
}

// Mentions in comments or strings must NOT fire:
// calling rand() here would be bad, and so would std::chrono::steady_clock.
const char* kDoc = "uses rand() and system_clock internally";

// A member call named like a banned function is somebody else's API and
// must not fire; nor may a banned-adjacent identifier.
struct Obj;
int member_ok(Obj& o, Obj* p) { return o.time(3) + p->time(4); }
int rand_calls = 0;

