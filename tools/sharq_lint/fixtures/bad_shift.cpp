// Fixture: unchecked literal shifts the rule must catch.
// Not compiled — parsed by sharq_lint's self-test.
constexpr int kWidth = 4;

unsigned mask_for(unsigned cls, int stage, unsigned bits) {
  unsigned m = 1u << cls;          // EXPECT-LINT: unchecked-shift
  m |= 1 << (stage + 1);           // EXPECT-LINT: unchecked-shift
  m |= 1ull << bits;               // EXPECT-LINT: unchecked-shift
  m |= 1u << 5;                    // literal count: must not fire
  m |= 1u << kWidth;               // k-constant count: must not fire
  m |= 1u << (kWidth + 2);         // constant expression: must not fire
  m |= 1u << sizeof(int);          // sizeof: must not fire
  return m;
}

unsigned guarded(unsigned cls) {
  if (cls >= 32u) return 0;
  // sharq-lint: unchecked-shift-ok (cls bound-checked above)
  return 1u << cls;
}

double streams_ok(double x) { return x; }  // 1.5 << would be nonsense anyway
