// Fixture: ad-hoc sim::Rng streams that never fork() from a parent.
// Not compiled — parsed by sharq_lint's self-test.
namespace sim {
struct Rng {
  double uniform();
  unsigned long long next_u64();
  Rng fork();
};
}  // namespace sim

struct RsOracle {
  sim::Rng rs_drift_rng_;  // EXPECT-LINT: rng-stream
};

double rs_roll() {
  sim::Rng rs_ad_hoc(12345);  // EXPECT-LINT: rng-stream
  return rs_ad_hoc.uniform();
}

// Forked from a parent stream in the constructor: must not fire (the
// fork site is found by name anywhere in the project).
struct RsSharded {
  explicit RsSharded(sim::Rng& parent) : rs_lane_rng_(parent.fork()) {}
  sim::Rng rs_lane_rng_;
};

// References and return types are not by-value stream declarations:
sim::Rng& rs_borrow(sim::Rng& parent) { return parent; }

// Escape hatch: documented scratch stream.
// sharq-lint: rng-stream-ok (doc example scratch stream, no protocol draws)
sim::Rng rs_scratch_demo;
