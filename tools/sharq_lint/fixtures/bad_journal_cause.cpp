// Fixture: journal emit sites checked against the fixture doc's event
// catalog. Not compiled — parsed by sharq_lint's self-test.

struct JcAttrs {};

class Journal {
 public:
  unsigned long long emit(const char* ev, double t, int node, long group,
                          unsigned long long cause, const JcAttrs& attrs);
};

class JcEngine {
 public:
  unsigned long long jnl(const char* ev, unsigned group,
                         unsigned long long cause, const JcAttrs& attrs);
  void tick();

 private:
  Journal* journal_ = nullptr;
  unsigned long long jc_last_ = 0;
};

void JcEngine::tick() {
  JcAttrs a;
  // A cataloged event with a cause edge must not pass a literal zero:
  journal_->emit("fixture.caused", 1.0, 2, 3, 0, a);  // EXPECT-LINT: journal-cause
  // A cataloged root event may: "root (0)" is its documented shape.
  journal_->emit("fixture.root", 1.0, 2, 3, 0, a);
  // An event missing from the catalog fires regardless of the cause:
  journal_->emit("fixture.unlisted", 1.0, 2, 3, 7, a);  // EXPECT-LINT: journal-cause
  // The per-class jnl wrapper resolves through its own cause index:
  jnl("fixture.caused", 9, 0, a);  // EXPECT-LINT: journal-cause
  // A threaded cause id is the fix:
  jnl("fixture.caused", 9, jc_last_, a);

  // Escape hatch: a cause the checker cannot see.
  // sharq-lint: journal-cause-ok (cause id threaded via attrs in this fixture)
  journal_->emit("fixture.caused", 4.0, 2, 3, 0, a);
}
