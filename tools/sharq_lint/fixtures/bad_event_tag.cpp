// Fixture: untagged Simulator::at/after call sites the rule must catch.
// Not compiled — parsed by sharq_lint's self-test.
struct Sim {
  template <class F> int at(double t, F f, const char* tag = nullptr);
  template <class F> int after(double d, F f, const char* tag = nullptr);
};

void schedule(Sim& simu, Sim* simu_, Sim& net_owner) {
  simu.at(1.0, [] {});                       // EXPECT-LINT: event-tag
  simu_->after(2.0, [] { int x = 0; (void)x; });  // EXPECT-LINT: event-tag
  simu.after(3.0, [] {}, nullptr);           // EXPECT-LINT: event-tag
  simu.at(4.0, [] {}, "fixture.tick");       // tagged: must not fire
  const char* tag_ = "fixture.tock";
  simu_->after(5.0, [] {}, tag_);            // identifier tag: must not fire
  (void)net_owner;
}

// A container's .at() is not a scheduling call and must not fire:
struct Vec { int at(int i) { return i; } };
int lookup(Vec& v) { return v.at(3); }
