// Fixture: float accumulation inside range-fors without an ordering note.
// Not compiled — parsed by sharq_lint's self-test.
#include <vector>

using FaSeconds = double;

double fa_latency_total(const std::vector<double>& xs) {
  double fa_total = 0.0;
  for (double v : xs) fa_total += v;  // EXPECT-LINT: float-accum
  return fa_total;
}

// A float alias resolves through the project-wide alias table:
FaSeconds fa_alias_total(const std::vector<FaSeconds>& xs) {
  FaSeconds fa_t = 0;
  for (FaSeconds v : xs) fa_t += v;  // EXPECT-LINT: float-accum
  return fa_t;
}

// Integer accumulation is associative: must not fire.
long fa_event_count(const std::vector<long>& ns) {
  long fa_count = 0;
  for (long v : ns) fa_count += v;
  return fa_count;
}

// The same name rebound to an integer after a float use: nearest
// preceding declaration wins, so this must not fire either.
long fa_rebound(const std::vector<long>& ns) {
  long fa_total = 0;
  for (long v : ns) fa_total += v;
  return fa_total;
}

// Escape hatch: a fixed iteration order, stated in the annotation.
double fa_annotated(const std::vector<double>& xs) {
  double fa_sum = 0.0;
  for (double v : xs) {
    // sharq-lint: float-accum-ok (iteration order fixed: vector index order)
    fa_sum += v;
  }
  return fa_sum;
}
