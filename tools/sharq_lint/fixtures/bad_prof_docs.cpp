// Fixture: profiler probe names (SHARQ_PROF_SCOPE arguments, ProfSubsys
// and ProfCounter members) must appear in the observability doc's probe
// catalog; everything named `rogue` is deliberately absent from
// observability_fixture.md.
// Not compiled — parsed by sharq_lint's self-test.

void probe_catalog_sites() {
  SHARQ_PROF_SCOPE(fixture_probe);  // cataloged: must not fire
  SHARQ_PROF_SCOPE(rogue_probe);    // EXPECT-LINT: prof-docs

  stats::Profiler::count(stats::ProfCounter::fixture_counter);  // cataloged
  stats::Profiler::count(stats::ProfCounter::rogue_counter);  // EXPECT-LINT: prof-docs

  stats::ProfGate gate(stats::ProfCounter::fixture_counter,
                       stats::ProfSubsys::rogue_subsys);  // EXPECT-LINT: prof-docs
}
