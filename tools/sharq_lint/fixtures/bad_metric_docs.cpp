// Fixture: metric registrations and event tags that the catalog
// (observability_fixture.md) does not document must be caught.
// Not compiled — parsed by sharq_lint's self-test.
struct Metrics {
  int& counter(const char* name);
  int& gauge(const char* name);
  int& histogram(const char* name);
};
struct Timer {
  void set_tag(const char* tag);
};

void reg(Metrics& m, Timer& t) {
  m.counter("fixture.documented");    // in the fixture doc: must not fire
  m.counter("fixture.rogue");         // EXPECT-LINT: metric-docs
  m.gauge("fixture.rogue_gauge");     // EXPECT-LINT: metric-docs
  m.histogram("fixture.rogue_hist");  // EXPECT-LINT: metric-docs
  t.set_tag("fixture.tagged");        // in the fixture doc: must not fire
  t.set_tag("fixture.rogue_tag");     // EXPECT-LINT: metric-docs
}
