// Fixture: self-profiling probe sites must stay clock-free. Channel B
// timing reads live only in src/stats/profiler.cpp, the tree's single
// file-scope wall-clock-ok annotation; a SHARQ_PROF_SCOPE call site that
// stamps time itself breaks that confinement and must fire the
// wall-clock rule.
// Not compiled — parsed by sharq_lint's self-test.
#include <chrono>  // EXPECT-LINT: wall-clock

void probed_hot_path() {
  // The probe macro itself carries no clock token — this line is clean:
  // SHARQ_PROF_SCOPE(net_forward) expands to a ProfScope whose clock
  // reads happen out of line inside the annotated profiler.cpp.
  int sharq_prof_scope_7 = 0;
  (void)sharq_prof_scope_7;

  // Hand-rolling the timing at the call site is the violation:
  auto t0 = std::chrono::steady_clock::now();  // EXPECT-LINT: wall-clock
  (void)t0;
  unsigned long long t1 = __rdtsc();  // EXPECT-LINT: wall-clock
  (void)t1;
}
