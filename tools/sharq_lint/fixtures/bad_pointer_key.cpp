// Fixture: address-keyed associative containers and pointer comparators.
// Not compiled — parsed by sharq_lint's self-test.
#include <map>
#include <set>
#include <unordered_map>

struct PkCounters { int scheduled = 0; };

std::unordered_map<const char*, PkCounters> pk_by_literal;  // EXPECT-LINT: pointer-key
std::map<int*, int> pk_by_address;                          // EXPECT-LINT: pointer-key
using PkBadAlias = std::unordered_map<const char*, int>;    // EXPECT-LINT: pointer-key
std::set<PkCounters*, std::less<PkCounters*>> pk_addr_set;  // EXPECT-LINT: pointer-key

// A pointer-valued *mapped* type is fine: only the key orders anything.
std::map<int, PkCounters*> pk_ok_values;

// Escape hatch: the annotation must silence the rule on the next line.
// sharq-lint: pointer-key-ok (interned registry keys, diagnostic-only)
std::map<const char*, int> pk_interned_ok;
