// Fixture: this file's stem is not bad_shard_affinity, so naming the
// header's shard-owned members fires. Not compiled — parsed by the
// self-test as the cross-TU half of bad_shard_affinity.hpp.
#include "bad_shard_affinity.hpp"

struct SaProbe {
  void peek(SaLaneRuntime& rt);
};

void SaProbe::peek(SaLaneRuntime& rt) {
  auto& m = rt.sa_lane_mail_;  // EXPECT-LINT: shard-affinity
  m.push_back(1);

  // Escape hatch: the barrier-merge path is the audited exception.
  // sharq-lint: shard-affinity-ok (fixture: barrier merge path, audited)
  rt.sa_lane_seq_.clear();

  // Header-declared unordered member, iterated from another TU:
  for (auto& kv : rt.sa_lane_peers_) {  // EXPECT-LINT: unordered-iter
    (void)kv;
  }
}
