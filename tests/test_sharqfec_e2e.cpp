#include <gtest/gtest.h>

#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "topo/figure10.hpp"
#include "topo/shapes.hpp"

namespace sharq::sfq {
namespace {

struct TreeFixture {
  sim::Simulator simu{4242};
  net::Network net{simu};
  topo::BalancedTree tree;
  std::vector<net::NodeId> receivers;

  explicit TreeFixture(double loss, int depth = 2, int fanout = 3) {
    net::LinkConfig link;
    link.loss_rate = loss;
    tree = topo::make_balanced_tree(net, depth, fanout, link);
    receivers.assign(tree.all.begin() + 1, tree.all.end());
    // Two-level zone overlay: one zone per first-level subtree (for a
    // depth-1 tree everyone shares the root zone).
    auto& z = net.zones();
    const net::ZoneId root = z.add_root();
    z.assign(tree.root, root);
    for (std::size_t i = 0; i < tree.levels[1].size(); ++i) {
      if (tree.levels.size() <= 2) {
        z.assign(tree.levels[1][i], root);
        continue;
      }
      const net::ZoneId sub = z.add_zone(root);
      z.assign(tree.levels[1][i], sub);
      for (int leaf = 0; leaf < fanout; ++leaf) {
        z.assign(tree.levels[2][i * fanout + leaf], sub);
      }
    }
  }
};

Config variant(bool scoping, bool injection, bool sender_only) {
  Config cfg;
  cfg.scoping = scoping;
  cfg.injection = injection;
  cfg.sender_only = sender_only;
  return cfg;
}

TEST(SharqFecE2E, LosslessDeliversAllGroupsNoNacks) {
  TreeFixture f(0.0);
  rm::DeliveryLog log;
  Session s(f.net, f.tree.root, f.receivers, variant(true, true, false), &log);
  s.start();
  s.send_stream(8, 6.0);
  f.simu.run_until(30.0);
  for (net::NodeId r : f.receivers) {
    EXPECT_TRUE(log.complete(r, 8)) << "receiver " << r;
  }
  std::uint64_t nacks = 0;
  for (auto& a : s.agents()) nacks += a->transfer().nacks_sent();
  EXPECT_EQ(nacks, 0u);
}

class VariantMatrix
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(VariantMatrix, RecoversFromLoss) {
  const auto [scoping, injection, sender_only] = GetParam();
  TreeFixture f(0.08);
  rm::DeliveryLog log;
  Session s(f.net, f.tree.root, f.receivers,
            variant(scoping, injection, sender_only), &log);
  s.start();
  s.send_stream(12, 6.0);
  f.simu.run_until(120.0);
  for (net::NodeId r : f.receivers) {
    EXPECT_TRUE(log.complete(r, 12))
        << "receiver " << r << " scoping=" << scoping
        << " injection=" << injection << " so=" << sender_only
        << " completed=" << log.completed_count(r);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantMatrix,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool()));

TEST(SharqFecE2E, Figure10FullProtocolDelivers) {
  sim::Simulator simu{99};
  net::Network net{simu};
  topo::Figure10 t = topo::make_figure10(net);
  rm::DeliveryLog log;
  Session s(net, t.source, t.receivers, variant(true, true, false), &log);
  s.start();
  s.send_stream(16, 6.0);  // 256 packets
  simu.run_until(120.0);
  int incomplete = 0;
  for (net::NodeId r : t.receivers) {
    if (!log.complete(r, 16)) ++incomplete;
  }
  EXPECT_EQ(incomplete, 0);
}

TEST(SharqFecE2E, RealPayloadRoundTrips) {
  TreeFixture f(0.10, 1, 4);
  rm::DeliveryLog log;
  Config cfg = variant(true, true, false);
  cfg.real_payload = true;
  cfg.group_size = 4;
  cfg.shard_size_bytes = 64;
  Session s(f.net, f.tree.root, f.receivers, cfg, &log);
  s.start();
  std::vector<std::uint8_t> payload(3 * 4 * 64);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  s.send_stream(3, 6.0, payload);
  f.simu.run_until(60.0);
  for (net::NodeId r : f.receivers) {
    ASSERT_TRUE(log.complete(r, 3)) << "receiver " << r;
    std::vector<std::uint8_t> got;
    for (std::uint32_t g = 0; g < 3; ++g) {
      auto part = s.agent_for(r).transfer().reconstructed(g);
      got.insert(got.end(), part.begin(), part.end());
    }
    EXPECT_EQ(got, payload) << "receiver " << r;
  }
}

TEST(SharqFecE2E, InjectionReducesNacks) {
  // With preemptive injection the steady-state NACK volume should drop
  // (paper Figure 19).
  std::uint64_t nacks_with = 0, nacks_without = 0;
  for (bool injection : {true, false}) {
    sim::Simulator simu{31337};
    net::Network net{simu};
    net::LinkConfig link;
    link.loss_rate = 0.08;
    topo::BalancedTree t = topo::make_balanced_tree(net, 2, 3, link);
    std::vector<net::NodeId> receivers(t.all.begin() + 1, t.all.end());
    auto& z = net.zones();
    const net::ZoneId root = z.add_root();
    z.assign(t.root, root);
    for (std::size_t i = 0; i < t.levels[1].size(); ++i) {
      const net::ZoneId sub = z.add_zone(root);
      z.assign(t.levels[1][i], sub);
      for (int leaf = 0; leaf < 3; ++leaf) {
        z.assign(t.levels[2][i * 3 + leaf], sub);
      }
    }
    rm::DeliveryLog log;
    Session s(net, t.root, receivers, variant(true, injection, false), &log);
    s.start();
    s.send_stream(32, 6.0);
    simu.run_until(120.0);
    std::uint64_t nacks = 0;
    for (auto& a : s.agents()) nacks += a->transfer().nacks_sent();
    (injection ? nacks_with : nacks_without) = nacks;
  }
  EXPECT_LT(nacks_with, nacks_without);
}

}  // namespace
}  // namespace sharq::sfq
