#include <gtest/gtest.h>

#include "rm/delivery_log.hpp"
#include "sim/simulator.hpp"
#include "srm/session.hpp"
#include "topo/shapes.hpp"

namespace sharq::srm {
namespace {

struct Fixture {
  sim::Simulator simu{777};
  net::Network net{simu};
};

TEST(Srm, LosslessStreamDeliversWithoutRepairs) {
  Fixture f;
  topo::BalancedTree t =
      topo::make_balanced_tree(f.net, 2, 3, net::LinkConfig{});
  std::vector<net::NodeId> receivers(t.all.begin() + 1, t.all.end());
  rm::DeliveryLog log;
  Config cfg;
  Session session(f.net, t.root, receivers, cfg, &log);
  session.start();
  session.send_stream(50, 2.0);
  f.simu.run_until(20.0);
  for (net::NodeId r : receivers) {
    EXPECT_TRUE(log.complete(r, 50)) << "receiver " << r;
  }
  for (auto& a : session.agents()) {
    EXPECT_EQ(a->requests_sent(), 0u) << "node " << a->node();
  }
}

TEST(Srm, RecoversFromLoss) {
  Fixture f;
  net::LinkConfig lossy;
  lossy.loss_rate = 0.10;
  topo::BalancedTree t = topo::make_balanced_tree(f.net, 2, 3, lossy);
  std::vector<net::NodeId> receivers(t.all.begin() + 1, t.all.end());
  rm::DeliveryLog log;
  Config cfg;
  Session session(f.net, t.root, receivers, cfg, &log);
  session.start();
  session.send_stream(100, 3.0);
  f.simu.run_until(120.0);
  for (net::NodeId r : receivers) {
    EXPECT_TRUE(log.complete(r, 100)) << "receiver " << r;
  }
}

TEST(Srm, SessionMessagesYieldDistances) {
  Fixture f;
  topo::Chain c = topo::make_chain(f.net, {0.010, 0.020});
  rm::DeliveryLog log;
  Config cfg;
  Session session(f.net, c.nodes[0], {c.nodes[1], c.nodes[2]}, cfg, &log);
  session.start();
  f.simu.run_until(10.0);
  Agent& end = session.agent_for(c.nodes[2]);
  EXPECT_NEAR(end.distance_to(c.nodes[0]), 0.030, 0.005);
  EXPECT_NEAR(end.distance_to(c.nodes[1]), 0.020, 0.005);
  Agent& mid = session.agent_for(c.nodes[1]);
  EXPECT_NEAR(mid.distance_to(c.nodes[0]), 0.010, 0.005);
}

TEST(Srm, SuppressionLimitsDuplicateRequests) {
  // One shared lossy link upstream of many receivers: a loss hits everyone;
  // suppression should keep the number of requests well under the number
  // of receivers.
  Fixture f;
  const net::NodeId src = f.net.add_node();
  const net::NodeId relay = f.net.add_node();
  net::LinkConfig upstream;
  upstream.loss_rate = 0.10;
  f.net.add_duplex_link(src, relay, upstream);
  std::vector<net::NodeId> receivers;
  for (int i = 0; i < 20; ++i) {
    const net::NodeId r = f.net.add_node();
    net::LinkConfig leaf;
    leaf.delay = 0.005;
    f.net.add_duplex_link(relay, r, leaf);
    receivers.push_back(r);
  }
  rm::DeliveryLog log;
  Config cfg;
  Session session(f.net, src, receivers, cfg, &log);
  session.start();
  session.send_stream(200, 3.0);
  f.simu.run_until(60.0);

  std::uint64_t requests = 0;
  for (auto& a : session.agents()) requests += a->requests_sent();
  // ~20 packets lost on the shared link, seen by all 20 receivers: naive
  // flooding would send ~400 requests (one per receiver per loss).
  // Suppression should cut that to a handful per loss event — duplicates
  // within one propagation window plus retries for lost repairs remain,
  // exactly as Floyd et al. report for SRM.
  EXPECT_GT(requests, 0u);
  EXPECT_LT(requests, 200u);
  for (net::NodeId r : receivers) EXPECT_TRUE(log.complete(r, 200));
}

TEST(Srm, TailLossRecoveredViaSession) {
  Fixture f;
  const net::NodeId src = f.net.add_node();
  const net::NodeId r = f.net.add_node();
  net::LinkConfig cfg_link;
  cfg_link.loss_rate = 0.3;
  f.net.add_duplex_link(src, r, cfg_link);
  rm::DeliveryLog log;
  Config cfg;
  Session session(f.net, src, {r}, cfg, &log);
  session.start();
  session.send_stream(20, 2.0);
  f.simu.run_until(60.0);
  EXPECT_TRUE(log.complete(r, 20));
}

TEST(Srm, AdaptiveTimersStayBounded) {
  Fixture f;
  net::LinkConfig lossy;
  lossy.loss_rate = 0.15;
  topo::BalancedTree t = topo::make_balanced_tree(f.net, 2, 2, lossy);
  std::vector<net::NodeId> receivers(t.all.begin() + 1, t.all.end());
  Config cfg;
  cfg.adaptive_timers = true;
  Session session(f.net, t.root, receivers, cfg, nullptr);
  session.start();
  session.send_stream(150, 3.0);
  f.simu.run_until(60.0);
  for (auto& a : session.agents()) {
    EXPECT_GE(a->adapted_c1(), cfg.c1_min);
    EXPECT_LE(a->adapted_c1(), cfg.c1_max);
    EXPECT_GE(a->adapted_c2(), cfg.c2_min);
    EXPECT_LE(a->adapted_c2(), cfg.c2_max);
  }
}

TEST(DeliveryLog, TracksCompleteness) {
  rm::DeliveryLog log;
  log.record(1, 0, 1.0);
  log.record(1, 1, 2.0);
  log.record(1, 1, 3.0);  // duplicate keeps earliest
  EXPECT_EQ(log.completed_count(1), 2u);
  EXPECT_TRUE(log.complete(1, 2));
  EXPECT_FALSE(log.complete(1, 3));
  EXPECT_DOUBLE_EQ(log.completion_time(1, 1), 2.0);
  EXPECT_EQ(log.completion_time(1, 9), sim::kTimeNever);
  EXPECT_TRUE(log.complete(2, 0));
}

}  // namespace
}  // namespace sharq::srm
