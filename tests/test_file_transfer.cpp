#include <gtest/gtest.h>

#include "app/file_transfer.hpp"
#include "sim/simulator.hpp"
#include "topo/shapes.hpp"

namespace sharq::app {
namespace {

struct Fixture {
  sim::Simulator simu{71};
  net::Network net{simu};
  net::NodeId source;
  std::vector<net::NodeId> receivers;

  explicit Fixture(double loss) {
    source = net.add_node();
    const net::NodeId relay = net.add_node();
    net::LinkConfig up;
    up.loss_rate = loss;
    net.add_duplex_link(source, relay, up);
    receivers.push_back(relay);
    for (int i = 0; i < 3; ++i) {
      net::LinkConfig down;
      down.loss_rate = loss;
      const net::NodeId r = net.add_node();
      net.add_duplex_link(relay, r, down);
      receivers.push_back(r);
    }
    auto& z = net.zones();
    const net::ZoneId root = z.add_root();
    z.assign(source, root);
    const net::ZoneId zone = z.add_zone(root);
    for (net::NodeId n : receivers) z.assign(n, zone);
  }
};

sfq::Config file_cfg() {
  sfq::Config cfg;
  cfg.real_payload = true;
  cfg.group_size = 4;
  cfg.shard_size_bytes = 100;
  cfg.data_rate_bps = 1e6;
  return cfg;
}

std::vector<std::uint8_t> make_file(std::size_t n) {
  std::vector<std::uint8_t> f(n);
  for (std::size_t i = 0; i < n; ++i) {
    f[i] = static_cast<std::uint8_t>((i * 131) ^ (i >> 3));
  }
  return f;
}

TEST(FileTransfer, ExactMultipleOfGroupSize) {
  Fixture f(0.05);
  sfq::Config cfg = file_cfg();
  sfq::Session s(f.net, f.source, f.receivers, cfg);
  FileMulticast fm(s, cfg);
  auto file = make_file(3 * 4 * 100);  // exactly 3 groups

  std::vector<std::uint8_t> got;
  bool done = false;
  fm.attach_receiver(f.receivers[1],
                     {.on_bytes =
                          [&](std::uint64_t off, const std::uint8_t* d,
                              std::size_t n) {
                            EXPECT_EQ(off, got.size());
                            got.insert(got.end(), d, d + n);
                          },
                      .on_complete = [&] { done = true; }});
  s.start();
  EXPECT_EQ(fm.send_file(file, 6.0), 3u);
  f.simu.run_until(60.0);
  EXPECT_TRUE(done);
  EXPECT_EQ(got, file);
  EXPECT_TRUE(fm.file_complete(f.receivers[1]));
  EXPECT_EQ(fm.bytes_delivered(f.receivers[1]), file.size());
}

TEST(FileTransfer, PaddingTrimmedOnOddSize) {
  Fixture f(0.08);
  sfq::Config cfg = file_cfg();
  sfq::Session s(f.net, f.source, f.receivers, cfg);
  FileMulticast fm(s, cfg);
  auto file = make_file(4 * 100 + 137);  // 1 full group + a fragment

  std::vector<std::uint8_t> got;
  fm.attach_receiver(f.receivers[2],
                     {.on_bytes =
                          [&](std::uint64_t, const std::uint8_t* d,
                              std::size_t n) { got.insert(got.end(), d, d + n); },
                      .on_complete = nullptr});
  s.start();
  EXPECT_EQ(fm.send_file(file, 6.0), 2u);
  f.simu.run_until(60.0);
  EXPECT_EQ(got.size(), file.size());
  EXPECT_EQ(got, file);
}

TEST(FileTransfer, InOrderDeliveryDespiteOutOfOrderCompletion) {
  // Heavier loss makes later groups frequently complete before earlier
  // ones; the pump must still deliver a strictly in-order byte stream.
  Fixture f(0.20);
  sfq::Config cfg = file_cfg();
  sfq::Session s(f.net, f.source, f.receivers, cfg);
  FileMulticast fm(s, cfg);
  auto file = make_file(8 * 4 * 100);

  std::uint64_t expected_offset = 0;
  bool ordered = true;
  fm.attach_receiver(f.receivers[3],
                     {.on_bytes =
                          [&](std::uint64_t off, const std::uint8_t*,
                              std::size_t n) {
                            ordered = ordered && off == expected_offset;
                            expected_offset = off + n;
                          },
                      .on_complete = nullptr});
  s.start();
  fm.send_file(file, 6.0);
  f.simu.run_until(120.0);
  EXPECT_TRUE(ordered);
  EXPECT_EQ(expected_offset, file.size());
}

TEST(FileTransfer, AllReceiversComplete) {
  Fixture f(0.10);
  sfq::Config cfg = file_cfg();
  sfq::Session s(f.net, f.source, f.receivers, cfg);
  FileMulticast fm(s, cfg);
  auto file = make_file(5 * 4 * 100 + 42);
  int completions = 0;
  for (net::NodeId r : f.receivers) {
    fm.attach_receiver(r, {.on_bytes = nullptr,
                           .on_complete = [&] { ++completions; }});
  }
  s.start();
  fm.send_file(file, 6.0);
  f.simu.run_until(120.0);
  EXPECT_EQ(completions, static_cast<int>(f.receivers.size()));
  for (net::NodeId r : f.receivers) {
    EXPECT_TRUE(fm.file_complete(r));
    EXPECT_EQ(fm.bytes_delivered(r), file.size());
  }
}

TEST(FileTransfer, RejectsNonPayloadConfig) {
  Fixture f(0.0);
  sfq::Config cfg = file_cfg();
  cfg.real_payload = false;
  sfq::Session s(f.net, f.source, f.receivers, cfg);
  EXPECT_THROW(FileMulticast(s, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace sharq::app
