// Unit coverage for the two-channel self-profiler (src/stats/profiler.hpp).
//
// The load-bearing claims: Channel-A scope counts and counters are exact
// (sampling never drops one), lane slicing feeds by_shard exactly like
// the metrics registry, the deterministic export section is a pure
// function of the probe history (byte-identical across repeat runs), and
// probes without an installed profiler are inert.

#include "stats/profiler.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "stats/lane.hpp"

namespace stats = sharq::stats;
using stats::MemCensus;
using stats::ProfCounter;
using stats::ProfGate;
using stats::Profiler;
using stats::ProfSubsys;

namespace {

// Installs `p` as the process-wide profiler for one test body.
struct ActiveGuard {
  explicit ActiveGuard(Profiler& p) { Profiler::set_active(&p); }
  ~ActiveGuard() { Profiler::set_active(nullptr); }
};

std::string full_json(const Profiler& p) {
  std::ostringstream os;
  p.write_json(os);
  return os.str();
}

// The deterministic section only — the bytes the contract covers.
std::string det_section(const Profiler& p) {
  const std::string s = full_json(p);
  const auto b = s.find("\"deterministic\":");
  const auto e = s.find(",\n\"timing\":");
  EXPECT_NE(b, std::string::npos);
  EXPECT_NE(e, std::string::npos);
  return s.substr(b, e - b);
}

// One gated dispatch holding nested probe scopes, like an event handler.
void gated_unit() {
  ProfGate gate(ProfCounter::events_dispatched, ProfSubsys::event_loop);
  SHARQ_PROF_SCOPE(net_forward);
  { SHARQ_PROF_SCOPE(codec); }
  { SHARQ_PROF_SCOPE(codec); }
}

}  // namespace

TEST(Profiler, ProbesAreInertWithoutActiveProfiler) {
  ASSERT_EQ(Profiler::active(), nullptr);
  gated_unit();
  Profiler::count(ProfCounter::packets_forwarded, 3);
  // No profiler to observe — the claim is simply "no crash, no install".
  EXPECT_EQ(Profiler::active(), nullptr);
}

TEST(Profiler, ScopeCountsAreExactAcrossSamplingPeriods) {
  Profiler prof;
  ActiveGuard guard(prof);
  // 3 full sampling periods plus a remainder: every unit must count even
  // though only one in kSamplePeriod is wall-timed.
  const int units = static_cast<int>(Profiler::kSamplePeriod) * 3 + 5;
  for (int i = 0; i < units; ++i) gated_unit();
  EXPECT_EQ(prof.counter_value(ProfCounter::events_dispatched),
            static_cast<std::uint64_t>(units));
  EXPECT_EQ(prof.scope_count(ProfSubsys::event_loop),
            static_cast<std::uint64_t>(units));
  EXPECT_EQ(prof.scope_count(ProfSubsys::net_forward),
            static_cast<std::uint64_t>(units));
  EXPECT_EQ(prof.scope_count(ProfSubsys::codec),
            static_cast<std::uint64_t>(2 * units));
}

TEST(Profiler, CountersAreLaneSliced) {
  Profiler prof;
  ActiveGuard guard(prof);
  prof.set_shards(3);
  {
    stats::ScopedLane lane2(2);
    Profiler::count(ProfCounter::packets_forwarded, 5);
  }
  Profiler::count(ProfCounter::packets_forwarded, 2);  // lane 0
  EXPECT_EQ(prof.counter_value(ProfCounter::packets_forwarded), 7u);
  const std::string det = det_section(prof);
  EXPECT_NE(det.find("\"packets_forwarded\":{\"total\":7,"
                     "\"by_shard\":[2,0,5]}"),
            std::string::npos)
      << det;
}

TEST(Profiler, DeterministicSectionIsReproducible) {
  // Identical probe histories must export identical deterministic bytes,
  // even though the wall-clock timings underneath necessarily differ.
  auto run = [] {
    auto prof = std::make_unique<Profiler>();
    ActiveGuard guard(*prof);
    for (int i = 0; i < 20; ++i) gated_unit();
    Profiler::count(ProfCounter::fec_bytes_encoded, 1024);
    MemCensus census;
    census.add("peer_tables", 100, 200);
    census.add("peer_tables", 50, 75);  // accumulates, not replaces
    prof->set_memory(census);
    prof->set_shards(2);
    return det_section(*prof);
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"peer_tables\":{\"live_bytes\":150,\"peak_bytes\":275}"),
            std::string::npos)
      << a;
}

TEST(Profiler, TimingSectionCarriesSamplePeriodAndSelfTime) {
  Profiler prof;
  ActiveGuard guard(prof);
  for (int i = 0; i < static_cast<int>(Profiler::kSamplePeriod) * 4; ++i) {
    gated_unit();
  }
  const std::string s = full_json(prof);
  EXPECT_NE(s.find("\"sample_period\":" +
                   std::to_string(Profiler::kSamplePeriod)),
            std::string::npos);
  EXPECT_NE(s.find("\"self_time\":{\"event_loop\":"), std::string::npos);
  EXPECT_NE(s.find("\"truncated_scopes\":0"), std::string::npos);
}

TEST(Profiler, WindowHooksFeedCountersAndHistograms) {
  Profiler prof;
  ActiveGuard guard(prof);
  prof.set_shards(2);
  for (int w = 0; w < 4; ++w) {
    prof.window_begin();
    prof.shard_window_done(0);
    prof.shard_window_done(1);
    prof.window_end(2, /*stalled=*/w == 3);
  }
  EXPECT_EQ(prof.counter_value(ProfCounter::windows), 4u);
  EXPECT_EQ(prof.counter_value(ProfCounter::lookahead_stalls), 1u);
  const std::string s = full_json(prof);
  // Two shards joined four windows: eight barrier-wait samples.
  EXPECT_NE(s.find("\"barrier_wait\":{\"count\":8,"), std::string::npos) << s;
  EXPECT_NE(s.find("\"window_span\":{\"count\":4,"), std::string::npos);
  EXPECT_NE(s.find("\"stall_window\":{\"count\":1,"), std::string::npos);
}

TEST(Profiler, SetShardsClampsToLaneBounds) {
  Profiler prof;
  prof.set_shards(0);
  EXPECT_NE(det_section(prof).find("\"shards\":1"), std::string::npos);
  prof.set_shards(stats::kMaxLanes + 5);
  EXPECT_NE(det_section(prof).find(
                "\"shards\":" + std::to_string(stats::kMaxLanes)),
            std::string::npos);
}
