// Determinism regression: two runs with the same seed must agree on every
// observable, and a different seed must diverge. This pins down the
// property every simulation result in EXPERIMENTS.md relies on.
#include <gtest/gtest.h>

#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "srm/session.hpp"
#include "topo/figure10.hpp"

namespace sharq {
namespace {

struct Outcome {
  std::uint64_t nacks = 0;
  std::uint64_t repairs = 0;
  std::uint64_t sessions = 0;
  std::uint64_t events = 0;
  std::vector<sim::Time> completion_times;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

Outcome run_sharqfec_once(std::uint64_t seed) {
  sim::Simulator simu(seed);
  net::Network net(simu);
  topo::Figure10 t = topo::make_figure10(net);
  rm::DeliveryLog log;
  sfq::Config cfg;
  sfq::Session s(net, t.source, t.receivers, cfg, &log);
  s.start();
  s.send_stream(8, 6.0);
  simu.run_until(30.0);
  Outcome o;
  for (auto& a : s.agents()) {
    o.nacks += a->transfer().nacks_sent();
    o.repairs += a->transfer().repairs_sent();
    o.sessions += a->session().session_messages_sent();
  }
  o.events = simu.events_executed();
  for (net::NodeId r : t.receivers) {
    for (std::uint32_t g = 0; g < 8; ++g) {
      o.completion_times.push_back(log.completion_time(r, g));
    }
  }
  return o;
}

Outcome run_srm_once(std::uint64_t seed) {
  sim::Simulator simu(seed);
  net::Network net(simu);
  topo::Figure10 t = topo::make_figure10(net);
  rm::DeliveryLog log;
  srm::Config cfg;
  srm::Session s(net, t.source, t.receivers, cfg, &log);
  s.start();
  s.send_stream(64, 6.0);
  simu.run_until(20.0);
  Outcome o;
  for (auto& a : s.agents()) {
    o.nacks += a->requests_sent();
    o.repairs += a->repairs_sent();
  }
  o.events = simu.events_executed();
  for (net::NodeId r : t.receivers) {
    for (std::uint32_t u = 0; u < 64; ++u) {
      o.completion_times.push_back(log.completion_time(r, u));
    }
  }
  return o;
}

TEST(Determinism, SharqfecSameSeedSameRun) {
  const Outcome a = run_sharqfec_once(12345);
  const Outcome b = run_sharqfec_once(12345);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.events, 0u);
}

TEST(Determinism, SharqfecDifferentSeedDiverges) {
  const Outcome a = run_sharqfec_once(12345);
  const Outcome b = run_sharqfec_once(54321);
  EXPECT_NE(a, b);
}

TEST(Determinism, SrmSameSeedSameRun) {
  const Outcome a = run_srm_once(777);
  const Outcome b = run_srm_once(777);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sharq
