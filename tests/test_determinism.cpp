// Determinism regression: two runs with the same seed must agree on every
// observable, and a different seed must diverge. This pins down the
// property every simulation result in EXPERIMENTS.md relies on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rm/delivery_log.hpp"
#include "sharqfec/messages.hpp"
#include "sharqfec/ordered.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "srm/session.hpp"
#include "stats/trace_writer.hpp"
#include "topo/figure10.hpp"

namespace sharq {
namespace {

struct Outcome {
  std::uint64_t nacks = 0;
  std::uint64_t repairs = 0;
  std::uint64_t sessions = 0;
  std::uint64_t events = 0;
  std::vector<sim::Time> completion_times;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

Outcome run_sharqfec_once(std::uint64_t seed) {
  sim::Simulator simu(seed);
  net::Network net(simu);
  topo::Figure10 t = topo::make_figure10(net);
  rm::DeliveryLog log;
  sfq::Config cfg;
  sfq::Session s(net, t.source, t.receivers, cfg, &log);
  s.start();
  s.send_stream(8, 6.0);
  simu.run_until(30.0);
  Outcome o;
  for (auto& a : s.agents()) {
    o.nacks += a->transfer().nacks_sent();
    o.repairs += a->transfer().repairs_sent();
    o.sessions += a->session().session_messages_sent();
  }
  o.events = simu.events_executed();
  for (net::NodeId r : t.receivers) {
    for (std::uint32_t g = 0; g < 8; ++g) {
      o.completion_times.push_back(log.completion_time(r, g));
    }
  }
  return o;
}

Outcome run_srm_once(std::uint64_t seed) {
  sim::Simulator simu(seed);
  net::Network net(simu);
  topo::Figure10 t = topo::make_figure10(net);
  rm::DeliveryLog log;
  srm::Config cfg;
  srm::Session s(net, t.source, t.receivers, cfg, &log);
  s.start();
  s.send_stream(64, 6.0);
  simu.run_until(20.0);
  Outcome o;
  for (auto& a : s.agents()) {
    o.nacks += a->requests_sent();
    o.repairs += a->repairs_sent();
  }
  o.events = simu.events_executed();
  for (net::NodeId r : t.receivers) {
    for (std::uint32_t u = 0; u < 64; ++u) {
      o.completion_times.push_back(log.completion_time(r, u));
    }
  }
  return o;
}

TEST(Determinism, SharqfecSameSeedSameRun) {
  const Outcome a = run_sharqfec_once(12345);
  const Outcome b = run_sharqfec_once(12345);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.events, 0u);
}

TEST(Determinism, SharqfecDifferentSeedDiverges) {
  const Outcome a = run_sharqfec_once(12345);
  const Outcome b = run_sharqfec_once(54321);
  EXPECT_NE(a, b);
}

TEST(Determinism, SrmSameSeedSameRun) {
  const Outcome a = run_srm_once(777);
  const Outcome b = run_srm_once(777);
  EXPECT_EQ(a, b);
}

// Full packet trace of a SHARQFEC run, as a string. Unlike the Outcome
// comparisons above (aggregates, which hash-order reshuffles can leave
// unchanged), the trace pins the exact wire ORDER of every transmission —
// the thing the forwarding graft and session-beacon container migrations
// are protecting. Two same-seed runs are separate Network objects at
// different addresses, so anything address- or hash-layout-dependent
// that leaks into packet sequencing shows up as a byte diff here.
std::string run_traced_once(std::uint64_t seed) {
  sim::Simulator simu(seed);
  net::Network net(simu);
  topo::Figure10 t = topo::make_figure10(net);
  std::ostringstream trace;
  stats::TraceWriter tw(trace, &net, nullptr);
  net.set_sink(&tw);
  rm::DeliveryLog log;
  sfq::Config cfg;
  sfq::Session s(net, t.source, t.receivers, cfg, &log);
  s.start();
  s.send_stream(8, 6.0);
  simu.run_until(30.0);
  return trace.str();
}

TEST(Determinism, SameSeedTraceIsByteIdentical) {
  const std::string a = run_traced_once(424242);
  const std::string b = run_traced_once(424242);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// Session beacons carry one RTT-echo entry per tracked peer; the entry
// list is wire output, so it must come off the (now ordered) peer table
// in ascending peer order, never hash order.
TEST(Determinism, SessionBeaconEntriesAreSortedByPeer) {
  struct EntryOrderSink final : net::TrafficSink {
    int beacons_with_entries = 0;
    void on_deliver(sim::Time, net::NodeId, const net::Packet& p) override {
      const auto* msg = p.as<sfq::SessionMsg>();
      if (!msg || msg->entries.size() < 2) return;
      ++beacons_with_entries;
      for (std::size_t i = 1; i < msg->entries.size(); ++i) {
        EXPECT_LT(msg->entries[i - 1].peer, msg->entries[i].peer);
      }
    }
  };
  sim::Simulator simu(99);
  net::Network net(simu);
  topo::Figure10 t = topo::make_figure10(net);
  EntryOrderSink sink;
  net.set_sink(&sink);
  rm::DeliveryLog log;
  sfq::Config cfg;
  sfq::Session s(net, t.source, t.receivers, cfg, &log);
  s.start();
  simu.run_until(20.0);
  EXPECT_GT(sink.beacons_with_entries, 0);
}

// Channel membership snapshots are sorted regardless of join order.
TEST(Determinism, SubscriberSnapshotIsSorted) {
  sim::Simulator simu(1);
  net::Network net(simu);
  net.add_nodes(6);
  const net::ChannelId ch = net.create_channel();
  for (net::NodeId n : {4, 1, 5, 0, 3}) net.subscribe(ch, n);
  EXPECT_EQ(net.subscribers(ch), (std::vector<net::NodeId>{0, 1, 3, 4, 5}));
  EXPECT_EQ(net.subscriber_count(ch), 5u);
  net.unsubscribe(ch, 3);
  EXPECT_EQ(net.subscribers(ch), (std::vector<net::NodeId>{0, 1, 4, 5}));
}

// DeliveryLog::latencies walks each node's unit->time table into the
// report; recording order must not leak through.
TEST(Determinism, DeliveryLogLatenciesAreUnitOrdered) {
  rm::DeliveryLog log;
  // Record out of unit order, as real recovery does.
  log.record(/*node=*/7, /*unit=*/2, /*t=*/5.0);
  log.record(7, 0, 9.0);
  log.record(7, 1, 6.0);
  const std::unordered_map<std::uint64_t, sim::Time> sent_at{
      {0, 1.0}, {1, 1.5}, {2, 2.0}};
  const std::vector<double> lat = log.latencies({7}, sent_at);
  EXPECT_EQ(lat, (std::vector<double>{8.0, 4.5, 3.0}));  // units 0, 1, 2
}

// The ordered.hpp helpers themselves: sorted, complete, and set/map agnostic.
TEST(Determinism, OrderedSnapshotHelpers) {
  std::unordered_map<int, int> umap{{3, 30}, {1, 10}, {2, 20}};
  EXPECT_EQ(ordered_keys(umap), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ordered_items(umap),
            (std::vector<std::pair<int, int>>{{1, 10}, {2, 20}, {3, 30}}));
  EXPECT_EQ(ordered_values(umap), (std::vector<int>{10, 20, 30}));
  std::unordered_set<int> uset{9, 4, 6};
  EXPECT_EQ(ordered_keys(uset), (std::vector<int>{4, 6, 9}));
}

}  // namespace
}  // namespace sharq
