#include <gtest/gtest.h>

#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "topo/shapes.hpp"

namespace sharq::sfq {
namespace {

struct Fixture {
  sim::Simulator simu{83};
  net::Network net{simu};
  net::NodeId source;
  std::vector<net::NodeId> receivers;

  explicit Fixture(double loss) {
    source = net.add_node();
    const net::NodeId relay = net.add_node();
    net::LinkConfig up;
    up.loss_rate = loss;
    net.add_duplex_link(source, relay, up);
    receivers.push_back(relay);
    for (int i = 0; i < 5; ++i) {
      net::LinkConfig down;
      down.loss_rate = loss;
      const net::NodeId r = net.add_node();
      net.add_duplex_link(relay, r, down);
      receivers.push_back(r);
    }
    auto& z = net.zones();
    const net::ZoneId root = z.add_root();
    z.assign(source, root);
    const net::ZoneId zone = z.add_zone(root);
    for (net::NodeId n : receivers) z.assign(n, zone);
  }
};

TEST(AdaptiveTimers, DisabledKeepsPaperConstants) {
  Fixture f(0.10);
  Config cfg;
  cfg.adaptive_timers = false;
  rm::DeliveryLog log;
  Session s(f.net, f.source, f.receivers, cfg, &log);
  s.start();
  s.send_stream(20, 6.0);
  f.simu.run_until(90.0);
  for (auto& a : s.agents()) {
    EXPECT_DOUBLE_EQ(a->transfer().adapted_c1(), 2.0);
    EXPECT_DOUBLE_EQ(a->transfer().adapted_c2(), 2.0);
  }
  for (net::NodeId r : f.receivers) EXPECT_TRUE(log.complete(r, 20));
}

TEST(AdaptiveTimers, EnabledStaysBoundedAndDelivers) {
  Fixture f(0.15);
  Config cfg;
  cfg.adaptive_timers = true;
  rm::DeliveryLog log;
  Session s(f.net, f.source, f.receivers, cfg, &log);
  s.start();
  s.send_stream(30, 6.0);
  f.simu.run_until(120.0);
  bool moved = false;
  for (auto& a : s.agents()) {
    const double c1 = a->transfer().adapted_c1();
    const double c2 = a->transfer().adapted_c2();
    EXPECT_GE(c1, cfg.adaptive_c1_min);
    EXPECT_LE(c1, cfg.adaptive_c1_max);
    EXPECT_GE(c2, cfg.adaptive_c2_min);
    EXPECT_LE(c2, cfg.adaptive_c2_max);
    moved = moved || c1 != 2.0 || c2 != 2.0;
  }
  EXPECT_TRUE(moved);  // at least someone adapted under 15% loss
  for (net::NodeId r : f.receivers) EXPECT_TRUE(log.complete(r, 30));
}

TEST(AdaptiveTimers, LonelyReceiverShrinksWindow) {
  // One receiver, no duplicate NACKs ever: the window should drift down
  // (faster recovery), never up.
  sim::Simulator simu{89};
  net::Network net{simu};
  const net::NodeId src = net.add_node();
  const net::NodeId rx = net.add_node();
  net::LinkConfig l;
  l.loss_rate = 0.15;
  net.add_duplex_link(src, rx, l);
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  z.assign(src, root);
  z.assign(rx, root);
  Config cfg;
  cfg.adaptive_timers = true;
  rm::DeliveryLog log;
  Session s(net, src, {rx}, cfg, &log);
  s.start();
  s.send_stream(40, 6.0);
  simu.run_until(240.0);
  EXPECT_LE(s.agent_for(rx).transfer().adapted_c1(), 2.0);
  EXPECT_TRUE(log.complete(rx, 40));
}

}  // namespace
}  // namespace sharq::sfq
