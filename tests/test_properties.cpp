// Model-based / property tests: each test drives a component with random
// operation sequences and checks it against a trivially-correct reference
// model or an algebraic invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <random>
#include <set>

#include "fec/reed_solomon.hpp"
#include "net/network.hpp"
#include "net/zone.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace sharq {
namespace {

// --- EventQueue vs a reference multimap model --------------------------------

class EventQueueModel : public ::testing::TestWithParam<unsigned> {};

TEST_P(EventQueueModel, MatchesReferenceUnderRandomOps) {
  std::mt19937 rng(GetParam());
  sim::EventQueue q;
  // Reference: ordered (time, seq) -> id; mirrors what must pop.
  struct Ref {
    double at;
    std::uint64_t order;
    int payload;
  };
  std::map<std::pair<double, std::uint64_t>, int> model;
  std::vector<std::pair<sim::EventId, std::pair<double, std::uint64_t>>> live;
  std::vector<int> popped_q, popped_model;
  std::uint64_t order = 0;

  for (int step = 0; step < 2000; ++step) {
    const int op = static_cast<int>(rng() % 100);
    if (op < 55) {  // schedule
      const double at = static_cast<double>(rng() % 1000) / 10.0;
      const int payload = static_cast<int>(rng());
      const auto key = std::make_pair(at, order++);
      sim::EventId id = q.schedule(at, [payload, &popped_q] {
        popped_q.push_back(payload);
      });
      model[key] = payload;
      live.emplace_back(id, key);
    } else if (op < 75 && !live.empty()) {  // cancel random live event
      const std::size_t pick = rng() % live.size();
      const auto [id, key] = live[pick];
      const bool in_model = model.erase(key) > 0;
      const bool cancelled = q.cancel(id);
      EXPECT_EQ(cancelled, in_model);
      live.erase(live.begin() + static_cast<long>(pick));
    } else if (!q.empty()) {  // pop
      ASSERT_FALSE(model.empty());
      auto fired = q.pop();
      fired.fn();
      popped_model.push_back(model.begin()->second);
      model.erase(model.begin());
    }
    EXPECT_EQ(q.size(), model.size());
    if (!model.empty()) {
      EXPECT_DOUBLE_EQ(q.next_time(), model.begin()->first.first);
    }
  }
  while (!q.empty()) {
    ASSERT_FALSE(model.empty());
    q.pop().fn();
    popped_model.push_back(model.begin()->second);
    model.erase(model.begin());
  }
  EXPECT_TRUE(model.empty());
  EXPECT_EQ(popped_q, popped_model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModel,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- Reed-Solomon: random erasure patterns over random parameters -----------

class RsRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(RsRandom, RandomSubsetsAlwaysDecode) {
  std::mt19937 rng(GetParam() * 7919);
  for (int trial = 0; trial < 8; ++trial) {
    const int k = 1 + static_cast<int>(rng() % 24);
    const int parity = 1 + static_cast<int>(rng() % 24);
    fec::ReedSolomon rs(k, parity);
    const int size = 1 + static_cast<int>(rng() % 300);
    std::vector<std::vector<std::uint8_t>> data(k);
    for (auto& s : data) {
      s.resize(size);
      for (auto& b : s) b = rng() & 0xff;
    }
    // Pick a random set of exactly k shard ids out of k+parity.
    std::vector<int> ids(k + parity);
    std::iota(ids.begin(), ids.end(), 0);
    std::shuffle(ids.begin(), ids.end(), rng);
    ids.resize(k);
    std::vector<fec::ReedSolomon::Shard> got;
    for (int id : ids) {
      got.push_back({id, id < k ? data[id] : rs.encode_parity(id, data)});
    }
    auto out = rs.decode(got);
    ASSERT_TRUE(out.has_value()) << "k=" << k << " parity=" << parity;
    EXPECT_EQ(*out, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(RsProperty, ParityIsLinear) {
  // encode(a XOR b) == encode(a) XOR encode(b): the code is linear over
  // GF(256), which is what lets any combination of shards decode.
  std::mt19937 rng(404);
  fec::ReedSolomon rs(6, 6);
  auto mk = [&] {
    std::vector<std::vector<std::uint8_t>> d(6);
    for (auto& s : d) {
      s.resize(64);
      for (auto& b : s) b = rng() & 0xff;
    }
    return d;
  };
  auto a = mk(), b = mk(), x = a;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 64; ++j) x[i][j] ^= b[i][j];
  }
  for (int p = 6; p < 12; ++p) {
    auto ea = rs.encode_parity(p, a);
    auto eb = rs.encode_parity(p, b);
    auto ex = rs.encode_parity(p, x);
    for (int j = 0; j < 64; ++j) {
      EXPECT_EQ(ex[j], ea[j] ^ eb[j]);
    }
  }
}

// --- Zone hierarchy: random trees keep nesting invariants --------------------

class ZoneRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(ZoneRandom, NestingInvariantsHold) {
  std::mt19937 rng(GetParam() * 31);
  net::ZoneHierarchy z;
  std::vector<net::ZoneId> zones{z.add_root()};
  for (int i = 0; i < 30; ++i) {
    zones.push_back(z.add_zone(zones[rng() % zones.size()]));
  }
  const int nodes = 60;
  for (net::NodeId n = 0; n < nodes; ++n) {
    z.assign(n, zones[rng() % zones.size()]);
  }
  for (net::NodeId n = 0; n < nodes; ++n) {
    const auto chain = z.chain(n);
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.back(), z.root());
    EXPECT_EQ(chain.front(), z.smallest_zone(n));
    // Chain levels strictly decrease toward the root.
    for (std::size_t i = 1; i < chain.size(); ++i) {
      EXPECT_EQ(z.parent(chain[i - 1]), chain[i]);
      EXPECT_EQ(z.level(chain[i]) + 1, z.level(chain[i - 1]));
    }
    // Membership holds exactly on the chain.
    for (net::ZoneId zn : zones) {
      const bool on_chain =
          std::find(chain.begin(), chain.end(), zn) != chain.end();
      EXPECT_EQ(z.contains(zn, n), on_chain);
    }
  }
  // common_zone is symmetric and lies on both chains.
  for (int t = 0; t < 100; ++t) {
    const net::NodeId a = rng() % nodes, b = rng() % nodes;
    const net::ZoneId c = z.common_zone(a, b);
    EXPECT_EQ(c, z.common_zone(b, a));
    EXPECT_TRUE(z.contains(c, a));
    EXPECT_TRUE(z.contains(c, b));
    // No deeper zone contains both.
    for (net::ZoneId child : z.children(c)) {
      EXPECT_FALSE(z.contains(child, a) && z.contains(child, b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneRandom, ::testing::Values(1u, 2u, 3u));

// --- Routing invariants on random connected graphs ----------------------------

class RoutingRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(RoutingRandom, ShortestPathInvariants) {
  std::mt19937 rng(GetParam() * 101);
  sim::Simulator simu(GetParam());
  net::Network net(simu);
  const int n = 24;
  net.add_nodes(n);
  // Random spanning tree + extra chords keeps the graph connected.
  for (int v = 1; v < n; ++v) {
    net::LinkConfig cfg;
    cfg.delay = 0.001 * (1 + rng() % 40);
    net.add_duplex_link(v, static_cast<net::NodeId>(rng() % v), cfg);
  }
  for (int e = 0; e < 12; ++e) {
    const net::NodeId a = rng() % n, b = rng() % n;
    if (a == b || net.find_link(a, b) != net::kNoLink) continue;
    net::LinkConfig cfg;
    cfg.delay = 0.001 * (1 + rng() % 40);
    net.add_duplex_link(a, b, cfg);
  }
  for (int t = 0; t < 50; ++t) {
    const net::NodeId a = rng() % n, b = rng() % n;
    const double dab = net.path_delay(a, b);
    // Symmetric (all links are duplex with equal delays).
    EXPECT_NEAR(dab, net.path_delay(b, a), 1e-9);
    // Triangle inequality through any intermediate node.
    const net::NodeId c = rng() % n;
    EXPECT_LE(dab, net.path_delay(a, c) + net.path_delay(c, b) + 1e-9);
    // The reported path is consistent with the reported delay.
    const auto path = net.path(a, b);
    if (a == b) continue;
    ASSERT_GE(path.size(), 2u);
    double sum = 0.0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      const net::LinkId l = net.find_link(path[i - 1], path[i]);
      ASSERT_NE(l, net::kNoLink);
      sum += net.path_delay(path[i - 1], path[i]);
    }
    EXPECT_NEAR(sum, dab, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingRandom, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace sharq
