#include <gtest/gtest.h>

#include "sharqfec/hierarchy.hpp"
#include "sim/simulator.hpp"
#include "topo/figure10.hpp"

namespace sharq::sfq {
namespace {

struct Fixture {
  sim::Simulator simu{3};
  net::Network net{simu};
};

TEST(Hierarchy, ScopedMirrorsZoneTree) {
  Fixture f;
  topo::Figure10 t = topo::make_figure10(f.net);
  Hierarchy h(f.net, /*scoping=*/true);
  EXPECT_TRUE(h.scoping());
  EXPECT_EQ(h.root(), t.z_root);
  EXPECT_EQ(h.depth(), 3);
  EXPECT_EQ(h.all_zones().size(), 1u + 7u + 21u);
  EXPECT_EQ(h.parent(t.tree_zones[0]), t.z_root);
  EXPECT_EQ(h.level(t.leaf_zones[5]), 2);
  // Every zone gets distinct repair and session channels.
  std::unordered_set<net::ChannelId> chans{h.data_channel()};
  for (net::ZoneId z : h.all_zones()) {
    EXPECT_TRUE(chans.insert(h.repair_channel(z)).second);
    EXPECT_TRUE(chans.insert(h.session_channel(z)).second);
    EXPECT_EQ(h.zone_of_channel(h.repair_channel(z)), z);
    EXPECT_EQ(h.zone_of_channel(h.session_channel(z)), z);
  }
  EXPECT_EQ(h.zone_of_channel(h.data_channel()), net::kNoZone);
}

TEST(Hierarchy, ChainsAreSmallestFirst) {
  Fixture f;
  topo::Figure10 t = topo::make_figure10(f.net);
  Hierarchy h(f.net, true);
  const auto& leaf_chain = h.chain(29);
  ASSERT_EQ(leaf_chain.size(), 3u);
  EXPECT_EQ(leaf_chain[0], t.leaf_zones[0]);
  EXPECT_EQ(leaf_chain[1], t.tree_zones[0]);
  EXPECT_EQ(leaf_chain[2], t.z_root);
  EXPECT_EQ(h.smallest_zone(29), t.leaf_zones[0]);
  EXPECT_EQ(h.chain(0).size(), 1u);  // the source lives at the root only
}

TEST(Hierarchy, CommonZoneQueries) {
  Fixture f;
  topo::Figure10 t = topo::make_figure10(f.net);
  Hierarchy h(f.net, true);
  EXPECT_EQ(h.common_zone(29, 30), t.leaf_zones[0]);   // same leaf zone
  EXPECT_EQ(h.common_zone(29, 33), t.tree_zones[0]);   // sibling leaf zones
  EXPECT_EQ(h.common_zone(29, 112), t.z_root);         // different trees
  EXPECT_TRUE(h.zone_contains(t.z_root, 0));
  EXPECT_FALSE(h.zone_contains(t.tree_zones[0], 112));
}

TEST(Hierarchy, JoinSubscribesWholeChain) {
  Fixture f;
  topo::Figure10 t = topo::make_figure10(f.net);
  Hierarchy h(f.net, true);
  h.join(29);
  EXPECT_TRUE(f.net.subscribed(h.data_channel(), 29));
  EXPECT_TRUE(f.net.subscribed(h.repair_channel(t.leaf_zones[0]), 29));
  EXPECT_TRUE(f.net.subscribed(h.session_channel(t.tree_zones[0]), 29));
  EXPECT_TRUE(f.net.subscribed(h.repair_channel(t.z_root), 29));
  EXPECT_FALSE(f.net.subscribed(h.repair_channel(t.leaf_zones[1]), 29));
  EXPECT_EQ(h.joined(t.leaf_zones[0]).count(29), 1u);
  EXPECT_EQ(h.joined(t.z_root).count(29), 1u);
}

TEST(Hierarchy, FlatModeCollapsesToOneZone) {
  Fixture f;
  topo::Figure10 t = topo::make_figure10(f.net);
  (void)t;
  Hierarchy h(f.net, /*scoping=*/false);
  EXPECT_FALSE(h.scoping());
  EXPECT_EQ(h.depth(), 1);
  EXPECT_EQ(h.all_zones().size(), 1u);
  EXPECT_EQ(h.chain(29), (std::vector<net::ZoneId>{h.root()}));
  EXPECT_EQ(h.chain(0), h.chain(112));
  EXPECT_EQ(h.common_zone(29, 112), h.root());
  EXPECT_EQ(h.parent(h.root()), net::kNoZone);
  // Flat channels are unscoped: a send from anywhere reaches subscribers.
  h.join(29);
  h.join(112);
  EXPECT_TRUE(f.net.subscribed(h.repair_channel(h.root()), 112));
}

TEST(Hierarchy, FlatModeWorksWithoutZoneOverlay) {
  Fixture f;
  f.net.add_nodes(3);
  f.net.add_duplex_link(0, 1, net::LinkConfig{});
  f.net.add_duplex_link(1, 2, net::LinkConfig{});
  Hierarchy h(f.net, false);  // no zones were ever built
  h.join(0);
  h.join(2);
  EXPECT_EQ(h.chain(2).front(), h.root());
}

}  // namespace
}  // namespace sharq::sfq
