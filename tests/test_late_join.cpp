#include <gtest/gtest.h>

#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "topo/shapes.hpp"

namespace sharq::sfq {
namespace {

/// source -- relay -- {a, b, c}; zone = {relay, a, b, c}. `c` joins late.
struct LateFixture {
  sim::Simulator simu{61};
  net::Network net{simu};
  net::NodeId source, relay, a, b, c;
  net::ZoneId root, zone;

  LateFixture() {
    source = net.add_node();
    relay = net.add_node();
    a = net.add_node();
    b = net.add_node();
    c = net.add_node();
    net::LinkConfig up;
    up.delay = 0.020;
    net.add_duplex_link(source, relay, up);
    net::LinkConfig down;
    down.delay = 0.010;
    for (net::NodeId n : {a, b, c}) net.add_duplex_link(relay, n, down);
    root = net.zones().add_root();
    zone = net.zones().add_zone(root);
    net.zones().assign(source, root);
    for (net::NodeId n : {relay, a, b, c}) net.zones().assign(n, zone);
  }
};

TEST(LateJoin, FullHistoryRecoveredFromZonePeers) {
  LateFixture f;
  rm::DeliveryLog log;
  Config cfg;
  cfg.late_join_full_history = true;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg, &log);
  s.start();
  s.send_stream(20, 6.0);  // ends ~9.2 s

  // c joins at t=12, after the stream finished.
  f.simu.after(12.0, [&] { s.add_receiver(f.c); });
  f.simu.run_until(120.0);

  EXPECT_TRUE(log.complete(f.c, 20)) << "late joiner incomplete: "
                                     << log.completed_count(f.c);
  // The catch-up repairs must come from the zone, not the source: the
  // source's only transmissions beyond the stream should be negligible.
  const std::uint64_t src_repairs = s.source_agent().transfer().repairs_sent();
  std::uint64_t zone_repairs = 0;
  for (net::NodeId n : {f.relay, f.a, f.b}) {
    zone_repairs += s.agent_for(n).transfer().repairs_sent();
  }
  EXPECT_GT(zone_repairs, 0u);
  EXPECT_LT(src_repairs, zone_repairs);
}

TEST(LateJoin, LiveOnlySkipsHistory) {
  LateFixture f;
  rm::DeliveryLog log;
  Config cfg;
  cfg.late_join_full_history = false;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg, &log);
  s.start();
  s.send_stream(40, 6.0);  // ~160 ms per group; ends ~12.4 s

  f.simu.after(9.0, [&] { s.add_receiver(f.c); });
  f.simu.run_until(60.0);

  auto& joiner = s.agent_for(f.c).transfer();
  // Joined around group ~18: everything before the join point is skipped,
  // everything after is delivered.
  EXPECT_GT(joiner.first_tracked_group(), 0u);
  EXPECT_LT(joiner.first_tracked_group(), 40u);
  for (std::uint32_t g = joiner.first_tracked_group(); g < 40; ++g) {
    EXPECT_TRUE(joiner.group_complete(g)) << "group " << g;
  }
  EXPECT_FALSE(joiner.group_complete(0));
  EXPECT_EQ(joiner.nacks_sent() > 0 || joiner.groups_completed() > 0, true);
}

TEST(LateJoin, JoinerDoesNotDisturbExistingReceivers) {
  LateFixture f;
  rm::DeliveryLog log;
  Config cfg;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg, &log);
  s.start();
  s.send_stream(20, 6.0);
  f.simu.after(8.0, [&] { s.add_receiver(f.c); });
  f.simu.run_until(90.0);
  for (net::NodeId r : {f.relay, f.a, f.b, f.c}) {
    EXPECT_TRUE(log.complete(r, 20)) << "receiver " << r;
  }
}

TEST(LateJoin, LinkFailureReroutesAndRecovers) {
  // Mesh-ring topology: kill the direct source->relay link mid-stream;
  // routing falls back to the ring and delivery still completes.
  sim::Simulator simu{67};
  net::Network net{simu};
  const net::NodeId src = net.add_node();
  const net::NodeId r1 = net.add_node();
  const net::NodeId r2 = net.add_node();
  const net::NodeId rx = net.add_node();
  net::LinkConfig l;
  l.delay = 0.01;
  net.add_duplex_link(src, r1, l);
  net.add_duplex_link(src, r2, l);
  net.add_duplex_link(r1, r2, l);
  net.add_duplex_link(r1, rx, l);
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  for (net::NodeId n : {src, r1, r2, rx}) z.assign(n, root);
  rm::DeliveryLog log;
  Config cfg;
  Session s(net, src, {r1, r2, rx}, cfg, &log);
  s.start();
  s.send_stream(24, 6.0);
  simu.after(8.0, [&] {
    net.set_link_up(net.find_link(src, r1), false);
    net.set_link_up(net.find_link(r1, src), false);
  });
  simu.run_until(90.0);
  EXPECT_NEAR(net.path_delay(src, rx), 0.030, 1e-9);  // rerouted via r2
  EXPECT_TRUE(log.complete(rx, 24));
}

}  // namespace
}  // namespace sharq::sfq
