// Pool substrate tests: the freelist Arena and the two pools built on it
// (ObjectPool for protocol messages, BufferPool for shard payloads) carry
// the macro-scale packet path, so their recycling must be exact — growth
// on exhaustion, abort (in every build type) on misuse, and byte-clean
// reuse that upholds the byte-identical same-seed contract.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "sim/pool.hpp"

namespace sharq::sim {
namespace {

TEST(Arena, ExhaustionGrowsGeometrically) {
  Arena a;
  std::vector<void*> held;
  // First chunk carves 4 nodes; draining it forces growth (8, 16, ...).
  for (int i = 0; i < 64; ++i) held.push_back(a.allocate(32));
  EXPECT_EQ(a.stats().acquired, 64u);
  EXPECT_EQ(a.stats().live, 64u);
  EXPECT_GE(a.stats().capacity, 64u);
  EXPECT_EQ(a.stats().high_water, 64u);
  for (void* p : held) a.deallocate(p, 32);
  EXPECT_EQ(a.stats().live, 0u);
  EXPECT_EQ(a.free_count(), a.stats().capacity);
  // Steady state: the refilled freelist serves without growing capacity.
  const std::size_t cap = a.stats().capacity;
  for (int i = 0; i < 64; ++i) a.deallocate(a.allocate(32), 32);
  EXPECT_EQ(a.stats().capacity, cap);
}

TEST(Arena, ReuseIsLifo) {
  // Deterministic recycling: the freelist is LIFO, so release-then-acquire
  // hands back the same node — no address- or hash-order dependence.
  Arena a;
  void* p = a.allocate(64);
  a.deallocate(p, 64);
  EXPECT_EQ(a.allocate(64), p);
  a.deallocate(p, 64);
}

TEST(Arena, SizeClassesAreIndependent) {
  Arena a;
  void* small = a.allocate(16);
  void* large = a.allocate(4096);
  EXPECT_NE(small, large);
  a.deallocate(small, 16);
  // A different class's freelist does not serve this request.
  EXPECT_NE(a.allocate(4096), small);
}

TEST(ArenaDeathTest, DoubleReleaseAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Arena a;
  void* p = a.allocate(32);
  a.deallocate(p, 32);
  EXPECT_DEATH(a.deallocate(p, 32), "double release");
}

TEST(ArenaDeathTest, ForeignPointerAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Arena a;
  // A heap pointer the arena never handed out: the header check must
  // refuse it rather than push garbage onto a freelist.
  auto foreign = std::make_unique<unsigned char[]>(64);
  EXPECT_DEATH(a.deallocate(foreign.get() + 16, 32), "never handed out");
}

TEST(ObjectPool, SteadyStateRecyclesNodes) {
  ObjectPool<int> pool;
  for (int i = 0; i < 100; ++i) {
    auto p = pool.make(i);
    EXPECT_EQ(*p, i);
  }
  // One node ever carved... well, one live at a time: capacity stays at
  // the first chunk, and every make after the first reused a node.
  EXPECT_EQ(pool.stats().acquired, 100u);
  EXPECT_EQ(pool.stats().released, 100u);
  EXPECT_EQ(pool.stats().high_water, 1u);
  EXPECT_LE(pool.stats().capacity, 4u);  // first chunk only
}

TEST(ObjectPool, ExhaustionGrowsThenDrainsConsistently) {
  // Overload shape: hold far more live objects than any chunk, forcing
  // repeated arena growth, then drain. The ledger must stay exact at
  // every phase: live = acquired - released, high_water = the peak, and
  // capacity (nodes carved) never shrinks on drain — it is the freelist.
  ObjectPool<std::uint64_t> pool;
  std::vector<std::shared_ptr<std::uint64_t>> held;
  for (int i = 0; i < 500; ++i) held.push_back(pool.make(i));
  EXPECT_EQ(pool.stats().acquired, 500u);
  EXPECT_EQ(pool.stats().live, 500u);
  EXPECT_EQ(pool.stats().high_water, 500u);
  EXPECT_GE(pool.stats().capacity, 500u);
  held.clear();
  EXPECT_EQ(pool.stats().released, 500u);
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().high_water, 500u);
  const std::size_t cap = pool.stats().capacity;
  // Post-drain steady state serves from the freelist without growing.
  for (int i = 0; i < 500; ++i) pool.make(i);
  EXPECT_EQ(pool.stats().capacity, cap);
  EXPECT_EQ(pool.stats().high_water, 500u);
}

TEST(ObjectPool, ObjectOutlivesPool) {
  // A packet can still be in flight (queued in the event loop) after its
  // sending agent — and the agent's pools — are destroyed. The shared
  // core must keep the arena alive until the last reference drops.
  std::shared_ptr<std::vector<int>> survivor;
  {
    ObjectPool<std::vector<int>> pool;
    survivor = pool.make(std::size_t{3}, 7);
  }
  ASSERT_EQ(survivor->size(), 3u);
  EXPECT_EQ((*survivor)[2], 7);
  survivor.reset();  // release into the (kept-alive) core, then tear down
}

TEST(BufferPool, ReuseIsByteIdenticalToFreshAllocation) {
  BufferPool pool;
  void* first_store = nullptr;
  {
    auto buf = pool.acquire(256);
    first_store = buf->data();
    // Scribble over the buffer; a later acquire must never see this.
    std::memset(buf->data(), 0xAB, buf->size());
  }
  auto again = pool.acquire(256);
  ASSERT_EQ(again->size(), 256u);
  EXPECT_EQ(again->data(), first_store) << "capacity was not recycled";
  for (std::uint8_t byte : *again) EXPECT_EQ(byte, 0u);
  // Shrinking reuse: a smaller request sees exactly n zero bytes too.
  again.reset();
  auto smaller = pool.acquire(16);
  ASSERT_EQ(smaller->size(), 16u);
  for (std::uint8_t byte : *smaller) EXPECT_EQ(byte, 0u);
}

TEST(BufferPool, StatsTrackLiveAndHighWater) {
  BufferPool pool;
  auto a = pool.acquire(100);
  auto b = pool.acquire(100);
  EXPECT_EQ(pool.stats().live, 2u);
  EXPECT_EQ(pool.stats().high_water, 2u);
  a.reset();
  EXPECT_EQ(pool.stats().live, 1u);
  EXPECT_EQ(pool.free_count(), 1u);
  b.reset();
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().acquired, 2u);
  EXPECT_EQ(pool.stats().released, 2u);
}

TEST(BufferPool, ExhaustionGrowsThenDrainsConsistently) {
  BufferPool pool;
  std::vector<std::shared_ptr<BufferPool::Buffer>> held;
  for (int i = 0; i < 300; ++i) held.push_back(pool.acquire(256));
  EXPECT_EQ(pool.stats().live, 300u);
  EXPECT_EQ(pool.stats().high_water, 300u);
  EXPECT_EQ(pool.stats().capacity, 300u);
  EXPECT_EQ(pool.free_count(), 0u);
  held.clear();
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().released, 300u);
  EXPECT_EQ(pool.free_count(), 300u);
  // Drained capacity is reused, not re-carved.
  for (int i = 0; i < 300; ++i) pool.acquire(256);
  EXPECT_EQ(pool.stats().capacity, 300u);
  EXPECT_EQ(pool.stats().high_water, 300u);
}

TEST(BufferPool, BufferOutlivesPool) {
  std::shared_ptr<BufferPool::Buffer> survivor;
  {
    BufferPool pool;
    survivor = pool.acquire(64);
  }
  EXPECT_EQ(survivor->size(), 64u);
  survivor.reset();
}

}  // namespace
}  // namespace sharq::sim
